// Command fairbench regenerates every experiment in DESIGN.md §3 as text
// tables and CSV files — the reproduction of all figures and quantitative
// claims of the paper. Alongside the CSVs it writes a machine-readable
// BENCH_<date>.json run record (benchrecord schema: a flat numeric
// metrics map plus the per-experiment tables and wall-clock) so
// successive PRs can track the performance trajectory.
//
// Usage:
//
//	fairbench [-seed N] [-small] [-out results/] [-only EXP-F1,EXP-A3] [-json path]
//	          [-huge] [-shards 1,2,4,8]
//
// -only filters the standard experiment suite; -huge appends the
// EXP-HUGE scaling tier (N ≥ 100k nodes on the sharded kernel, swept
// over -shards), so `-only EXP-NONE -huge` runs the huge tier alone.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"fairgossip/internal/benchrecord"
	"fairgossip/internal/experiment"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// recordTables converts experiment tables to the schema package's
// dependency-free mirror type.
func recordTables(tables []experiment.Table) []benchrecord.Table {
	out := make([]benchrecord.Table, len(tables))
	for i, t := range tables {
		out[i] = benchrecord.Table{ID: t.ID, Title: t.Title, Note: t.Note, Cols: t.Cols, Rows: t.Rows}
	}
	return out
}

// run is the testable entry point: explicit args, writers, exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fairbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Int64("seed", 1, "random seed (same seed = identical output)")
		small    = fs.Bool("small", false, "bench-scale parameters (fast)")
		outDir   = fs.String("out", "results", "directory for CSV output (empty = no CSV)")
		only     = fs.String("only", "", "comma-separated experiment IDs to run (e.g. EXP-F1,EXP-A3)")
		jsonPath = fs.String("json", "", "path for the JSON run record (default <out>/BENCH_<date>.json; empty out disables)")
		huge     = fs.Bool("huge", false, "append the EXP-HUGE tier: N>=100k nodes on the sharded kernel")
		shardStr = fs.String("shards", "1,2,4,8", "shard counts the -huge tier sweeps")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	var shards []int
	for _, s := range strings.Split(*shardStr, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			fmt.Fprintf(stderr, "fairbench: bad -shards entry %q\n", s)
			return 2
		}
		shards = append(shards, v)
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "fairbench: %v\n", err)
			return 1
		}
	}
	started := time.Now()
	record := benchrecord.Record{
		Date:    started.UTC().Format(time.RFC3339),
		Seed:    *seed,
		Small:   *small,
		Metrics: map[string]float64{},
	}
	// emit prints one experiment's tables, folds every numeric cell into
	// the record's flat metrics map, and writes the CSVs.
	emit := func(id, title string, elapsed float64, tables []experiment.Table) int {
		fmt.Fprintf(stdout, "\n########## %s — %s  (%.1fs)\n\n", id, title, elapsed)
		record.Experiments = append(record.Experiments, benchrecord.Experiment{
			ID:      id,
			Title:   title,
			Seconds: elapsed,
			Tables:  recordTables(tables),
		})
		record.Metrics[benchrecord.MetricKey("seconds", id)] = elapsed
		for ti, t := range tables {
			benchrecord.HarvestTable(record.Metrics, id,
				benchrecord.Table{Cols: t.Cols, Rows: t.Rows})
			fmt.Fprintln(stdout, t.String())
			if *outDir != "" {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(strings.ReplaceAll(id, "-", "_")), ti)
				if err := os.WriteFile(filepath.Join(*outDir, name), []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(stderr, "fairbench: %v\n", err)
					return 1
				}
			}
		}
		return 0
	}
	opts := experiment.Options{Seed: *seed, Small: *small}
	for _, spec := range experiment.All() {
		if len(want) > 0 && !want[spec.ID] {
			continue
		}
		start := time.Now()
		tables := spec.Run(opts)
		if rc := emit(spec.ID, spec.Title, time.Since(start).Seconds(), tables); rc != 0 {
			return rc
		}
	}
	if *huge {
		hugeOpts := experiment.HugeOptions{Seed: *seed, Shards: shards}
		start := time.Now()
		tables := experiment.RunHuge(hugeOpts)
		if rc := emit("EXP-HUGE", "sharded kernel scaling tier", time.Since(start).Seconds(), tables); rc != 0 {
			return rc
		}
	}
	record.Metrics["total_seconds"] = time.Since(started).Seconds()
	path := *jsonPath
	mirror := ""
	if path == "" && *outDir != "" {
		base := "BENCH_" + started.UTC().Format("2006-01-02") + ".json"
		path = filepath.Join(*outDir, base)
		// Trajectory tooling scans the repository root for BENCH_*.json,
		// while the CSV bundle (and the historical record location) is
		// the -out directory — mirror the record to the root so both
		// consumers see it. No mirror needed when -out already is the
		// working directory.
		if filepath.Clean(*outDir) != "." {
			mirror = base
		}
	}
	if path != "" {
		if err := record.Validate(); err != nil {
			fmt.Fprintf(stderr, "fairbench: refusing to write an invalid record: %v\n", err)
			return 1
		}
		blob, err := json.MarshalIndent(record, "", "  ")
		if err == nil {
			err = os.WriteFile(path, append(blob, '\n'), 0o644)
		}
		if err == nil && mirror != "" {
			err = os.WriteFile(mirror, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "fairbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "\nrun record: %s\n", path)
	}
	return 0
}
