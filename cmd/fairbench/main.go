// Command fairbench regenerates every experiment in DESIGN.md §3 as text
// tables and CSV files — the reproduction of all figures and quantitative
// claims of the paper.
//
// Usage:
//
//	fairbench [-seed N] [-small] [-out results/] [-only EXP-F1,EXP-A3]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fairgossip/internal/experiment"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seed   = flag.Int64("seed", 1, "random seed (same seed = identical output)")
		small  = flag.Bool("small", false, "bench-scale parameters (fast)")
		outDir = flag.String("out", "results", "directory for CSV output (empty = no CSV)")
		only   = flag.String("only", "", "comma-separated experiment IDs to run (e.g. EXP-F1,EXP-A3)")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "fairbench: %v\n", err)
			return 1
		}
	}
	opts := experiment.Options{Seed: *seed, Small: *small}
	for _, spec := range experiment.All() {
		if len(want) > 0 && !want[spec.ID] {
			continue
		}
		start := time.Now()
		tables := spec.Run(opts)
		fmt.Printf("\n########## %s — %s  (%.1fs)\n\n", spec.ID, spec.Title, time.Since(start).Seconds())
		for ti, t := range tables {
			fmt.Println(t.String())
			if *outDir != "" {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(strings.ReplaceAll(spec.ID, "-", "_")), ti)
				if err := os.WriteFile(filepath.Join(*outDir, name), []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "fairbench: %v\n", err)
					return 1
				}
			}
		}
	}
	return 0
}
