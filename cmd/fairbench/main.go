// Command fairbench regenerates every experiment in DESIGN.md §3 as text
// tables and CSV files — the reproduction of all figures and quantitative
// claims of the paper. Alongside the CSVs it writes a machine-readable
// BENCH_<date>.json run record (metrics plus wall-clock per experiment)
// so successive PRs can track the performance trajectory.
//
// Usage:
//
//	fairbench [-seed N] [-small] [-out results/] [-only EXP-F1,EXP-A3] [-json path]
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fairgossip/internal/experiment"
)

// benchRecord is the JSON run record: enough to replay (seed, scale) and
// to diff metric values and timings across commits.
type benchRecord struct {
	Date        string            `json:"date"`
	Seed        int64             `json:"seed"`
	Small       bool              `json:"small"`
	Experiments []experimentEntry `json:"experiments"`
}

type experimentEntry struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Seconds float64            `json:"seconds"`
	Tables  []experiment.Table `json:"tables"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: explicit args, writers, exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fairbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Int64("seed", 1, "random seed (same seed = identical output)")
		small    = fs.Bool("small", false, "bench-scale parameters (fast)")
		outDir   = fs.String("out", "results", "directory for CSV output (empty = no CSV)")
		only     = fs.String("only", "", "comma-separated experiment IDs to run (e.g. EXP-F1,EXP-A3)")
		jsonPath = fs.String("json", "", "path for the JSON run record (default <out>/BENCH_<date>.json; empty out disables)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[strings.ToUpper(id)] = true
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "fairbench: %v\n", err)
			return 1
		}
	}
	started := time.Now()
	record := benchRecord{
		Date:  started.UTC().Format(time.RFC3339),
		Seed:  *seed,
		Small: *small,
	}
	opts := experiment.Options{Seed: *seed, Small: *small}
	for _, spec := range experiment.All() {
		if len(want) > 0 && !want[spec.ID] {
			continue
		}
		start := time.Now()
		tables := spec.Run(opts)
		elapsed := time.Since(start).Seconds()
		fmt.Fprintf(stdout, "\n########## %s — %s  (%.1fs)\n\n", spec.ID, spec.Title, elapsed)
		record.Experiments = append(record.Experiments, experimentEntry{
			ID:      spec.ID,
			Title:   spec.Title,
			Seconds: elapsed,
			Tables:  tables,
		})
		for ti, t := range tables {
			fmt.Fprintln(stdout, t.String())
			if *outDir != "" {
				name := fmt.Sprintf("%s_%d.csv", strings.ToLower(strings.ReplaceAll(spec.ID, "-", "_")), ti)
				if err := os.WriteFile(filepath.Join(*outDir, name), []byte(t.CSV()), 0o644); err != nil {
					fmt.Fprintf(stderr, "fairbench: %v\n", err)
					return 1
				}
			}
		}
	}
	path := *jsonPath
	mirror := ""
	if path == "" && *outDir != "" {
		base := "BENCH_" + started.UTC().Format("2006-01-02") + ".json"
		path = filepath.Join(*outDir, base)
		// Trajectory tooling scans the repository root for BENCH_*.json,
		// while the CSV bundle (and the historical record location) is
		// the -out directory — mirror the record to the root so both
		// consumers see it. No mirror needed when -out already is the
		// working directory.
		if filepath.Clean(*outDir) != "." {
			mirror = base
		}
	}
	if path != "" {
		blob, err := json.MarshalIndent(record, "", "  ")
		if err == nil {
			err = os.WriteFile(path, append(blob, '\n'), 0o644)
		}
		if err == nil && mirror != "" {
			err = os.WriteFile(mirror, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(stderr, "fairbench: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "\nrun record: %s\n", path)
	}
	return 0
}
