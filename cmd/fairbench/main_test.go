package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// timing strips the wall-clock fragments fairbench prints, the only
// nondeterministic part of its stdout.
var timing = regexp.MustCompile(`\([0-9.]+s\)`)

// runOnce runs fairbench -small on one experiment into a temp dir and
// returns the normalised stdout plus each CSV's bytes.
func runOnce(t *testing.T, seed string) (string, map[string][]byte) {
	t.Helper()
	dir := t.TempDir()
	var out, errb bytes.Buffer
	code := run([]string{"-small", "-seed", seed, "-only", "EXP-A6", "-out", dir, "-json", filepath.Join(dir, "rec.json")}, &out, &errb)
	if code != 0 {
		t.Fatalf("fairbench exited %d: %s", code, errb.String())
	}
	csvs := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".csv") {
			blob, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			csvs[e.Name()] = blob
		}
	}
	stdout := timing.ReplaceAllString(out.String(), "(T)")
	// The run-record line embeds the per-run temp dir.
	stdout = regexp.MustCompile(`run record: .*`).ReplaceAllString(stdout, "run record: (path)")
	return stdout, csvs
}

// TestFairbenchSmoke: the table output is well-formed and the run record
// and CSVs land where asked.
func TestFairbenchSmoke(t *testing.T) {
	stdout, csvs := runOnce(t, "1")
	if !strings.Contains(stdout, "########## EXP-A6") {
		t.Fatalf("missing experiment header:\n%s", stdout)
	}
	if !strings.Contains(stdout, "expected shape") {
		t.Fatalf("table note missing:\n%s", stdout)
	}
	if !strings.Contains(stdout, "run record:") {
		t.Fatalf("run record line missing:\n%s", stdout)
	}
	if len(csvs) == 0 {
		t.Fatal("no CSV files written")
	}
	for name, blob := range csvs {
		lines := strings.Split(strings.TrimRight(string(blob), "\n"), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s has no data rows:\n%s", name, blob)
		}
		// Every row has the header's column count.
		want := strings.Count(lines[0], ",")
		for i, ln := range lines {
			if strings.Count(ln, ",") != want {
				t.Fatalf("%s row %d is ragged: %q (header %q)", name, i, ln, lines[0])
			}
		}
	}
}

// TestFairbenchDeterministic: two runs with the same seed produce
// byte-identical CSVs and (timing-normalised) identical stdout — the
// property every fixed-seed regression baseline in this repo rests on.
func TestFairbenchDeterministic(t *testing.T) {
	out1, csv1 := runOnce(t, "1")
	out2, csv2 := runOnce(t, "1")
	if out1 != out2 {
		t.Fatalf("stdout differs across identical seeds:\n--- a\n%s\n--- b\n%s", out1, out2)
	}
	if len(csv1) != len(csv2) {
		t.Fatalf("CSV sets differ: %d vs %d files", len(csv1), len(csv2))
	}
	names := make([]string, 0, len(csv1))
	for n := range csv1 {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !bytes.Equal(csv1[n], csv2[n]) {
			t.Fatalf("%s differs across identical seeds:\n--- a\n%s\n--- b\n%s", n, csv1[n], csv2[n])
		}
	}
}

// TestFairbenchBadFlag: unknown flags are a usage error, not a crash,
// while -h is plain usage output (exit 0).
func TestFairbenchBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for bad flag, want 2", code)
	}
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for -h, want 0", code)
	}
}

// TestFairbenchRecordMirroredToRoot: with the default record path the
// BENCH_<date>.json lands both in -out (next to the CSVs) and in the
// working directory, where the trajectory tooling scans for it. An
// explicit -json path suppresses the mirror.
func TestFairbenchRecordMirroredToRoot(t *testing.T) {
	root := t.TempDir()
	t.Chdir(root)
	outDir := filepath.Join(root, "results")
	if err := os.Mkdir(outDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-small", "-seed", "1", "-only", "EXP-A6", "-out", outDir}, &out, &errb); code != 0 {
		t.Fatalf("fairbench exited %d: %s", code, errb.String())
	}
	inOut, err := filepath.Glob(filepath.Join(outDir, "BENCH_*.json"))
	if err != nil || len(inOut) != 1 {
		t.Fatalf("record missing from -out dir: %v %v", inOut, err)
	}
	atRoot, err := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
	if err != nil || len(atRoot) != 1 {
		t.Fatalf("record not mirrored to the working directory: %v %v", atRoot, err)
	}
	a, _ := os.ReadFile(inOut[0])
	b, _ := os.ReadFile(atRoot[0])
	if !bytes.Equal(a, b) {
		t.Fatal("mirrored record differs from the -out record")
	}
	// An explicit -json path is authoritative: no extra copies.
	sub := filepath.Join(root, "sub")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Chdir(sub)
	out.Reset()
	if code := run([]string{"-small", "-seed", "1", "-only", "EXP-A6", "-out", outDir, "-json", filepath.Join(outDir, "rec.json")}, &out, &errb); code != 0 {
		t.Fatalf("fairbench exited %d: %s", code, errb.String())
	}
	if stray, _ := filepath.Glob(filepath.Join(sub, "BENCH_*.json")); len(stray) != 0 {
		t.Fatalf("-json run still mirrored a record: %v", stray)
	}
}
