package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"fairgossip/internal/benchrecord"
)

// timing strips the wall-clock fragments fairbench prints, the only
// nondeterministic part of its stdout.
var timing = regexp.MustCompile(`\([0-9.]+s\)`)

// runOnce runs fairbench -small on one experiment into a temp dir and
// returns the normalised stdout plus each CSV's bytes.
func runOnce(t *testing.T, seed string) (string, map[string][]byte) {
	t.Helper()
	dir := t.TempDir()
	var out, errb bytes.Buffer
	code := run([]string{"-small", "-seed", seed, "-only", "EXP-A6", "-out", dir, "-json", filepath.Join(dir, "rec.json")}, &out, &errb)
	if code != 0 {
		t.Fatalf("fairbench exited %d: %s", code, errb.String())
	}
	csvs := map[string][]byte{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".csv") {
			blob, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			csvs[e.Name()] = blob
		}
	}
	stdout := timing.ReplaceAllString(out.String(), "(T)")
	// The run-record line embeds the per-run temp dir.
	stdout = regexp.MustCompile(`run record: .*`).ReplaceAllString(stdout, "run record: (path)")
	return stdout, csvs
}

// TestFairbenchSmoke: the table output is well-formed and the run record
// and CSVs land where asked.
func TestFairbenchSmoke(t *testing.T) {
	stdout, csvs := runOnce(t, "1")
	if !strings.Contains(stdout, "########## EXP-A6") {
		t.Fatalf("missing experiment header:\n%s", stdout)
	}
	if !strings.Contains(stdout, "expected shape") {
		t.Fatalf("table note missing:\n%s", stdout)
	}
	if !strings.Contains(stdout, "run record:") {
		t.Fatalf("run record line missing:\n%s", stdout)
	}
	if len(csvs) == 0 {
		t.Fatal("no CSV files written")
	}
	for name, blob := range csvs {
		lines := strings.Split(strings.TrimRight(string(blob), "\n"), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s has no data rows:\n%s", name, blob)
		}
		// Every row has the header's column count.
		want := strings.Count(lines[0], ",")
		for i, ln := range lines {
			if strings.Count(ln, ",") != want {
				t.Fatalf("%s row %d is ragged: %q (header %q)", name, i, ln, lines[0])
			}
		}
	}
}

// TestFairbenchDeterministic: two runs with the same seed produce
// byte-identical CSVs and (timing-normalised) identical stdout — the
// property every fixed-seed regression baseline in this repo rests on.
func TestFairbenchDeterministic(t *testing.T) {
	out1, csv1 := runOnce(t, "1")
	out2, csv2 := runOnce(t, "1")
	if out1 != out2 {
		t.Fatalf("stdout differs across identical seeds:\n--- a\n%s\n--- b\n%s", out1, out2)
	}
	if len(csv1) != len(csv2) {
		t.Fatalf("CSV sets differ: %d vs %d files", len(csv1), len(csv2))
	}
	names := make([]string, 0, len(csv1))
	for n := range csv1 {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if !bytes.Equal(csv1[n], csv2[n]) {
			t.Fatalf("%s differs across identical seeds:\n--- a\n%s\n--- b\n%s", n, csv1[n], csv2[n])
		}
	}
}

// TestFairbenchBadFlag: unknown flags are a usage error, not a crash,
// while -h is plain usage output (exit 0).
func TestFairbenchBadFlag(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for bad flag, want 2", code)
	}
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d for -h, want 0", code)
	}
}

// TestFairbenchRecordMirroredToRoot: with the default record path the
// BENCH_<date>.json lands both in -out (next to the CSVs) and in the
// working directory, where the trajectory tooling scans for it. An
// explicit -json path suppresses the mirror.
func TestFairbenchRecordMirroredToRoot(t *testing.T) {
	root := t.TempDir()
	t.Chdir(root)
	outDir := filepath.Join(root, "results")
	if err := os.Mkdir(outDir, 0o755); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-small", "-seed", "1", "-only", "EXP-A6", "-out", outDir}, &out, &errb); code != 0 {
		t.Fatalf("fairbench exited %d: %s", code, errb.String())
	}
	inOut, err := filepath.Glob(filepath.Join(outDir, "BENCH_*.json"))
	if err != nil || len(inOut) != 1 {
		t.Fatalf("record missing from -out dir: %v %v", inOut, err)
	}
	atRoot, err := filepath.Glob(filepath.Join(root, "BENCH_*.json"))
	if err != nil || len(atRoot) != 1 {
		t.Fatalf("record not mirrored to the working directory: %v %v", atRoot, err)
	}
	a, _ := os.ReadFile(inOut[0])
	b, _ := os.ReadFile(atRoot[0])
	if !bytes.Equal(a, b) {
		t.Fatal("mirrored record differs from the -out record")
	}
	// An explicit -json path is authoritative: no extra copies.
	sub := filepath.Join(root, "sub")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Chdir(sub)
	out.Reset()
	if code := run([]string{"-small", "-seed", "1", "-only", "EXP-A6", "-out", outDir, "-json", filepath.Join(outDir, "rec.json")}, &out, &errb); code != 0 {
		t.Fatalf("fairbench exited %d: %s", code, errb.String())
	}
	if stray, _ := filepath.Glob(filepath.Join(sub, "BENCH_*.json")); len(stray) != 0 {
		t.Fatalf("-json run still mirrored a record: %v", stray)
	}
}

// goldenStdoutHash pins the full -small -seed 1 experiment suite's
// stdout (header lines stripped — they carry wall-clock seconds). The
// kernel-sharding PR verified this hash is unchanged by the envelope
// pool and the SelectInto scratch reuse: both are output-invariant. If
// a change moves it on purpose, regenerate with:
//
//	go run ./cmd/fairbench -seed 1 -small -out '' -json '' | grep -v '^##########' | sha256sum
const goldenStdoutHash = "2204ff6916201697cc3065dddaf3861ad5fdf9b6b5630a3ee587602ae94bcdf1"

// stableStdout strips the wall-clock-bearing header lines, mirroring
// the grep in the regeneration command (including grep's omission of a
// trailing newline-less empty element).
func stableStdout(out string) string {
	var b strings.Builder
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "##########") {
			continue
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return strings.TrimSuffix(b.String(), "\n")
}

func TestGoldenStdoutHash(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full -small experiment suite")
	}
	var stdout, stderr bytes.Buffer
	if rc := run([]string{"-seed", "1", "-small", "-out", "", "-json", ""}, &stdout, &stderr); rc != 0 {
		t.Fatalf("fairbench exited %d: %s", rc, stderr.String())
	}
	sum := sha256.Sum256([]byte(stableStdout(stdout.String())))
	if got := hex.EncodeToString(sum[:]); got != goldenStdoutHash {
		t.Errorf("stdout hash %s, want %s — the fixed-seed experiment output changed; "+
			"if intentional, update goldenStdoutHash", got, goldenStdoutHash)
	}
}

// The emitted record must satisfy the benchrecord schema and carry flat
// numeric metrics — the regression test for the empty-trajectory bug,
// where every number was a string buried inside nested tables and the
// scan found records with nothing to plot.
func TestEmittedRecordValidatesWithMetrics(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "record.json")
	var stdout, stderr bytes.Buffer
	args := []string{"-seed", "3", "-small", "-only", "EXP-A6", "-out", dir, "-json", path}
	if rc := run(args, &stdout, &stderr); rc != 0 {
		t.Fatalf("fairbench exited %d: %s", rc, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := benchrecord.Parse(data)
	if err != nil {
		t.Fatalf("emitted record fails its own schema: %v", err)
	}
	if r.Seed != 3 || !r.Small {
		t.Errorf("record coordinates (seed=%d, small=%v) don't match the run", r.Seed, r.Small)
	}
	if _, ok := r.Metrics["seconds.exp-a6"]; !ok {
		t.Errorf("no seconds.exp-a6 metric; keys: %v", metricKeys(r))
	}
	// Table metrics must be harvested too, or the trajectory is
	// timings-only.
	harvested := 0
	for k := range r.Metrics {
		if strings.HasPrefix(k, "exp-a6.") {
			harvested++
		}
	}
	if harvested == 0 {
		t.Errorf("no table metrics harvested; keys: %v", metricKeys(r))
	}
}

// The -huge tier must append EXP-HUGE with per-shard scaling metrics.
// Runs at test scale is not possible — the tier is pinned at N=100k —
// so this is gated behind -short like the golden hash.
func TestHugeTierRecordsScalingMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the N=100k tier")
	}
	path := filepath.Join(t.TempDir(), "record.json")
	var stdout, stderr bytes.Buffer
	// EXP-NONE matches no standard experiment: the huge tier runs alone.
	args := []string{"-seed", "2", "-only", "EXP-NONE", "-huge", "-shards", "1,2",
		"-out", "", "-json", path}
	if rc := run(args, &stdout, &stderr); rc != 0 {
		t.Fatalf("fairbench exited %d: %s", rc, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := benchrecord.Parse(data)
	if err != nil {
		t.Fatalf("huge record fails the schema: %v", err)
	}
	for _, k := range []string{
		"exp-huge.shards1.rounds_per_sec",
		"exp-huge.shards2.rounds_per_sec",
		"exp-huge.shards1.msgs_sent",
	} {
		if v, ok := r.Metrics[k]; !ok || v <= 0 {
			t.Errorf("metric %s missing or non-positive (%v); keys: %v", k, v, metricKeys(r))
		}
	}
	if n := r.Metrics["exp-huge.shards1.n"]; n < 100000 {
		t.Errorf("huge tier ran at N=%v, want >= 100000", n)
	}
}

func metricKeys(r *benchrecord.Record) []string {
	keys := make([]string, 0, len(r.Metrics))
	for k := range r.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
