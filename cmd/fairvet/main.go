// Command fairvet is the project's vet: a multichecker running the
// fairgossip-specific analyzers that machine-enforce the repo's
// invariants — fixed-seed determinism, exact drop conservation,
// encode-once buffer ownership, copy-on-write publication,
// allocation-free hot paths (interprocedurally, over the call graph),
// goroutine-leak freedom, wire-kind switch exhaustiveness, and
// annotated mutex discipline. `make lint` runs it over the whole tree;
// a clean run means zero unsuppressed findings and a verified
// justification on every //fair:ignore escape hatch.
//
// Usage:
//
//	fairvet [-rules r1,r2] [-list] [-json] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status is 1 when findings remain, 2 on load or usage errors
// (including a -rules naming no known rule). With -json, each finding
// is one JSON object per line: {"file","line","col","rule","message"}.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fairgossip/internal/analysis"
	"fairgossip/internal/analysis/rules"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fairvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the rule catalogue and exit")
	jsonOut := fs.Bool("json", false, "emit findings as one JSON object per line")
	ruleNames := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		printCatalogue(stdout)
		return 0
	}

	active := rules.All()
	if *ruleNames != "" {
		var unknown []string
		active, unknown = rules.ByName(strings.Split(*ruleNames, ","))
		if len(unknown) > 0 {
			fmt.Fprintf(stderr, "fairvet: unknown rule(s) in -rules: %s\n\nthe rule catalogue:\n", strings.Join(unknown, ", "))
			printCatalogue(stderr)
			return 2
		}
		if len(active) == 0 {
			fmt.Fprintf(stderr, "fairvet: -rules named no rules\n")
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "fairvet: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(pkgs, active, rules.Known())
	if err != nil {
		fmt.Fprintf(stderr, "fairvet: %v\n", err)
		return 2
	}
	for _, f := range findings {
		if *jsonOut {
			line, err := json.Marshal(jsonFinding{
				File:    f.Position.Filename,
				Line:    f.Position.Line,
				Col:     f.Position.Column,
				Rule:    f.Rule,
				Message: f.Message,
			})
			if err != nil {
				fmt.Fprintf(stderr, "fairvet: %v\n", err)
				return 2
			}
			fmt.Fprintf(stdout, "%s\n", line)
		} else {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "fairvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// jsonFinding is the -json line shape; the CI problem matcher in
// .github/fairvet-problem-matcher.json parses the plain-text form, and
// other tooling (editors, dashboards) consumes this one.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func printCatalogue(w io.Writer) {
	for _, a := range rules.All() {
		fmt.Fprintf(w, "%s\n\t%s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(w, "%s\n\t%s\n", analysis.DirectiveRule,
		"Bookkeeping for the //fair: vocabulary itself: unknown directives, ignores naming unknown rules, missing justifications, and stale ignores that suppress nothing.")
}
