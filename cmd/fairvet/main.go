// Command fairvet is the project's vet: a multichecker running the
// fairgossip-specific analyzers that machine-enforce the repo's
// invariants — fixed-seed determinism, exact drop conservation,
// encode-once buffer ownership, copy-on-write publication, and
// allocation-free hot paths. `make lint` runs it over the whole tree;
// a clean run means zero unsuppressed findings and a verified
// justification on every //fair:ignore escape hatch.
//
// Usage:
//
//	fairvet [-rules r1,r2] [-list] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status is 1 when findings remain, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fairgossip/internal/analysis"
	"fairgossip/internal/analysis/rules"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fairvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the rule catalogue and exit")
	ruleNames := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range rules.All() {
			fmt.Fprintf(stdout, "%s\n\t%s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%s\n\t%s\n", analysis.DirectiveRule,
			"Bookkeeping for the //fair: vocabulary itself: unknown directives, ignores naming unknown rules, missing justifications, and stale ignores that suppress nothing.")
		return 0
	}

	active := rules.All()
	if *ruleNames != "" {
		active = rules.ByName(strings.Split(*ruleNames, ","))
		if len(active) == 0 {
			fmt.Fprintf(stderr, "fairvet: no known rules in -rules=%s\n", *ruleNames)
			return 2
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "fairvet: %v\n", err)
		return 2
	}
	findings, err := analysis.Run(pkgs, active, rules.Known())
	if err != nil {
		fmt.Fprintf(stderr, "fairvet: %v\n", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(stdout, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "fairvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
