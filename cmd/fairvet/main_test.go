package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestListCatalogue(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("fairvet -list = %d, stderr: %s", code, errb.String())
	}
	for _, rule := range []string{"determinism", "dropacct", "bufown", "cowatomic", "hotpath", "goroleak", "wirekind", "guardedby", "directive"} {
		if !strings.Contains(out.String(), rule+"\n") {
			t.Errorf("catalogue is missing rule %q:\n%s", rule, out.String())
		}
	}
}

// TestUnknownRuleSubset pins exit code 2 for a -rules naming anything
// unknown — even alongside valid names — with the catalogue printed so
// the caller can fix the invocation without a second command.
func TestUnknownRuleSubset(t *testing.T) {
	for _, arg := range []string{"nosuchrule", "hotpath,nosuchrule"} {
		var out, errb strings.Builder
		if code := run([]string{"-rules", arg}, &out, &errb); code != 2 {
			t.Fatalf("fairvet -rules %s = %d, want 2", arg, code)
		}
		if !strings.Contains(errb.String(), "unknown rule(s) in -rules: nosuchrule") {
			t.Errorf("-rules %s: stderr = %q, want the unknown-rule complaint", arg, errb.String())
		}
		if !strings.Contains(errb.String(), "wirekind\n") {
			t.Errorf("-rules %s: stderr should print the catalogue, got %q", arg, errb.String())
		}
	}
}

// TestSelfClean pins exit code 0: fairvet over its own (clean) package.
func TestSelfClean(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"."}, &out, &errb); code != 0 {
		t.Fatalf("fairvet over its own package = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}

// TestFindingsExitOne pins exit code 1 on a package with unsuppressed
// findings, using the wirekind fixture (two seeded violations).
func TestFindingsExitOne(t *testing.T) {
	t.Chdir("../../internal/analysis/rules/testdata")
	var out, errb strings.Builder
	if code := run([]string{"./wirekind"}, &out, &errb); code != 1 {
		t.Fatalf("fairvet over the wirekind fixture = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("stderr = %q, want the finding count", errb.String())
	}
}

// TestFindingsJSON pins the -json line shape end to end: one object
// per finding, parseable, with the fields tooling consumes.
func TestFindingsJSON(t *testing.T) {
	t.Chdir("../../internal/analysis/rules/testdata")
	var out, errb strings.Builder
	if code := run([]string{"-json", "./wirekind"}, &out, &errb); code != 1 {
		t.Fatalf("fairvet -json over the wirekind fixture = %d, want 1\nstderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d JSON lines, want 2:\n%s", len(lines), out.String())
	}
	for _, line := range lines {
		var f jsonFinding
		if err := json.Unmarshal([]byte(line), &f); err != nil {
			t.Fatalf("unparseable -json line %q: %v", line, err)
		}
		if f.Rule != "wirekind" {
			t.Errorf("finding rule = %q, want wirekind", f.Rule)
		}
		if !strings.HasSuffix(f.File, "wirekind.go") {
			t.Errorf("finding file = %q, want a wirekind.go path", f.File)
		}
		if f.Line <= 0 || f.Col <= 0 {
			t.Errorf("finding position = %d:%d, want positive", f.Line, f.Col)
		}
		if !strings.Contains(f.Message, "switch over wirekind kinds") {
			t.Errorf("finding message = %q, want the wirekind message", f.Message)
		}
	}
}
