package main

import (
	"strings"
	"testing"
)

func TestListCatalogue(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("fairvet -list = %d, stderr: %s", code, errb.String())
	}
	for _, rule := range []string{"determinism", "dropacct", "bufown", "cowatomic", "hotpath", "directive"} {
		if !strings.Contains(out.String(), rule+"\n") {
			t.Errorf("catalogue is missing rule %q:\n%s", rule, out.String())
		}
	}
}

func TestUnknownRuleSubset(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-rules", "nosuchrule"}, &out, &errb); code != 2 {
		t.Fatalf("fairvet -rules nosuchrule = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "no known rules") {
		t.Errorf("stderr = %q, want a no-known-rules complaint", errb.String())
	}
}

func TestSelfClean(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"."}, &out, &errb); code != 0 {
		t.Fatalf("fairvet over its own package = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}
