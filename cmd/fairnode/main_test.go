package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFairnodeDemoUDP: the demo subcommand runs a real multi-socket
// cluster end to end — every expected delivery arrives over loopback
// UDP and the report sections are printed.
func TestFairnodeDemoUDP(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"demo", "-n", "6", "-events", "10", "-seed", "2"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	s := out.String()
	for _, want := range []string{"127.0.0.1:", "watches t", "transport traffic:", "fairness report:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in output:\n%s", want, s)
		}
	}
	if strings.Contains(s, "delivered 0 of") {
		t.Fatalf("nothing was delivered:\n%s", s)
	}
}

// TestFairnodeDemoJoiners: -join boots extra peers into the running
// cluster through real membership handshakes; they get addresses,
// subscribe, and the demo still reaches full delivery counting them.
func TestFairnodeDemoJoiners(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"demo", "-n", "6", "-join", "3", "-events", "10", "-seed", "4"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	s := out.String()
	for _, want := range []string{"node  6", "node  8", "joins, watches"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in output:\n%s", want, s)
		}
	}
	if strings.Contains(s, "delivered 0 of") {
		t.Fatalf("nothing was delivered:\n%s", s)
	}
}

// TestFairnodeDemoChanTransport: the same demo runs on the in-process
// transport via the -transport knob.
func TestFairnodeDemoChanTransport(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"demo", "-n", "5", "-events", "8", "-transport", "chan", "-seed", "3"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "chan://") {
		t.Fatalf("chan transport addresses missing:\n%s", out.String())
	}
}

// TestFairnodeUsageAndErrors: bad invocations are usage errors; help
// exits zero.
func TestFairnodeUsageAndErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"warp"}, &out, &errb); code != 2 {
		t.Fatalf("unknown subcommand: exit %d, want 2", code)
	}
	if code := run([]string{"demo", "-transport", "tcp"}, &out, &errb); code != 2 {
		t.Fatalf("unknown transport: exit %d, want 2", code)
	}
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h: exit %d, want 0", code)
	}
	if code := run([]string{"demo", "-h"}, &out, &errb); code != 0 {
		t.Fatalf("demo -h: exit %d, want 0", code)
	}
}

// TestFairnodeDemoLeavers: -leave makes the last founders depart
// gracefully once the cluster runs; they owe no deliveries and the demo
// still reaches full delivery over the survivors.
func TestFairnodeDemoLeavers(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"demo", "-n", "8", "-leave", "2", "-events", "10", "-transport", "chan", "-seed", "5"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	s := out.String()
	for _, want := range []string{"will depart gracefully", "node  7  departed gracefully"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in output:\n%s", want, s)
		}
	}
	if strings.Contains(s, "delivered 0 of") {
		t.Fatalf("nothing was delivered:\n%s", s)
	}
	if code := run([]string{"demo", "-n", "4", "-leave", "4"}, &out, &errb); code != 2 {
		t.Fatalf("-leave == n: exit %d, want 2 (usage error)", code)
	}
}
