// Command fairnode runs live FairGossip peers as networked nodes: real
// loopback datagram sockets, one per peer, with the binary wire codec
// on every link — the deployed form of the system, as opposed to
// fairsim's simulations.
//
// Subcommands:
//
//	fairnode demo   run a small multi-socket cluster end to end: bind
//	                sockets, subscribe a Zipf-ish interest set, publish
//	                a paced workload, wait for full delivery, and print
//	                the per-peer addresses, transport traffic, and the
//	                fairness report.
//
// Examples:
//
//	fairnode demo
//	fairnode demo -n 12 -events 48 -transport udp -target 2500
//	fairnode demo -n 8 -join 4       # four peers join the running cluster
//	fairnode demo -n 10 -leave 2     # two peers depart gracefully mid-run
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"fairgossip"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches subcommands. It is the testable entry point: exit code
// plus explicit writers.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "demo":
			return runDemo(args[1:], stdout, stderr)
		case "-h", "--help", "help":
			fmt.Fprintln(stdout, "usage: fairnode demo [flags]   (fairnode demo -h for flags)")
			return 0
		}
	}
	fmt.Fprintln(stderr, "usage: fairnode demo [flags]")
	return 2
}

func runDemo(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fairnode demo", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n         = fs.Int("n", 8, "number of founding peers (one socket each)")
		join      = fs.Int("join", 0, "extra peers that join the running cluster before publishing")
		leave     = fs.Int("leave", 0, "founders that depart gracefully once the cluster runs (they subscribe to nothing)")
		events    = fs.Int("events", 24, "events to publish")
		payload   = fs.Int("payload", 64, "event payload bytes")
		topics    = fs.Int("topics", 4, "topic count")
		period    = fs.Duration("period", 5*time.Millisecond, "gossip round period")
		target    = fs.Float64("target", 0, "fairness target f (>0 enables the AIMD controller)")
		transport = fs.String("transport", "udp", "transport: udp (real loopback sockets) | chan (in-process)")
		seed      = fs.Int64("seed", 1, "workload seed")
		timeout   = fs.Duration("timeout", 30*time.Second, "delivery wait bound")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	cfg := fairgossip.LiveConfig{
		N:           *n,
		RoundPeriod: *period,
		TargetRatio: *target,
		Seed:        *seed,
	}
	switch *transport {
	case "udp":
		cfg.Transport = fairgossip.TransportUDP()
	case "chan":
		cfg.Transport = fairgossip.TransportChan()
	default:
		fmt.Fprintf(stderr, "fairnode demo: unknown transport %q (want udp or chan)\n", *transport)
		return 2
	}
	cluster, err := fairgossip.NewLive(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "fairnode demo: %v\n", err)
		return 1
	}
	defer cluster.Stop()

	if *leave < 0 || *leave >= *n {
		fmt.Fprintf(stderr, "fairnode demo: -leave %d out of range [0,%d)\n", *leave, *n)
		return 2
	}

	// Interest: peer i watches topic i mod T, so every topic has a known
	// subscriber set and expected delivery counts are exact. The last
	// -leave founders subscribe to nothing: they will depart gracefully
	// mid-run, so they must owe no deliveries.
	staying := *n - *leave
	subsOf := make(map[string]int, *topics)
	for i := 0; i < staying; i++ {
		topic := fmt.Sprintf("t%d", i%*topics)
		if _, ok := cluster.Subscribe(i, fairgossip.TopicFilter(topic)); !ok {
			fmt.Fprintln(stderr, "fairnode demo: subscribe failed")
			return 1
		}
		subsOf[topic]++
		fmt.Fprintf(stdout, "node %2d  %-22s watches %s\n", i, cluster.Addr(i), topic)
	}

	for i := staying; i < *n; i++ {
		fmt.Fprintf(stdout, "node %2d  %-22s will depart gracefully\n", i, cluster.Addr(i))
	}

	cluster.Start()
	rng := rand.New(rand.NewSource(*seed))

	// Graceful departures: each leaver hands its freshest view entries
	// to its neighbours in KindLeave envelopes before going silent, so
	// the survivors scrub its address without probe timeouts. A short
	// pause first lets the overlay mix so there are views to hand over.
	if *leave > 0 {
		time.Sleep(6 * *period)
		for i := staying; i < *n; i++ {
			if !cluster.Leave(i) {
				fmt.Fprintf(stderr, "fairnode demo: leave of node %d failed\n", i)
				return 1
			}
			fmt.Fprintf(stdout, "node %2d  departed gracefully\n", i)
		}
	}

	// Late joiners: boot mid-run through round-robin seeds (each join is
	// a real membership handshake over the transport), subscribe, and
	// count toward expected deliveries like everyone else. A short pause
	// lets their addresses spread through view shuffles before events
	// start flowing.
	total := *n
	for k := 0; k < *join; k++ {
		id, err := cluster.Join(k % staying) // seeds must still be up: departed founders answer nothing
		if err != nil {
			fmt.Fprintf(stderr, "fairnode demo: join: %v\n", err)
			return 1
		}
		topic := fmt.Sprintf("t%d", id%*topics)
		if _, ok := cluster.Subscribe(id, fairgossip.TopicFilter(topic)); !ok {
			fmt.Fprintln(stderr, "fairnode demo: subscribe on joiner failed")
			return 1
		}
		subsOf[topic]++
		total++
		fmt.Fprintf(stdout, "node %2d  %-22s joins, watches %s\n", id, cluster.Addr(id), topic)
	}
	if *join > 0 {
		time.Sleep(8 * *period)
	}

	expected := uint64(0)
	for k := 0; k < *events; k++ {
		topic := fmt.Sprintf("t%d", rng.Intn(*topics))
		pub := rng.Intn(staying) // departed peers cannot publish
		if !cluster.Publish(pub, topic, nil, make([]byte, *payload)) {
			fmt.Fprintln(stderr, "fairnode demo: publish failed")
			return 1
		}
		expected += uint64(subsOf[topic])
		time.Sleep(*period) // paced: stay inside batch x buffer-TTL spread capacity
	}

	delivered := func() uint64 {
		var d uint64
		for i := 0; i < total; i++ {
			d += cluster.Ledger().Account(i).Delivered
		}
		return d
	}
	deadline := time.Now().Add(*timeout)
	for delivered() < expected && time.Now().Before(deadline) {
		time.Sleep(*period)
	}
	cluster.Stop() // settle the transport so the traffic counters are final

	got := delivered()
	fmt.Fprintf(stdout, "\ndelivered %d of %d interested (peer,event) pairs\n", got, expected)
	tr := cluster.Traffic()
	fmt.Fprintf(stdout, "transport traffic: %d envelopes sent, %d received, %d dropped (%d inbox, %d fault, %d refused)\n",
		tr.Sent, tr.Recv, tr.Dropped, tr.InboxDrops, tr.FaultDrops, tr.TransportDrops)
	fmt.Fprintln(stdout, "\nfairness report:")
	fmt.Fprintln(stdout, cluster.Report().String())
	if got < expected {
		fmt.Fprintf(stderr, "fairnode demo: timed out with %d of %d deliveries\n", got, expected)
		return 1
	}
	return 0
}
