package main

import (
	"bytes"
	"regexp"
	"strings"
	"testing"
)

var wallClock = regexp.MustCompile(`in [0-9.]+s wall`)

func runSingleOnce(t *testing.T) string {
	t.Helper()
	var out, errb bytes.Buffer
	code := run([]string{"-n", "48", "-rounds", "20", "-seed", "5"}, &out, &errb)
	if code != 0 {
		t.Fatalf("fairsim exited %d: %s", code, errb.String())
	}
	return wallClock.ReplaceAllString(out.String(), "in (T) wall")
}

// TestFairsimSingleSmoke: the classic mode prints a complete report.
func TestFairsimSingleSmoke(t *testing.T) {
	out := runSingleOnce(t)
	for _, want := range []string{"fairgossip: n=48", "network", "events delivered", "top 5 contributors:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// TestFairsimSingleDeterministic: same seed, same output (wall clock
// normalised).
func TestFairsimSingleDeterministic(t *testing.T) {
	a, b := runSingleOnce(t), runSingleOnce(t)
	if a != b {
		t.Fatalf("output differs across identical seeds:\n--- a\n%s\n--- b\n%s", a, b)
	}
}

// TestFairsimScenarioList: the subcommand lists every built-in.
func TestFairsimScenarioList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"scenario", "-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	for _, want := range []string{"calm", "churn-waves", "partition-heal", "lossy", "flash-crowd", "sub-churn", "free-riders", "storm"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("scenario %q missing from -list:\n%s", want, out.String())
		}
	}
}

// TestFairsimScenarioRun: a sim scenario run passes its invariants and
// is byte-identical across two runs with the same seed (no wall-clock
// text in scenario output at all).
func TestFairsimScenarioRun(t *testing.T) {
	runOnce := func() string {
		var out, errb bytes.Buffer
		if code := run([]string{"scenario", "-name", "churn-waves", "-runtime", "sim", "-seed", "3"}, &out, &errb); code != 0 {
			t.Fatalf("exit %d: %s\n%s", code, errb.String(), out.String())
		}
		return out.String()
	}
	a := runOnce()
	if !strings.Contains(a, "invariants         all passing") {
		t.Fatalf("scenario did not pass:\n%s", a)
	}
	if b := runOnce(); a != b {
		t.Fatalf("scenario output differs across identical seeds:\n--- a\n%s--- b\n%s", a, b)
	}
}

// TestFairsimScenarioUDPTransport: -transport udp maps the live
// runtime onto real loopback sockets; the run must pass its invariants
// and identify itself as live-udp.
func TestFairsimScenarioUDPTransport(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"scenario", "-name", "calm", "-runtime", "live", "-transport", "udp", "-seed", "3"}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d: %s\n%s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "runtime=live-udp") {
		t.Fatalf("run did not report the udp runtime:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "invariants         all passing") {
		t.Fatalf("udp scenario did not pass:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "msgs sent") {
		t.Fatalf("live traffic counters missing from output:\n%s", out.String())
	}
	// The self-consistent pair -runtime live-udp -transport udp is
	// accepted, not rejected as a flag conflict.
	out.Reset()
	errb.Reset()
	if code := run([]string{"scenario", "-name", "calm", "-runtime", "live-udp", "-transport", "udp", "-seed", "3"}, &out, &errb); code != 0 {
		t.Fatalf("live-udp + -transport udp: exit %d: %s", code, errb.String())
	}
}

// TestFairsimScenarioErrors: unknown names and runtimes are usage
// errors.
func TestFairsimScenarioErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"scenario", "-name", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown scenario: exit %d, want 2", code)
	}
	if code := run([]string{"scenario", "-name", "calm", "-runtime", "warp"}, &out, &errb); code != 2 {
		t.Fatalf("unknown runtime: exit %d, want 2", code)
	}
	if code := run([]string{"scenario", "-name", "calm", "-transport", "tcp"}, &out, &errb); code != 2 {
		t.Fatalf("unknown transport: exit %d, want 2", code)
	}
	if code := run([]string{"scenario"}, &out, &errb); code != 2 {
		t.Fatalf("missing -name: exit %d, want 2", code)
	}
	if code := run([]string{"-mode", "warp"}, &out, &errb); code != 2 {
		t.Fatalf("unknown mode: exit %d, want 2", code)
	}
}

// TestFairsimHelp: -h prints usage and exits 0, in both modes.
func TestFairsimHelp(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-h"}, &out, &errb); code != 0 {
		t.Fatalf("-h exit %d, want 0", code)
	}
	if code := run([]string{"scenario", "-h"}, &out, &errb); code != 0 {
		t.Fatalf("scenario -h exit %d, want 0", code)
	}
}

// TestFairsimScenarioShapePreset: -shape overlays a WAN preset on any
// scenario; the shaped run still passes and stays deterministic on sim,
// and unknown presets are usage errors.
func TestFairsimScenarioShapePreset(t *testing.T) {
	runOnce := func() string {
		var out, errb bytes.Buffer
		if code := run([]string{"scenario", "-name", "calm", "-runtime", "sim", "-seed", "4", "-shape", "lossy-wan"}, &out, &errb); code != 0 {
			t.Fatalf("exit %d: %s\n%s", code, errb.String(), out.String())
		}
		return out.String()
	}
	a := runOnce()
	if !strings.Contains(a, "invariants         all passing") {
		t.Fatalf("shaped scenario did not pass:\n%s", a)
	}
	if !strings.Contains(a, "msgs dropped") {
		t.Fatalf("traffic counters missing:\n%s", a)
	}
	if b := runOnce(); a != b {
		t.Fatalf("shaped sim run not deterministic:\n--- a\n%s--- b\n%s", a, b)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"scenario", "-name", "calm", "-shape", "marsnet"}, &out, &errb); code != 2 {
		t.Fatalf("unknown preset: exit %d, want 2", code)
	}
}
