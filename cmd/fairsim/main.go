// Command fairsim runs a single FairGossip scenario and prints its
// fairness report — the quickest way to poke at the system's parameters.
//
// Example:
//
//	fairsim -n 256 -mode topics -controller aimd -target 2000 -rounds 300
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"fairgossip/internal/core"
	"fairgossip/internal/fairness"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
	"fairgossip/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n          = flag.Int("n", 256, "number of peers")
		mode       = flag.String("mode", "content", "selectivity mode: content | topics")
		controller = flag.String("controller", "static", "participation: static | aimd | prop")
		target     = flag.Float64("target", 2000, "fairness target f (contribution bytes per benefit unit)")
		fanout     = flag.Int("fanout", 5, "initial/static fanout F")
		batch      = flag.Int("batch", 8, "initial/static gossip message size N (events)")
		topics     = flag.Int("topics", 64, "number of topics (Zipf 1.01 popularity)")
		maxSubs    = flag.Int("maxsubs", 8, "max subscriptions per peer")
		rounds     = flag.Int("rounds", 200, "publishing rounds (1 event/round)")
		payload    = flag.Int("payload", 64, "event payload bytes")
		loss       = flag.Float64("loss", 0, "message loss probability")
		seed       = flag.Int64("seed", 1, "random seed")
		top        = flag.Int("top", 5, "top contributors to list")
	)
	flag.Parse()

	cfg := core.Config{
		Fanout: *fanout,
		Batch:  *batch,
	}
	switch *mode {
	case "content":
		cfg.Mode = core.ModeContent
	case "topics":
		cfg.Mode = core.ModeTopics
	default:
		fmt.Fprintf(os.Stderr, "fairsim: unknown mode %q\n", *mode)
		return 2
	}
	switch *controller {
	case "static":
		cfg.Controller = core.ControllerSpec{Kind: core.ControllerStatic}
	case "aimd":
		cfg.Controller = core.ControllerSpec{Kind: core.ControllerAIMD, TargetRatio: *target}
	case "prop":
		cfg.Controller = core.ControllerSpec{Kind: core.ControllerProportional, TargetRatio: *target}
	default:
		fmt.Fprintf(os.Stderr, "fairsim: unknown controller %q\n", *controller)
		return 2
	}

	cluster := core.NewCluster(*n, cfg, core.ClusterOptions{
		Seed: *seed,
		NetConfig: simnet.Config{
			Latency: simnet.ConstantLatency(2 * time.Millisecond),
			Loss:    *loss,
		},
	})

	tp := workload.NewTopics(*topics, 1.01)
	rng := rand.New(rand.NewSource(*seed + 99))
	subsOf := make(map[string][]int)
	for i := 0; i < *n; i++ {
		for _, topic := range tp.SampleSet(rng, workload.SubCount(rng, 1, *maxSubs)) {
			cluster.Node(i).Subscribe(pubsub.Topic(topic))
			subsOf[topic] = append(subsOf[topic], i)
		}
	}

	start := time.Now()
	cluster.RunRounds(15)
	for r := 0; r < *rounds; r++ {
		topic := tp.Sample(rng)
		pub := rng.Intn(*n)
		if subs := subsOf[topic]; len(subs) > 0 {
			pub = subs[rng.Intn(len(subs))]
		}
		cluster.Node(pub).Publish(topic, nil, make([]byte, *payload))
		cluster.RunRounds(1)
	}
	cluster.RunRounds(15)
	elapsed := time.Since(start)

	fmt.Printf("fairgossip: n=%d mode=%s controller=%s target=%.0f seed=%d\n",
		*n, *mode, *controller, *target, *seed)
	fmt.Printf("simulated %d publishing rounds in %.2fs wall (%d events fired)\n\n",
		*rounds, elapsed.Seconds(), cluster.Sim.Steps())
	fmt.Println(cluster.Report().String())

	tot := cluster.Net.TotalTraffic()
	fmt.Printf("network              %d msgs, %.2f MB, %d dropped\n",
		tot.MsgsSent, float64(tot.BytesSent)/1e6, tot.Dropped)
	fmt.Printf("events delivered     %d\n\n", cluster.DeliveredTotal())

	fmt.Printf("top %d contributors:\n", *top)
	for _, id := range cluster.Ledger.TopContributors(*top) {
		a := cluster.Ledger.Account(id)
		fmt.Printf("  node %-4d contribution %-12.0f benefit %-8.0f ratio %.1f (F=%d N=%d)\n",
			id,
			fairness.Contribution(a, cluster.Ledger.Weights()),
			fairness.Benefit(a, cluster.Ledger.Weights()),
			fairness.Ratio(a, cluster.Ledger.Weights()),
			cluster.Node(id).Fanout(), cluster.Node(id).Batch())
	}
	return 0
}
