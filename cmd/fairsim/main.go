// Command fairsim runs a single FairGossip simulation and prints its
// fairness report — the quickest way to poke at the system's parameters.
// The scenario subcommand runs a named fault-injection scenario from the
// built-in table (see SCENARIOS.md) with machine-checked invariants.
//
// Examples:
//
//	fairsim -n 256 -mode topics -controller aimd -target 2000 -rounds 300
//	fairsim scenario -list
//	fairsim scenario -name storm -runtime both -seed 7
//	fairsim scenario -name storm -runtime live -transport udp
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"fairgossip"
	"fairgossip/internal/core"
	"fairgossip/internal/fairness"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
	"fairgossip/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches to the scenario subcommand or the classic single-run
// mode. It is the testable entry point: exit code plus explicit writers.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "scenario" {
		return runScenario(args[1:], stdout, stderr)
	}
	return runSingle(args, stdout, stderr)
}

// runScenario executes named scenarios from the built-in table.
func runScenario(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fairsim scenario", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		name      = fs.String("name", "", "built-in scenario to run (see -list)")
		runtime   = fs.String("runtime", "sim", "runtime: sim | live | both | all")
		transport = fs.String("transport", "chan", "live-runtime transport: chan (in-process) | udp (real loopback sockets)")
		seed      = fs.Int64("seed", 1, "schedule seed (sim: same seed = identical result)")
		shape     = fs.String("shape", "", "WAN shaping preset applied on top of the scenario: none | wan | lossy-wan | mobile")
		list      = fs.Bool("list", false, "list the built-in scenario table and exit")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *list {
		for _, sc := range fairgossip.ScenarioNames() {
			s, _ := fairgossip.ScenarioByName(sc)
			fmt.Fprintf(stdout, "%-16s %s\n", s.Name, s.Note)
		}
		return 0
	}
	if *name == "" {
		fmt.Fprintln(stderr, "fairsim scenario: -name required (or -list)")
		return 2
	}
	// -transport picks the substrate for live entries: "live" + udp is
	// the RunScenario runtime "live-udp".
	liveRT := "live"
	switch *transport {
	case "", "chan":
	case "udp":
		liveRT = "live-udp"
	default:
		fmt.Fprintf(stderr, "fairsim scenario: unknown transport %q (want chan or udp)\n", *transport)
		return 2
	}
	var runtimes []string
	switch *runtime {
	case "both":
		runtimes = []string{"sim", liveRT}
	case "all":
		// Both live columns run regardless; -transport is subsumed.
		runtimes = []string{"sim", "live", "live-udp"}
	case "live":
		runtimes = []string{liveRT}
	case "live-udp":
		// Already transport-pinned; -transport udp is redundant but
		// consistent.
		runtimes = []string{"live-udp"}
	default:
		// The simulator (and any verbatim runtime name) has no transport
		// axis: refuse a -transport that would be silently ignored.
		if liveRT != "live" {
			fmt.Fprintf(stderr, "fairsim scenario: -transport %s only applies to -runtime live/both\n", *transport)
			return 2
		}
		runtimes = []string{*runtime}
	}
	sc, ok := fairgossip.ScenarioByName(*name)
	if !ok {
		fmt.Fprintf(stderr, "fairsim scenario: unknown scenario %q (see -list)\n", *name)
		return 2
	}
	if *shape != "" {
		sp, ok := fairgossip.ShapePreset(*shape)
		if !ok {
			fmt.Fprintf(stderr, "fairsim scenario: unknown shape preset %q (want %v)\n",
				*shape, fairgossip.ShapePresetNames())
			return 2
		}
		// The preset overrides the scenario's own profile; a shaped
		// builtin keeps its loss floors, which were tuned with slack.
		sc.Shape = sp
	}
	code := 0
	for _, rt := range runtimes {
		res, err := fairgossip.RunScenarioSpec(sc, rt, *seed)
		if err != nil {
			fmt.Fprintf(stderr, "fairsim scenario: %v\n", err)
			return 2
		}
		fmt.Fprint(stdout, res.String())
		if !res.Ok() {
			code = 1
		}
	}
	return code
}

// runSingle is the classic parameter-poking mode.
func runSingle(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fairsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n          = fs.Int("n", 256, "number of peers")
		mode       = fs.String("mode", "content", "selectivity mode: content | topics")
		controller = fs.String("controller", "static", "participation: static | aimd | prop")
		target     = fs.Float64("target", 2000, "fairness target f (contribution bytes per benefit unit)")
		fanout     = fs.Int("fanout", 5, "initial/static fanout F")
		batch      = fs.Int("batch", 8, "initial/static gossip message size N (events)")
		topics     = fs.Int("topics", 64, "number of topics (Zipf 1.01 popularity)")
		maxSubs    = fs.Int("maxsubs", 8, "max subscriptions per peer")
		rounds     = fs.Int("rounds", 200, "publishing rounds (1 event/round)")
		payload    = fs.Int("payload", 64, "event payload bytes")
		loss       = fs.Float64("loss", 0, "message loss probability")
		seed       = fs.Int64("seed", 1, "random seed")
		top        = fs.Int("top", 5, "top contributors to list")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	cfg := core.Config{
		Fanout: *fanout,
		Batch:  *batch,
	}
	switch *mode {
	case "content":
		cfg.Mode = core.ModeContent
	case "topics":
		cfg.Mode = core.ModeTopics
	default:
		fmt.Fprintf(stderr, "fairsim: unknown mode %q\n", *mode)
		return 2
	}
	switch *controller {
	case "static":
		cfg.Controller = core.ControllerSpec{Kind: core.ControllerStatic}
	case "aimd":
		cfg.Controller = core.ControllerSpec{Kind: core.ControllerAIMD, TargetRatio: *target}
	case "prop":
		cfg.Controller = core.ControllerSpec{Kind: core.ControllerProportional, TargetRatio: *target}
	default:
		fmt.Fprintf(stderr, "fairsim: unknown controller %q\n", *controller)
		return 2
	}

	cluster := core.NewCluster(*n, cfg, core.ClusterOptions{
		Seed: *seed,
		NetConfig: simnet.Config{
			Latency: simnet.ConstantLatency(2 * time.Millisecond),
			Loss:    *loss,
		},
	})

	tp := workload.NewTopics(*topics, 1.01)
	rng := rand.New(rand.NewSource(*seed + 99))
	subsOf := make(map[string][]int)
	for i := 0; i < *n; i++ {
		for _, topic := range tp.SampleSet(rng, workload.SubCount(rng, 1, *maxSubs)) {
			cluster.Node(i).Subscribe(pubsub.Topic(topic))
			subsOf[topic] = append(subsOf[topic], i)
		}
	}

	start := time.Now()
	cluster.RunRounds(15)
	for r := 0; r < *rounds; r++ {
		topic := tp.Sample(rng)
		pub := rng.Intn(*n)
		if subs := subsOf[topic]; len(subs) > 0 {
			pub = subs[rng.Intn(len(subs))]
		}
		cluster.Node(pub).Publish(topic, nil, make([]byte, *payload))
		cluster.RunRounds(1)
	}
	cluster.RunRounds(15)
	elapsed := time.Since(start)

	fmt.Fprintf(stdout, "fairgossip: n=%d mode=%s controller=%s target=%.0f seed=%d\n",
		*n, *mode, *controller, *target, *seed)
	fmt.Fprintf(stdout, "simulated %d publishing rounds in %.2fs wall (%d events fired)\n\n",
		*rounds, elapsed.Seconds(), cluster.Sim.Steps())
	fmt.Fprintln(stdout, cluster.Report().String())

	tot := cluster.Net.TotalTraffic()
	fmt.Fprintf(stdout, "network              %d msgs, %.2f MB, %d dropped\n",
		tot.MsgsSent, float64(tot.BytesSent)/1e6, tot.Dropped)
	fmt.Fprintf(stdout, "events delivered     %d\n\n", cluster.DeliveredTotal())

	fmt.Fprintf(stdout, "top %d contributors:\n", *top)
	for _, id := range cluster.Ledger.TopContributors(*top) {
		a := cluster.Ledger.Account(id)
		fmt.Fprintf(stdout, "  node %-4d contribution %-12.0f benefit %-8.0f ratio %.1f (F=%d N=%d)\n",
			id,
			fairness.Contribution(a, cluster.Ledger.Weights()),
			fairness.Benefit(a, cluster.Ledger.Weights()),
			fairness.Ratio(a, cluster.Ledger.Weights()),
			cluster.Node(id).Fanout(), cluster.Node(id).Batch())
	}
	return 0
}
