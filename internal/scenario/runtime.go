package scenario

import (
	"math/rand"
	"time"

	"fairgossip/internal/core"
	"fairgossip/internal/fairness"
	"fairgossip/internal/gossip"
	"fairgossip/internal/live"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
	"fairgossip/internal/transport"
)

// Capability flags what a Runtime can do beyond the common fault surface.
type Capability uint8

const (
	// CapDeterministic: same seed ⇒ bit-identical run (the simulator).
	CapDeterministic Capability = iota
	// CapDropStats: network-level sent/received/dropped counters exist,
	// so drop conservation can be checked exactly.
	CapDropStats
)

// Runtime is the small surface a scenario needs from a cluster: the three
// pub/sub operations, fault injection, membership growth, and time. It
// is implemented by both the deterministic simulation (core.Cluster) and
// the goroutine-per-peer runtime (live.Cluster), which is what makes
// differential testing possible: one seeded schedule, two runtimes, the
// same invariants.
type Runtime interface {
	// Name labels the runtime in results ("sim" or "live").
	Name() string
	// N returns the current population size (it grows under Join).
	N() int
	// Has reports an optional capability.
	Has(c Capability) bool

	// Start launches the cluster (idempotent; sim starts lazily).
	Start()
	// Subscribe registers a filter on a peer.
	Subscribe(id int, f pubsub.Filter) (pubsub.SubID, bool)
	// Unsubscribe removes a subscription from a peer.
	Unsubscribe(id int, sub pubsub.SubID) bool
	// Publish originates an event at a peer. Event IDs are (publisher,
	// seq) with seq starting at 1 per publisher, on both runtimes, so the
	// engine can predict them.
	Publish(id int, topic string, attrs []pubsub.Attr, payload []byte) bool
	// OnDeliver installs a delivery observer (install before Start).
	OnDeliver(id int, fn func(*pubsub.Event)) bool

	// Crash / Rejoin / SetFreeRider / Partition / Heal / SetLoss inject
	// the scenario fault vocabulary.
	Crash(id int) bool
	Rejoin(id int) bool
	SetFreeRider(id int, on bool) bool
	Partition(side []int)
	Heal()
	SetLoss(p float64)
	// Leave departs a peer gracefully: it hands its freshest view
	// entries to its neighbours before going silent (both runtimes
	// implement the same KindLeave hand-off protocol).
	Leave(id int) bool

	// SetShape swaps the WAN shaping profile mid-run (round-relative
	// units, converted to the runtime's own clock). Returns false when
	// the runtime cannot shape (never, for the built-in columns: live
	// clusters always carry the middleware and the sim swaps its latency
	// model and composed loss).
	SetShape(sp ShapeSpec) bool
	// RegionOutage cuts the given members off from the rest of the
	// population (on=true) or reconnects everyone (on=false, members
	// ignored). Intra-member traffic still flows.
	RegionOutage(members []int, on bool)
	// Rebind moves a peer to a fresh transport address and re-announces
	// it through the join path. On substrates without real addresses
	// (sim, chan) it is a successful no-op — the address IS the id.
	Rebind(id int) bool

	// Join boots a new peer mid-run, bootstrapped through seed, and
	// returns its id (ids stay dense). On the live runtime the joiner
	// buys its introduction with charged membership traffic; on the sim
	// the idealised directory admits it for free.
	Join(seed int) (int, bool)

	// Step advances time by whole gossip rounds (virtual time on sim,
	// wall-clock sleeps on live).
	Step(rounds int)
	// Drain settles in-flight work after the schedule ends: at least
	// `rounds` further rounds, then (live) until the monotone progress
	// counter stops moving.
	Drain(rounds int, progress func() uint64)

	// Ledger exposes the shared fairness ledger.
	Ledger() *fairness.Ledger
	// Traffic returns network counters when CapDropStats is available.
	Traffic() (sent, recv, dropped uint64, ok bool)
	// Views snapshots every peer's partial view (indexed by peer id),
	// or ok=false when the runtime has no per-peer views to inspect —
	// the sim column's idealised full-membership sampler keeps no
	// views, so the view-hygiene invariant binds only the live columns.
	// Must stay readable after Close (hygiene is judged post-drain).
	Views() ([][]int, bool)
	// Close releases the runtime (stops live goroutines).
	Close()
}

// --- Simulated runtime -------------------------------------------------------

// simRound is the simulator's virtual gossip round (the core.Config
// RoundPeriod default) — the unit ShapeSpec's round-relative fields are
// converted with on the sim column.
const simRound = 100 * time.Millisecond

// simBaseLatency is the sim column's unshaped one-way delay.
const simBaseLatency = 2 * time.Millisecond

// SimRuntime adapts core.ShardedCluster (deterministic discrete-event
// sim, optionally split across per-core shards; Shards=1 is the legacy
// single-threaded engine byte-for-byte).
type SimRuntime struct {
	C *core.ShardedCluster

	// faultLoss and shapeLoss are the two independent loss layers; the
	// network gets their composition 1-(1-fault)(1-shape). The sim has
	// one drop counter, so unlike the live columns the two layers are
	// not separable in Traffic() — but conservation still holds exactly.
	faultLoss float64
	shapeLoss float64
}

// NewSimRuntime builds a simulated cluster configured for a scenario.
// Scenarios run content mode over the idealised full-membership sampler;
// the live runtime runs real Cyclon partial views, so the differential
// table compares the idealised-topology column against two
// partial-view-over-real-transport columns and demands the same
// invariants of all three.
func NewSimRuntime(sc Scenario, seed int64) *SimRuntime {
	sc = sc.withDefaults()
	cfg := core.Config{
		Mode:          core.ModeContent,
		Membership:    core.MemberFull,
		Fanout:        sc.Fanout,
		Batch:         sc.Batch,
		BufferMaxAge:  sc.BufferMaxAge,
		RepairPenalty: sc.RepairPenalty,
		// Least-sent selection guarantees every fresh event wins send
		// slots even under flash-crowd backlog; the eventual-delivery
		// invariant is a real protocol property only in that regime
		// (random selection can starve an event at its publisher — the
		// EXP-A4 result).
		Policy: gossip.PolicyLeastSent,
	}
	if sc.TargetRatio > 0 {
		cfg.Controller = core.ControllerSpec{Kind: core.ControllerAIMD, TargetRatio: sc.TargetRatio}
	}
	c := core.NewShardedCluster(sc.N, sc.Shards, cfg, core.ClusterOptions{
		Seed:      seed,
		NetConfig: simnet.Config{Latency: simnet.ConstantLatency(simBaseLatency)},
	})
	rt := &SimRuntime{C: c}
	if sc.Shape != nil {
		rt.SetShape(*sc.Shape)
	}
	return rt
}

func (s *SimRuntime) Name() string { return "sim" }
func (s *SimRuntime) N() int       { return s.C.N() }

func (s *SimRuntime) Has(c Capability) bool {
	return c == CapDeterministic || c == CapDropStats
}

func (s *SimRuntime) Start() { s.C.Start() }

func (s *SimRuntime) valid(id int) bool { return id >= 0 && id < s.C.N() }

func (s *SimRuntime) Subscribe(id int, f pubsub.Filter) (pubsub.SubID, bool) {
	if !s.valid(id) {
		return 0, false
	}
	return s.C.Node(id).Subscribe(f), true
}

func (s *SimRuntime) Unsubscribe(id int, sub pubsub.SubID) bool {
	return s.valid(id) && s.C.Node(id).Unsubscribe(sub)
}

func (s *SimRuntime) Publish(id int, topic string, attrs []pubsub.Attr, payload []byte) bool {
	if !s.valid(id) {
		return false
	}
	s.C.Node(id).Publish(topic, attrs, payload)
	return true
}

func (s *SimRuntime) OnDeliver(id int, fn func(*pubsub.Event)) bool {
	if !s.valid(id) {
		return false
	}
	s.C.Node(id).OnDeliver = fn
	return true
}

func (s *SimRuntime) Crash(id int) bool {
	if !s.valid(id) {
		return false
	}
	s.C.Node(id).Leave()
	return true
}

func (s *SimRuntime) Rejoin(id int) bool {
	if !s.valid(id) {
		return false
	}
	// Bootstrap through the lowest-numbered live node (unused under the
	// full sampler, but correct if a scenario ever runs Cyclon views).
	boot := simnet.NodeID(0)
	for i := 0; i < s.C.N(); i++ {
		if i != id && s.C.Up(simnet.NodeID(i)) {
			boot = simnet.NodeID(i)
			break
		}
	}
	s.C.Node(id).Rejoin(boot)
	return true
}

func (s *SimRuntime) SetFreeRider(id int, on bool) bool {
	if !s.valid(id) {
		return false
	}
	s.C.Node(id).FreeRide = on
	return true
}

func (s *SimRuntime) Leave(id int) bool {
	if !s.valid(id) {
		return false
	}
	s.C.Leave(simnet.NodeID(id))
	return true
}

// Views reports ok=false: scenario sim runs use the idealised
// full-membership sampler, which holds no partial views to audit.
func (s *SimRuntime) Views() ([][]int, bool) { return nil, false }

func (s *SimRuntime) Join(seed int) (int, bool) {
	if !s.valid(seed) {
		return -1, false
	}
	return int(s.C.Join(simnet.NodeID(seed))), true
}

func (s *SimRuntime) Partition(side []int) {
	ids := make([]simnet.NodeID, 0, len(side))
	for _, id := range side {
		ids = append(ids, simnet.NodeID(id))
	}
	s.C.Partition(ids)
}

func (s *SimRuntime) Heal() { s.C.Heal() }

func (s *SimRuntime) SetLoss(p float64) {
	s.faultLoss = p
	s.applyLoss()
}

// applyLoss installs the composition of the fault and shaper loss
// layers: a message survives only if both layers pass it.
func (s *SimRuntime) applyLoss() {
	s.C.SetLoss(1 - (1-s.faultLoss)*(1-s.shapeLoss))
}

// SetShape maps a round-relative spec onto the simulator: Loss composes
// with fault loss, Delay/Jitter/Reorder become a latency model drawn
// from the sim's own seeded RNG (so shaped runs stay bit-deterministic),
// and RatePerRound is ignored — the idealised network has no bandwidth
// model. The reorder draw mirrors the live shaper: with probability
// Reorder a message takes a large extra delay, up to 3×(delay+jitter),
// and overtakes traffic sent after it.
func (s *SimRuntime) SetShape(sp ShapeSpec) bool {
	s.shapeLoss = sp.Loss
	s.applyLoss()
	delay := time.Duration(sp.DelayRounds * float64(simRound))
	jitter := time.Duration(sp.JitterRounds * float64(simRound))
	if delay <= 0 && jitter <= 0 && sp.Reorder <= 0 {
		s.C.SetLatency(simnet.ConstantLatency(simBaseLatency))
		return true
	}
	reorder := sp.Reorder
	span := 3 * (delay + jitter)
	if span <= 0 {
		span = time.Millisecond
	}
	s.C.SetLatency(func(rng *rand.Rand, _, _ simnet.NodeID) time.Duration {
		d := simBaseLatency + delay
		if jitter > 0 {
			d += time.Duration(rng.Int63n(int64(jitter)))
		}
		if reorder > 0 && rng.Float64() < reorder {
			d += time.Duration(rng.Int63n(int64(span)))
		}
		return d
	})
	return true
}

// RegionOutage maps a regional cut onto the sim's partition model: the
// members keep talking among themselves and lose everyone else, which
// is exactly the shaper's region-tag semantics with a hard (OutageLoss
// = 1) boundary.
func (s *SimRuntime) RegionOutage(members []int, on bool) {
	if !on {
		s.C.Heal()
		return
	}
	s.Partition(members)
}

// Rebind is a successful no-op: the simulator addresses nodes by dense
// id, so an address change is invisible to it.
func (s *SimRuntime) Rebind(id int) bool { return s.valid(id) }

func (s *SimRuntime) Step(rounds int) { s.C.RunRounds(rounds) }

// Drain runs the tail rounds, then stops the round tickers and lets the
// event queue empty, so no message is in flight when conservation is
// checked.
func (s *SimRuntime) Drain(rounds int, progress func() uint64) {
	s.C.RunRounds(rounds)
	s.C.Stop()
	s.C.Drain()
}

func (s *SimRuntime) Ledger() *fairness.Ledger { return s.C.Ledger }

func (s *SimRuntime) Traffic() (sent, recv, dropped uint64, ok bool) {
	t := s.C.TotalTraffic()
	return t.MsgsSent, t.MsgsRecv, t.Dropped, true
}

func (s *SimRuntime) Close() { s.C.Stop() }

// --- Live runtime ------------------------------------------------------------

// LiveRoundPeriod is the gossip period scenarios use on the live runtime:
// short enough that a 50-round scenario finishes in well under a second.
const LiveRoundPeriod = 5 * time.Millisecond

// LiveRuntime adapts live.Cluster (one goroutine per peer, wall clock),
// over either transport: "live" is the in-process chan substrate,
// "live-udp" runs the same protocol over one real loopback datagram
// socket per peer — the third differential column.
type LiveRuntime struct {
	C      *live.Cluster
	period time.Duration
	name   string
}

// NewLiveRuntime builds a live cluster configured for a scenario, on
// the default in-process transport.
func NewLiveRuntime(sc Scenario, seed int64) *LiveRuntime {
	rt, err := newLiveRuntime(sc, seed, nil, "live")
	if err != nil {
		// The in-process transport cannot fail to construct.
		panic(err)
	}
	return rt
}

// NewLiveUDPRuntime builds a live cluster whose peers talk through real
// loopback UDP sockets (encode-on-send, decode-on-receive, one socket
// per peer). The error is the bind, if the host refuses that many
// sockets.
func NewLiveUDPRuntime(sc Scenario, seed int64) (*LiveRuntime, error) {
	return newLiveRuntime(sc, seed, transport.UDP(), "live-udp")
}

func newLiveRuntime(sc Scenario, seed int64, tf transport.Factory, name string) (*LiveRuntime, error) {
	sc = sc.withDefaults()
	// Always install the shaping middleware — inert when the scenario
	// declares no profile (one atomic load per send), shaped otherwise —
	// so the Shape/RegionalOutage actions work mid-run on every live
	// column.
	prof := liveProfile(sc.Shape, LiveRoundPeriod)
	c, err := live.NewCluster(live.Config{
		N:            sc.N,
		Fanout:       sc.Fanout,
		Batch:        sc.Batch,
		RoundPeriod:  LiveRoundPeriod,
		TargetRatio:  sc.TargetRatio,
		BufferMaxAge: sc.BufferMaxAge,
		Policy:       gossip.PolicyLeastSent, // see NewSimRuntime
		ViewCap:      sc.ViewCap,
		ShuffleLen:   sc.ShuffleLen,
		ShuffleEvery: sc.ShuffleEvery,
		Seed:         seed,
		Transport:    tf,
		Shape:        &prof,
	})
	if err != nil {
		return nil, err
	}
	return &LiveRuntime{C: c, period: LiveRoundPeriod, name: name}, nil
}

func (l *LiveRuntime) Name() string          { return l.name }
func (l *LiveRuntime) N() int                { return l.C.Ledger().Len() }
func (l *LiveRuntime) Has(c Capability) bool { return c == CapDropStats }
func (l *LiveRuntime) Start()                { l.C.Start() }

func (l *LiveRuntime) Subscribe(id int, f pubsub.Filter) (pubsub.SubID, bool) {
	return l.C.Subscribe(id, f)
}

func (l *LiveRuntime) Unsubscribe(id int, sub pubsub.SubID) bool {
	return l.C.Unsubscribe(id, sub)
}

func (l *LiveRuntime) Publish(id int, topic string, attrs []pubsub.Attr, payload []byte) bool {
	return l.C.Publish(id, topic, attrs, payload)
}

func (l *LiveRuntime) OnDeliver(id int, fn func(*pubsub.Event)) bool {
	return l.C.OnDeliver(id, fn)
}

func (l *LiveRuntime) Crash(id int) bool                 { return l.C.Crash(id) }
func (l *LiveRuntime) Leave(id int) bool                 { return l.C.Leave(id) }
func (l *LiveRuntime) Rejoin(id int) bool                { return l.C.Rejoin(id) }
func (l *LiveRuntime) SetFreeRider(id int, on bool) bool { return l.C.SetFreeRider(id, on) }
func (l *LiveRuntime) Partition(side []int)              { l.C.Partition(side) }
func (l *LiveRuntime) Heal()                             { l.C.Heal() }
func (l *LiveRuntime) SetLoss(p float64)                 { l.C.SetLoss(p) }

// SetShape swaps the middleware profile (always installed — see
// newLiveRuntime), converted to this column's wall-clock round.
func (l *LiveRuntime) SetShape(sp ShapeSpec) bool {
	return l.C.SetShape(liveProfile(&sp, l.period))
}

// RegionOutage tags the members at the shaper; cross-boundary envelopes
// are dropped into the counted ShaperDrops bucket, so drop conservation
// stays exact through the outage.
func (l *LiveRuntime) RegionOutage(members []int, on bool) { l.C.SetOutage(members, on) }

// Rebind moves the peer to a fresh transport endpoint (a real socket
// swap on live-udp, a no-op on the in-process chan substrate) and
// re-announces it through the join handshake.
func (l *LiveRuntime) Rebind(id int) bool { return l.C.Rebind(id) }

func (l *LiveRuntime) Join(seed int) (int, bool) {
	id, err := l.C.Join(seed)
	if err != nil {
		return -1, false
	}
	return id, true
}

func (l *LiveRuntime) Step(rounds int) {
	time.Sleep(time.Duration(rounds) * l.period) //fair:wallclock the live column paces real goroutine rounds in wall time; the sim column never enters this file's LiveRuntime
}

// Drain sleeps the tail rounds, then waits until the delivery counter
// has been stable for several consecutive round periods. The settle
// loop runs through live.Eventually, so the ~10s bound is race-scaled
// exactly like the live package's own deadlines and a wedged cluster
// fails invariants instead of hanging the test.
func (l *LiveRuntime) Drain(rounds int, progress func() uint64) {
	time.Sleep(time.Duration(rounds) * l.period) //fair:wallclock the live column's tail rounds elapse in wall time; the sim column drains virtually
	if progress == nil {
		return
	}
	const stableNeed = 10
	last, stable := progress(), 0
	live.Eventually(10*time.Second, l.period, func() bool {
		cur := progress()
		if cur != last {
			stable, last = 0, cur
			return false
		}
		// Eventually polls once immediately, so require stableNeed+1
		// quiet checks: that is stableNeed full periods of silence,
		// the same margin the old hand-rolled loop gave.
		stable++
		return stable > stableNeed
	})
}

func (l *LiveRuntime) Ledger() *fairness.Ledger { return l.C.Ledger() }

// Views snapshots every peer's partial view; works while running and
// after Close (live.Cluster reads directly once the goroutines exit).
func (l *LiveRuntime) Views() ([][]int, bool) { return l.C.Views(), true }

// Traffic returns the live runtime's envelope-level counters. Since
// the transport refactor every loss the runtime can cause is counted
// (injected faults, full inboxes, refused sends), so the tightened
// drop-conservation invariant applies to live runs too: a storm can no
// longer pass while losing messages invisibly.
func (l *LiveRuntime) Traffic() (sent, recv, dropped uint64, ok bool) {
	t := l.C.Traffic()
	return t.Sent, t.Recv, t.Dropped, true
}

func (l *LiveRuntime) Close() { l.C.Stop() }
