package scenario

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"fairgossip/internal/fairness"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/workload"
)

// subRec is one subscription's lifetime on one node, in publishing-round
// coordinates (Warmup-time subscriptions carry from = -1).
type subRec struct {
	f    pubsub.Filter
	sub  pubsub.SubID
	from int
	to   int // -1 while active
}

// evRec tracks one published event: who must eventually deliver it
// (eligibility shrinks as faults strike) and who actually did.
type evRec struct {
	ev        *pubsub.Event
	round     int
	publisher int
	eligible  []bool
	delivered []bool
	nEligible int
}

// Run is one scenario execution in progress. Actions receive it and
// mutate the runtime through it, so the engine's model of the cluster
// (who is up, who free-rides, which side of a partition each peer is on,
// which filters are live) stays in lockstep with the injected faults —
// that model is what invariants are judged against.
type Run struct {
	sc   Scenario
	rt   Runtime
	seed int64

	// Rng drives every schedule decision (victims, topics, publishers).
	// On the deterministic runtime, seed ⇒ schedule ⇒ result, bit for bit.
	Rng *rand.Rand

	// Round is the current publishing round, -1 during warmup.
	Round int

	// Scratch is free storage for stateful EveryRound hooks. It belongs
	// to this Run, so re-executing a Scenario value starts clean.
	Scratch any

	topics *workload.Topics
	subsOf map[string][]int // topic -> subscribed node IDs (engine view)

	mu         sync.Mutex
	up         []bool
	everDown   []bool
	free       []bool
	group      []int
	joinedAt   []int // publishing round a peer joined; founderJoined for founders
	split      bool
	subs       [][]subRec
	events     map[pubsub.EventID]*evRec
	evOrder    []pubsub.EventID
	pubSeq     []uint32
	published  uint64
	falseTotal uint64   // every false delivery
	falseDel   []string // descriptions of the first few
	lastFault  int      // publishing round of the most recent fault action

	// Written by settle() and read by the recovery/hygiene invariants —
	// engine-goroutine only, after the runtime has quiesced.
	recoveredAt int    // round delivery first met the floor; -1 = never
	hygieneAt   int    // round views were first clean; -1 = never
	hygieneNote string // example offender when the hygiene budget ran out

	deliveries atomic.Uint64 // every delivery callback, incl. duplicates-by-design

	snapEarly, snapMid, snapEnd []fairness.Account
	violations                  []string
}

// founderJoined is the joinedAt sentinel for founding peers: they are
// eligible from the first round, whatever the scenario's JoinGrace.
const founderJoined = -1 << 30

// testInspect, when set by a test, observes the finished Run before the
// runtime is closed.
var testInspect func(*Run)

// Execute runs a scenario against a runtime and returns the checked
// result. The runtime must be freshly built for this scenario (peer
// count and protocol knobs matching); Execute closes it before
// returning.
func Execute(rt Runtime, sc Scenario, seed int64) *Result {
	sc = sc.withDefaults()
	n := rt.N()
	r := &Run{
		sc:       sc,
		rt:       rt,
		seed:     seed,
		Rng:      rand.New(rand.NewSource(seed ^ 0x5ce0a91)),
		Round:    -1,
		topics:   workload.NewTopics(sc.Topics, 1.01),
		subsOf:   make(map[string][]int, sc.Topics),
		up:       make([]bool, n),
		everDown: make([]bool, n),
		free:     make([]bool, n),
		group:    make([]int, n),
		joinedAt: make([]int, n),
		subs:     make([][]subRec, n),
		events:   make(map[pubsub.EventID]*evRec, sc.Rounds*sc.PerRound),
		pubSeq:   make([]uint32, n),

		recoveredAt: -1,
		hygieneAt:   -1,
	}
	for i := range r.up {
		r.up[i] = true
		r.joinedAt[i] = founderJoined
	}
	r.setup()
	rt.Start()
	rt.Step(sc.Warmup)

	for round := 0; round < sc.Rounds; round++ {
		r.Round = round
		for _, st := range sc.Steps {
			if st.Round == round {
				st.Action.Do(r)
			}
		}
		if sc.EveryRound != nil {
			sc.EveryRound(r)
		}
		if round == sc.Rounds/2 {
			r.snapMid = rt.Ledger().Snapshot()
		}
		for k := 0; k < sc.PerRound; k++ {
			r.PublishRandom()
		}
		rt.Step(1)
	}
	if sc.CheckRecovery || sc.CheckViewHygiene {
		r.settle()
	}
	rt.Drain(sc.DrainRounds, r.deliveries.Load)
	// Close before judging: on the live runtime a straggler delivery
	// could otherwise land between two reads of an invariant check.
	// Everything the checks need (ledger, traffic counters) outlives the
	// peer goroutines.
	rt.Close()
	r.snapEnd = rt.Ledger().Snapshot()

	for _, inv := range r.invariants() {
		if err := inv.Check(r); err != nil {
			r.violations = append(r.violations, inv.Name+": "+err.Error())
		}
	}
	if testInspect != nil {
		testInspect(r)
	}
	return r.result()
}

// setup draws the heterogeneous Zipf interest sets and installs delivery
// observers, before the cluster starts.
func (r *Run) setup() {
	n := r.rt.N()
	for i := 0; i < n; i++ {
		count := workload.SubCount(r.Rng, 1, r.sc.MaxSubs)
		for _, topic := range r.topics.SampleSet(r.Rng, count) {
			r.subscribe(i, topic, -1)
		}
	}
	for i := 0; i < n; i++ {
		i := i
		r.rt.OnDeliver(i, func(ev *pubsub.Event) { r.onDeliver(i, ev) })
	}
	r.snapEarly = r.rt.Ledger().Snapshot()
}

// subscribe registers a topic filter on a node and records its lifetime.
// The engine's model is updated BEFORE the runtime call: on the live
// runtime a matching event can be delivered the instant the peer
// installs the filter, and the delivery observer must already find the
// subscription active. Callers must not hold r.mu (the live runtime
// round-trips the peer's command channel, whose handler may deliver).
func (r *Run) subscribe(id int, topic string, fromRound int) {
	f := pubsub.Topic(topic)
	r.mu.Lock()
	r.subs[id] = append(r.subs[id], subRec{f: f, from: fromRound, to: -1})
	idx := len(r.subs[id]) - 1
	r.subsOf[topic] = append(r.subsOf[topic], id)
	r.mu.Unlock()
	sub, ok := r.rt.Subscribe(id, f)
	r.mu.Lock()
	if ok {
		r.subs[id][idx].sub = sub
	} else {
		// Never took effect (invalid id): retract the record.
		r.subs[id] = append(r.subs[id][:idx], r.subs[id][idx+1:]...)
		peers := r.subsOf[topic]
		for k, p := range peers {
			if p == id {
				r.subsOf[topic] = append(peers[:k], peers[k+1:]...)
				break
			}
		}
	}
	r.mu.Unlock()
}

// --- State the actions read and mutate ---------------------------------------

// N returns the population size.
func (r *Run) N() int { return r.rt.N() }

// Ledger exposes the runtime's fairness ledger (read-only use).
func (r *Run) Ledger() *fairness.Ledger { return r.rt.Ledger() }

// NodeUp reports whether a node is currently up in the engine's model.
func (r *Run) NodeUp(id int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.up[id]
}

// NodeFree reports whether a node is currently free-riding.
func (r *Run) NodeFree(id int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.free[id]
}

// noteFaultLocked records the current publishing round as the most
// recent fault action. The settle phase and the bounded-recovery /
// view-hygiene invariants measure their budgets from this round.
// Callers hold r.mu. Warmup-time faults count as round 0.
func (r *Run) noteFaultLocked() {
	round := r.Round
	if round < 0 {
		round = 0
	}
	if round > r.lastFault {
		r.lastFault = round
	}
}

// LastFault returns the publishing round of the most recent fault
// action (0 when the schedule injected none).
func (r *Run) LastFault() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastFault
}

// Crash takes a node down and releases it from every pending event's
// eligibility (it can no longer be required to deliver). Events the
// victim itself published and had not yet spread are released too: on
// the live runtime a peer may be silenced before its next round tick,
// so the engine cannot require copies nobody else holds to arrive.
func (r *Run) Crash(id int) {
	if !r.rt.Crash(id) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.downLocked(id)
}

// Leave departs a node gracefully: the runtime hands the leaver's view
// entries to its neighbours (live/Cyclon) before silencing it. For the
// engine's delivery model a leaver is a crash — it is released from all
// pending eligibility — but for the view-hygiene invariant it is the
// best case: its neighbours were told to drop it, rather than having to
// detect the departure by probe timeouts.
func (r *Run) Leave(id int) {
	if !r.rt.Leave(id) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.downLocked(id)
}

// downLocked applies the shared model updates for a peer going offline
// (crash or graceful leave). Callers hold r.mu.
func (r *Run) downLocked(id int) {
	r.noteFaultLocked()
	r.up[id] = false
	r.everDown[id] = true
	for _, evID := range r.evOrder {
		rec := r.events[evID]
		// Joiners are absent from the pair arrays of pre-join events.
		if id < len(rec.eligible) && rec.eligible[id] && !rec.delivered[id] {
			rec.eligible[id] = false
			rec.nEligible--
		}
	}
	r.releaseSilencedPublisherLocked(id)
}

// releaseSilencedPublisherLocked releases the undelivered pairs of every
// event published by a peer that just stopped forwarding (crash or
// free-ride). Peers that already delivered stay counted; other holders
// may well still spread the event — the engine just stops requiring it.
func (r *Run) releaseSilencedPublisherLocked(id int) {
	for _, evID := range r.evOrder {
		rec := r.events[evID]
		if rec.publisher != id {
			continue
		}
		for i, el := range rec.eligible {
			if el && !rec.delivered[i] {
				rec.eligible[i] = false
				rec.nEligible--
			}
		}
	}
}

// Rejoin brings a crashed node back. It is not retroactively eligible
// for events published while it was away.
func (r *Run) Rejoin(id int) {
	if !r.rt.Rejoin(id) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteFaultLocked()
	r.up[id] = true
}

// JoinNode boots one new peer into the running cluster through a
// random up, honest seed, draws it an interest set, and registers it in
// the model. The joiner is not eligible for events already published,
// nor for events published before its JoinGrace expires (its partial
// view needs a few shuffles before partner selection can reach it); a
// joiner landing during a partition starts on the zero side on both
// runtimes, so its seed must be drawn from that side too — a cross-side
// seed could never answer the handshake and would strand the joiner.
// Returns the new id, or -1 when no usable seed is available.
func (r *Run) JoinNode() int {
	r.mu.Lock()
	seeds := make([]int, 0, len(r.up))
	for id := range r.up {
		if r.up[id] && !r.free[id] && (!r.split || r.group[id] == 0) {
			seeds = append(seeds, id)
		}
	}
	r.mu.Unlock()
	if len(seeds) == 0 {
		return -1
	}
	seed := seeds[r.Rng.Intn(len(seeds))]
	id, ok := r.rt.Join(seed)
	if !ok {
		return -1
	}
	r.mu.Lock()
	// Runtime ids are dense; grow the model to cover the new peer.
	for len(r.up) <= id {
		r.up = append(r.up, true)
		r.everDown = append(r.everDown, false)
		r.free = append(r.free, false)
		r.group = append(r.group, 0)
		r.joinedAt = append(r.joinedAt, r.Round)
		r.subs = append(r.subs, nil)
		r.pubSeq = append(r.pubSeq, 0)
	}
	r.mu.Unlock()
	// Observer before subscriptions: the first delivery a joiner can
	// legally receive is gated on a filter existing.
	r.rt.OnDeliver(id, func(ev *pubsub.Event) { r.onDeliver(id, ev) })
	count := workload.SubCount(r.Rng, 1, r.sc.MaxSubs)
	for _, topic := range r.topics.SampleSet(r.Rng, count) {
		r.subscribe(id, topic, r.Round)
	}
	return id
}

// SetFreeRider toggles free-riding. A free-rider still receives, so its
// own eligibility is untouched, but events it published and had not yet
// spread are released (see releaseSilencedPublisherLocked).
func (r *Run) SetFreeRider(id int, on bool) {
	if !r.rt.SetFreeRider(id, on) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.free[id] = on
	if on {
		r.noteFaultLocked()
		r.releaseSilencedPublisherLocked(id)
	}
}

// Partition splits the network. Undelivered peers on the far side of any
// pending event's publisher are released from its eligibility: the
// schedule cut them off, so the protocol cannot be required to reach
// them (a conservative, sound weakening — peers that already delivered
// stay counted).
func (r *Run) Partition(side []int) {
	r.rt.Partition(side)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.splitModelLocked(side)
}

// splitModelLocked applies the engine-side model of a connectivity cut
// isolating side from the rest — shared by Partition and RegionalOutage,
// which differ only in the runtime mechanism (fault-layer partition vs
// shaper region tags). Callers hold r.mu.
func (r *Run) splitModelLocked(side []int) {
	r.noteFaultLocked()
	for i := range r.group {
		r.group[i] = 0
	}
	for _, id := range side {
		if id >= 0 && id < len(r.group) {
			r.group[id] = 1
		}
	}
	r.split = true
	for _, evID := range r.evOrder {
		rec := r.events[evID]
		pg := r.group[rec.publisher]
		for i, el := range rec.eligible {
			if el && !rec.delivered[i] && r.group[i] != pg {
				rec.eligible[i] = false
				rec.nEligible--
			}
		}
	}
}

// Heal removes the partition; events published from now on reach the
// whole population again.
func (r *Run) Heal() {
	r.rt.Heal()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteFaultLocked()
	r.split = false
}

// SetLoss sets the link-loss probability. Loss does not change
// eligibility — the delivery invariant's MinDelivery floor carries the
// stochastic slack instead. Any change (including clearing loss) counts
// as a fault action for the recovery clock: the budget runs from the
// moment the schedule last touched the network.
func (r *Run) SetLoss(p float64) {
	r.rt.SetLoss(p)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteFaultLocked()
}

// ShapeTo swaps the WAN shaping profile on the runtime. Like SetLoss it
// leaves delivery eligibility alone — the MinDelivery floor carries the
// stochastic slack — but counts as a fault action for the recovery and
// hygiene clocks.
func (r *Run) ShapeTo(sp ShapeSpec) {
	if !r.rt.SetShape(sp) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteFaultLocked()
}

// RegionalOutage cuts region (id mod Scenario.Regions) off from the
// rest of the population. The engine models it exactly like a
// partition — undelivered cross-boundary pairs are released — while the
// runtime enforces it with its own mechanism (shaper region tags on the
// live columns, the partition model on sim). No-op unless the scenario
// declares Regions > 0.
func (r *Run) RegionalOutage(region int) {
	if r.sc.Regions <= 0 {
		return
	}
	region %= r.sc.Regions
	members := make([]int, 0, r.N()/r.sc.Regions+1)
	for id := 0; id < r.N(); id++ {
		if id%r.sc.Regions == region {
			members = append(members, id)
		}
	}
	r.rt.RegionOutage(members, true)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.splitModelLocked(members)
}

// RegionalHeal reconnects all regions.
func (r *Run) RegionalHeal() {
	r.rt.RegionOutage(nil, false)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteFaultLocked()
	r.split = false
}

// RebindPeer moves one peer to a fresh transport address and
// re-announces it. The peer stays up and keeps every delivery
// obligation — the make-before-break rebind must lose nothing — but the
// action still counts for the recovery clock.
func (r *Run) RebindPeer(id int) {
	if !r.rt.Rebind(id) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.noteFaultLocked()
}

// Resubscribe drops all of a node's subscriptions and draws a fresh
// interest set. Pending events the node is no longer interested in are
// released from its eligibility.
func (r *Run) Resubscribe(id int) {
	// Model first, runtime second (mirroring subscribe): a delivery
	// racing the unsubscribe is legitimised by the >= comparison in
	// onDeliver, never by a stale model.
	r.mu.Lock()
	active := make([]subRec, 0, len(r.subs[id]))
	for k := range r.subs[id] {
		if r.subs[id][k].to != -1 {
			continue
		}
		r.subs[id][k].to = r.Round
		rec := r.subs[id][k]
		active = append(active, rec)
		topic, _ := pubsub.TopicOf(rec.f)
		peers := r.subsOf[topic]
		for j, p := range peers {
			if p == id {
				r.subsOf[topic] = append(peers[:j], peers[j+1:]...)
				break
			}
		}
	}
	r.mu.Unlock()
	for _, rec := range active {
		r.rt.Unsubscribe(id, rec.sub)
	}
	count := workload.SubCount(r.Rng, 1, r.sc.MaxSubs)
	for _, topic := range r.topics.SampleSet(r.Rng, count) {
		r.subscribe(id, topic, r.Round)
	}
	// Release pending events this node no longer matches.
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, evID := range r.evOrder {
		rec := r.events[evID]
		if id < len(rec.eligible) && rec.eligible[id] && !rec.delivered[id] && !r.matchNowLocked(id, rec.ev) {
			rec.eligible[id] = false
			rec.nEligible--
		}
	}
}

// PublishRandom publishes one popularity-sampled event from a random
// interested (up, honest) peer — the steady workload and the flash-crowd
// builder.
func (r *Run) PublishRandom() {
	topic := r.topics.Sample(r.Rng)
	pub := r.pickPublisher(topic)
	if pub < 0 {
		return
	}
	r.publish(pub, topic)
}

// pickPublisher prefers an up, non-free-riding subscriber of the topic
// (free-riders never forward, so an event they originate would die with
// them), falling back to any up honest peer.
func (r *Run) pickPublisher(topic string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	able := func(id int) bool { return r.up[id] && !r.free[id] }
	subs := make([]int, 0, 8)
	for _, id := range r.subsOf[topic] {
		if able(id) {
			subs = append(subs, id)
		}
	}
	if len(subs) > 0 {
		return subs[r.Rng.Intn(len(subs))]
	}
	all := make([]int, 0, len(r.up))
	for id := range r.up {
		if able(id) {
			all = append(all, id)
		}
	}
	if len(all) == 0 {
		return -1
	}
	return all[r.Rng.Intn(len(all))]
}

// publish originates one event and registers its eligibility: every up
// peer interested right now and (under a partition) on the publisher's
// side must eventually deliver it.
func (r *Run) publish(pub int, topic string) {
	r.mu.Lock()
	r.pubSeq[pub]++
	ev := &pubsub.Event{
		ID:      pubsub.EventID{Publisher: uint32(pub), Seq: r.pubSeq[pub]},
		Topic:   topic,
		Payload: make([]byte, r.sc.Payload),
	}
	rec := &evRec{
		ev:        ev,
		round:     r.Round,
		publisher: pub,
		eligible:  make([]bool, len(r.up)),
		delivered: make([]bool, len(r.up)),
	}
	for i := range r.up {
		if r.up[i] && r.Round >= r.joinedAt[i]+r.sc.JoinGrace &&
			(!r.split || r.group[i] == r.group[pub]) && r.matchNowLocked(i, ev) {
			rec.eligible[i] = true
			rec.nEligible++
		}
	}
	r.events[ev.ID] = rec
	r.evOrder = append(r.evOrder, ev.ID)
	r.published++
	r.mu.Unlock()

	// Publish after registering, so the publisher's own synchronous
	// self-delivery finds the record.
	r.rt.Publish(pub, topic, nil, ev.Payload)
}

// matchNowLocked reports whether node id's currently-active filters
// match ev. Callers hold r.mu.
func (r *Run) matchNowLocked(id int, ev *pubsub.Event) bool {
	for _, rec := range r.subs[id] {
		if rec.to == -1 && rec.f.Match(ev) {
			return true
		}
	}
	return false
}

// onDeliver is the delivery observer installed on every peer. It runs on
// the simulator goroutine (sim) or the peer's goroutine (live). The
// no-false-delivery invariant is enforced here, during the run: the
// event must match a filter the node held at or after publish time.
func (r *Run) onDeliver(id int, ev *pubsub.Event) {
	r.deliveries.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.events[ev.ID]
	if !ok {
		r.recordFalse(fmt.Sprintf("node %d delivered unknown event %v", id, ev.ID))
		return
	}
	// A filter removed in round R still legitimises deliveries of events
	// published in round ≤ R: on the live runtime a matching copy can be
	// in flight (or mid-callback) while the engine unsubscribes, so the
	// comparison is >=, not >.
	matched := false
	for _, sr := range r.subs[id] {
		if (sr.to == -1 || sr.to >= rec.round) && sr.f.Match(ev) {
			matched = true
			break
		}
	}
	if !matched {
		r.recordFalse(fmt.Sprintf("node %d delivered %q without a matching filter", id, ev.Topic))
	}
	// A joiner can legally deliver an event published before it joined
	// (old copies still circulate in buffers); the pair arrays of such
	// events predate it, so there is nothing to mark.
	if id < len(rec.delivered) {
		rec.delivered[id] = true
	}
}

func (r *Run) recordFalse(desc string) {
	r.falseTotal++
	if len(r.falseDel) < 8 {
		r.falseDel = append(r.falseDel, desc)
	}
}

// pairTotalsLocked walks every event once and returns the
// eligible/delivered pair totals plus a description of the first miss.
// It is the single source the eventual-delivery invariant and the
// result metrics both consume. Callers hold r.mu.
func (r *Run) pairTotalsLocked() (eligible, delivered int, firstMiss string) {
	for _, evID := range r.evOrder {
		rec := r.events[evID]
		eligible += rec.nEligible
		for i, el := range rec.eligible {
			if !el {
				continue
			}
			if rec.delivered[i] {
				delivered++
			} else if firstMiss == "" {
				firstMiss = fmt.Sprintf("node %d missed event %v (round %d, topic %q)",
					i, evID, rec.round, rec.ev.Topic)
			}
		}
	}
	return eligible, delivered, firstMiss
}

// --- Settle phase ------------------------------------------------------------

// settle runs extra rounds after the publishing schedule until the
// recovery and hygiene conditions are met or their budgets (measured
// from the last fault action) are exhausted. It records WHEN each
// condition was first observed; the invariants judge the recorded
// rounds against the budgets afterwards. The loop only steps the
// runtime and reads model state, so on the deterministic runtime the
// settle phase is part of the reproducible schedule.
func (r *Run) settle() {
	lastFault := r.LastFault()
	recDeadline, hygDeadline := -1, -1
	recovered, clean := true, true
	if r.sc.CheckRecovery {
		recovered = false
		recDeadline = lastFault + int(r.sc.RecoveryC*float64(r.N())+0.5)
	}
	if r.sc.CheckViewHygiene {
		clean = false
		hygDeadline = lastFault + r.sc.HygieneRounds
	}
	round := r.sc.Rounds // rounds elapsed: the publishing phase just ended
	for {
		if !recovered && r.recoveryMet() {
			recovered = true
			r.recoveredAt = round
		}
		if !clean && r.hygieneOffender() == "" {
			clean = true
			r.hygieneAt = round
		}
		if recovered && clean {
			return
		}
		exhausted := true
		if !recovered && round < recDeadline {
			exhausted = false
		}
		if !clean && round < hygDeadline {
			exhausted = false
		}
		if exhausted {
			if !clean {
				r.hygieneNote = r.hygieneOffender()
			}
			return
		}
		r.rt.Step(1)
		round++
	}
}

// recoveryMet reports whether delivery has reached the scenario's
// MinDelivery floor over the pairs eligible right now.
func (r *Run) recoveryMet() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	eligible, delivered, _ := r.pairTotalsLocked()
	return float64(delivered) >= r.sc.MinDelivery*float64(eligible)
}

// hygieneOffender returns a description of one live peer whose
// membership view still holds the address of a down peer, or "" when
// every live view is clean. On runtimes without inspectable views (the
// idealised full-membership sim column) the check is vacuously clean.
func (r *Run) hygieneOffender() string {
	views, ok := r.rt.Views()
	if !ok {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, view := range views {
		if id >= len(r.up) || !r.up[id] {
			continue
		}
		for _, q := range view {
			if q >= 0 && q < len(r.up) && !r.up[q] {
				return fmt.Sprintf("live peer %d still holds dead address %d", id, q)
			}
		}
	}
	return ""
}

// --- Result ------------------------------------------------------------------

// Result is the outcome of one scenario execution: workload counts, the
// invariant metrics, and any violations (empty Violations = pass).
type Result struct {
	Scenario string
	Runtime  string
	Seed     int64

	Published       uint64
	Deliveries      uint64
	EligiblePairs   int
	DeliveredPairs  int
	DeliveryRatio   float64
	FalseDeliveries int
	Sent, Recv      uint64
	Dropped         uint64
	HasTraffic      bool
	JainEarly       float64
	JainLate        float64
	HasFairness     bool

	Violations []string
}

// Ok reports whether every invariant held.
func (res *Result) Ok() bool { return len(res.Violations) == 0 }

// String renders the result deterministically (stable key order, %g
// floats): on the simulated runtime two runs with one seed must produce
// byte-identical strings.
func (res *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s runtime=%s seed=%d\n", res.Scenario, res.Runtime, res.Seed)
	fmt.Fprintf(&b, "  published          %d\n", res.Published)
	fmt.Fprintf(&b, "  deliveries         %d\n", res.Deliveries)
	fmt.Fprintf(&b, "  eligible pairs     %d\n", res.EligiblePairs)
	fmt.Fprintf(&b, "  delivered pairs    %d\n", res.DeliveredPairs)
	fmt.Fprintf(&b, "  delivery ratio     %g\n", res.DeliveryRatio)
	fmt.Fprintf(&b, "  false deliveries   %d\n", res.FalseDeliveries)
	if res.HasTraffic {
		fmt.Fprintf(&b, "  msgs sent          %d\n", res.Sent)
		fmt.Fprintf(&b, "  msgs received      %d\n", res.Recv)
		fmt.Fprintf(&b, "  msgs dropped       %d\n", res.Dropped)
	}
	if res.HasFairness {
		fmt.Fprintf(&b, "  jain early->late   %g -> %g\n", res.JainEarly, res.JainLate)
	}
	if len(res.Violations) == 0 {
		b.WriteString("  invariants         all passing\n")
	} else {
		for _, v := range res.Violations {
			fmt.Fprintf(&b, "  VIOLATION          %s\n", v)
		}
	}
	return b.String()
}

func (r *Run) result() *Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	res := &Result{
		Scenario:        r.sc.Name,
		Runtime:         r.rt.Name(),
		Seed:            r.seed,
		Published:       r.published,
		Deliveries:      r.deliveries.Load(),
		FalseDeliveries: int(r.falseTotal),
		Violations:      append([]string(nil), r.violations...),
	}
	res.EligiblePairs, res.DeliveredPairs, _ = r.pairTotalsLocked()
	if res.EligiblePairs > 0 {
		res.DeliveryRatio = float64(res.DeliveredPairs) / float64(res.EligiblePairs)
	} else {
		res.DeliveryRatio = 1
	}
	if sent, recv, dropped, ok := r.rt.Traffic(); ok {
		res.Sent, res.Recv, res.Dropped, res.HasTraffic = sent, recv, dropped, true
	}
	if r.sc.CheckFairness && r.sc.TargetRatio > 0 {
		res.JainEarly, res.JainLate = r.fairnessWindowsLocked()
		res.HasFairness = true
	}
	return res
}

// fairnessWindowsLocked computes the windowed Jain index over
// never-crashed, never-free-riding peers for the first and second half
// of the publishing phase.
func (r *Run) fairnessWindowsLocked() (early, late float64) {
	stable := make([]int, 0, len(r.up))
	for i := range r.up {
		if !r.everDown[i] && !r.free[i] {
			stable = append(stable, i)
		}
	}
	sort.Ints(stable)
	w := r.rt.Ledger().Weights()
	window := func(from, to []fairness.Account) float64 {
		accts := make([]fairness.Account, 0, len(stable))
		for _, i := range stable {
			if i < len(from) && i < len(to) {
				accts = append(accts, fairness.Delta(to[i], from[i]))
			}
		}
		return fairness.ReportAccounts(accts, w).RatioJain
	}
	return window(r.snapEarly, r.snapMid), window(r.snapMid, r.snapEnd)
}
