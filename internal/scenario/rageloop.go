package scenario

import (
	"sort"

	"fairgossip/internal/workload"
)

// Median returns the upper median of xs (the element at index len/2 of
// the sorted copy), matching the convention the churn experiments have
// always used. Empty input yields 0.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	return ys[len(ys)/2]
}

// RageQuitLoop is the paper's §1/§6 unfairness-churn feedback loop as a
// reusable driver: publish for a phase, measure windowed per-peer
// ratios, and let any peer whose ratio stays above Threshold×median
// rage-quit, rejoining a few phases later. The hand-rolled copies of
// this loop in internal/experiment (EXP-T5) and examples/churnstorm now
// both run through it.
//
// Every workload decision happens inside the caller's callbacks, in the
// exact order the historical loops made them, so refactored experiments
// keep their RNG streams — and their fixed-seed outputs — bit-identical.
type RageQuitLoop struct {
	// Phases is the number of publish-then-judge windows.
	Phases int
	// WarmupPhases are judged-free phases at the start (default 3).
	WarmupPhases int
	// DownPhases is how long a quitter stays away (default 3).
	DownPhases int
	// Quit is the rage-quit policy (threshold × median, patience).
	Quit *workload.RageQuit

	// Publish runs one phase's publication workload.
	Publish func(phase int)
	// AfterPublish, when set, observes the cluster right after the
	// phase's workload (downtime accounting hooks in here).
	AfterPublish func(phase int)
	// Ratios returns this phase's windowed per-peer
	// contribution/benefit ratios, indexed by peer.
	Ratios func(phase int) []float64
	// Active reports whether a peer is currently participating.
	Active func(id int) bool
	// Leave takes a quitting peer offline.
	Leave func(phase, id int, ratio, median float64)
	// Rejoin brings a peer back after its cool-down.
	Rejoin func(id int)
}

// Run drives the loop and returns the total number of rage-quits.
func (l *RageQuitLoop) Run() (quits int) {
	warmup := l.WarmupPhases
	if warmup <= 0 {
		warmup = 3
	}
	down := l.DownPhases
	if down <= 0 {
		down = 3
	}
	downUntil := make(map[int]int)
	for phase := 0; phase < l.Phases; phase++ {
		l.Publish(phase)
		if l.AfterPublish != nil {
			l.AfterPublish(phase)
		}
		var ready []int
		for id, until := range downUntil {
			if phase >= until {
				ready = append(ready, id)
			}
		}
		sort.Ints(ready) // rejoin in id order, not map order, so runs replay identically
		for _, id := range ready {
			l.Rejoin(id)
			delete(downUntil, id)
		}
		ratios := l.Ratios(phase)
		if phase < warmup {
			continue
		}
		med := Median(ratios)
		for _, id := range l.Quit.Check(ratios, med, l.Active) {
			l.Leave(phase, id, ratios[id], med)
			downUntil[id] = phase + down
			quits++
		}
	}
	return quits
}
