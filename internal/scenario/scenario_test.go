package scenario

import (
	"math/rand"
	"strings"
	"testing"
)

// TestBuiltinsOnSim runs every built-in scenario against the
// deterministic simulated runtime; all invariants must pass.
func TestBuiltinsOnSim(t *testing.T) {
	for _, sc := range Builtins() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := Execute(NewSimRuntime(sc, 1), sc, 1)
			if !res.Ok() {
				t.Fatalf("invariant violations:\n%s", res.String())
			}
			if res.Published == 0 || res.Deliveries == 0 {
				t.Fatalf("degenerate run:\n%s", res.String())
			}
		})
	}
}

// TestBuiltinsOnLive runs the same seeded schedules against the
// goroutine-per-peer runtime — the differential half: a runtime-specific
// bug (a lost delivery, a leaked message, a broken fault hook) surfaces
// as an invariant violation on one runtime but not the other.
func TestBuiltinsOnLive(t *testing.T) {
	for _, sc := range Builtins() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res := Execute(NewLiveRuntime(sc, 1), sc, 1)
			if !res.Ok() {
				t.Fatalf("invariant violations:\n%s", res.String())
			}
			if res.Published == 0 || res.Deliveries == 0 {
				t.Fatalf("degenerate run:\n%s", res.String())
			}
		})
	}
}

// TestBuiltinsOnLiveUDP is the third differential column: the same
// seeded schedules over real loopback datagram sockets — encode on
// send, decode on receive, one socket per peer. A codec bug, a socket
// lifecycle bug, or an accounting leak that the in-process transport
// hides surfaces here as an invariant violation (including the
// tightened drop-conservation: every datagram is received or counted
// dropped).
func TestBuiltinsOnLiveUDP(t *testing.T) {
	for _, sc := range Builtins() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			rt, err := NewLiveUDPRuntime(sc, 1)
			if err != nil {
				t.Fatalf("udp runtime: %v", err)
			}
			res := Execute(rt, sc, 1)
			if !res.Ok() {
				t.Fatalf("invariant violations:\n%s", res.String())
			}
			if res.Published == 0 || res.Deliveries == 0 {
				t.Fatalf("degenerate run:\n%s", res.String())
			}
			if !res.HasTraffic || res.Sent == 0 {
				t.Fatalf("udp runtime exposed no traffic counters:\n%s", res.String())
			}
		})
	}
}

// TestLiveTrafficCountersBalance: the live runtime now participates in
// drop conservation — the counters exist, flow, and balance exactly on
// the chan transport (the storm scenario forces inbox pressure and
// injected loss, so the drop buckets are not vacuous).
func TestLiveTrafficCountersBalance(t *testing.T) {
	sc, _ := ByName("storm")
	res := Execute(NewLiveRuntime(sc, 2), sc, 2)
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.String())
	}
	if !res.HasTraffic {
		t.Fatal("live runtime exposed no traffic counters")
	}
	if res.Sent == 0 || res.Dropped == 0 {
		t.Fatalf("storm produced no counted traffic/drops: sent %d dropped %d", res.Sent, res.Dropped)
	}
	if res.Sent != res.Recv+res.Dropped {
		t.Fatalf("traffic leak: sent %d != recv %d + dropped %d", res.Sent, res.Recv, res.Dropped)
	}
}

// TestSimDeterminism: on the simulated runtime the same seed must yield
// identical invariant metrics, bit for bit — the property fixed-seed
// regression baselines (and reproducible bug reports) rest on.
func TestSimDeterminism(t *testing.T) {
	for _, name := range []string{"calm", "storm", "sub-churn", "join-wave", "graceful-drain", "crash-storm-recover", "shaped-wan", "regional-outage", "mobile-rebind", "intermittent-links"} {
		sc, ok := ByName(name)
		if !ok {
			t.Fatalf("missing builtin %q", name)
		}
		a := Execute(NewSimRuntime(sc, 42), sc, 42)
		b := Execute(NewSimRuntime(sc, 42), sc, 42)
		if a.String() != b.String() {
			t.Errorf("%s not deterministic:\n--- run 1\n%s--- run 2\n%s", name, a.String(), b.String())
		}
		c := Execute(NewSimRuntime(sc, 43), sc, 43)
		if a.String() == c.String() {
			t.Errorf("%s ignored its seed: seeds 42 and 43 produced identical results", name)
		}
	}
}

// TestEligibilityExcludesCrashed: a peer that crashes before an event is
// published must not be counted eligible, and a peer that crashes while
// the event is pending is released.
func TestEligibilityExcludesCrashed(t *testing.T) {
	sc := Scenario{
		Name:   "crash-eligibility",
		N:      16,
		Rounds: 10,
		Steps: []Step{
			{Round: 2, Action: CrashFrac(0.5)},
		},
	}
	res := Execute(NewSimRuntime(sc, 7), sc, 7)
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.String())
	}
	// With half the population down, eligible pairs must be well below
	// the no-fault expectation but delivery over survivors stays total.
	if res.DeliveryRatio != 1 {
		t.Errorf("survivor delivery ratio %v, want 1", res.DeliveryRatio)
	}
}

// TestFreeRidersDoNotForward: with every peer but the publisher
// free-riding, events must still self-deliver but cannot spread — the
// engine's eligibility model stays sound either way.
func TestFreeRiderStillReceives(t *testing.T) {
	sc := Scenario{
		Name:   "free-rider-receives",
		N:      16,
		Rounds: 12,
		Steps: []Step{
			{Round: 0, Action: FreeRiderFrac(0.5)},
		},
	}
	res := Execute(NewSimRuntime(sc, 9), sc, 9)
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.String())
	}
	if res.DeliveryRatio != 1 {
		t.Errorf("delivery ratio %v with free-riders, want 1 (they still receive)", res.DeliveryRatio)
	}
}

// TestJoinWaveGrowsPopulation: the join-wave builtin must actually
// grow the cluster, the joiners must subscribe and deliver, and the
// invariants (including ledger conservation over the grown population)
// must hold on the deterministic runtime.
func TestJoinWaveGrowsPopulation(t *testing.T) {
	sc, ok := ByName("join-wave")
	if !ok {
		t.Fatal("join-wave builtin missing")
	}
	var joined int
	var joinerDelivered bool
	testInspect = func(r *Run) {
		joined = len(r.up) - sc.N
		for id := sc.N; id < len(r.up); id++ {
			for _, evID := range r.evOrder {
				rec := r.events[evID]
				if id < len(rec.delivered) && rec.delivered[id] {
					joinerDelivered = true
				}
			}
		}
	}
	defer func() { testInspect = nil }()
	res := Execute(NewSimRuntime(sc, 11), sc, 11)
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.String())
	}
	if joined != 8 {
		t.Fatalf("%d peers joined, want 8", joined)
	}
	if !joinerDelivered {
		t.Fatal("no joiner ever delivered an event")
	}
}

// TestJoinerEligibilityGrace: events published before a joiner's grace
// expires never require it, events published after do — the fault-aware
// eligibility rule for joiners.
func TestJoinerEligibilityGrace(t *testing.T) {
	sc := Scenario{
		Name:      "join-grace",
		N:         16,
		Rounds:    20,
		JoinGrace: 4,
		Topics:    1, // every peer subscribes the one topic: eligibility is total
		MaxSubs:   1,
		Steps: []Step{
			{Round: 6, Action: JoinNodes(2)},
		},
	}
	checked := false
	testInspect = func(r *Run) {
		for _, evID := range r.evOrder {
			rec := r.events[evID]
			for id := 16; id < 18; id++ {
				covered := id < len(rec.eligible) && rec.eligible[id]
				if rec.round < 6+4 && covered {
					t.Errorf("joiner %d eligible for round-%d event inside its grace", id, rec.round)
				}
				if rec.round >= 6+4 && !covered {
					t.Errorf("joiner %d not eligible for round-%d event after its grace", id, rec.round)
				}
				if rec.round >= 6+4 {
					checked = true
				}
			}
		}
	}
	defer func() { testInspect = nil }()
	res := Execute(NewSimRuntime(sc, 13), sc, 13)
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.String())
	}
	if !checked {
		t.Fatal("no post-grace event was published — the test checked nothing")
	}
}

// TestJoinDuringAdversity: joins racing crash waves and loss must keep
// every invariant sound (joiners picked through up seeds only; a
// joiner that is itself crashed later is released like anyone else).
func TestJoinDuringAdversity(t *testing.T) {
	sc := Scenario{
		Name:        "join-storm",
		N:           20,
		Rounds:      30,
		MinDelivery: 0.97,
		Steps: []Step{
			{Round: 4, Action: Loss(0.05)},
			{Round: 6, Action: CrashFrac(0.25)},
			{Round: 8, Action: JoinNodes(5)},
			{Round: 14, Action: RejoinAll()},
			{Round: 16, Action: JoinNodes(3)},
			{Round: 20, Action: CrashFrac(0.2)},
			{Round: 24, Action: Loss(0)},
		},
	}
	res := Execute(NewSimRuntime(sc, 17), sc, 17)
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.String())
	}
	if res.Published == 0 || res.Deliveries == 0 {
		t.Fatalf("degenerate run:\n%s", res.String())
	}
}

// TestJoinDuringPartition: joiners arriving mid-split must be seeded
// from the zero side (where joiners land on every runtime) — a
// cross-side seed could never answer the handshake and the joiner
// would be demanded deliveries it provably cannot receive. Runs on
// both the deterministic and the live runtime.
func TestJoinDuringPartition(t *testing.T) {
	// MinDelivery leaves slack for the hardest stochastic pair (an event
	// published at the heal round racing a mid-split joiner's overlay
	// integration) while staying far above what a stranded joiner would
	// score: missing all of its ~dozen demanded pairs lands near 0.96.
	sc := Scenario{
		Name:        "join-under-split",
		N:           24,
		Rounds:      28,
		MinDelivery: 0.98,
		Steps: []Step{
			{Round: 4, Action: SplitRandomHalf()},
			{Round: 8, Action: JoinNodes(3)},
			{Round: 18, Action: HealAll()},
		},
	}
	for _, build := range []func() Runtime{
		func() Runtime { return NewSimRuntime(sc, 19) },
		func() Runtime { return NewLiveRuntime(sc, 19) },
	} {
		res := Execute(build(), sc, 19)
		if !res.Ok() {
			t.Fatalf("%s violations:\n%s", res.Runtime, res.String())
		}
		if res.Published == 0 || res.Deliveries == 0 {
			t.Fatalf("degenerate run:\n%s", res.String())
		}
	}
}

// TestDropConservationSeesPartitionDrops: the partition scenario must
// actually drop traffic on the sim network (otherwise the conservation
// invariant is vacuous).
func TestDropConservationSeesPartitionDrops(t *testing.T) {
	sc, _ := ByName("partition-heal")
	res := Execute(NewSimRuntime(sc, 3), sc, 3)
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.String())
	}
	if !res.HasTraffic || res.Dropped == 0 {
		t.Fatalf("partition scenario dropped nothing:\n%s", res.String())
	}
}

// TestSampleDistinctCapsAtCandidates: over-asking returns what exists
// instead of rejection-sampling forever, so a repeated CrashFrac cannot
// hang a run.
func TestSampleDistinctCapsAtCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	down := map[int]bool{0: true, 1: true, 2: true}
	got := SampleDistinct(rng, 5, 5, func(id int) bool { return down[id] })
	if len(got) != 2 {
		t.Fatalf("got %v, want the 2 drawable candidates", got)
	}
	if out := SampleDistinct(rng, 4, 9, nil); len(out) != 4 {
		t.Fatalf("k>n returned %v, want all 4", out)
	}
	if out := SampleDistinct(rng, 3, 2, func(int) bool { return true }); out != nil {
		t.Fatalf("all-skipped returned %v, want nil", out)
	}
	// Back-to-back over-crashing terminates and keeps invariants sound.
	sc := Scenario{
		Name:   "over-crash",
		N:      16,
		Rounds: 12,
		Steps: []Step{
			{Round: 2, Action: CrashFrac(0.6)},
			{Round: 4, Action: CrashFrac(0.6)},
		},
	}
	res := Execute(NewSimRuntime(sc, 5), sc, 5)
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.String())
	}
}

// TestResultStringMentionsViolations: a failing invariant must surface
// in the rendered result (the CLI prints it).
func TestResultStringMentionsViolations(t *testing.T) {
	res := &Result{Scenario: "x", Runtime: "sim", Violations: []string{"eventual-delivery: boom"}}
	if res.Ok() || !strings.Contains(res.String(), "VIOLATION") {
		t.Fatalf("violation not rendered:\n%s", res.String())
	}
}

// TestByNameAndNames: the table lookup agrees with the table.
func TestByNameAndNames(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("only %d built-in scenarios, want ≥ 8", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate scenario name %q", n)
		}
		seen[n] = true
		if _, ok := ByName(n); !ok {
			t.Fatalf("ByName(%q) failed", n)
		}
	}
	if _, ok := ByName("no-such-scenario"); ok {
		t.Fatal("ByName accepted an unknown name")
	}
	// The required adversity axes are all covered.
	for _, want := range []string{"calm", "churn-waves", "partition-heal", "lossy", "flash-crowd", "sub-churn", "free-riders", "storm", "join-wave"} {
		if !seen[want] {
			t.Errorf("missing required builtin %q", want)
		}
	}
}

// TestGracefulDrainScrubsViews: the graceful-drain builtin on the live
// runtime must actually take peers down via Leave, and the settle phase
// must observe both clean views (no live view holding a leaver's
// address) and recovered delivery inside their budgets — the recorded
// rounds are what the invariants judge.
func TestGracefulDrainScrubsViews(t *testing.T) {
	sc, ok := ByName("graceful-drain")
	if !ok {
		t.Fatal("graceful-drain builtin missing")
	}
	var left int
	var recoveredAt, hygieneAt, lastFault int
	testInspect = func(r *Run) {
		for _, d := range r.everDown {
			if d {
				left++
			}
		}
		recoveredAt, hygieneAt, lastFault = r.recoveredAt, r.hygieneAt, r.lastFault
	}
	defer func() { testInspect = nil }()
	res := Execute(NewLiveRuntime(sc, 3), sc, 3)
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.String())
	}
	if want := 2 * 5; left != want { // two LeaveFrac(0.15) waves over N=32
		t.Errorf("%d peers left, want %d", left, want)
	}
	if lastFault != 16 {
		t.Errorf("lastFault %d, want 16 (the second leave wave)", lastFault)
	}
	if recoveredAt < 0 || hygieneAt < 0 {
		t.Fatalf("settle never observed recovery (%d) / hygiene (%d)", recoveredAt, hygieneAt)
	}
	if hygieneAt-lastFault > sc.withDefaults().HygieneRounds {
		t.Errorf("hygiene at round %d exceeds budget from fault round %d", hygieneAt, lastFault)
	}
}

// TestCrashStormRecoveryBounded: crash-storm-recover on the
// deterministic runtime — the settle phase must record recovery inside
// the c·N budget measured from the last fault action. (View hygiene is
// vacuous on the sim column: the idealised sampler has no views.)
func TestCrashStormRecoveryBounded(t *testing.T) {
	sc, ok := ByName("crash-storm-recover")
	if !ok {
		t.Fatal("crash-storm-recover builtin missing")
	}
	var recoveredAt, lastFault int
	testInspect = func(r *Run) { recoveredAt, lastFault = r.recoveredAt, r.lastFault }
	defer func() { testInspect = nil }()
	res := Execute(NewSimRuntime(sc, 5), sc, 5)
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.String())
	}
	if lastFault != 14 {
		t.Errorf("lastFault %d, want 14 (the loss-clearing step)", lastFault)
	}
	budget := int(sc.withDefaults().RecoveryC*float64(sc.withDefaults().N) + 0.5)
	if recoveredAt < 0 || recoveredAt-lastFault > budget {
		t.Errorf("recovery at round %d violates budget %d from fault round %d", recoveredAt, budget, lastFault)
	}
}

// TestLeaveReleasesEligibility: a graceful leaver is released from
// pending eligibility exactly like a crash victim — survivors keep full
// delivery and the engine never requires the departed to deliver.
func TestLeaveReleasesEligibility(t *testing.T) {
	sc := Scenario{
		Name:   "leave-eligibility",
		N:      16,
		Rounds: 12,
		Steps: []Step{
			{Round: 3, Action: LeaveFrac(0.25)},
		},
	}
	res := Execute(NewSimRuntime(sc, 13), sc, 13)
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.String())
	}
	if res.DeliveryRatio != 1 {
		t.Errorf("survivor delivery ratio %v after graceful leaves, want 1", res.DeliveryRatio)
	}
}

// TestShapedColumnCountsShaperDrops: the shaped-wan builtin on a live
// column carries real shaper loss — those drops must land in the counted
// bucket so conservation holds exactly, not approximately.
func TestShapedColumnCountsShaperDrops(t *testing.T) {
	sc, ok := ByName("shaped-wan")
	if !ok {
		t.Fatal("shaped-wan builtin missing")
	}
	res := Execute(NewLiveRuntime(sc, 9), sc, 9)
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.String())
	}
	if !res.HasTraffic || res.Dropped == 0 {
		t.Fatalf("2%% shaper loss dropped nothing counted:\n%s", res.String())
	}
	if res.Sent != res.Recv+res.Dropped {
		t.Fatalf("shaped traffic leak: sent %d != recv %d + dropped %d", res.Sent, res.Recv, res.Dropped)
	}
}

// TestRegionalOutageReleasesEligibility: during the outage the engine
// must model the cut exactly like a partition — cross-boundary pairs
// released, intra-region delivery still required — and the runtime's
// correlated loss must be counted. Verified on the deterministic column.
func TestRegionalOutageReleasesEligibility(t *testing.T) {
	sc := Scenario{
		Name:    "outage-release",
		N:       16,
		Regions: 4,
		Rounds:  16,
		Steps: []Step{
			{Round: 4, Action: RegionalOutage(2)},
			{Round: 10, Action: RegionalHeal()},
		},
	}
	testInspect = func(r *Run) {
		// After the heal the model must be reconnected again.
		if r.split {
			t.Error("run ended still split")
		}
	}
	defer func() { testInspect = nil }()
	res := Execute(NewSimRuntime(sc, 11), sc, 11)
	if !res.Ok() {
		t.Fatalf("violations:\n%s", res.String())
	}
	if res.Dropped == 0 {
		t.Fatalf("outage dropped nothing:\n%s", res.String())
	}
	// Cross-boundary pairs of mid-outage events were released: with 2
	// publishes per round for 6 outage rounds there must be fewer
	// eligible pairs than a calm run of the same shape would produce.
	calm := sc
	calm.Name = "outage-release-calm"
	calm.Steps = nil
	calmRes := Execute(NewSimRuntime(calm, 11), calm, 11)
	if !calmRes.Ok() {
		t.Fatalf("calm control violations:\n%s", calmRes.String())
	}
	if res.EligiblePairs >= calmRes.EligiblePairs {
		t.Fatalf("outage released nothing: %d eligible pairs vs calm %d", res.EligiblePairs, calmRes.EligiblePairs)
	}
}

// TestShapePresets: the -shape vocabulary resolves, and unknown names
// are refused.
func TestShapePresets(t *testing.T) {
	for _, name := range ShapePresetNames() {
		sp, ok := ShapePreset(name)
		if !ok {
			t.Fatalf("preset %q missing", name)
		}
		if name == "none" && sp != nil {
			t.Fatal("preset none returned a profile")
		}
		if name != "none" && sp.inert() {
			t.Fatalf("preset %q is inert", name)
		}
	}
	if _, ok := ShapePreset("marsnet"); ok {
		t.Fatal("unknown preset accepted")
	}
}

// TestShardedSimCalmStorm runs the calm and storm builtins on the
// sharded sim column: every invariant must hold at every shard count,
// and runs must be deterministic per (seed, shards). The CI race job
// runs this sweep under -race — with the engine split across real
// goroutines, any unsynchronised cross-shard access surfaces here.
func TestShardedSimCalmStorm(t *testing.T) {
	for _, name := range []string{"calm", "storm"} {
		for _, shards := range []int{2, 4} {
			sc, ok := ByName(name)
			if !ok {
				t.Fatalf("missing builtin %q", name)
			}
			sc.Shards = shards
			t.Run(sc.Name+"-shards", func(t *testing.T) {
				a := Execute(NewSimRuntime(sc, 42), sc, 42)
				if !a.Ok() {
					t.Fatalf("shards=%d invariant violations:\n%s", shards, a.String())
				}
				if a.Published == 0 || a.Deliveries == 0 {
					t.Fatalf("shards=%d degenerate run:\n%s", shards, a.String())
				}
				b := Execute(NewSimRuntime(sc, 42), sc, 42)
				if a.String() != b.String() {
					t.Fatalf("shards=%d not deterministic:\n--- run 1\n%s--- run 2\n%s", shards, a.String(), b.String())
				}
			})
		}
	}
}

// TestShardsOneIsLegacyColumn: Shards=1 must produce byte-identical
// results to the unset (legacy) default — the sharded runtime wraps the
// single-threaded engine verbatim at shard count one.
func TestShardsOneIsLegacyColumn(t *testing.T) {
	sc, _ := ByName("storm")
	legacy := Execute(NewSimRuntime(sc, 42), sc, 42)
	sc.Shards = 1
	one := Execute(NewSimRuntime(sc, 42), sc, 42)
	if legacy.String() != one.String() {
		t.Fatalf("Shards=1 diverged from the legacy column:\n--- legacy\n%s--- shards=1\n%s", legacy.String(), one.String())
	}
}
