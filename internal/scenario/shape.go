package scenario

import (
	"fmt"
	"time"

	"fairgossip/internal/transport"
)

// ShapeSpec describes a WAN shaping profile in round-relative units, so
// one spec means the same thing on every column even though a gossip
// round is 100ms of virtual time on the simulator and 5ms of wall clock
// on the live runtimes. Each runtime converts it to its own clock: the
// live columns install a transport.Profile on the shaping middleware,
// the sim column swaps the network latency model and folds Loss into
// the composed drop probability (see SimRuntime.SetShape).
type ShapeSpec struct {
	// DelayRounds is the fixed one-way delay, as a fraction of a round.
	DelayRounds float64
	// JitterRounds is the width of the uniform extra delay, as a
	// fraction of a round.
	JitterRounds float64
	// Reorder is the probability a message draws a large extra delay and
	// overtakes later traffic.
	Reorder float64
	// Loss is the i.i.d. shaper drop probability, composed with (not
	// replacing) any scenario fault loss.
	Loss float64
	// RatePerRound caps per-link bandwidth in bytes per round. Live
	// columns enforce it with a token bucket; the idealised sim network
	// has no bandwidth model, so there it is documented slack, not a cap.
	RatePerRound int
}

// inert reports whether the spec shapes nothing.
func (sp ShapeSpec) inert() bool {
	return sp.DelayRounds == 0 && sp.JitterRounds == 0 && sp.Reorder == 0 &&
		sp.Loss == 0 && sp.RatePerRound == 0
}

// liveProfile converts a round-relative spec to the wall-clock
// transport.Profile for a live column running at the given round period.
func liveProfile(sp *ShapeSpec, round time.Duration) transport.Profile {
	if sp == nil {
		return transport.Profile{}
	}
	p := transport.Profile{
		Delay:   time.Duration(sp.DelayRounds * float64(round)),
		Jitter:  time.Duration(sp.JitterRounds * float64(round)),
		Reorder: sp.Reorder,
		Loss:    sp.Loss,
	}
	if sp.RatePerRound > 0 && round > 0 {
		p.Rate = int(float64(sp.RatePerRound) / round.Seconds())
		p.Burst = 4 * sp.RatePerRound
	}
	return p
}

// --- Presets -----------------------------------------------------------------

// ShapePreset returns a named shaping profile for command-line use
// (`fairsim -shape <name>`): "none" (or "") means unshaped, "wan" is a
// moderate wide-area profile, "lossy-wan" adds real loss, "mobile" is
// high-jitter with mild loss.
func ShapePreset(name string) (*ShapeSpec, bool) {
	switch name {
	case "", "none":
		return nil, true
	case "wan":
		return &ShapeSpec{DelayRounds: 0.2, JitterRounds: 0.3, Reorder: 0.05}, true
	case "lossy-wan":
		return &ShapeSpec{DelayRounds: 0.2, JitterRounds: 0.3, Reorder: 0.08, Loss: 0.03}, true
	case "mobile":
		return &ShapeSpec{DelayRounds: 0.1, JitterRounds: 0.6, Reorder: 0.1, Loss: 0.01}, true
	}
	return nil, false
}

// ShapePresetNames lists the ShapePreset vocabulary.
func ShapePresetNames() []string { return []string{"none", "wan", "lossy-wan", "mobile"} }

// --- Actions -----------------------------------------------------------------

// Shape swaps the shaping profile mid-run on every column. Like Loss, it
// does not change delivery eligibility — the MinDelivery floor carries
// the stochastic slack — but it counts as a fault action for the
// recovery clock.
func Shape(sp ShapeSpec) Action {
	return Action{
		Name: fmt.Sprintf("shape delay=%.2fr jitter=%.2fr reorder=%.0f%% loss=%.0f%%",
			sp.DelayRounds, sp.JitterRounds, sp.Reorder*100, sp.Loss*100),
		Do: func(r *Run) { r.ShapeTo(sp) },
	}
}

// ClearShape removes all shaping (an inert profile).
func ClearShape() Action {
	return Action{Name: "shape clear", Do: func(r *Run) { r.ShapeTo(ShapeSpec{}) }}
}

// RegionalOutage cuts one region (peers with id ≡ region mod
// Scenario.Regions) off from the rest of the population: intra-region
// traffic still flows, cross-boundary traffic is dropped at the shaper
// (live columns) or the partition model (sim). Requires Regions > 0.
func RegionalOutage(region int) Action {
	return Action{
		Name: fmt.Sprintf("regional outage %d", region),
		Do:   func(r *Run) { r.RegionalOutage(region) },
	}
}

// RegionalHeal reconnects all regions.
func RegionalHeal() Action {
	return Action{Name: "regional heal", Do: func(r *Run) { r.RegionalHeal() }}
}

// RebindFrac makes ⌈frac·N⌉ random up peers change their transport
// address mid-run (a mobile client switching networks) and re-announce
// through the join path. Peers stay up throughout, so their delivery
// eligibility is unchanged — a rebind must lose nothing.
func RebindFrac(frac float64) Action {
	return Action{
		Name: fmt.Sprintf("rebind %.0f%%", frac*100),
		Do: func(r *Run) {
			k := int(frac*float64(r.N()) + 0.5)
			for _, id := range SampleDistinct(r.Rng, r.N(), k, func(id int) bool { return !r.NodeUp(id) }) {
				r.RebindPeer(id)
			}
		},
	}
}
