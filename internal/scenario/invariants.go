package scenario

import (
	"fmt"
	"strings"

	"fairgossip/internal/fairness"
)

// Invariant is one machine-checked property of a scenario run. Some are
// enforced during the run (false deliveries are caught at delivery
// time); Check renders the verdict once the run has drained.
type Invariant struct {
	Name  string
	Check func(*Run) error
}

// invariants assembles the checks that apply to this run: the universal
// ones, drop conservation where the runtime counts drops, and fairness
// convergence where the scenario asks for it.
func (r *Run) invariants() []Invariant {
	list := []Invariant{
		NoFalseDelivery(),
		EventualDelivery(),
		LedgerConservation(),
	}
	if r.rt.Has(CapDropStats) {
		list = append(list, DropConservation())
	}
	if r.sc.CheckFairness && r.sc.TargetRatio > 0 {
		list = append(list, FairnessConvergence())
	}
	if r.sc.CheckViewHygiene {
		list = append(list, ViewHygiene())
	}
	if r.sc.CheckRecovery {
		list = append(list, BoundedRecovery())
	}
	return list
}

// NoFalseDelivery: a peer only ever delivers events that matched a
// filter it held at (or after) publish time — the safety half of the
// paper's §2 selective-information model. Detected inline by the
// delivery observer; this check reports what it caught.
func NoFalseDelivery() Invariant {
	return Invariant{
		Name: "no-false-delivery",
		Check: func(r *Run) error {
			r.mu.Lock()
			defer r.mu.Unlock()
			if r.falseTotal > 0 {
				return fmt.Errorf("%d false deliveries (first: %s)", r.falseTotal, r.falseDel[0])
			}
			return nil
		},
	}
}

// EventualDelivery: every peer that stayed up, connected to the
// publisher, and interested must deliver the event — the liveness half,
// the paper's gossip-reliability claim (§4.2, Fig. 4) under adversity.
// MinDelivery < 1 leaves slack for stochastic loss tails.
func EventualDelivery() Invariant {
	return Invariant{
		Name: "eventual-delivery",
		Check: func(r *Run) error {
			r.mu.Lock()
			defer r.mu.Unlock()
			eligible, delivered, firstMiss := r.pairTotalsLocked()
			if eligible == 0 {
				return nil
			}
			ratio := float64(delivered) / float64(eligible)
			if ratio < r.sc.MinDelivery {
				return fmt.Errorf("delivered %d/%d eligible pairs (%.4f < floor %.4f); e.g. %s",
					delivered, eligible, ratio, r.sc.MinDelivery, firstMiss)
			}
			return nil
		},
	}
}

// DropConservation: every message the network accepted was either
// received or counted as dropped — nothing vanishes, nothing is
// double-delivered. Exact on every runtime that exposes counters: the
// sim drains its event queue before the check, the live runtime counts
// each send attempt against a drop bucket (injected faults, full
// inboxes, refused sends) and quiesces its transport on Close. Since
// the live runtime gained these counters, inbox-overflow drops are part
// of the books — a storm run can no longer pass while losing messages
// invisibly.
func DropConservation() Invariant {
	return Invariant{
		Name: "drop-conservation",
		Check: func(r *Run) error {
			sent, recv, dropped, ok := r.rt.Traffic()
			if !ok {
				return nil
			}
			if sent != recv+dropped {
				return fmt.Errorf("sent %d != received %d + dropped %d (leak of %d)",
					sent, recv, dropped, int64(sent)-int64(recv)-int64(dropped))
			}
			return nil
		},
	}
}

// LedgerConservation: the fairness ledger's books balance — the engine's
// independently-observed counts agree with the ledger (every AddDelivery
// had a delivery observer call and vice versa, ditto publishes), audited
// bytes never exceed bytes actually sent (§5.2's novelty audit cannot
// credit more than the wire carried), and global contribution covers
// global benefit (Fig. 1's ratios are meaningful: somebody paid for
// every delivery).
func LedgerConservation() Invariant {
	return Invariant{
		Name: "ledger-conservation",
		Check: func(r *Run) error {
			l := r.rt.Ledger()
			w := l.Weights()
			var ledgerDelivered, ledgerPublished uint64
			var contrib, benefit float64
			for i := 0; i < l.Len(); i++ {
				a := l.Account(i)
				ledgerDelivered += a.Delivered
				ledgerPublished += a.Published
				if audited := a.UsefulBytes + a.JunkBytes; audited > a.BytesSent[fairness.ClassApp] {
					return fmt.Errorf("node %d audited for %d bytes but sent only %d app bytes",
						i, audited, a.BytesSent[fairness.ClassApp])
				}
				contrib += fairness.Contribution(a, w)
				benefit += fairness.Benefit(a, w)
			}
			if observed := r.deliveries.Load(); ledgerDelivered != observed {
				return fmt.Errorf("ledger counts %d deliveries, observers saw %d", ledgerDelivered, observed)
			}
			r.mu.Lock()
			published := r.published
			r.mu.Unlock()
			if ledgerPublished != published {
				return fmt.Errorf("ledger counts %d publishes, engine made %d", ledgerPublished, published)
			}
			if ledgerDelivered > 0 && contrib < benefit {
				return fmt.Errorf("global contribution %.0f below global benefit %.0f", contrib, benefit)
			}
			return nil
		},
	}
}

// ViewHygiene: within HygieneRounds of the last fault action, no live
// peer's membership view still holds the address of a down peer —
// graceful leavers are scrubbed by the Leave hand-off, crashed peers by
// the probe-timeout failure detector riding the Cyclon shuffles. Stale
// addresses are the paper's §3.2 instability cost made permanent: a
// view slot pointing at a dead peer wastes a share of every future
// shuffle and gossip fanout. The settle phase records when clean views
// were first observed; after Close the final views are audited again
// (authoritative read — no peer goroutine can resurrect an address).
// Vacuous on runtimes without inspectable partial views (the idealised
// full-membership sim column reports ok=false from Views).
func ViewHygiene() Invariant {
	return Invariant{
		Name: "view-hygiene",
		Check: func(r *Run) error {
			if _, ok := r.rt.Views(); !ok {
				return nil
			}
			if r.hygieneAt < 0 {
				return fmt.Errorf("views not clean within %d rounds of the last fault (round %d): %s",
					r.sc.HygieneRounds, r.LastFault(), r.hygieneNote)
			}
			if off := r.hygieneOffender(); off != "" {
				return fmt.Errorf("dead address resurfaced after round %d: %s", r.hygieneAt, off)
			}
			return nil
		},
	}
}

// BoundedRecovery: delivery reaches the MinDelivery floor within
// ⌈RecoveryC·N⌉ rounds of the last fault action — the recovery-time
// bound that turns "eventual delivery" into a budgeted guarantee
// (linear-in-N dissemination bounds in the style of arXiv:1701.06800).
// The settle phase records the round the floor was first met; never
// meeting it inside the budget is the violation.
func BoundedRecovery() Invariant {
	return Invariant{
		Name: "bounded-recovery",
		Check: func(r *Run) error {
			budget := int(r.sc.RecoveryC*float64(r.N()) + 0.5)
			if r.recoveredAt < 0 {
				r.mu.Lock()
				eligible, delivered, firstMiss := r.pairTotalsLocked()
				r.mu.Unlock()
				return fmt.Errorf("delivery did not recover within %d rounds (c=%g, N=%d) of the last fault (round %d): %d/%d pairs; e.g. %s",
					budget, r.sc.RecoveryC, r.N(), r.LastFault(), delivered, eligible, firstMiss)
			}
			if got := r.recoveredAt - r.LastFault(); got > budget {
				return fmt.Errorf("recovered %d rounds after the last fault, budget %d", got, budget)
			}
			return nil
		},
	}
}

// FairnessConvergence: under the AIMD controller (§5.2), the windowed
// per-peer contribution/benefit ratios must tighten — the late-half Jain
// index over stable peers meets the scenario floor and does not collapse
// relative to the early half. This operationalises the paper's Fig. 1
// definition of fairness as a property the controller maintains, not
// just reaches once.
func FairnessConvergence() Invariant {
	return Invariant{
		Name: "fairness-convergence",
		Check: func(r *Run) error {
			r.mu.Lock()
			early, late := r.fairnessWindowsLocked()
			r.mu.Unlock()
			floor := r.sc.FairnessFloor
			if strings.HasPrefix(r.rt.Name(), "live") {
				// Wall-clock scheduling jitters the live windows; hold the
				// same shape to a looser floor.
				floor *= 0.7
			}
			if late < floor {
				return fmt.Errorf("late-window Jain %.3f below floor %.3f", late, floor)
			}
			if late < early-0.2 {
				return fmt.Errorf("fairness regressed: Jain %.3f -> %.3f", early, late)
			}
			return nil
		},
	}
}
