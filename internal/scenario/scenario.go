// Package scenario is the fault-injection scenario engine: a Scenario is
// a seeded, declarative schedule of timed adversities — churn waves,
// partitions and heals, link loss, flash-crowd bursts, subscription
// churn, free-riders — plus a set of Invariants checked during and after
// the run (no false delivery, eventual delivery to all connected
// interested peers, network drop conservation, ledger conservation,
// fairness-ratio convergence under the AIMD controller).
//
// Scenarios run against the small Runtime interface, implemented by the
// deterministic simulation (core.Cluster) and the goroutine-per-peer
// runtime (live.Cluster) on either of its transports — in-process
// channels ("live") or real loopback UDP sockets ("live-udp"). The same
// seeded schedule therefore drives every runtime and must satisfy the
// same invariants — differential testing of the implementations of the
// protocol. On the simulator a scenario is fully deterministic: one
// seed, one result, bit for bit.
//
// See SCENARIOS.md at the repository root for the scenario vocabulary,
// the built-in table, and the paper section each invariant
// operationalises.
package scenario

import (
	"fmt"
	"math/rand"
	"sort"

	"fairgossip/internal/fairness"
	"fairgossip/internal/workload"
)

// Action is one named fault operation applied to a running scenario.
type Action struct {
	Name string
	Do   func(*Run)
}

// Step schedules an Action at a publishing round (0-based).
type Step struct {
	Round  int
	Action Action
}

// Scenario is a declarative, seeded schedule of adversity. The zero
// value of every field has a sensible default (see withDefaults), so
// scenarios read as deltas from a calm baseline.
type Scenario struct {
	Name string
	Note string

	// Population and protocol knobs (shared by both runtimes).
	N            int     // peers (default 32)
	Fanout       int     // gossip fanout (default 5)
	Batch        int     // events per gossip message (default 8)
	BufferMaxAge int     // rounds an event stays forwardable (default 10)
	TargetRatio  float64 // >0 enables the AIMD fairness controller
	// RepairPenalty is the §3.2 instability charge per rejoin (sim only;
	// the live ledger has no churn-penalty hook wired yet).
	RepairPenalty float64
	// Shards splits the sim column's kernel across that many per-core
	// shards (default 1 = the legacy single-threaded engine, byte-for-
	// byte). Runs are deterministic per (seed, Shards); different shard
	// counts are different, equally valid executions because cross-shard
	// messages quantise to round barriers. Live columns ignore it.
	Shards int

	// Live-runtime membership knobs: partial-view capacity (default 24 —
	// large enough that a 32-peer scenario's views mix well, small
	// enough that they stay genuinely partial and join-wave joiners must
	// propagate), entries exchanged per Cyclon shuffle (default 8), and
	// rounds between a peer's shuffle initiations (default 2). The sim
	// column keeps the idealised full-membership sampler — see
	// NewSimRuntime.
	ViewCap      int
	ShuffleLen   int
	ShuffleEvery int
	// JoinGrace is the joiner eligibility rule: a peer added by
	// JoinNodes is only required to deliver events published at least
	// JoinGrace rounds after it joined (default 3) — its view needs a
	// few shuffles to integrate before partner selection can find it.
	JoinGrace int

	// Workload: a Zipf topic set with heterogeneous subscriptions, then
	// PerRound popularity-sampled publications per round for Rounds
	// rounds.
	Topics   int // topic count (default 16)
	MaxSubs  int // max subscriptions per peer (default 4)
	PerRound int // events published per round (default 2)
	Payload  int // event payload bytes (default 64)

	// Phases: Warmup rounds before publishing, Rounds publishing rounds,
	// DrainRounds after publishing stops.
	Warmup      int // default 5
	Rounds      int // default 30
	DrainRounds int // default 12

	// Steps are the timed fault actions; EveryRound, when set, runs each
	// publishing round after the timed steps (dynamic behaviour such as
	// rage-quit policies).
	Steps      []Step
	EveryRound func(*Run)

	// Shape, when set, is the WAN shaping profile installed before the
	// run starts (round-relative units; see ShapeSpec). Live columns
	// always carry the shaping middleware — an inert profile when Shape
	// is nil — so the Shape action can swap profiles mid-run on every
	// runtime.
	Shape *ShapeSpec
	// Regions partitions the id space into address regions (id mod
	// Regions) for the RegionalOutage action. 0 = no regional structure.
	Regions int

	// MinDelivery is the eventual-delivery invariant floor: the fraction
	// of (eligible peer, event) pairs that must deliver (default 1).
	// Lossy schedules leave slack for stochastic tails.
	MinDelivery float64
	// CheckFairness enables the fairness-ratio convergence invariant
	// (requires TargetRatio > 0); FairnessFloor is the late-window Jain
	// index floor (default 0.5).
	CheckFairness bool
	FairnessFloor float64

	// CheckRecovery enables the bounded-recovery invariant: delivery
	// must reach the MinDelivery floor within ⌈RecoveryC·N⌉ rounds
	// (default c = 2) of the last fault action. The engine appends a
	// settle phase after the publishing schedule that steps the runtime
	// one round at a time until the floor is met or the budget runs out,
	// recording the round recovery was first observed.
	CheckRecovery bool
	RecoveryC     float64

	// CheckViewHygiene enables the view-hygiene invariant: within
	// HygieneRounds (default 2·N) of the last fault action, no live
	// peer's membership view may still hold the address of a down peer —
	// graceful leavers via the Leave hand-off, crashed peers via the
	// probe-timeout failure detector. Vacuous on runtimes without
	// inspectable partial views (the idealised sim column).
	CheckViewHygiene bool
	HygieneRounds    int
}

func (sc Scenario) withDefaults() Scenario {
	if sc.N <= 0 {
		sc.N = 32
	}
	if sc.Fanout <= 0 {
		sc.Fanout = 5
	}
	if sc.Batch <= 0 {
		sc.Batch = 8
	}
	if sc.BufferMaxAge <= 0 {
		sc.BufferMaxAge = 10
	}
	if sc.Shards <= 0 {
		sc.Shards = 1
	}
	if sc.ViewCap <= 0 {
		sc.ViewCap = 24
	}
	if sc.ShuffleLen <= 0 {
		sc.ShuffleLen = 8
	}
	if sc.ShuffleEvery <= 0 {
		sc.ShuffleEvery = 2
	}
	if sc.JoinGrace <= 0 {
		sc.JoinGrace = 3
	}
	if sc.Topics <= 0 {
		sc.Topics = 16
	}
	if sc.MaxSubs <= 0 {
		sc.MaxSubs = 4
	}
	if sc.PerRound <= 0 {
		sc.PerRound = 2
	}
	if sc.Payload < 0 {
		sc.Payload = 0
	} else if sc.Payload == 0 {
		sc.Payload = 64
	}
	if sc.Warmup <= 0 {
		sc.Warmup = 5
	}
	if sc.Rounds <= 0 {
		sc.Rounds = 30
	}
	if sc.DrainRounds <= 0 {
		sc.DrainRounds = 12
	}
	if sc.MinDelivery <= 0 {
		sc.MinDelivery = 1
	}
	if sc.FairnessFloor <= 0 {
		sc.FairnessFloor = 0.5
	}
	if sc.RecoveryC <= 0 {
		sc.RecoveryC = 2
	}
	if sc.HygieneRounds <= 0 {
		sc.HygieneRounds = 2 * sc.N
	}
	return sc
}

// --- Action vocabulary -------------------------------------------------------

// SampleDistinct draws k distinct values from [0, n) using rng, skipping
// values for which skip returns true. k is capped at the number of
// drawable candidates, so over-asking (a second CrashFrac(0.6) when 60%
// are already down) returns what exists instead of rejection-sampling
// forever. The draws themselves happen exactly the way the experiments
// historically did — rejection sampling with rng.Intn — so refactored
// experiments keep their RNG streams (and fixed-seed outputs)
// bit-identical.
func SampleDistinct(rng *rand.Rand, n, k int, skip func(int) bool) []int {
	if k > n {
		k = n
	}
	if skip != nil {
		candidates := 0
		for id := 0; id < n; id++ {
			if !skip(id) {
				candidates++
			}
		}
		if k > candidates {
			k = candidates
		}
	}
	if k <= 0 {
		return nil
	}
	picked := make(map[int]bool, k)
	out := make([]int, 0, k)
	for len(out) < k {
		id := rng.Intn(n)
		if picked[id] || (skip != nil && skip(id)) {
			continue
		}
		picked[id] = true
		out = append(out, id)
	}
	return out
}

// CrashFrac crashes ⌈frac·N⌉ random up peers.
func CrashFrac(frac float64) Action {
	return Action{
		Name: fmt.Sprintf("crash %.0f%%", frac*100),
		Do: func(r *Run) {
			k := int(frac*float64(r.N()) + 0.5)
			for _, id := range SampleDistinct(r.Rng, r.N(), k, func(id int) bool { return !r.NodeUp(id) }) {
				r.Crash(id)
			}
		},
	}
}

// LeaveFrac departs ⌈frac·N⌉ random up peers gracefully: each hands its
// freshest view entries to its neighbours before going silent (see
// Run.Leave). For delivery eligibility a leaver counts like a crash.
func LeaveFrac(frac float64) Action {
	return Action{
		Name: fmt.Sprintf("leave %.0f%%", frac*100),
		Do: func(r *Run) {
			k := int(frac*float64(r.N()) + 0.5)
			for _, id := range SampleDistinct(r.Rng, r.N(), k, func(id int) bool { return !r.NodeUp(id) }) {
				r.Leave(id)
			}
		},
	}
}

// RejoinAll brings every crashed peer back.
func RejoinAll() Action {
	return Action{
		Name: "rejoin all",
		Do: func(r *Run) {
			for id := 0; id < r.N(); id++ {
				if !r.NodeUp(id) {
					r.Rejoin(id)
				}
			}
		},
	}
}

// SplitRandomHalf partitions a random half of the population away from
// the rest until a Heal.
func SplitRandomHalf() Action {
	return Action{
		Name: "partition half",
		Do: func(r *Run) {
			side := SampleDistinct(r.Rng, r.N(), r.N()/2, nil)
			sort.Ints(side)
			r.Partition(side)
		},
	}
}

// HealAll removes any partition.
func HealAll() Action {
	return Action{Name: "heal", Do: func(r *Run) { r.Heal() }}
}

// Loss sets the i.i.d. link-loss probability.
func Loss(p float64) Action {
	return Action{
		Name: fmt.Sprintf("loss %.0f%%", p*100),
		Do:   func(r *Run) { r.SetLoss(p) },
	}
}

// Burst publishes k extra popularity-sampled events this round — a flash
// crowd on top of the steady workload.
func Burst(k int) Action {
	return Action{
		Name: fmt.Sprintf("burst %d", k),
		Do: func(r *Run) {
			for i := 0; i < k; i++ {
				r.PublishRandom()
			}
		},
	}
}

// FreeRiderFrac turns ⌈frac·N⌉ random up, honest peers into free-riders:
// they keep receiving and delivering but stop forwarding.
func FreeRiderFrac(frac float64) Action {
	return Action{
		Name: fmt.Sprintf("free-riders %.0f%%", frac*100),
		Do: func(r *Run) {
			k := int(frac*float64(r.N()) + 0.5)
			for _, id := range SampleDistinct(r.Rng, r.N(), k, func(id int) bool { return !r.NodeUp(id) || r.NodeFree(id) }) {
				r.SetFreeRider(id, true)
			}
		},
	}
}

// JoinNodes boots k new peers mid-run, each bootstrapped through a
// random up, honest seed. Joiners draw a fresh interest set and become
// eligible for delivery once the scenario's JoinGrace expires (their
// views need a few shuffles to integrate — the fault-aware eligibility
// rule for joiners).
func JoinNodes(k int) Action {
	return Action{
		Name: fmt.Sprintf("join %d", k),
		Do: func(r *Run) {
			for i := 0; i < k; i++ {
				r.JoinNode()
			}
		},
	}
}

// ResubscribeFrac makes ⌈frac·N⌉ random up peers drop all their
// subscriptions and draw a fresh interest set — subscription churn.
func ResubscribeFrac(frac float64) Action {
	return Action{
		Name: fmt.Sprintf("resubscribe %.0f%%", frac*100),
		Do: func(r *Run) {
			k := int(frac*float64(r.N()) + 0.5)
			for _, id := range SampleDistinct(r.Rng, r.N(), k, func(id int) bool { return !r.NodeUp(id) }) {
				r.Resubscribe(id)
			}
		},
	}
}

// rageQuitScenario models the paper's §1/§6 feedback loop dynamically:
// every 5 rounds each peer judges its windowed contribution/benefit
// ratio against the population median and rage-quits when it stays 2.5×
// above it, rejoining 4 rounds later. Churn here is data-dependent —
// driven by measured unfairness, not a fixed schedule — which is exactly
// what the EveryRound hook exists for.
func rageQuitScenario() Scenario {
	type rqState struct {
		rq        *workload.RageQuit
		prev      []fairness.Account
		downUntil map[int]int
	}
	return Scenario{
		Name:          "rage-quit",
		Note:          "peers quit when their measured window ratio is 2.5x the median, rejoin 4 rounds later",
		Rounds:        40,
		RepairPenalty: 200,
		EveryRound: func(r *Run) {
			st, _ := r.Scratch.(*rqState)
			if st == nil {
				st = &rqState{
					rq:        workload.NewRageQuit(2.5, 2),
					prev:      r.Ledger().Snapshot(),
					downUntil: make(map[int]int),
				}
				r.Scratch = st
			}
			var ready []int
			for id, until := range st.downUntil {
				if r.Round >= until {
					ready = append(ready, id)
				}
			}
			sort.Ints(ready) // rejoin in id order, not map order, so runs replay identically
			for _, id := range ready {
				r.Rejoin(id)
				delete(st.downUntil, id)
			}
			if r.Round%5 != 0 || r.Round == 0 {
				return
			}
			cur := r.Ledger().Snapshot()
			w := r.Ledger().Weights()
			ratios := make([]float64, len(cur))
			for i := range ratios {
				ratios[i] = fairness.Ratio(fairness.Delta(cur[i], st.prev[i]), w)
			}
			st.prev = cur
			if r.Round < 10 {
				return // warm-up before anyone judges fairness
			}
			med := Median(ratios)
			for _, id := range st.rq.Check(ratios, med, r.NodeUp) {
				r.Crash(id)
				st.downUntil[id] = r.Round + 4
			}
		},
	}
}

// --- Built-in table ----------------------------------------------------------

// Builtins returns the built-in scenario table: one calm baseline plus
// one scenario per adversity axis and a combined storm. Each runs as a
// table-driven test against both runtimes.
func Builtins() []Scenario {
	return []Scenario{
		{
			Name: "calm",
			Note: "baseline: steady Zipf workload, no faults",
		},
		{
			Name:          "churn-waves",
			Note:          "two 25% crash waves with rejoins; survivors keep full delivery",
			RepairPenalty: 200,
			Steps: []Step{
				{Round: 6, Action: CrashFrac(0.25)},
				{Round: 14, Action: RejoinAll()},
				{Round: 18, Action: CrashFrac(0.25)},
				{Round: 26, Action: RejoinAll()},
			},
		},
		{
			Name: "partition-heal",
			Note: "random half splits off, then heals; each side keeps serving itself",
			Steps: []Step{
				{Round: 8, Action: SplitRandomHalf()},
				{Round: 20, Action: HealAll()},
			},
		},
		{
			Name:        "lossy",
			Note:        "10% i.i.d. link loss through most of the run; gossip redundancy absorbs it",
			MinDelivery: 0.98,
			Steps: []Step{
				{Round: 4, Action: Loss(0.10)},
				{Round: 26, Action: Loss(0)},
			},
		},
		{
			Name:         "flash-crowd",
			Note:         "a 40-event publish burst lands in one round on top of the steady load",
			BufferMaxAge: 14,
			MinDelivery:  0.99,
			Steps: []Step{
				{Round: 10, Action: Burst(40)},
			},
		},
		{
			Name: "sub-churn",
			Note: "every 5 rounds a quarter of the peers swap their whole interest set",
			Steps: []Step{
				{Round: 5, Action: ResubscribeFrac(0.25)},
				{Round: 10, Action: ResubscribeFrac(0.25)},
				{Round: 15, Action: ResubscribeFrac(0.25)},
				{Round: 20, Action: ResubscribeFrac(0.25)},
				{Round: 25, Action: ResubscribeFrac(0.25)},
			},
		},
		{
			Name: "free-riders",
			Note: "a quarter of the peers stop forwarding; the rest still reach everyone",
			Steps: []Step{
				{Round: 5, Action: FreeRiderFrac(0.25)},
			},
		},
		{
			Name:          "storm",
			Note:          "combined adversity: free-riders, loss, a crash wave and a flash crowd",
			BufferMaxAge:  14,
			RepairPenalty: 200,
			MinDelivery:   0.95,
			Steps: []Step{
				{Round: 4, Action: FreeRiderFrac(0.15)},
				{Round: 5, Action: Loss(0.05)},
				{Round: 8, Action: CrashFrac(0.20)},
				{Round: 12, Action: Burst(30)},
				{Round: 16, Action: RejoinAll()},
				{Round: 26, Action: Loss(0)},
			},
		},
		{
			Name:         "join-wave",
			Note:         "two waves of newcomers join mid-run through seed peers; they must integrate and deliver",
			N:            24,
			Rounds:       36,
			BufferMaxAge: 12,
			MinDelivery:  0.98,
			Steps: []Step{
				{Round: 8, Action: JoinNodes(4)},
				{Round: 18, Action: JoinNodes(4)},
			},
		},
		{
			Name:             "graceful-drain",
			Note:             "two 15% graceful-leave waves; leavers hand their views over, so survivors' views scrub fast and delivery holds",
			CheckRecovery:    true,
			CheckViewHygiene: true,
			Steps: []Step{
				{Round: 8, Action: LeaveFrac(0.15)},
				{Round: 16, Action: LeaveFrac(0.15)},
			},
		},
		{
			Name:             "crash-storm-recover",
			Note:             "crash waves under loss; once faults stop, probe timeouts must scrub the dead from every live view and delivery must recover within c·N rounds",
			BufferMaxAge:     14,
			ShuffleEvery:     1, // probe cadence = detection latency; tighten it for the storm
			MinDelivery:      0.99,
			CheckRecovery:    true,
			CheckViewHygiene: true,
			Steps: []Step{
				{Round: 4, Action: Loss(0.05)},
				{Round: 6, Action: CrashFrac(0.15)},
				{Round: 10, Action: CrashFrac(0.15)},
				{Round: 14, Action: Loss(0)},
			},
		},
		{
			Name:             "shaped-wan",
			Note:             "wide-area path: delay, jitter, reorder and 2% shaper loss the whole run, plus a crash wave the detector must scrub under delayed probes",
			Shape:            &ShapeSpec{DelayRounds: 0.25, JitterRounds: 0.35, Reorder: 0.08, Loss: 0.02},
			BufferMaxAge:     14,
			MinDelivery:      0.97,
			CheckRecovery:    true,
			CheckViewHygiene: true,
			Steps: []Step{
				{Round: 10, Action: CrashFrac(0.15)},
			},
		},
		{
			Name:             "regional-outage",
			Note:             "one of four address regions drops off the map mid-run, keeps gossiping internally, then reconnects; correlated loss lands in the counted shaper bucket",
			Regions:          4,
			Shape:            &ShapeSpec{DelayRounds: 0.1, JitterRounds: 0.15},
			BufferMaxAge:     14,
			MinDelivery:      0.97,
			CheckRecovery:    true,
			CheckViewHygiene: true,
			Steps: []Step{
				{Round: 8, Action: RegionalOutage(1)},
				{Round: 18, Action: RegionalHeal()},
			},
		},
		{
			Name:             "mobile-rebind",
			Note:             "mobile clients on a jittery path: three waves of peers swap transport addresses mid-run and re-announce; the make-before-break rebind must lose nothing",
			Shape:            &ShapeSpec{DelayRounds: 0.1, JitterRounds: 0.4, Reorder: 0.05, Loss: 0.01},
			MinDelivery:      0.98,
			CheckRecovery:    true,
			CheckViewHygiene: true,
			Steps: []Step{
				{Round: 6, Action: RebindFrac(0.2)},
				{Round: 12, Action: RebindFrac(0.2)},
				{Round: 18, Action: RebindFrac(0.2)},
			},
		},
		{
			Name:          "intermittent-links",
			Note:          "connectivity blinks: repeated 50% shaper-loss blackouts with clear gaps; buffered redundancy rides them out",
			Shape:         &ShapeSpec{},
			BufferMaxAge:  16,
			MinDelivery:   0.95,
			CheckRecovery: true,
			Steps: []Step{
				{Round: 4, Action: Shape(ShapeSpec{Loss: 0.5})},
				{Round: 8, Action: ClearShape()},
				{Round: 12, Action: Shape(ShapeSpec{Loss: 0.5})},
				{Round: 16, Action: ClearShape()},
				{Round: 20, Action: Shape(ShapeSpec{Loss: 0.5})},
				{Round: 24, Action: ClearShape()},
			},
		},
		rageQuitScenario(),
		{
			Name:          "aimd-fair",
			Note:          "calm run under the AIMD controller; the fairness ratios must converge",
			TargetRatio:   2500,
			Rounds:        40,
			PerRound:      1,
			BufferMaxAge:  14,
			MinDelivery:   0.97, // AIMD may shed batch to its floor while converging
			CheckFairness: true,
			FairnessFloor: 0.5,
		},
	}
}

// ByName returns the built-in scenario with the given name.
func ByName(name string) (Scenario, bool) {
	for _, sc := range Builtins() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Names returns the built-in scenario names in table order.
func Names() []string {
	bs := Builtins()
	out := make([]string, len(bs))
	for i, sc := range bs {
		out[i] = sc.Name
	}
	return out
}
