// Package experiment is the benchmark harness: one function per
// figure/claim of the paper (see DESIGN.md §3 for the index), each
// returning text/CSV tables whose *shape* is compared against the paper's
// assertions in EXPERIMENTS.md. All experiments are deterministic in the
// seed and scale down for `go test -bench`.
package experiment

import (
	"fmt"
	"strconv"
	"strings"
)

// Table is one result table: a title, the paper's expectation for the
// shape ("Note"), column headers, and rows.
type Table struct {
	ID    string // experiment id, e.g. "EXP-F1"
	Title string
	Note  string // the paper's expected shape, quoted/paraphrased
	Cols  []string
	Rows  [][]string
}

// AddRow appends a row, formatting each value: floats with 3 decimals,
// everything else via %v.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = strconv.FormatFloat(x, 'f', 3, 64)
		case float32:
			row[i] = strconv.FormatFloat(float64(x), 'f', 3, 64)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders an aligned text table.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&sb, "   expected shape: %s\n", t.Note)
	}
	widths := make([]int, len(t.Cols))
	for i, c := range t.Cols {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Cols)
	sep := make([]string, len(t.Cols))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRec := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			sb.WriteString(cell)
		}
		sb.WriteByte('\n')
	}
	writeRec(t.Cols)
	for _, row := range t.Rows {
		writeRec(row)
	}
	return sb.String()
}

// Spec describes a runnable experiment for the registry.
type Spec struct {
	ID    string
	Title string
	Run   func(opts Options) []Table
}

// Options scales and seeds an experiment run.
type Options struct {
	// Seed drives all randomness.
	Seed int64
	// Small selects bench-sized parameters (fast); false = paper-scale.
	Small bool
}

// All returns the registry of every experiment, in DESIGN.md order.
func All() []Spec {
	return []Spec{
		{"EXP-F1", "Fairness ratio equalisation (Fig. 1)", ExpF1},
		{"EXP-F2", "Topic-based accounting (Fig. 2)", ExpF2},
		{"EXP-F3", "Expressive levers: fanout & message size (Fig. 3)", ExpF3},
		{"EXP-F4", "Basic push gossip reliability (Fig. 4)", ExpF4},
		{"EXP-T1", "Scribe baseline unfairness (§4.1)", ExpT1},
		{"EXP-T2", "DAM supertopic broker effect (§4.2)", ExpT2},
		{"EXP-T3", "Subscription maintenance burden (§5.1)", ExpT3},
		{"EXP-T4", "Load balancing is not fairness (§3.1–3.2)", ExpT4},
		{"EXP-T5", "Unfairness-driven churn loop (§1/§6)", ExpT5},
		{"EXP-A1", "Fanout convergence (§5.2 Q1)", ExpA1},
		{"EXP-A2", "Batch convergence (§5.2 Q2)", ExpA2},
		{"EXP-A3", "Minimum fanout requirement (§5.2 Q3)", ExpA3},
		{"EXP-A4", "Message size requirement & policies (§5.2 Q4)", ExpA4},
		{"EXP-A5", "Robustness under adaptation (§5.2 Q5)", ExpA5},
		{"EXP-A6", "Bias resistance via audit (§5.2 Q6)", ExpA6},
		// Extensions beyond the paper's core sketch (documented in
		// EXPERIMENTS.md under "extensions").
		{"EXP-X1", "Push-pull anti-entropy repair (extension)", ExpX1},
		{"EXP-X2", "Semantic partner bias vs interest sparsity (extension)", ExpX2},
	}
}
