package experiment

import (
	"strconv"
	"strings"
	"testing"
)

var small = Options{Seed: 1, Small: true}

// cell parses a table cell as a float.
func cell(t *testing.T, tb Table, row, col int) float64 {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("table %s has no cell (%d,%d):\n%s", tb.ID, row, col, tb.String())
	}
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) of %s is not numeric: %q", row, col, tb.ID, tb.Rows[row][col])
	}
	return v
}

// findRow returns the index of the first row whose first cell equals key.
func findRow(t *testing.T, tb Table, key string) int {
	t.Helper()
	for i, r := range tb.Rows {
		if r[0] == key {
			return i
		}
	}
	t.Fatalf("table %s has no row %q:\n%s", tb.ID, key, tb.String())
	return -1
}

func TestExpF1ShapeAdaptiveFairer(t *testing.T) {
	tb := ExpF1(small)[0]
	static := findRow(t, tb, "static")
	jainCol := 1
	for _, variant := range []string{"aimd", "proportional"} {
		row := findRow(t, tb, variant)
		if cell(t, tb, row, jainCol) <= cell(t, tb, static, jainCol) {
			t.Errorf("%s Jain %.3f not above static %.3f", variant,
				cell(t, tb, row, jainCol), cell(t, tb, static, jainCol))
		}
		// Work must track benefit under adaptation (corr column 4).
		if cell(t, tb, row, 4) < 0.5 {
			t.Errorf("%s contribution~benefit corr %.3f < 0.5", variant, cell(t, tb, row, 4))
		}
	}
	if cell(t, tb, static, 4) > 0.3 {
		t.Errorf("static corr %.3f unexpectedly high", cell(t, tb, static, 4))
	}
}

func TestExpF2ShapeTopicGroupsAlignWorkWithBenefit(t *testing.T) {
	tb := ExpF2(small)[0]
	flat := findRow(t, tb, "flat-gossip")
	groups := findRow(t, tb, "topic-groups")
	// corr (col 2): groups ≈ 1, flat ≈ 0.
	if cell(t, tb, groups, 2) < 0.8 {
		t.Errorf("topic groups corr %.3f < 0.8", cell(t, tb, groups, 2))
	}
	if cell(t, tb, flat, 2) > 0.5 {
		t.Errorf("flat corr %.3f > 0.5", cell(t, tb, flat, 2))
	}
	// Topic groups use less total app traffic (col 4).
	if cell(t, tb, groups, 4) >= cell(t, tb, flat, 4) {
		t.Errorf("topic groups traffic %.1f not below flat %.1f",
			cell(t, tb, groups, 4), cell(t, tb, flat, 4))
	}
	// Both deliver comparably (col 5, within 20%).
	fd, gd := cell(t, tb, flat, 5), cell(t, tb, groups, 5)
	if gd < 0.8*fd {
		t.Errorf("topic groups delivered %.0f << flat %.0f", gd, fd)
	}
}

func TestExpF3ShapeLeversImproveCorrelation(t *testing.T) {
	tables := ExpF3(small)
	final := tables[1]
	static := findRow(t, final, "static")
	for _, variant := range []string{"adaptive-fanout", "adaptive-batch", "adaptive-both"} {
		row := findRow(t, final, variant)
		if cell(t, final, row, 3) <= cell(t, final, static, 3) {
			t.Errorf("%s corr %.3f not above static %.3f", variant,
				cell(t, final, row, 3), cell(t, final, static, 3))
		}
	}
	// Deliveries must not collapse under adaptation (within 15% of static).
	sd := cell(t, final, static, 4)
	for _, variant := range []string{"adaptive-fanout", "adaptive-batch", "adaptive-both"} {
		row := findRow(t, final, variant)
		if cell(t, final, row, 4) < 0.85*sd {
			t.Errorf("%s deliveries %.0f dropped below 85%% of static %.0f",
				variant, cell(t, final, row, 4), sd)
		}
	}
}

func TestExpF4ShapeThresholdAndLoss(t *testing.T) {
	tables := ExpF4(small)
	sweep := tables[0]
	// Fanout 1 must be far from full coverage; fanout ≥ ln n + 2 ≈ 7 full.
	if got := cell(t, sweep, 0, 1); got > 0.6 {
		t.Errorf("fanout 1 coverage %.3f, want << 1", got)
	}
	last := len(sweep.Rows) - 1
	if got := cell(t, sweep, last, 1); got < 0.99 {
		t.Errorf("fanout 10 coverage %.3f, want ≈1", got)
	}
	// Monotone-ish: each row ≥ previous − 0.05.
	for i := 1; i < len(sweep.Rows); i++ {
		if cell(t, sweep, i, 1) < cell(t, sweep, i-1, 1)-0.05 {
			t.Errorf("coverage not monotone at fanout %d", i+1)
		}
	}
	// Rounds to coverage grow slowly (≤ 2× from n=64 to n=256).
	growth := tables[1]
	first := cell(t, growth, 0, 2)
	lastG := cell(t, growth, len(growth.Rows)-1, 2)
	if lastG > 2*first+1 {
		t.Errorf("rounds-to-coverage grew too fast: %v -> %v", first, lastG)
	}
	// 20% loss stays near full delivery.
	loss := tables[2]
	if got := cell(t, loss, len(loss.Rows)-1, 1); got < 0.95 {
		t.Errorf("delivery under 20%% loss %.3f", got)
	}
}

func TestExpT1ShapeScribeConscriptsOutsiders(t *testing.T) {
	tables := ExpT1(small)
	tb := tables[0]
	scribe := findRow(t, tb, "scribe")
	fg := findRow(t, tb, "fairgossip-topics")
	if got := cell(t, tb, scribe, 1); got < 10 {
		t.Errorf("scribe foreign forwarding %.1f%% (all sends), want >10%%", got)
	}
	if got := cell(t, tb, fg, 1); got != 0 {
		t.Errorf("fairgossip foreign forwarding %.1f%%, want 0", got)
	}
	// FairGossip ratio fairness far above Scribe's.
	if cell(t, tb, fg, 3) <= cell(t, tb, scribe, 3) {
		t.Errorf("fairgossip Jain %.3f not above scribe %.3f",
			cell(t, tb, fg, 3), cell(t, tb, scribe, 3))
	}
}

func TestExpT2ShapeForcedBridgesAreBrokers(t *testing.T) {
	tb := ExpT2(small)[0]
	leaf := findRow(t, tb, "leaf-subscriber")
	bridge := findRow(t, tb, "forced-bridge")
	// Bridges carry ≥2× a leaf's traffic at equal benefit: ratio column 4.
	if cell(t, tb, bridge, 4) < 2*cell(t, tb, leaf, 4) {
		t.Errorf("bridge ratio %.1f not ≥ 2× leaf ratio %.1f",
			cell(t, tb, bridge, 4), cell(t, tb, leaf, 4))
	}
}

func TestExpT3ShapeOutsidersDoPureMaintenance(t *testing.T) {
	tables := ExpT3(small)
	burden, share := tables[0], tables[1]
	// Walks were relayed in both join patterns.
	for i := range burden.Rows {
		if cell(t, burden, i, 1) == 0 {
			t.Errorf("scenario %s relayed no walks", burden.Rows[i][0])
		}
		// Relay load is uneven: max well above mean.
		if cell(t, burden, i, 2) < 2*cell(t, burden, i, 3) {
			t.Errorf("scenario %s: relay max %.1f not >> mean %.1f",
				burden.Rows[i][0], cell(t, burden, i, 2), cell(t, burden, i, 3))
		}
	}
	relay := findRow(t, share, "outsider-relay")
	if got := cell(t, share, relay, 4); got < 99 {
		t.Errorf("outsider-relay infra share %.1f%%, want ≈100", got)
	}
	sub := findRow(t, share, "subscriber")
	if got := cell(t, share, sub, 4); got > 20 {
		t.Errorf("subscriber infra share %.1f%%, want small", got)
	}
}

func TestExpT4ShapeBalancedIsNotFair(t *testing.T) {
	tb := ExpT4(small)[0]
	bal := findRow(t, tb, "splitstream-balanced")
	fg := findRow(t, tb, "fairgossip-adaptive")
	if cell(t, tb, bal, 1) > 0.05 {
		t.Errorf("balanced work CoV %.3f, want ≈0", cell(t, tb, bal, 1))
	}
	if cell(t, tb, bal, 2) > 0.5 {
		t.Errorf("balanced ratio Jain %.3f, want low", cell(t, tb, bal, 2))
	}
	if cell(t, tb, fg, 3) < 0.7 {
		t.Errorf("adaptive corr %.3f, want high", cell(t, tb, fg, 3))
	}
	if cell(t, tb, fg, 2) <= cell(t, tb, bal, 2) {
		t.Errorf("adaptive Jain %.3f not above balanced %.3f",
			cell(t, tb, fg, 2), cell(t, tb, bal, 2))
	}
}

func TestExpT5ShapeAdaptationStopsChurn(t *testing.T) {
	tb := ExpT5(small)[0]
	static := findRow(t, tb, "static")
	adaptiveRow := findRow(t, tb, "adaptive")
	if cell(t, tb, static, 1) == 0 {
		t.Error("static produced no rage-quits — the loop is not modeled")
	}
	if got := cell(t, tb, adaptiveRow, 1); got > cell(t, tb, static, 1)/4 {
		t.Errorf("adaptive rage-quits %.0f not well below static %.0f",
			got, cell(t, tb, static, 1))
	}
	// Quitting costs the light nodes deliveries.
	if cell(t, tb, adaptiveRow, 3) <= cell(t, tb, static, 3) {
		t.Errorf("adaptive light delivery %.3f not above static %.3f",
			cell(t, tb, adaptiveRow, 3), cell(t, tb, static, 3))
	}
}

func TestExpA1A2ShapeControllersConverge(t *testing.T) {
	for _, tb := range [][]Table{ExpA1(small), ExpA2(small)} {
		table := tb[0]
		windows := 20.0
		for i := range table.Rows {
			if got := cell(t, table, i, 2); got >= windows {
				t.Errorf("%s row %v never settled (%.1f windows)", table.ID, table.Rows[i][:2], got)
			}
			if got := cell(t, table, i, 4); got <= 0 {
				t.Errorf("%s row %v settled at lever %.1f", table.ID, table.Rows[i][:2], got)
			}
		}
	}
}

func TestExpA3ShapeReliabilityCliff(t *testing.T) {
	tb := ExpA3(small)[0]
	// Fanout floor 1: clearly partial coverage. Floor ≥ ln n: full.
	if got := cell(t, tb, 0, 2); got > 0.8 {
		t.Errorf("FanoutMin 1 delivery %.3f, want < 0.8", got)
	}
	last := len(tb.Rows) - 1
	if got := cell(t, tb, last, 2); got < 0.99 {
		t.Errorf("FanoutMin ln(n)+2 delivery %.3f, want ≈1", got)
	}
}

func TestExpA4ShapeSmallBatchesStarve(t *testing.T) {
	tables := ExpA4(small)
	sweep := tables[0]
	first, last := 0, len(sweep.Rows)-1
	if cell(t, sweep, first, 1) >= cell(t, sweep, last, 1) {
		t.Errorf("batch 1 delivery %.3f not below batch 32 %.3f",
			cell(t, sweep, first, 1), cell(t, sweep, last, 1))
	}
	if cell(t, sweep, first, 2) <= cell(t, sweep, last, 2) {
		t.Errorf("batch 1 latency %.2f not above batch 32 %.2f",
			cell(t, sweep, first, 2), cell(t, sweep, last, 2))
	}
	if got := cell(t, sweep, last, 1); got < 0.95 {
		t.Errorf("large batch delivery %.3f, want ≈1", got)
	}
	// Policy table exists with 3 rows.
	if len(tables[1].Rows) != 3 {
		t.Errorf("policy table rows = %d", len(tables[1].Rows))
	}
}

func TestExpA5ShapeSurvivesCrashAndLoss(t *testing.T) {
	tb := ExpA5(small)[0]
	for i := range tb.Rows {
		if got := cell(t, tb, i, 2); got < 0.9 {
			t.Errorf("%s post-failure delivery %.3f, want ≥0.9", tb.Rows[i][0], got)
		}
	}
}

func TestExpA6ShapeAuditDeflatesCheater(t *testing.T) {
	tb := ExpA6(small)[0]
	honest := findRow(t, tb, "honest-mean")
	cheat := findRow(t, tb, "cheater")
	// Raw contribution rewards the cheater...
	if cell(t, tb, cheat, 1) <= cell(t, tb, honest, 1) {
		t.Errorf("cheater raw %.0f not above honest %.0f",
			cell(t, tb, cheat, 1), cell(t, tb, honest, 1))
	}
	// ...audited contribution does not.
	if cell(t, tb, cheat, 2) > 1.5*cell(t, tb, honest, 2) {
		t.Errorf("cheater audited %.0f still above 1.5× honest %.0f",
			cell(t, tb, cheat, 2), cell(t, tb, honest, 2))
	}
	// Useful fraction collapses.
	if cell(t, tb, cheat, 3) >= cell(t, tb, honest, 3) {
		t.Errorf("cheater useful fraction %.3f not below honest %.3f",
			cell(t, tb, cheat, 3), cell(t, tb, honest, 3))
	}
}

func TestExpX1ShapeAntiEntropyRepairs(t *testing.T) {
	tb := ExpX1(small)[0]
	push := findRow(t, tb, "push-only")
	pull2 := findRow(t, tb, "push-pull/2")
	if got := cell(t, tb, push, 1); got > 0.9 {
		t.Errorf("push-only coverage %.3f — no tail to repair", got)
	}
	if got := cell(t, tb, pull2, 1); got < 0.99 {
		t.Errorf("push-pull/2 coverage %.3f, want ≈1", got)
	}
}

func TestExpX2ShapeSparseInterestBenefits(t *testing.T) {
	tb := ExpX2(small)[0]
	// Find the camps=16 rows: sparse interest is where bias pays.
	var uniform, biased int = -1, -1
	for i, r := range tb.Rows {
		if r[0] == "16" && r[1] == "uniform" {
			uniform = i
		}
		if r[0] == "16" && r[1] == "biased-0.75" {
			biased = i
		}
	}
	if uniform < 0 || biased < 0 {
		t.Fatalf("camps=16 rows missing:\n%s", tb.String())
	}
	// Near-equal delivery at well under half the traffic.
	if cell(t, tb, biased, 2) < 0.85*cell(t, tb, uniform, 2) {
		t.Errorf("biased delivery %.3f fell far below uniform %.3f",
			cell(t, tb, biased, 2), cell(t, tb, uniform, 2))
	}
	if cell(t, tb, biased, 3) > 0.6*cell(t, tb, uniform, 3) {
		t.Errorf("biased traffic %.2f MB not well below uniform %.2f MB",
			cell(t, tb, biased, 3), cell(t, tb, uniform, 3))
	}
}

func TestRegistryRunsEverythingDeterministically(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry run is not short")
	}
	specs := All()
	if len(specs) != 17 {
		t.Fatalf("registry has %d experiments, want 17", len(specs))
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if seen[s.ID] {
			t.Fatalf("duplicate experiment id %s", s.ID)
		}
		seen[s.ID] = true
	}
	// Determinism probe on one cheap experiment.
	a := ExpT2(small)
	b := ExpT2(small)
	if a[0].String() != b[0].String() {
		t.Fatal("ExpT2 not deterministic")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{ID: "X", Title: "T", Note: "note", Cols: []string{"a", "b"}}
	tb.AddRow("x,y", 1.23456)
	s := tb.String()
	if !strings.Contains(s, "1.235") || !strings.Contains(s, "expected shape") {
		t.Fatalf("String rendering wrong:\n%s", s)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Fatalf("CSV quoting wrong:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Fatalf("CSV header wrong:\n%s", csv)
	}
}
