package experiment

import (
	"fmt"
	"time"

	"fairgossip/internal/core"
	"fairgossip/internal/pubsub"
)

// HugeOptions parameterises the -huge bench tier: one content-mode
// cluster at population HugeN, swept across shard counts to measure how
// rounds/sec scales with cores.
type HugeOptions struct {
	Seed   int64
	N      int   // population; default 100000
	Shards []int // shard counts to sweep; default {1, 2, 4, 8}
	Rounds int   // gossip rounds per run; default 12
}

func (o HugeOptions) withDefaults() HugeOptions {
	if o.N <= 0 {
		o.N = 100000
	}
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 2, 4, 8}
	}
	if o.Rounds <= 0 {
		o.Rounds = 12
	}
	return o
}

// hugeConfig is the scale-tuned cluster configuration: batched rounds
// (one kernel timer per shard instead of one per node), the idealised
// full sampler (Cyclon bootstrap alone is O(n·view) kernel events), and
// small per-node buffer/dedup capacities so 100k nodes fit in memory.
func hugeConfig() core.Config {
	return core.Config{
		Mode:        core.ModeContent,
		Membership:  core.MemberFull,
		Fanout:      3,
		Batch:       8,
		BufferCap:   32,
		SeenCap:     64,
		BatchRounds: true,
	}
}

// RunHuge runs the -huge tier and returns one table, a row per shard
// count: the protocol columns (msgs_sent, delivered) are deterministic
// per (seed, shardCount); wall_s and rounds_per_sec are wall-clock.
func RunHuge(o HugeOptions) []Table {
	o = o.withDefaults()
	t := Table{
		ID:    "huge_scaling",
		Title: fmt.Sprintf("sharded kernel scaling, N=%d, %d rounds", o.N, o.Rounds),
		Note: "msgs_sent/delivered are deterministic per (seed, shards); " +
			"wall_s and rounds_per_sec are wall-clock and vary run to run",
		Cols: []string{"shards", "n", "rounds", "msgs_sent", "delivered", "wall_s", "rounds_per_sec"},
	}
	for _, shards := range o.Shards {
		wall, sent, delivered := runHugeOnce(o, shards)
		t.AddRow(fmt.Sprintf("shards=%d", shards),
			float64(o.N), float64(o.Rounds), float64(sent), float64(delivered),
			wall.Seconds(), float64(o.Rounds)/wall.Seconds())
	}
	return []Table{t}
}

// runHugeOnce builds the cluster (untimed), then times the gossip-round
// loop only — the number the scaling claim is about.
func runHugeOnce(o HugeOptions, shards int) (wall time.Duration, sent, delivered uint64) {
	sc := core.NewShardedCluster(o.N, shards, hugeConfig(), core.ClusterOptions{Seed: o.Seed})
	for _, nd := range sc.Nodes {
		nd.Subscribe(pubsub.MatchAll())
	}
	const publishers = 8
	stride := o.N / publishers
	start := time.Now()
	for r := 0; r < o.Rounds; r++ {
		for p := 0; p < publishers; p++ {
			sc.Node((r+p*stride)%o.N).Publish("feed", nil, []byte("payload-hugetier"))
		}
		sc.RunRounds(1)
	}
	sc.Stop()
	sc.Drain()
	wall = time.Since(start)
	tot := sc.TotalTraffic()
	return wall, tot.MsgsSent, sc.DeliveredTotal()
}
