package experiment

import (
	"math/rand"
	"time"

	"fairgossip/internal/core"
	"fairgossip/internal/fairness"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
	"fairgossip/internal/workload"
)

// pick returns the small or full value of a scale-dependent parameter.
func pick(small bool, smallVal, fullVal int) int {
	if small {
		return smallVal
	}
	return fullVal
}

// defaultNet is the network environment shared by all experiments: 2ms
// constant latency, lossless unless an experiment injects loss.
func defaultNet() simnet.Config {
	return simnet.Config{Latency: simnet.ConstantLatency(2 * time.Millisecond)}
}

// topicScenario builds a cluster plus a Zipf topic workload with
// heterogeneous subscriptions: node i subscribes to SubCount(1,maxSubs)
// topics drawn by popularity. It returns the cluster, the topic set, and
// the per-topic subscriber lists.
type topicScenario struct {
	cluster *core.Cluster
	topics  *workload.Topics
	subsOf  map[string][]int
	rng     *rand.Rand
}

func newTopicScenario(n, k, maxSubs int, cfg core.Config, seed int64) *topicScenario {
	s := &topicScenario{
		topics: workload.NewTopics(k, 1.01),
		subsOf: make(map[string][]int, k),
		rng:    rand.New(rand.NewSource(seed + 101)),
	}
	s.cluster = core.NewCluster(n, cfg, core.ClusterOptions{
		Seed:      seed,
		NetConfig: defaultNet(),
	})
	for i := 0; i < n; i++ {
		count := workload.SubCount(s.rng, 1, maxSubs)
		for _, topic := range s.topics.SampleSet(s.rng, count) {
			s.cluster.Node(i).Subscribe(pubsub.Topic(topic))
			s.subsOf[topic] = append(s.subsOf[topic], i)
		}
	}
	return s
}

// publishRounds publishes `perRound` events per round for `rounds`
// rounds, each on a popularity-sampled topic, from a random subscriber of
// that topic (falling back to a random node when the topic has no
// subscribers). payload is the event payload size in bytes.
func (s *topicScenario) publishRounds(rounds, perRound, payload int) {
	n := len(s.cluster.Nodes)
	for r := 0; r < rounds; r++ {
		for p := 0; p < perRound; p++ {
			topic := s.topics.Sample(s.rng)
			var pub int
			if subs := s.subsOf[topic]; len(subs) > 0 {
				pub = subs[s.rng.Intn(len(subs))]
			} else {
				pub = s.rng.Intn(n)
			}
			s.cluster.Node(pub).Publish(topic, nil, make([]byte, payload))
		}
		s.cluster.RunRounds(1)
	}
}

// windowReport computes a fairness report over the delta between two
// ledger snapshots.
func windowReport(prev, cur []fairness.Account, w fairness.Weights) fairness.Report {
	deltas := make([]fairness.Account, len(cur))
	for i := range cur {
		if i < len(prev) {
			deltas[i] = fairness.Delta(cur[i], prev[i])
		} else {
			deltas[i] = cur[i]
		}
	}
	return fairness.ReportAccounts(deltas, w)
}
