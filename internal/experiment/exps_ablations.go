package experiment

import (
	"math"
	"math/rand"

	"fairgossip/internal/adaptive"
	"fairgossip/internal/core"
	"fairgossip/internal/fairness"
	"fairgossip/internal/gossip"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/scenario"
	"fairgossip/internal/stats"
	"fairgossip/internal/workload"
)

// leverTrace runs an adaptive cluster under skewed interest, starting the
// levers far from equilibrium, and records every node's lever product
// (fanout × batch) at each control window. It returns the mean/p90 number
// of windows until a node's lever enters (and stays in) a ±15% band of
// its final value, and the population-mean settled lever (the operating
// point the controller found).
func leverTrace(opts Options, spec core.ControllerSpec, windows, f0, n0 int, limits adaptive.Limits) (meanConv, p90Conv, meanFinal float64) {
	n := pick(opts.Small, 64, 128)
	stocks := workload.NewStocks(16)
	c := core.NewCluster(n, core.Config{
		Mode:          core.ModeContent,
		Fanout:        f0,
		Batch:         n0,
		Controller:    spec,
		Limits:        limits,
		ControlWindow: 5,
	}, core.ClusterOptions{Seed: opts.Seed, NetConfig: defaultNet()})
	for i := 0; i < n; i++ {
		sel := 0.01 + 0.5*float64(i)/float64(n-1)
		c.Node(i).Subscribe(stocks.FilterWithSelectivity(sel))
	}
	c.RunRounds(5)
	rng := rand.New(rand.NewSource(opts.Seed + 401))

	history := make([][]int, n)
	for w := 0; w < windows; w++ {
		for r := 0; r < 5; r++ {
			c.Node(rng.Intn(n)).Publish("ticks", stocks.Event(rng), nil)
			c.RunRounds(1)
		}
		for i := 0; i < n; i++ {
			history[i] = append(history[i], c.Node(i).Fanout()*c.Node(i).Batch())
		}
	}
	conv := make([]float64, 0, n)
	var finalSum float64
	for i := 0; i < n; i++ {
		h := history[i]
		final := h[len(h)-1]
		band := 0.15 * float64(final)
		if band < 1 {
			band = 1
		}
		settled := len(h)
		for w := len(h) - 1; w >= 0; w-- {
			if math.Abs(float64(h[w]-final)) > band {
				break
			}
			settled = w
		}
		conv = append(conv, float64(settled))
		finalSum += float64(final)
	}
	qs := stats.Quantiles(conv, 0.9)
	return stats.Mean(conv), qs[0], finalSum / float64(n)
}

// ExpA1 — §5.2 Q1: "How can the fanout be dynamically adapted to ensure
// quick convergence to an appropriate fanout?" Controller-family and
// parameter sweep on the fanout lever.
func ExpA1(opts Options) []Table {
	windows := pick(opts.Small, 20, 40)
	t := Table{
		ID:    "EXP-A1",
		Title: "Fanout-lever convergence by controller family",
		Note:  "proportional converges in fewer windows; all variants find a similar operating point",
		Cols:  []string{"controller", "param", "mean_windows_to_settle", "p90_windows", "mean_settled_lever"},
	}
	limits := adaptive.Limits{FanoutMin: 2, FanoutMax: 24, BatchMin: 8, BatchMax: 8}
	for _, beta := range []float64{0.5, 0.7, 0.9} {
		m, p90, ov := leverTrace(opts, core.ControllerSpec{
			Kind: core.ControllerAIMD, Lever: adaptive.LeverFanout, TargetRatio: 3000, Beta: beta,
		}, windows, 20, 8, limits)
		t.AddRow("aimd", beta, m, p90, ov)
	}
	for _, gain := range []float64{0.25, 0.5, 1.0} {
		m, p90, ov := leverTrace(opts, core.ControllerSpec{
			Kind: core.ControllerProportional, Lever: adaptive.LeverFanout, TargetRatio: 3000, Gain: gain,
		}, windows, 20, 8, limits)
		t.AddRow("proportional", gain, m, p90, ov)
	}
	return []Table{t}
}

// ExpA2 — §5.2 Q2: the same question for the gossip-message-size lever.
func ExpA2(opts Options) []Table {
	windows := pick(opts.Small, 20, 40)
	t := Table{
		ID:    "EXP-A2",
		Title: "Batch-lever convergence by controller family",
		Note:  "batch adapts in finer steps than fanout: slower settling but smaller quantisation error",
		Cols:  []string{"controller", "param", "mean_windows_to_settle", "p90_windows", "mean_settled_lever"},
	}
	limits := adaptive.Limits{FanoutMin: 5, FanoutMax: 5, BatchMin: 1, BatchMax: 64}
	for _, beta := range []float64{0.5, 0.7, 0.9} {
		m, p90, ov := leverTrace(opts, core.ControllerSpec{
			Kind: core.ControllerAIMD, Lever: adaptive.LeverBatch, TargetRatio: 3000, Beta: beta,
		}, windows, 5, 48, limits)
		t.AddRow("aimd", beta, m, p90, ov)
	}
	for _, gain := range []float64{0.25, 0.5, 1.0} {
		m, p90, ov := leverTrace(opts, core.ControllerSpec{
			Kind: core.ControllerProportional, Lever: adaptive.LeverBatch, TargetRatio: 3000, Gain: gain,
		}, windows, 5, 48, limits)
		t.AddRow("proportional", gain, m, p90, ov)
	}
	return []Table{t}
}

// ExpA3 — §5.2 Q3: "Is there any requirement on the size of the fanout?"
// Adaptation pressure pins fanout at the floor; the floor determines
// whether dissemination still completes.
func ExpA3(opts Options) []Table {
	n := pick(opts.Small, 128, 256)
	lnN := int(math.Ceil(math.Log(float64(n))))
	t := Table{
		ID:    "EXP-A3",
		Title: "Delivery ratio vs FanoutMin under shed-everything pressure",
		Note:  "reliability cliff below ~ln(n): the fairness lever must respect the gossip threshold",
		Cols:  []string{"fanout_min", "ln_n", "delivery_ratio"},
	}
	for fmin := 1; fmin <= lnN+2; fmin++ {
		c := core.NewCluster(n, core.Config{
			Mode:   core.ModeContent,
			Fanout: fmin, // adaptation target 0 keeps everyone at the floor
			Batch:  4,
			Controller: core.ControllerSpec{
				Kind: core.ControllerAIMD, TargetRatio: 1, // absurdly tight: shed to minimum
			},
			Limits: adaptive.Limits{FanoutMin: fmin, FanoutMax: fmin, BatchMin: 4, BatchMax: 4},
			// Short forwarding TTL (infect-and-die-ish): the regime where
			// the minimum-fanout threshold binds.
			BufferMaxAge: 2,
		}, core.ClusterOptions{Seed: opts.Seed, NetConfig: defaultNet()})
		for i := 0; i < n; i++ {
			c.Node(i).Subscribe(pubsub.MatchAll())
		}
		c.RunRounds(10)
		probeStart := c.Ledger.Snapshot()
		for e := 0; e < 5; e++ {
			c.Node(e).Publish("probe", nil, nil)
			c.RunRounds(3)
		}
		c.RunRounds(12)
		probeEnd := c.Ledger.Snapshot()
		delivered := 0
		for i := 0; i < n; i++ {
			if probeEnd[i].Delivered-probeStart[i].Delivered >= 5 {
				delivered++
			}
		}
		t.AddRow(fmin, lnN, float64(delivered)/float64(n))
	}
	return []Table{t}
}

// ExpA4 — §5.2 Q4: "Is there any requirement on the gossip message
// size?" Batch sweep under a fixed publication rate: latency, backlog and
// delivery; plus the SELECTEVENTS policy ablation.
func ExpA4(opts Options) []Table {
	n := pick(opts.Small, 96, 192)
	batchSweep := Table{
		ID:    "EXP-A4",
		Title: "Batch size vs dissemination performance (publish rate 2/round)",
		Note:  "undersized batches starve the buffer: rising latency and loss of coverage; adequate batches are cheap",
		Cols:  []string{"batch", "delivery_ratio", "mean_latency_rounds", "p95_latency_rounds"},
	}
	for _, batch := range []int{1, 2, 4, 8, 16, 32} {
		ratio, mean, p95 := runLatencyProbe(opts.Seed, n, batch, gossip.PolicyRandom)
		batchSweep.AddRow(batch, ratio, mean, p95)
	}
	policy := Table{
		ID:    "EXP-A4",
		Title: "SELECTEVENTS policy ablation (batch 4)",
		Note:  "least-sent spreads effort; newest minimises latency for fresh events; random sits between",
		Cols:  []string{"policy", "delivery_ratio", "mean_latency_rounds", "p95_latency_rounds"},
	}
	for _, p := range []struct {
		name string
		pol  gossip.Policy
	}{
		{"random", gossip.PolicyRandom},
		{"newest", gossip.PolicyNewest},
		{"least-sent", gossip.PolicyLeastSent},
	} {
		ratio, mean, p95 := runLatencyProbe(opts.Seed, n, 4, p.pol)
		policy.AddRow(p.name, ratio, mean, p95)
	}
	return []Table{batchSweep, policy}
}

// runLatencyProbe publishes 2 events per round for 40 rounds into a
// static content-mode cluster and measures delivery latency in rounds.
func runLatencyProbe(seed int64, n, batch int, pol gossip.Policy) (ratio, meanLat, p95Lat float64) {
	cfg := core.Config{
		Mode:   core.ModeContent,
		Fanout: int(math.Ceil(math.Log(float64(n)))) + 1,
		Batch:  batch,
		Policy: pol,
	}
	c := core.NewCluster(n, cfg, core.ClusterOptions{Seed: seed, NetConfig: defaultNet()})
	period := c.Config().RoundPeriod

	publishedAt := make(map[pubsub.EventID]int) // event -> publish round
	var latencies []float64
	deliveries := 0
	for i := 0; i < n; i++ {
		i := i
		c.Node(i).Subscribe(pubsub.MatchAll())
		c.Node(i).OnDeliver = func(ev *pubsub.Event) {
			if at, ok := publishedAt[ev.ID]; ok {
				round := int(c.Sim.Now() / period)
				latencies = append(latencies, float64(round-at))
				deliveries++
			}
		}
	}
	c.RunRounds(5)
	rng := rand.New(rand.NewSource(seed + 402))
	const rounds, perRound = 40, 2
	expected := 0
	for r := 0; r < rounds; r++ {
		for k := 0; k < perRound; k++ {
			pub := rng.Intn(n)
			id := c.Node(pub).Publish("probe", nil, make([]byte, 32))
			publishedAt[id] = int(c.Sim.Now() / period)
			// The publisher's own (immediate) delivery is not measured:
			// it happens before the event ID is known to the probe.
			expected += n - 1
		}
		c.RunRounds(1)
	}
	c.RunRounds(20)
	qs := stats.Quantiles(latencies, 0.95)
	return float64(deliveries) / float64(expected), stats.Mean(latencies), qs[0]
}

// ExpA5 — §5.2 Q5: "How can an adaptive algorithm maintain robustness of
// gossip protocols?" Crash 20% of the population and add 10% loss while
// adaptation is active.
func ExpA5(opts Options) []Table {
	n := pick(opts.Small, 96, 192)
	t := Table{
		ID:    "EXP-A5",
		Title: "Delivery before and after 20% crash + 10% loss",
		Note:  "adaptation keeps the floor fanout, so survivors still receive ~everything",
		Cols:  []string{"variant", "delivery_pre", "delivery_post", "jain_post"},
	}
	for _, v := range []struct {
		name string
		spec core.ControllerSpec
	}{
		{"static", core.ControllerSpec{Kind: core.ControllerStatic}},
		{"adaptive", core.ControllerSpec{Kind: core.ControllerAIMD, TargetRatio: 2500}},
	} {
		c := core.NewCluster(n, core.Config{
			Mode:       core.ModeContent,
			Fanout:     int(math.Ceil(math.Log(float64(n)))) + 2,
			Batch:      8,
			Controller: v.spec,
		}, core.ClusterOptions{Seed: opts.Seed, NetConfig: defaultNet()})
		for i := 0; i < n; i++ {
			c.Node(i).Subscribe(pubsub.MatchAll())
		}
		c.RunRounds(5)

		probe := func(base int) float64 {
			// Publishers must be alive and distinct, or an event never
			// leaves its publisher.
			publishers := make([]int, 0, 3)
			for p := base; len(publishers) < 3; p = (p + 1) % n {
				if c.Node(p).Active() {
					publishers = append(publishers, p)
				}
			}
			start := c.Ledger.Snapshot()
			for _, p := range publishers {
				c.Node(p).Publish("probe", nil, nil)
				c.RunRounds(2)
			}
			c.RunRounds(15)
			end := c.Ledger.Snapshot()
			ok, total := 0, 0
			for i := 0; i < n; i++ {
				if !c.Node(i).Active() {
					continue
				}
				total++
				if end[i].Delivered-start[i].Delivered >= uint64(len(publishers)) {
					ok++
				}
			}
			return float64(ok) / float64(total)
		}
		pre := probe(0)

		// Crash 20% and add loss. SampleDistinct replays the historical
		// rejection-sampling draw sequence, so the fixed-seed table is
		// unchanged.
		rng := rand.New(rand.NewSource(opts.Seed + 403))
		for _, id := range scenario.SampleDistinct(rng, n, n/5, nil) {
			c.Node(id).Leave()
		}
		c.Net.SetLoss(0.10)
		c.RunRounds(10) // let membership digest the failures
		post := probe(3)

		survivors := make([]int, 0, n)
		for i := 0; i < n; i++ {
			if c.Node(i).Active() {
				survivors = append(survivors, i)
			}
		}
		r := c.Ledger.ReportFor(survivors)
		t.AddRow(v.name, pre, post, r.RatioJain)
	}
	return []Table{t}
}

// ExpA6 — §5.2 Q6: "Can we ensure that a peer does not artificially grow
// its contribution...?" One peer pads its gossip with junk; the novelty
// audit separates raw from earned contribution.
func ExpA6(opts Options) []Table {
	n := pick(opts.Small, 64, 128)
	const cheater = 3
	c := core.NewCluster(n, core.Config{
		Mode:        core.ModeContent,
		Fanout:      5,
		Batch:       4,
		JunkPadding: 512,
	}, core.ClusterOptions{Seed: opts.Seed, NetConfig: defaultNet()})
	c.Node(cheater).Cheat = true
	for i := 0; i < n; i++ {
		c.Node(i).Subscribe(pubsub.MatchAll())
	}
	c.RunRounds(5)
	rng := rand.New(rand.NewSource(opts.Seed + 404))
	for r := 0; r < pick(opts.Small, 80, 200); r++ {
		c.Node(rng.Intn(n)).Publish("t", nil, make([]byte, 32))
		c.RunRounds(1)
	}
	c.RunRounds(10)

	aw := fairness.Weights{Kappa: 1, InfraWeight: 1, Audited: true}
	var honestRaw, honestAudited, honestUseFrac float64
	honest := 0
	for i := 0; i < n; i++ {
		a := c.Ledger.Account(i)
		if a.MsgsSent[fairness.ClassApp] == 0 {
			continue
		}
		raw := fairness.Contribution(a, fairness.DefaultWeights())
		aud := fairness.Contribution(a, aw)
		frac := 0.0
		if a.UsefulBytes+a.JunkBytes > 0 {
			frac = float64(a.UsefulBytes) / float64(a.UsefulBytes+a.JunkBytes)
		}
		if i == cheater {
			continue
		}
		honestRaw += raw
		honestAudited += aud
		honestUseFrac += frac
		honest++
	}
	ca := c.Ledger.Account(cheater)
	cheatFrac := float64(ca.UsefulBytes) / float64(ca.UsefulBytes+ca.JunkBytes)

	t := Table{
		ID:    "EXP-A6",
		Title: "Raw vs audited contribution: honest mean vs cheater",
		Note:  "raw bytes reward padding; audited (novelty-acknowledged) contribution does not — the cheater's useful fraction collapses",
		Cols:  []string{"class", "raw_contribution", "audited_contribution", "useful_fraction"},
	}
	t.AddRow("honest-mean", honestRaw/float64(honest), honestAudited/float64(honest), honestUseFrac/float64(honest))
	t.AddRow("cheater", fairness.Contribution(ca, fairness.DefaultWeights()), fairness.Contribution(ca, aw), cheatFrac)
	return []Table{t}
}
