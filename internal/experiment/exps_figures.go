package experiment

import (
	"math"
	"math/rand"
	"time"

	"fairgossip/internal/adaptive"
	"fairgossip/internal/core"
	"fairgossip/internal/eventsim"
	"fairgossip/internal/fairness"
	"fairgossip/internal/gossip"
	"fairgossip/internal/membership"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
	"fairgossip/internal/workload"
)

// ExpF1 — Fig. 1: "the ratio contribution/benefit of each peer must be
// equivalent to be considered fair." Heterogeneous topic interest under
// classic static gossip versus the adaptive controllers.
func ExpF1(opts Options) []Table {
	n := pick(opts.Small, 128, 512)
	rounds := pick(opts.Small, 120, 300)
	variants := []struct {
		name string
		spec core.ControllerSpec
	}{
		{"static", core.ControllerSpec{Kind: core.ControllerStatic}},
		{"aimd", core.ControllerSpec{Kind: core.ControllerAIMD, TargetRatio: 2000}},
		{"proportional", core.ControllerSpec{Kind: core.ControllerProportional, TargetRatio: 2000}},
	}
	t := Table{
		ID:    "EXP-F1",
		Title: "Per-peer contribution/benefit ratio distribution",
		Note:  "static gossip: high ratio spread (low Jain) under heterogeneous interest; adaptive: Jain -> 1, work tracks benefit",
		Cols:  []string{"variant", "ratio_jain", "ratio_cov", "ratio_gini", "contrib_benefit_corr", "unrequited_pct", "ratio_p50", "ratio_p90"},
	}
	for _, v := range variants {
		s := newTopicScenario(n, 64, 16, core.Config{
			Mode:       core.ModeContent,
			Fanout:     int(math.Ceil(math.Log(float64(n)))) + 1,
			Batch:      8,
			Controller: v.spec,
		}, opts.Seed)
		s.cluster.RunRounds(5)
		s.publishRounds(rounds, 1, 64)
		s.cluster.RunRounds(10)
		r := s.cluster.Report()
		t.AddRow(v.name, r.RatioJain, r.RatioCoV, r.RatioGini, r.ContribBenefitCorr,
			r.UnrequitedFrac*100, r.RatioP50, r.RatioP90)
	}
	return []Table{t}
}

// ExpF2 — Fig. 2: topic-based accounting. Contribution (published +
// forwarded messages) against benefit (deliveries + filters): flat
// content-mode gossip versus per-topic groups on identical subscriptions.
func ExpF2(opts Options) []Table {
	n := pick(opts.Small, 96, 256)
	rounds := pick(opts.Small, 100, 250)
	t := Table{
		ID:    "EXP-F2",
		Title: "Flat gossip vs per-topic groups, identical subscriptions",
		Note:  "topic groups: unrequited work -> 0, contribution correlates with benefit, less total traffic; flat: everyone pays for everything",
		Cols:  []string{"scheme", "unrequited_pct", "contrib_benefit_corr", "ratio_jain", "app_mbytes_total", "deliveries"},
	}
	for _, mode := range []struct {
		name string
		m    core.Mode
	}{{"flat-gossip", core.ModeContent}, {"topic-groups", core.ModeTopics}} {
		s := newTopicScenario(n, 32, 8, core.Config{
			Mode:   mode.m,
			Fanout: 5,
			Batch:  8,
		}, opts.Seed)
		s.cluster.RunRounds(15) // group formation
		s.publishRounds(rounds, 1, 64)
		s.cluster.RunRounds(10)
		r := s.cluster.Report()
		var appBytes uint64
		for i := 0; i < n; i++ {
			appBytes += s.cluster.Ledger.Account(i).BytesSent[fairness.ClassApp]
		}
		t.AddRow(mode.name, r.UnrequitedFrac*100, r.ContribBenefitCorr, r.RatioJain,
			float64(appBytes)/1e6, s.cluster.DeliveredTotal())
	}
	return []Table{t}
}

// ExpF3 — Fig. 3: the expressive-selection levers. Content-based filters
// with widely varying selectivity; adapting the fanout, the gossip
// message size, or both. Also reports the convergence trajectory.
func ExpF3(opts Options) []Table {
	n := pick(opts.Small, 96, 192)
	phases := pick(opts.Small, 10, 20)
	roundsPerPhase := 10
	variants := []struct {
		name string
		spec core.ControllerSpec
	}{
		{"static", core.ControllerSpec{Kind: core.ControllerStatic}},
		{"adaptive-fanout", core.ControllerSpec{Kind: core.ControllerAIMD, Lever: adaptive.LeverFanout, TargetRatio: 3000}},
		{"adaptive-batch", core.ControllerSpec{Kind: core.ControllerAIMD, Lever: adaptive.LeverBatch, TargetRatio: 3000}},
		{"adaptive-both", core.ControllerSpec{Kind: core.ControllerAIMD, Lever: adaptive.LeverBoth, TargetRatio: 3000}},
	}
	conv := Table{
		ID:    "EXP-F3",
		Title: "Window-fairness (Jain) trajectory while adapting",
		Note:  "adaptive variants climb toward 1 and stay; static stays flat and low",
		Cols:  []string{"round"},
	}
	final := Table{
		ID:    "EXP-F3",
		Title: "Final fairness per lever",
		Note:  "both levers together reach the best fairness at equal reliability",
		Cols:  []string{"variant", "ratio_jain", "ratio_cov", "contrib_benefit_corr", "deliveries"},
	}
	series := make([][]float64, len(variants))
	for vi, v := range variants {
		conv.Cols = append(conv.Cols, v.name)
		stocks := workload.NewStocks(16)
		rng := rand.New(rand.NewSource(opts.Seed + 500))
		c := core.NewCluster(n, core.Config{
			Mode:       core.ModeContent,
			Fanout:     5,
			Batch:      8,
			Controller: v.spec,
		}, core.ClusterOptions{Seed: opts.Seed, NetConfig: defaultNet()})
		// Log-spread selectivities: 1%..60%.
		for i := 0; i < n; i++ {
			frac := float64(i) / float64(n-1)
			sel := 0.01 * math.Pow(60, frac)
			c.Node(i).Subscribe(stocks.FilterWithSelectivity(sel))
		}
		c.RunRounds(5)
		prev := c.Ledger.Snapshot()
		for p := 0; p < phases; p++ {
			for r := 0; r < roundsPerPhase; r++ {
				c.Node(rng.Intn(n)).Publish("ticks", stocks.Event(rng), nil)
				c.RunRounds(1)
			}
			cur := c.Ledger.Snapshot()
			wr := windowReport(prev, cur, c.Ledger.Weights())
			series[vi] = append(series[vi], wr.RatioJain)
			prev = cur
		}
		r := c.Report()
		final.AddRow(v.name, r.RatioJain, r.RatioCoV, r.ContribBenefitCorr, c.DeliveredTotal())
	}
	for p := 0; p < phases; p++ {
		row := make([]any, 0, len(variants)+1)
		row = append(row, (p+1)*roundsPerPhase)
		for vi := range variants {
			row = append(row, series[vi][p])
		}
		conv.AddRow(row...)
	}
	return []Table{conv, final}
}

// ExpF4 — Fig. 4: the basic push gossip algorithm itself. Delivery ratio
// versus fanout (the ln n threshold), rounds to 99% coverage versus n,
// and loss tolerance. Uses the classic peer (no fairness machinery).
func ExpF4(opts Options) []Table {
	nBase := pick(opts.Small, 128, 512)
	seeds := []int64{opts.Seed, opts.Seed + 1, opts.Seed + 2}

	sweep := Table{
		ID:    "EXP-F4",
		Title: "Delivery ratio vs fanout (infect-and-die, single event)",
		Note:  "sharp reliability transition near fanout ~ ln(n); beyond it delivery ~ 1",
		Cols:  []string{"fanout", "delivery_ratio", "n"},
	}
	for f := 1; f <= 10; f++ {
		var sum float64
		for _, seed := range seeds {
			sum += runClassicDissemination(seed, nBase, f, 15, 1, 0)
		}
		sweep.AddRow(f, sum/float64(len(seeds)), nBase)
	}

	growth := Table{
		ID:    "EXP-F4",
		Title: "Rounds to 99% coverage vs system size (fanout = ceil(ln n)+1)",
		Note:  "logarithmic growth in n",
		Cols:  []string{"n", "fanout", "rounds_to_99pct"},
	}
	sizes := []int{64, 128, 256}
	if !opts.Small {
		sizes = append(sizes, 512, 1024)
	}
	for _, n := range sizes {
		f := int(math.Ceil(math.Log(float64(n)))) + 1
		var sum float64
		for _, seed := range seeds {
			sum += float64(roundsToCoverage(seed, n, f, 0.99))
		}
		growth.AddRow(n, f, sum/float64(len(seeds)))
	}

	loss := Table{
		ID:    "EXP-F4",
		Title: "Delivery ratio under message loss (fanout = ceil(ln n)+3)",
		Note:  "gossip holds delivery near 1 despite 20% loss",
		Cols:  []string{"loss_pct", "delivery_ratio"},
	}
	f := int(math.Ceil(math.Log(float64(nBase)))) + 3
	for _, p := range []float64{0, 0.05, 0.10, 0.20} {
		var sum float64
		for _, seed := range seeds {
			sum += runClassicDissemination(seed, nBase, f, 15, 1, p)
		}
		loss.AddRow(p*100, sum/float64(len(seeds)))
	}
	return []Table{sweep, growth, loss}
}

// runClassicDissemination publishes one event into n classic Fig. 4 peers
// and returns the coverage after `rounds` rounds. maxAge 1 gives
// infect-and-die semantics (each peer forwards an event for exactly one
// round) — the regime where the ln(n) fanout threshold is visible.
func runClassicDissemination(seed int64, n, fanout, rounds, maxAge int, loss float64) float64 {
	sim, peers := buildClassic(seed, n, fanout, maxAge, loss)
	peers[0].Publish(&pubsub.Event{ID: pubsub.EventID{Publisher: 0, Seq: 1}, Topic: "t"})
	sim.RunUntil(time.Duration(rounds) * 10 * time.Millisecond)
	covered := 0
	for _, p := range peers {
		if p.Delivered() > 0 {
			covered++
		}
	}
	return float64(covered) / float64(n)
}

// roundsToCoverage steps rounds one at a time until coverage of a single
// event reaches the target, up to a cap of 60 rounds.
func roundsToCoverage(seed int64, n, fanout int, target float64) int {
	sim, peers := buildClassic(seed, n, fanout, 61, 0)
	peers[0].Publish(&pubsub.Event{ID: pubsub.EventID{Publisher: 0, Seq: 1}, Topic: "t"})
	for r := 1; r <= 60; r++ {
		sim.RunUntil(time.Duration(r) * 10 * time.Millisecond)
		covered := 0
		for _, p := range peers {
			if p.Delivered() > 0 {
				covered++
			}
		}
		if float64(covered)/float64(n) >= target {
			return r
		}
	}
	return 60
}

func buildClassic(seed int64, n, fanout, maxAge int, loss float64) (*eventsim.Sim, []*gossip.Peer) {
	sim := eventsim.New(seed)
	net := simnet.New(sim, simnet.Config{
		Latency: simnet.ConstantLatency(time.Millisecond),
		Loss:    loss,
	})
	peers := make([]*gossip.Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = gossip.NewPeer(
			simnet.NodeID(i), net,
			membership.FullSampler{Self: simnet.NodeID(i), N: n},
			rand.New(rand.NewSource(seed*7919+int64(i))),
			gossip.Config{Fanout: fanout, Batch: 4, BufferMaxAge: maxAge},
		)
		net.AddNode(peers[i])
	}
	for _, p := range peers {
		p := p
		sim.Every(10*time.Millisecond, time.Millisecond, p.Round)
	}
	return sim, peers
}
