package experiment

import (
	"fmt"
	"math/rand"
	"time"

	"fairgossip/internal/core"
	"fairgossip/internal/eventsim"
	"fairgossip/internal/fairness"
	"fairgossip/internal/gossip"
	"fairgossip/internal/membership"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
)

// ExpX1 — extension: push-pull anti-entropy. The paper grounds gossip's
// reliability in the epidemic literature (§4.2 cites Demers et al.);
// pure push with tight fanout/TTL leaves an uninfected tail that digest
// exchange repairs. This quantifies the repair and its digest cost.
func ExpX1(opts Options) []Table {
	n := pick(opts.Small, 192, 384)
	seeds := []int64{opts.Seed, opts.Seed + 1, opts.Seed + 2}
	t := Table{
		ID:    "EXP-X1",
		Title: "Pure push vs push-pull anti-entropy (fanout 1, TTL 2)",
		Note:  "push leaves a stochastic uninfected tail; digest/pull repair closes it for modest extra traffic",
		Cols:  []string{"variant", "coverage", "total_kbytes"},
	}
	for _, v := range []struct {
		name      string
		antiEvery int
	}{{"push-only", 0}, {"push-pull/4", 4}, {"push-pull/2", 2}} {
		var cov, kb float64
		for _, seed := range seeds {
			c, b := runPushPull(seed, n, v.antiEvery)
			cov += c
			kb += b
		}
		t.AddRow(v.name, cov/float64(len(seeds)), kb/float64(len(seeds)))
	}
	return []Table{t}
}

// runPushPull measures single-event coverage and total network traffic
// (push + digests + pulls) with the classic peer.
func runPushPull(seed int64, n, antiEvery int) (coverage, totalKB float64) {
	sim := eventsim.New(seed)
	net := simnet.New(sim, simnet.Config{Latency: simnet.ConstantLatency(time.Millisecond)})
	peers := make([]*gossip.Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = gossip.NewPeer(
			simnet.NodeID(i), net,
			membership.FullSampler{Self: simnet.NodeID(i), N: n},
			rand.New(rand.NewSource(seed*7919+int64(i))),
			gossip.Config{Fanout: 1, Batch: 4, BufferMaxAge: 2},
		)
		if antiEvery > 0 {
			peers[i].EnableAntiEntropy(antiEvery, 0)
		}
		net.AddNode(peers[i])
	}
	for _, p := range peers {
		p := p
		sim.Every(10*time.Millisecond, time.Millisecond, p.Round)
	}
	peers[0].Publish(&pubsub.Event{ID: pubsub.EventID{Publisher: 0, Seq: 1}, Topic: "t"})
	sim.RunUntil(30 * 10 * time.Millisecond)
	covered := 0
	for _, p := range peers {
		if p.Delivered() > 0 {
			covered++
		}
	}
	return float64(covered) / float64(n), float64(net.TotalTraffic().BytesSent) / 1e3
}

// ExpX2 — extension: semantic partner bias (§5.2's closing suggestion:
// "rely on semantic knowledge to bias the participation"). Interest
// camps of varying sparsity; bias routes events toward interested peers,
// which behaves like implicit topic grouping.
func ExpX2(opts Options) []Table {
	n := pick(opts.Small, 128, 256)
	rounds := pick(opts.Small, 120, 240)
	t := Table{
		ID:    "EXP-X2",
		Title: "Semantic bias vs interest sparsity (fanout 2, TTL 2)",
		Note:  "sparse interest: biased routing ~matches delivery at a fraction of the traffic (implicit grouping); dense interest: no benefit",
		Cols:  []string{"camps", "variant", "delivery_ratio", "app_mbytes", "deliveries_per_mbyte"},
	}
	for _, camps := range []int{2, 4, 8, 16} {
		for _, v := range []struct {
			name string
			bias float64
		}{{"uniform", 0}, {"biased-0.75", 0.75}} {
			del, appBytes := runSemantic(opts.Seed, n, camps, rounds, v.bias)
			maxDel := float64(rounds * n / camps)
			t.AddRow(camps, v.name, float64(del)/maxDel,
				float64(appBytes)/1e6, float64(del)/(float64(appBytes)/1e6))
		}
	}
	return []Table{t}
}

func runSemantic(seed int64, n, camps, rounds int, bias float64) (delivered, appBytes uint64) {
	c := core.NewCluster(n, core.Config{
		Mode:         core.ModeContent,
		Fanout:       2,
		Batch:        4,
		BufferMaxAge: 2,
		SemanticBias: bias,
	}, core.ClusterOptions{
		Seed:      seed,
		NetConfig: simnet.Config{Latency: simnet.ConstantLatency(2 * time.Millisecond)},
	})
	topicOf := func(k int) string { return fmt.Sprintf("camp-%02d", k%camps) }
	for i, nd := range c.Nodes {
		nd.Subscribe(pubsub.Topic(topicOf(i)))
	}
	c.RunRounds(15)
	for r := 0; r < rounds; r++ {
		c.Node(r%n).Publish(topicOf(r), nil, make([]byte, 48))
		c.RunRounds(1)
	}
	c.RunRounds(10)
	for i := 0; i < n; i++ {
		a := c.Ledger.Account(i)
		delivered += a.Delivered
		appBytes += a.BytesSent[fairness.ClassApp]
	}
	return delivered, appBytes
}
