package experiment

import (
	"fmt"
	"math/rand"

	"fairgossip/internal/balance"
	"fairgossip/internal/core"
	"fairgossip/internal/dam"
	"fairgossip/internal/fairness"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/scenario"
	"fairgossip/internal/stats"
	"fairgossip/internal/structured"
	"fairgossip/internal/workload"
)

// ExpT1 — §4.1: "Scribe sacrifices fairness as inner nodes of a multicast
// [tree] may well have no interest at all in the given topic". Identical
// topic subscriptions run through Scribe-over-Pastry-lite and through
// FairGossip topic groups.
func ExpT1(opts Options) []Table {
	n := pick(opts.Small, 128, 512)
	k := 64 // many sparse topics: trees must route through outsiders
	eventsPerTopic := pick(opts.Small, 10, 30)
	rng := rand.New(rand.NewSource(opts.Seed + 301))
	topics := workload.NewTopics(k, 1.0)

	// One shared subscription pattern.
	subsOf := make(map[string][]int, k)
	nodeSubs := make([][]string, n)
	for i := 0; i < n; i++ {
		count := workload.SubCount(rng, 1, 3)
		nodeSubs[i] = topics.SampleSet(rng, count)
		for _, topic := range nodeSubs[i] {
			subsOf[topic] = append(subsOf[topic], i)
		}
	}

	t := Table{
		ID:    "EXP-T1",
		Title: "Structured (Scribe) vs FairGossip topic groups, same subscriptions",
		Note:  "Scribe: a visible share of tree forwarding done by non-subscribers (near-total for rare topics); topic groups: zero by construction",
		Cols:  []string{"system", "foreign_fwd_pct_all_sends", "foreign_fwd_pct_mean_topic", "ratio_jain", "ratio_cov", "contrib_benefit_corr"},
	}
	detail := Table{
		ID:    "EXP-T1",
		Title: "Scribe tree composition per topic (top 5 topics)",
		Note:  "tree members exceed subscribers; the gap is conscripted relays",
		Cols:  []string{"topic", "subscribers", "tree_members", "uninterested_forwarders"},
	}
	index := Table{
		ID:    "EXP-T1",
		Title: "DKS-style index DHT lookup duty (every subscribe does one lookup)",
		Note:  "§4.1: nodes near popular rendezvous keys suffer — duty is concentrated (high Gini, max >> median)",
		Cols:  []string{"lookups", "duty_max", "duty_median", "duty_gini"},
	}

	// Scribe run, with a DKS-style index lookup preceding every subscribe.
	{
		ring := structured.NewRing(n, opts.Seed)
		led := fairness.NewLedger(n, fairness.DefaultWeights())
		sc := structured.NewScribe(ring, led)
		ixLed := fairness.NewLedger(n, fairness.DefaultWeights())
		ix := structured.NewIndex(ring, ixLed)
		lookups := 0
		for i := 0; i < n; i++ {
			for _, topic := range nodeSubs[i] {
				if _, err := ix.Lookup(i, topic); err != nil {
					panic(err)
				}
				lookups++
				if err := sc.Subscribe(i, topic); err != nil {
					panic(err)
				}
			}
		}
		load := ix.LoadVector()
		qs := stats.Quantiles(load, 0.5, 1)
		index.AddRow(lookups, qs[1], qs[0], stats.Gini(load))
		var foreignSum float64
		var foreignEdges, totalEdges int
		active := 0
		for _, topic := range topics.Names {
			subs := subsOf[topic]
			if len(subs) == 0 {
				continue
			}
			for e := 0; e < eventsPerTopic; e++ {
				if _, err := sc.Publish(subs[rng.Intn(len(subs))], topic, 64); err != nil {
					panic(err)
				}
			}
			foreignSum += sc.ForeignForwardFraction(topic)
			fe, te := sc.ForwardEdgeStats(topic)
			foreignEdges += fe
			totalEdges += te
			active++
		}
		r := led.Report()
		t.AddRow("scribe",
			100*float64(foreignEdges)/float64(totalEdges),
			100*foreignSum/float64(active),
			r.RatioJain, r.RatioCoV, r.ContribBenefitCorr)
		for rank := 0; rank < 5 && rank < k; rank++ {
			topic := topics.Names[rank]
			detail.AddRow(topic, len(subsOf[topic]), len(sc.TreeMembers(topic)),
				len(sc.UninterestedForwarders(topic)))
		}
	}

	// FairGossip topic-group run with the same subscriptions.
	{
		c := core.NewCluster(n, core.Config{Mode: core.ModeTopics, Fanout: 4, Batch: 8},
			core.ClusterOptions{Seed: opts.Seed, NetConfig: defaultNet()})
		for i := 0; i < n; i++ {
			for _, topic := range nodeSubs[i] {
				c.Node(i).Subscribe(pubsub.Topic(topic))
			}
		}
		c.RunRounds(15)
		prng := rand.New(rand.NewSource(opts.Seed + 302))
		for _, topic := range topics.Names {
			subs := subsOf[topic]
			if len(subs) == 0 {
				continue
			}
			for e := 0; e < eventsPerTopic; e++ {
				c.Node(subs[prng.Intn(len(subs))]).Publish(topic, nil, make([]byte, 64))
				if e%4 == 3 {
					c.RunRounds(1)
				}
			}
		}
		c.RunRounds(20)
		r := c.Report()
		// Foreign forwarding is structurally zero in topic groups: only
		// subscribers buffer (and hence forward) a topic's events —
		// verified by core's TestTopicModeFairByStructure.
		t.AddRow("fairgossip-topics", 0.0, 0.0, r.RatioJain, r.RatioCoV, r.ContribBenefitCorr)
	}
	return []Table{t, detail, index}
}

// ExpT2 — §4.2: "a peer in the supertopic performs similar to a broker in
// a client/server architecture". DAM with leaf-only natural interest.
func ExpT2(opts Options) []Table {
	n := pick(opts.Small, 128, 256)
	leaves := 8
	perLeaf := n / (2 * leaves)
	events := pick(opts.Small, 20, 60)

	topics := make([]string, leaves)
	for i := range topics {
		topics[i] = fmt.Sprintf("news.child%d", i)
	}
	h := dam.NewHierarchy(topics...)
	led := fairness.NewLedger(n, fairness.DefaultWeights())
	d := dam.New(h, led, 3, 2, opts.Seed)

	node := 0
	leafOf := make(map[int]string)
	for _, topic := range topics {
		for s := 0; s < perLeaf; s++ {
			if err := d.Subscribe(node, topic); err != nil {
				panic(err)
			}
			leafOf[node] = topic
			node++
		}
	}
	// One natural supertopic subscriber (wants everything).
	super := node
	if err := d.Subscribe(super, "news"); err != nil {
		panic(err)
	}

	rng := rand.New(rand.NewSource(opts.Seed + 303))
	for e := 0; e < events; e++ {
		topic := topics[rng.Intn(leaves)]
		subs := d.Subscribers(topic)
		if _, err := d.Publish(subs[rng.Intn(len(subs))], topic, 64); err != nil {
			panic(err)
		}
	}

	forced := d.ForcedMembers()
	classOf := func(i int) string {
		switch {
		case i == super:
			return "supertopic-subscriber"
		case len(forced[i]) > 0:
			return "forced-bridge"
		case leafOf[i] != "":
			return "leaf-subscriber"
		default:
			return "idle"
		}
	}
	agg := map[string]*struct {
		count            int
		contrib, benefit float64
	}{}
	for i := 0; i < n; i++ {
		cl := classOf(i)
		a, ok := agg[cl]
		if !ok {
			a = &struct {
				count            int
				contrib, benefit float64
			}{}
			agg[cl] = a
		}
		acct := led.Account(i)
		a.count++
		a.contrib += fairness.Contribution(acct, led.Weights())
		a.benefit += fairness.Benefit(acct, led.Weights())
	}
	t := Table{
		ID:    "EXP-T2",
		Title: "Mean contribution and benefit by role",
		Note:  "forced bridges and supertopic members carry every descendant topic: broker-like contribution, leaf-level (or zero extra) benefit",
		Cols:  []string{"role", "nodes", "mean_contribution", "mean_benefit", "mean_ratio"},
	}
	for _, cl := range []string{"leaf-subscriber", "forced-bridge", "supertopic-subscriber", "idle"} {
		a, ok := agg[cl]
		if !ok {
			continue
		}
		mc := a.contrib / float64(a.count)
		mb := a.benefit / float64(a.count)
		ratio := mc
		if mb >= 1 {
			ratio = mc / mb
		}
		t.AddRow(cl, a.count, mc, mb, ratio)
	}
	return []Table{t}
}

// ExpT3 — §5.1: subscription maintenance. Walk-relay burden under a
// subscription storm on a popular versus an unpopular topic, and how
// adaptation compensates relays for their infrastructure work.
func ExpT3(opts Options) []Table {
	n := pick(opts.Small, 128, 384)
	joiners := pick(opts.Small, 24, 64)

	burden := Table{
		ID:    "EXP-T3",
		Title: "Walk-relay burden during a subscription storm",
		Note:  "relays are hit unevenly (max >> mean); storm rate, not group size, drives the burden",
		Cols:  []string{"scenario", "walks_relayed_total", "relay_max", "relay_mean", "relay_cov"},
	}
	share := Table{
		ID:    "EXP-T3",
		Title: "Maintenance share of contribution by role (storm scenario)",
		Note:  "non-subscribers contribute pure maintenance (infra ~100% of their work) — unrequited work the system never pays back",
		Cols:  []string{"role", "nodes", "mean_infra_bytes", "mean_app_bytes", "infra_share_pct"},
	}

	for _, sc := range []struct {
		name      string
		slowJoins bool
	}{{"storm-join", false}, {"trickle-join", true}} {
		c := core.NewCluster(n, core.Config{
			Mode: core.ModeTopics, Fanout: 4, Batch: 8,
			Membership: core.MemberFull, // isolate walk relays from shuffle noise
		}, core.ClusterOptions{Seed: opts.Seed, NetConfig: defaultNet()})
		c.Node(0).Subscribe(pubsub.Topic("storm"))
		c.RunRounds(10)
		for j := 1; j <= joiners; j++ {
			c.Node(j).Subscribe(pubsub.Topic("storm"))
			if sc.slowJoins {
				c.RunRounds(4)
			}
		}
		c.RunRounds(20)
		relays := make([]float64, 0, n)
		var total uint64
		for i := joiners + 1; i < n; i++ {
			w := c.Node(i).WalkRelays()
			total += w
			relays = append(relays, float64(w))
		}
		burden.AddRow(sc.name, total, stats.Quantile(relays, 1), stats.Mean(relays), stats.CoV(relays))

		if sc.slowJoins {
			continue // role table only needed once
		}
		// Publish some traffic so subscribers also do app work.
		prng := rand.New(rand.NewSource(opts.Seed + 304))
		for e := 0; e < 20; e++ {
			c.Node(prng.Intn(joiners+1)).Publish("storm", nil, make([]byte, 64))
			c.RunRounds(2)
		}
		type roleAgg struct {
			count      int
			infra, app float64
		}
		agg := map[string]*roleAgg{}
		for i := 0; i < n; i++ {
			role := "outsider-relay"
			if i <= joiners {
				role = "subscriber"
			} else if c.Node(i).WalkRelays() == 0 {
				role = "outsider-untouched"
			}
			a, ok := agg[role]
			if !ok {
				a = &roleAgg{}
				agg[role] = a
			}
			acct := c.Ledger.Account(i)
			a.count++
			a.infra += float64(acct.BytesSent[fairness.ClassInfra])
			a.app += float64(acct.BytesSent[fairness.ClassApp])
		}
		for _, role := range []string{"subscriber", "outsider-relay", "outsider-untouched"} {
			a, ok := agg[role]
			if !ok {
				continue
			}
			mi, ma := a.infra/float64(a.count), a.app/float64(a.count)
			sharePct := 0.0
			if mi+ma > 0 {
				sharePct = 100 * mi / (mi + ma)
			}
			share.AddRow(role, a.count, mi, ma, sharePct)
		}
	}
	return []Table{burden, share}
}

// ExpT4 — §3.1 vs §3.2: perfectly balanced work is not fairness.
func ExpT4(opts Options) []Table {
	n := pick(opts.Small, 64, 256)
	events := 10 * n
	t := Table{
		ID:    "EXP-T4",
		Title: "Balanced forwarding vs fairness-aware gossip under graded interest",
		Note:  "balanced: work CoV ~ 0 but ratios wildly unequal; adaptive gossip: work tracks benefit instead",
		Cols:  []string{"system", "work_cov", "ratio_jain", "contrib_benefit_corr"},
	}

	// Balanced baseline: node i wants ~ i/n of events.
	{
		led := fairness.NewLedger(n, fairness.DefaultWeights())
		b := balance.New(n, 3, led)
		for k := 0; k < events; k++ {
			k := k
			b.Disseminate(k%n, 64, func(i int) bool { return (i+k)%n < i })
		}
		r := led.Report()
		t.AddRow("splitstream-balanced", r.WorkCoV, r.RatioJain, r.ContribBenefitCorr)
	}

	// FairGossip adaptive with graded selectivity.
	{
		stocks := workload.NewStocks(16)
		c := core.NewCluster(n, core.Config{
			Mode:       core.ModeContent,
			Fanout:     5,
			Batch:      8,
			Controller: core.ControllerSpec{Kind: core.ControllerAIMD, TargetRatio: 3000},
		}, core.ClusterOptions{Seed: opts.Seed, NetConfig: defaultNet()})
		for i := 0; i < n; i++ {
			sel := 0.01 + 0.6*float64(i)/float64(n-1)
			c.Node(i).Subscribe(stocks.FilterWithSelectivity(sel))
		}
		c.RunRounds(5)
		rng := rand.New(rand.NewSource(opts.Seed + 305))
		rounds := pick(opts.Small, 120, 250)
		for r := 0; r < rounds; r++ {
			c.Node(rng.Intn(n)).Publish("ticks", stocks.Event(rng), nil)
			c.RunRounds(1)
		}
		c.RunRounds(10)
		r := c.Report()
		t.AddRow("fairgossip-adaptive", r.WorkCoV, r.RatioJain, r.ContribBenefitCorr)
	}
	return []Table{t}
}

// ExpT5 — §1/§6: "unfair distribution of workload can lead to a high
// churn ... processes abruptly disconnect whenever they perceive to
// perform too much work". A rage-quit policy drives churn from measured
// window ratios; adaptation defuses it.
func ExpT5(opts Options) []Table {
	n := pick(opts.Small, 96, 256)
	phases := pick(opts.Small, 16, 36)
	t := Table{
		ID:    "EXP-T5",
		Title: "Unfairness-triggered churn and its reliability cost",
		Note:  "static: the low-benefit minority rage-quits repeatedly and misses its events; adaptive: ratios equalise, churn stops, delivery recovers",
		Cols:  []string{"variant", "rage_quits", "light_node_downtime_pct", "light_delivery_ratio", "window_ratio_cov_final"},
	}
	for _, v := range []struct {
		name string
		spec core.ControllerSpec
	}{
		{"static", core.ControllerSpec{Kind: core.ControllerStatic}},
		{"adaptive", core.ControllerSpec{Kind: core.ControllerAIMD, TargetRatio: 2500}},
	} {
		stocks := workload.NewStocks(16)
		c := core.NewCluster(n, core.Config{
			Mode:          core.ModeContent,
			Fanout:        5,
			Batch:         8,
			Controller:    v.spec,
			RepairPenalty: 200,
		}, core.ClusterOptions{Seed: opts.Seed, NetConfig: defaultNet()})
		// A heavy-interest majority and a light-interest minority: under
		// static gossip the minority works as much as everyone while
		// benefiting rarely — their ratios are the outliers.
		lightFilter := stocks.FilterWithSelectivity(0.05)
		light := make([]int, 0, n/4)
		for i := 0; i < n; i++ {
			if i%4 == 0 {
				c.Node(i).Subscribe(lightFilter)
				light = append(light, i)
			} else {
				c.Node(i).Subscribe(stocks.FilterWithSelectivity(0.5))
			}
		}
		c.RunRounds(5)
		rng := rand.New(rand.NewSource(opts.Seed + 306))
		lightDown := 0
		lightMatches := 0
		prev := c.Ledger.Snapshot()
		var lastCoV float64
		// The phase loop is the scenario engine's rage-quit driver; the
		// callbacks preserve this experiment's historical RNG draw order,
		// so its fixed-seed tables are unchanged.
		loop := &scenario.RageQuitLoop{
			Phases: phases,
			Quit:   workload.NewRageQuit(2.5, 2),
			Publish: func(int) {
				for r := 0; r < 10; r++ {
					attrs := stocks.Event(rng)
					ev := pubsub.Event{Topic: "ticks", Attrs: attrs}
					if lightFilter.Match(&ev) {
						lightMatches++
					}
					c.Node(rng.Intn(n)).Publish("ticks", attrs, nil)
					c.RunRounds(1)
				}
			},
			AfterPublish: func(int) {
				for _, id := range light {
					if !c.Node(id).Active() {
						lightDown++
					}
				}
			},
			Ratios: func(int) []float64 {
				cur := c.Ledger.Snapshot()
				ratios := make([]float64, n)
				for i := range ratios {
					ratios[i] = fairness.Ratio(fairness.Delta(cur[i], prev[i]), c.Ledger.Weights())
				}
				prev = cur
				lastCoV = stats.CoV(ratios)
				return ratios
			},
			Active: func(i int) bool { return c.Node(i).Active() },
			Leave:  func(_, id int, _, _ float64) { c.Node(id).Leave() },
			Rejoin: func(id int) { c.Node(id).Rejoin(0) },
		}
		quits := loop.Run()
		// Light nodes' delivery across the whole run: every quit window
		// loses them matching events for good.
		var lightDelivered uint64
		for _, id := range light {
			lightDelivered += c.Ledger.Account(id).Delivered
		}
		expect := float64(lightMatches * len(light))
		ratio := 0.0
		if expect > 0 {
			ratio = float64(lightDelivered) / expect
		}
		t.AddRow(v.name, quits,
			100*float64(lightDown)/float64(len(light)*phases), ratio, lastCoV)
	}
	return []Table{t}
}
