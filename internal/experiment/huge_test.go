package experiment

import "testing"

// The huge tier at test scale: protocol columns (msgs_sent, delivered)
// must be deterministic per (seed, shardCount) and non-degenerate; only
// the wall-clock columns may differ between repeat runs.
func TestRunHugeDeterministicProtocolColumns(t *testing.T) {
	opts := HugeOptions{Seed: 5, N: 300, Shards: []int{1, 2, 4}, Rounds: 6}
	a, b := RunHuge(opts)[0], RunHuge(opts)[0]
	if len(a.Rows) != len(opts.Shards) {
		t.Fatalf("got %d rows, want %d", len(a.Rows), len(opts.Shards))
	}
	// Cols: shards, n, rounds, msgs_sent, delivered, wall_s, rounds_per_sec.
	for i := range a.Rows {
		for _, col := range []int{0, 1, 2, 3, 4} {
			if a.Rows[i][col] != b.Rows[i][col] {
				t.Errorf("row %d col %s: %q vs %q across identical runs",
					i, a.Cols[col], a.Rows[i][col], b.Rows[i][col])
			}
		}
		if a.Rows[i][4] == "0.000" {
			t.Errorf("row %s delivered nothing", a.Rows[i][0])
		}
	}
}
