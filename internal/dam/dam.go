// Package dam models the data-aware multicast baseline the paper discusses
// in §4.2 (Baehni, Eugster, Guerraoui — DSN'04): gossip groups organised
// along a topic hierarchy. Dissemination is fair in the small — "processes
// contribute only for messages they deliver" — but gluing the hierarchy
// together forces some processes into supertopic groups, where they carry
// the traffic of *every* descendant topic like a de-facto broker.
//
// The model is an accounting-level reproduction: per publish, every member
// of every carrying group is charged `fanout` gossip sends, and natural
// subscribers record deliveries. That is exactly the data EXP-T2 needs
// (who carries vs. who benefits); gossip timing inside groups adds nothing
// to the claim.
package dam

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"fairgossip/internal/fairness"
)

// Hierarchy is a forest of dot-separated topics ("sports",
// "sports.football", "sports.football.uefa"). Parent/child relations are
// implied by the names.
type Hierarchy struct {
	topics map[string]bool
}

// NewHierarchy returns a hierarchy containing the given topics and all
// their implied ancestors.
func NewHierarchy(topics ...string) *Hierarchy {
	h := &Hierarchy{topics: make(map[string]bool)}
	for _, t := range topics {
		h.Add(t)
	}
	return h
}

// Add inserts a topic and its ancestors.
func (h *Hierarchy) Add(topic string) {
	for topic != "" {
		h.topics[topic] = true
		topic = parentOf(topic)
	}
}

// Contains reports whether the topic is known.
func (h *Hierarchy) Contains(topic string) bool { return h.topics[topic] }

// Ancestors returns the proper ancestors of a topic, nearest first.
func (h *Hierarchy) Ancestors(topic string) []string {
	var out []string
	for p := parentOf(topic); p != ""; p = parentOf(p) {
		out = append(out, p)
	}
	return out
}

// Topics returns all known topics, sorted.
func (h *Hierarchy) Topics() []string {
	out := make([]string, 0, len(h.topics))
	for t := range h.topics {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

func parentOf(topic string) string {
	if i := strings.LastIndexByte(topic, '.'); i >= 0 {
		return topic[:i]
	}
	return ""
}

// DAM is the data-aware multicast instance.
type DAM struct {
	h      *Hierarchy
	ledger *fairness.Ledger
	rng    *rand.Rand

	fanout  int
	bridges int // members each non-leaf group recruits per child group

	subs   map[string]map[int]bool // natural interest
	groups map[string]map[int]bool // carrying membership (subs + recruits)
	forced map[int]map[string]bool // node → supertopics it was forced into
}

// EventOverhead is the per-event wire overhead used for accounting.
const EventOverhead = 16

// New builds a DAM over the hierarchy; fanout is the per-member gossip
// out-degree inside a group, bridges the number of members each group
// recruits into its parent group to glue the hierarchy.
func New(h *Hierarchy, ledger *fairness.Ledger, fanout, bridges int, seed int64) *DAM {
	if fanout < 1 {
		fanout = 1
	}
	if bridges < 1 {
		bridges = 1
	}
	return &DAM{
		h:       h,
		ledger:  ledger,
		rng:     rand.New(rand.NewSource(seed)),
		fanout:  fanout,
		bridges: bridges,
		subs:    make(map[string]map[int]bool),
		groups:  make(map[string]map[int]bool),
		forced:  make(map[int]map[string]bool),
	}
}

// Subscribe registers natural interest of node in topic (and, by
// hierarchy semantics, in all its descendants). Group maintenance may
// recruit members of this group into ancestor groups.
func (d *DAM) Subscribe(node int, topic string) error {
	if !d.h.Contains(topic) {
		return fmt.Errorf("dam: unknown topic %q", topic)
	}
	if d.subs[topic] == nil {
		d.subs[topic] = make(map[int]bool)
	}
	if d.subs[topic][node] {
		return nil
	}
	d.subs[topic][node] = true
	d.join(topic, node)
	a := d.ledger.Account(node)
	d.ledger.SetFilters(node, a.Filters+1)
	d.maintain(topic)
	return nil
}

func (d *DAM) join(topic string, node int) {
	if d.groups[topic] == nil {
		d.groups[topic] = make(map[int]bool)
	}
	d.groups[topic][node] = true
}

// maintain enforces the glue invariant: every group with members must
// have `bridges` of its members present in its parent group. Recruits
// that are not natural subscribers of the parent become the §4.2
// "forced supertopic" processes.
func (d *DAM) maintain(topic string) {
	for t := topic; t != ""; t = parentOf(t) {
		par := parentOf(t)
		if par == "" {
			return
		}
		members := d.sortedMembers(t)
		if len(members) == 0 {
			return
		}
		present := 0
		for _, m := range members {
			if d.groups[par][m] {
				present++
			}
		}
		need := d.bridges - present
		for _, m := range members {
			if need <= 0 {
				break
			}
			if d.groups[par] != nil && d.groups[par][m] {
				continue
			}
			d.join(par, m)
			if !d.subs[par][m] {
				if d.forced[m] == nil {
					d.forced[m] = make(map[string]bool)
				}
				d.forced[m][par] = true
			}
			need--
		}
	}
}

func (d *DAM) sortedMembers(topic string) []int {
	out := make([]int, 0, len(d.groups[topic]))
	for m := range d.groups[topic] {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// interested reports natural interest of node in an event on topic
// (subscription to the topic or any ancestor).
func (d *DAM) interested(node int, topic string) bool {
	for t := topic; t != ""; t = parentOf(t) {
		if d.subs[t][node] {
			return true
		}
	}
	return false
}

// Publish disseminates an event on topic: every member of the topic's
// group and of all ancestor groups carries it (fanout sends each);
// naturally interested processes deliver. Returns the delivery count.
func (d *DAM) Publish(node int, topic string, eventSize int) (int, error) {
	if !d.h.Contains(topic) {
		return 0, fmt.Errorf("dam: unknown topic %q", topic)
	}
	size := eventSize + EventOverhead
	d.ledger.AddPublish(node, eventSize)

	carriers := make(map[int]bool)
	for t := topic; t != ""; t = parentOf(t) {
		for m := range d.groups[t] {
			carriers[m] = true
		}
	}
	delivered := 0
	for _, m := range sortedKeys(carriers) {
		d.ledger.AddSend(m, fairness.ClassApp, d.fanout*size)
		if d.interested(m, topic) {
			d.ledger.AddDelivery(m)
			delivered++
		}
	}
	return delivered, nil
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// ForcedMembers returns the nodes recruited into supertopic groups they
// have no natural interest in, with the topics they were forced into.
func (d *DAM) ForcedMembers() map[int][]string {
	out := make(map[int][]string, len(d.forced))
	for n, topics := range d.forced {
		for t := range topics {
			out[n] = append(out[n], t)
		}
		sort.Strings(out[n])
	}
	return out
}

// GroupSize returns the carrying-group size of a topic.
func (d *DAM) GroupSize(topic string) int { return len(d.groups[topic]) }

// Subscribers returns the natural subscribers of a topic, sorted.
func (d *DAM) Subscribers(topic string) []int {
	out := make([]int, 0, len(d.subs[topic]))
	for n := range d.subs[topic] {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}
