package dam

import (
	"testing"

	"fairgossip/internal/fairness"
)

func newDAM(n int) (*DAM, *fairness.Ledger) {
	h := NewHierarchy("sports.football", "sports.tennis", "news.eu", "news.us")
	led := fairness.NewLedger(n, fairness.DefaultWeights())
	return New(h, led, 3, 2, 1), led
}

func TestHierarchy(t *testing.T) {
	h := NewHierarchy("a.b.c")
	for _, topic := range []string{"a", "a.b", "a.b.c"} {
		if !h.Contains(topic) {
			t.Fatalf("missing implied topic %q", topic)
		}
	}
	anc := h.Ancestors("a.b.c")
	if len(anc) != 2 || anc[0] != "a.b" || anc[1] != "a" {
		t.Fatalf("ancestors = %v", anc)
	}
	if h.Ancestors("a") != nil {
		t.Fatal("root has ancestors")
	}
	if got := h.Topics(); len(got) != 3 {
		t.Fatalf("Topics = %v", got)
	}
}

func TestSubscribeUnknownTopic(t *testing.T) {
	d, _ := newDAM(8)
	if err := d.Subscribe(0, "nonexistent"); err == nil {
		t.Fatal("unknown topic accepted")
	}
	if _, err := d.Publish(0, "nonexistent", 10); err == nil {
		t.Fatal("publish to unknown topic accepted")
	}
}

func TestLeafDeliveryAndInterest(t *testing.T) {
	d, led := newDAM(16)
	for i := 0; i < 4; i++ {
		if err := d.Subscribe(i, "sports.football"); err != nil {
			t.Fatal(err)
		}
	}
	// Supertopic subscriber is interested in descendants too.
	if err := d.Subscribe(10, "sports"); err != nil {
		t.Fatal(err)
	}
	delivered, err := d.Publish(0, "sports.football", 50)
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 5 {
		t.Fatalf("delivered %d, want 5 (4 leaf + 1 supertopic)", delivered)
	}
	if led.Account(10).Delivered != 1 {
		t.Fatal("supertopic subscriber missed a descendant event")
	}
	// Tennis event must not reach football-only subscribers.
	if err := d.Subscribe(8, "sports.tennis"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Publish(8, "sports.tennis", 50); err != nil {
		t.Fatal(err)
	}
	if led.Account(1).Delivered != 1 { // only the football event
		t.Fatalf("football subscriber delivered %d", led.Account(1).Delivered)
	}
}

func TestForcedSupertopicMembersCarryWithoutBenefit(t *testing.T) {
	d, led := newDAM(32)
	// Only leaf subscribers — the glue must force some of them upward.
	for i := 0; i < 8; i++ {
		if err := d.Subscribe(i, "sports.football"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 8; i < 16; i++ {
		if err := d.Subscribe(i, "sports.tennis"); err != nil {
			t.Fatal(err)
		}
	}
	forced := d.ForcedMembers()
	if len(forced) == 0 {
		t.Fatal("no forced supertopic members — glue invariant broken")
	}

	// A tennis event is carried by the sports group too, i.e. by forced
	// football bridges that do not deliver it.
	if _, err := d.Publish(8, "sports.tennis", 64); err != nil {
		t.Fatal(err)
	}
	sawUnrequitedCarrier := false
	for node, topics := range forced {
		if led.Account(node).BytesSent[fairness.ClassApp] == 0 {
			t.Fatalf("forced member %d (into %v) carried nothing", node, topics)
		}
		// Football-only bridges deliver 0 tennis events.
		if !d.interested(node, "sports.tennis") && led.Account(node).Delivered == 0 {
			sawUnrequitedCarrier = true
		}
	}
	if !sawUnrequitedCarrier {
		t.Fatal("no forced member carried foreign traffic without delivering")
	}
}

func TestSupertopicBrokerLoad(t *testing.T) {
	// EXP-T2 in miniature: supertopic members' contribution grows with
	// every descendant topic's traffic; leaf members pay only their own.
	d, led := newDAM(64)
	for i := 0; i < 10; i++ {
		if err := d.Subscribe(i, "news.eu"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 10; i < 20; i++ {
		if err := d.Subscribe(i, "news.us"); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Subscribe(40, "news"); err != nil { // the "broker"
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		if _, err := d.Publish(0, "news.eu", 64); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Publish(10, "news.us", 64); err != nil {
			t.Fatal(err)
		}
	}
	brokerWork := led.Account(40).BytesSent[fairness.ClassApp]
	leafWork := led.Account(5).BytesSent[fairness.ClassApp]
	if brokerWork <= leafWork {
		t.Fatalf("supertopic member work %d not above leaf work %d", brokerWork, leafWork)
	}
	// The broker carried both topics: ≈2× a leaf's event count.
	if brokerWork < 2*leafWork {
		t.Fatalf("broker work %d, want ≥2× leaf %d", brokerWork, leafWork)
	}
}

func TestDuplicateSubscribeIdempotent(t *testing.T) {
	d, led := newDAM(8)
	if err := d.Subscribe(1, "sports.football"); err != nil {
		t.Fatal(err)
	}
	if err := d.Subscribe(1, "sports.football"); err != nil {
		t.Fatal(err)
	}
	if got := led.Account(1).Filters; got != 1 {
		t.Fatalf("filters = %d", got)
	}
	if got := d.GroupSize("sports.football"); got != 1 {
		t.Fatalf("group size = %d", got)
	}
	if subs := d.Subscribers("sports.football"); len(subs) != 1 || subs[0] != 1 {
		t.Fatalf("subscribers = %v", subs)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() uint64 {
		d, led := newDAM(32)
		for i := 0; i < 12; i++ {
			if err := d.Subscribe(i, "sports.football"); err != nil {
				t.Fatal(err)
			}
		}
		for k := 0; k < 5; k++ {
			if _, err := d.Publish(0, "sports.football", 64); err != nil {
				t.Fatal(err)
			}
		}
		var total uint64
		for i := 0; i < 32; i++ {
			total += led.Account(i).BytesSent[fairness.ClassApp] * uint64(i+1)
		}
		return total
	}
	if run() != run() {
		t.Fatal("DAM accounting not deterministic")
	}
}
