package fairness

import (
	"fmt"
	"sort"
	"strings"

	"fairgossip/internal/stats"
)

// Report summarises how fair a run was: the distribution of per-process
// contribution/benefit ratios (Fig. 1 says these should all be equal) and
// the relationship between contribution and benefit.
type Report struct {
	N int

	// Ratio distribution.
	RatioMean float64
	RatioCoV  float64
	RatioJain float64
	RatioGini float64
	RatioP50  float64
	RatioP90  float64
	RatioP99  float64
	RatioMax  float64

	// Work (contribution) distribution, irrespective of benefit — what
	// load balancing equalises (§3.1).
	WorkCoV  float64
	WorkJain float64
	WorkGini float64

	// Pearson correlation between contribution and benefit: a fair
	// system shows strong positive correlation (work tracks benefit).
	ContribBenefitCorr float64

	// UnrequitedFrac is the fraction of processes doing >1% of mean work
	// while receiving zero benefit (Scribe's non-interested forwarders).
	UnrequitedFrac float64

	Lorenz []stats.LorenzPoint // Lorenz curve of ratios
}

// ReportFor computes a report over a subset of process IDs (nil = all).
func (l *Ledger) ReportFor(ids []int) Report {
	accounts := l.Snapshot()
	if ids == nil {
		ids = make([]int, len(accounts))
		for i := range accounts {
			ids[i] = i
		}
	}
	contribs := make([]float64, 0, len(ids))
	benefits := make([]float64, 0, len(ids))
	ratios := make([]float64, 0, len(ids))
	for _, id := range ids {
		if id < 0 || id >= len(accounts) {
			continue
		}
		a := accounts[id]
		contribs = append(contribs, Contribution(a, l.w))
		benefits = append(benefits, Benefit(a, l.w))
		ratios = append(ratios, Ratio(a, l.w))
	}
	return buildReport(contribs, benefits, ratios)
}

// Report computes the whole-population report.
func (l *Ledger) Report() Report { return l.ReportFor(nil) }

// ReportAccounts computes a report directly over a slice of accounts
// under the given weights — used for windowed (delta) reports, where the
// caller diffs two snapshots first.
func ReportAccounts(accounts []Account, w Weights) Report {
	contribs := make([]float64, len(accounts))
	benefits := make([]float64, len(accounts))
	ratios := make([]float64, len(accounts))
	for i, a := range accounts {
		contribs[i] = Contribution(a, w)
		benefits[i] = Benefit(a, w)
		ratios[i] = Ratio(a, w)
	}
	return buildReport(contribs, benefits, ratios)
}

func buildReport(contribs, benefits, ratios []float64) Report {
	r := Report{N: len(ratios)}
	if r.N == 0 {
		r.RatioJain, r.WorkJain = 1, 1
		return r
	}
	r.RatioMean = stats.Mean(ratios)
	r.RatioCoV = stats.CoV(ratios)
	r.RatioJain = stats.JainIndex(ratios)
	r.RatioGini = stats.Gini(ratios)
	qs := stats.Quantiles(ratios, 0.5, 0.9, 0.99, 1)
	r.RatioP50, r.RatioP90, r.RatioP99, r.RatioMax = qs[0], qs[1], qs[2], qs[3]

	r.WorkCoV = stats.CoV(contribs)
	r.WorkJain = stats.JainIndex(contribs)
	r.WorkGini = stats.Gini(contribs)

	r.ContribBenefitCorr = stats.Pearson(contribs, benefits)

	meanWork := stats.Mean(contribs)
	if meanWork > 0 {
		unrequited := 0
		for i := range contribs {
			if benefits[i] == 0 && contribs[i] > 0.01*meanWork {
				unrequited++
			}
		}
		r.UnrequitedFrac = float64(unrequited) / float64(r.N)
	}
	r.Lorenz = stats.Lorenz(ratios, 10)
	return r
}

// String renders the report as an aligned block for CLI output.
func (r Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "processes            %d\n", r.N)
	fmt.Fprintf(&sb, "ratio mean           %.3f\n", r.RatioMean)
	fmt.Fprintf(&sb, "ratio CoV            %.3f\n", r.RatioCoV)
	fmt.Fprintf(&sb, "ratio Jain index     %.3f\n", r.RatioJain)
	fmt.Fprintf(&sb, "ratio Gini           %.3f\n", r.RatioGini)
	fmt.Fprintf(&sb, "ratio p50/p90/p99    %.3f / %.3f / %.3f\n", r.RatioP50, r.RatioP90, r.RatioP99)
	fmt.Fprintf(&sb, "work CoV             %.3f\n", r.WorkCoV)
	fmt.Fprintf(&sb, "work Jain index      %.3f\n", r.WorkJain)
	fmt.Fprintf(&sb, "contrib~benefit corr %.3f\n", r.ContribBenefitCorr)
	fmt.Fprintf(&sb, "unrequited workers   %.1f%%\n", r.UnrequitedFrac*100)
	return sb.String()
}

// TopContributors returns the ids of the k processes with the highest
// contribution, descending — handy for spotting broker-like hotspots
// (EXP-T2).
func (l *Ledger) TopContributors(k int) []int {
	accounts := l.Snapshot()
	ids := make([]int, len(accounts))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		return Contribution(accounts[ids[a]], l.w) > Contribution(accounts[ids[b]], l.w)
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}
