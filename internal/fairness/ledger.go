// Package fairness implements the paper's accounting model (Figs. 1–3):
// per-process contribution (messages/bytes published and forwarded, split
// into application and infrastructure classes) and benefit (events
// delivered, active filters), plus the derived fairness reports.
//
// The central definition (Fig. 1): a system is fair when every process's
// contribution/benefit ratio equals the same constant f. The ledger
// measures both sides; reports quantify the spread of the ratios.
package fairness

import (
	"sync"
)

// Class distinguishes what a forwarded message was for. The paper counts
// both: "These might include application messages as well as
// infrastructure messages" (§2).
type Class uint8

const (
	// ClassApp is event dissemination traffic.
	ClassApp Class = iota + 1
	// ClassInfra is membership/subscription maintenance traffic.
	ClassInfra
)

const numClasses = 2

// Account holds the running totals for one process.
type Account struct {
	MsgsSent  [numClasses + 1]uint64 // indexed by Class; slot 0 unused
	BytesSent [numClasses + 1]uint64

	Published      uint64 // events originated by this process
	PublishedBytes uint64
	Delivered      uint64 // events delivered (matched interest)
	Filters        int    // currently active subscriptions

	UsefulBytes uint64 // audited: bytes that were novel to the receiver
	JunkBytes   uint64 // audited: duplicate/no-value bytes

	ChurnPenalty float64 // repair work this process imposed on others
}

// Weights parameterises the contribution/benefit formulas.
type Weights struct {
	// Kappa weighs active filters inside the benefit term (Fig. 2 counts
	// "# filters"; Fig. 3 omits it — set 0 for the Fig. 3 variant).
	Kappa float64
	// InfraWeight scales infrastructure bytes relative to application
	// bytes in the contribution term (1 = count equally).
	InfraWeight float64
	// Audited switches contribution to count only bytes acknowledged as
	// novel by receivers (the §5.2 anti-bias mechanism, EXP-A6).
	Audited bool
}

// DefaultWeights mirror Fig. 2: filters count toward benefit, and
// infrastructure traffic counts like application traffic.
func DefaultWeights() Weights {
	return Weights{Kappa: 1, InfraWeight: 1}
}

// Ledger tracks accounts for a fixed population. It is safe for
// concurrent use (the live runtime mutates it from many goroutines).
type Ledger struct {
	mu       sync.Mutex
	accounts []Account
	w        Weights
}

// NewLedger returns a ledger for n processes.
func NewLedger(n int, w Weights) *Ledger {
	if w.InfraWeight == 0 && w.Kappa == 0 && !w.Audited {
		// Allow the zero Weights value to mean "defaults".
		w = DefaultWeights()
	}
	return &Ledger{accounts: make([]Account, n), w: w}
}

// Len returns the population size.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.accounts)
}

// Grow extends the ledger to cover at least n processes.
func (l *Ledger) Grow(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for len(l.accounts) < n {
		l.accounts = append(l.accounts, Account{})
	}
}

func (l *Ledger) valid(id int) bool { return id >= 0 && id < len(l.accounts) }

// AddSend records a sent protocol message of the given class and size.
func (l *Ledger) AddSend(id int, c Class, bytes int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.valid(id) || c < ClassApp || c > ClassInfra {
		return
	}
	l.accounts[id].MsgsSent[c]++
	l.accounts[id].BytesSent[c] += uint64(bytes)
}

// AddPublish records an event origination.
func (l *Ledger) AddPublish(id int, bytes int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.valid(id) {
		return
	}
	l.accounts[id].Published++
	l.accounts[id].PublishedBytes += uint64(bytes)
}

// AddDelivery records one delivered (interesting) event.
func (l *Ledger) AddDelivery(id int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.valid(id) {
		return
	}
	l.accounts[id].Delivered++
}

// SetFilters records the current number of active subscriptions.
func (l *Ledger) SetFilters(id, n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.valid(id) {
		return
	}
	l.accounts[id].Filters = n
}

// AddAudit records a receiver's novelty verdict about bytes previously
// sent by id: useful bytes carried events the receiver did not have.
func (l *Ledger) AddAudit(id int, usefulBytes, junkBytes int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.valid(id) {
		return
	}
	l.accounts[id].UsefulBytes += uint64(usefulBytes)
	l.accounts[id].JunkBytes += uint64(junkBytes)
}

// AddChurnPenalty charges repair work caused by id's instability (§3.2:
// "it might also be wise to penalize unstable nodes").
func (l *Ledger) AddChurnPenalty(id int, amount float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.valid(id) || amount < 0 {
		return
	}
	l.accounts[id].ChurnPenalty += amount
}

// Account returns a copy of one process's account.
func (l *Ledger) Account(id int) Account {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.valid(id) {
		return Account{}
	}
	return l.accounts[id]
}

// Weights returns the ledger's weight configuration.
func (l *Ledger) Weights() Weights { return l.w }

// Contribution computes the contribution term for one account under
// weights w: application bytes + weighted infrastructure bytes +
// published bytes, or audited useful bytes when w.Audited is set, plus
// any churn penalty.
func Contribution(a Account, w Weights) float64 {
	var c float64
	if w.Audited {
		c = float64(a.UsefulBytes) + float64(a.PublishedBytes)
	} else {
		c = float64(a.BytesSent[ClassApp]) +
			w.InfraWeight*float64(a.BytesSent[ClassInfra]) +
			float64(a.PublishedBytes)
	}
	return c + a.ChurnPenalty
}

// Benefit computes the benefit term: delivered events + Kappa·filters.
func Benefit(a Account, w Weights) float64 {
	return float64(a.Delivered) + w.Kappa*float64(a.Filters)
}

// Ratio computes contribution/benefit with the convention that a process
// with zero benefit and zero contribution has ratio 0, and a process with
// zero benefit but positive contribution has its contribution as ratio
// (benefit floored at 1): pure unrequited work is maximally visible.
func Ratio(a Account, w Weights) float64 {
	c := Contribution(a, w)
	b := Benefit(a, w)
	if b < 1 {
		b = 1
	}
	return c / b
}

// Contribution returns the ledger's contribution for process id.
func (l *Ledger) Contribution(id int) float64 { return Contribution(l.Account(id), l.w) }

// Benefit returns the ledger's benefit for process id.
func (l *Ledger) Benefit(id int) float64 { return Benefit(l.Account(id), l.w) }

// Ratio returns the ledger's contribution/benefit ratio for process id.
func (l *Ledger) Ratio(id int) float64 { return Ratio(l.Account(id), l.w) }

// Snapshot returns copies of all accounts (for windowed controllers and
// reports).
func (l *Ledger) Snapshot() []Account {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Account, len(l.accounts))
	copy(out, l.accounts)
	return out
}

// Delta returns a-b field-wise; controllers diff snapshots to obtain
// per-window rates.
func Delta(a, b Account) Account {
	var d Account
	for c := 1; c <= numClasses; c++ {
		d.MsgsSent[c] = a.MsgsSent[c] - b.MsgsSent[c]
		d.BytesSent[c] = a.BytesSent[c] - b.BytesSent[c]
	}
	d.Published = a.Published - b.Published
	d.PublishedBytes = a.PublishedBytes - b.PublishedBytes
	d.Delivered = a.Delivered - b.Delivered
	d.Filters = a.Filters // filters are a level, not a counter
	d.UsefulBytes = a.UsefulBytes - b.UsefulBytes
	d.JunkBytes = a.JunkBytes - b.JunkBytes
	d.ChurnPenalty = a.ChurnPenalty - b.ChurnPenalty
	return d
}
