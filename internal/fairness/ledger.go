// Package fairness implements the paper's accounting model (Figs. 1–3):
// per-process contribution (messages/bytes published and forwarded, split
// into application and infrastructure classes) and benefit (events
// delivered, active filters), plus the derived fairness reports.
//
// The central definition (Fig. 1): a system is fair when every process's
// contribution/benefit ratio equals the same constant f. The ledger
// measures both sides; reports quantify the spread of the ratios.
package fairness

import (
	"math"
	"sync"
	"sync/atomic"
)

// Class distinguishes what a forwarded message was for. The paper counts
// both: "These might include application messages as well as
// infrastructure messages" (§2).
type Class uint8

const (
	// ClassApp is event dissemination traffic.
	ClassApp Class = iota + 1
	// ClassInfra is membership/subscription maintenance traffic.
	ClassInfra
)

const numClasses = 2

// Account holds the running totals for one process.
type Account struct {
	MsgsSent  [numClasses + 1]uint64 // indexed by Class; slot 0 unused
	BytesSent [numClasses + 1]uint64

	Published      uint64 // events originated by this process
	PublishedBytes uint64
	Delivered      uint64 // events delivered (matched interest)
	Filters        int    // currently active subscriptions

	UsefulBytes uint64 // audited: bytes that were novel to the receiver
	JunkBytes   uint64 // audited: duplicate/no-value bytes

	ChurnPenalty float64 // repair work this process imposed on others
}

// Weights parameterises the contribution/benefit formulas.
type Weights struct {
	// Kappa weighs active filters inside the benefit term (Fig. 2 counts
	// "# filters"; Fig. 3 omits it — use ZeroWeights, or set Explicit,
	// for the Fig. 3 variant).
	Kappa float64
	// InfraWeight scales infrastructure bytes relative to application
	// bytes in the contribution term (1 = count equally).
	InfraWeight float64
	// Audited switches contribution to count only bytes acknowledged as
	// novel by receivers (the §5.2 anti-bias mechanism, EXP-A6).
	Audited bool
	// Explicit marks the weights as intentional: NewLedger applies them
	// verbatim even when every other field is zero. Without it the zero
	// Weights value means "use DefaultWeights", which would silently turn
	// an intentional {Kappa: 0, InfraWeight: 0} (the Fig. 3 variant with
	// infrastructure ignored) into the Fig. 2 defaults.
	Explicit bool
}

// DefaultWeights mirror Fig. 2: filters count toward benefit, and
// infrastructure traffic counts like application traffic.
func DefaultWeights() Weights {
	return Weights{Kappa: 1, InfraWeight: 1}
}

// ZeroWeights requests true zeros for every weight (the Fig. 3 variant:
// no filter credit, infrastructure traffic ignored). The Explicit marker
// stops NewLedger from mistaking it for the zero value.
func ZeroWeights() Weights {
	return Weights{Explicit: true}
}

// account is the padded, atomically-updated storage slot for one process.
// Counters are per-account rather than guarded by a ledger-wide mutex, so
// the simulator's single-threaded fast path pays only uncontended atomic
// adds and the live runtime's goroutines never serialise on a global lock.
// The padding rounds the slot up to two cache lines so neighbouring
// accounts written by different goroutines do not false-share.
type account struct {
	msgsSent       [numClasses + 1]atomic.Uint64
	bytesSent      [numClasses + 1]atomic.Uint64
	published      atomic.Uint64
	publishedBytes atomic.Uint64
	delivered      atomic.Uint64
	filters        atomic.Int64
	usefulBytes    atomic.Uint64
	junkBytes      atomic.Uint64
	churnPenalty   atomic.Uint64 // float64 bits, CAS-accumulated
	_              [24]byte      // pad 104 → 128 bytes
}

// addFloat accumulates v into a float64 stored as atomic bits.
func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.CompareAndSwap(old, next) {
			return
		}
	}
}

// snapshot copies the slot into a plain Account.
func (a *account) snapshot() Account {
	var out Account
	for c := 1; c <= numClasses; c++ {
		out.MsgsSent[c] = a.msgsSent[c].Load()
		out.BytesSent[c] = a.bytesSent[c].Load()
	}
	out.Published = a.published.Load()
	out.PublishedBytes = a.publishedBytes.Load()
	out.Delivered = a.delivered.Load()
	out.Filters = int(a.filters.Load())
	out.UsefulBytes = a.usefulBytes.Load()
	out.JunkBytes = a.junkBytes.Load()
	out.ChurnPenalty = math.Float64frombits(a.churnPenalty.Load())
	return out
}

// Accounts are stored in fixed-size chunks so Grow never moves a live
// slot: concurrent writers keep their pointers while the chunk index is
// swapped copy-on-write.
const (
	chunkShift = 8 // 256 accounts per chunk (32 KiB)
	chunkSize  = 1 << chunkShift
	chunkMask  = chunkSize - 1
)

// ChunkSize is the number of accounts per storage chunk. The sharded
// simulation aligns shard boundaries to it so two shards' hot atomic
// writes never land in the same chunk (and Grow, which appends whole
// chunks, only ever touches the tail shard's territory).
const ChunkSize = chunkSize

type chunk [chunkSize]account

// Ledger tracks accounts for a fixed (growable) population. It is safe
// for concurrent use: the hot add path is lock-free per-account atomics;
// only Grow takes a lock, to serialise chunk-index swaps.
type Ledger struct {
	w      Weights
	size   atomic.Int64             // published population size
	chunks atomic.Pointer[[]*chunk] // chunk index, swapped copy-on-write
	growMu sync.Mutex               // serialises Grow
}

// NewLedger returns a ledger for n processes.
func NewLedger(n int, w Weights) *Ledger {
	if w == (Weights{}) {
		// Allow the zero Weights value to mean "defaults"; callers that
		// really want all-zero weights set Explicit (see ZeroWeights).
		w = DefaultWeights()
	}
	l := &Ledger{w: w}
	cs := make([]*chunk, (n+chunkMask)>>chunkShift)
	for i := range cs {
		cs[i] = new(chunk)
	}
	l.chunks.Store(&cs)
	l.size.Store(int64(n))
	return l
}

// Len returns the population size.
func (l *Ledger) Len() int { return int(l.size.Load()) }

// Grow extends the ledger to cover at least n processes. Existing
// accounts never move, so it is safe to grow while writers are active.
//
// Memory-ordering audit (sharded writers racing Grow): Go's atomic
// operations are sequentially consistent, so the ordering argument is
// purely about program order. Grow publishes the new chunk index
// (chunks.Store) strictly before the new size (size.Store); account()
// admits an id only after loading size, then loads the chunk index. Any
// interleaving therefore gives a reader that admitted id < size a chunk
// index published at-or-after the store that made that size visible —
// i.e. one that contains id's chunk. Old indexes remain valid forever
// (chunk pointers are copied, never moved), so a writer that cached a
// *account across a Grow keeps writing the same slot the new index
// points to. The one non-guarantee: ids beyond the size a reader
// observed read as absent (account() returns nil and the add is
// dropped) — callers must not charge an id before the Grow that admits
// it returns, which the cluster upholds by growing before constructing
// the node. TestGrowRacingShardWriters exercises this under -race.
func (l *Ledger) Grow(n int) {
	l.growMu.Lock()
	defer l.growMu.Unlock()
	if int64(n) <= l.size.Load() {
		return
	}
	old := *l.chunks.Load()
	if need := (n + chunkMask) >> chunkShift; need > len(old) {
		cs := make([]*chunk, need)
		copy(cs, old)
		for i := len(old); i < need; i++ {
			cs[i] = new(chunk)
		}
		l.chunks.Store(&cs)
	}
	l.size.Store(int64(n))
}

// account resolves id to its storage slot, or nil when out of range.
// The size load precedes the chunk load: Grow publishes chunks before
// size, so any id we admit has a live slot in whatever index we see.
func (l *Ledger) account(id int) *account {
	if id < 0 || int64(id) >= l.size.Load() {
		return nil
	}
	cs := *l.chunks.Load()
	return &cs[id>>chunkShift][id&chunkMask]
}

// AddSend records a sent protocol message of the given class and size.
func (l *Ledger) AddSend(id int, c Class, bytes int) {
	a := l.account(id)
	if a == nil || c < ClassApp || c > ClassInfra {
		return
	}
	a.msgsSent[c].Add(1)
	a.bytesSent[c].Add(uint64(bytes))
}

// AddPublish records an event origination.
func (l *Ledger) AddPublish(id int, bytes int) {
	if a := l.account(id); a != nil {
		a.published.Add(1)
		a.publishedBytes.Add(uint64(bytes))
	}
}

// AddDelivery records one delivered (interesting) event.
func (l *Ledger) AddDelivery(id int) {
	if a := l.account(id); a != nil {
		a.delivered.Add(1)
	}
}

// SetFilters records the current number of active subscriptions.
func (l *Ledger) SetFilters(id, n int) {
	if a := l.account(id); a != nil {
		a.filters.Store(int64(n))
	}
}

// AddAudit records a receiver's novelty verdict about bytes previously
// sent by id: useful bytes carried events the receiver did not have.
func (l *Ledger) AddAudit(id int, usefulBytes, junkBytes int) {
	if a := l.account(id); a != nil {
		a.usefulBytes.Add(uint64(usefulBytes))
		a.junkBytes.Add(uint64(junkBytes))
	}
}

// AddChurnPenalty charges repair work caused by id's instability (§3.2:
// "it might also be wise to penalize unstable nodes").
func (l *Ledger) AddChurnPenalty(id int, amount float64) {
	if amount < 0 {
		return
	}
	if a := l.account(id); a != nil {
		addFloat(&a.churnPenalty, amount)
	}
}

// Account returns a copy of one process's account.
func (l *Ledger) Account(id int) Account {
	a := l.account(id)
	if a == nil {
		return Account{}
	}
	return a.snapshot()
}

// Weights returns the ledger's weight configuration.
func (l *Ledger) Weights() Weights { return l.w }

// Contribution computes the contribution term for one account under
// weights w: application bytes + weighted infrastructure bytes +
// published bytes, or audited useful bytes when w.Audited is set, plus
// any churn penalty.
func Contribution(a Account, w Weights) float64 {
	var c float64
	if w.Audited {
		c = float64(a.UsefulBytes) + float64(a.PublishedBytes)
	} else {
		c = float64(a.BytesSent[ClassApp]) +
			w.InfraWeight*float64(a.BytesSent[ClassInfra]) +
			float64(a.PublishedBytes)
	}
	return c + a.ChurnPenalty
}

// Benefit computes the benefit term: delivered events + Kappa·filters.
func Benefit(a Account, w Weights) float64 {
	return float64(a.Delivered) + w.Kappa*float64(a.Filters)
}

// Ratio computes contribution/benefit with the convention that a process
// with zero benefit and zero contribution has ratio 0, and a process with
// zero benefit but positive contribution has its contribution as ratio
// (benefit floored at 1): pure unrequited work is maximally visible.
func Ratio(a Account, w Weights) float64 {
	c := Contribution(a, w)
	b := Benefit(a, w)
	if b < 1 {
		b = 1
	}
	return c / b
}

// Contribution returns the ledger's contribution for process id.
func (l *Ledger) Contribution(id int) float64 { return Contribution(l.Account(id), l.w) }

// Benefit returns the ledger's benefit for process id.
func (l *Ledger) Benefit(id int) float64 { return Benefit(l.Account(id), l.w) }

// Ratio returns the ledger's contribution/benefit ratio for process id.
func (l *Ledger) Ratio(id int) float64 { return Ratio(l.Account(id), l.w) }

// Snapshot returns copies of all accounts (for windowed controllers and
// reports). Each account is internally consistent; under concurrent
// writers the snapshot as a whole is a per-counter point-in-time view,
// which is what windowed rate controllers difference anyway.
func (l *Ledger) Snapshot() []Account {
	n := l.Len()
	cs := *l.chunks.Load()
	out := make([]Account, n)
	for i := 0; i < n; i++ {
		out[i] = cs[i>>chunkShift][i&chunkMask].snapshot()
	}
	return out
}

// Delta returns a-b field-wise; controllers diff snapshots to obtain
// per-window rates.
func Delta(a, b Account) Account {
	var d Account
	for c := 1; c <= numClasses; c++ {
		d.MsgsSent[c] = a.MsgsSent[c] - b.MsgsSent[c]
		d.BytesSent[c] = a.BytesSent[c] - b.BytesSent[c]
	}
	d.Published = a.Published - b.Published
	d.PublishedBytes = a.PublishedBytes - b.PublishedBytes
	d.Delivered = a.Delivered - b.Delivered
	d.Filters = a.Filters // filters are a level, not a counter
	d.UsefulBytes = a.UsefulBytes - b.UsefulBytes
	d.JunkBytes = a.JunkBytes - b.JunkBytes
	d.ChurnPenalty = a.ChurnPenalty - b.ChurnPenalty
	return d
}
