package fairness

import (
	"math"
	"sync"
	"testing"
)

func TestContributionBenefitRatio(t *testing.T) {
	l := NewLedger(2, DefaultWeights())
	l.AddSend(0, ClassApp, 100)
	l.AddSend(0, ClassInfra, 50)
	l.AddPublish(0, 30)
	l.AddDelivery(0)
	l.AddDelivery(0)
	l.SetFilters(0, 3)

	if got := l.Contribution(0); got != 180 {
		t.Errorf("contribution = %v, want 180", got)
	}
	if got := l.Benefit(0); got != 5 {
		t.Errorf("benefit = %v, want 5 (2 delivered + 3 filters)", got)
	}
	if got := l.Ratio(0); got != 36 {
		t.Errorf("ratio = %v, want 36", got)
	}
	// Untouched process: zero everything, ratio 0.
	if got := l.Ratio(1); got != 0 {
		t.Errorf("idle ratio = %v, want 0", got)
	}
}

func TestZeroBenefitPositiveWork(t *testing.T) {
	l := NewLedger(1, DefaultWeights())
	l.AddSend(0, ClassApp, 500)
	// Benefit floored at 1: ratio equals the contribution.
	if got := l.Ratio(0); got != 500 {
		t.Errorf("unrequited ratio = %v, want 500", got)
	}
}

func TestWeightsVariants(t *testing.T) {
	w := Weights{Kappa: 0, InfraWeight: 0.5}
	l := NewLedger(1, w)
	l.AddSend(0, ClassApp, 100)
	l.AddSend(0, ClassInfra, 100)
	l.SetFilters(0, 10)
	l.AddDelivery(0)
	if got := l.Contribution(0); got != 150 {
		t.Errorf("weighted contribution = %v, want 150", got)
	}
	if got := l.Benefit(0); got != 1 {
		t.Errorf("kappa=0 benefit = %v, want 1 (filters ignored)", got)
	}
}

func TestAuditedContribution(t *testing.T) {
	w := Weights{Kappa: 1, InfraWeight: 1, Audited: true}
	l := NewLedger(1, w)
	l.AddSend(0, ClassApp, 1000) // raw bytes: ignored when audited
	l.AddAudit(0, 200, 800)
	l.AddPublish(0, 50)
	if got := l.Contribution(0); got != 250 {
		t.Errorf("audited contribution = %v, want 250 (200 useful + 50 published)", got)
	}
	a := l.Account(0)
	if a.JunkBytes != 800 {
		t.Errorf("junk = %d", a.JunkBytes)
	}
}

func TestChurnPenalty(t *testing.T) {
	l := NewLedger(1, DefaultWeights())
	l.AddChurnPenalty(0, 100)
	l.AddChurnPenalty(0, -5) // ignored
	if got := l.Contribution(0); got != 100 {
		t.Errorf("churn penalty contribution = %v, want 100", got)
	}
}

func TestInvalidIDsIgnored(t *testing.T) {
	l := NewLedger(1, DefaultWeights())
	l.AddSend(-1, ClassApp, 10)
	l.AddSend(5, ClassApp, 10)
	l.AddSend(0, Class(9), 10)
	l.AddDelivery(-1)
	l.AddPublish(99, 1)
	l.SetFilters(99, 1)
	l.AddAudit(99, 1, 1)
	if got := l.Contribution(0); got != 0 {
		t.Errorf("invalid ops leaked: %v", got)
	}
	if got := (l.Account(-3)); got != (Account{}) {
		t.Errorf("invalid account lookup: %+v", got)
	}
}

func TestGrow(t *testing.T) {
	l := NewLedger(1, DefaultWeights())
	l.Grow(5)
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	l.Grow(2) // shrink is a no-op
	if l.Len() != 5 {
		t.Fatalf("Len after no-op grow = %d", l.Len())
	}
	l.AddDelivery(4)
	if l.Benefit(4) != 1 {
		t.Fatal("grown account unusable")
	}
}

func TestZeroWeightsMeansDefaults(t *testing.T) {
	l := NewLedger(1, Weights{})
	if l.Weights().Kappa != 1 || l.Weights().InfraWeight != 1 {
		t.Fatalf("zero weights should default: %+v", l.Weights())
	}
}

// An intentional all-zero weighting (the Fig. 3 variant: no filter
// credit, infrastructure ignored) must survive NewLedger instead of being
// mistaken for the zero value and replaced with defaults.
func TestExplicitZeroWeightsKept(t *testing.T) {
	l := NewLedger(1, ZeroWeights())
	if w := l.Weights(); w.Kappa != 0 || w.InfraWeight != 0 {
		t.Fatalf("explicit zeros were defaulted away: %+v", w)
	}
	l.AddSend(0, ClassApp, 100)
	l.AddSend(0, ClassInfra, 400) // must not count: InfraWeight 0
	l.SetFilters(0, 7)            // must not count: Kappa 0
	l.AddDelivery(0)
	if got := l.Contribution(0); got != 100 {
		t.Errorf("contribution = %v, want 100 (infra ignored)", got)
	}
	if got := l.Benefit(0); got != 1 {
		t.Errorf("benefit = %v, want 1 (filters ignored)", got)
	}
	// The long-hand spelling works too.
	l2 := NewLedger(1, Weights{Kappa: 0, InfraWeight: 0, Explicit: true})
	if w := l2.Weights(); w.Kappa != 0 || w.InfraWeight != 0 {
		t.Fatalf("explicit literal zeros were defaulted away: %+v", w)
	}
}

func TestDelta(t *testing.T) {
	var a, b Account
	a.BytesSent[ClassApp] = 100
	b.BytesSent[ClassApp] = 40
	a.Delivered, b.Delivered = 10, 4
	a.Filters, b.Filters = 3, 2
	d := Delta(a, b)
	if d.BytesSent[ClassApp] != 60 || d.Delivered != 6 {
		t.Fatalf("delta wrong: %+v", d)
	}
	if d.Filters != 3 {
		t.Fatalf("filters must carry the level, got %d", d.Filters)
	}
}

func TestReportFairVsUnfair(t *testing.T) {
	// Fair population: contribution proportional to benefit.
	fair := NewLedger(10, DefaultWeights())
	for i := 0; i < 10; i++ {
		for j := 0; j <= i; j++ {
			fair.AddDelivery(i)
		}
		fair.AddSend(i, ClassApp, (i+1)*100)
	}
	fr := fair.Report()
	if fr.RatioJain < 0.98 {
		t.Errorf("fair population Jain = %.3f, want ≈1", fr.RatioJain)
	}
	if fr.ContribBenefitCorr < 0.95 {
		t.Errorf("fair population corr = %.3f, want ≈1", fr.ContribBenefitCorr)
	}

	// Unfair: everyone works the same while benefit is highly skewed
	// (the paper's classic-gossip pathology, §4.2).
	unfair := NewLedger(10, DefaultWeights())
	for i := 0; i < 10; i++ {
		unfair.AddSend(i, ClassApp, 100)
		for j := 0; j < i*i; j++ {
			unfair.AddDelivery(i)
		}
	}
	ur := unfair.Report()
	if ur.RatioJain > 0.5 {
		t.Errorf("unfair population Jain = %.3f, want low", ur.RatioJain)
	}
	if ur.WorkCoV > 0.01 {
		t.Errorf("work is balanced, CoV = %.3f", ur.WorkCoV)
	}
	if len(ur.String()) == 0 {
		t.Error("String() empty")
	}

	// Unrequited work: 9 of 10 processes forward without any benefit.
	unreq := NewLedger(10, DefaultWeights())
	for i := 0; i < 10; i++ {
		unreq.AddSend(i, ClassApp, 100)
	}
	for j := 0; j < 50; j++ {
		unreq.AddDelivery(0)
	}
	if got := unreq.Report().UnrequitedFrac; got < 0.85 || got > 0.95 {
		t.Errorf("unrequited fraction = %.2f, want 0.9", got)
	}
}

func TestReportSubsetAndEmpty(t *testing.T) {
	l := NewLedger(4, DefaultWeights())
	l.AddSend(0, ClassApp, 10)
	l.AddDelivery(0)
	l.AddSend(1, ClassApp, 1000)
	r := l.ReportFor([]int{0})
	if r.N != 1 {
		t.Fatalf("subset N = %d", r.N)
	}
	empty := l.ReportFor([]int{})
	if empty.N != 0 || empty.RatioJain != 1 {
		t.Fatalf("empty report: %+v", empty)
	}
	// Out-of-range ids are skipped.
	r2 := l.ReportFor([]int{0, 99, -1})
	if r2.N != 1 {
		t.Fatalf("invalid ids not skipped: N=%d", r2.N)
	}
}

func TestTopContributors(t *testing.T) {
	l := NewLedger(5, DefaultWeights())
	l.AddSend(2, ClassApp, 500)
	l.AddSend(4, ClassApp, 300)
	l.AddSend(0, ClassApp, 100)
	top := l.TopContributors(2)
	if len(top) != 2 || top[0] != 2 || top[1] != 4 {
		t.Fatalf("top = %v", top)
	}
	all := l.TopContributors(99)
	if len(all) != 5 {
		t.Fatalf("oversized k: %v", all)
	}
}

func TestLedgerConcurrentSafety(t *testing.T) {
	l := NewLedger(8, DefaultWeights())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				l.AddSend(g, ClassApp, 1)
				l.AddDelivery(g)
				_ = l.Ratio(g)
			}
		}()
	}
	wg.Wait()
	for g := 0; g < 8; g++ {
		if got := l.Account(g).BytesSent[ClassApp]; got != 1000 {
			t.Fatalf("node %d lost updates: %d", g, got)
		}
	}
}

// Growing while writers hammer existing accounts must lose no updates:
// chunked storage means accounts never move.
func TestGrowConcurrentWithWriters(t *testing.T) {
	l := NewLedger(4, DefaultWeights())
	var wg sync.WaitGroup
	const perWriter = 5000
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.AddSend(g, ClassApp, 1)
				l.AddChurnPenalty(g, 1)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 8; n <= 4096; n *= 2 {
			l.Grow(n)
			_ = l.Snapshot()
		}
	}()
	wg.Wait()
	if l.Len() != 4096 {
		t.Fatalf("Len = %d after growth", l.Len())
	}
	for g := 0; g < 4; g++ {
		a := l.Account(g)
		if a.BytesSent[ClassApp] != perWriter || a.ChurnPenalty != perWriter {
			t.Fatalf("node %d lost updates during growth: %+v", g, a)
		}
	}
}

// The per-message accounting path must not allocate: it runs once (or
// more) for every simulated message.
func TestAddPathZeroAlloc(t *testing.T) {
	l := NewLedger(16, DefaultWeights())
	avg := testing.AllocsPerRun(1000, func() {
		l.AddSend(3, ClassApp, 64)
		l.AddDelivery(5)
		l.AddPublish(7, 32)
		l.AddAudit(3, 48, 16)
	})
	if avg != 0 {
		t.Fatalf("ledger add path allocates %.2f times per op, want 0", avg)
	}
}

func BenchmarkAddSend(b *testing.B) {
	l := NewLedger(1024, DefaultWeights())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.AddSend(i&1023, ClassApp, 64)
	}
}

func BenchmarkAddSendParallel(b *testing.B) {
	l := NewLedger(1024, DefaultWeights())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		id := 0
		for pb.Next() {
			l.AddSend(id&1023, ClassApp, 64)
			id += 7
		}
	})
}

func TestRatioFinite(t *testing.T) {
	l := NewLedger(1, DefaultWeights())
	l.AddSend(0, ClassApp, 1<<40)
	r := l.Ratio(0)
	if math.IsInf(r, 0) || math.IsNaN(r) {
		t.Fatal("ratio must stay finite")
	}
}

// TestGrowRacingShardWriters is the sharded-simulation audit for Grow's
// memory ordering (see the Grow doc comment): shard-style writer
// goroutines hammer adds and reads over already-admitted ids while the
// main goroutine repeatedly grows the population. Under -race this
// verifies the chunks-before-size publication order and the
// copy-on-write chunk index leave no unsynchronised access; the final
// totals verify no admitted write was lost to a stale index.
func TestGrowRacingShardWriters(t *testing.T) {
	const (
		writers   = 4
		perWriter = 64 // ids each writer owns from the initial population
		adds      = 2000
		finalSize = 10 * ChunkSize
	)
	l := NewLedger(writers*perWriter, DefaultWeights())

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lo := w * perWriter
			for i := 0; i < adds; i++ {
				id := lo + i%perWriter
				l.AddSend(id, ClassApp, 8)
				l.AddAudit(id, 8, 0)
				l.AddDelivery(id)
				l.AddChurnPenalty(id, 0.5)
				_ = l.Account(id)
				if i%16 == 0 {
					_ = l.Ratio(id)
				}
			}
		}(w)
	}
	for n := writers*perWriter + 1; n <= finalSize; n += 97 {
		l.Grow(n)
	}
	l.Grow(finalSize)
	wg.Wait()

	if l.Len() != finalSize {
		t.Fatalf("Len = %d, want %d", l.Len(), finalSize)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			a := l.Account(w*perWriter + i)
			hits := adds / perWriter
			if i < adds%perWriter {
				hits++
			}
			want := uint64(hits * 8)
			if a.BytesSent[ClassApp] != want || a.UsefulBytes != want {
				t.Fatalf("id %d: bytes %d useful %d, want %d — a write raced Grow and was lost",
					w*perWriter+i, a.BytesSent[ClassApp], a.UsefulBytes, want)
			}
		}
	}
	// Freshly grown territory must read as zeroed live slots.
	if a := l.Account(finalSize - 1); a.BytesSent[ClassApp] != 0 {
		t.Fatalf("new account is dirty: %+v", a)
	}
}
