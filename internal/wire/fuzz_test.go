package wire

import (
	"bytes"
	"testing"

	"fairgossip/internal/pubsub"
)

// FuzzWireDecode hardens the decoder against arbitrary input. Two
// properties, from a corpus seeded with real encoded envelopes:
//
//  1. DecodeEnvelope never panics and never over-reads, whatever the
//     bytes (the fuzz engine explores truncations, bit flips, and
//     hostile length fields from the seeds).
//  2. The format is canonical: when decode succeeds, re-encoding the
//     decoded envelope reproduces the input byte for byte. Every field
//     is either fixed, exactly validated, or round-tripped at the bit
//     level (floats), so there is exactly one encoding per message.
func FuzzWireDecode(f *testing.F) {
	for _, ev := range []*pubsub.Event{
		{},
		{ID: pubsub.EventID{Publisher: 1, Seq: 1}, Topic: "news.eu", Payload: []byte("ECB holds rates")},
		{
			ID:    pubsub.EventID{Publisher: 9, Seq: 201},
			Topic: "ticks",
			Attrs: []pubsub.Attr{
				{Key: "symbol", Val: pubsub.String("ACME")},
				{Key: "price", Val: pubsub.Num(101.25)},
				{Key: "halted", Val: pubsub.Bool(false)},
			},
			Payload: bytes.Repeat([]byte{0xab}, 64),
		},
	} {
		one, err := AppendEnvelope(nil, 3, []*pubsub.Event{ev})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(one)
	}
	batch := []*pubsub.Event{
		{ID: pubsub.EventID{Publisher: 2, Seq: 7}, Topic: "a", Payload: []byte("x")},
		{ID: pubsub.EventID{Publisher: 2, Seq: 8}, Topic: "b",
			Attrs: []pubsub.Attr{{Key: "k", Val: pubsub.Num(1)}}},
	}
	multi, err := AppendEnvelope(nil, 2, batch)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(multi)
	// Membership vocabulary: offers, replies, joins and leaves, empty
	// and full.
	entries := []ViewEntry{{ID: 4, Age: 0}, {ID: 90, Age: 3}, {ID: 0xffffffff, Age: 0xffff}}
	for _, kind := range []byte{KindShuffleOffer, KindShuffleReply, KindJoin, KindLeave} {
		for _, n := range []int{0, len(entries)} {
			m, err := AppendMembership(nil, kind, 17, entries[:n])
			if err != nil {
				f.Fatal(err)
			}
			f.Add(m)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xfa, 0x15})

	f.Fuzz(func(t *testing.T, data []byte) {
		var env Envelope
		if err := DecodeEnvelope(data, &env); err != nil {
			return // rejected: fine, as long as it did not panic
		}
		var back []byte
		var err error
		if env.Kind == KindEvents {
			back, err = AppendEnvelope(nil, env.Sender, env.Events)
		} else {
			back, err = AppendMembership(nil, env.Kind, env.Sender, env.Entries)
		}
		if err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("non-canonical encoding accepted:\n in  %x\n out %x", data, back)
		}
	})
}
