// Package wire is the binary codec for the live runtime's message
// vocabulary: events (with typed attributes and payload), event IDs,
// membership view entries, and the envelope that frames each protocol
// message with its kind and sender — event gossip (KindEvents) and the
// membership traffic (KindShuffleOffer, KindShuffleReply, KindJoin,
// KindLeave).
//
// The format is compact, big-endian, and length-prefixed at every
// variable-size field. An envelope is a fixed 16-byte header followed by
// the kind's records back to back: event records are self-delimiting
// (topic, attribute keys, string values and payload all carry explicit
// lengths), membership entries are fixed 6-byte cells, and in both cases
// the decoder walks the body with a bounds-checked cursor and must land
// exactly on the last byte. Decoding is hardened against truncated and
// hostile input: it never panics, never reads past the buffer, validates
// every kind/flag byte, and cross-checks the header's count and
// body-length fields against what it actually consumed (FuzzWireDecode
// keeps it that way).
//
// Two deliberate invariants tie the codec to the rest of the system:
//
//   - An event record's layout is byte-for-byte the pubsub
//     MarshalBinary layout, so pubsub.Event.WireSize is the exact
//     encoded size of a record.
//   - EnvelopeSize(events) == gossip.MsgWireSize(events): the 16-byte
//     envelope header matches gossip.MsgHeaderSize. Fairness accounting
//     has always charged MsgWireSize; with this codec the number of
//     bytes charged and the number of bytes on the wire are the same
//     number, which keeps ChanTransport ledgers byte-identical to the
//     pre-codec live runtime. The same discipline extends to membership
//     traffic: EntryWireSize == membership.EntryWireSize, so the shuffle
//     bytes the ledger charges as infrastructure contribution are
//     exactly the bytes a shuffle envelope occupies on the wire.
//
// Encoding is allocation-conscious: Append* functions append into a
// caller-provided buffer (encode a fanout's envelope once, reuse
// nothing, share the immutable bytes with every destination).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"fairgossip/internal/pubsub"
)

// Wire constants.
const (
	// Magic identifies a fairgossip envelope (first two header bytes).
	Magic uint16 = 0xFA15
	// Version is the only envelope version this codec speaks.
	Version byte = 1
	// HeaderSize is the fixed envelope header:
	// magic(2) version(1) kind(1) sender(4) count(2) reserved(2) body(4).
	// It deliberately equals gossip.MsgHeaderSize so encoded bytes equal
	// accounted bytes.
	HeaderSize = 16
	// EventIDSize is the encoded size of an EventID.
	EventIDSize = 8
	// EntryWireSize is the encoded size of one membership view entry:
	// id(4) + age(2). It equals membership.EntryWireSize, the accounting
	// size the simulated runtime has always charged per entry.
	EntryWireSize = 6
	// eventMinSize is the smallest possible event record: id(8) +
	// topicLen(2) + attrCount(2) + payloadLen(4), all lengths zero.
	eventMinSize = 16
	// attrMinSize is the smallest possible attribute: keyLen(2) + empty
	// key + kind(1) + bool payload(1).
	attrMinSize = 4
)

// Message kinds (header byte 3). KindEvents is 0, which makes every
// pre-kind envelope (the byte was "flags, must be zero") decode
// unchanged as an event batch.
const (
	// KindEvents frames a batch of event records — gossip dissemination.
	KindEvents byte = 0
	// KindShuffleOffer carries the initiator's half of a Cyclon view
	// shuffle: a batch of membership entries.
	KindShuffleOffer byte = 1
	// KindShuffleReply answers an offer (or a join) with entries from
	// the responder's view.
	KindShuffleReply byte = 2
	// KindJoin announces a booting peer to its seed. The sender field
	// identifies the joiner; the body carries its (usually empty) view.
	KindJoin byte = 3
	// KindLeave announces a graceful departure: the sender is leaving
	// and hands the receiver its freshest view entries as replacement
	// contacts, so the overlay loses an address without losing degree.
	KindLeave byte = 4

	// maxKind is the highest kind this codec speaks.
	maxKind = KindLeave
)

// ViewEntry is one membership view slot on the wire: a peer id and the
// age (in shuffle periods, saturated at 65535) of the information about
// it. It mirrors membership.Entry without importing protocol logic into
// the codec.
type ViewEntry struct {
	ID  uint32
	Age uint16
}

// Decode errors. Errors wrap one of these sentinels; decode never
// panics and never reads outside the input buffer.
var (
	ErrTruncated = errors.New("wire: truncated message")
	ErrCorrupt   = errors.New("wire: corrupt message")
	ErrMagic     = errors.New("wire: bad magic")
	ErrVersion   = errors.New("wire: unsupported version")
	ErrTooLarge  = errors.New("wire: message exceeds encodable limits")
)

// Envelope is one decoded protocol message: its kind, the sending
// peer, and the kind's payload — Events for KindEvents, Entries for
// the membership kinds (the other slice is always empty).
// DecodeEnvelope reuses the Events and Entries backing arrays across
// calls; the *pubsub.Event values themselves are freshly allocated and
// never alias the input buffer, so receivers own them outright.
type Envelope struct {
	Kind    byte
	Sender  uint32
	Events  []*pubsub.Event
	Entries []ViewEntry
}

// EnvelopeSize returns the exact number of bytes AppendEnvelope will
// produce for this batch. It equals gossip.MsgWireSize(events), the
// size fairness accounting has always charged.
func EnvelopeSize(events []*pubsub.Event) int {
	n := HeaderSize
	for _, ev := range events {
		n += ev.WireSize()
	}
	return n
}

// AppendEnvelope appends the encoded envelope to dst and returns the
// extended slice. On error the returned slice may hold a partial
// encoding and must be discarded.
func AppendEnvelope(dst []byte, sender uint32, events []*pubsub.Event) ([]byte, error) {
	if len(events) > math.MaxUint16 {
		return dst, fmt.Errorf("%w: %d events in one envelope", ErrTooLarge, len(events))
	}
	start := len(dst)
	dst = binary.BigEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, KindEvents)
	dst = binary.BigEndian.AppendUint32(dst, sender)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(events)))
	dst = binary.BigEndian.AppendUint16(dst, 0) // reserved (must be zero)
	dst = binary.BigEndian.AppendUint32(dst, 0) // body length, patched below
	var err error
	for _, ev := range events {
		if dst, err = AppendEvent(dst, ev); err != nil {
			return dst, err
		}
	}
	// The body length is measured off what was actually appended — the
	// hot path already walked every event once for EnvelopeSize; no need
	// to do it again here.
	body := len(dst) - start - HeaderSize
	if uint64(body) > math.MaxUint32 {
		return dst, fmt.Errorf("%w: %d body bytes", ErrTooLarge, body)
	}
	binary.BigEndian.PutUint32(dst[start+12:start+16], uint32(body))
	return dst, nil
}

// DecodeEnvelope decodes data into env. The whole buffer must be
// consumed exactly: short input, trailing bytes, a count/body-length
// mismatch, or any malformed record is an error.
func DecodeEnvelope(data []byte, env *Envelope) error {
	env.Kind = KindEvents
	env.Sender = 0
	env.Events = env.Events[:0]
	env.Entries = env.Entries[:0]
	if len(data) < HeaderSize {
		return fmt.Errorf("%w: %d header bytes of %d", ErrTruncated, len(data), HeaderSize)
	}
	if got := binary.BigEndian.Uint16(data[0:2]); got != Magic {
		return fmt.Errorf("%w: %#04x", ErrMagic, got)
	}
	if data[2] != Version {
		return fmt.Errorf("%w: %d", ErrVersion, data[2])
	}
	if data[3] > maxKind {
		return fmt.Errorf("%w: unknown message kind %#02x", ErrCorrupt, data[3])
	}
	env.Kind = data[3]
	env.Sender = binary.BigEndian.Uint32(data[4:8])
	count := int(binary.BigEndian.Uint16(data[8:10]))
	if rsv := binary.BigEndian.Uint16(data[10:12]); rsv != 0 {
		return fmt.Errorf("%w: nonzero reserved field %#04x", ErrCorrupt, rsv)
	}
	body := int(binary.BigEndian.Uint32(data[12:16]))
	if body != len(data)-HeaderSize {
		return fmt.Errorf("%w: header claims %d body bytes, have %d", ErrCorrupt, body, len(data)-HeaderSize)
	}
	if env.Kind != KindEvents {
		// Membership kinds: the body is exactly count fixed-size cells.
		if body != count*EntryWireSize {
			return fmt.Errorf("%w: %d entries need %d body bytes, have %d",
				ErrCorrupt, count, count*EntryWireSize, body)
		}
		for off := HeaderSize; off < len(data); off += EntryWireSize {
			env.Entries = append(env.Entries, ViewEntry{
				ID:  binary.BigEndian.Uint32(data[off : off+4]),
				Age: binary.BigEndian.Uint16(data[off+4 : off+6]),
			})
		}
		return nil
	}
	// Cheap hostile-count guard before any event allocation.
	if count*eventMinSize > body {
		return fmt.Errorf("%w: %d events cannot fit in %d body bytes", ErrCorrupt, count, body)
	}
	r := reader{buf: data, off: HeaderSize}
	for i := 0; i < count; i++ {
		ev, err := readEvent(&r)
		if err != nil {
			return err
		}
		env.Events = append(env.Events, ev)
	}
	if r.off != len(data) {
		return fmt.Errorf("%w: %d trailing bytes after %d events", ErrCorrupt, len(data)-r.off, count)
	}
	return nil
}

// MembershipSize returns the exact number of bytes AppendMembership
// will produce for n entries — HeaderSize + n·EntryWireSize, the same
// formula the simulated runtime's accounting charges for shuffle
// traffic, so ledger bytes and wire bytes are one number here too.
func MembershipSize(n int) int { return HeaderSize + n*EntryWireSize }

// AppendMembership appends an encoded membership envelope (a shuffle
// offer, shuffle reply, join, or leave) to dst and returns the extended
// slice.
func AppendMembership(dst []byte, kind byte, sender uint32, entries []ViewEntry) ([]byte, error) {
	switch kind {
	case KindShuffleOffer, KindShuffleReply, KindJoin, KindLeave:
	default:
		return dst, fmt.Errorf("%w: %#02x is not a membership kind", ErrCorrupt, kind)
	}
	if len(entries) > math.MaxUint16 {
		return dst, fmt.Errorf("%w: %d entries in one envelope", ErrTooLarge, len(entries))
	}
	dst = binary.BigEndian.AppendUint16(dst, Magic)
	dst = append(dst, Version, kind)
	dst = binary.BigEndian.AppendUint32(dst, sender)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(entries)))
	dst = binary.BigEndian.AppendUint16(dst, 0) // reserved (must be zero)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(entries)*EntryWireSize))
	for _, e := range entries {
		dst = binary.BigEndian.AppendUint32(dst, e.ID)
		dst = binary.BigEndian.AppendUint16(dst, e.Age)
	}
	return dst, nil
}

// AppendEvent appends one event record to dst — the exact pubsub
// MarshalBinary layout, appended instead of allocated. On error the
// returned slice may hold a partial encoding and must be discarded.
func AppendEvent(dst []byte, e *pubsub.Event) ([]byte, error) {
	if len(e.Topic) > math.MaxUint16 {
		return dst, fmt.Errorf("%w: topic of %d bytes", ErrTooLarge, len(e.Topic))
	}
	if len(e.Attrs) > math.MaxUint16 {
		return dst, fmt.Errorf("%w: %d attributes", ErrTooLarge, len(e.Attrs))
	}
	if uint64(len(e.Payload)) > math.MaxUint32 {
		return dst, fmt.Errorf("%w: payload of %d bytes", ErrTooLarge, len(e.Payload))
	}
	dst = binary.BigEndian.AppendUint32(dst, e.ID.Publisher)
	dst = binary.BigEndian.AppendUint32(dst, e.ID.Seq)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(e.Topic)))
	dst = append(dst, e.Topic...)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(e.Attrs)))
	for _, a := range e.Attrs {
		if len(a.Key) > math.MaxUint16 {
			return dst, fmt.Errorf("%w: attribute key of %d bytes", ErrTooLarge, len(a.Key))
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(a.Key)))
		dst = append(dst, a.Key...)
		dst = append(dst, byte(a.Val.Kind()))
		switch a.Val.Kind() {
		case pubsub.KindString:
			s := a.Val.Str()
			if len(s) > math.MaxUint16 {
				return dst, fmt.Errorf("%w: attribute value of %d bytes", ErrTooLarge, len(s))
			}
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
			dst = append(dst, s...)
		case pubsub.KindNum:
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(a.Val.NumVal()))
		case pubsub.KindBool:
			if a.Val.BoolVal() {
				dst = append(dst, 1)
			} else {
				dst = append(dst, 0)
			}
		default:
			return dst, fmt.Errorf("%w: attribute %q has an invalid value", ErrCorrupt, a.Key)
		}
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.Payload)))
	dst = append(dst, e.Payload...)
	return dst, nil
}

// DecodeEvent decodes a single standalone event record, consuming the
// whole buffer exactly (the framing pubsub.Event.UnmarshalBinary
// enforces too).
func DecodeEvent(data []byte) (*pubsub.Event, error) {
	r := reader{buf: data}
	ev, err := readEvent(&r)
	if err != nil {
		return nil, err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-r.off)
	}
	return ev, nil
}

// AppendEventID appends the 8-byte encoding of an event ID.
func AppendEventID(dst []byte, id pubsub.EventID) []byte {
	dst = binary.BigEndian.AppendUint32(dst, id.Publisher)
	return binary.BigEndian.AppendUint32(dst, id.Seq)
}

// DecodeEventID decodes an 8-byte event ID; the buffer must be exactly
// EventIDSize bytes.
func DecodeEventID(data []byte) (pubsub.EventID, error) {
	if len(data) != EventIDSize {
		return pubsub.EventID{}, fmt.Errorf("%w: %d bytes, want %d", ErrCorrupt, len(data), EventIDSize)
	}
	return pubsub.EventID{
		Publisher: binary.BigEndian.Uint32(data[0:4]),
		Seq:       binary.BigEndian.Uint32(data[4:8]),
	}, nil
}

// readEvent decodes one event record at the reader's cursor. The
// returned event owns all of its memory — nothing aliases r.buf.
func readEvent(r *reader) (*pubsub.Event, error) {
	e := &pubsub.Event{}
	e.ID.Publisher = r.u32()
	e.ID.Seq = r.u32()
	e.Topic = string(r.take(int(r.u16())))
	nattrs := int(r.u16())
	if r.err == nil && nattrs*attrMinSize > r.rem() {
		r.fail(fmt.Errorf("%w: %d attributes cannot fit in %d bytes", ErrCorrupt, nattrs, r.rem()))
	}
	if nattrs > 0 && r.err == nil {
		e.Attrs = make([]pubsub.Attr, 0, nattrs)
	}
	for i := 0; i < nattrs && r.err == nil; i++ {
		key := string(r.take(int(r.u16())))
		kind := pubsub.Kind(r.u8())
		var v pubsub.Value
		switch kind {
		case pubsub.KindString:
			v = pubsub.String(string(r.take(int(r.u16()))))
		case pubsub.KindNum:
			v = pubsub.Num(math.Float64frombits(r.u64()))
		case pubsub.KindBool:
			switch r.u8() {
			case 0:
				v = pubsub.Bool(false)
			case 1:
				v = pubsub.Bool(true)
			default:
				r.fail(fmt.Errorf("%w: invalid bool byte", ErrCorrupt))
			}
		default:
			r.fail(fmt.Errorf("%w: invalid attribute kind %d", ErrCorrupt, kind))
		}
		e.Attrs = append(e.Attrs, pubsub.Attr{Key: key, Val: v})
	}
	plen := int(r.u32())
	if r.err == nil && plen > r.rem() {
		r.fail(fmt.Errorf("%w: payload of %d bytes with %d remaining", ErrTruncated, plen, r.rem()))
	}
	if plen > 0 && r.err == nil {
		e.Payload = append([]byte(nil), r.take(plen)...)
	}
	if r.err != nil {
		return nil, r.err
	}
	return e, nil
}

// reader is a bounds-checked cursor that records the first error and
// then no-ops, so decode paths read linearly without per-field
// branching.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) rem() int { return len(r.buf) - r.off }

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.buf)-r.off {
		r.fail(fmt.Errorf("%w: need %d bytes at offset %d of %d", ErrTruncated, n, r.off, len(r.buf)))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}
