package wire

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"fairgossip/internal/gossip"
	"fairgossip/internal/membership"
	"fairgossip/internal/pubsub"
)

// sampleEvents covers the full vocabulary: every attribute kind, empty
// and non-empty topics/payloads, no attrs and many attrs.
func sampleEvents() []*pubsub.Event {
	return []*pubsub.Event{
		{ID: pubsub.EventID{Publisher: 0, Seq: 1}},
		{ID: pubsub.EventID{Publisher: 3, Seq: 9}, Topic: "news.eu", Payload: []byte("payload")},
		{
			ID:    pubsub.EventID{Publisher: math.MaxUint32, Seq: math.MaxUint32},
			Topic: "ticks",
			Attrs: []pubsub.Attr{
				{Key: "symbol", Val: pubsub.String("ACME")},
				{Key: "price", Val: pubsub.Num(101.25)},
				{Key: "halted", Val: pubsub.Bool(false)},
				{Key: "hot", Val: pubsub.Bool(true)},
				{Key: "", Val: pubsub.String("")},
				{Key: "nan", Val: pubsub.Num(math.NaN())},
				{Key: "inf", Val: pubsub.Num(math.Inf(-1))},
				{Key: "zero", Val: pubsub.Num(0)},
			},
			Payload: bytes.Repeat([]byte{0, 1, 2, 0xff}, 64),
		},
		{ID: pubsub.EventID{Publisher: 7, Seq: 2}, Topic: strings.Repeat("t", 300)},
	}
}

func eventsEqual(t *testing.T, got, want *pubsub.Event) {
	t.Helper()
	if got.ID != want.ID || got.Topic != want.Topic {
		t.Fatalf("id/topic mismatch: got %v %q, want %v %q", got.ID, got.Topic, want.ID, want.Topic)
	}
	if len(got.Attrs) != len(want.Attrs) {
		t.Fatalf("attr count %d, want %d", len(got.Attrs), len(want.Attrs))
	}
	for i := range want.Attrs {
		g, w := got.Attrs[i], want.Attrs[i]
		if g.Key != w.Key || g.Val.Kind() != w.Val.Kind() {
			t.Fatalf("attr %d: got %v, want %v", i, g, w)
		}
		// NaN != NaN, so compare numeric payloads at the bit level.
		if g.Val.Kind() == pubsub.KindNum {
			if math.Float64bits(g.Val.NumVal()) != math.Float64bits(w.Val.NumVal()) {
				t.Fatalf("attr %d numeric bits differ", i)
			}
		} else if !g.Val.Equal(w.Val) {
			t.Fatalf("attr %d: got %v, want %v", i, g, w)
		}
	}
	if !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("payload mismatch: %q vs %q", got.Payload, want.Payload)
	}
}

// TestEventRecordMatchesPubsubCodec: AppendEvent must produce exactly
// the pubsub MarshalBinary bytes (and therefore exactly WireSize bytes)
// — the invariant that makes encoded size equal accounted size.
func TestEventRecordMatchesPubsubCodec(t *testing.T) {
	for i, ev := range sampleEvents() {
		want, err := ev.MarshalBinary()
		if err != nil {
			t.Fatalf("event %d: MarshalBinary: %v", i, err)
		}
		got, err := AppendEvent(nil, ev)
		if err != nil {
			t.Fatalf("event %d: AppendEvent: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("event %d: AppendEvent diverges from MarshalBinary\n got %x\nwant %x", i, got, want)
		}
		if len(got) != ev.WireSize() {
			t.Fatalf("event %d: encoded %d bytes, WireSize says %d", i, len(got), ev.WireSize())
		}
		back, err := DecodeEvent(got)
		if err != nil {
			t.Fatalf("event %d: DecodeEvent: %v", i, err)
		}
		eventsEqual(t, back, ev)
		// Cross-decoder check: pubsub's decoder accepts our bytes too.
		var pb pubsub.Event
		if err := pb.UnmarshalBinary(got); err != nil {
			t.Fatalf("event %d: pubsub.UnmarshalBinary rejects wire bytes: %v", i, err)
		}
	}
}

// TestEnvelopeRoundTrip: multi-event envelopes round-trip exactly, the
// size matches EnvelopeSize, and EnvelopeSize matches the accounting
// size gossip.MsgWireSize (header parity with gossip.MsgHeaderSize).
func TestEnvelopeRoundTrip(t *testing.T) {
	events := sampleEvents()
	for n := 0; n <= len(events); n++ {
		batch := events[:n]
		buf, err := AppendEnvelope(nil, 42, batch)
		if err != nil {
			t.Fatalf("n=%d: AppendEnvelope: %v", n, err)
		}
		if len(buf) != EnvelopeSize(batch) {
			t.Fatalf("n=%d: encoded %d bytes, EnvelopeSize says %d", n, len(buf), EnvelopeSize(batch))
		}
		if len(buf) != gossip.MsgWireSize(batch) {
			t.Fatalf("n=%d: encoded %d bytes, accounting charges %d — the ledgers would drift", n, len(buf), gossip.MsgWireSize(batch))
		}
		var env Envelope
		if err := DecodeEnvelope(buf, &env); err != nil {
			t.Fatalf("n=%d: DecodeEnvelope: %v", n, err)
		}
		if env.Sender != 42 {
			t.Fatalf("n=%d: sender %d, want 42", n, env.Sender)
		}
		if len(env.Events) != n {
			t.Fatalf("n=%d: decoded %d events", n, len(env.Events))
		}
		for i := range batch {
			eventsEqual(t, env.Events[i], batch[i])
		}
		// Canonical: re-encoding the decoded envelope reproduces the bytes.
		back, err := AppendEnvelope(nil, env.Sender, env.Events)
		if err != nil {
			t.Fatalf("n=%d: re-encode: %v", n, err)
		}
		if !bytes.Equal(back, buf) {
			t.Fatalf("n=%d: decode→encode is not the identity", n)
		}
	}
}

// TestEnvelopeDecodeReusesEventsSlice: the Events backing array is
// recycled across decodes (receivers decode in a loop).
func TestEnvelopeDecodeReusesEventsSlice(t *testing.T) {
	buf, err := AppendEnvelope(nil, 1, sampleEvents())
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := DecodeEnvelope(buf, &env); err != nil {
		t.Fatal(err)
	}
	first := cap(env.Events)
	for i := 0; i < 8; i++ {
		if err := DecodeEnvelope(buf, &env); err != nil {
			t.Fatal(err)
		}
	}
	if cap(env.Events) != first {
		t.Fatalf("Events slice reallocated: cap %d -> %d", first, cap(env.Events))
	}
}

// TestDecodeRejectsHostileInput: a gauntlet of malformed buffers; every
// one must return an error (never panic, never succeed).
func TestDecodeRejectsHostileInput(t *testing.T) {
	good, err := AppendEnvelope(nil, 7, sampleEvents())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"short header": good[:HeaderSize-1],
		"bad magic":    append([]byte{0xde, 0xad}, good[2:]...),
		"bad version":  mutate(good, 2, 99),
		"unknown kind": mutate(good, 3, maxKind+1),
		"kind flipped": mutate(good, 3, KindShuffleOffer), // event body is no entry grid
		"reserved set": mutate(good, 10, 1),
		"body too big": mutate(good, 15, good[15]+1),
		"truncated":    good[:len(good)-3],
	}
	// Truncation sweep: every prefix must fail cleanly. (The body-length
	// field makes all of them header-level mismatches, but the event
	// cursor is exercised by the fuzz target's mutations too.)
	for i := 0; i < len(good); i++ {
		cases["prefix"] = good[:i]
		for name, data := range cases {
			var env Envelope
			if err := DecodeEnvelope(data, &env); err == nil {
				t.Fatalf("%s (prefix %d): decode accepted malformed input", name, i)
			}
		}
		delete(cases, "prefix")
	}
	// A count that cannot fit the body is rejected before allocation.
	huge := append([]byte(nil), good...)
	huge[8], huge[9] = 0xff, 0xff
	var env Envelope
	if err := DecodeEnvelope(huge, &env); err == nil {
		t.Fatal("hostile event count accepted")
	}
}

func mutate(b []byte, at int, v byte) []byte {
	out := append([]byte(nil), b...)
	out[at] = v
	return out
}

// TestDecodedEventsDoNotAliasInput: receivers hand decoded events to
// their buffers while the input buffer may be shared with other
// receivers — nothing in a decoded event may point into it.
func TestDecodedEventsDoNotAliasInput(t *testing.T) {
	src := &pubsub.Event{
		ID: pubsub.EventID{Publisher: 1, Seq: 1}, Topic: "t",
		Attrs:   []pubsub.Attr{{Key: "k", Val: pubsub.String("v")}},
		Payload: []byte("payload"),
	}
	buf, err := AppendEnvelope(nil, 1, []*pubsub.Event{src})
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := DecodeEnvelope(buf, &env); err != nil {
		t.Fatal(err)
	}
	got := env.Events[0]
	for i := range buf {
		buf[i] = 0xff // scribble over the wire bytes
	}
	if got.Topic != "t" || !bytes.Equal(got.Payload, []byte("payload")) {
		t.Fatal("decoded event aliases the input buffer")
	}
	if got.Attrs[0].Key != "k" || got.Attrs[0].Val.Str() != "v" {
		t.Fatal("decoded attribute aliases the input buffer")
	}
}

// TestEventIDRoundTrip: the smallest vocabulary item.
func TestEventIDRoundTrip(t *testing.T) {
	id := pubsub.EventID{Publisher: 0xdeadbeef, Seq: 0x01020304}
	buf := AppendEventID(nil, id)
	if len(buf) != EventIDSize {
		t.Fatalf("encoded %d bytes, want %d", len(buf), EventIDSize)
	}
	back, err := DecodeEventID(buf)
	if err != nil || back != id {
		t.Fatalf("round trip: %v, %v", back, err)
	}
	if _, err := DecodeEventID(buf[:7]); err == nil {
		t.Fatal("short event id accepted")
	}
	if _, err := DecodeEventID(append(buf, 0)); err == nil {
		t.Fatal("long event id accepted")
	}
}

// TestEncodeLimits: unencodable events (oversized fields, invalid
// values) are refused with ErrTooLarge/ErrCorrupt rather than producing
// an undecodable envelope.
func TestEncodeLimits(t *testing.T) {
	if _, err := AppendEvent(nil, &pubsub.Event{Topic: strings.Repeat("x", math.MaxUint16+1)}); err == nil {
		t.Fatal("oversized topic accepted")
	}
	if _, err := AppendEvent(nil, &pubsub.Event{Attrs: []pubsub.Attr{{Key: "z"}}}); err == nil {
		t.Fatal("invalid (zero) attribute value accepted")
	}
	if _, err := AppendEvent(nil, &pubsub.Event{Attrs: []pubsub.Attr{
		{Key: strings.Repeat("k", math.MaxUint16+1), Val: pubsub.Bool(true)},
	}}); err == nil {
		t.Fatal("oversized attribute key accepted")
	}
}

// TestMembershipRoundTrip: decode→encode is the identity for every
// membership kind, the encoded size matches MembershipSize, and the
// per-entry cost matches the accounting constant the simulated runtime
// charges (membership.EntryWireSize) — shuffle bytes charged to the
// fairness ledger are exactly the bytes on the wire.
func TestMembershipRoundTrip(t *testing.T) {
	if EntryWireSize != membership.EntryWireSize {
		t.Fatalf("wire entry is %d bytes, accounting charges %d — shuffle ledgers would drift",
			EntryWireSize, membership.EntryWireSize)
	}
	entries := []ViewEntry{
		{ID: 0, Age: 0},
		{ID: 7, Age: 1},
		{ID: math.MaxUint32, Age: math.MaxUint16},
	}
	for _, kind := range []byte{KindShuffleOffer, KindShuffleReply, KindJoin, KindLeave} {
		for n := 0; n <= len(entries); n++ {
			buf, err := AppendMembership(nil, kind, 9, entries[:n])
			if err != nil {
				t.Fatalf("kind %d n=%d: %v", kind, n, err)
			}
			if len(buf) != MembershipSize(n) {
				t.Fatalf("kind %d n=%d: encoded %d bytes, MembershipSize says %d",
					kind, n, len(buf), MembershipSize(n))
			}
			var env Envelope
			if err := DecodeEnvelope(buf, &env); err != nil {
				t.Fatalf("kind %d n=%d: decode: %v", kind, n, err)
			}
			if env.Kind != kind || env.Sender != 9 {
				t.Fatalf("kind %d n=%d: header mangled: %+v", kind, n, env)
			}
			if len(env.Events) != 0 || len(env.Entries) != n {
				t.Fatalf("kind %d n=%d: decoded %d events, %d entries",
					kind, n, len(env.Events), len(env.Entries))
			}
			for i := range entries[:n] {
				if env.Entries[i] != entries[i] {
					t.Fatalf("kind %d entry %d: got %+v, want %+v", kind, i, env.Entries[i], entries[i])
				}
			}
			back, err := AppendMembership(nil, env.Kind, env.Sender, env.Entries)
			if err != nil {
				t.Fatalf("kind %d n=%d: re-encode: %v", kind, n, err)
			}
			if !bytes.Equal(back, buf) {
				t.Fatalf("kind %d n=%d: decode→encode is not the identity", kind, n)
			}
		}
	}
}

// TestMembershipRejectsMalformed: hostile membership envelopes — a body
// that is not a whole number of entry cells, a count disagreeing with
// the body, and non-membership kinds at the encoder — all fail cleanly.
func TestMembershipRejectsMalformed(t *testing.T) {
	good, err := AppendMembership(nil, KindShuffleOffer, 3, []ViewEntry{{ID: 1, Age: 2}, {ID: 4, Age: 0}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(good); i++ {
		var env Envelope
		if err := DecodeEnvelope(good[:i], &env); err == nil {
			t.Fatalf("prefix of %d bytes accepted", i)
		}
	}
	undercount := mutate(good, 9, good[9]-1) // count 1, body still 2 cells
	var env Envelope
	if err := DecodeEnvelope(undercount, &env); err == nil {
		t.Fatal("count/body mismatch accepted")
	}
	ragged := append(append([]byte(nil), good...), 0xab) // body not a multiple of EntryWireSize
	ragged[15] += 1
	if err := DecodeEnvelope(ragged, &env); err == nil {
		t.Fatal("ragged entry grid accepted")
	}
	if _, err := AppendMembership(nil, KindEvents, 1, nil); err == nil {
		t.Fatal("AppendMembership accepted the events kind")
	}
	if _, err := AppendMembership(nil, maxKind+1, 1, nil); err == nil {
		t.Fatal("AppendMembership accepted an unknown kind")
	}
}

// TestMembershipDecodeReusesEntriesSlice: like the Events slice, the
// Entries backing array is recycled across decodes.
func TestMembershipDecodeReusesEntriesSlice(t *testing.T) {
	buf, err := AppendMembership(nil, KindShuffleReply, 1, []ViewEntry{{ID: 1}, {ID: 2}, {ID: 3}})
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := DecodeEnvelope(buf, &env); err != nil {
		t.Fatal(err)
	}
	first := cap(env.Entries)
	for i := 0; i < 8; i++ {
		if err := DecodeEnvelope(buf, &env); err != nil {
			t.Fatal(err)
		}
	}
	if cap(env.Entries) != first {
		t.Fatalf("Entries slice reallocated: cap %d -> %d", first, cap(env.Entries))
	}
}

// TestKindSwitchClearsPayloads: a decoder whose scratch Envelope last
// held events must not leak them into a membership decode, and vice
// versa.
func TestKindSwitchClearsPayloads(t *testing.T) {
	evBuf, err := AppendEnvelope(nil, 1, sampleEvents())
	if err != nil {
		t.Fatal(err)
	}
	memBuf, err := AppendMembership(nil, KindJoin, 2, []ViewEntry{{ID: 5, Age: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := DecodeEnvelope(evBuf, &env); err != nil {
		t.Fatal(err)
	}
	if err := DecodeEnvelope(memBuf, &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Events) != 0 || len(env.Entries) != 1 || env.Kind != KindJoin {
		t.Fatalf("stale events survived a kind switch: %+v", env)
	}
	if err := DecodeEnvelope(evBuf, &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Entries) != 0 || len(env.Events) != len(sampleEvents()) || env.Kind != KindEvents {
		t.Fatalf("stale entries survived a kind switch: %+v", env)
	}
}

// TestRandomisedRoundTrip: property check over a few hundred randomly
// generated envelopes.
func TestRandomisedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	letters := "abcdefghij.2"
	randStr := func(max int) string {
		n := rng.Intn(max + 1)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(letters[rng.Intn(len(letters))])
		}
		return sb.String()
	}
	for trial := 0; trial < 300; trial++ {
		batch := make([]*pubsub.Event, rng.Intn(6))
		for i := range batch {
			ev := &pubsub.Event{
				ID:    pubsub.EventID{Publisher: rng.Uint32(), Seq: rng.Uint32()},
				Topic: randStr(20),
			}
			for a := rng.Intn(5); a > 0; a-- {
				var v pubsub.Value
				switch rng.Intn(3) {
				case 0:
					v = pubsub.String(randStr(12))
				case 1:
					v = pubsub.Num(rng.NormFloat64())
				default:
					v = pubsub.Bool(rng.Intn(2) == 1)
				}
				ev.Attrs = append(ev.Attrs, pubsub.Attr{Key: randStr(8), Val: v})
			}
			if n := rng.Intn(100); n > 0 {
				ev.Payload = make([]byte, n)
				rng.Read(ev.Payload)
			}
			batch[i] = ev
		}
		sender := rng.Uint32()
		buf, err := AppendEnvelope(nil, sender, batch)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var env Envelope
		if err := DecodeEnvelope(buf, &env); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if env.Sender != sender || len(env.Events) != len(batch) {
			t.Fatalf("trial %d: envelope header mangled", trial)
		}
		for i := range batch {
			eventsEqual(t, env.Events[i], batch[i])
		}
	}
}
