package wire

import (
	"testing"

	"fairgossip/internal/pubsub"
)

// benchBatch is a realistic gossip message: 8 events with a couple of
// attributes and a 64-byte payload each (the scenario workload shape).
func benchBatch() []*pubsub.Event {
	batch := make([]*pubsub.Event, 8)
	for i := range batch {
		batch[i] = &pubsub.Event{
			ID:    pubsub.EventID{Publisher: uint32(i), Seq: uint32(i * 7)},
			Topic: "topic.12",
			Attrs: []pubsub.Attr{
				{Key: "price", Val: pubsub.Num(101.25)},
				{Key: "symbol", Val: pubsub.String("ACME")},
			},
			Payload: make([]byte, 64),
		}
	}
	return batch
}

// BenchmarkWireEncode measures envelope encoding into a reused buffer —
// the per-round sender cost on the live hot path (0 allocs/op once the
// buffer has grown).
func BenchmarkWireEncode(b *testing.B) {
	batch := benchBatch()
	buf := make([]byte, 0, EnvelopeSize(batch))
	b.ReportAllocs()
	b.SetBytes(int64(EnvelopeSize(batch)))
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendEnvelope(buf[:0], 1, batch)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// benchEntries is a full-length shuffle offer (the default ShuffleLen).
func benchEntries() []ViewEntry {
	entries := make([]ViewEntry, 8)
	for i := range entries {
		entries[i] = ViewEntry{ID: uint32(i * 13), Age: uint16(i)}
	}
	return entries
}

// BenchmarkWireEncodeShuffle measures membership-envelope encoding into
// a reused buffer — the per-shuffle sender cost.
func BenchmarkWireEncodeShuffle(b *testing.B) {
	entries := benchEntries()
	buf := make([]byte, 0, MembershipSize(len(entries)))
	b.ReportAllocs()
	b.SetBytes(int64(MembershipSize(len(entries))))
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendMembership(buf[:0], KindShuffleOffer, 1, entries)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireDecodeShuffle measures membership-envelope decoding with
// a reused Envelope — the per-shuffle receiver cost.
func BenchmarkWireDecodeShuffle(b *testing.B) {
	buf, err := AppendMembership(nil, KindShuffleOffer, 1, benchEntries())
	if err != nil {
		b.Fatal(err)
	}
	var env Envelope
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if err := DecodeEnvelope(buf, &env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireDecode measures envelope decoding with a reused Envelope
// — the per-datagram receiver cost (the decoded events themselves are
// fresh allocations by design: receivers own them).
func BenchmarkWireDecode(b *testing.B) {
	batch := benchBatch()
	buf, err := AppendEnvelope(nil, 1, batch)
	if err != nil {
		b.Fatal(err)
	}
	var env Envelope
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		if err := DecodeEnvelope(buf, &env); err != nil {
			b.Fatal(err)
		}
	}
}
