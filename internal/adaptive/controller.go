// Package adaptive implements the §5.2 participation controllers: each
// process adapts its gossip fanout and/or gossip message size (events per
// gossip message, "batch") so that its contribution tracks f times its
// benefit — the fairness target of Fig. 1.
//
// Two controller families are provided, ablated in EXP-A1/A2:
//
//   - AIMD: additive increase when under-contributing, multiplicative
//     decrease when over-contributing (TCP-style, robust but oscillatory).
//   - Proportional: a damped multiplicative P-controller that scales the
//     lever by (desired/actual)^gain (faster convergence, needs a sane
//     gain).
//
// Controllers keep continuous internal state and emit integer levers, so
// small corrections accumulate rather than stall on rounding.
package adaptive

import "math"

// Sample is one control window's observation: the benefit accrued and the
// contribution spent during the window (units are the ledger's — events
// and bytes — but only their ratio matters).
type Sample struct {
	Benefit      float64
	Contribution float64
}

// Limits bound the control levers. The paper's question 3 (minimum
// fanout) is encoded in FanoutMin: gossip reliability requires a floor
// near ln(n) (EXP-A3 measures exactly this).
type Limits struct {
	FanoutMin, FanoutMax int
	BatchMin, BatchMax   int
}

// DefaultLimits returns sane bounds for a system of n processes:
// FanoutMin = ⌈ln n⌉, FanoutMax = 4·FanoutMin, batch within [1, 64].
func DefaultLimits(n int) Limits {
	fmin := int(math.Ceil(math.Log(float64(n))))
	if fmin < 1 {
		fmin = 1
	}
	return Limits{
		FanoutMin: fmin,
		FanoutMax: 4 * fmin,
		BatchMin:  1,
		BatchMax:  64,
	}
}

func (l Limits) clampFanout(f float64) float64 {
	return clamp(f, float64(l.FanoutMin), float64(l.FanoutMax))
}

func (l Limits) clampBatch(b float64) float64 {
	return clamp(b, float64(l.BatchMin), float64(l.BatchMax))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Config parameterises a controller.
type Config struct {
	// TargetRatio is f: the system-wide contribution-per-benefit target.
	TargetRatio float64
	// Tolerance is the relative deadband around the target within which
	// the controller holds still (default 0.1).
	Tolerance float64
	// Gain damps proportional corrections (default 0.5); ignored by AIMD.
	Gain float64
	// Beta is AIMD's multiplicative-decrease factor (default 0.7);
	// ignored by the proportional controller.
	Beta float64
	Limits
}

func (c Config) withDefaults() Config {
	if c.Tolerance <= 0 {
		c.Tolerance = 0.1
	}
	if c.Gain <= 0 {
		c.Gain = 0.5
	}
	if c.Beta <= 0 || c.Beta >= 1 {
		c.Beta = 0.7
	}
	if c.FanoutMax < c.FanoutMin {
		c.FanoutMax = c.FanoutMin
	}
	if c.BatchMax < c.BatchMin {
		c.BatchMax = c.BatchMin
	}
	return c
}

// Controller adapts the two §5.2 levers from windowed samples.
type Controller interface {
	// Update consumes the previous window's sample and returns the levers
	// to use for the next window.
	Update(s Sample) (fanout, batch int)
	// Fanout returns the current fanout lever.
	Fanout() int
	// Batch returns the current batch (gossip message size) lever.
	Batch() int
}

// error01 returns the signed relative error of contribution versus the
// target: 0 on target, +1 means 2× over, −0.5 means at half the target.
// When the desired contribution is 0 (no benefit), any positive
// contribution reads as maximally over target.
func error01(cfg Config, s Sample) float64 {
	desired := cfg.TargetRatio * s.Benefit
	if desired <= 0 {
		if s.Contribution > 0 {
			return 1
		}
		return 0
	}
	return (s.Contribution - desired) / desired
}

// Static is a non-adaptive controller pinning both levers — the paper's
// classic gossip configuration ("a static fanout F and a static size of
// gossip message N", §5.2).
type Static struct {
	F, N int
}

// Update implements Controller (it never changes anything).
func (s Static) Update(Sample) (int, int) { return s.F, s.N }

// Fanout implements Controller.
func (s Static) Fanout() int { return s.F }

// Batch implements Controller.
func (s Static) Batch() int { return s.N }

var (
	_ Controller = Static{}
	_ Controller = (*AIMD)(nil)
	_ Controller = (*Proportional)(nil)
)
