package adaptive

import "testing"

func TestSmoothedAbsorbsOneOffSpike(t *testing.T) {
	// A controller at equilibrium hit by a single benefit outage: the raw
	// AIMD cuts immediately; the smoothed one holds.
	mk := func(alpha float64) Controller {
		inner := NewAIMD(cfg(), LeverFanout, 8, 8)
		if alpha >= 1 {
			return inner
		}
		return NewSmoothed(inner, alpha)
	}
	steady := Sample{Benefit: 10, Contribution: 100} // exactly on target 10×
	spike := Sample{Benefit: 5, Contribution: 100}   // one bad window

	raw := mk(1)
	smooth := mk(0.1)
	for i := 0; i < 10; i++ {
		raw.Update(steady)
		smooth.Update(steady)
	}
	fRaw0, fSmooth0 := raw.Fanout(), smooth.Fanout()
	raw.Update(spike)
	smooth.Update(spike)
	if raw.Fanout() >= fRaw0 {
		t.Fatalf("raw AIMD should cut on the spike: %d -> %d", fRaw0, raw.Fanout())
	}
	if smooth.Fanout() != fSmooth0 {
		t.Fatalf("smoothed AIMD should hold through one spike: %d -> %d", fSmooth0, smooth.Fanout())
	}
}

func TestSmoothedTracksSustainedChange(t *testing.T) {
	s := NewSmoothed(NewAIMD(cfg(), LeverFanout, 8, 8), 0.3)
	// Sustained over-contribution must eventually cut the lever.
	for i := 0; i < 30; i++ {
		s.Update(Sample{Benefit: 0, Contribution: 1000})
	}
	if s.Fanout() != 2 {
		t.Fatalf("smoothed controller never reached the floor: %d", s.Fanout())
	}
	if s.Batch() != 8 {
		t.Fatalf("LeverFanout moved the batch: %d", s.Batch())
	}
}

func TestSmoothedAlphaClamping(t *testing.T) {
	if NewSmoothed(Static{F: 1, N: 1}, -5).alpha != 0.1 {
		t.Fatal("negative alpha not clamped")
	}
	if NewSmoothed(Static{F: 1, N: 1}, 7).alpha != 1 {
		t.Fatal("alpha > 1 not clamped")
	}
}

func TestSmoothedFirstSampleSeedsState(t *testing.T) {
	s := NewSmoothed(NewProportional(cfg(), LeverFanout, 8, 8), 0.1)
	// First sample must not be diluted by a zero initial state: a first
	// window exactly on target must not move anything.
	f0 := s.Fanout()
	f1, _ := s.Update(Sample{Benefit: 10, Contribution: 100})
	if f1 != f0 {
		t.Fatalf("on-target first sample moved the lever: %d -> %d", f0, f1)
	}
}
