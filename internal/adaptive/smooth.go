package adaptive

// Smoothed wraps a controller with exponentially weighted moving-average
// smoothing of its input samples: s_t = α·x_t + (1−α)·s_{t−1}. Windowed
// benefit measurements are noisy (a peer may deliver nothing for one
// window purely by publish-schedule luck); smoothing keeps the controller
// from thrashing on that noise at the cost of slower reaction — the
// stability/agility trade-off the §5.2 convergence questions circle
// around.
type Smoothed struct {
	inner Controller
	alpha float64

	init         bool
	benefit      float64
	contribution float64
}

// NewSmoothed wraps inner with EWMA factor alpha ∈ (0, 1]; alpha = 1
// means no smoothing, smaller means smoother/slower. Out-of-range alphas
// are clamped.
func NewSmoothed(inner Controller, alpha float64) *Smoothed {
	if alpha <= 0 {
		alpha = 0.1
	}
	if alpha > 1 {
		alpha = 1
	}
	return &Smoothed{inner: inner, alpha: alpha}
}

// Update implements Controller.
func (s *Smoothed) Update(sample Sample) (int, int) {
	if !s.init {
		s.benefit = sample.Benefit
		s.contribution = sample.Contribution
		s.init = true
	} else {
		s.benefit = s.alpha*sample.Benefit + (1-s.alpha)*s.benefit
		s.contribution = s.alpha*sample.Contribution + (1-s.alpha)*s.contribution
	}
	return s.inner.Update(Sample{Benefit: s.benefit, Contribution: s.contribution})
}

// Fanout implements Controller.
func (s *Smoothed) Fanout() int { return s.inner.Fanout() }

// Batch implements Controller.
func (s *Smoothed) Batch() int { return s.inner.Batch() }

var _ Controller = (*Smoothed)(nil)
