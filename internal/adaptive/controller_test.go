package adaptive

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func cfg() Config {
	return Config{
		TargetRatio: 10, // contribution should be 10× benefit
		Limits:      Limits{FanoutMin: 2, FanoutMax: 16, BatchMin: 1, BatchMax: 32},
	}
}

func TestStatic(t *testing.T) {
	s := Static{F: 5, N: 8}
	for i := 0; i < 10; i++ {
		f, n := s.Update(Sample{Benefit: float64(i), Contribution: 1e9})
		if f != 5 || n != 8 {
			t.Fatalf("static moved: %d %d", f, n)
		}
	}
	if s.Fanout() != 5 || s.Batch() != 8 {
		t.Fatal("accessors wrong")
	}
}

func TestDefaultLimits(t *testing.T) {
	l := DefaultLimits(1024)
	if l.FanoutMin != 7 { // ceil(ln 1024) = ceil(6.93)
		t.Fatalf("FanoutMin = %d, want 7", l.FanoutMin)
	}
	if l.FanoutMax != 28 || l.BatchMin != 1 || l.BatchMax != 64 {
		t.Fatalf("limits = %+v", l)
	}
	if DefaultLimits(1).FanoutMin != 1 {
		t.Fatal("tiny population floor")
	}
}

func TestAIMDDirections(t *testing.T) {
	a := NewAIMD(cfg(), LeverFanout, 8, 4)
	// Over-contributing: contribution 200 vs desired 10×10=100.
	f0 := a.Fanout()
	f1, _ := a.Update(Sample{Benefit: 10, Contribution: 200})
	if f1 >= f0 {
		t.Fatalf("over-contribution must cut fanout: %d -> %d", f0, f1)
	}
	// Under-contributing: climbs back by +1.
	f2, _ := a.Update(Sample{Benefit: 10, Contribution: 10})
	if f2 != f1+1 {
		t.Fatalf("additive increase expected: %d -> %d", f1, f2)
	}
	// Inside deadband: no movement.
	f3, _ := a.Update(Sample{Benefit: 10, Contribution: 100})
	if f3 != f2 {
		t.Fatalf("deadband violated: %d -> %d", f2, f3)
	}
}

func TestAIMDClamping(t *testing.T) {
	a := NewAIMD(cfg(), LeverFanout, 100, 100)
	if a.Fanout() != 16 || a.Batch() != 32 {
		t.Fatalf("initial clamp failed: %d %d", a.Fanout(), a.Batch())
	}
	for i := 0; i < 50; i++ {
		a.Update(Sample{Benefit: 0, Contribution: 1000}) // always over
	}
	if a.Fanout() != 2 {
		t.Fatalf("fanout must pin at min, got %d", a.Fanout())
	}
	for i := 0; i < 50; i++ {
		a.Update(Sample{Benefit: 1000, Contribution: 0}) // always under
	}
	if a.Fanout() != 16 {
		t.Fatalf("fanout must pin at max, got %d", a.Fanout())
	}
}

func TestAIMDBatchFirstThenFanout(t *testing.T) {
	a := NewAIMD(cfg(), LeverBoth, 8, 16)
	// Persistent over-contribution must drain the batch to its minimum
	// before touching the fanout.
	sawBatchMinBeforeFanoutMove := false
	f0 := a.Fanout()
	for i := 0; i < 60; i++ {
		f, n := a.Update(Sample{Benefit: 1, Contribution: 1e6})
		if f != f0 && n != 1 {
			t.Fatalf("fanout moved while batch=%d > min", n)
		}
		if n == 1 && f == f0 {
			sawBatchMinBeforeFanoutMove = true
		}
	}
	if !sawBatchMinBeforeFanoutMove {
		t.Fatal("batch never reached its minimum")
	}
	if a.Fanout() != 2 || a.Batch() != 1 {
		t.Fatalf("both levers should bottom out: F=%d N=%d", a.Fanout(), a.Batch())
	}
	// Recovery grows the batch first.
	_, n := a.Update(Sample{Benefit: 1000, Contribution: 0})
	if n != 2 || a.Fanout() != 2 {
		t.Fatalf("recovery should grow batch first: F=%d N=%d", a.Fanout(), n)
	}
}

// plant simulates the gossip cost model: contribution per window =
// fanout × batch × eventSize, benefit constant.
func runPlant(t *testing.T, c Controller, benefit float64, windows int) (f, n int) {
	t.Helper()
	const eventSize = 10
	f, n = c.Fanout(), c.Batch()
	for i := 0; i < windows; i++ {
		contribution := float64(f*n) * eventSize
		f, n = c.Update(Sample{Benefit: benefit, Contribution: contribution})
	}
	return f, n
}

func TestAIMDConvergesOnPlant(t *testing.T) {
	// Target: contribution = 10×benefit = 10×40 = 400 bytes/window
	// → fanout×batch = 40.
	a := NewAIMD(cfg(), LeverBoth, 16, 32)
	f, n := runPlant(t, a, 40, 200)
	got := float64(f * n * 10)
	if got < 250 || got > 600 {
		t.Fatalf("AIMD did not settle near 400: F=%d N=%d (contribution %v)", f, n, got)
	}
}

func TestProportionalConvergesOnPlant(t *testing.T) {
	p := NewProportional(cfg(), LeverBoth, 16, 32)
	f, n := runPlant(t, p, 40, 60)
	got := float64(f * n * 10)
	if got < 300 || got > 520 {
		t.Fatalf("P-controller did not settle near 400: F=%d N=%d (%v)", f, n, got)
	}
}

func TestProportionalFasterThanAIMDFromFar(t *testing.T) {
	// Both start far above target; count windows until within 25%.
	target := 400.0
	within := func(c Controller) int {
		f, n := c.Fanout(), c.Batch()
		for i := 0; i < 500; i++ {
			contribution := float64(f * n * 10)
			if math.Abs(contribution-target) <= 0.25*target {
				return i
			}
			f, n = c.Update(Sample{Benefit: 40, Contribution: contribution})
		}
		return 500
	}
	aimd := within(NewAIMD(cfg(), LeverBoth, 16, 32))
	prop := within(NewProportional(cfg(), LeverBoth, 16, 32))
	if prop > aimd {
		t.Fatalf("proportional (%d windows) slower than AIMD (%d windows)", prop, aimd)
	}
}

func TestProportionalZeroContributionRampsUp(t *testing.T) {
	p := NewProportional(cfg(), LeverFanout, 2, 1)
	f0 := p.Fanout()
	f1, _ := p.Update(Sample{Benefit: 100, Contribution: 0})
	if f1 <= f0 {
		t.Fatalf("zero contribution with benefit must ramp up: %d -> %d", f0, f1)
	}
}

func TestZeroBenefitShedsTowardFloor(t *testing.T) {
	for _, c := range []Controller{
		NewAIMD(cfg(), LeverBoth, 16, 32),
		NewProportional(cfg(), LeverBoth, 16, 32),
	} {
		for i := 0; i < 100; i++ {
			c.Update(Sample{Benefit: 0, Contribution: 100})
		}
		if c.Fanout() != 2 || c.Batch() != 1 {
			t.Fatalf("%T: zero benefit should shed to minimum, F=%d N=%d", c, c.Fanout(), c.Batch())
		}
	}
}

func TestLeverSelectionRespected(t *testing.T) {
	a := NewAIMD(cfg(), LeverBatch, 8, 16)
	for i := 0; i < 30; i++ {
		a.Update(Sample{Benefit: 0, Contribution: 1e6})
	}
	if a.Fanout() != 8 {
		t.Fatalf("LeverBatch moved the fanout to %d", a.Fanout())
	}
	if a.Batch() != 1 {
		t.Fatalf("batch should bottom out, got %d", a.Batch())
	}

	p := NewProportional(cfg(), LeverFanout, 8, 16)
	for i := 0; i < 30; i++ {
		p.Update(Sample{Benefit: 0, Contribution: 1e6})
	}
	if p.Batch() != 16 {
		t.Fatalf("LeverFanout moved the batch to %d", p.Batch())
	}
}

func TestInvalidLeverDefaultsToBoth(t *testing.T) {
	a := NewAIMD(cfg(), Lever(99), 8, 16)
	for i := 0; i < 80; i++ {
		a.Update(Sample{Benefit: 0, Contribution: 1e6})
	}
	if a.Fanout() != 2 || a.Batch() != 1 {
		t.Fatal("invalid lever should behave like LeverBoth")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{TargetRatio: 1, Limits: Limits{FanoutMin: 5, FanoutMax: 2, BatchMin: 4, BatchMax: 1}}.withDefaults()
	if c.Tolerance != 0.1 || c.Gain != 0.5 || c.Beta != 0.7 {
		t.Fatalf("defaults: %+v", c)
	}
	if c.FanoutMax != 5 || c.BatchMax != 4 {
		t.Fatalf("inverted limits not repaired: %+v", c)
	}
}

// Property: controller outputs always stay within limits, for arbitrary
// sample streams.
func TestQuickLeversWithinLimits(t *testing.T) {
	f := func(seed int64, samples []struct{ B, C uint16 }) bool {
		ctrls := []Controller{
			NewAIMD(cfg(), LeverBoth, 8, 8),
			NewAIMD(cfg(), LeverFanout, 8, 8),
			NewProportional(cfg(), LeverBoth, 8, 8),
			NewProportional(cfg(), LeverBatch, 8, 8),
		}
		for _, s := range samples {
			for _, c := range ctrls {
				f, n := c.Update(Sample{Benefit: float64(s.B), Contribution: float64(s.C)})
				if f < 2 || f > 16 || n < 1 || n > 32 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAIMDUpdate(b *testing.B) {
	a := NewAIMD(cfg(), LeverBoth, 8, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Update(Sample{Benefit: float64(i % 50), Contribution: float64((i * 37) % 1000)})
	}
}
