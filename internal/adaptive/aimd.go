package adaptive

import "math"

// Lever selects which §5.2 lever(s) a controller is allowed to move —
// Fig. 3 names both the fanout and the gossip message size.
type Lever uint8

const (
	// LeverFanout adapts only the number of communication partners.
	LeverFanout Lever = iota + 1
	// LeverBatch adapts only the number of events per gossip message.
	LeverBatch
	// LeverBoth adapts the batch first (finer-grained) and spills into
	// the fanout when the batch saturates at a bound.
	LeverBoth
)

// AIMD is the additive-increase / multiplicative-decrease controller.
// Under-contributors raise their lever by one per window; over-
// contributors cut it by factor Beta. This mirrors how TCP resolves the
// same "share fairly without global knowledge" problem.
type AIMD struct {
	cfg   Config
	lever Lever
	f     float64 // continuous fanout state
	n     float64 // continuous batch state
}

// NewAIMD returns an AIMD controller starting from fanout f0 and batch n0
// (clamped into the configured limits).
func NewAIMD(cfg Config, lever Lever, f0, n0 int) *AIMD {
	cfg = cfg.withDefaults()
	if lever < LeverFanout || lever > LeverBoth {
		lever = LeverBoth
	}
	return &AIMD{
		cfg:   cfg,
		lever: lever,
		f:     cfg.clampFanout(float64(f0)),
		n:     cfg.clampBatch(float64(n0)),
	}
}

// Fanout implements Controller.
func (a *AIMD) Fanout() int { return int(math.Round(a.f)) }

// Batch implements Controller.
func (a *AIMD) Batch() int { return int(math.Round(a.n)) }

// Update implements Controller.
func (a *AIMD) Update(s Sample) (int, int) {
	err := error01(a.cfg, s)
	switch {
	case err > a.cfg.Tolerance: // over-contributing → decrease
		a.decrease()
	case err < -a.cfg.Tolerance: // under-contributing → increase
		a.increase()
	}
	return a.Fanout(), a.Batch()
}

func (a *AIMD) decrease() {
	switch a.lever {
	case LeverFanout:
		a.f = a.cfg.clampFanout(a.f * a.cfg.Beta)
	case LeverBatch:
		a.n = a.cfg.clampBatch(a.n * a.cfg.Beta)
	case LeverBoth:
		// Cut the batch first; once the batch is pinned at its minimum,
		// cut the fanout.
		if a.n > float64(a.cfg.BatchMin) {
			a.n = a.cfg.clampBatch(a.n * a.cfg.Beta)
		} else {
			a.f = a.cfg.clampFanout(a.f * a.cfg.Beta)
		}
	}
}

func (a *AIMD) increase() {
	switch a.lever {
	case LeverFanout:
		a.f = a.cfg.clampFanout(a.f + 1)
	case LeverBatch:
		a.n = a.cfg.clampBatch(a.n + 1)
	case LeverBoth:
		if a.n < float64(a.cfg.BatchMax) {
			a.n = a.cfg.clampBatch(a.n + 1)
		} else {
			a.f = a.cfg.clampFanout(a.f + 1)
		}
	}
}

// Proportional is a damped multiplicative P-controller: each window the
// active lever is scaled by (desired/actual)^Gain. It converges in a few
// windows when the plant is roughly linear in the lever (contribution ≈
// fanout × message size), at the cost of needing a sensible gain —
// EXP-A1/A2 sweep exactly this.
type Proportional struct {
	cfg   Config
	lever Lever
	f     float64
	n     float64
}

// NewProportional returns a proportional controller starting from fanout
// f0 and batch n0.
func NewProportional(cfg Config, lever Lever, f0, n0 int) *Proportional {
	cfg = cfg.withDefaults()
	if lever < LeverFanout || lever > LeverBoth {
		lever = LeverBoth
	}
	return &Proportional{
		cfg:   cfg,
		lever: lever,
		f:     cfg.clampFanout(float64(f0)),
		n:     cfg.clampBatch(float64(n0)),
	}
}

// Fanout implements Controller.
func (p *Proportional) Fanout() int { return int(math.Round(p.f)) }

// Batch implements Controller.
func (p *Proportional) Batch() int { return int(math.Round(p.n)) }

// Update implements Controller.
func (p *Proportional) Update(s Sample) (int, int) {
	desired := p.cfg.TargetRatio * s.Benefit
	err := error01(p.cfg, s)
	if err > -p.cfg.Tolerance && err < p.cfg.Tolerance {
		return p.Fanout(), p.Batch() // inside the deadband
	}
	var scale float64
	switch {
	case s.Contribution <= 0 && desired > 0:
		scale = 2 // we contributed nothing but should have: ramp up fast
	case desired <= 0:
		scale = 0.5 // no benefit: shed work toward the floor
	default:
		scale = math.Pow(desired/s.Contribution, p.cfg.Gain)
	}
	switch p.lever {
	case LeverFanout:
		p.f = p.cfg.clampFanout(p.f * scale)
	case LeverBatch:
		p.n = p.cfg.clampBatch(p.n * scale)
	case LeverBoth:
		// Split the correction across both levers: contribution is the
		// product fanout×batch, so each lever takes the square root of
		// the correction.
		half := math.Sqrt(scale)
		p.n = p.cfg.clampBatch(p.n * half)
		p.f = p.cfg.clampFanout(p.f * half)
	}
	return p.Fanout(), p.Batch()
}
