package structured

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fairgossip/internal/fairness"
)

func TestRingIdentifiersDistinctAndSorted(t *testing.T) {
	r := NewRing(256, 1)
	if r.Len() != 256 {
		t.Fatalf("Len = %d", r.Len())
	}
	seen := make(map[uint64]bool)
	for i := 0; i < r.Len(); i++ {
		if seen[r.ID(i)] {
			t.Fatal("duplicate ring identifier")
		}
		seen[r.ID(i)] = true
	}
}

func TestClosestIsTrueArgmin(t *testing.T) {
	r := NewRing(64, 2)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		key := rng.Uint64()
		got := r.Closest(key)
		best, bestD := 0, circularDist(r.ID(0), key)
		for i := 1; i < r.Len(); i++ {
			if d := circularDist(r.ID(i), key); d < bestD {
				best, bestD = i, d
			}
		}
		if circularDist(r.ID(got), key) != bestD {
			t.Fatalf("Closest(%x) = node %d (dist %d), want node %d (dist %d)",
				key, got, circularDist(r.ID(got), key), best, bestD)
		}
	}
}

func TestRouteTerminatesAtRendezvous(t *testing.T) {
	r := NewRing(128, 4)
	rng := rand.New(rand.NewSource(5))
	var totalHops int
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		key := rng.Uint64()
		from := rng.Intn(r.Len())
		path, err := r.Route(from, key)
		if err != nil {
			t.Fatal(err)
		}
		if path[0] != from {
			t.Fatal("path must start at source")
		}
		if last := path[len(path)-1]; last != r.Closest(key) {
			t.Fatalf("path ends at %d, rendezvous is %d", last, r.Closest(key))
		}
		// No repeated nodes.
		seen := map[int]bool{}
		for _, n := range path {
			if seen[n] {
				t.Fatalf("path revisits node %d: %v", n, path)
			}
			seen[n] = true
		}
		totalHops += len(path) - 1
	}
	// Prefix routing should average O(log16 n) ≈ 2 hops for n=128;
	// anything above 8 signals broken routing.
	if avg := float64(totalHops) / trials; avg > 8 {
		t.Fatalf("average hops %.2f too high", avg)
	}
}

func TestCircularDistWraparound(t *testing.T) {
	const max = ^uint64(0)
	if d := circularDist(max, 0); d != 1 {
		t.Fatalf("wraparound dist = %d, want 1", d)
	}
	if d := circularDist(0, max); d != 1 {
		t.Fatalf("wraparound dist = %d, want 1", d)
	}
	if d := circularDist(5, 5); d != 0 {
		t.Fatalf("self dist = %d", d)
	}
}

func TestSharedDigits(t *testing.T) {
	if got := sharedDigits(0xABCD000000000000, 0xABCE000000000000); got != 3 {
		t.Fatalf("sharedDigits = %d, want 3", got)
	}
	if got := sharedDigits(5, 5); got != digits {
		t.Fatalf("identical ids share %d digits", got)
	}
	if got := sharedDigits(0, 1<<63); got != 0 {
		t.Fatalf("opposite ids share %d digits", got)
	}
}

func TestKeyForTopicStableAndSpread(t *testing.T) {
	if KeyForTopic("sports") != KeyForTopic("sports") {
		t.Fatal("hash not deterministic")
	}
	if KeyForTopic("sports") == KeyForTopic("politics") {
		t.Fatal("distinct topics collided (astronomically unlikely)")
	}
}

func TestScribeSubscribePublishDeliver(t *testing.T) {
	r := NewRing(128, 7)
	led := fairness.NewLedger(128, fairness.DefaultWeights())
	sc := NewScribe(r, led)

	subs := []int{3, 17, 42, 99, 120}
	for _, n := range subs {
		if err := sc.Subscribe(n, "news"); err != nil {
			t.Fatal(err)
		}
	}
	delivered, err := sc.Publish(5, "news", 100)
	if err != nil {
		t.Fatal(err)
	}
	if delivered != len(subs) {
		t.Fatalf("delivered %d, want %d", delivered, len(subs))
	}
	for _, n := range subs {
		if led.Account(n).Delivered != 1 {
			t.Fatalf("subscriber %d delivered %d", n, led.Account(n).Delivered)
		}
		if led.Account(n).Filters != 1 {
			t.Fatalf("subscriber %d filters %d", n, led.Account(n).Filters)
		}
	}
	if led.Account(5).Published != 1 {
		t.Fatal("publisher not credited")
	}
}

func TestScribeDuplicateSubscribeIdempotent(t *testing.T) {
	r := NewRing(32, 8)
	led := fairness.NewLedger(32, fairness.DefaultWeights())
	sc := NewScribe(r, led)
	if err := sc.Subscribe(3, "t"); err != nil {
		t.Fatal(err)
	}
	if err := sc.Subscribe(3, "t"); err != nil {
		t.Fatal(err)
	}
	if got := led.Account(3).Filters; got != 1 {
		t.Fatalf("filters = %d after duplicate subscribe", got)
	}
	if d, _ := sc.Publish(0, "t", 10); d != 1 {
		t.Fatalf("delivered %d, want 1", d)
	}
}

func TestScribeUninterestedForwardersExist(t *testing.T) {
	// The §4.1 claim: with enough subscribers, some tree interior nodes
	// are not subscribers yet forward all traffic.
	r := NewRing(256, 9)
	led := fairness.NewLedger(256, fairness.DefaultWeights())
	sc := NewScribe(r, led)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 48; i++ {
		if err := sc.Subscribe(rng.Intn(256), "hot"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sc.Publish(rng.Intn(256), "hot", 64); err != nil {
		t.Fatal(err)
	}
	unfair := sc.UninterestedForwarders("hot")
	if len(unfair) == 0 {
		t.Fatal("no uninterested forwarders — Scribe trees should conscript relays")
	}
	// Those nodes carried app bytes with zero delivered benefit.
	for _, n := range unfair {
		a := led.Account(n)
		if a.Delivered != 0 {
			t.Fatalf("uninterested forwarder %d delivered", n)
		}
		if a.BytesSent[fairness.ClassApp] == 0 {
			t.Fatalf("uninterested forwarder %d sent nothing", n)
		}
	}
}

func TestScribeUnsubscribePrunesLeaves(t *testing.T) {
	r := NewRing(64, 11)
	led := fairness.NewLedger(64, fairness.DefaultWeights())
	sc := NewScribe(r, led)
	if err := sc.Subscribe(7, "t"); err != nil {
		t.Fatal(err)
	}
	before := len(sc.TreeMembers("t"))
	sc.Unsubscribe(7, "t")
	after := len(sc.TreeMembers("t"))
	if after >= before && before > 1 {
		t.Fatalf("prune did not shrink the tree: %d -> %d", before, after)
	}
	if d, _ := sc.Publish(0, "t", 10); d != 0 {
		t.Fatalf("delivered %d after unsubscribe", d)
	}
	if got := led.Account(7).Filters; got != 0 {
		t.Fatalf("filters = %d after unsubscribe", got)
	}
	sc.Unsubscribe(7, "t") // idempotent
}

func TestScribeTreeIsAcyclic(t *testing.T) {
	r := NewRing(200, 12)
	led := fairness.NewLedger(200, fairness.DefaultWeights())
	sc := NewScribe(r, led)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 60; i++ {
		if err := sc.Subscribe(rng.Intn(200), "x"); err != nil {
			t.Fatal(err)
		}
	}
	tr := sc.trees["x"]
	for n := range tr.parent {
		// Walking to the root must terminate.
		cur, steps := n, 0
		for cur != tr.root {
			cur = tr.parent[cur]
			steps++
			if steps > 200 {
				t.Fatalf("cycle reaching root from %d", n)
			}
		}
	}
}

// Property: routing from any source reaches the unique rendezvous.
func TestQuickRouteAlwaysConverges(t *testing.T) {
	r := NewRing(96, 14)
	f := func(key uint64, fromRaw uint8) bool {
		from := int(fromRaw) % r.Len()
		path, err := r.Route(from, key)
		if err != nil {
			return false
		}
		return path[len(path)-1] == r.Closest(key)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(15))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRoute(b *testing.B) {
	r := NewRing(1024, 1)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Route(rng.Intn(1024), rng.Uint64()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScribePublish(b *testing.B) {
	r := NewRing(512, 3)
	led := fairness.NewLedger(512, fairness.DefaultWeights())
	sc := NewScribe(r, led)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 128; i++ {
		if err := sc.Subscribe(rng.Intn(512), "bench"); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Publish(rng.Intn(512), "bench", 64); err != nil {
			b.Fatal(err)
		}
	}
}
