package structured

// The package is sim-deterministic: ROADMAP item 3 wires it into the
// live runtime as a pluggable Disseminator, so it is held to the same
// fixed-seed reproducibility bar as the sim packages now, before the
// refactor lands.
//fair:deterministic

import (
	"sort"

	"fairgossip/internal/fairness"
)

// Scribe implements Scribe-style application-level multicast: per-topic
// rendezvous trees embedded in the prefix-routing overlay. Subscribers
// route JOIN messages toward the topic's rendezvous node; every node on
// the path becomes a forwarder of the tree *whether or not it is
// interested* — the unfairness the paper calls out in §4.1.
type Scribe struct {
	ring   *Ring
	ledger *fairness.Ledger
	trees  map[string]*tree
	subs   map[string]map[int]bool
}

type tree struct {
	root     int
	parent   map[int]int   // child → parent (root maps to itself)
	children map[int][]int // parent → ordered children
}

// Wire-size constants for accounting (bytes).
const (
	JoinMsgSize     = 32
	PublishOverhead = 16
)

// NewScribe builds a Scribe instance over a ring, charging costs to the
// ledger.
func NewScribe(ring *Ring, ledger *fairness.Ledger) *Scribe {
	return &Scribe{
		ring:   ring,
		ledger: ledger,
		trees:  make(map[string]*tree),
		subs:   make(map[string]map[int]bool),
	}
}

func (s *Scribe) treeFor(topic string) *tree {
	t, ok := s.trees[topic]
	if !ok {
		root := s.ring.Closest(KeyForTopic(topic))
		t = &tree{
			root:     root,
			parent:   map[int]int{root: root},
			children: make(map[int][]int),
		}
		s.trees[topic] = t
	}
	return t
}

// Subscribe joins node to the topic's multicast tree: a JOIN routes
// toward the rendezvous, grafting onto the first node already in the
// tree. Each hop is charged as infrastructure contribution to its
// sender, and the subscriber's filter count is incremented.
func (s *Scribe) Subscribe(node int, topic string) error {
	if s.subs[topic] == nil {
		s.subs[topic] = make(map[int]bool)
	}
	if s.subs[topic][node] {
		return nil
	}
	s.subs[topic][node] = true
	s.bumpFilters(node, +1)

	t := s.treeFor(topic)
	if _, inTree := t.parent[node]; inTree {
		return nil
	}
	path, err := s.ring.Route(node, KeyForTopic(topic))
	if err != nil {
		return err
	}
	for i := 0; i+1 < len(path); i++ {
		child, par := path[i], path[i+1]
		s.ledger.AddSend(child, fairness.ClassInfra, JoinMsgSize)
		if _, inTree := t.parent[child]; !inTree {
			t.parent[child] = par
			t.children[par] = append(t.children[par], child)
		} else {
			break // grafted onto the existing tree
		}
	}
	return nil
}

// Unsubscribe removes the node's interest. Scribe keeps it as a
// forwarder if it has children (pruning only leaf non-subscribers, as in
// the original protocol).
func (s *Scribe) Unsubscribe(node int, topic string) {
	if !s.subs[topic][node] {
		return
	}
	delete(s.subs[topic], node)
	s.bumpFilters(node, -1)
	t := s.trees[topic]
	if t == nil {
		return
	}
	// Prune while the node is a childless non-subscriber non-root.
	for cur := node; cur != t.root && len(t.children[cur]) == 0 && !s.subs[topic][cur]; {
		par := t.parent[cur]
		delete(t.parent, cur)
		kids := t.children[par]
		for i, k := range kids {
			if k == cur {
				t.children[par] = append(kids[:i], kids[i+1:]...)
				break
			}
		}
		cur = par
	}
}

func (s *Scribe) bumpFilters(node, delta int) {
	a := s.ledger.Account(node)
	s.ledger.SetFilters(node, a.Filters+delta)
}

// Publish routes the event from the publisher to the rendezvous and
// disseminates it down the tree. Forwarding costs are charged to each
// sender (application class); subscribers record deliveries. It returns
// the number of deliveries.
func (s *Scribe) Publish(node int, topic string, eventSize int) (int, error) {
	t := s.treeFor(topic)
	size := eventSize + PublishOverhead
	s.ledger.AddPublish(node, eventSize)

	// Route to the rendezvous.
	path, err := s.ring.Route(node, KeyForTopic(topic))
	if err != nil {
		return 0, err
	}
	for i := 0; i+1 < len(path); i++ {
		s.ledger.AddSend(path[i], fairness.ClassApp, size)
	}

	// Tree dissemination from the root.
	delivered := 0
	if s.subs[topic][t.root] {
		s.ledger.AddDelivery(t.root)
		delivered++
	}
	queue := []int{t.root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, child := range t.children[cur] {
			s.ledger.AddSend(cur, fairness.ClassApp, size)
			if s.subs[topic][child] {
				s.ledger.AddDelivery(child)
				delivered++
			}
			queue = append(queue, child)
		}
	}
	return delivered, nil
}

// Subscribers returns the current subscriber set of a topic, in node
// order (map iteration is scheduler-random; callers compare and report).
func (s *Scribe) Subscribers(topic string) []int {
	out := make([]int, 0, len(s.subs[topic]))
	for n := range s.subs[topic] {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// TreeMembers returns every node currently part of the topic's tree
// (root, forwarders, subscribers).
func (s *Scribe) TreeMembers(topic string) []int {
	t := s.trees[topic]
	if t == nil {
		return nil
	}
	out := make([]int, 0, len(t.parent))
	for n := range t.parent {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// UninterestedForwarders returns tree members with children that are not
// subscribed to the topic — the processes "contributing without
// benefiting from the system" (§4.1).
func (s *Scribe) UninterestedForwarders(topic string) []int {
	t := s.trees[topic]
	if t == nil {
		return nil
	}
	var out []int
	for n := range t.parent {
		if len(t.children[n]) > 0 && !s.subs[topic][n] {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// ForwardEdgeStats counts the topic tree's forwarding edges (one send per
// edge per event, charged to the parent) and how many of them are
// performed by nodes not subscribed to the topic.
func (s *Scribe) ForwardEdgeStats(topic string) (foreign, total int) {
	t := s.trees[topic]
	if t == nil {
		return 0, 0
	}
	for parent, kids := range t.children {
		total += len(kids)
		if !s.subs[topic][parent] {
			foreign += len(kids)
		}
	}
	return foreign, total
}

// ForeignForwardFraction returns ForwardEdgeStats as a fraction (0 when
// the tree has no edges).
func (s *Scribe) ForeignForwardFraction(topic string) float64 {
	foreign, total := s.ForwardEdgeStats(topic)
	if total == 0 {
		return 0
	}
	return float64(foreign) / float64(total)
}
