// Package structured implements the §4.1 baseline: a Pastry-like
// prefix-routing identifier space and Scribe-style rendezvous multicast
// trees built on top of it.
//
// Substitution note (documented in DESIGN.md): real Pastry optimises
// routing-table entries for network proximity. The paper's fairness
// argument depends only on *who forwards* — i.e. on tree membership
// induced by prefix routes — so this implementation routes on the
// identifier space alone and builds routing state from the global node
// list (the simulator's omniscience stands in for Pastry's join
// protocol). Message costs are charged to a fairness.Ledger exactly like
// the gossip protocols charge theirs.
package structured

import (
	"fmt"
	"math/rand"
	"sort"
)

// digits is the number of 4-bit digits in a 64-bit identifier.
const digits = 16

// Ring is a population of n nodes with random 64-bit identifiers,
// supporting Pastry-style prefix routing. Node indices are the dense
// simulation IDs; ring identifiers are the DHT coordinates.
type Ring struct {
	ids    []uint64 // ids[i] = ring identifier of node i
	sorted []int    // node indices sorted by identifier
}

// NewRing assigns deterministic pseudo-random identifiers to n nodes.
func NewRing(n int, seed int64) *Ring {
	rng := rand.New(rand.NewSource(seed))
	r := &Ring{ids: make([]uint64, n), sorted: make([]int, n)}
	used := make(map[uint64]struct{}, n)
	for i := 0; i < n; i++ {
		for {
			id := rng.Uint64()
			if _, dup := used[id]; !dup {
				used[id] = struct{}{}
				r.ids[i] = id
				break
			}
		}
		r.sorted[i] = i
	}
	sort.Slice(r.sorted, func(a, b int) bool { return r.ids[r.sorted[a]] < r.ids[r.sorted[b]] })
	return r
}

// Len returns the population size.
func (r *Ring) Len() int { return len(r.ids) }

// ID returns node i's ring identifier.
func (r *Ring) ID(i int) uint64 { return r.ids[i] }

// circularDist is the shorter way around the 2^64 ring between a and b.
func circularDist(a, b uint64) uint64 {
	d := a - b
	if b > a {
		d = b - a
	}
	if d > (1 << 63) {
		d = -d // wraparound: 2^64 - d in uint64 arithmetic
	}
	return d
}

// sharedDigits counts the leading 4-bit digits a and b have in common.
func sharedDigits(a, b uint64) int {
	for i := 0; i < digits; i++ {
		shift := uint(60 - 4*i)
		if (a>>shift)&0xF != (b>>shift)&0xF {
			return i
		}
	}
	return digits
}

// Closest returns the node whose identifier is circularly closest to key
// (the rendezvous node for that key).
func (r *Ring) Closest(key uint64) int {
	// Binary search on the sorted ring, then compare the two neighbours.
	n := len(r.sorted)
	pos := sort.Search(n, func(i int) bool { return r.ids[r.sorted[i]] >= key })
	best := r.sorted[pos%n]
	for _, cand := range []int{r.sorted[(pos+n-1)%n], r.sorted[(pos+1)%n]} {
		if circularDist(r.ids[cand], key) < circularDist(r.ids[best], key) {
			best = cand
		}
	}
	return best
}

// NextHop returns the node cur forwards to when routing toward key, or
// cur itself when cur is the destination.
//
// Pastry's routing table holds, per (prefix-row, digit) slot, *one* node
// with that prefix — not the globally best match — so a route fixes one
// digit level per hop. We emulate that: the next hop is the circularly
// closest node among those sharing the *smallest achievable* strictly
// longer prefix with the key. When no longer prefix is achievable, the
// leaf-set rule applies: move strictly numerically closer.
func (r *Ring) NextHop(cur int, key uint64) int {
	dest := r.Closest(key)
	if cur == dest {
		return cur
	}
	curShared := sharedDigits(r.ids[cur], key)
	curDist := circularDist(r.ids[cur], key)

	// Smallest level > curShared achievable. Among that level's
	// candidates, tie-break by XOR proximity to cur's own identifier:
	// real Pastry nodes fill the same routing-table slot with different
	// peers, so different sources route through different interior nodes
	// — without this, every source funnels through one key-determined
	// hub and multicast trees degenerate into stars.
	bestLevel := digits + 1
	bestPrefix := -1
	bestLeaf, bestLeafDist := -1, curDist
	for i := range r.ids {
		if i == cur {
			continue
		}
		s := sharedDigits(r.ids[i], key)
		d := circularDist(r.ids[i], key)
		if s > curShared {
			switch {
			case s < bestLevel:
				bestLevel = s
				bestPrefix = i
			case s == bestLevel && bestPrefix >= 0 &&
				r.ids[i]^r.ids[cur] < r.ids[bestPrefix]^r.ids[cur]:
				bestPrefix = i
			}
		}
		if d < bestLeafDist {
			bestLeaf, bestLeafDist = i, d
		}
	}
	if bestPrefix >= 0 {
		return bestPrefix
	}
	if bestLeaf >= 0 {
		return bestLeaf
	}
	return dest
}

// Route returns the full path from node `from` to the rendezvous of key,
// inclusive of both endpoints. Prefix hops strictly increase the shared
// prefix level; if a wraparound corner case would revisit a node, the
// route falls back to leaf-set hops (strictly decreasing distance), so it
// always terminates.
func (r *Ring) Route(from int, key uint64) ([]int, error) {
	path := []int{from}
	visited := map[int]bool{from: true}
	cur := from
	for steps := 0; ; steps++ {
		if steps > len(r.ids)+digits {
			return nil, fmt.Errorf("structured: routing loop from %d toward %x", from, key)
		}
		next := r.NextHop(cur, key)
		if next == cur {
			return path, nil
		}
		if visited[next] {
			next = r.closerLeaf(cur, key)
			if next == cur {
				return path, nil
			}
		}
		visited[next] = true
		path = append(path, next)
		cur = next
	}
}

// closerLeaf returns the circularly closest node to key that is strictly
// closer than cur (cur itself when cur is the destination).
func (r *Ring) closerLeaf(cur int, key uint64) int {
	best, bestDist := cur, circularDist(r.ids[cur], key)
	for i := range r.ids {
		if d := circularDist(r.ids[i], key); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// KeyForTopic hashes a topic string onto the ring: FNV-1a with a
// murmur-style finalizer. The finalizer matters: plain FNV of strings
// sharing a prefix ("topic-000", "topic-001", …) differs only in the low
// bits, and ring placement is governed by the high bits — without mixing,
// every such topic would land on the same rendezvous neighbourhood.
func KeyForTopic(topic string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i := 0; i < len(topic); i++ {
		h ^= uint64(topic[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
