package structured

import (
	"math/rand"
	"testing"

	"fairgossip/internal/fairness"
	"fairgossip/internal/stats"
	"fairgossip/internal/workload"
)

func TestIndexLookupReachesRendezvous(t *testing.T) {
	r := NewRing(64, 1)
	led := fairness.NewLedger(64, fairness.DefaultWeights())
	ix := NewIndex(r, led)
	got, err := ix.Lookup(3, "sports")
	if err != nil {
		t.Fatal(err)
	}
	if want := r.Closest(KeyForTopic("sports")); got != want {
		t.Fatalf("lookup returned %d, rendezvous is %d", got, want)
	}
	if ix.Served(got) != 1 {
		t.Fatal("rendezvous duty not counted")
	}
	// The answer costs the rendezvous infra bytes.
	if led.Account(got).BytesSent[fairness.ClassInfra] == 0 {
		t.Fatal("rendezvous answer not charged")
	}
}

func TestIndexSelfLookup(t *testing.T) {
	r := NewRing(16, 2)
	led := fairness.NewLedger(16, fairness.DefaultWeights())
	ix := NewIndex(r, led)
	rendezvous := r.Closest(KeyForTopic("x"))
	// Lookup from the rendezvous itself: no relays, still served.
	if got, err := ix.Lookup(rendezvous, "x"); err != nil || got != rendezvous {
		t.Fatalf("self lookup: %d, %v", got, err)
	}
	if ix.Served(rendezvous) != 1 {
		t.Fatal("self lookup not served")
	}
}

func TestIndexHotspotUnderZipfTopics(t *testing.T) {
	// §4.1: nodes near popular topics' rendezvous suffer. Zipf lookups
	// concentrate duty on a few nodes.
	const n = 128
	r := NewRing(n, 3)
	led := fairness.NewLedger(n, fairness.DefaultWeights())
	ix := NewIndex(r, led)
	topics := workload.NewTopics(32, 1.2)
	rng := rand.New(rand.NewSource(4))
	for k := 0; k < 2000; k++ {
		if _, err := ix.Lookup(rng.Intn(n), topics.Sample(rng)); err != nil {
			t.Fatal(err)
		}
	}
	load := ix.LoadVector()
	max := stats.Quantile(load, 1)
	med := stats.Quantile(load, 0.5)
	if max < 5*med+5 {
		t.Fatalf("no index hotspot: max %.0f vs median %.0f", max, med)
	}
	if g := stats.Gini(load); g < 0.4 {
		t.Fatalf("index duty Gini %.3f, expected concentrated", g)
	}
}

func TestIndexRelayedCountsExcludeEndpoints(t *testing.T) {
	const n = 128
	r := NewRing(n, 5)
	led := fairness.NewLedger(n, fairness.DefaultWeights())
	ix := NewIndex(r, led)
	var total uint64
	for from := 0; from < n; from++ {
		if _, err := ix.Lookup(from, "deep.topic"); err != nil {
			t.Fatal(err)
		}
	}
	rendezvous := r.Closest(KeyForTopic("deep.topic"))
	for i := 0; i < n; i++ {
		total += ix.Relayed(i)
	}
	// The rendezvous never relays its own answers.
	if ix.Relayed(rendezvous) > 0 {
		t.Fatal("rendezvous counted as relay for its own lookups")
	}
	if total == 0 {
		t.Fatal("no relays recorded across 128 lookups")
	}
}
