package structured

import (
	"fairgossip/internal/fairness"
)

// Index models the DKS-style index DHT of §4.1: "use multiple DHTs to
// group processes according to their interest and have a special index
// DHT that allows subscribers to find a correct topic". Every subscribe
// starts with a lookup routed through the index; the paper's complaint is
// that "processes in the index DHT which are close to frequently
// contacted rendezvous nodes will suffer" — they relay and answer
// lookups for topics they do not care about.
type Index struct {
	ring   *Ring
	ledger *fairness.Ledger

	served  []uint64 // lookups answered (rendezvous duty)
	relayed []uint64 // lookups forwarded (path duty)
}

// LookupMsgSize is the accounting size of one index lookup hop.
const LookupMsgSize = 24

// NewIndex builds an index DHT over the ring, charging costs to ledger.
func NewIndex(ring *Ring, ledger *fairness.Ledger) *Index {
	return &Index{
		ring:    ring,
		ledger:  ledger,
		served:  make([]uint64, ring.Len()),
		relayed: make([]uint64, ring.Len()),
	}
}

// Lookup routes a topic lookup from node `from` to the topic's index
// rendezvous and returns the rendezvous (the contact for that topic's
// group). Every hop sender is charged infrastructure bytes; the
// rendezvous is charged for the answer.
func (ix *Index) Lookup(from int, topic string) (int, error) {
	path, err := ix.ring.Route(from, KeyForTopic(topic))
	if err != nil {
		return 0, err
	}
	for i := 0; i+1 < len(path); i++ {
		ix.ledger.AddSend(path[i], fairness.ClassInfra, LookupMsgSize)
		if i > 0 {
			ix.relayed[path[i]]++
		}
	}
	rendezvous := path[len(path)-1]
	// The rendezvous answers the originator directly.
	ix.ledger.AddSend(rendezvous, fairness.ClassInfra, LookupMsgSize)
	ix.served[rendezvous]++
	return rendezvous, nil
}

// Served returns how many lookups node i answered as rendezvous.
func (ix *Index) Served(i int) uint64 { return ix.served[i] }

// Relayed returns how many lookups node i forwarded as a path relay.
func (ix *Index) Relayed(i int) uint64 { return ix.relayed[i] }

// LoadVector returns each node's total index duty (served + relayed) —
// the distribution EXP-T1 reports.
func (ix *Index) LoadVector() []float64 {
	out := make([]float64, ix.ring.Len())
	for i := range out {
		out[i] = float64(ix.served[i] + ix.relayed[i])
	}
	return out
}
