// Package simnet simulates a point-to-point message network on top of the
// eventsim kernel: configurable latency, i.i.d. message loss, crash/stop
// failures, and network partitions. Every byte that crosses the network is
// accounted per node, which is the raw material of the paper's
// contribution measurements.
package simnet

import (
	"math/rand"
	"time"

	"fairgossip/internal/eventsim"
)

// NodeID is a dense index identifying a simulated process.
type NodeID int

// None is the NodeID zero-value sentinel for "no node".
const None NodeID = -1

// Message is a point-to-point datagram. Payload is protocol-defined and
// passed by reference (the simulator does not serialise); Size is the
// number of bytes the message would occupy on the wire and is what the
// traffic accounting charges.
type Message struct {
	From    NodeID
	To      NodeID
	Payload any
	Size    int
}

// Handler receives delivered messages. Implementations run on the
// simulator goroutine and must not block.
type Handler interface {
	HandleMessage(msg Message)
}

// Refcounted payloads participate in the network's in-flight lifecycle:
// the network retains once per message it accepts into flight (scheduled
// locally or handed to the remote-shard hook) and releases once the
// delivery attempt has fully completed — after the handler returns, or
// at a delivery-time drop. A pooled payload may therefore be recycled
// the moment its last release fires, never earlier, which is what makes
// sharing one envelope across a whole gossip fanout safe.
type Refcounted interface {
	Retain()
	Release()
}

// RemoteFunc receives a message whose destination lives on another
// shard's network, along with the one-way delay already drawn from this
// shard's RNG. The sharded cluster's implementation appends to a
// per-(source, destination) mailbox that is merged — in fixed shard
// order — into the destination network via InjectAt at round barriers.
type RemoteFunc func(msg Message, delay time.Duration)

// LatencyModel draws the one-way delay for a message.
type LatencyModel func(rng *rand.Rand, from, to NodeID) time.Duration

// ConstantLatency returns a model with fixed one-way delay d.
func ConstantLatency(d time.Duration) LatencyModel {
	return func(*rand.Rand, NodeID, NodeID) time.Duration { return d }
}

// UniformLatency returns a model drawing delays uniformly from [lo, hi).
func UniformLatency(lo, hi time.Duration) LatencyModel {
	if hi <= lo {
		return ConstantLatency(lo)
	}
	return func(rng *rand.Rand, _, _ NodeID) time.Duration {
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}
}

// Traffic is the per-node byte/message accounting maintained by the
// network.
type Traffic struct {
	MsgsSent  uint64
	BytesSent uint64
	MsgsRecv  uint64
	BytesRecv uint64
	Dropped   uint64 // messages sent by this node that the network dropped
}

// Config parameterises a Network.
type Config struct {
	// Latency is the one-way delay model. Nil means 1ms constant.
	Latency LatencyModel
	// Loss is the i.i.d. probability in [0,1] that a message is dropped.
	Loss float64
}

// Network is a simulated datagram network. It is driven entirely by the
// eventsim simulator and is not safe for concurrent use.
type Network struct {
	sim      *eventsim.Sim
	cfg      Config
	handlers []Handler // nil entries are remote placeholders (sharded runs)
	up       []bool
	group    []int // partition group; messages cross groups only when healed
	split    bool
	stats    []Traffic
	total    Traffic
	remote   RemoteFunc
}

// New creates an empty network over sim.
func New(sim *eventsim.Sim, cfg Config) *Network {
	if cfg.Latency == nil {
		cfg.Latency = ConstantLatency(time.Millisecond)
	}
	if cfg.Loss < 0 {
		cfg.Loss = 0
	}
	if cfg.Loss > 1 {
		cfg.Loss = 1
	}
	return &Network{sim: sim, cfg: cfg}
}

// Sim returns the underlying simulator.
func (n *Network) Sim() *eventsim.Sim { return n.sim }

// AddNode registers a handler and returns its NodeID. Nodes start up.
func (n *Network) AddNode(h Handler) NodeID {
	id := NodeID(len(n.handlers))
	n.handlers = append(n.handlers, h)
	n.up = append(n.up, true)
	n.group = append(n.group, 0)
	n.stats = append(n.stats, Traffic{})
	return id
}

// AddRemote reserves the next NodeID for a node that lives on another
// shard's network. The slot has no handler; sends toward it are handed
// to the RemoteFunc installed with SetRemote. Its stats slot accumulates
// only what this network observes locally (delivery-time drops charged
// to a remote sender); a sharded cluster sums the per-shard stats to
// recover whole-population counters.
func (n *Network) AddRemote() NodeID {
	id := NodeID(len(n.handlers))
	n.handlers = append(n.handlers, nil)
	n.up = append(n.up, true)
	n.group = append(n.group, 0)
	n.stats = append(n.stats, Traffic{})
	return id
}

// SetRemote installs the cross-shard hand-off for messages addressed to
// AddRemote placeholders. Without one, such sends count as drops.
func (n *Network) SetRemote(fn RemoteFunc) { n.remote = fn }

// InjectAt schedules a message that already cleared the source shard's
// loss and latency draws for local delivery at absolute virtual time at
// (coerced to Now when in the past — the barrier-merge case for
// messages whose nominal delivery time fell inside the closed window).
// Crash and partition state still apply at delivery time, exactly as
// they would for a locally-scheduled message.
func (n *Network) InjectAt(at time.Duration, msg Message) {
	n.sim.ScheduleMsgAt(at, n, eventsim.Msg{
		From:    int32(msg.From),
		To:      int32(msg.To),
		Size:    int32(msg.Size),
		Payload: msg.Payload,
	})
}

// Len returns the number of registered nodes.
func (n *Network) Len() int { return len(n.handlers) }

// Up reports whether the node is currently up.
func (n *Network) Up(id NodeID) bool {
	return n.valid(id) && n.up[id]
}

// SetUp crashes (up=false) or restarts (up=true) a node. Messages in
// flight toward a down node are dropped at delivery time; a down node's
// sends are dropped immediately.
func (n *Network) SetUp(id NodeID, up bool) {
	if n.valid(id) {
		n.up[id] = up
	}
}

// Partition splits the network: nodes in side keep talking to each other
// but lose connectivity with everyone else until Heal is called.
func (n *Network) Partition(side []NodeID) {
	for i := range n.group {
		n.group[i] = 0
	}
	for _, id := range side {
		if n.valid(id) {
			n.group[id] = 1
		}
	}
	n.split = true
}

// Heal removes any partition.
func (n *Network) Heal() { n.split = false }

// SetLatency swaps the one-way delay model mid-run. Nil restores the
// 1ms constant default. Scenario shaping uses it to impose WAN-like
// delay/jitter profiles on the simulated column; messages already in
// flight keep the delay they were scheduled with.
func (n *Network) SetLatency(m LatencyModel) {
	if m == nil {
		m = ConstantLatency(time.Millisecond)
	}
	n.cfg.Latency = m
}

// SetLoss changes the i.i.d. drop probability mid-run (clamped to [0,1]).
// Experiments use it to inject lossy phases.
func (n *Network) SetLoss(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	n.cfg.Loss = p
}

// Stats returns a copy of the traffic counters for one node.
func (n *Network) Stats(id NodeID) Traffic {
	if !n.valid(id) {
		return Traffic{}
	}
	return n.stats[id]
}

// TotalTraffic returns network-wide counters.
func (n *Network) TotalTraffic() Traffic { return n.total }

// Send queues a message for delivery. Loss, partitions and crashes apply.
// Sending from or to an unknown node is a silent drop (dynamic systems
// routinely address departed peers; protocols observe it as loss).
//
//fair:hotpath
func (n *Network) Send(from, to NodeID, payload any, size int) {
	if size < 0 {
		size = 0
	}
	if !n.valid(from) || !n.valid(to) || !n.up[from] {
		return
	}
	n.stats[from].MsgsSent++
	n.stats[from].BytesSent += uint64(size)
	n.total.MsgsSent++
	n.total.BytesSent += uint64(size)

	if n.cfg.Loss > 0 && n.sim.Rand().Float64() < n.cfg.Loss {
		n.stats[from].Dropped++
		n.total.Dropped++
		return
	}
	delay := n.cfg.Latency(n.sim.Rand(), from, to)
	if n.handlers[to] == nil {
		// The destination lives on another shard: hand the message (and
		// the delay already drawn from this shard's stream) to the
		// mailbox hook. A missing hook is a wiring error observed as a
		// counted drop so conservation survives it.
		if n.remote == nil {
			n.stats[from].Dropped++
			n.total.Dropped++
			return
		}
		if rc, ok := payload.(Refcounted); ok {
			rc.Retain()
		}
		n.remote(Message{From: from, To: to, Payload: payload, Size: size}, delay)
		return
	}
	if rc, ok := payload.(Refcounted); ok {
		rc.Retain()
	}
	// The in-flight message rides inline in a pooled kernel event record:
	// no per-send event allocation and no delivery closure (the old
	// `func() { n.deliver(msg) }` capture cost one allocation per message).
	n.sim.ScheduleMsg(delay, n, eventsim.Msg{
		From:    int32(from),
		To:      int32(to),
		Size:    int32(size),
		Payload: payload,
	})
}

// HandleSimMsg implements eventsim.MsgHandler: in-flight messages come
// back from the kernel at their delivery time.
func (n *Network) HandleSimMsg(m eventsim.Msg) {
	n.deliver(Message{From: NodeID(m.From), To: NodeID(m.To), Payload: m.Payload, Size: int(m.Size)})
}

func (n *Network) deliver(msg Message) {
	if !n.up[msg.To] || (n.split && n.group[msg.From] != n.group[msg.To]) {
		n.stats[msg.From].Dropped++
		n.total.Dropped++
		n.releasePayload(msg.Payload)
		return
	}
	n.stats[msg.To].MsgsRecv++
	n.stats[msg.To].BytesRecv += uint64(msg.Size)
	n.total.MsgsRecv++
	n.total.BytesRecv += uint64(msg.Size)
	n.handlers[msg.To].HandleMessage(msg)
	n.releasePayload(msg.Payload)
}

// releasePayload ends the in-flight retention taken in Send: the
// delivery attempt is over and a pooled payload may recycle.
func (n *Network) releasePayload(p any) {
	if rc, ok := p.(Refcounted); ok {
		rc.Release()
	}
}

func (n *Network) valid(id NodeID) bool {
	return id >= 0 && int(id) < len(n.handlers)
}
