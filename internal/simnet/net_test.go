package simnet

import (
	"testing"
	"time"

	"fairgossip/internal/eventsim"
)

// recorder is a Handler that appends every delivery.
type recorder struct {
	got []Message
}

func (r *recorder) HandleMessage(msg Message) { r.got = append(r.got, msg) }

func build(t *testing.T, n int, cfg Config) (*eventsim.Sim, *Network, []*recorder) {
	t.Helper()
	sim := eventsim.New(1)
	net := New(sim, cfg)
	recs := make([]*recorder, n)
	for i := range recs {
		recs[i] = &recorder{}
		if id := net.AddNode(recs[i]); id != NodeID(i) {
			t.Fatalf("AddNode returned %d, want %d", id, i)
		}
	}
	return sim, net, recs
}

func TestDelivery(t *testing.T) {
	sim, net, recs := build(t, 2, Config{Latency: ConstantLatency(5 * time.Millisecond)})
	net.Send(0, 1, "hello", 10)
	sim.Run()
	if len(recs[1].got) != 1 {
		t.Fatalf("got %d messages", len(recs[1].got))
	}
	m := recs[1].got[0]
	if m.From != 0 || m.To != 1 || m.Payload.(string) != "hello" || m.Size != 10 {
		t.Fatalf("message corrupted: %+v", m)
	}
	if sim.Now() != 5*time.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", sim.Now())
	}
}

func TestTrafficAccounting(t *testing.T) {
	sim, net, _ := build(t, 3, Config{})
	net.Send(0, 1, nil, 100)
	net.Send(0, 2, nil, 50)
	net.Send(1, 0, nil, 25)
	sim.Run()
	s0, s1, s2 := net.Stats(0), net.Stats(1), net.Stats(2)
	if s0.MsgsSent != 2 || s0.BytesSent != 150 {
		t.Errorf("node0 sent: %+v", s0)
	}
	if s0.MsgsRecv != 1 || s0.BytesRecv != 25 {
		t.Errorf("node0 recv: %+v", s0)
	}
	if s1.MsgsSent != 1 || s1.BytesRecv != 100 {
		t.Errorf("node1: %+v", s1)
	}
	if s2.MsgsRecv != 1 || s2.BytesRecv != 50 {
		t.Errorf("node2: %+v", s2)
	}
	tot := net.TotalTraffic()
	if tot.MsgsSent != 3 || tot.BytesSent != 175 || tot.MsgsRecv != 3 {
		t.Errorf("total: %+v", tot)
	}
}

func TestLossRateApproximate(t *testing.T) {
	sim, net, recs := build(t, 2, Config{Loss: 0.3})
	const total = 10000
	for i := 0; i < total; i++ {
		net.Send(0, 1, nil, 1)
	}
	sim.Run()
	got := len(recs[1].got)
	// 0.7·10000 = 7000; allow ±3σ ≈ ±137.
	if got < 6800 || got > 7200 {
		t.Fatalf("delivered %d of %d at 30%% loss", got, total)
	}
	if d := net.Stats(0).Dropped; int(d) != total-got {
		t.Fatalf("dropped counter %d, want %d", d, total-got)
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	sim, net, recs := build(t, 2, Config{Latency: ConstantLatency(time.Millisecond)})
	net.SetUp(1, false)
	net.Send(0, 1, nil, 1)
	sim.Run()
	if len(recs[1].got) != 0 {
		t.Fatal("down node received a message")
	}
	// Crash during flight: message sent while up, target goes down before delivery.
	net.SetUp(1, true)
	net.Send(0, 1, nil, 1)
	net.SetUp(1, false)
	sim.Run()
	if len(recs[1].got) != 0 {
		t.Fatal("message delivered to node that crashed in flight")
	}
	// Down nodes cannot send.
	net.Send(1, 0, nil, 1)
	sim.Run()
	if len(recs[0].got) != 0 {
		t.Fatal("down node sent a message")
	}
	if net.Stats(1).MsgsSent != 0 {
		t.Fatal("down node's send was accounted")
	}
	// Restart restores delivery.
	net.SetUp(1, true)
	net.Send(0, 1, nil, 1)
	sim.Run()
	if len(recs[1].got) != 1 {
		t.Fatal("restarted node did not receive")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	sim, net, recs := build(t, 4, Config{})
	net.Partition([]NodeID{0, 1})
	net.Send(0, 1, nil, 1) // same side
	net.Send(0, 2, nil, 1) // cross
	net.Send(3, 2, nil, 1) // same side (other group)
	net.Send(2, 1, nil, 1) // cross
	sim.Run()
	if len(recs[1].got) != 1 || len(recs[2].got) != 1 {
		t.Fatalf("partition semantics wrong: %d %d", len(recs[1].got), len(recs[2].got))
	}
	net.Heal()
	net.Send(0, 2, nil, 1)
	sim.Run()
	if len(recs[2].got) != 2 {
		t.Fatal("heal did not restore connectivity")
	}
}

func TestUnknownAddressesAreSilentDrops(t *testing.T) {
	sim, net, recs := build(t, 1, Config{})
	net.Send(0, 99, nil, 1)
	net.Send(0, None, nil, 1)
	net.Send(99, 0, nil, 1)
	sim.Run()
	if len(recs[0].got) != 0 {
		t.Fatal("unexpected delivery")
	}
	if net.Stats(0).MsgsSent != 0 {
		t.Fatal("sends to unknown nodes must not be accounted")
	}
}

func TestUniformLatencyBounds(t *testing.T) {
	sim := eventsim.New(3)
	model := UniformLatency(2*time.Millisecond, 8*time.Millisecond)
	for i := 0; i < 1000; i++ {
		d := model(sim.Rand(), 0, 1)
		if d < 2*time.Millisecond || d >= 8*time.Millisecond {
			t.Fatalf("latency %v out of bounds", d)
		}
	}
	// Degenerate range collapses to constant.
	c := UniformLatency(5*time.Millisecond, 5*time.Millisecond)
	if d := c(sim.Rand(), 0, 1); d != 5*time.Millisecond {
		t.Fatalf("degenerate uniform = %v", d)
	}
}

func TestLatencyOrderingIndependentMessages(t *testing.T) {
	// With uniform latency, messages may arrive out of send order —
	// verify the simulator delivers each at its own sampled time.
	sim, net, recs := build(t, 2, Config{Latency: UniformLatency(time.Millisecond, 10*time.Millisecond)})
	for i := 0; i < 50; i++ {
		net.Send(0, 1, i, 1)
	}
	sim.Run()
	if len(recs[1].got) != 50 {
		t.Fatalf("delivered %d of 50", len(recs[1].got))
	}
	seen := make(map[int]bool)
	for _, m := range recs[1].got {
		seen[m.Payload.(int)] = true
	}
	if len(seen) != 50 {
		t.Fatal("payload corruption or duplication")
	}
}

func TestNegativeSizeCoerced(t *testing.T) {
	sim, net, recs := build(t, 2, Config{})
	net.Send(0, 1, nil, -5)
	sim.Run()
	if len(recs[1].got) != 1 || recs[1].got[0].Size != 0 {
		t.Fatal("negative size must coerce to 0")
	}
}

func TestSelfSend(t *testing.T) {
	sim, net, recs := build(t, 1, Config{})
	net.Send(0, 0, "me", 3)
	sim.Run()
	if len(recs[0].got) != 1 {
		t.Fatal("self-send not delivered")
	}
}

// checkConservation asserts the network-wide counter invariant: every
// accounted send is eventually delivered or charged to its sender as a
// drop, and per-node counters sum to the totals.
func checkConservation(t *testing.T, net *Network) {
	t.Helper()
	tot := net.TotalTraffic()
	if tot.MsgsSent != tot.MsgsRecv+tot.Dropped {
		t.Fatalf("conservation broken: sent %d != recv %d + dropped %d",
			tot.MsgsSent, tot.MsgsRecv, tot.Dropped)
	}
	var sent, recv, dropped, bytesSent, bytesRecv uint64
	for id := 0; id < net.Len(); id++ {
		s := net.Stats(NodeID(id))
		sent += s.MsgsSent
		recv += s.MsgsRecv
		dropped += s.Dropped
		bytesSent += s.BytesSent
		bytesRecv += s.BytesRecv
	}
	if sent != tot.MsgsSent || recv != tot.MsgsRecv || dropped != tot.Dropped {
		t.Fatalf("per-node sums (%d/%d/%d) disagree with totals (%d/%d/%d)",
			sent, recv, dropped, tot.MsgsSent, tot.MsgsRecv, tot.Dropped)
	}
	if bytesSent != tot.BytesSent || bytesRecv != tot.BytesRecv {
		t.Fatalf("byte sums (%d/%d) disagree with totals (%d/%d)",
			bytesSent, bytesRecv, tot.BytesSent, tot.BytesRecv)
	}
}

func TestDropConservationUnderLoss(t *testing.T) {
	sim, net, _ := build(t, 4, Config{Loss: 0.25})
	for i := 0; i < 4000; i++ {
		net.Send(NodeID(i%4), NodeID((i+1)%4), nil, 8)
	}
	sim.Run()
	checkConservation(t, net)
	if net.TotalTraffic().Dropped == 0 {
		t.Fatal("25% loss produced zero drops")
	}
}

func TestDropConservationUnderPartition(t *testing.T) {
	sim, net, _ := build(t, 6, Config{})
	net.Partition([]NodeID{0, 1, 2})
	for i := 0; i < 600; i++ {
		net.Send(NodeID(i%6), NodeID((i+3)%6), nil, 8) // all cross-partition
	}
	sim.Run()
	checkConservation(t, net)
	// Cross-partition sends are charged to the sender at delivery time.
	if d := net.TotalTraffic().Dropped; d != 600 {
		t.Fatalf("dropped %d of 600 cross-partition sends", d)
	}
	for id := 0; id < 6; id++ {
		if s := net.Stats(NodeID(id)); s.Dropped != 100 {
			t.Fatalf("node %d charged %d drops, want its own 100", id, s.Dropped)
		}
	}
	net.Heal()
	net.Send(0, 3, nil, 8)
	sim.Run()
	checkConservation(t, net)
}

func TestDropConservationUnderCrash(t *testing.T) {
	sim, net, recs := build(t, 3, Config{Latency: ConstantLatency(time.Millisecond)})
	// In-flight toward a node that crashes before delivery.
	for i := 0; i < 50; i++ {
		net.Send(0, 2, nil, 8)
		net.Send(1, 2, nil, 8)
	}
	net.SetUp(2, false)
	sim.Run()
	checkConservation(t, net)
	if len(recs[2].got) != 0 {
		t.Fatal("crashed node received messages")
	}
	if s0, s1 := net.Stats(0), net.Stats(1); s0.Dropped != 50 || s1.Dropped != 50 {
		t.Fatalf("crash-time drops mischarged: %d / %d, want 50 / 50", s0.Dropped, s1.Dropped)
	}
	// A down sender is never accounted at all, so the invariant still holds.
	net.Send(2, 0, nil, 8)
	sim.Run()
	checkConservation(t, net)
	// Restart and mix loss + crash in one run.
	net.SetUp(2, true)
	net.SetLoss(0.5)
	for i := 0; i < 1000; i++ {
		net.Send(0, 2, nil, 8)
	}
	sim.Run()
	checkConservation(t, net)
}

// The send→deliver cycle must be allocation-free in steady state: message
// records ride inline in pooled kernel events instead of heap-allocated
// closures.
func TestSendDeliverZeroAlloc(t *testing.T) {
	sim := eventsim.New(1)
	net := New(sim, Config{Latency: ConstantLatency(time.Microsecond)})
	a := net.AddNode(nopHandler{})
	b := net.AddNode(nopHandler{})
	payload := &struct{ x int }{}
	for i := 0; i < 64; i++ { // warm the kernel's arena and heap
		net.Send(a, b, payload, 64)
	}
	sim.Run()
	avg := testing.AllocsPerRun(1000, func() {
		net.Send(a, b, payload, 64)
		sim.Step()
	})
	if avg != 0 {
		t.Fatalf("Send+deliver allocates %.2f times per op, want 0", avg)
	}
}

type nopHandler struct{}

func (nopHandler) HandleMessage(Message) {}

func BenchmarkSendDeliver(b *testing.B) {
	sim := eventsim.New(1)
	net := New(sim, Config{Latency: ConstantLatency(time.Microsecond)})
	r := &recorder{}
	a := net.AddNode(r)
	c := net.AddNode(&recorder{})
	_ = c
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(a, c, nil, 64)
		if i%1024 == 0 {
			sim.Run()
		}
	}
	sim.Run()
}

func TestSetLatencySwapsMidRun(t *testing.T) {
	sim, net, recs := build(t, 2, Config{Latency: ConstantLatency(5 * time.Millisecond)})
	net.Send(0, 1, "slow-model-pending", 1)
	net.SetLatency(ConstantLatency(50 * time.Millisecond)) // in-flight msg keeps 5ms
	net.Send(0, 1, "new-model", 1)
	sim.Run()
	if len(recs[1].got) != 2 {
		t.Fatalf("got %d messages", len(recs[1].got))
	}
	if sim.Now() != 50*time.Millisecond {
		t.Fatalf("last delivery at %v, want 50ms under the swapped model", sim.Now())
	}
	net.SetLatency(nil) // restores the 1ms default
	net.Send(0, 1, "default", 1)
	start := sim.Now()
	sim.Run()
	if sim.Now()-start != time.Millisecond {
		t.Fatalf("nil SetLatency gave %v delay, want the 1ms default", sim.Now()-start)
	}
}

// --- Sharding surface --------------------------------------------------------

type rcPayload struct {
	refs     int32
	released int32
}

func (p *rcPayload) Retain()  { p.refs++ }
func (p *rcPayload) Release() { p.refs--; p.released++ }

func TestRemoteHandOff(t *testing.T) {
	sim := eventsim.New(1)
	n := New(sim, Config{Latency: ConstantLatency(time.Millisecond)})
	sink := &recorder{}
	local := n.AddNode(sink)
	remote := n.AddRemote()

	var handed []Message
	var delays []time.Duration
	n.SetRemote(func(m Message, d time.Duration) { handed = append(handed, m); delays = append(delays, d) })

	n.Send(local, remote, "x", 10)
	if len(handed) != 1 || handed[0].To != remote || handed[0].Size != 10 {
		t.Fatalf("remote hook got %+v", handed)
	}
	if delays[0] != time.Millisecond {
		t.Fatalf("delay = %v, want the latency draw", delays[0])
	}
	// The send is charged to the sender like any other.
	if st := n.Stats(local); st.MsgsSent != 1 || st.BytesSent != 10 {
		t.Fatalf("sender stats = %+v", st)
	}
	// Nothing was scheduled locally.
	if sim.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", sim.Pending())
	}
}

func TestRemoteWithoutHookCountsDrop(t *testing.T) {
	sim := eventsim.New(1)
	n := New(sim, Config{})
	local := n.AddNode(&recorder{})
	remote := n.AddRemote()
	n.Send(local, remote, "x", 10)
	if st := n.Stats(local); st.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (no remote hook installed)", st.Dropped)
	}
}

func TestInjectAtDeliversWithAccounting(t *testing.T) {
	sim := eventsim.New(1)
	n := New(sim, Config{})
	sink := &recorder{}
	dst := n.AddNode(sink)
	src := n.AddRemote() // the sender lives elsewhere

	n.InjectAt(5*time.Millisecond, Message{From: src, To: dst, Payload: "hello", Size: 7})
	sim.Run()
	if len(sink.got) != 1 || sink.got[0].Payload != "hello" {
		t.Fatalf("delivered %+v", sink.got)
	}
	if st := n.Stats(dst); st.MsgsRecv != 1 || st.BytesRecv != 7 {
		t.Fatalf("recv stats = %+v", st)
	}
	// A past timestamp coerces to Now rather than firing out of order.
	n.InjectAt(-1, Message{From: src, To: dst, Payload: "late", Size: 1})
	sim.Run()
	if len(sink.got) != 2 {
		t.Fatalf("late injection not delivered")
	}
}

func TestInjectAtDropsToDownNodeCounted(t *testing.T) {
	sim := eventsim.New(1)
	n := New(sim, Config{})
	dst := n.AddNode(&recorder{})
	src := n.AddRemote()
	n.SetUp(dst, false)
	n.InjectAt(0, Message{From: src, To: dst, Payload: "x", Size: 1})
	sim.Run()
	if st := n.Stats(src); st.Dropped != 1 {
		t.Fatalf("delivery-time drop charged to remote sender: %+v", st)
	}
}

func TestRefcountedLifecycle(t *testing.T) {
	sim := eventsim.New(1)
	n := New(sim, Config{})
	a := n.AddNode(&recorder{})
	b := n.AddNode(&recorder{})
	c := n.AddNode(&recorder{})

	p := &rcPayload{}
	n.Send(a, b, p, 1)
	n.Send(a, c, p, 1)
	if p.refs != 2 {
		t.Fatalf("refs after 2 in-flight sends = %d, want 2", p.refs)
	}
	sim.Run()
	if p.refs != 0 || p.released != 2 {
		t.Fatalf("after drain refs=%d released=%d, want 0/2", p.refs, p.released)
	}

	// A delivery-time drop (down destination) still releases.
	q := &rcPayload{}
	n.SetUp(c, false)
	n.Send(a, c, q, 1)
	if q.refs != 1 {
		t.Fatalf("refs = %d, want 1", q.refs)
	}
	sim.Run()
	if q.refs != 0 || q.released != 1 {
		t.Fatalf("drop path did not release: refs=%d released=%d", q.refs, q.released)
	}

	// A send-time loss never retains (the message was never in flight).
	r := &rcPayload{}
	n.SetLoss(1)
	n.Send(a, b, r, 1)
	if r.refs != 0 || r.released != 0 {
		t.Fatalf("send-time loss touched the refcount: %+v", r)
	}

	// The remote hand-off retains; the destination shard's InjectAt
	// delivery releases.
	n.SetLoss(0)
	rem := n.AddRemote()
	s := &rcPayload{}
	n.SetRemote(func(m Message, d time.Duration) {
		// Mailbox holds the ref across the barrier; merge back here.
		n2 := New(eventsim.New(2), Config{})
		n2.AddNode(&recorder{}) // id 0 unused
		for n2.Len() <= int(m.To) {
			n2.AddNode(&recorder{})
		}
		n2.InjectAt(0, m)
		n2.Sim().Run()
	})
	n.Send(a, rem, s, 1)
	if s.refs != 0 || s.released != 1 {
		t.Fatalf("remote round-trip refs=%d released=%d, want 0/1", s.refs, s.released)
	}
}
