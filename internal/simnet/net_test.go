package simnet

import (
	"testing"
	"time"

	"fairgossip/internal/eventsim"
)

// recorder is a Handler that appends every delivery.
type recorder struct {
	got []Message
}

func (r *recorder) HandleMessage(msg Message) { r.got = append(r.got, msg) }

func build(t *testing.T, n int, cfg Config) (*eventsim.Sim, *Network, []*recorder) {
	t.Helper()
	sim := eventsim.New(1)
	net := New(sim, cfg)
	recs := make([]*recorder, n)
	for i := range recs {
		recs[i] = &recorder{}
		if id := net.AddNode(recs[i]); id != NodeID(i) {
			t.Fatalf("AddNode returned %d, want %d", id, i)
		}
	}
	return sim, net, recs
}

func TestDelivery(t *testing.T) {
	sim, net, recs := build(t, 2, Config{Latency: ConstantLatency(5 * time.Millisecond)})
	net.Send(0, 1, "hello", 10)
	sim.Run()
	if len(recs[1].got) != 1 {
		t.Fatalf("got %d messages", len(recs[1].got))
	}
	m := recs[1].got[0]
	if m.From != 0 || m.To != 1 || m.Payload.(string) != "hello" || m.Size != 10 {
		t.Fatalf("message corrupted: %+v", m)
	}
	if sim.Now() != 5*time.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", sim.Now())
	}
}

func TestTrafficAccounting(t *testing.T) {
	sim, net, _ := build(t, 3, Config{})
	net.Send(0, 1, nil, 100)
	net.Send(0, 2, nil, 50)
	net.Send(1, 0, nil, 25)
	sim.Run()
	s0, s1, s2 := net.Stats(0), net.Stats(1), net.Stats(2)
	if s0.MsgsSent != 2 || s0.BytesSent != 150 {
		t.Errorf("node0 sent: %+v", s0)
	}
	if s0.MsgsRecv != 1 || s0.BytesRecv != 25 {
		t.Errorf("node0 recv: %+v", s0)
	}
	if s1.MsgsSent != 1 || s1.BytesRecv != 100 {
		t.Errorf("node1: %+v", s1)
	}
	if s2.MsgsRecv != 1 || s2.BytesRecv != 50 {
		t.Errorf("node2: %+v", s2)
	}
	tot := net.TotalTraffic()
	if tot.MsgsSent != 3 || tot.BytesSent != 175 || tot.MsgsRecv != 3 {
		t.Errorf("total: %+v", tot)
	}
}

func TestLossRateApproximate(t *testing.T) {
	sim, net, recs := build(t, 2, Config{Loss: 0.3})
	const total = 10000
	for i := 0; i < total; i++ {
		net.Send(0, 1, nil, 1)
	}
	sim.Run()
	got := len(recs[1].got)
	// 0.7·10000 = 7000; allow ±3σ ≈ ±137.
	if got < 6800 || got > 7200 {
		t.Fatalf("delivered %d of %d at 30%% loss", got, total)
	}
	if d := net.Stats(0).Dropped; int(d) != total-got {
		t.Fatalf("dropped counter %d, want %d", d, total-got)
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	sim, net, recs := build(t, 2, Config{Latency: ConstantLatency(time.Millisecond)})
	net.SetUp(1, false)
	net.Send(0, 1, nil, 1)
	sim.Run()
	if len(recs[1].got) != 0 {
		t.Fatal("down node received a message")
	}
	// Crash during flight: message sent while up, target goes down before delivery.
	net.SetUp(1, true)
	net.Send(0, 1, nil, 1)
	net.SetUp(1, false)
	sim.Run()
	if len(recs[1].got) != 0 {
		t.Fatal("message delivered to node that crashed in flight")
	}
	// Down nodes cannot send.
	net.Send(1, 0, nil, 1)
	sim.Run()
	if len(recs[0].got) != 0 {
		t.Fatal("down node sent a message")
	}
	if net.Stats(1).MsgsSent != 0 {
		t.Fatal("down node's send was accounted")
	}
	// Restart restores delivery.
	net.SetUp(1, true)
	net.Send(0, 1, nil, 1)
	sim.Run()
	if len(recs[1].got) != 1 {
		t.Fatal("restarted node did not receive")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	sim, net, recs := build(t, 4, Config{})
	net.Partition([]NodeID{0, 1})
	net.Send(0, 1, nil, 1) // same side
	net.Send(0, 2, nil, 1) // cross
	net.Send(3, 2, nil, 1) // same side (other group)
	net.Send(2, 1, nil, 1) // cross
	sim.Run()
	if len(recs[1].got) != 1 || len(recs[2].got) != 1 {
		t.Fatalf("partition semantics wrong: %d %d", len(recs[1].got), len(recs[2].got))
	}
	net.Heal()
	net.Send(0, 2, nil, 1)
	sim.Run()
	if len(recs[2].got) != 2 {
		t.Fatal("heal did not restore connectivity")
	}
}

func TestUnknownAddressesAreSilentDrops(t *testing.T) {
	sim, net, recs := build(t, 1, Config{})
	net.Send(0, 99, nil, 1)
	net.Send(0, None, nil, 1)
	net.Send(99, 0, nil, 1)
	sim.Run()
	if len(recs[0].got) != 0 {
		t.Fatal("unexpected delivery")
	}
	if net.Stats(0).MsgsSent != 0 {
		t.Fatal("sends to unknown nodes must not be accounted")
	}
}

func TestUniformLatencyBounds(t *testing.T) {
	sim := eventsim.New(3)
	model := UniformLatency(2*time.Millisecond, 8*time.Millisecond)
	for i := 0; i < 1000; i++ {
		d := model(sim.Rand(), 0, 1)
		if d < 2*time.Millisecond || d >= 8*time.Millisecond {
			t.Fatalf("latency %v out of bounds", d)
		}
	}
	// Degenerate range collapses to constant.
	c := UniformLatency(5*time.Millisecond, 5*time.Millisecond)
	if d := c(sim.Rand(), 0, 1); d != 5*time.Millisecond {
		t.Fatalf("degenerate uniform = %v", d)
	}
}

func TestLatencyOrderingIndependentMessages(t *testing.T) {
	// With uniform latency, messages may arrive out of send order —
	// verify the simulator delivers each at its own sampled time.
	sim, net, recs := build(t, 2, Config{Latency: UniformLatency(time.Millisecond, 10*time.Millisecond)})
	for i := 0; i < 50; i++ {
		net.Send(0, 1, i, 1)
	}
	sim.Run()
	if len(recs[1].got) != 50 {
		t.Fatalf("delivered %d of 50", len(recs[1].got))
	}
	seen := make(map[int]bool)
	for _, m := range recs[1].got {
		seen[m.Payload.(int)] = true
	}
	if len(seen) != 50 {
		t.Fatal("payload corruption or duplication")
	}
}

func TestNegativeSizeCoerced(t *testing.T) {
	sim, net, recs := build(t, 2, Config{})
	net.Send(0, 1, nil, -5)
	sim.Run()
	if len(recs[1].got) != 1 || recs[1].got[0].Size != 0 {
		t.Fatal("negative size must coerce to 0")
	}
}

func TestSelfSend(t *testing.T) {
	sim, net, recs := build(t, 1, Config{})
	net.Send(0, 0, "me", 3)
	sim.Run()
	if len(recs[0].got) != 1 {
		t.Fatal("self-send not delivered")
	}
}

func BenchmarkSendDeliver(b *testing.B) {
	sim := eventsim.New(1)
	net := New(sim, Config{Latency: ConstantLatency(time.Microsecond)})
	r := &recorder{}
	a := net.AddNode(r)
	c := net.AddNode(&recorder{})
	_ = c
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Send(a, c, nil, 64)
		if i%1024 == 0 {
			sim.Run()
		}
	}
	sim.Run()
}
