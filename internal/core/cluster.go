package core

import (
	"math/rand"
	"time"

	"fairgossip/internal/eventsim"
	"fairgossip/internal/fairness"
	"fairgossip/internal/simnet"
)

// Cluster wires n FairGossip nodes onto one simulated network with a
// shared fairness ledger. It is the unit experiments (and the public
// facade) drive.
type Cluster struct {
	Sim    *eventsim.Sim
	Net    *simnet.Network
	Ledger *fairness.Ledger
	Nodes  []*Node

	cfg     Config
	seed    int64
	tickers []*eventsim.Ticker
	pool    *msgPool
}

// ClusterOptions bundles the environment knobs of a cluster.
type ClusterOptions struct {
	// Seed drives all randomness (simulator and per-node streams).
	Seed int64
	// NetConfig configures latency and loss (zero value: 1ms, lossless).
	NetConfig simnet.Config
	// Weights configures the fairness ledger (zero value: defaults).
	Weights fairness.Weights
}

// NewCluster builds a stopped cluster of n nodes. Call Start (or use
// RunRounds, which starts lazily) to begin gossip rounds.
func NewCluster(n int, cfg Config, opts ClusterOptions) *Cluster {
	cfg = cfg.withDefaults()
	sim := eventsim.New(opts.Seed)
	net := simnet.New(sim, opts.NetConfig)
	ledger := fairness.NewLedger(n, opts.Weights)

	c := &Cluster{
		Sim:    sim,
		Net:    net,
		Ledger: ledger,
		cfg:    cfg,
		seed:   opts.Seed,
		Nodes:  make([]*Node, 0, n),
		// One envelope pool per cluster: pooling is output-invariant
		// (SelectInto draws the same random stream as Select and the
		// copied batch is byte-equal), so it is always on.
		pool: &msgPool{},
	}
	for i := 0; i < n; i++ {
		nd := newNode(simnet.NodeID(i), net, ledger, cfg, n, rand.New(rand.NewSource(opts.Seed^int64(0x9e3779b9*uint32(i+1)))))
		nd.pool = c.pool
		net.AddNode(nd)
		c.Nodes = append(c.Nodes, nd)
	}
	// Bootstrap overlay views with random contacts (a join service in a
	// deployed system; free here, like handing out a seed-peer list).
	if cfg.Membership == MemberCyclon {
		boot := rand.New(rand.NewSource(opts.Seed + 7))
		for _, nd := range c.Nodes {
			k := cfg.ViewCap / 2
			if k < 3 {
				k = 3
			}
			ids := make([]simnet.NodeID, 0, k)
			for len(ids) < k && n > 1 {
				cand := simnet.NodeID(boot.Intn(n))
				if cand != nd.id {
					ids = append(ids, cand)
				}
			}
			nd.bootstrapView(ids)
		}
	}
	return c
}

// Config returns the cluster's (defaulted) configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Start launches the round tickers — per-node jittered ones by default,
// or a single batched ticker under Config.BatchRounds. Idempotent.
func (c *Cluster) Start() {
	if len(c.tickers) > 0 {
		return
	}
	if c.cfg.BatchRounds {
		// One ticker drives every node in id order; ranging over c.Nodes
		// through the receiver picks up mid-run joiners automatically.
		c.tickers = append(c.tickers, c.Sim.Every(c.cfg.RoundPeriod, c.cfg.Jitter, func() {
			for _, nd := range c.Nodes {
				nd.Round()
			}
		}))
		return
	}
	for _, nd := range c.Nodes {
		nd := nd
		c.tickers = append(c.tickers, c.Sim.Every(c.cfg.RoundPeriod, c.cfg.Jitter, nd.Round))
	}
}

// Stop halts the round tickers (the simulator can still drain in-flight
// messages with Sim.Run).
func (c *Cluster) Stop() {
	for _, t := range c.tickers {
		t.Stop()
	}
	c.tickers = nil
}

// Join boots a new node into the cluster mid-run, bootstrapped through
// seed. Under MemberCyclon the joiner starts with only the seed in its
// view and pays for a charged view-repair exchange (the same
// introduction a rejoining node buys); under MemberFull the idealised
// directory tells every node the new population size for free, the
// same way the initial roster was free. The joiner's round ticker
// starts immediately when the cluster is running. Returns the new
// node's id.
func (c *Cluster) Join(seed simnet.NodeID) simnet.NodeID {
	n := len(c.Nodes) + 1
	c.Ledger.Grow(n)
	id := simnet.NodeID(len(c.Nodes))
	nd := newNode(id, c.Net, c.Ledger, c.cfg, n, rand.New(rand.NewSource(c.seed^int64(0x9e3779b9*uint32(id+1)))))
	nd.pool = c.pool
	c.Net.AddNode(nd)
	c.Nodes = append(c.Nodes, nd)
	if c.cfg.Membership == MemberCyclon {
		if seed >= 0 && int(seed) < len(c.Nodes)-1 {
			nd.cyclon.View().Add(seed)
			nd.send(seed, &wireMsg{Kind: kindViewRepair}, fairness.ClassInfra)
		}
	} else {
		for _, other := range c.Nodes {
			other.SetPopulation(n)
		}
	}
	if len(c.tickers) > 0 && !c.cfg.BatchRounds {
		// The batched ticker ranges over c.Nodes and already covers the
		// joiner; only the per-node schedule needs a new ticker.
		c.tickers = append(c.tickers, c.Sim.Every(c.cfg.RoundPeriod, c.cfg.Jitter, nd.Round))
	}
	return id
}

// Leave departs node id gracefully (Node.LeaveGracefully): under Cyclon
// membership the leaver hands its freshest view entries to its
// neighbours before going offline; under the idealised full sampler it
// simply goes offline. The sim mirror of live.Cluster.Leave.
func (c *Cluster) Leave(id simnet.NodeID) {
	if id < 0 || int(id) >= len(c.Nodes) {
		return
	}
	c.Nodes[id].LeaveGracefully()
}

// RunRounds advances virtual time by r round periods, starting the
// cluster if needed.
func (c *Cluster) RunRounds(r int) {
	c.Start()
	c.Sim.RunUntil(c.Sim.Now() + time.Duration(r)*c.cfg.RoundPeriod)
}

// Node returns the i-th node.
func (c *Cluster) Node(i int) *Node { return c.Nodes[i] }

// Report computes the fairness report over the whole population.
func (c *Cluster) Report() fairness.Report { return c.Ledger.Report() }

// DeliveredTotal sums deliveries across all nodes.
func (c *Cluster) DeliveredTotal() uint64 {
	var total uint64
	for i := range c.Nodes {
		total += c.Ledger.Account(i).Delivered
	}
	return total
}

// DeliveryRatio returns, for an event expected at `interested` many
// nodes, the fraction of them that delivered at least `minEach` events.
// Experiments use it as the reliability metric.
func (c *Cluster) DeliveryRatio(interested []int, minEach uint64) float64 {
	if len(interested) == 0 {
		return 1
	}
	ok := 0
	for _, id := range interested {
		if c.Ledger.Account(id).Delivered >= minEach {
			ok++
		}
	}
	return float64(ok) / float64(len(interested))
}
