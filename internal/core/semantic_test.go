package core

import (
	"testing"
	"time"

	"fairgossip/internal/fairness"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
)

func TestInterestFingerprint(t *testing.T) {
	var a, b pubsub.Interest
	a.Subscribe(pubsub.Topic("sports"))
	b.Subscribe(pubsub.Topic("sports"))
	if interestFingerprint(&a) != interestFingerprint(&b) {
		t.Fatal("identical interest must fingerprint identically")
	}
	var c pubsub.Interest
	c.Subscribe(pubsub.Topic("finance"))
	if interestFingerprint(&a) == interestFingerprint(&c) {
		t.Fatal("distinct topics collided (unlikely)")
	}
	var empty pubsub.Interest
	if interestFingerprint(&empty) != 0 {
		t.Fatal("empty interest must fingerprint to 0")
	}
	// Overlap is monotone in shared subscriptions.
	var both pubsub.Interest
	both.Subscribe(pubsub.Topic("sports"))
	both.Subscribe(pubsub.Topic("finance"))
	fa, fc, fb := interestFingerprint(&a), interestFingerprint(&c), interestFingerprint(&both)
	if fingerprintOverlap(fa, fb) == 0 || fingerprintOverlap(fc, fb) == 0 {
		t.Fatal("superset interest must overlap both parts")
	}
	if fingerprintOverlap(fa, fc) >= fingerprintOverlap(fa, fb) {
		t.Fatal("disjoint interest overlaps as much as shared interest")
	}
}

func TestEventFingerprintMatchesTopicSubscription(t *testing.T) {
	var in pubsub.Interest
	in.Subscribe(pubsub.Topic("sports"))
	ev := &pubsub.Event{Topic: "sports"}
	if fingerprintOverlap(eventFingerprint(ev), interestFingerprint(&in)) == 0 {
		t.Fatal("event must overlap a subscription to its topic")
	}
	other := &pubsub.Event{Topic: "weather"}
	if eventFingerprint(other) == eventFingerprint(ev) {
		t.Fatal("distinct topics collided (unlikely)")
	}
	if batchFingerprint([]*pubsub.Event{ev, other}) !=
		eventFingerprint(ev)|eventFingerprint(other) {
		t.Fatal("batch fingerprint must union event fingerprints")
	}
}

func TestBiasedPeersFallsBackUniform(t *testing.T) {
	c := NewCluster(16, Config{Mode: ModeContent, SemanticBias: 0.5}, ClusterOptions{Seed: 1})
	nd := c.Node(0)
	// No fingerprints learned yet: uniform sampling still works.
	got := nd.biasedPeers(4, 0xFFFF)
	if len(got) == 0 {
		t.Fatal("no partners sampled")
	}
	for _, id := range got {
		if id == nd.ID() {
			t.Fatal("sampled self")
		}
	}
	// Zero batch fingerprint (pure content filters) also falls back.
	if got := nd.biasedPeers(4, 0); len(got) == 0 {
		t.Fatal("zero-fingerprint fallback failed")
	}
}

func TestBiasedPeersPrefersBatchOverlap(t *testing.T) {
	c := NewCluster(16, Config{Mode: ModeContent, SemanticBias: 1.0}, ClusterOptions{Seed: 2})
	nd := c.Node(0)

	var same, other pubsub.Interest
	same.Subscribe(pubsub.Topic("sports"))
	other.Subscribe(pubsub.Topic("weather"))
	nd.rememberFingerprint(5, interestFingerprint(&same))
	nd.rememberFingerprint(9, interestFingerprint(&other))

	batch := eventFingerprint(&pubsub.Event{Topic: "sports"})
	counts := map[simnet.NodeID]int{}
	for trial := 0; trial < 50; trial++ {
		for _, id := range nd.biasedPeers(1, batch) {
			counts[id]++
		}
	}
	if counts[5] < 45 {
		t.Fatalf("batch-matching peer picked only %d/50 times with full bias", counts[5])
	}
}

func TestBiasedPeersNoDuplicates(t *testing.T) {
	c := NewCluster(32, Config{Mode: ModeContent, SemanticBias: 0.5}, ClusterOptions{Seed: 3})
	nd := c.Node(0)
	var in pubsub.Interest
	in.Subscribe(pubsub.Topic("x"))
	fp := interestFingerprint(&in)
	for id := simnet.NodeID(1); id <= 10; id++ {
		nd.rememberFingerprint(id, fp)
	}
	batch := eventFingerprint(&pubsub.Event{Topic: "x"})
	for trial := 0; trial < 20; trial++ {
		got := nd.biasedPeers(6, batch)
		seen := map[simnet.NodeID]bool{}
		for _, id := range got {
			if seen[id] {
				t.Fatalf("duplicate partner %d in %v", id, got)
			}
			seen[id] = true
		}
	}
}

func TestSemanticBiasCutsTrafficAtSparseInterest(t *testing.T) {
	// EXP-X2 in miniature. With many small interest camps, semantic
	// routing behaves like implicit topic grouping: events stop visiting
	// uninterested buffers, so total application traffic collapses while
	// delivery stays close — the "grouping according to semantic
	// knowledge" the paper's §5.2 closing paragraph suggests.
	run := func(bias float64) (delivered, appBytes uint64) {
		const n, camps = 128, 8
		c := NewCluster(n, Config{
			Mode:         ModeContent,
			Fanout:       2,
			Batch:        4,
			BufferMaxAge: 2,
			SemanticBias: bias,
		}, ClusterOptions{
			Seed:      4,
			NetConfig: simnet.Config{Latency: simnet.ConstantLatency(2 * time.Millisecond)},
		})
		for i, nd := range c.Nodes {
			nd.Subscribe(pubsub.Topic([]string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}[i%camps]))
		}
		c.RunRounds(15)
		for r := 0; r < 120; r++ {
			c.Node(r%n).Publish([]string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}[r%camps],
				nil, make([]byte, 48))
			c.RunRounds(1)
		}
		c.RunRounds(10)
		for i := 0; i < n; i++ {
			a := c.Ledger.Account(i)
			delivered += a.Delivered
			appBytes += a.BytesSent[fairness.ClassApp]
		}
		return delivered, appBytes
	}
	uDel, uBytes := run(0)
	bDel, bBytes := run(0.75)
	if float64(bDel) < 0.9*float64(uDel) {
		t.Fatalf("biased delivery %d fell below 90%% of unbiased %d", bDel, uDel)
	}
	if float64(bBytes) > 0.5*float64(uBytes) {
		t.Fatalf("biased traffic %d not below half of unbiased %d", bBytes, uBytes)
	}
}
