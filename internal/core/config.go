// Package core implements FairGossip — the fairness-aware selective event
// dissemination protocol the paper sketches in §5. Every node runs, over
// one simulated network:
//
//   - push gossip dissemination (Fig. 4) with per-node fanout F_i and
//     gossip message size N_i,
//   - a membership substrate (Cyclon partial views or an idealised full
//     sampler), whose traffic is charged as infrastructure contribution,
//   - fairness accounting per Figs. 1–3 (contribution = bytes published +
//     forwarded; benefit = deliveries + κ·filters),
//   - optionally, a §5.2 controller that adapts F_i and/or N_i so the
//     node's contribution/benefit ratio converges to the global target f,
//   - in topic mode (§5.1), per-topic gossip groups joined through
//     random-walk subscriptions whose relay work is measured,
//   - a novelty audit (§5.2's bias question): receivers grade incoming
//     bytes as useful (novel events) or junk, so inflating one's byte
//     count with duplicates earns no audited credit.
package core

import (
	"time"

	"fairgossip/internal/adaptive"
	"fairgossip/internal/gossip"
)

// Mode selects the selectivity scheme of §5.
type Mode uint8

const (
	// ModeContent is expressive event selection (§5.2): one flat overlay,
	// every node forwards any event, interest gates only delivery.
	ModeContent Mode = iota + 1
	// ModeTopics is topic-based event selection (§5.1): one gossip group
	// per topic; only subscribers carry a topic's events.
	ModeTopics
)

// ControllerKind selects the adaptation law for a node.
type ControllerKind uint8

const (
	// ControllerStatic pins F and N (classic gossip, the unfair baseline).
	ControllerStatic ControllerKind = iota + 1
	// ControllerAIMD adapts via additive increase / multiplicative decrease.
	ControllerAIMD
	// ControllerProportional adapts via a damped P-controller.
	ControllerProportional
)

// ControllerSpec describes how a node adapts its participation.
type ControllerSpec struct {
	Kind  ControllerKind
	Lever adaptive.Lever // which §5.2 lever(s) may move (AIMD/Proportional)
	// TargetRatio is f: desired contribution bytes per unit benefit.
	TargetRatio float64
	// Tolerance, Gain, Beta: see adaptive.Config.
	Tolerance float64
	Gain      float64
	Beta      float64
	// Smoothing ∈ (0,1) applies EWMA smoothing to controller inputs
	// (adaptive.NewSmoothed); 0 or 1 disables.
	Smoothing float64
}

// Membership selects the peer-sampling substrate.
type Membership uint8

const (
	// MemberFull gives every node the idealised uniform sampler over the
	// whole population (free of charge — the analysis baseline).
	MemberFull Membership = iota + 1
	// MemberCyclon runs Cyclon view shuffling as real, charged
	// infrastructure traffic.
	MemberCyclon
)

// Config parameterises a FairGossip node/cluster.
type Config struct {
	Mode Mode

	// RoundPeriod is the gossip timer period T; Jitter desynchronises
	// nodes. Defaults: 100ms / 10ms.
	RoundPeriod time.Duration
	Jitter      time.Duration

	// Fanout and Batch are the initial (or static) F and N. Defaults 4/8.
	Fanout int
	Batch  int

	// Policy is the SELECTEVENTS policy (default random).
	Policy gossip.Policy

	// Controller selects static vs adaptive participation.
	Controller ControllerSpec
	// Limits bound the adaptive levers; zero value = adaptive.DefaultLimits(n).
	Limits adaptive.Limits
	// ControlWindow is how many rounds pass between controller updates
	// (default 5).
	ControlWindow int

	// Membership substrate (default MemberCyclon), with view capacity
	// (default 16), shuffle length (default 8), and shuffle period in
	// rounds (default 4).
	Membership    Membership
	ViewCap       int
	ShuffleLen    int
	ShuffleEvery  int
	TopicViewCap  int     // per-topic group view capacity (default 12)
	AdLen         int     // membership ads piggybacked on topic gossip (default 2)
	WalkHopLimit  int     // subscription walk TTL (default 16)
	BufferCap     int     // event buffer capacity (default 256)
	BufferMaxAge  int     // rounds an event stays forwardable (default 8)
	SeenCap       int     // dedup memory (default 8192)
	RepairPenalty float64 // churn penalty charged per rejoin (default 0: off)
	JunkPadding   int     // bytes of junk a cheater pads per message (EXP-A6)

	// SemanticBias ∈ (0,1] biases that fraction of content-mode gossip
	// partners toward peers with overlapping interest fingerprints
	// (§5.2's semantic-knowledge suggestion; EXP-X2). 0 disables.
	SemanticBias float64

	// BatchRounds replaces the per-node jittered round tickers with one
	// ticker per cluster (per shard, when sharded) that drives every
	// node's Round in id order. Large populations trade per-node timer
	// desynchronisation for far fewer kernel events — at N=100k the
	// per-node tickers alone are 100k heap entries rescheduled every
	// round. Off by default: the batched schedule is deterministic but
	// fires rounds at different instants than the jittered one, so
	// fixed-seed output differs from the legacy schedule.
	BatchRounds bool
}

func (c Config) withDefaults() Config {
	if c.Mode == 0 {
		c.Mode = ModeContent
	}
	if c.RoundPeriod <= 0 {
		c.RoundPeriod = 100 * time.Millisecond
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	} else if c.Jitter == 0 {
		c.Jitter = c.RoundPeriod / 10
	}
	if c.Fanout <= 0 {
		c.Fanout = 4
	}
	if c.Batch <= 0 {
		c.Batch = 8
	}
	if c.Policy == 0 {
		c.Policy = gossip.PolicyRandom
	}
	if c.Controller.Kind == 0 {
		c.Controller.Kind = ControllerStatic
	}
	if c.Controller.Lever == 0 {
		c.Controller.Lever = adaptive.LeverBoth
	}
	if c.ControlWindow <= 0 {
		c.ControlWindow = 5
	}
	if c.Membership == 0 {
		c.Membership = MemberCyclon
	}
	if c.ViewCap <= 0 {
		c.ViewCap = 16
	}
	if c.ShuffleLen <= 0 {
		c.ShuffleLen = 8
	}
	if c.ShuffleEvery <= 0 {
		c.ShuffleEvery = 4
	}
	if c.TopicViewCap <= 0 {
		c.TopicViewCap = 12
	}
	if c.AdLen <= 0 {
		c.AdLen = 2
	}
	if c.WalkHopLimit <= 0 {
		c.WalkHopLimit = 16
	}
	if c.BufferCap <= 0 {
		c.BufferCap = 256
	}
	if c.BufferMaxAge <= 0 {
		c.BufferMaxAge = 8
	}
	if c.SeenCap <= 0 {
		c.SeenCap = 8192
	}
	return c
}

// buildController instantiates the node-local controller for a population
// of size n.
func buildController(cfg Config, n int) adaptive.Controller {
	limits := cfg.Limits
	if limits == (adaptive.Limits{}) {
		limits = adaptive.DefaultLimits(n)
	}
	acfg := adaptive.Config{
		TargetRatio: cfg.Controller.TargetRatio,
		Tolerance:   cfg.Controller.Tolerance,
		Gain:        cfg.Controller.Gain,
		Beta:        cfg.Controller.Beta,
		Limits:      limits,
	}
	var ctrl adaptive.Controller
	switch cfg.Controller.Kind {
	case ControllerAIMD:
		ctrl = adaptive.NewAIMD(acfg, cfg.Controller.Lever, cfg.Fanout, cfg.Batch)
	case ControllerProportional:
		ctrl = adaptive.NewProportional(acfg, cfg.Controller.Lever, cfg.Fanout, cfg.Batch)
	default:
		return adaptive.Static{F: cfg.Fanout, N: cfg.Batch}
	}
	if s := cfg.Controller.Smoothing; s > 0 && s < 1 {
		ctrl = adaptive.NewSmoothed(ctrl, s)
	}
	return ctrl
}
