package core

import (
	"math/rand"
	"sync"
	"time"

	"fairgossip/internal/eventsim"
	"fairgossip/internal/fairness"
	"fairgossip/internal/randutil"
	"fairgossip/internal/simnet"
)

// ShardedCluster partitions a FairGossip simulation across per-core
// shards. Each shard owns a contiguous, chunk-aligned slice of the node
// ids, its own eventsim kernel (independently seeded from (seed,
// shardID) via randutil.ShardSeed — shards never share a rand stream),
// its own simnet.Network, and its own envelope pool. Shards advance in
// lockstep windows of one RoundPeriod: within a window every shard runs
// its kernel concurrently; at the window barrier the engine goroutine
// merges cross-shard mailboxes and deferred audits in fixed shard
// order, then opens the next window.
//
// Determinism contract: a run is byte-identical per (seed, shardCount).
// Different shard counts are different (equally valid) executions —
// cross-shard messages are quantised to the next barrier, so the event
// interleaving legitimately depends on the partition. shards <= 1 is
// special: it wraps the legacy single-threaded Cluster verbatim, so its
// output is byte-identical to every run that predates sharding.
//
// Concurrency model: during a window each shard goroutine touches only
// its own kernel, network, nodes, outboxes and audit list, plus the
// shared ledger — where every write lands on the writing node's own
// account except the novelty audit, which auditSink defers when the
// audited sender lives on another shard (otherwise the sender's
// controller would race the write mid-window and runs would diverge).
// Between windows only the engine goroutine runs; the WaitGroup barrier
// orders everything a shard wrote before everything the engine (and the
// next window's goroutines) read.
//
// All mutating methods (Join, Leave, Partition, Publish via Node, ...)
// must be called from the engine goroutine between windows — exactly
// the discipline the single-threaded Cluster already imposes.
type ShardedCluster struct {
	Ledger *fairness.Ledger
	Nodes  []*Node

	single *Cluster // non-nil when shards <= 1: the legacy engine
	shards []*shard
	cfg    Config
	seed   int64
	per    int // ids per shard (shard i owns [i*per, min((i+1)*per, n)))
	now    time.Duration
}

// shard is one partition: a kernel, a full-width network whose remote
// slots are placeholders, and the window-local state the barrier drains.
type shard struct {
	sim     *eventsim.Sim
	net     *simnet.Network
	pool    *msgPool
	lo, hi  int            // owned id range [lo, hi)
	outbox  [][]pendingMsg // per destination shard, FIFO within a pair
	audits  []deferredAudit
	tickers []*eventsim.Ticker
}

// pendingMsg is a cross-shard message parked in a mailbox until the
// barrier: the source shard already charged the send, drew loss and
// latency from its own stream, and retained a pooled payload; at is the
// nominal delivery instant on the shared virtual clock. InjectAt coerces
// instants inside the closed window up to the barrier.
type pendingMsg struct {
	msg simnet.Message
	at  time.Duration
}

// deferredAudit is a novelty audit whose target account lives on another
// shard; it is applied at the barrier in fixed shard order.
type deferredAudit struct {
	from, useful, junk int
}

// shardSpan sizes the per-shard id range: an even split, with interior
// boundaries rounded up to the fairness ledger's chunk size when that
// still leaves every shard nonempty, so two shards' hot atomic writes
// never share a chunk.
func shardSpan(n, shards int) int {
	per := (n + shards - 1) / shards
	if aligned := (per + fairness.ChunkSize - 1) / fairness.ChunkSize * fairness.ChunkSize; aligned*(shards-1) < n {
		return aligned
	}
	return per
}

// NewShardedCluster builds a stopped cluster of n nodes split across
// the given number of shards. shards <= 1 (or shards >= n falling back
// to n) wraps the legacy Cluster. Node RNG streams use the same
// (seed, id) derivation at every shard count.
func NewShardedCluster(n, shards int, cfg Config, opts ClusterOptions) *ShardedCluster {
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		c := NewCluster(n, cfg, opts)
		return &ShardedCluster{single: c, Ledger: c.Ledger, Nodes: c.Nodes, cfg: c.cfg, seed: opts.Seed}
	}
	cfg = cfg.withDefaults()
	ledger := fairness.NewLedger(n, opts.Weights)
	sc := &ShardedCluster{
		Ledger: ledger,
		Nodes:  make([]*Node, 0, n),
		cfg:    cfg,
		seed:   opts.Seed,
		per:    shardSpan(n, shards),
	}
	for s := 0; s < shards; s++ {
		sim := eventsim.New(randutil.ShardSeed(opts.Seed, s))
		sh := &shard{
			sim:    sim,
			net:    simnet.New(sim, opts.NetConfig),
			pool:   &msgPool{},
			lo:     s * sc.per,
			hi:     min((s+1)*sc.per, n),
			outbox: make([][]pendingMsg, shards),
		}
		sh.net.SetRemote(sc.remoteHook(sh))
		sc.shards = append(sc.shards, sh)
	}
	for i := 0; i < n; i++ {
		sc.addNode(i, n)
	}
	if cfg.Membership == MemberCyclon {
		// Same bootstrap stream as the legacy cluster: one rng, nodes in
		// global id order, so the initial overlay is shard-count-blind.
		boot := rand.New(rand.NewSource(opts.Seed + 7))
		for _, nd := range sc.Nodes {
			k := cfg.ViewCap / 2
			if k < 3 {
				k = 3
			}
			ids := make([]simnet.NodeID, 0, k)
			for len(ids) < k && n > 1 {
				cand := simnet.NodeID(boot.Intn(n))
				if cand != nd.id {
					ids = append(ids, cand)
				}
			}
			nd.bootstrapView(ids)
		}
	}
	return sc
}

// addNode constructs global node i on its owner shard and reserves a
// remote placeholder slot on every other shard, keeping NodeID == global
// id on all networks.
func (sc *ShardedCluster) addNode(i, n int) {
	owner := sc.shardOf(i)
	for s, sh := range sc.shards {
		if s != owner {
			sh.net.AddRemote()
			continue
		}
		nd := newNode(simnet.NodeID(i), sh.net, sc.Ledger, sc.cfg, n, rand.New(rand.NewSource(sc.seed^int64(0x9e3779b9*uint32(i+1)))))
		nd.pool = sh.pool
		nd.auditSink = sc.auditSink(sh)
		sh.net.AddNode(nd)
		sc.Nodes = append(sc.Nodes, nd)
	}
}

// shardOf maps a global id to its owner shard.
func (sc *ShardedCluster) shardOf(id int) int {
	if s := id / sc.per; s < len(sc.shards)-1 {
		return s
	}
	return len(sc.shards) - 1
}

// remoteHook parks cross-shard sends in the source shard's outbox.
func (sc *ShardedCluster) remoteHook(sh *shard) simnet.RemoteFunc {
	return func(msg simnet.Message, delay time.Duration) {
		d := sc.shardOf(int(msg.To))
		sh.outbox[d] = append(sh.outbox[d], pendingMsg{msg: msg, at: sh.sim.Now() + delay})
	}
}

// auditSink applies same-shard audits immediately and defers cross-shard
// ones to the barrier.
func (sc *ShardedCluster) auditSink(sh *shard) func(from, useful, junk int) {
	return func(from, useful, junk int) {
		if from >= sh.lo && from < sh.hi {
			sc.Ledger.AddAudit(from, useful, junk)
			return
		}
		sh.audits = append(sh.audits, deferredAudit{from: from, useful: useful, junk: junk})
	}
}

// Config returns the (defaulted) configuration.
func (sc *ShardedCluster) Config() Config { return sc.cfg }

// N returns the current population size.
func (sc *ShardedCluster) N() int {
	if sc.single != nil {
		return len(sc.single.Nodes)
	}
	return len(sc.Nodes)
}

// Shards returns the shard count (1 for the wrapped legacy engine).
func (sc *ShardedCluster) Shards() int {
	if sc.single != nil {
		return 1
	}
	return len(sc.shards)
}

// Node returns the i-th node.
func (sc *ShardedCluster) Node(i int) *Node {
	if sc.single != nil {
		return sc.single.Node(i)
	}
	return sc.Nodes[i]
}

// Start launches round tickers on every shard (per-node jittered, or one
// per shard under Config.BatchRounds). Idempotent.
func (sc *ShardedCluster) Start() {
	if sc.single != nil {
		sc.single.Start()
		return
	}
	for _, sh := range sc.shards {
		if len(sh.tickers) > 0 {
			continue
		}
		if sc.cfg.BatchRounds {
			sh := sh
			sh.tickers = append(sh.tickers, sh.sim.Every(sc.cfg.RoundPeriod, sc.cfg.Jitter, func() {
				// Re-slice on every fire: Join extends the tail shard's hi.
				for _, nd := range sc.Nodes[sh.lo:sh.hi] {
					nd.Round()
				}
			}))
			continue
		}
		for _, nd := range sc.Nodes[sh.lo:sh.hi] {
			nd := nd
			sh.tickers = append(sh.tickers, sh.sim.Every(sc.cfg.RoundPeriod, sc.cfg.Jitter, nd.Round))
		}
	}
}

// Stop halts all round tickers; in-flight messages can still be drained
// with Drain.
func (sc *ShardedCluster) Stop() {
	if sc.single != nil {
		sc.single.Stop()
		return
	}
	for _, sh := range sc.shards {
		for _, t := range sh.tickers {
			t.Stop()
		}
		sh.tickers = nil
	}
}

// RunRounds advances virtual time by r round periods, starting the
// cluster if needed. Each round is one barrier window.
func (sc *ShardedCluster) RunRounds(r int) {
	if sc.single != nil {
		sc.single.RunRounds(r)
		return
	}
	sc.Start()
	for i := 0; i < r; i++ {
		sc.runWindow(sc.now + sc.cfg.RoundPeriod)
	}
}

// runWindow runs every shard's kernel concurrently up to deadline, then
// — back on the engine goroutine — merges mailboxes into destination
// kernels in fixed (destination, source) order and applies deferred
// audits in fixed shard order. Fixed merge order means fixed FIFO
// tie-break sequence numbers, which is what makes the whole execution a
// pure function of (seed, shardCount).
func (sc *ShardedCluster) runWindow(deadline time.Duration) {
	var wg sync.WaitGroup
	for _, sh := range sc.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.sim.RunUntil(deadline)
		}(sh)
	}
	wg.Wait()
	for d, dst := range sc.shards {
		for _, src := range sc.shards {
			box := src.outbox[d]
			for _, p := range box {
				dst.net.InjectAt(p.at, p.msg)
			}
			src.outbox[d] = box[:0]
		}
	}
	for _, sh := range sc.shards {
		for _, a := range sh.audits {
			sc.Ledger.AddAudit(a.from, a.useful, a.junk)
		}
		sh.audits = sh.audits[:0]
	}
	sc.now = deadline
}

// Drain settles all in-flight traffic after Stop: windows keep running
// until every kernel is idle and every mailbox is empty. With tickers
// stopped each cross-shard hop costs at most one extra window, so this
// terminates.
func (sc *ShardedCluster) Drain() {
	if sc.single != nil {
		sc.single.Sim.Run()
		return
	}
	for {
		idle := true
		for _, sh := range sc.shards {
			if sh.sim.Pending() > 0 {
				idle = false
			}
			for _, box := range sh.outbox {
				if len(box) > 0 {
					idle = false
				}
			}
		}
		if idle {
			return
		}
		sc.runWindow(sc.now + sc.cfg.RoundPeriod)
	}
}

// Join boots a new node mid-run (engine goroutine, between windows).
// The id extends the tail shard's range, so existing ranges never move.
func (sc *ShardedCluster) Join(seed simnet.NodeID) simnet.NodeID {
	if sc.single != nil {
		id := sc.single.Join(seed)
		sc.Nodes = sc.single.Nodes
		return id
	}
	n := len(sc.Nodes) + 1
	sc.Ledger.Grow(n)
	id := len(sc.Nodes)
	owner := sc.shardOf(id) // always the tail shard
	sc.addNode(id, n)
	sc.shards[owner].hi = id + 1
	nd := sc.Nodes[id]
	if sc.cfg.Membership == MemberCyclon {
		if seed >= 0 && int(seed) < id {
			nd.cyclon.View().Add(seed)
			nd.send(seed, &wireMsg{Kind: kindViewRepair}, fairness.ClassInfra)
		}
	} else {
		for _, other := range sc.Nodes {
			other.SetPopulation(n)
		}
	}
	sh := sc.shards[owner]
	if len(sh.tickers) > 0 && !sc.cfg.BatchRounds {
		sh.tickers = append(sh.tickers, sh.sim.Every(sc.cfg.RoundPeriod, sc.cfg.Jitter, nd.Round))
	}
	return simnet.NodeID(id)
}

// Leave departs node id gracefully.
func (sc *ShardedCluster) Leave(id simnet.NodeID) {
	if sc.single != nil {
		sc.single.Leave(id)
		return
	}
	if id < 0 || int(id) >= len(sc.Nodes) {
		return
	}
	sc.Nodes[id].LeaveGracefully()
}

// Up reports whether node id is up (checked on its owner network).
func (sc *ShardedCluster) Up(id simnet.NodeID) bool {
	if sc.single != nil {
		return sc.single.Net.Up(id)
	}
	if id < 0 || int(id) >= len(sc.Nodes) {
		return false
	}
	return sc.shards[sc.shardOf(int(id))].net.Up(id)
}

// Partition splits every shard's network identically: delivery-time
// checks run on the destination's owner network, which therefore needs
// the full partition map regardless of where the sender lives.
func (sc *ShardedCluster) Partition(side []simnet.NodeID) {
	if sc.single != nil {
		sc.single.Net.Partition(side)
		return
	}
	for _, sh := range sc.shards {
		sh.net.Partition(side)
	}
}

// Heal removes any partition on every shard.
func (sc *ShardedCluster) Heal() {
	if sc.single != nil {
		sc.single.Net.Heal()
		return
	}
	for _, sh := range sc.shards {
		sh.net.Heal()
	}
}

// SetLoss sets the drop probability on every shard's network.
func (sc *ShardedCluster) SetLoss(p float64) {
	if sc.single != nil {
		sc.single.Net.SetLoss(p)
		return
	}
	for _, sh := range sc.shards {
		sh.net.SetLoss(p)
	}
}

// SetLatency swaps the latency model on every shard's network.
func (sc *ShardedCluster) SetLatency(m simnet.LatencyModel) {
	if sc.single != nil {
		sc.single.Net.SetLatency(m)
		return
	}
	for _, sh := range sc.shards {
		sh.net.SetLatency(m)
	}
}

// TotalTraffic sums the per-shard networks' counters. Each event is
// counted on exactly one network (sends and send-time drops on the
// source shard, receives and delivery-time drops on the destination
// shard), so the sum is the whole-population truth.
func (sc *ShardedCluster) TotalTraffic() simnet.Traffic {
	if sc.single != nil {
		return sc.single.Net.TotalTraffic()
	}
	var t simnet.Traffic
	for _, sh := range sc.shards {
		st := sh.net.TotalTraffic()
		t.MsgsSent += st.MsgsSent
		t.BytesSent += st.BytesSent
		t.MsgsRecv += st.MsgsRecv
		t.BytesRecv += st.BytesRecv
		t.Dropped += st.Dropped
	}
	return t
}

// Stats sums one node's traffic counters across shards (its owner shard
// holds almost everything; destination shards hold delivery-time drops
// charged back to it).
func (sc *ShardedCluster) Stats(id simnet.NodeID) simnet.Traffic {
	if sc.single != nil {
		return sc.single.Net.Stats(id)
	}
	var t simnet.Traffic
	for _, sh := range sc.shards {
		st := sh.net.Stats(id)
		t.MsgsSent += st.MsgsSent
		t.BytesSent += st.BytesSent
		t.MsgsRecv += st.MsgsRecv
		t.BytesRecv += st.BytesRecv
		t.Dropped += st.Dropped
	}
	return t
}

// Report computes the fairness report over the whole population.
func (sc *ShardedCluster) Report() fairness.Report { return sc.Ledger.Report() }

// DeliveredTotal sums deliveries across all nodes.
func (sc *ShardedCluster) DeliveredTotal() uint64 {
	var total uint64
	for i := range sc.Nodes {
		total += sc.Ledger.Account(i).Delivered
	}
	return total
}

// DeliveryRatio mirrors Cluster.DeliveryRatio.
func (sc *ShardedCluster) DeliveryRatio(interested []int, minEach uint64) float64 {
	if len(interested) == 0 {
		return 1
	}
	ok := 0
	for _, id := range interested {
		if sc.Ledger.Account(id).Delivered >= minEach {
			ok++
		}
	}
	return float64(ok) / float64(len(interested))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
