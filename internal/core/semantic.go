package core

import (
	"math/bits"
	"sort"

	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
)

// Semantic partner bias — the closing idea of §5.2: "In some cases we may
// also rely on semantic knowledge to bias the participation … and provide
// grouping according to this semantic knowledge."
//
// In content mode, every peer summarises its interest as a 64-bit Bloom
// fingerprint of its subscription sources and piggybacks it on gossip
// messages (8 bytes). Receivers remember senders' fingerprints. When
// SemanticBias ∈ (0, 1] is configured, that fraction of each round's
// partners is chosen among the known peers whose interest fingerprint
// overlaps the fingerprint of the batch *being sent* — events flow
// toward peers likely to deliver them. The remaining partners stay
// uniform, preserving the connectivity gossip's reliability depends on.
//
// Topic subscriptions fingerprint exactly (an event's topic hashes to
// the same bits as a `topic == "t"` subscription); arbitrary content
// filters fall back to unbiased gossip for matching purposes.

// interestFingerprint hashes each subscription source into a 64-bit Bloom
// filter (2 probes per subscription).
func interestFingerprint(in *pubsub.Interest) uint64 {
	var fp uint64
	for _, sub := range in.Subscriptions() {
		h := fnv64(sub.Source)
		fp |= 1 << (h & 63)
		fp |= 1 << ((h >> 8) & 63)
	}
	return fp
}

func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// eventFingerprint hashes an event's topic the same way a plain topic
// subscription hashes into interest fingerprints, so overlap between an
// event batch and a peer's interest is meaningful.
func eventFingerprint(ev *pubsub.Event) uint64 {
	h := fnv64(pubsub.Topic(ev.Topic).String())
	var fp uint64
	fp |= 1 << (h & 63)
	fp |= 1 << ((h >> 8) & 63)
	return fp
}

// batchFingerprint is the union over a batch's events.
func batchFingerprint(events []*pubsub.Event) uint64 {
	var fp uint64
	for _, ev := range events {
		fp |= eventFingerprint(ev)
	}
	return fp
}

// fingerprintOverlap counts shared set bits — a proxy for shared
// interest.
func fingerprintOverlap(a, b uint64) int { return bits.OnesCount64(a & b) }

// fingerprintWireSize is the piggyback cost per gossip message.
const fingerprintWireSize = 8

// rememberFingerprint stores a peer's advertised fingerprint.
func (nd *Node) rememberFingerprint(from simnet.NodeID, fp uint64) {
	if fp == 0 || from == nd.id {
		return
	}
	if nd.peerFPs == nil {
		nd.peerFPs = make(map[simnet.NodeID]uint64, 64)
	}
	nd.peerFPs[from] = fp
}

// fpAds samples a couple of known (peer, fingerprint) pairs to piggyback,
// spreading profile knowledge epidemically (deterministic order, random
// choice from the node's RNG).
func (nd *Node) fpAds(k int) []fpAd {
	if len(nd.peerFPs) == 0 || k <= 0 {
		return nil
	}
	ids := make([]int, 0, len(nd.peerFPs))
	for id := range nd.peerFPs {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	if k > len(ids) {
		k = len(ids)
	}
	out := make([]fpAd, 0, k)
	for _, idx := range nd.rng.Perm(len(ids))[:k] {
		id := simnet.NodeID(ids[idx])
		out = append(out, fpAd{ID: id, FP: nd.peerFPs[id]})
	}
	return out
}

// biasedPeers selects k partners for sending a batch with fingerprint
// targetFP: round(k·bias) of them are the known peers with the greatest
// interest overlap with the batch, the rest uniform. Falls back to
// uniform sampling while no fingerprints are known or the batch carries
// no topical signal.
func (nd *Node) biasedPeers(k int, targetFP uint64) []simnet.NodeID {
	bias := nd.cfg.SemanticBias
	if bias <= 0 || len(nd.peerFPs) == 0 || targetFP == 0 {
		return nd.overlayPeers(k)
	}
	if bias > 1 {
		bias = 1
	}
	want := int(float64(k)*bias + 0.5)
	if want > k {
		want = k
	}

	// Collect all known peers whose interest overlaps the batch, in
	// deterministic (sorted) order, then sample `want` of them uniformly
	// with the node's RNG. Random choice within the matching set matters:
	// always picking the top-k would funnel all traffic to the same few
	// peers and starve the rest of the interest group.
	ids := make([]int, 0, len(nd.peerFPs))
	for id := range nd.peerFPs {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	matching := make([]simnet.NodeID, 0, len(ids))
	for _, idInt := range ids {
		id := simnet.NodeID(idInt)
		if id != nd.id && fingerprintOverlap(targetFP, nd.peerFPs[id]) > 0 {
			matching = append(matching, id)
		}
	}
	if want > len(matching) {
		want = len(matching)
	}
	out := make([]simnet.NodeID, 0, k)
	used := make(map[simnet.NodeID]struct{}, k)
	for _, idx := range nd.rng.Perm(len(matching))[:want] {
		out = append(out, matching[idx])
		used[matching[idx]] = struct{}{}
	}
	// Fill the remainder uniformly, skipping duplicates.
	for _, id := range nd.overlayPeers(k) {
		if len(out) >= k {
			break
		}
		if _, dup := used[id]; dup {
			continue
		}
		used[id] = struct{}{}
		out = append(out, id)
	}
	return out
}
