package core

import (
	"fmt"
	"strings"
	"testing"

	"fairgossip/internal/fairness"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
)

func shardTestConfig() Config {
	return Config{
		Mode:       ModeContent,
		Membership: MemberFull,
		Fanout:     3,
		Batch:      4,
	}
}

// runSharded drives a fixed workload: everyone subscribes to everything,
// publishers spread across the id space (so traffic crosses every shard
// boundary), a mid-run crash and rejoin, then a drained settle.
func runSharded(n, shards int, seed int64) *ShardedCluster {
	sc := NewShardedCluster(n, shards, shardTestConfig(), ClusterOptions{Seed: seed})
	for _, nd := range sc.Nodes {
		nd.Subscribe(pubsub.MatchAll())
	}
	for burst := 0; burst < 5; burst++ {
		for p := 0; p < 4; p++ {
			sc.Node((burst+p*n/4)%n).Publish("t", nil, []byte("payload"))
		}
		sc.RunRounds(4)
	}
	sc.Node(n / 2).Leave()
	sc.RunRounds(4)
	sc.Node(n / 2).Rejoin(0)
	sc.RunRounds(8)
	sc.Stop()
	sc.Drain()
	return sc
}

// fingerprint folds every account and every per-node traffic counter
// into one comparable string: if any counter anywhere differs between
// two runs, the fingerprints differ.
func fingerprint(sc *ShardedCluster) string {
	var b strings.Builder
	for i := 0; i < sc.N(); i++ {
		a := sc.Ledger.Account(i)
		t := sc.Stats(simnet.NodeID(i))
		fmt.Fprintf(&b, "%d %v|%v %d %d %d %d %d|%d %d %d %d %d\n",
			i, a.MsgsSent, a.BytesSent, a.Published, a.Delivered, a.UsefulBytes, a.JunkBytes, a.Filters,
			t.MsgsSent, t.BytesSent, t.MsgsRecv, t.BytesRecv, t.Dropped)
	}
	tot := sc.TotalTraffic()
	fmt.Fprintf(&b, "total %d %d %d %d %d\n", tot.MsgsSent, tot.BytesSent, tot.MsgsRecv, tot.BytesRecv, tot.Dropped)
	return b.String()
}

// Fixed seed + fixed shard count must reproduce every counter exactly,
// for every shard count — the (seed, shardCount) determinism contract.
func TestShardedDeterministicPerShardCount(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		a := fingerprint(runSharded(64, shards, 42))
		b := fingerprint(runSharded(64, shards, 42))
		if a != b {
			t.Fatalf("shards=%d: two identical runs diverged:\n--- run 1\n%s--- run 2\n%s", shards, a, b)
		}
	}
}

// shards=1 must be the legacy engine verbatim: byte-identical output to
// a plain Cluster driven through the same schedule.
func TestShardsOneMatchesLegacy(t *testing.T) {
	sc := runSharded(64, 1, 7)

	c := NewCluster(64, shardTestConfig(), ClusterOptions{Seed: 7})
	for _, nd := range c.Nodes {
		nd.Subscribe(pubsub.MatchAll())
	}
	for burst := 0; burst < 5; burst++ {
		for p := 0; p < 4; p++ {
			c.Node((burst+p*16)%64).Publish("t", nil, []byte("payload"))
		}
		c.RunRounds(4)
	}
	c.Node(32).Leave()
	c.RunRounds(4)
	c.Node(32).Rejoin(0)
	c.RunRounds(8)
	c.Stop()
	c.Sim.Run()

	legacy := &ShardedCluster{single: c, Ledger: c.Ledger, Nodes: c.Nodes, cfg: c.cfg}
	if got, want := fingerprint(sc), fingerprint(legacy); got != want {
		t.Fatalf("shards=1 diverged from the legacy cluster:\n--- sharded\n%s--- legacy\n%s", got, want)
	}
}

// Events published on one shard must reach subscribers on every other
// shard through the barrier mailboxes.
func TestShardedCrossShardDelivery(t *testing.T) {
	const n, shards = 64, 4
	sc := NewShardedCluster(n, shards, shardTestConfig(), ClusterOptions{Seed: 3})
	for _, nd := range sc.Nodes {
		nd.Subscribe(pubsub.MatchAll())
	}
	sc.Node(0).Publish("t", nil, []byte("x")) // lives on shard 0
	sc.RunRounds(30)
	sc.Stop()
	sc.Drain()
	for i := 0; i < n; i++ {
		if sc.Ledger.Account(i).Delivered == 0 {
			t.Fatalf("node %d (shard %d) never delivered the event", i, sc.shardOf(i))
		}
	}
}

// Conservation must hold across shard boundaries: every message sent is
// either received or counted as dropped, with no double counting from
// the mailbox hand-off.
func TestShardedConservation(t *testing.T) {
	for _, shards := range []int{2, 4} {
		sc := runSharded(48, shards, 11)
		tot := sc.TotalTraffic()
		if tot.MsgsSent != tot.MsgsRecv+tot.Dropped {
			t.Fatalf("shards=%d: sent %d != recv %d + dropped %d",
				shards, tot.MsgsSent, tot.MsgsRecv, tot.Dropped)
		}
	}
}

// Partition and loss must apply uniformly across all shard networks.
func TestShardedPartitionBlocksCrossGroup(t *testing.T) {
	const n, shards = 32, 4
	sc := NewShardedCluster(n, shards, shardTestConfig(), ClusterOptions{Seed: 5})
	for _, nd := range sc.Nodes {
		nd.Subscribe(pubsub.MatchAll())
	}
	// Isolate the first half (spanning shards 0 and 1) from the second.
	side := make([]simnet.NodeID, 0, n/2)
	for i := 0; i < n/2; i++ {
		side = append(side, simnet.NodeID(i))
	}
	sc.Partition(side)
	sc.Node(0).Publish("t", nil, []byte("x"))
	sc.RunRounds(20)
	for i := n / 2; i < n; i++ {
		if d := sc.Ledger.Account(i).Delivered; d != 0 {
			t.Fatalf("node %d delivered %d events across a partition", i, d)
		}
	}
	sc.Heal()
	// The pre-heal event has aged out of every buffer by now
	// (BufferMaxAge default is 8 rounds); publish a fresh one to prove
	// the healed network carries traffic across the old boundary again.
	sc.Node(0).Publish("t", nil, []byte("y"))
	sc.RunRounds(30)
	sc.Stop()
	sc.Drain()
	healed := 0
	for i := n / 2; i < n; i++ {
		if sc.Ledger.Account(i).Delivered > 0 {
			healed++
		}
	}
	if healed == 0 {
		t.Fatalf("no node beyond the healed partition ever delivered")
	}
}

// Join must extend the tail shard and make the joiner a full
// participant (receiving cross-shard gossip).
func TestShardedJoin(t *testing.T) {
	const n, shards = 32, 4
	sc := NewShardedCluster(n, shards, shardTestConfig(), ClusterOptions{Seed: 9})
	for _, nd := range sc.Nodes {
		nd.Subscribe(pubsub.MatchAll())
	}
	sc.RunRounds(2)
	id := sc.Join(0)
	if got, want := int(id), n; got != want {
		t.Fatalf("joiner id = %d, want %d", got, want)
	}
	if sc.shardOf(int(id)) != shards-1 {
		t.Fatalf("joiner landed on shard %d, want tail shard %d", sc.shardOf(int(id)), shards-1)
	}
	joiner := sc.Node(int(id))
	joiner.Subscribe(pubsub.MatchAll())
	sc.Node(0).Publish("t", nil, []byte("x")) // other end of the id space
	sc.RunRounds(30)
	sc.Stop()
	sc.Drain()
	if sc.Ledger.Account(int(id)).Delivered == 0 {
		t.Fatalf("joiner never delivered the cross-shard event")
	}
}

// Batched rounds must stay deterministic and functional when sharded —
// the configuration the -huge bench tier runs.
func TestShardedBatchRoundsDeterministic(t *testing.T) {
	run := func() *ShardedCluster {
		cfg := shardTestConfig()
		cfg.BatchRounds = true
		sc := NewShardedCluster(64, 4, cfg, ClusterOptions{Seed: 21})
		for _, nd := range sc.Nodes {
			nd.Subscribe(pubsub.MatchAll())
		}
		sc.Node(1).Publish("t", nil, []byte("x"))
		sc.Node(63).Publish("t", nil, []byte("y"))
		sc.RunRounds(30)
		sc.Stop()
		sc.Drain()
		return sc
	}
	a, b := run(), run()
	if fingerprint(a) != fingerprint(b) {
		t.Fatalf("batched sharded runs diverged")
	}
	if a.DeliveredTotal() < 64 {
		t.Fatalf("batched sharded run delivered only %d events", a.DeliveredTotal())
	}
}

// shardSpan must cover [0, n) with every shard nonempty, aligning to
// ledger chunks only when alignment keeps the tail nonempty.
func TestShardSpan(t *testing.T) {
	cases := []struct{ n, shards int }{
		{8, 2}, {64, 8}, {100, 8}, {1000, 8}, {2048, 8}, {2100, 8}, {100000, 8}, {256, 256},
	}
	for _, tc := range cases {
		per := shardSpan(tc.n, tc.shards)
		if per*(tc.shards-1) >= tc.n {
			t.Fatalf("n=%d shards=%d: span %d leaves the tail shard empty", tc.n, tc.shards, per)
		}
		if per*tc.shards < tc.n {
			t.Fatalf("n=%d shards=%d: span %d does not cover the population", tc.n, tc.shards, per)
		}
		// Alignment applies exactly when it keeps the tail shard nonempty.
		aligned := (per + fairness.ChunkSize - 1) / fairness.ChunkSize * fairness.ChunkSize
		if aligned*(tc.shards-1) < tc.n && per%fairness.ChunkSize != 0 {
			t.Fatalf("n=%d shards=%d: span %d not chunk-aligned despite room", tc.n, tc.shards, per)
		}
	}
}
