package core

import (
	"sync"
	"sync/atomic"
)

// msgPool recycles gossip envelopes (wireMsg records and their Events/Ads
// backing arrays). Profiling showed per-round wireMsg allocation as the
// dominant steady-state allocation source once the kernel arena and the
// buffer slabs warmed up (PERFORMANCE.md): every node allocates one
// envelope plus an Events slice per round, none of which survives the
// fanout's last delivery.
//
// Lifecycle: get() hands out an envelope with one owner reference. The
// network retains once per in-flight copy it accepts (simnet.Refcounted)
// and releases when the delivery attempt completes; the sender drops its
// owner reference after the fanout loop. The last release recycles the
// envelope. Send-time losses never retain, so a fully-lost fanout
// recycles at the owner release — nothing leaks and nothing recycles
// early while a copy is still queued.
//
// The freelist is mutexed and the refcount atomic because a sharded run
// releases cross-shard deliveries on the destination shard's goroutine
// while the owning shard keeps allocating; within one single-threaded
// cluster the lock is uncontended and costs a few nanoseconds.
type msgPool struct {
	mu   sync.Mutex
	free []*wireMsg //fair:guardedby mu
}

// get returns an envelope holding one owner reference. Kind and payload
// fields are zeroed; Events/Ads keep their backing capacity.
func (p *msgPool) get() *wireMsg {
	p.mu.Lock()
	var m *wireMsg
	if n := len(p.free); n > 0 {
		m = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if m == nil {
		m = &wireMsg{pool: p}
	}
	atomic.StoreInt32(&m.refs, 1)
	return m
}

// put resets and recycles an envelope whose refcount reached zero.
// Event pointers are cleared so the pool never pins delivered events;
// the slice capacity itself is the thing being recycled.
func (p *msgPool) put(m *wireMsg) {
	for i := range m.Events {
		m.Events[i] = nil
	}
	events, ads := m.Events[:0], m.Ads[:0]
	*m = wireMsg{pool: m.pool, Events: events, Ads: ads}
	p.mu.Lock()
	p.free = append(p.free, m)
	p.mu.Unlock()
}

// Retain adds an in-flight reference (simnet.Refcounted). Envelopes
// allocated outside a pool — walks, infra messages, forwarded copies —
// are plain garbage-collected values and both methods no-op on them.
func (m *wireMsg) Retain() {
	if m.pool == nil {
		return
	}
	atomic.AddInt32(&m.refs, 1)
}

// Release drops one reference; the last one recycles the envelope.
func (m *wireMsg) Release() {
	if m.pool == nil {
		return
	}
	if atomic.AddInt32(&m.refs, -1) == 0 {
		m.pool.put(m)
	}
}
