package core

import (
	"math/rand"
	"sort"

	"fairgossip/internal/adaptive"
	"fairgossip/internal/fairness"
	"fairgossip/internal/gossip"
	"fairgossip/internal/membership"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
)

// Node is one FairGossip process. It implements simnet.Handler; the
// cluster drives its Round method from a jittered per-node ticker.
//
// Nodes are single-threaded: all methods run on the simulator goroutine.
type Node struct {
	id     simnet.NodeID
	net    *simnet.Network
	cfg    Config
	rng    *rand.Rand
	ledger *fairness.Ledger

	interest   pubsub.Interest
	seen       *gossip.SeenSet
	buffer     *gossip.Buffer         // content-mode event buffer
	groups     map[string]*topicGroup // topic-mode groups this node is in
	groupOrder []string               // sorted group topics (deterministic rounds)

	cyclon *membership.Cyclon // nil when MemberFull
	full   membership.FullSampler

	ctrl     adaptive.Controller
	lastAcct fairness.Account
	fanout   int
	batch    int

	round  int
	pubSeq uint32
	active bool

	// OnDeliver, when set, observes every delivered event.
	OnDeliver func(*pubsub.Event)

	// Cheat makes this node pad every outgoing gossip message with
	// cfg.JunkPadding bytes of worthless data (EXP-A6).
	Cheat bool

	// FreeRide makes this node stop forwarding gossip while it keeps
	// receiving and delivering — the classic defector the fairness
	// machinery exists to expose. Membership maintenance continues, so
	// the node stays reachable (and keeps benefiting).
	FreeRide bool

	// walkRelays counts subscription/publication walks this node relayed
	// for others — §5.1's maintenance burden.
	walkRelays uint64
	// walksSent counts walks this node originated.
	walksSent uint64

	// peerFPs remembers other peers' interest fingerprints for semantic
	// partner bias (semantic.go).
	peerFPs map[simnet.NodeID]uint64

	// pool recycles gossip envelopes (pool.go); nil falls back to plain
	// allocation. When set, event selection goes through SelectInto with
	// selScratch and buildGossip copies the batch into the envelope's
	// own recycled backing, so the scratch can be reused next round while
	// the envelope is still in flight.
	pool       *msgPool
	selScratch []*pubsub.Event

	// auditSink, when set, intercepts novelty audits instead of charging
	// the ledger directly. The sharded cluster installs one that applies
	// same-shard audits immediately and defers cross-shard audits to the
	// round barrier, where they are applied in fixed shard order — the
	// one write that would otherwise race another shard's controller
	// read and break fixed-seed reproducibility.
	auditSink func(from, useful, junk int)
}

// topicGroup is this node's slice of one per-topic gossip group.
type topicGroup struct {
	view    *membership.View
	buffer  *gossip.Buffer
	retryIn int // rounds until the join walk is retried while the view is empty
}

func newNode(id simnet.NodeID, net *simnet.Network, ledger *fairness.Ledger, cfg Config, n int, rng *rand.Rand) *Node {
	nd := &Node{
		id:     id,
		net:    net,
		cfg:    cfg,
		rng:    rng,
		ledger: ledger,
		seen:   gossip.NewSeenSet(cfg.SeenCap),
		buffer: gossip.NewBuffer(cfg.BufferCap, cfg.BufferMaxAge),
		groups: make(map[string]*topicGroup),
		ctrl:   buildController(cfg, n),
		active: true,
	}
	nd.fanout = nd.ctrl.Fanout()
	nd.batch = nd.ctrl.Batch()
	if cfg.Membership == MemberCyclon {
		nd.cyclon = membership.NewCyclon(membership.NewView(id, cfg.ViewCap), cfg.ShuffleLen)
	} else {
		nd.full = membership.FullSampler{Self: id, N: n}
	}
	return nd
}

// ID returns the node's network identity.
func (nd *Node) ID() simnet.NodeID { return nd.id }

// Fanout returns the current fanout lever F_i.
func (nd *Node) Fanout() int { return nd.fanout }

// Batch returns the current gossip-message-size lever N_i.
func (nd *Node) Batch() int { return nd.batch }

// Active reports whether the node is participating.
func (nd *Node) Active() bool { return nd.active }

// WalkRelays returns how many subscription/publication walks this node
// relayed on behalf of others.
func (nd *Node) WalkRelays() uint64 { return nd.walkRelays }

// Interest exposes the node's interest function (read-only use).
func (nd *Node) Interest() *pubsub.Interest { return &nd.interest }

// SetPopulation updates the idealised full sampler's population after a
// join (no-op under Cyclon, whose views learn of joiners through
// charged shuffle traffic instead).
func (nd *Node) SetPopulation(n int) { nd.full.N = n }

// bootstrapView seeds the overlay view (cluster wiring).
func (nd *Node) bootstrapView(ids []simnet.NodeID) {
	if nd.cyclon == nil {
		return
	}
	for _, id := range ids {
		nd.cyclon.View().Add(id)
	}
}

// overlayPeers samples k partners from the overlay substrate.
func (nd *Node) overlayPeers(k int) []simnet.NodeID {
	if nd.cyclon != nil {
		return nd.cyclon.View().Sample(nd.rng, k)
	}
	return nd.full.SamplePeers(nd.rng, k)
}

// send transmits a wire message and charges the ledger.
func (nd *Node) send(to simnet.NodeID, m *wireMsg, class fairness.Class) {
	size := m.size()
	nd.net.Send(nd.id, to, m, size)
	nd.ledger.AddSend(int(nd.id), class, size)
}

// --- Public API: the three operations of §2 -------------------------------

// Subscribe registers a filter and returns its subscription ID. In topic
// mode, plain topic filters additionally join the topic's gossip group
// through a random-walk subscription (§5.1).
func (nd *Node) Subscribe(f pubsub.Filter) pubsub.SubID {
	id := nd.interest.Subscribe(f)
	nd.ledger.SetFilters(int(nd.id), nd.interest.Count())
	if nd.cfg.Mode == ModeTopics {
		if topic, ok := pubsub.TopicOf(f); ok {
			nd.joinGroup(topic)
		}
	}
	return id
}

// Unsubscribe removes a subscription. In topic mode the node drops out of
// gossip groups no remaining filter selects; its stale view entries age
// out of other members' views.
func (nd *Node) Unsubscribe(id pubsub.SubID) bool {
	ok := nd.interest.Unsubscribe(id)
	if !ok {
		return false
	}
	nd.ledger.SetFilters(int(nd.id), nd.interest.Count())
	if nd.cfg.Mode == ModeTopics {
		for _, topic := range nd.groupOrder {
			if !nd.interest.HasTopic(topic) {
				delete(nd.groups, topic)
			}
		}
		nd.rebuildGroupOrder()
	}
	return true
}

// rebuildGroupOrder re-derives the sorted topic list from the group map.
func (nd *Node) rebuildGroupOrder() {
	nd.groupOrder = nd.groupOrder[:0]
	for topic := range nd.groups {
		nd.groupOrder = append(nd.groupOrder, topic)
	}
	sort.Strings(nd.groupOrder)
}

// Publish originates an event on the given topic. In topic mode a
// publisher that is not itself subscribed hands the event to a group
// member via a publication walk.
func (nd *Node) Publish(topic string, attrs []pubsub.Attr, payload []byte) pubsub.EventID {
	nd.pubSeq++
	ev := &pubsub.Event{
		ID:      pubsub.EventID{Publisher: uint32(nd.id), Seq: nd.pubSeq},
		Topic:   topic,
		Attrs:   attrs,
		Payload: payload,
	}
	nd.ledger.AddPublish(int(nd.id), ev.WireSize())
	nd.seen.Add(ev.ID)
	nd.deliverIfInterested(ev)

	if nd.cfg.Mode == ModeTopics {
		if g, ok := nd.groups[topic]; ok {
			g.buffer.Insert(ev)
		} else {
			nd.publishWalk(ev)
		}
	} else {
		nd.buffer.Insert(ev)
	}
	return ev.ID
}

// --- Round logic -----------------------------------------------------------

// Round executes one gossip period: membership maintenance, dissemination
// in every group (or the flat overlay), buffer aging, and periodically a
// controller update.
func (nd *Node) Round() {
	if !nd.active {
		return
	}
	nd.round++

	if nd.cyclon != nil && nd.round%nd.cfg.ShuffleEvery == 0 {
		nd.initiateShuffle()
	}

	switch nd.cfg.Mode {
	case ModeTopics:
		nd.roundTopics()
	default:
		nd.roundContent()
	}

	if nd.round%nd.cfg.ControlWindow == 0 {
		nd.updateController()
	}
}

func (nd *Node) roundContent() {
	if nd.FreeRide {
		nd.buffer.Tick()
		return
	}
	events := nd.selectEvents(nd.buffer)
	switch {
	case len(events) == 0:
	case nd.cfg.SemanticBias > 0:
		// Semantic mode sends topic-coherent sub-batches: a mixed batch
		// has a blurred fingerprint that matches everyone, so the bias
		// needs per-topic messages to have a signal.
		for _, group := range splitByTopic(events) {
			fp := batchFingerprint(group)
			for _, q := range nd.biasedPeers(nd.fanout, fp) {
				nd.sendGossip(q, "", group, nil)
			}
		}
	default:
		nd.sendGossipAll(nd.overlayPeers(nd.fanout), "", events, nil)
	}
	nd.buffer.Tick()
}

// splitByTopic partitions a batch into per-topic groups, in sorted topic
// order for determinism.
func splitByTopic(events []*pubsub.Event) [][]*pubsub.Event {
	byTopic := make(map[string][]*pubsub.Event)
	topics := make([]string, 0, 4)
	for _, ev := range events {
		if _, ok := byTopic[ev.Topic]; !ok {
			topics = append(topics, ev.Topic)
		}
		byTopic[ev.Topic] = append(byTopic[ev.Topic], ev)
	}
	sort.Strings(topics)
	out := make([][]*pubsub.Event, 0, len(topics))
	for _, t := range topics {
		out = append(out, byTopic[t])
	}
	return out
}

func (nd *Node) roundTopics() {
	minView := nd.cfg.TopicViewCap / 4
	if minView < 1 {
		minView = 1
	}
	for _, topic := range nd.groupOrder {
		g := nd.groups[topic]
		// Keep walking while the group view is undersized: a join that
		// terminated at another isolated newcomer would otherwise leave
		// a disconnected clique that never merges with the main group.
		if g.view.Len() < minView {
			if g.retryIn <= 0 {
				nd.subscribeWalk(topic)
				if g.view.Len() == 0 {
					g.retryIn = 4
				} else {
					g.retryIn = 8
				}
			} else {
				g.retryIn--
			}
		}
		// A free-rider withholds events but keeps heartbeating its ads:
		// membership maintenance continues, so it stays in group views
		// (and keeps benefiting) while contributing nothing.
		var events []*pubsub.Event
		if !nd.FreeRide {
			events = nd.selectEvents(g.buffer)
		}
		heartbeat := nd.round%4 == 0
		if len(events) == 0 && !heartbeat {
			g.buffer.Tick()
			continue
		}
		ads := nd.groupAds(g)
		nd.sendGossipAll(g.view.Sample(nd.rng, nd.fanout), topic, events, ads)
		g.buffer.Tick()
	}
}

// groupAds samples a few known members (plus self) to piggyback, keeping
// group views alive without a directory service.
func (nd *Node) groupAds(g *topicGroup) []membership.Entry {
	ads := make([]membership.Entry, 0, nd.cfg.AdLen+1)
	for _, id := range g.view.Sample(nd.rng, nd.cfg.AdLen) {
		ads = append(ads, membership.Entry{ID: id, Age: 1})
	}
	return append(ads, membership.Entry{ID: nd.id, Age: 0})
}

// selectEvents picks this round's batch from buf. With an envelope pool
// the selection lands in the node's reusable scratch (SelectInto draws
// the identical random stream, so pooling never changes a fixed-seed
// run); buildGossip then copies the batch into the envelope before the
// scratch's next reuse.
func (nd *Node) selectEvents(buf *gossip.Buffer) []*pubsub.Event {
	if nd.pool != nil {
		return buf.SelectInto(nd.rng, &nd.selScratch, nd.batch, nd.cfg.Policy)
	}
	return buf.Select(nd.rng, nd.batch, nd.cfg.Policy)
}

// buildGossip assembles one gossip wire message. Pooled envelopes come
// back with one owner reference; the send paths drop it after the fanout
// (wireMsg.Release no-ops on plain-allocated messages).
func (nd *Node) buildGossip(topic string, events []*pubsub.Event, ads []membership.Entry) *wireMsg {
	var m *wireMsg
	if nd.pool != nil {
		m = nd.pool.get()
		m.Kind = kindGossip
		m.Topic = topic
		m.Events = append(m.Events[:0], events...)
		m.Ads = append(m.Ads[:0], ads...)
	} else {
		m = &wireMsg{Kind: kindGossip, Topic: topic, Events: events, Ads: ads}
	}
	if nd.Cheat && nd.cfg.JunkPadding > 0 {
		m.Junk = nd.cfg.JunkPadding
	}
	if nd.cfg.SemanticBias > 0 {
		m.FP = interestFingerprint(&nd.interest)
		m.FPAds = nd.fpAds(2)
	}
	return m
}

func (nd *Node) sendGossip(to simnet.NodeID, topic string, events []*pubsub.Event, ads []membership.Entry) {
	m := nd.buildGossip(topic, events, ads)
	nd.send(to, m, fairness.ClassApp)
	m.Release()
}

// sendGossipAll fans one batch out to every peer. The network passes
// payloads by reference and receivers treat them as read-only, so outside
// semantic mode a single wireMsg (and a single size computation) is
// shared across the whole fanout instead of allocating one per peer.
func (nd *Node) sendGossipAll(peers []simnet.NodeID, topic string, events []*pubsub.Event, ads []membership.Entry) {
	if len(peers) == 0 {
		return
	}
	if nd.cfg.SemanticBias > 0 {
		// fpAds draws from the node's RNG: keep the historical per-peer
		// construction so fixed-seed runs stay bit-identical.
		for _, q := range peers {
			nd.sendGossip(q, topic, events, ads)
		}
		return
	}
	m := nd.buildGossip(topic, events, ads)
	size := m.size()
	for _, q := range peers {
		nd.net.Send(nd.id, q, m, size)
		nd.ledger.AddSend(int(nd.id), fairness.ClassApp, size)
	}
	m.Release()
}

func (nd *Node) updateController() {
	acct := nd.ledger.Account(int(nd.id))
	delta := fairness.Delta(acct, nd.lastAcct)
	nd.lastAcct = acct
	w := nd.ledger.Weights()
	sample := adaptive.Sample{
		Benefit:      fairness.Benefit(delta, w),
		Contribution: fairness.Contribution(delta, w),
	}
	nd.fanout, nd.batch = nd.ctrl.Update(sample)
}

// --- Membership ------------------------------------------------------------

func (nd *Node) initiateShuffle() {
	target, offer, ok := nd.cyclon.InitiateShuffle(nd.rng)
	if !ok {
		return
	}
	nd.send(target, &wireMsg{Kind: kindShuffle, Entries: offer}, fairness.ClassInfra)
}

// --- Topic-group joining (§5.1) ---------------------------------------------

func (nd *Node) joinGroup(topic string) {
	if _, ok := nd.groups[topic]; ok {
		return
	}
	nd.groups[topic] = &topicGroup{
		view:   membership.NewView(nd.id, nd.cfg.TopicViewCap),
		buffer: gossip.NewBuffer(nd.cfg.BufferCap, nd.cfg.BufferMaxAge),
	}
	nd.rebuildGroupOrder()
	nd.subscribeWalk(topic)
}

// subscribeWalk launches a random walk that terminates at some subscriber
// of the topic, which replies with group-bootstrap entries.
func (nd *Node) subscribeWalk(topic string) {
	contacts := nd.overlayPeers(1)
	if len(contacts) == 0 {
		return
	}
	nd.walksSent++
	nd.send(contacts[0], &wireMsg{
		Kind:   kindSubWalk,
		Topic:  topic,
		Origin: nd.id,
		Hops:   nd.cfg.WalkHopLimit,
	}, fairness.ClassInfra)
}

// publishWalk hands an event from a non-subscribed publisher to the
// topic's group.
func (nd *Node) publishWalk(ev *pubsub.Event) {
	contacts := nd.overlayPeers(1)
	if len(contacts) == 0 {
		return
	}
	nd.walksSent++
	nd.send(contacts[0], &wireMsg{
		Kind:   kindPubWalk,
		Topic:  ev.Topic,
		Events: []*pubsub.Event{ev},
		Origin: nd.id,
		Hops:   nd.cfg.WalkHopLimit,
	}, fairness.ClassInfra)
}

// --- Churn (§3.2 penalty) ----------------------------------------------------

// Leave takes the node offline without notice.
func (nd *Node) Leave() {
	nd.active = false
	nd.net.SetUp(nd.id, false)
}

// LeaveGracefully departs with notice — the sim mirror of the live
// runtime's Cluster.Leave. Under Cyclon membership the node hands up to
// ShuffleLen of its freshest view entries to every view neighbour in a
// charged kindLeave message before going offline, so the overlay loses
// an address without losing degree; under the full sampler there are no
// views to repair and the departure reduces to Leave.
func (nd *Node) LeaveGracefully() {
	if !nd.active {
		return
	}
	if nd.cyclon != nil {
		ents := nd.cyclon.View().Entries()
		sort.SliceStable(ents, func(i, j int) bool { return ents[i].Age < ents[j].Age })
		k := nd.cyclon.ShuffleLen()
		for _, to := range ents {
			hand := make([]membership.Entry, 0, k)
			for _, e := range ents {
				if len(hand) == k {
					break
				}
				if e.ID != to.ID {
					hand = append(hand, e)
				}
			}
			// Each message owns its slice: simnet delivers payloads later,
			// by reference.
			nd.send(to.ID, &wireMsg{Kind: kindLeave, Entries: hand}, fairness.ClassInfra)
		}
	}
	nd.Leave()
}

// Rejoin brings the node back, repairing its overlay view through the
// bootstrap contact and charging the configured instability penalty.
func (nd *Node) Rejoin(bootstrap simnet.NodeID) {
	nd.active = true
	nd.net.SetUp(nd.id, true)
	if nd.cfg.RepairPenalty > 0 {
		nd.ledger.AddChurnPenalty(int(nd.id), nd.cfg.RepairPenalty)
	}
	if nd.cyclon != nil {
		nd.send(bootstrap, &wireMsg{Kind: kindViewRepair}, fairness.ClassInfra)
	}
	// Re-join all topic groups (stale views may point to departed peers).
	for _, topic := range nd.groupOrder {
		if nd.groups[topic].view.Len() == 0 {
			nd.subscribeWalk(topic)
		}
	}
}

// --- Receive path ------------------------------------------------------------

// HandleMessage implements simnet.Handler.
func (nd *Node) HandleMessage(msg simnet.Message) {
	m, ok := msg.Payload.(*wireMsg)
	if !ok || !nd.active {
		return
	}
	switch m.Kind {
	case kindGossip:
		nd.handleGossip(msg.From, m)
	case kindShuffle:
		if nd.cyclon == nil {
			return
		}
		reply := nd.cyclon.HandleShuffle(nd.rng, msg.From, m.Entries)
		nd.send(msg.From, &wireMsg{Kind: kindShuffleReply, Entries: reply}, fairness.ClassInfra)
	case kindShuffleReply:
		if nd.cyclon == nil {
			return
		}
		nd.cyclon.HandleReply(msg.From, m.Entries)
	case kindSubWalk:
		nd.handleSubWalk(msg.From, m)
	case kindSubAck:
		nd.handleSubAck(m)
	case kindPubWalk:
		nd.handlePubWalk(msg.From, m)
	case kindViewRepair:
		if nd.cyclon == nil {
			return
		}
		nd.send(msg.From, &wireMsg{
			Kind:    kindViewRepairAck,
			Entries: nd.cyclon.View().Entries(),
		}, fairness.ClassInfra)
		// Knowing the requester is alive is free information: remember it,
		// so a joining node becomes reachable the moment its seed answers.
		nd.cyclon.View().Add(msg.From)
	case kindViewRepairAck:
		if nd.cyclon == nil {
			return
		}
		for _, e := range m.Entries {
			nd.cyclon.View().AddAged(e)
		}
	case kindLeave:
		if nd.cyclon == nil {
			return
		}
		// Forget the leaver, adopt the replacement contacts it handed over.
		nd.cyclon.View().Remove(msg.From)
		for _, e := range m.Entries {
			if e.ID != msg.From {
				nd.cyclon.View().AddAged(e)
			}
		}
	}
}

func (nd *Node) handleGossip(from simnet.NodeID, m *wireMsg) {
	if nd.cfg.SemanticBias > 0 {
		nd.rememberFingerprint(from, m.FP)
		for _, ad := range m.FPAds {
			nd.rememberFingerprint(ad.ID, ad.FP)
		}
	}
	novel, dup := 0, m.Junk
	var g *topicGroup
	if nd.cfg.Mode == ModeTopics {
		g = nd.groups[m.Topic]
		if g != nil {
			for _, ad := range m.Ads {
				g.view.AddAged(ad)
			}
		}
	}
	for _, ev := range m.Events {
		if !nd.seen.Add(ev.ID) {
			dup += ev.WireSize()
			continue
		}
		novel += ev.WireSize()
		switch {
		case nd.cfg.Mode == ModeTopics:
			// Fair-by-structure: only group members re-forward. Events
			// for groups we are not in are delivered (if interesting)
			// but never buffered for forwarding.
			if g != nil {
				g.buffer.Insert(ev)
			}
		default:
			nd.buffer.Insert(ev)
		}
		nd.deliverIfInterested(ev)
	}
	// Novelty audit (§5.2 bias resistance): grade the sender's bytes.
	// This is the one ledger write aimed at ANOTHER process's account;
	// sharded clusters route it through auditSink so a remote sender's
	// controller never races it mid-window.
	if nd.auditSink != nil {
		nd.auditSink(int(from), novel, dup)
		return
	}
	nd.ledger.AddAudit(int(from), novel, dup)
}

func (nd *Node) handleSubWalk(from simnet.NodeID, m *wireMsg) {
	if g, ok := nd.groups[m.Topic]; ok {
		// We are a subscriber: answer with bootstrap entries and adopt
		// the new member.
		entries := make([]membership.Entry, 0, nd.cfg.ShuffleLen+1)
		for _, id := range g.view.Sample(nd.rng, nd.cfg.ShuffleLen) {
			entries = append(entries, membership.Entry{ID: id, Age: 1})
		}
		entries = append(entries, membership.Entry{ID: nd.id, Age: 0})
		nd.send(m.Origin, &wireMsg{Kind: kindSubAck, Topic: m.Topic, Entries: entries}, fairness.ClassInfra)
		g.view.Add(m.Origin)
		return
	}
	// Not interested: relay — the §5.1 maintenance burden.
	if m.Hops <= 1 {
		return // walk dies
	}
	nd.walkRelays++
	next := nd.overlayPeers(1)
	if len(next) == 0 || next[0] == from {
		next = nd.overlayPeers(1)
	}
	if len(next) == 0 {
		return
	}
	fwd := *m
	fwd.Hops = m.Hops - 1
	fwd.pool, fwd.refs = nil, 0 // the forwarded copy is plain-allocated
	nd.send(next[0], &fwd, fairness.ClassInfra)
}

func (nd *Node) handleSubAck(m *wireMsg) {
	g, ok := nd.groups[m.Topic]
	if !ok {
		return // unsubscribed while the walk was in flight
	}
	for _, e := range m.Entries {
		g.view.AddAged(e)
	}
}

func (nd *Node) handlePubWalk(from simnet.NodeID, m *wireMsg) {
	if g, ok := nd.groups[m.Topic]; ok {
		for _, ev := range m.Events {
			if nd.seen.Add(ev.ID) {
				g.buffer.Insert(ev)
				nd.deliverIfInterested(ev)
			}
		}
		return
	}
	if m.Hops <= 1 {
		return
	}
	nd.walkRelays++
	next := nd.overlayPeers(1)
	if len(next) == 0 || next[0] == from {
		next = nd.overlayPeers(1)
	}
	if len(next) == 0 {
		return
	}
	fwd := *m
	fwd.Hops = m.Hops - 1
	fwd.pool, fwd.refs = nil, 0 // the forwarded copy is plain-allocated
	nd.send(next[0], &fwd, fairness.ClassInfra)
}

func (nd *Node) deliverIfInterested(ev *pubsub.Event) {
	if !nd.interest.Match(ev) {
		return
	}
	nd.ledger.AddDelivery(int(nd.id))
	if nd.OnDeliver != nil {
		nd.OnDeliver(ev)
	}
}

var _ simnet.Handler = (*Node)(nil)
