package core

import (
	"testing"
	"time"

	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
)

// TestPartitionHealConvergence exercises the epidemic-resilience claim the
// paper leans on (§4.2, citing Demers et al.): events published during a
// network partition reach the other side after healing, as long as they
// are still alive in some buffer when connectivity returns.
func TestPartitionHealConvergence(t *testing.T) {
	c := NewCluster(48, Config{
		Mode:         ModeContent,
		Fanout:       5,
		Batch:        8,
		BufferMaxAge: 30, // long enough to survive the partition window
	}, ClusterOptions{
		Seed:      21,
		NetConfig: simnet.Config{Latency: simnet.ConstantLatency(2 * time.Millisecond)},
	})
	for _, nd := range c.Nodes {
		nd.Subscribe(pubsub.MatchAll())
	}
	c.RunRounds(10)

	// Partition nodes 0..23 away from 24..47.
	side := make([]simnet.NodeID, 24)
	for i := range side {
		side[i] = simnet.NodeID(i)
	}
	c.Net.Partition(side)

	// Publish one event on each side during the partition.
	c.Node(0).Publish("left", nil, nil)
	c.Node(30).Publish("right", nil, nil)
	c.RunRounds(10)

	// During the partition, nothing crosses.
	leftHasRight, rightHasLeft := 0, 0
	for i := 0; i < 24; i++ {
		if c.Ledger.Account(i).Delivered >= 2 {
			leftHasRight++
		}
	}
	for i := 24; i < 48; i++ {
		if c.Ledger.Account(i).Delivered >= 2 {
			rightHasLeft++
		}
	}
	if leftHasRight != 0 || rightHasLeft != 0 {
		t.Fatalf("events crossed the partition: %d/%d", leftHasRight, rightHasLeft)
	}

	// Heal and converge.
	c.Net.Heal()
	c.RunRounds(25)
	for i := 0; i < 48; i++ {
		if got := c.Ledger.Account(i).Delivered; got != 2 {
			t.Fatalf("node %d delivered %d events after heal, want 2", i, got)
		}
	}
}
