package core
