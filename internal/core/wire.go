package core

import (
	"fairgossip/internal/gossip"
	"fairgossip/internal/membership"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
)

// msgKind discriminates FairGossip wire messages.
type msgKind uint8

const (
	kindGossip        msgKind = iota + 1 // event dissemination (app)
	kindShuffle                          // Cyclon offer (infra)
	kindShuffleReply                     // Cyclon answer (infra)
	kindSubWalk                          // subscription random walk (infra)
	kindSubAck                           // walk answer: group bootstrap (infra)
	kindPubWalk                          // publisher hand-off walk (infra)
	kindViewRepair                       // rejoin view request (infra)
	kindViewRepairAck                    // rejoin view answer (infra)
	kindLeave                            // graceful departure + hand-off entries (infra)
)

// fpAd is a third-party interest-fingerprint advertisement: profile
// knowledge spreads epidemically so semantic bias has peers to choose
// from (semantic.go).
type fpAd struct {
	ID simnet.NodeID
	FP uint64
}

// wireMsg is the single multiplexed payload type FairGossip sends over
// simnet. Only the fields relevant to Kind are set.
type wireMsg struct {
	Kind msgKind

	// kindGossip / kindPubWalk
	Events []*pubsub.Event
	Topic  string             // topic-mode group tag ("" in content mode)
	Ads    []membership.Entry // piggybacked group membership ads
	Junk   int                // cheater padding bytes (counted, carries nothing)
	FP     uint64             // sender interest fingerprint (semantic bias)
	FPAds  []fpAd             // piggybacked third-party fingerprints

	// kindShuffle / kindShuffleReply / kindSubAck / kindViewRepairAck
	Entries []membership.Entry

	// kindSubWalk / kindPubWalk
	Origin simnet.NodeID
	Hops   int

	// pool/refs make gossip envelopes reference-counted and recyclable
	// (pool.go). nil pool = plain allocated message; Retain/Release
	// no-op on it, and the walk paths' `fwd := *m` forwarding copies
	// stay plain (refs is an int32 manipulated via sync/atomic rather
	// than an atomic.Int32 precisely so those value copies stay legal).
	pool *msgPool
	refs int32
}

const (
	wireHeaderSize = 8
	topicTagSize   = 2 // length prefix; topic bytes added separately
)

// size computes the accounting size of a wire message.
func (m *wireMsg) size() int {
	n := wireHeaderSize
	switch m.Kind {
	case kindGossip, kindPubWalk:
		n += gossip.MsgWireSize(m.Events) - gossip.MsgHeaderSize
		n += topicTagSize + len(m.Topic)
		n += len(m.Ads) * membership.EntryWireSize
		n += m.Junk
		if m.FP != 0 {
			n += fingerprintWireSize
		}
		n += len(m.FPAds) * (4 + fingerprintWireSize)
		if m.Kind == kindPubWalk {
			n += 6 // origin + hops
		}
	case kindShuffle, kindShuffleReply, kindSubAck, kindViewRepairAck, kindLeave:
		n += len(m.Entries) * membership.EntryWireSize
		n += topicTagSize + len(m.Topic)
	case kindSubWalk:
		n += topicTagSize + len(m.Topic) + 6
	case kindViewRepair:
		n += 2
	}
	return n
}
