package core

import (
	"testing"
	"time"

	"fairgossip/internal/fairness"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
)

func TestLeaveRejoinWithPenalty(t *testing.T) {
	c := NewCluster(32, Config{
		Mode:          ModeContent,
		Fanout:        5,
		RepairPenalty: 500,
	}, ClusterOptions{
		Seed:      1,
		NetConfig: simnet.Config{Latency: simnet.ConstantLatency(2 * time.Millisecond)},
	})
	for _, nd := range c.Nodes {
		nd.Subscribe(pubsub.MatchAll())
	}
	c.RunRounds(10)

	victim := c.Node(7)
	victim.Leave()
	if victim.Active() {
		t.Fatal("node still active after Leave")
	}
	deliveredBefore := c.Ledger.Account(7).Delivered
	c.Node(0).Publish("t", nil, nil)
	c.RunRounds(15)
	if got := c.Ledger.Account(7).Delivered; got != deliveredBefore {
		t.Fatal("down node delivered events")
	}

	victim.Rejoin(simnet.NodeID(0))
	c.RunRounds(5)
	if !victim.Active() {
		t.Fatal("node not active after Rejoin")
	}
	if got := c.Ledger.Account(7).ChurnPenalty; got != 500 {
		t.Fatalf("churn penalty = %v, want 500", got)
	}
	// View repair restored connectivity: the node delivers fresh events.
	c.Node(1).Publish("t2", nil, nil)
	c.RunRounds(20)
	if got := c.Ledger.Account(7).Delivered; got <= deliveredBefore {
		t.Fatal("rejoined node never recovered delivery")
	}
}

func TestRejoinWithoutPenaltyConfigured(t *testing.T) {
	c := NewCluster(8, Config{Mode: ModeContent}, ClusterOptions{Seed: 2})
	c.RunRounds(2)
	c.Node(3).Leave()
	c.Node(3).Rejoin(0)
	if got := c.Ledger.Account(3).ChurnPenalty; got != 0 {
		t.Fatalf("penalty charged despite RepairPenalty=0: %v", got)
	}
}

func TestCheaterAuditExposure(t *testing.T) {
	// EXP-A6 in miniature: a cheater pads every gossip message with junk
	// bytes. Raw contribution rewards it; the novelty audit does not.
	c := NewCluster(32, Config{
		Mode:        ModeContent,
		Fanout:      5,
		Batch:       4,
		JunkPadding: 400,
	}, ClusterOptions{
		Seed:      3,
		NetConfig: simnet.Config{Latency: simnet.ConstantLatency(2 * time.Millisecond)},
	})
	const cheater = 9
	c.Node(cheater).Cheat = true
	for _, nd := range c.Nodes {
		nd.Subscribe(pubsub.MatchAll())
	}
	c.RunRounds(5)
	for i := 0; i < 20; i++ {
		c.Node(i%8).Publish("t", nil, make([]byte, 24))
		c.RunRounds(2)
	}
	c.RunRounds(10)

	cheatAcct := c.Ledger.Account(cheater)
	if cheatAcct.JunkBytes == 0 {
		t.Fatal("cheater accumulated no junk")
	}
	// Raw bytes per app message: cheater's messages are padded, so its
	// raw contribution per message is inflated versus honest peers.
	var honestUseful, honestJunk, honestRaw float64
	honestCount := 0
	for i := 0; i < 32; i++ {
		if i == cheater {
			continue
		}
		a := c.Ledger.Account(i)
		if a.MsgsSent[fairness.ClassApp] == 0 {
			continue
		}
		honestUseful += float64(a.UsefulBytes)
		honestJunk += float64(a.JunkBytes)
		honestRaw += float64(a.BytesSent[fairness.ClassApp])
		honestCount++
	}
	if honestCount == 0 {
		t.Fatal("no honest forwarders")
	}
	honestUsefulFrac := honestUseful / (honestUseful + honestJunk)
	cheatUsefulFrac := float64(cheatAcct.UsefulBytes) /
		float64(cheatAcct.UsefulBytes+cheatAcct.JunkBytes)
	if cheatUsefulFrac >= honestUsefulFrac {
		t.Fatalf("audit failed to expose cheater: useful frac cheater %.3f vs honest %.3f",
			cheatUsefulFrac, honestUsefulFrac)
	}

	// Under audited weights the cheater's contribution collapses toward
	// what its useful bytes justify.
	aw := fairness.Weights{Kappa: 1, InfraWeight: 1, Audited: true}
	rawContrib := fairness.Contribution(cheatAcct, fairness.DefaultWeights())
	auditedContrib := fairness.Contribution(cheatAcct, aw)
	if auditedContrib >= rawContrib {
		t.Fatalf("audited contribution %.0f not below raw %.0f", auditedContrib, rawContrib)
	}
}

func TestInactiveNodeSkipsRounds(t *testing.T) {
	c := NewCluster(4, Config{Mode: ModeContent}, ClusterOptions{Seed: 4})
	c.Node(2).Leave()
	sent := c.Net.Stats(2).MsgsSent
	c.RunRounds(10)
	if got := c.Net.Stats(2).MsgsSent; got != sent {
		t.Fatal("inactive node kept sending")
	}
}

func TestHandleMessageIgnoresGarbage(t *testing.T) {
	c := NewCluster(2, Config{Mode: ModeContent}, ClusterOptions{Seed: 5})
	c.Node(0).HandleMessage(simnet.Message{From: 1, To: 0, Payload: 42, Size: 1})
	// A wireMsg of an unknown kind is also ignored.
	c.Node(0).HandleMessage(simnet.Message{From: 1, To: 0, Payload: &wireMsg{Kind: msgKind(99)}, Size: 1})
	if c.Ledger.Account(0).Delivered != 0 {
		t.Fatal("garbage processed")
	}
}

func TestSubscribeContentModeNoWalk(t *testing.T) {
	// Content mode must not launch topic walks even for topic filters.
	c := NewCluster(8, Config{Mode: ModeContent}, ClusterOptions{Seed: 6})
	c.Node(0).Subscribe(pubsub.Topic("t"))
	if c.Node(0).walksSent != 0 {
		t.Fatal("content mode launched a subscription walk")
	}
	if len(c.Node(0).groups) != 0 {
		t.Fatal("content mode created a topic group")
	}
}
