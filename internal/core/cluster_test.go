package core

import (
	"testing"
	"time"

	"fairgossip/internal/fairness"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
)

func contentCluster(n int, seed int64, spec ControllerSpec) *Cluster {
	return NewCluster(n, Config{
		Mode:       ModeContent,
		Controller: spec,
		Fanout:     5,
		Batch:      8,
	}, ClusterOptions{
		Seed:      seed,
		NetConfig: simnet.Config{Latency: simnet.ConstantLatency(2 * time.Millisecond)},
	})
}

func TestContentDisseminationReachesEveryone(t *testing.T) {
	c := contentCluster(64, 1, ControllerSpec{Kind: ControllerStatic})
	for _, nd := range c.Nodes {
		nd.Subscribe(pubsub.MatchAll())
	}
	c.RunRounds(5) // let cyclon warm up
	c.Node(0).Publish("news", nil, []byte("payload"))
	c.RunRounds(20)

	all := make([]int, len(c.Nodes))
	for i := range all {
		all[i] = i
	}
	if ratio := c.DeliveryRatio(all, 1); ratio < 0.99 {
		t.Fatalf("delivery ratio %.3f, want ≈1", ratio)
	}
}

func TestContentModeUninterestedStillForward(t *testing.T) {
	// The classic-gossip pathology (§4.2): non-interested nodes carry
	// app traffic anyway.
	c := contentCluster(48, 2, ControllerSpec{Kind: ControllerStatic})
	for i, nd := range c.Nodes {
		if i < 8 {
			nd.Subscribe(pubsub.Topic("hot"))
		}
	}
	c.RunRounds(5)
	for i := 0; i < 10; i++ {
		c.Node(0).Publish("hot", nil, nil)
		c.RunRounds(2)
	}
	c.RunRounds(10)

	forwarders := 0
	for i := 8; i < 48; i++ {
		a := c.Ledger.Account(i)
		if a.Delivered != 0 {
			t.Fatalf("uninterested node %d delivered", i)
		}
		if a.BytesSent[fairness.ClassApp] > 0 {
			forwarders++
		}
	}
	if forwarders < 30 {
		t.Fatalf("only %d/40 uninterested nodes forwarded — not classic gossip", forwarders)
	}
}

func TestAdaptiveImprovesFairnessUnderSkewedInterest(t *testing.T) {
	// EXP-F1 in miniature: half the nodes interested in everything, half
	// in (almost) nothing. Static gossip spreads work evenly → unfair
	// ratios; the adaptive controller must narrow the spread.
	run := func(spec ControllerSpec) fairness.Report {
		c := contentCluster(64, 3, spec)
		for i, nd := range c.Nodes {
			if i%2 == 0 {
				nd.Subscribe(pubsub.MatchAll())
			} else {
				nd.Subscribe(pubsub.Topic("rare-topic-never-published"))
			}
		}
		c.RunRounds(5)
		for r := 0; r < 60; r++ {
			c.Node(r%64).Publish("bulk", nil, make([]byte, 32))
			c.RunRounds(1)
		}
		c.RunRounds(10)
		return c.Report()
	}
	static := run(ControllerSpec{Kind: ControllerStatic})
	adaptive := run(ControllerSpec{Kind: ControllerAIMD, TargetRatio: 2000})

	if adaptive.RatioJain <= static.RatioJain {
		t.Fatalf("adaptive Jain %.3f not better than static %.3f",
			adaptive.RatioJain, static.RatioJain)
	}
	if adaptive.ContribBenefitCorr < 0.3 || adaptive.ContribBenefitCorr <= static.ContribBenefitCorr {
		t.Fatalf("adaptive corr %.3f (static %.3f): adaptation did not align work with benefit",
			adaptive.ContribBenefitCorr, static.ContribBenefitCorr)
	}
}

func TestAdaptiveFanoutActuallyMoves(t *testing.T) {
	c := contentCluster(64, 4, ControllerSpec{Kind: ControllerAIMD, TargetRatio: 50})
	for i, nd := range c.Nodes {
		if i%4 == 0 {
			nd.Subscribe(pubsub.MatchAll())
		} else {
			nd.Subscribe(pubsub.Topic("nothing"))
		}
	}
	c.RunRounds(5)
	initial := c.Node(1).Fanout()*1000 + c.Node(1).Batch()
	for r := 0; r < 20; r++ {
		c.Node(0).Publish("x", nil, make([]byte, 64))
		c.RunRounds(3)
	}
	moved := false
	for _, nd := range c.Nodes {
		if nd.Fanout()*1000+nd.Batch() != initial {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("no node's levers moved under adaptation")
	}
}

func TestClusterDeterminism(t *testing.T) {
	run := func() (uint64, fairness.Report) {
		c := contentCluster(32, 42, ControllerSpec{Kind: ControllerAIMD, TargetRatio: 100})
		for _, nd := range c.Nodes {
			nd.Subscribe(pubsub.MatchAll())
		}
		c.RunRounds(5)
		for i := 0; i < 5; i++ {
			c.Node(i).Publish("t", nil, nil)
		}
		c.RunRounds(20)
		return c.DeliveredTotal(), c.Report()
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 {
		t.Fatalf("delivered totals differ: %d vs %d", d1, d2)
	}
	if r1.RatioJain != r2.RatioJain || r1.WorkCoV != r2.WorkCoV {
		t.Fatalf("reports differ: %+v vs %+v", r1, r2)
	}
}

func TestClusterStartStopIdempotent(t *testing.T) {
	c := contentCluster(8, 5, ControllerSpec{Kind: ControllerStatic})
	c.Start()
	c.Start() // no double tickers
	if len(c.tickers) != 8 {
		t.Fatalf("tickers = %d, want 8", len(c.tickers))
	}
	c.Stop()
	if len(c.tickers) != 0 {
		t.Fatal("stop did not clear tickers")
	}
	c.RunRounds(1) // restarts lazily
	if len(c.tickers) != 8 {
		t.Fatal("RunRounds did not restart")
	}
}

func TestDeliveryRatioHelper(t *testing.T) {
	c := contentCluster(4, 6, ControllerSpec{Kind: ControllerStatic})
	if got := c.DeliveryRatio(nil, 1); got != 1 {
		t.Fatalf("empty interested = %v", got)
	}
	c.Node(0).Subscribe(pubsub.MatchAll())
	c.Node(0).Publish("t", nil, nil)
	if got := c.DeliveryRatio([]int{0, 1}, 1); got != 0.5 {
		t.Fatalf("ratio = %v, want 0.5", got)
	}
}

func TestFullMembershipMode(t *testing.T) {
	c := NewCluster(32, Config{
		Mode:       ModeContent,
		Membership: MemberFull,
		Fanout:     5,
	}, ClusterOptions{Seed: 7})
	for _, nd := range c.Nodes {
		nd.Subscribe(pubsub.MatchAll())
	}
	c.Node(0).Publish("t", nil, nil)
	c.RunRounds(15)
	all := make([]int, 32)
	for i := range all {
		all[i] = i
	}
	if ratio := c.DeliveryRatio(all, 1); ratio < 0.99 {
		t.Fatalf("full-membership delivery %.3f", ratio)
	}
	// No infra traffic with the free sampler.
	for i := range c.Nodes {
		if c.Ledger.Account(i).BytesSent[fairness.ClassInfra] != 0 {
			t.Fatal("MemberFull should charge no infrastructure traffic")
		}
	}
}

func TestSmoothedControllerConfigured(t *testing.T) {
	// Smoothing must keep the cluster functional and still adapt under
	// sustained pressure.
	c := NewCluster(32, Config{
		Mode:   ModeContent,
		Fanout: 8,
		Batch:  16,
		Controller: ControllerSpec{
			Kind:        ControllerAIMD,
			TargetRatio: 10, // absurdly tight: must shed
			Smoothing:   0.3,
		},
	}, ClusterOptions{Seed: 9})
	for _, nd := range c.Nodes {
		nd.Subscribe(pubsub.MatchAll())
	}
	for r := 0; r < 20; r++ {
		c.Node(r%32).Publish("t", nil, make([]byte, 32))
		c.RunRounds(3)
	}
	shed := 0
	for _, nd := range c.Nodes {
		if nd.Fanout()*nd.Batch() < 8*16 {
			shed++
		}
	}
	if shed < 16 {
		t.Fatalf("only %d/32 smoothed controllers shed load", shed)
	}
}

func TestCyclonGeneratesInfraTraffic(t *testing.T) {
	c := contentCluster(32, 8, ControllerSpec{Kind: ControllerStatic})
	c.RunRounds(20)
	withInfra := 0
	for i := range c.Nodes {
		if c.Ledger.Account(i).BytesSent[fairness.ClassInfra] > 0 {
			withInfra++
		}
	}
	if withInfra < 30 {
		t.Fatalf("only %d/32 nodes paid membership costs", withInfra)
	}
}

// TestClusterJoinMidRun: a node joining a running cluster grows the
// ledger, gets a round ticker, integrates into the membership substrate
// of either mode (Cyclon through a charged view-repair exchange, full
// membership through the idealised directory), and both sends and
// receives events.
func TestClusterJoinMidRun(t *testing.T) {
	for _, membership := range []Membership{MemberCyclon, MemberFull} {
		name := "cyclon"
		if membership == MemberFull {
			name = "full"
		}
		t.Run(name, func(t *testing.T) {
			c := NewCluster(16, Config{
				Mode:       ModeContent,
				Membership: membership,
				Fanout:     5,
				Batch:      8,
			}, ClusterOptions{
				Seed:      21,
				NetConfig: simnet.Config{Latency: simnet.ConstantLatency(2 * time.Millisecond)},
			})
			for _, nd := range c.Nodes {
				nd.Subscribe(pubsub.MatchAll())
			}
			c.RunRounds(8)
			id := c.Join(3)
			if int(id) != 16 || len(c.Nodes) != 17 || c.Ledger.Len() != 17 {
				t.Fatalf("join bookkeeping: id %d, %d nodes, ledger %d", id, len(c.Nodes), c.Ledger.Len())
			}
			joiner := c.Node(int(id))
			joiner.Subscribe(pubsub.MatchAll())
			c.RunRounds(8) // let the joiner's address spread
			c.Node(5).Publish("to-the-joiner", nil, []byte("x"))
			c.RunRounds(20)
			if got := c.Ledger.Account(int(id)).Delivered; got != 1 {
				t.Fatalf("joiner delivered %d of 1 events published after it joined", got)
			}
			joiner.Publish("from-the-joiner", nil, []byte("y"))
			c.RunRounds(20)
			all := make([]int, len(c.Nodes))
			for i := range all {
				all[i] = i
			}
			if ratio := c.DeliveryRatio(all, 2); ratio < 0.99 {
				t.Fatalf("delivery ratio %.3f after joiner published, want ≈1", ratio)
			}
		})
	}
}

// TestClusterJoinDeterminism: joins preserve the simulator's
// fixed-seed determinism.
func TestClusterJoinDeterminism(t *testing.T) {
	run := func() uint64 {
		c := contentCluster(12, 9, ControllerSpec{Kind: ControllerStatic})
		for _, nd := range c.Nodes {
			nd.Subscribe(pubsub.MatchAll())
		}
		c.RunRounds(5)
		c.Join(0)
		c.Join(2)
		c.Node(12).Subscribe(pubsub.MatchAll())
		c.Node(13).Subscribe(pubsub.MatchAll())
		c.RunRounds(5)
		c.Node(1).Publish("t", nil, []byte("z"))
		c.RunRounds(15)
		return c.DeliveredTotal() + c.Net.TotalTraffic().MsgsSent*1000
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("join broke determinism: %d vs %d", a, b)
	}
}
