package core

import (
	"testing"
	"time"

	"fairgossip/internal/fairness"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
)

func topicCluster(n int, seed int64) *Cluster {
	return NewCluster(n, Config{
		Mode:   ModeTopics,
		Fanout: 4,
		Batch:  8,
	}, ClusterOptions{
		Seed:      seed,
		NetConfig: simnet.Config{Latency: simnet.ConstantLatency(2 * time.Millisecond)},
	})
}

func TestTopicGroupDissemination(t *testing.T) {
	c := topicCluster(64, 1)
	// Nodes 0..19 subscribe to "sports"; the rest to "politics".
	for i, nd := range c.Nodes {
		if i < 20 {
			nd.Subscribe(pubsub.Topic("sports"))
		} else {
			nd.Subscribe(pubsub.Topic("politics"))
		}
	}
	c.RunRounds(15) // walks + group formation
	for i := 0; i < 5; i++ {
		c.Node(0).Publish("sports", nil, []byte("goal"))
		c.RunRounds(3)
	}
	c.RunRounds(15)

	subscribers := make([]int, 0, 20)
	for i := 0; i < 20; i++ {
		subscribers = append(subscribers, i)
	}
	if ratio := c.DeliveryRatio(subscribers, 4); ratio < 0.9 {
		t.Fatalf("sports subscribers delivery ratio %.3f, want ≥0.9", ratio)
	}
	// Non-subscribers must deliver nothing.
	for i := 20; i < 64; i++ {
		if d := c.Ledger.Account(i).Delivered; d != 0 {
			t.Fatalf("politics subscriber %d delivered %d sports events", i, d)
		}
	}
}

func TestTopicModeFairByStructure(t *testing.T) {
	// In topic mode only subscribers carry a topic's traffic: nodes with
	// no subscription at all must carry zero application bytes.
	c := topicCluster(48, 2)
	for i := 0; i < 24; i++ {
		c.Node(i).Subscribe(pubsub.Topic("hot"))
	}
	// Nodes 24..47 subscribe to nothing.
	c.RunRounds(15)
	for i := 0; i < 10; i++ {
		c.Node(0).Publish("hot", nil, make([]byte, 32))
		c.RunRounds(2)
	}
	c.RunRounds(10)

	for i := 24; i < 48; i++ {
		a := c.Ledger.Account(i)
		if a.BytesSent[fairness.ClassApp] != 0 {
			t.Fatalf("non-subscriber %d forwarded %d app bytes", i, a.BytesSent[fairness.ClassApp])
		}
	}
	// Subscribers did carry traffic.
	carried := 0
	for i := 0; i < 24; i++ {
		if c.Ledger.Account(i).BytesSent[fairness.ClassApp] > 0 {
			carried++
		}
	}
	if carried < 20 {
		t.Fatalf("only %d/24 subscribers carried app traffic", carried)
	}
}

func TestTopicPublishByNonSubscriber(t *testing.T) {
	c := topicCluster(48, 3)
	for i := 0; i < 16; i++ {
		c.Node(i).Subscribe(pubsub.Topic("alerts"))
	}
	c.RunRounds(15)
	// Node 40 is not subscribed; it publishes via a publication walk.
	c.Node(40).Publish("alerts", nil, []byte("fire"))
	c.RunRounds(25)

	subscribers := make([]int, 16)
	for i := range subscribers {
		subscribers[i] = i
	}
	if ratio := c.DeliveryRatio(subscribers, 1); ratio < 0.9 {
		t.Fatalf("hand-off publish delivery ratio %.3f", ratio)
	}
	// Publisher must not deliver its own uninteresting event.
	if c.Ledger.Account(40).Delivered != 0 {
		t.Fatal("non-subscribed publisher delivered its own event")
	}
}

func TestSubscriptionWalkRelaysCounted(t *testing.T) {
	// §5.1: relays of subscription walks do unrequited maintenance work.
	c := topicCluster(64, 4)
	// One early subscriber so walks have a terminus.
	c.Node(0).Subscribe(pubsub.Topic("niche"))
	c.RunRounds(10)
	// A burst of late joiners generates walks across uninterested relays.
	for i := 1; i < 20; i++ {
		c.Node(i).Subscribe(pubsub.Topic("niche"))
	}
	c.RunRounds(20)

	var relays uint64
	for _, nd := range c.Nodes {
		relays += nd.WalkRelays()
	}
	if relays == 0 {
		t.Fatal("no walk relays recorded — §5.1 burden not modeled")
	}
	// Relays are charged as infrastructure contribution.
	foundInfraOnUninvolved := false
	for i := 20; i < 64; i++ {
		if c.Nodes[i].WalkRelays() > 0 && c.Ledger.Account(i).BytesSent[fairness.ClassInfra] > 0 {
			foundInfraOnUninvolved = true
			break
		}
	}
	if !foundInfraOnUninvolved {
		t.Fatal("walk relay work was not charged to uninterested relays")
	}
}

func TestUnsubscribeLeavesGroup(t *testing.T) {
	c := topicCluster(32, 5)
	var subID pubsub.SubID
	for i := 0; i < 16; i++ {
		id := c.Node(i).Subscribe(pubsub.Topic("t"))
		if i == 5 {
			subID = id
		}
	}
	c.RunRounds(15)
	before := c.Ledger.Account(5).Delivered

	if !c.Node(5).Unsubscribe(subID) {
		t.Fatal("unsubscribe failed")
	}
	if len(c.Node(5).groups) != 0 {
		t.Fatal("group not dropped on unsubscribe")
	}
	c.Node(0).Publish("t", nil, nil)
	c.RunRounds(20)
	if after := c.Ledger.Account(5).Delivered; after != before {
		t.Fatalf("delivered %d events after unsubscribe", after-before)
	}
}

func TestTopicViewsPopulate(t *testing.T) {
	c := topicCluster(32, 6)
	for i := 0; i < 12; i++ {
		c.Node(i).Subscribe(pubsub.Topic("x"))
	}
	c.RunRounds(25)
	populated := 0
	for i := 0; i < 12; i++ {
		if g := c.Node(i).groups["x"]; g != nil && g.view.Len() > 0 {
			populated++
		}
	}
	if populated < 10 {
		t.Fatalf("only %d/12 members discovered group peers", populated)
	}
}

func TestMultiTopicSubscriber(t *testing.T) {
	c := topicCluster(48, 7)
	for i := 0; i < 12; i++ {
		c.Node(i).Subscribe(pubsub.Topic("a"))
	}
	for i := 8; i < 24; i++ {
		c.Node(i).Subscribe(pubsub.Topic("b"))
	}
	c.RunRounds(15)
	c.Node(0).Publish("a", nil, nil)
	c.Node(23).Publish("b", nil, nil)
	c.RunRounds(25)

	// Nodes 8..11 are in both groups and should deliver both events.
	for i := 8; i < 12; i++ {
		if d := c.Ledger.Account(i).Delivered; d < 2 {
			t.Fatalf("dual subscriber %d delivered %d, want 2", i, d)
		}
	}
	if c.Ledger.Account(0).Filters != 1 {
		t.Fatal("filter count wrong")
	}
}
