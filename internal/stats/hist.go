package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-range linear histogram with overflow and underflow
// buckets. It supports approximate quantiles and compact ASCII rendering
// for experiment reports.
type Histogram struct {
	lo, hi  float64
	width   float64
	buckets []uint64
	under   uint64
	over    uint64
	count   uint64
	sum     float64
}

// NewHistogram returns a histogram covering [lo, hi) with n equal-width
// buckets. It requires hi > lo and n ≥ 1; invalid arguments are coerced
// to a single bucket over [lo, lo+1).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n < 1 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{
		lo:      lo,
		hi:      hi,
		width:   (hi - lo) / float64(n),
		buckets: make([]uint64, n),
	}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.count++
	h.sum += x
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) { // float edge case at hi boundary
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Count returns the number of observations, including out-of-range ones.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an approximation of the q-quantile assuming uniform
// mass within each bucket. Underflow mass is treated as sitting at lo,
// overflow mass at hi.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.count)
	cum := float64(h.under)
	if target <= cum {
		return h.lo
	}
	for i, b := range h.buckets {
		next := cum + float64(b)
		if target <= next && b > 0 {
			frac := (target - cum) / float64(b)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum = next
	}
	return h.hi
}

// String renders a compact ASCII bar chart, one line per non-empty bucket.
func (h *Histogram) String() string {
	var sb strings.Builder
	maxCount := uint64(1)
	for _, b := range h.buckets {
		if b > maxCount {
			maxCount = b
		}
	}
	if h.under > 0 {
		fmt.Fprintf(&sb, "%12s | %d\n", fmt.Sprintf("< %.3g", h.lo), h.under)
	}
	for i, b := range h.buckets {
		if b == 0 {
			continue
		}
		lo := h.lo + float64(i)*h.width
		bar := strings.Repeat("#", int(math.Ceil(float64(b)/float64(maxCount)*40)))
		fmt.Fprintf(&sb, "%12s | %-40s %d\n", fmt.Sprintf("%.3g", lo), bar, b)
	}
	if h.over > 0 {
		fmt.Fprintf(&sb, "%12s | %d\n", fmt.Sprintf(">= %.3g", h.hi), h.over)
	}
	return sb.String()
}
