package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordMatchesDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Errorf("mean = %v, want 5", w.Mean())
	}
	if !almostEq(w.Variance(), 4, 1e-12) {
		t.Errorf("variance = %v, want 4", w.Variance())
	}
	if !almostEq(w.Std(), 2, 1e-12) {
		t.Errorf("std = %v, want 2", w.Std())
	}
	if !almostEq(w.CoV(), 0.4, 1e-12) {
		t.Errorf("cov = %v, want 0.4", w.CoV())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Errorf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.CoV() != 0 {
		t.Fatal("empty accumulator must read as zeros")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Fatal("single observation: mean 3, variance 0")
	}
}

func TestJainIndexKnownValues(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); !almostEq(got, 1, 1e-12) {
		t.Errorf("equal shares: %v, want 1", got)
	}
	// One holder of everything among n: index = 1/n.
	if got := JainIndex([]float64{10, 0, 0, 0}); !almostEq(got, 0.25, 1e-12) {
		t.Errorf("single holder: %v, want 0.25", got)
	}
	if got := JainIndex(nil); got != 1 {
		t.Errorf("empty: %v, want 1", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 1 {
		t.Errorf("all zero: %v, want 1", got)
	}
}

func TestJainIndexScaleInvariant(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	a := JainIndex(xs)
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x * 37.5
	}
	if !almostEq(a, JainIndex(ys), 1e-12) {
		t.Fatal("Jain index must be scale invariant")
	}
}

func TestGiniKnownValues(t *testing.T) {
	if got := Gini([]float64{5, 5, 5, 5}); !almostEq(got, 0, 1e-12) {
		t.Errorf("equal: %v, want 0", got)
	}
	// Perfect concentration among n values → (n-1)/n.
	if got := Gini([]float64{0, 0, 0, 12}); !almostEq(got, 0.75, 1e-12) {
		t.Errorf("concentrated: %v, want 0.75", got)
	}
	if got := Gini(nil); got != 0 {
		t.Errorf("empty: %v, want 0", got)
	}
	// Textbook example: {1,2,3,4,5} → Gini = 4/15.
	if got := Gini([]float64{1, 2, 3, 4, 5}); !almostEq(got, 4.0/15.0, 1e-12) {
		t.Errorf("1..5: %v, want %v", got, 4.0/15.0)
	}
}

func TestLorenzProperties(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 10}
	pts := Lorenz(xs, 10)
	if pts[0].Pop != 0 || pts[0].Share != 0 {
		t.Fatal("Lorenz must start at the origin")
	}
	last := pts[len(pts)-1]
	if !almostEq(last.Pop, 1, 1e-12) || !almostEq(last.Share, 1, 1e-12) {
		t.Fatalf("Lorenz must end at (1,1), got (%v,%v)", last.Pop, last.Share)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Share < pts[i-1].Share-1e-12 {
			t.Fatal("Lorenz must be non-decreasing")
		}
		if pts[i].Share > pts[i].Pop+1e-12 {
			t.Fatal("Lorenz must lie below the equality line")
		}
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ q, want float64 }{
		{0, 15}, {1, 50}, {0.5, 35}, {0.25, 20}, {0.75, 40},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile must be 0")
	}
	qs := Quantiles(xs, 0, 0.5, 1)
	if qs[0] != 15 || qs[1] != 35 || qs[2] != 50 {
		t.Errorf("Quantiles = %v", qs)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Errorf("perfect positive: %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Errorf("perfect negative: %v", got)
	}
	if got := Pearson(xs, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("degenerate: %v", got)
	}
	if got := Pearson([]float64{1}, []float64{2}); got != 0 {
		t.Errorf("too short: %v", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5)  // underflow
	h.Add(100) // overflow
	if h.Count() != 12 {
		t.Fatalf("count = %d", h.Count())
	}
	med := h.Quantile(0.5)
	if med < 4 || med > 6 {
		t.Errorf("median approx = %v, want ≈5", med)
	}
	if h.Quantile(0) != 0 {
		t.Errorf("q0 = %v", h.Quantile(0))
	}
	if s := h.String(); len(s) == 0 {
		t.Error("String() should render something")
	}
}

func TestHistogramDegenerateArgs(t *testing.T) {
	h := NewHistogram(5, 5, 0) // coerced
	h.Add(5)
	if h.Count() != 1 {
		t.Fatal("coerced histogram must accept observations")
	}
}

// Property: Jain index stays within [1/n, 1] for non-negative samples.
func TestQuickJainBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		j := JainIndex(xs)
		n := float64(len(xs))
		return j >= 1/n-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gini stays within [0, 1) and is 0 for constant samples.
func TestQuickGiniBounds(t *testing.T) {
	f := func(raw []uint16, c uint16) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		g := Gini(xs)
		if g < -1e-9 || g >= 1 {
			return false
		}
		if len(raw) > 0 {
			eq := make([]float64, len(raw))
			for i := range eq {
				eq[i] = float64(c)
			}
			if !almostEq(Gini(eq), 0, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var mn, mx float64 = math.MaxFloat64, -math.MaxFloat64
		for i, r := range raw {
			xs[i] = float64(r)
			mn = math.Min(mn, xs[i])
			mx = math.Max(mx, xs[i])
		}
		prev := -math.MaxFloat64
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			v := Quantile(xs, q)
			if v < prev-1e-9 || v < mn-1e-9 || v > mx+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Pearson is within [-1, 1].
func TestQuickPearsonBounds(t *testing.T) {
	f := func(a, b []int8) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			xs[i] = float64(a[i])
			ys[i] = float64(b[i])
		}
		p := Pearson(xs, ys)
		return p >= -1-1e-9 && p <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGini(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gini(xs)
	}
}

func BenchmarkJainIndex(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JainIndex(xs)
	}
}
