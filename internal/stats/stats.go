// Package stats provides the statistical machinery behind fairness
// reports: streaming moments, quantiles, and the inequality indices the
// literature uses to quantify (un)fairness — Jain's fairness index, the
// Gini coefficient, the coefficient of variation, and Lorenz curves.
package stats

import (
	"math"
	"sort"
)

// Welford accumulates streaming mean and variance using Welford's
// algorithm. The zero value is an empty accumulator ready for use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }

// Variance returns the population variance (0 with fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// CoV returns the coefficient of variation (std/mean), or 0 when the mean
// is 0 (by convention: an all-zero sample is perfectly even).
func (w *Welford) CoV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.Std() / math.Abs(w.mean)
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// CoV returns the coefficient of variation of xs (population std / mean),
// with the same zero-mean convention as Welford.CoV.
func CoV(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.CoV()
}

// JainIndex computes Jain's fairness index (Σx)² / (n·Σx²) over a sample
// of non-negative allocations. It lies in [1/n, 1]; 1 means perfectly
// equal. By convention an empty or all-zero sample is perfectly fair (1).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Gini computes the Gini coefficient of a sample of non-negative values:
// 0 means perfect equality, values approach 1 under extreme concentration.
// Negative inputs are clamped to 0. An empty or all-zero sample has
// Gini 0.
func Gini(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	ys := make([]float64, n)
	for i, x := range xs {
		if x < 0 {
			x = 0
		}
		ys[i] = x
	}
	sort.Float64s(ys)
	var cum, total float64
	for i, y := range ys {
		cum += float64(i+1) * y // weighted by rank
		total += y
	}
	if total == 0 {
		return 0
	}
	nf := float64(n)
	return (2*cum)/(nf*total) - (nf+1)/nf
}

// LorenzPoint is one point of a Lorenz curve: the poorest Pop fraction of
// the population holds the Share fraction of the total.
type LorenzPoint struct {
	Pop   float64
	Share float64
}

// Lorenz returns the Lorenz curve of xs evaluated at `points` evenly
// spaced population fractions (plus the origin). Inputs are treated as
// non-negative.
func Lorenz(xs []float64, points int) []LorenzPoint {
	if points < 1 {
		points = 1
	}
	n := len(xs)
	out := make([]LorenzPoint, 0, points+1)
	out = append(out, LorenzPoint{0, 0})
	if n == 0 {
		for i := 1; i <= points; i++ {
			p := float64(i) / float64(points)
			out = append(out, LorenzPoint{p, p})
		}
		return out
	}
	ys := make([]float64, n)
	for i, x := range xs {
		if x < 0 {
			x = 0
		}
		ys[i] = x
	}
	sort.Float64s(ys)
	total := Sum(ys)
	prefix := make([]float64, n+1)
	for i, y := range ys {
		prefix[i+1] = prefix[i] + y
	}
	for i := 1; i <= points; i++ {
		p := float64(i) / float64(points)
		share := p // equality line fallback when total == 0
		if total > 0 {
			pos := p * float64(n)
			k := int(math.Floor(pos))
			mass := prefix[k]
			if k < n {
				mass += (pos - float64(k)) * ys[k]
			}
			share = mass / total
		}
		out = append(out, LorenzPoint{p, share})
	}
	return out
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It copies and sorts internally;
// for repeated queries use Quantiles. Empty input yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	return quantileSorted(ys, q)
}

// Quantiles returns the quantiles of xs at each q in qs, sorting once.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	for i, q := range qs {
		out[i] = quantileSorted(ys, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Pearson returns the Pearson correlation coefficient between paired
// samples xs and ys. It returns 0 when either sample is degenerate
// (fewer than two points or zero variance).
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	if n < 2 {
		return 0
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += xs[i]
		my += ys[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
