package membership

import (
	"fmt"
	"math/rand"
	"testing"

	"fairgossip/internal/simnet"
)

// checkViewInvariants asserts the structural invariants every view must
// hold at every moment: no self entry, no duplicate ids, never more
// than ViewCap entries, no negative ids.
func checkViewInvariants(t *testing.T, label string, v *View) {
	t.Helper()
	if v.Len() > v.Cap() {
		t.Fatalf("%s: view holds %d entries, cap %d", label, v.Len(), v.Cap())
	}
	seen := map[simnet.NodeID]bool{}
	for _, e := range v.Entries() {
		if e.ID == v.Self() {
			t.Fatalf("%s: view contains self", label)
		}
		if e.ID < 0 {
			t.Fatalf("%s: view contains invalid id %d", label, e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("%s: view contains %d twice", label, e.ID)
		}
		seen[e.ID] = true
	}
}

// inflight is one undelivered shuffle message in the property test's
// toy network.
type inflight struct {
	from, to simnet.NodeID
	reply    bool
	entries  []Entry
}

// TestCyclonRandomShuffleSequencesKeepViewsSound drives whole
// populations of Cyclon nodes through long randomised shuffle
// sequences over an adversarial toy network — messages are delivered
// out of order, dropped, and duplicated — and asserts after every
// delivery that no view ever contains its owner or a duplicate, never
// exceeds its capacity, and never holds an invalid id. This is the
// property-based hardening behind running shuffles over a real lossy
// transport in the live runtime.
func TestCyclonRandomShuffleSequencesKeepViewsSound(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			n := 3 + rng.Intn(20)
			viewCap := 2 + rng.Intn(9)
			shuffleLen := 1 + rng.Intn(viewCap+2) // may exceed cap: NewCyclon clamps

			nodes := make([]*Cyclon, n)
			for i := range nodes {
				nodes[i] = NewCyclon(NewView(simnet.NodeID(i), viewCap), shuffleLen)
			}
			// Ring bootstrap plus a few random contacts.
			for i, nd := range nodes {
				nd.View().Add(simnet.NodeID((i + 1) % n))
				for k := 0; k < 3; k++ {
					nd.View().Add(simnet.NodeID(rng.Intn(n)))
				}
			}

			var net []inflight
			check := func(label string) {
				for _, nd := range nodes {
					checkViewInvariants(t, label, nd.View())
				}
			}
			for step := 0; step < 400; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // a random node initiates a shuffle
					nd := nodes[rng.Intn(n)]
					if target, offer, ok := nd.InitiateShuffle(rng); ok {
						net = append(net, inflight{from: nd.View().Self(), to: target,
							entries: append([]Entry(nil), offer...)})
					}
				case op < 8 && len(net) > 0: // deliver a random in-flight message
					i := rng.Intn(len(net))
					m := net[i]
					net = append(net[:i], net[i+1:]...)
					if int(m.to) >= n {
						break // a hostile id: the network has nowhere to put it
					}
					dst := nodes[m.to]
					if m.reply {
						dst.HandleReply(m.from, m.entries)
					} else {
						reply := dst.HandleShuffle(rng, m.from, m.entries)
						net = append(net, inflight{from: m.to, to: m.from, reply: true,
							entries: append([]Entry(nil), reply...)})
					}
				case op == 8 && len(net) > 0: // drop a message
					i := rng.Intn(len(net))
					net = append(net[:i], net[i+1:]...)
				case op == 9 && len(net) > 0: // duplicate a message
					m := net[rng.Intn(len(net))]
					net = append(net, inflight{from: m.from, to: m.to, reply: m.reply,
						entries: append([]Entry(nil), m.entries...)})
				}
				check(fmt.Sprintf("step %d", step))
			}
			// Drain what is left, still checking.
			for len(net) > 0 {
				m := net[0]
				net = net[1:]
				if int(m.to) >= n {
					continue
				}
				dst := nodes[m.to]
				if m.reply {
					dst.HandleReply(m.from, m.entries)
				} else {
					reply := dst.HandleShuffle(rng, m.from, m.entries)
					net = append(net, inflight{from: m.to, to: m.from, reply: true,
						entries: append([]Entry(nil), reply...)})
				}
				check("drain")
			}
		})
	}
}

// addressSet collects every distinct id reachable from a set of views.
func addressSet(views ...*View) map[simnet.NodeID]bool {
	s := map[simnet.NodeID]bool{}
	for _, v := range views {
		for _, e := range v.Entries() {
			s[e.ID] = true
		}
	}
	return s
}

// TestCyclonPairExchangePreservesUnion: one complete, isolated shuffle
// exchange between two nodes never silently loses an address. Every id
// known to the pair before the exchange is afterwards held by at least
// one of them — modulo the two participants' own addresses, which each
// node re-advertises with a fresh age-0 self entry on its next
// initiation (so they are trivially alive in the overlay). This is the
// "entries are swapped, not destroyed" half of Cyclon's design, run
// over hundreds of random view configurations.
func TestCyclonPairExchangePreservesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		viewCap := 2 + rng.Intn(9)
		shuffleLen := 1 + rng.Intn(viewCap)
		a := NewCyclon(NewView(0, viewCap), shuffleLen)
		b := NewCyclon(NewView(1, viewCap), shuffleLen)

		// Random views over a shared address pool; B is in A's view and
		// aged to be the shuffle target.
		pool := 2 + rng.Intn(40)
		for k := rng.Intn(viewCap); k > 0; k-- {
			a.View().AddAged(Entry{ID: simnet.NodeID(2 + rng.Intn(pool)), Age: rng.Intn(4)})
		}
		for k := rng.Intn(viewCap + 1); k > 0; k-- {
			b.View().AddAged(Entry{ID: simnet.NodeID(2 + rng.Intn(pool)), Age: rng.Intn(8)})
		}
		a.View().Remove(1)
		if a.View().Len() == a.Cap() {
			a.View().Remove(a.View().Entries()[rng.Intn(a.View().Len())].ID)
		}
		a.View().AddAged(Entry{ID: 1, Age: 1000}) // oldest by construction

		before := addressSet(a.View(), b.View())

		target, offer, ok := a.InitiateShuffle(rng)
		if !ok || target != 1 {
			t.Fatalf("trial %d: shuffle targeted %d, want node 1", trial, target)
		}
		reply := b.HandleShuffle(rng, 0, offer)
		a.HandleReply(1, reply)

		after := addressSet(a.View(), b.View())
		after[0], after[1] = true, true // selves re-advertise themselves
		for id := range before {
			if !after[id] {
				t.Fatalf("trial %d: address %d silently lost by the exchange\nA %v\nB %v",
					trial, id, a.View().Entries(), b.View().Entries())
			}
		}
		checkViewInvariants(t, "A after", a.View())
		checkViewInvariants(t, "B after", b.View())
	}
}

// Cap returns the view capacity through the Cyclon (helper for the
// property test).
func (c *Cyclon) Cap() int { return c.view.Cap() }
