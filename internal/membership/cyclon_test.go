package membership

import (
	"math/rand"
	"testing"
	"time"

	"fairgossip/internal/eventsim"
	"fairgossip/internal/simnet"
)

func TestCyclonPairExchange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	va := NewView(0, 4)
	vb := NewView(1, 4)
	for _, id := range []simnet.NodeID{1, 2, 3} {
		va.Add(id)
	}
	for _, id := range []simnet.NodeID{0, 4, 5} {
		vb.Add(id)
	}
	ca := NewCyclon(va, 3)
	cb := NewCyclon(vb, 3)

	target, offer, ok := ca.InitiateShuffle(rng)
	if !ok {
		t.Fatal("initiate failed")
	}
	if va.Contains(target) {
		t.Fatal("target must be removed from initiator view")
	}
	// The offer must carry a fresh self-entry.
	foundSelf := false
	for _, e := range offer {
		if e.ID == 0 {
			foundSelf = true
			if e.Age != 0 {
				t.Fatal("self entry must be fresh")
			}
		}
	}
	if !foundSelf {
		t.Fatal("offer lacks self entry")
	}
	if len(offer) > 3 {
		t.Fatalf("offer too large: %d", len(offer))
	}

	reply := cb.HandleShuffle(rng, 0, offer)
	if len(reply) > 3 {
		t.Fatalf("reply too large: %d", len(reply))
	}
	// B must now know A.
	if !vb.Contains(0) {
		t.Fatal("responder did not learn the initiator")
	}
	ca.HandleReply(target, reply)

	for name, v := range map[string]*View{"a": va, "b": vb} {
		if v.Len() > v.Cap() {
			t.Fatalf("view %s exceeded capacity", name)
		}
		seen := map[simnet.NodeID]bool{}
		for _, e := range v.Entries() {
			if e.ID == v.Self() {
				t.Fatalf("view %s contains self", name)
			}
			if seen[e.ID] {
				t.Fatalf("view %s contains duplicate", name)
			}
			seen[e.ID] = true
		}
	}
}

func TestCyclonEmptyView(t *testing.T) {
	c := NewCyclon(NewView(0, 4), 3)
	if _, _, ok := c.InitiateShuffle(rand.New(rand.NewSource(1))); ok {
		t.Fatal("initiate on empty view must fail")
	}
}

func TestCyclonStaleReplyIsSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewView(0, 4)
	v.Add(1)
	c := NewCyclon(v, 3)
	// A reply that was never solicited must merge conservatively, not panic.
	c.HandleReply(7, []Entry{{ID: 8, Age: 1}, {ID: 0, Age: 0}})
	if v.Contains(0) {
		t.Fatal("self leaked into view")
	}
	if !v.Contains(8) {
		t.Fatal("unsolicited entries should still be learned when there is room")
	}
	_ = rng
}

func TestCyclonShuffleLenClamped(t *testing.T) {
	v := NewView(0, 3)
	if got := NewCyclon(v, 99).ShuffleLen(); got != 3 {
		t.Fatalf("ShuffleLen = %d, want cap 3", got)
	}
	if got := NewCyclon(v, 0).ShuffleLen(); got != 1 {
		t.Fatalf("ShuffleLen = %d, want 1", got)
	}
}

// cyclonSimNode drives Cyclon over simnet for the convergence test.
type cyclonSimNode struct {
	id  simnet.NodeID
	net *simnet.Network
	cy  *Cyclon
	rng *rand.Rand
}

type shuffleMsg struct {
	reply   bool
	entries []Entry
}

func (n *cyclonSimNode) HandleMessage(msg simnet.Message) {
	sm := msg.Payload.(shuffleMsg)
	if sm.reply {
		n.cy.HandleReply(msg.From, sm.entries)
		return
	}
	reply := n.cy.HandleShuffle(n.rng, msg.From, sm.entries)
	n.net.Send(n.id, msg.From, shuffleMsg{reply: true, entries: reply}, len(reply)*EntryWireSize)
}

func (n *cyclonSimNode) shuffle() {
	target, offer, ok := n.cy.InitiateShuffle(n.rng)
	if !ok {
		return
	}
	n.net.Send(n.id, target, shuffleMsg{entries: offer}, len(offer)*EntryWireSize)
}

// TestCyclonConvergence runs 64 nodes bootstrapped in a ring and checks
// that shuffling yields a connected overlay with roughly uniform
// in-degree — the property dissemination relies on.
func TestCyclonConvergence(t *testing.T) {
	const n = 64
	const viewCap = 8
	sim := eventsim.New(42)
	net := simnet.New(sim, simnet.Config{Latency: simnet.ConstantLatency(2 * time.Millisecond)})
	nodes := make([]*cyclonSimNode, n)
	for i := 0; i < n; i++ {
		v := NewView(simnet.NodeID(i), viewCap)
		// Ring bootstrap: successors only.
		for d := 1; d <= 3; d++ {
			v.Add(simnet.NodeID((i + d) % n))
		}
		nodes[i] = &cyclonSimNode{
			id:  simnet.NodeID(i),
			cy:  NewCyclon(v, 4),
			rng: rand.New(rand.NewSource(int64(1000 + i))),
		}
	}
	for _, nd := range nodes {
		nd.net = net
		net.AddNode(nd)
	}
	for _, nd := range nodes {
		nd := nd
		sim.Every(100*time.Millisecond, 10*time.Millisecond, nd.shuffle)
	}
	sim.RunUntil(20 * time.Second) // ≈200 shuffle rounds

	// Views must be full and valid.
	indeg := make([]int, n)
	for _, nd := range nodes {
		if nd.cy.View().Len() < viewCap-1 {
			t.Fatalf("node %d view only %d/%d", nd.id, nd.cy.View().Len(), viewCap)
		}
		for _, id := range nd.cy.View().IDs() {
			indeg[id]++
		}
	}

	// Undirected connectivity via BFS over the union graph.
	adj := make([][]simnet.NodeID, n)
	for _, nd := range nodes {
		for _, id := range nd.cy.View().IDs() {
			adj[nd.id] = append(adj[nd.id], id)
			adj[id] = append(adj[id], nd.id)
		}
	}
	seen := make([]bool, n)
	queue := []simnet.NodeID{0}
	seen[0] = true
	count := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		count++
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if count != n {
		t.Fatalf("overlay disconnected: reached %d of %d", count, n)
	}

	// In-degree balance: CoV under 0.5 (random graphs sit near 1/sqrt(cap)≈0.35).
	var mean, m2 float64
	for i, d := range indeg {
		x := float64(d)
		mean += x
		_ = i
		m2 += x * x
	}
	mean /= n
	variance := m2/n - mean*mean
	cov := 0.0
	if mean > 0 {
		cov = sqrt(variance) / mean
	}
	if cov > 0.5 {
		t.Fatalf("in-degree too skewed: CoV=%.3f (degrees %v)", cov, indeg)
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func BenchmarkCyclonShuffle(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	va := NewView(0, 16)
	vb := NewView(1, 16)
	for i := 2; i < 18; i++ {
		va.Add(simnet.NodeID(i))
		vb.Add(simnet.NodeID(i + 16))
	}
	ca := NewCyclon(va, 8)
	cb := NewCyclon(vb, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		target, offer, ok := ca.InitiateShuffle(rng)
		if !ok {
			// Re-seed the view when it drains.
			va.Add(1)
			continue
		}
		reply := cb.HandleShuffle(rng, 0, offer)
		ca.HandleReply(target, reply)
	}
}
