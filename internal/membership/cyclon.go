package membership

import (
	"math/rand"

	"fairgossip/internal/randutil"
	"fairgossip/internal/simnet"
)

// Cyclon implements the view-shuffling logic of the Cyclon protocol
// (Voulgaris, Gavidia, van Steen 2005), one of the partial-view
// maintenance schemes the paper points to for random partner selection.
//
// The embedding node owns message transport: it calls InitiateShuffle on
// its membership timer, sends the offer to the returned target, answers
// incoming offers with HandleShuffle, and completes the exchange with
// HandleReply. Each offer/reply carries ShuffleLen entries, so shuffle
// traffic is proportional to ShuffleLen — this is the "infrastructure
// messages" component of contribution.
type Cyclon struct {
	view       *View
	shuffleLen int

	// pending tracks the entries offered in the most recent unanswered
	// shuffle so that HandleReply can prefer replacing them.
	pending []Entry
	target  simnet.NodeID

	perm  []int           // scratch for offer permutations
	repls []simnet.NodeID // scratch for merge's replaceable list
}

// NewCyclon wraps a view with shuffle logic exchanging l entries per
// shuffle (coerced into [1, view cap]).
func NewCyclon(view *View, l int) *Cyclon {
	if l < 1 {
		l = 1
	}
	if l > view.Cap() {
		l = view.Cap()
	}
	return &Cyclon{view: view, shuffleLen: l, target: simnet.None}
}

// View returns the underlying view.
func (c *Cyclon) View() *View { return c.view }

// ShuffleLen returns the number of entries exchanged per shuffle.
func (c *Cyclon) ShuffleLen() int { return c.shuffleLen }

// InitiateShuffle starts a shuffle round: ages the view, removes the
// oldest peer as exchange target, and returns the offer to send it. ok is
// false when the view is empty. The offer always includes a fresh entry
// for the initiating node itself.
func (c *Cyclon) InitiateShuffle(rng *rand.Rand) (target simnet.NodeID, offer []Entry, ok bool) {
	c.view.IncrementAges()
	oldest, found := c.view.Oldest()
	if !found {
		return simnet.None, nil, false
	}
	c.view.Remove(oldest.ID)

	offer = c.pickOffer(rng, c.shuffleLen-1)
	offer = append(offer, Entry{ID: c.view.Self(), Age: 0})
	// Aliasing the offer is safe: neither the transport nor merge mutates
	// entry slices, and HandleReply drops the reference.
	c.pending = offer
	c.target = oldest.ID
	return oldest.ID, offer, true
}

// pickOffer selects up to k random entries from the view (copies). The
// returned slice is fresh — offers travel in in-flight messages — but the
// permutation runs over the live entries through a reused scratch, with
// the same draws an rng.Perm over a copy would make.
func (c *Cyclon) pickOffer(rng *rand.Rand, k int) []Entry {
	entries := c.view.entries
	if k > len(entries) {
		k = len(entries)
	}
	if k < 0 {
		k = 0
	}
	out := make([]Entry, 0, k+1)
	for _, idx := range randutil.PermInto(rng, &c.perm, len(entries))[:k] {
		out = append(out, entries[idx])
	}
	return out
}

// HandleShuffle processes an incoming offer from peer `from` and returns
// the reply entries. The received entries are merged into the view,
// preferring to overwrite the slots holding entries that were just sent
// back in the reply.
func (c *Cyclon) HandleShuffle(rng *rand.Rand, from simnet.NodeID, offer []Entry) (reply []Entry) {
	reply = c.pickOffer(rng, c.shuffleLen)
	c.merge(offer, reply, from)
	return reply
}

// HandleReply completes a shuffle this node initiated.
func (c *Cyclon) HandleReply(from simnet.NodeID, reply []Entry) {
	if from != c.target {
		// Stale or duplicate reply: merge conservatively without
		// replacement credit.
		c.merge(reply, nil, from)
		return
	}
	c.merge(reply, c.pending, from)
	c.pending = nil
	c.target = simnet.None
}

// merge folds received entries into the view: duplicates refresh ages,
// empty capacity is filled first, then slots holding `sent` entries are
// reused, and remaining entries are dropped (Cyclon keeps views bounded).
func (c *Cyclon) merge(received, sent []Entry, from simnet.NodeID) {
	// Deterministic replacement order: the order entries were sent.
	replaceable := c.repls[:0]
	for _, e := range sent {
		if e.ID != c.view.Self() {
			replaceable = append(replaceable, e.ID)
		}
	}
	for _, e := range received {
		if e.ID == c.view.Self() {
			continue
		}
		if c.view.Contains(e.ID) {
			c.view.AddAged(e) // refreshes age if younger
			// An entry we sent that came straight back was re-confirmed
			// by the exchange: it is no longer a replacement victim.
			// (Without this, both sides of a shuffle whose offer and
			// reply overlap can each evict their copy, and the address
			// vanishes from the overlay — silent address loss.)
			for i, victim := range replaceable {
				if victim == e.ID {
					replaceable = append(replaceable[:i], replaceable[i+1:]...)
					break
				}
			}
			continue
		}
		if c.view.Len() < c.view.Cap() {
			c.view.AddAged(e)
			continue
		}
		// Replace one of the entries we just shipped out, if any survive.
		for i, victim := range replaceable {
			if c.view.Contains(victim) {
				c.view.Remove(victim)
				c.view.AddAged(e)
				replaceable = append(replaceable[:i], replaceable[i+1:]...)
				break
			}
		}
		// View full and nothing replaceable: the entry is dropped.
	}
	// Knowing `from` is alive is free information; remember it if there
	// is room (keeps early views growing before first replies).
	if from != c.view.Self() && !c.view.Contains(from) && c.view.Len() < c.view.Cap() {
		c.view.AddAged(Entry{ID: from, Age: 0})
	}
	c.repls = replaceable[:0] // keep the grown scratch capacity
}

// EntryWireSize is the accounting size of one view entry on the wire:
// 4 bytes of node id + 2 bytes of age.
const EntryWireSize = 6
