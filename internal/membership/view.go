// Package membership implements the peer-sampling substrate that gossip
// dissemination assumes (§4.2 of the paper, citing lpbcast, Cyclon and the
// peer-sampling service): bounded partial views with entry ages, uniform
// sampling, and the Cyclon view-shuffling protocol logic.
//
// The package provides protocol *logic*; the embedding node drives actual
// message exchange so that shuffle traffic is accounted like any other
// infrastructure traffic.
package membership

import (
	"math/rand"

	"fairgossip/internal/randutil"
	"fairgossip/internal/simnet"
)

// Entry is a view slot: a peer and the age (in shuffle periods) since the
// information about it was created.
type Entry struct {
	ID  simnet.NodeID
	Age int
}

// View is a bounded partial view of the system, the node's local
// knowledge of "communication partners". The zero value is unusable; call
// NewView.
type View struct {
	self    simnet.NodeID
	cap     int
	entries []Entry
	// suspect is parallel to entries: the number of consecutive failed
	// probes the owner has recorded against each entry (0 = trusted).
	// While an entry is suspect its age is frozen — a third-party
	// re-offer must not make a possibly-dead address look fresh again,
	// or the failure detector's evidence silently resets every time the
	// address recirculates.
	suspect []uint8
	nSusp   int   // count of suspect entries, so the hot path can skip scans
	perm    []int // scratch for Sample permutations
}

// NewView returns an empty view for node self holding at most capacity
// entries (minimum 1).
func NewView(self simnet.NodeID, capacity int) *View {
	if capacity < 1 {
		capacity = 1
	}
	return &View{
		self:    self,
		cap:     capacity,
		entries: make([]Entry, 0, capacity),
		suspect: make([]uint8, 0, capacity),
	}
}

// Self returns the owning node.
func (v *View) Self() simnet.NodeID { return v.self }

// Len returns the number of entries currently held.
func (v *View) Len() int { return len(v.entries) }

// Cap returns the view capacity.
func (v *View) Cap() int { return v.cap }

// Contains reports whether id is in the view.
func (v *View) Contains(id simnet.NodeID) bool { return v.indexOf(id) >= 0 }

func (v *View) indexOf(id simnet.NodeID) int {
	for i, e := range v.entries {
		if e.ID == id {
			return i
		}
	}
	return -1
}

// Add inserts a fresh entry (age 0) for id. Self and duplicates are
// ignored (a duplicate refreshes the age to the younger of the two). When
// full, the oldest entry is evicted. It reports whether the view changed.
func (v *View) Add(id simnet.NodeID) bool { return v.AddAged(Entry{ID: id}) }

// AddAged inserts an entry preserving its age, with Add's rules. A
// duplicate of a suspect entry is ignored outright: neither the age nor
// the suspicion changes until the owner hears from the peer directly
// (ClearSuspect) or evicts it.
func (v *View) AddAged(e Entry) bool {
	if e.ID == v.self || e.ID < 0 {
		return false
	}
	if i := v.indexOf(e.ID); i >= 0 {
		if v.suspect[i] > 0 {
			return false // suspicion freezes the recorded age
		}
		if e.Age < v.entries[i].Age {
			v.entries[i].Age = e.Age
			return true
		}
		return false
	}
	if len(v.entries) < v.cap {
		v.entries = append(v.entries, e)
		v.suspect = append(v.suspect, 0)
		return true
	}
	// Evict the oldest to make room; ties broken by slot order.
	oldest := 0
	for i := 1; i < len(v.entries); i++ {
		if v.entries[i].Age > v.entries[oldest].Age {
			oldest = i
		}
	}
	if v.entries[oldest].Age < e.Age {
		return false // incoming entry is staler than everything held
	}
	v.entries[oldest] = e
	v.clearSuspectSlot(oldest)
	return true
}

// Remove deletes id from the view, reporting whether it was present.
func (v *View) Remove(id simnet.NodeID) bool {
	i := v.indexOf(id)
	if i < 0 {
		return false
	}
	v.clearSuspectSlot(i)
	v.entries = append(v.entries[:i], v.entries[i+1:]...)
	v.suspect = append(v.suspect[:i], v.suspect[i+1:]...)
	return true
}

// MarkSuspect records one more failed probe against id and returns the
// new consecutive-failure count (0 when id is not in the view). The
// entry's age is frozen until ClearSuspect or eviction.
func (v *View) MarkSuspect(id simnet.NodeID) int {
	i := v.indexOf(id)
	if i < 0 {
		return 0
	}
	if v.suspect[i] == 0 {
		v.nSusp++
	}
	if v.suspect[i] < ^uint8(0) {
		v.suspect[i]++
	}
	return int(v.suspect[i])
}

// ClearSuspect erases any suspicion against id — direct contact proved
// it alive. It is a cheap no-op while nothing is suspect.
func (v *View) ClearSuspect(id simnet.NodeID) {
	if v.nSusp == 0 {
		return
	}
	if i := v.indexOf(id); i >= 0 {
		v.clearSuspectSlot(i)
	}
}

// SuspectOf returns the consecutive failed-probe count recorded against
// id (0 for trusted or absent entries).
func (v *View) SuspectOf(id simnet.NodeID) int {
	if v.nSusp == 0 {
		return 0
	}
	if i := v.indexOf(id); i >= 0 {
		return int(v.suspect[i])
	}
	return 0
}

func (v *View) clearSuspectSlot(i int) {
	if v.suspect[i] > 0 {
		v.suspect[i] = 0
		v.nSusp--
	}
}

// IncrementAges ages every entry by one period.
func (v *View) IncrementAges() {
	for i := range v.entries {
		v.entries[i].Age++
	}
}

// Oldest returns the entry with the highest age.
func (v *View) Oldest() (Entry, bool) {
	if len(v.entries) == 0 {
		return Entry{}, false
	}
	oldest := 0
	for i := 1; i < len(v.entries); i++ {
		if v.entries[i].Age > v.entries[oldest].Age {
			oldest = i
		}
	}
	return v.entries[oldest], true
}

// Entries returns a copy of the view's entries.
func (v *View) Entries() []Entry {
	out := make([]Entry, len(v.entries))
	copy(out, v.entries)
	return out
}

// IDs returns the peers currently in the view.
func (v *View) IDs() []simnet.NodeID {
	out := make([]simnet.NodeID, len(v.entries))
	for i, e := range v.entries {
		out[i] = e.ID
	}
	return out
}

// Sample returns min(k, Len) distinct peers drawn uniformly without
// replacement using rng.
func (v *View) Sample(rng *rand.Rand, k int) []simnet.NodeID {
	return v.SampleInto(rng, k, nil)
}

// SampleInto is Sample drawing into dst's backing array — the live
// runtime's per-round partner selection, which must not allocate in
// steady state. It makes exactly the draws Sample makes.
func (v *View) SampleInto(rng *rand.Rand, k int, dst []simnet.NodeID) []simnet.NodeID {
	n := len(v.entries)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	perm := randutil.PermInto(rng, &v.perm, n)
	dst = dst[:0]
	for i := 0; i < k; i++ {
		dst = append(dst, v.entries[perm[i]].ID)
	}
	return dst
}

// Sampler provides random communication partners for dissemination — the
// abstraction behind SELECTPARTICIPANTS(F) in Fig. 4 of the paper.
type Sampler interface {
	// SamplePeers returns up to k distinct peers (excluding the caller).
	SamplePeers(rng *rand.Rand, k int) []simnet.NodeID
}

// ViewSampler adapts a View to the Sampler interface.
type ViewSampler struct{ View *View }

// SamplePeers implements Sampler.
func (s ViewSampler) SamplePeers(rng *rand.Rand, k int) []simnet.NodeID {
	return s.View.Sample(rng, k)
}

// FullSampler samples uniformly from the complete population [0, N),
// excluding Self — the idealised "full knowledge" sampler classic gossip
// analysis assumes.
type FullSampler struct {
	Self simnet.NodeID
	N    int
}

// SamplePeers implements Sampler.
func (s FullSampler) SamplePeers(rng *rand.Rand, k int) []simnet.NodeID {
	pop := s.N
	if s.Self >= 0 && int(s.Self) < s.N {
		pop--
	}
	if k > pop {
		k = pop
	}
	if k <= 0 {
		return nil
	}
	out := make([]simnet.NodeID, 0, k)
draw:
	for len(out) < k {
		id := simnet.NodeID(rng.Intn(s.N))
		if id == s.Self {
			continue
		}
		// k is a fanout (single digits): a linear dup scan beats a map.
		for _, prev := range out {
			if prev == id {
				continue draw
			}
		}
		out = append(out, id)
	}
	return out
}

var (
	_ Sampler = ViewSampler{}
	_ Sampler = FullSampler{}
)
