// Package membership implements the peer-sampling substrate that gossip
// dissemination assumes (§4.2 of the paper, citing lpbcast, Cyclon and the
// peer-sampling service): bounded partial views with entry ages, uniform
// sampling, and the Cyclon view-shuffling protocol logic.
//
// The package provides protocol *logic*; the embedding node drives actual
// message exchange so that shuffle traffic is accounted like any other
// infrastructure traffic.
package membership

import (
	"math/rand"

	"fairgossip/internal/randutil"
	"fairgossip/internal/simnet"
)

// Entry is a view slot: a peer and the age (in shuffle periods) since the
// information about it was created.
type Entry struct {
	ID  simnet.NodeID
	Age int
}

// View is a bounded partial view of the system, the node's local
// knowledge of "communication partners". The zero value is unusable; call
// NewView.
type View struct {
	self    simnet.NodeID
	cap     int
	entries []Entry
	perm    []int // scratch for Sample permutations
}

// NewView returns an empty view for node self holding at most capacity
// entries (minimum 1).
func NewView(self simnet.NodeID, capacity int) *View {
	if capacity < 1 {
		capacity = 1
	}
	return &View{self: self, cap: capacity, entries: make([]Entry, 0, capacity)}
}

// Self returns the owning node.
func (v *View) Self() simnet.NodeID { return v.self }

// Len returns the number of entries currently held.
func (v *View) Len() int { return len(v.entries) }

// Cap returns the view capacity.
func (v *View) Cap() int { return v.cap }

// Contains reports whether id is in the view.
func (v *View) Contains(id simnet.NodeID) bool { return v.indexOf(id) >= 0 }

func (v *View) indexOf(id simnet.NodeID) int {
	for i, e := range v.entries {
		if e.ID == id {
			return i
		}
	}
	return -1
}

// Add inserts a fresh entry (age 0) for id. Self and duplicates are
// ignored (a duplicate refreshes the age to the younger of the two). When
// full, the oldest entry is evicted. It reports whether the view changed.
func (v *View) Add(id simnet.NodeID) bool { return v.AddAged(Entry{ID: id}) }

// AddAged inserts an entry preserving its age, with Add's rules.
func (v *View) AddAged(e Entry) bool {
	if e.ID == v.self || e.ID < 0 {
		return false
	}
	if i := v.indexOf(e.ID); i >= 0 {
		if e.Age < v.entries[i].Age {
			v.entries[i].Age = e.Age
			return true
		}
		return false
	}
	if len(v.entries) < v.cap {
		v.entries = append(v.entries, e)
		return true
	}
	// Evict the oldest to make room; ties broken by slot order.
	oldest := 0
	for i := 1; i < len(v.entries); i++ {
		if v.entries[i].Age > v.entries[oldest].Age {
			oldest = i
		}
	}
	if v.entries[oldest].Age < e.Age {
		return false // incoming entry is staler than everything held
	}
	v.entries[oldest] = e
	return true
}

// Remove deletes id from the view, reporting whether it was present.
func (v *View) Remove(id simnet.NodeID) bool {
	i := v.indexOf(id)
	if i < 0 {
		return false
	}
	v.entries = append(v.entries[:i], v.entries[i+1:]...)
	return true
}

// IncrementAges ages every entry by one period.
func (v *View) IncrementAges() {
	for i := range v.entries {
		v.entries[i].Age++
	}
}

// Oldest returns the entry with the highest age.
func (v *View) Oldest() (Entry, bool) {
	if len(v.entries) == 0 {
		return Entry{}, false
	}
	oldest := 0
	for i := 1; i < len(v.entries); i++ {
		if v.entries[i].Age > v.entries[oldest].Age {
			oldest = i
		}
	}
	return v.entries[oldest], true
}

// Entries returns a copy of the view's entries.
func (v *View) Entries() []Entry {
	out := make([]Entry, len(v.entries))
	copy(out, v.entries)
	return out
}

// IDs returns the peers currently in the view.
func (v *View) IDs() []simnet.NodeID {
	out := make([]simnet.NodeID, len(v.entries))
	for i, e := range v.entries {
		out[i] = e.ID
	}
	return out
}

// Sample returns min(k, Len) distinct peers drawn uniformly without
// replacement using rng.
func (v *View) Sample(rng *rand.Rand, k int) []simnet.NodeID {
	return v.SampleInto(rng, k, nil)
}

// SampleInto is Sample drawing into dst's backing array — the live
// runtime's per-round partner selection, which must not allocate in
// steady state. It makes exactly the draws Sample makes.
func (v *View) SampleInto(rng *rand.Rand, k int, dst []simnet.NodeID) []simnet.NodeID {
	n := len(v.entries)
	if k > n {
		k = n
	}
	if k <= 0 {
		return nil
	}
	perm := randutil.PermInto(rng, &v.perm, n)
	dst = dst[:0]
	for i := 0; i < k; i++ {
		dst = append(dst, v.entries[perm[i]].ID)
	}
	return dst
}

// Sampler provides random communication partners for dissemination — the
// abstraction behind SELECTPARTICIPANTS(F) in Fig. 4 of the paper.
type Sampler interface {
	// SamplePeers returns up to k distinct peers (excluding the caller).
	SamplePeers(rng *rand.Rand, k int) []simnet.NodeID
}

// ViewSampler adapts a View to the Sampler interface.
type ViewSampler struct{ View *View }

// SamplePeers implements Sampler.
func (s ViewSampler) SamplePeers(rng *rand.Rand, k int) []simnet.NodeID {
	return s.View.Sample(rng, k)
}

// FullSampler samples uniformly from the complete population [0, N),
// excluding Self — the idealised "full knowledge" sampler classic gossip
// analysis assumes.
type FullSampler struct {
	Self simnet.NodeID
	N    int
}

// SamplePeers implements Sampler.
func (s FullSampler) SamplePeers(rng *rand.Rand, k int) []simnet.NodeID {
	pop := s.N
	if s.Self >= 0 && int(s.Self) < s.N {
		pop--
	}
	if k > pop {
		k = pop
	}
	if k <= 0 {
		return nil
	}
	out := make([]simnet.NodeID, 0, k)
draw:
	for len(out) < k {
		id := simnet.NodeID(rng.Intn(s.N))
		if id == s.Self {
			continue
		}
		// k is a fanout (single digits): a linear dup scan beats a map.
		for _, prev := range out {
			if prev == id {
				continue draw
			}
		}
		out = append(out, id)
	}
	return out
}

var (
	_ Sampler = ViewSampler{}
	_ Sampler = FullSampler{}
)
