package membership

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fairgossip/internal/simnet"
)

func TestViewBasics(t *testing.T) {
	v := NewView(0, 3)
	if v.Cap() != 3 || v.Len() != 0 || v.Self() != 0 {
		t.Fatal("fresh view wrong")
	}
	if v.Add(0) {
		t.Fatal("view accepted self")
	}
	if !v.Add(1) || !v.Add(2) {
		t.Fatal("adds failed")
	}
	if v.Add(1) {
		t.Fatal("duplicate add with same age reported change")
	}
	if !v.Contains(1) || v.Contains(9) {
		t.Fatal("Contains wrong")
	}
	if !v.Remove(1) || v.Remove(1) {
		t.Fatal("Remove semantics wrong")
	}
	if v.Add(-3) {
		t.Fatal("negative id accepted")
	}
}

func TestViewEvictsOldestWhenFull(t *testing.T) {
	v := NewView(0, 2)
	v.AddAged(Entry{ID: 1, Age: 5})
	v.AddAged(Entry{ID: 2, Age: 1})
	if !v.AddAged(Entry{ID: 3, Age: 0}) {
		t.Fatal("fresh entry should evict oldest")
	}
	if v.Contains(1) {
		t.Fatal("oldest entry not evicted")
	}
	if !v.Contains(2) || !v.Contains(3) {
		t.Fatal("wrong eviction victim")
	}
	// An entry staler than everything held is rejected.
	if v.AddAged(Entry{ID: 4, Age: 99}) {
		t.Fatal("stale entry accepted into full view")
	}
}

func TestViewDuplicateRefreshesAge(t *testing.T) {
	v := NewView(0, 2)
	v.AddAged(Entry{ID: 1, Age: 7})
	if !v.AddAged(Entry{ID: 1, Age: 2}) {
		t.Fatal("younger duplicate should refresh")
	}
	if e := v.Entries()[0]; e.Age != 2 {
		t.Fatalf("age = %d, want 2", e.Age)
	}
	if v.AddAged(Entry{ID: 1, Age: 9}) {
		t.Fatal("older duplicate should be ignored")
	}
}

func TestViewAgesAndOldest(t *testing.T) {
	v := NewView(0, 3)
	v.Add(1)
	v.IncrementAges()
	v.Add(2)
	got, ok := v.Oldest()
	if !ok || got.ID != 1 || got.Age != 1 {
		t.Fatalf("Oldest = %+v, %v", got, ok)
	}
	if _, ok := NewView(0, 1).Oldest(); ok {
		t.Fatal("empty view returned an oldest entry")
	}
}

func TestViewSample(t *testing.T) {
	v := NewView(0, 10)
	for i := 1; i <= 5; i++ {
		v.Add(simnet.NodeID(i))
	}
	rng := rand.New(rand.NewSource(1))
	got := v.Sample(rng, 3)
	if len(got) != 3 {
		t.Fatalf("sample size %d", len(got))
	}
	seen := map[simnet.NodeID]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatal("sample with replacement")
		}
		if id == 0 {
			t.Fatal("sampled self")
		}
		seen[id] = true
	}
	if len(v.Sample(rng, 99)) != 5 {
		t.Fatal("oversized k must clamp to view size")
	}
	if v.Sample(rng, 0) != nil {
		t.Fatal("k=0 must return nil")
	}
}

func TestEntriesIsCopy(t *testing.T) {
	v := NewView(0, 3)
	v.Add(1)
	es := v.Entries()
	es[0].ID = 99
	if !v.Contains(1) || v.Contains(99) {
		t.Fatal("Entries must return a copy")
	}
}

func TestFullSampler(t *testing.T) {
	s := FullSampler{Self: 3, N: 10}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		got := s.SamplePeers(rng, 4)
		if len(got) != 4 {
			t.Fatalf("len %d", len(got))
		}
		seen := map[simnet.NodeID]bool{}
		for _, id := range got {
			if id == 3 {
				t.Fatal("sampled self")
			}
			if id < 0 || id >= 10 {
				t.Fatal("out of population")
			}
			if seen[id] {
				t.Fatal("duplicate")
			}
			seen[id] = true
		}
	}
	if got := s.SamplePeers(rng, 100); len(got) != 9 {
		t.Fatalf("oversized k: len %d, want 9", len(got))
	}
	if got := (FullSampler{Self: 0, N: 1}).SamplePeers(rng, 2); got != nil {
		t.Fatal("singleton population must sample nothing")
	}
}

// Property: a view never contains self or duplicates and never exceeds
// capacity, under arbitrary add/remove/age sequences.
func TestQuickViewInvariants(t *testing.T) {
	f := func(ops []uint16, capRaw uint8) bool {
		capacity := int(capRaw%8) + 1
		v := NewView(0, capacity)
		for _, op := range ops {
			id := simnet.NodeID(op % 16)
			switch (op / 16) % 4 {
			case 0:
				v.Add(id)
			case 1:
				v.AddAged(Entry{ID: id, Age: int(op % 7)})
			case 2:
				v.Remove(id)
			case 3:
				v.IncrementAges()
			}
			if v.Len() > capacity {
				return false
			}
			seen := map[simnet.NodeID]bool{}
			for _, e := range v.Entries() {
				if e.ID == 0 || seen[e.ID] {
					return false
				}
				seen[e.ID] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// Property: FullSampler is near-uniform over the population.
func TestFullSamplerUniformity(t *testing.T) {
	s := FullSampler{Self: 0, N: 20}
	rng := rand.New(rand.NewSource(4))
	counts := make([]int, 20)
	const trials = 20000
	for i := 0; i < trials; i++ {
		for _, id := range s.SamplePeers(rng, 1) {
			counts[id]++
		}
	}
	// Expected ≈ 1052 per node (19 candidates). Allow generous ±20%.
	for id := 1; id < 20; id++ {
		if counts[id] < 800 || counts[id] > 1300 {
			t.Fatalf("node %d sampled %d times, expected ≈1052", id, counts[id])
		}
	}
	if counts[0] != 0 {
		t.Fatal("self sampled")
	}
}

// Regression: a suspect entry's age and suspicion must survive a shuffle
// round-trip. Before the failure detector landed, AddAged let any
// third-party re-offer refresh a duplicate's age downward; with
// suspicion that reset would erase the detector's evidence every time
// the dead address recirculated, and the entry would never be probed to
// eviction.
func TestSuspectSurvivesThirdPartyReoffer(t *testing.T) {
	v := NewView(0, 4)
	v.AddAged(Entry{ID: 7, Age: 9})
	if got := v.MarkSuspect(7); got != 1 {
		t.Fatalf("MarkSuspect = %d, want 1", got)
	}
	// A third party re-offers the suspect with a fresh age: ignored.
	if v.AddAged(Entry{ID: 7, Age: 0}) {
		t.Fatal("AddAged refreshed a suspect entry")
	}
	if got := v.SuspectOf(7); got != 1 {
		t.Fatalf("SuspectOf = %d after re-offer, want 1", got)
	}
	for _, e := range v.Entries() {
		if e.ID == 7 && e.Age != 9 {
			t.Fatalf("suspect age reset to %d, want frozen at 9", e.Age)
		}
	}
	// Repeated failures accumulate.
	if got := v.MarkSuspect(7); got != 2 {
		t.Fatalf("second MarkSuspect = %d, want 2", got)
	}
	// Direct contact clears the suspicion and unfreezes the age.
	v.ClearSuspect(7)
	if got := v.SuspectOf(7); got != 0 {
		t.Fatalf("SuspectOf = %d after clear, want 0", got)
	}
	if !v.AddAged(Entry{ID: 7, Age: 0}) {
		t.Fatal("AddAged refused to refresh a cleared entry")
	}
}

// Suspicion bookkeeping must track removals and evictions: the parallel
// metadata may never outlive (or shift away from) its entry.
func TestSuspectClearedByRemoveAndEvict(t *testing.T) {
	v := NewView(0, 2)
	v.AddAged(Entry{ID: 1, Age: 5})
	v.AddAged(Entry{ID: 2, Age: 1})
	v.MarkSuspect(1)
	v.MarkSuspect(2)
	// Evicting the oldest (1, the suspect) overwrites its slot: the new
	// tenant must start trusted.
	if !v.AddAged(Entry{ID: 3, Age: 0}) {
		t.Fatal("eviction insert failed")
	}
	if got := v.SuspectOf(3); got != 0 {
		t.Fatalf("fresh entry inherited suspicion %d", got)
	}
	if got := v.SuspectOf(1); got != 0 {
		t.Fatalf("evicted entry still suspect: %d", got)
	}
	// Remove must shift the metadata with the entries.
	v.Remove(3)
	if got := v.SuspectOf(2); got != 1 {
		t.Fatalf("survivor's suspicion lost on Remove: %d, want 1", got)
	}
	v.Remove(2)
	if v.SuspectOf(2) != 0 || v.Len() != 0 {
		t.Fatal("view not empty after removals")
	}
}
