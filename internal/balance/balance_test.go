package balance

import (
	"testing"

	"fairgossip/internal/fairness"
	"fairgossip/internal/stats"
)

func TestEveryoneReachedEachEvent(t *testing.T) {
	const n = 50
	led := fairness.NewLedger(n, fairness.DefaultWeights())
	b := New(n, 3, led)
	got := b.Disseminate(7, 64, func(int) bool { return true })
	if got != n {
		t.Fatalf("delivered %d, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		if led.Account(i).Delivered != 1 {
			t.Fatalf("node %d delivered %d", i, led.Account(i).Delivered)
		}
	}
}

func TestWorkIsBalancedAcrossManyEvents(t *testing.T) {
	const n = 64
	led := fairness.NewLedger(n, fairness.DefaultWeights())
	b := New(n, 3, led)
	for k := 0; k < 10*n; k++ { // full rotation ×10
		b.Disseminate(k%n, 64, nil)
	}
	work := make([]float64, n)
	for i := 0; i < n; i++ {
		work[i] = float64(led.Account(i).BytesSent[fairness.ClassApp])
	}
	if cov := stats.CoV(work); cov > 0.05 {
		t.Fatalf("work CoV %.4f — rotation failed to balance", cov)
	}
	if b.Events() != 10*n {
		t.Fatalf("Events() = %d", b.Events())
	}
}

func TestBalancedButUnfairUnderSkewedInterest(t *testing.T) {
	// The §3.1-vs-§3.2 punchline: equal work, unequal benefit → unfair
	// ratios despite perfect balance.
	const n = 64
	led := fairness.NewLedger(n, fairness.DefaultWeights())
	b := New(n, 3, led)
	for k := 0; k < 10*n; k++ {
		k := k
		// Graded interest: node i wants ≈ i/n of all events, so benefit
		// spans the whole population while work stays flat.
		b.Disseminate(k%n, 64, func(i int) bool { return (i+k)%n < i })
	}
	r := led.Report()
	if r.WorkCoV > 0.05 {
		t.Fatalf("work CoV %.4f, expected balanced", r.WorkCoV)
	}
	if r.RatioJain > 0.5 {
		t.Fatalf("ratio Jain %.3f — should be clearly unfair", r.RatioJain)
	}
	if r.ContribBenefitCorr > 0.1 {
		t.Fatalf("corr %.3f — balanced work cannot track benefit", r.ContribBenefitCorr)
	}
}

func TestPublisherChargedHandoff(t *testing.T) {
	const n = 16
	led := fairness.NewLedger(n, fairness.DefaultWeights())
	b := New(n, 2, led)
	// First event: root is node 0; publisher 5 pays a hand-off send.
	b.Disseminate(5, 10, nil)
	if led.Account(5).Published != 1 {
		t.Fatal("publish not recorded")
	}
	if led.Account(5).BytesSent[fairness.ClassApp] == 0 {
		t.Fatal("hand-off send not charged")
	}
}

func TestTinyPopulations(t *testing.T) {
	led := fairness.NewLedger(1, fairness.DefaultWeights())
	b := New(1, 3, led)
	if got := b.Disseminate(0, 10, func(int) bool { return true }); got != 1 {
		t.Fatalf("singleton delivered %d", got)
	}
	led0 := fairness.NewLedger(0, fairness.DefaultWeights())
	if got := New(0, 3, led0).Disseminate(0, 10, nil); got != 0 {
		t.Fatalf("empty population delivered %d", got)
	}
}

func TestArityFloor(t *testing.T) {
	led := fairness.NewLedger(4, fairness.DefaultWeights())
	b := New(4, 0, led) // coerced to 2
	if b.arity != 2 {
		t.Fatalf("arity = %d", b.arity)
	}
}
