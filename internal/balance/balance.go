// Package balance models the load-balancing baseline of §3.1: a
// SplitStream-flavoured dissemination that equalises *work* across all
// processes by rotating interior-node duty across per-event spanning
// trees. It demonstrates the paper's §3.2 point: perfectly balanced work
// under unequal interest is still unfair, because work no longer tracks
// benefit.
package balance

import (
	"fairgossip/internal/fairness"
)

// EventOverhead is the per-event wire overhead used for accounting.
const EventOverhead = 16

// Balanced disseminates each event down a fresh arity-ary spanning tree
// whose node order is rotated per event, so that over many events every
// process does the same total forwarding work (SplitStream's "every node
// is interior in exactly one stripe" idea, flattened to rotation).
type Balanced struct {
	n      int
	arity  int
	ledger *fairness.Ledger
	events int
}

// New builds a balanced disseminator over n processes with the given
// tree arity (minimum 2).
func New(n, arity int, ledger *fairness.Ledger) *Balanced {
	if arity < 2 {
		arity = 2
	}
	return &Balanced{n: n, arity: arity, ledger: ledger}
}

// Events returns how many events have been disseminated.
func (b *Balanced) Events() int { return b.events }

// Disseminate delivers one event from publisher to every process,
// charging forwarding work along the rotated tree and recording
// deliveries for processes where interested(i) is true. It returns the
// number of deliveries.
func (b *Balanced) Disseminate(publisher, eventSize int, interested func(int) bool) int {
	if b.n == 0 {
		return 0
	}
	size := eventSize + EventOverhead
	rot := b.events
	b.events++
	b.ledger.AddPublish(publisher, eventSize)

	// order[k] = (k + rot) mod n is this event's tree layout: order[0]
	// is the root; order[k]'s children are order[k*arity+1 .. k*arity+arity].
	pos := func(k int) int { return (k + rot) % b.n }

	// The publisher hands the event to the root (one charged send),
	// unless it happens to be the root.
	root := pos(0)
	if publisher != root {
		b.ledger.AddSend(publisher, fairness.ClassApp, size)
	}
	delivered := 0
	for k := 0; k < b.n; k++ {
		node := pos(k)
		// Forwarding: one send per child in the tree.
		firstChild := k*b.arity + 1
		for c := 0; c < b.arity; c++ {
			if firstChild+c < b.n {
				b.ledger.AddSend(node, fairness.ClassApp, size)
			}
		}
		if interested != nil && interested(node) {
			b.ledger.AddDelivery(node)
			delivered++
		}
	}
	return delivered
}
