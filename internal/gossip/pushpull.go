package gossip

import (
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
)

// Push-pull anti-entropy extension. The paper grounds gossip's robustness
// in the epidemic literature (§4.2 cites Demers et al. and bimodal
// multicast): pure push spreads fast but leaves a stochastic tail of
// uninfected peers when the fanout or the forwarding TTL is tight.
// Anti-entropy repairs that tail: peers periodically exchange digests of
// recently seen event IDs and pull what they are missing.
//
// The extension adds three message types to the basic Peer:
//
//	DigestMsg  — "these are the event IDs I hold"
//	PullReq    — "send me these events" (IDs the digester was missing)
//	(replies reuse Msg)
//
// Digest traffic is cheap (8 bytes/ID) and is what makes low-fanout
// configurations reliable — measured in EXP-X1.

// DigestMsg advertises the sender's buffered event IDs.
type DigestMsg struct {
	IDs []pubsub.EventID
}

// PullReq asks the receiver to send the listed events.
type PullReq struct {
	IDs []pubsub.EventID
}

// Wire-size accounting for anti-entropy messages.
const (
	digestHeaderSize = 8
	eventIDWireSize  = 8
)

// DigestWireSize returns the accounting size of a digest or pull request
// with n event IDs.
func DigestWireSize(n int) int { return digestHeaderSize + n*eventIDWireSize }

// EnableAntiEntropy turns on push-pull for the peer: every `every`-th
// round it sends a digest of its retransmission archive to one random
// partner. The archive outlives the forwarding buffer by archiveAge
// rounds (Demers-style: proactive push is bounded by the short TTL,
// reactive repair can reach further back). archiveAge ≤ 0 defaults to
// 4× the forwarding TTL; every ≤ 0 disables.
func (p *Peer) EnableAntiEntropy(every, archiveAge int) {
	p.antiEntropyEvery = every
	if every <= 0 {
		p.archive = nil
		return
	}
	if archiveAge <= 0 {
		archiveAge = 4 * p.cfg.BufferMaxAge
	}
	p.archive = NewBuffer(4*p.cfg.BufferCap, archiveAge)
}

// antiEntropyRound sends one digest if this round is a digest round.
func (p *Peer) antiEntropyRound() {
	if p.archive == nil {
		return
	}
	p.archive.Tick()
	if int(p.rounds)%p.antiEntropyEvery != 0 {
		return
	}
	ids := p.archive.liveIDs()
	if len(ids) == 0 {
		return
	}
	targets := p.sampler.SamplePeers(p.rng, 1)
	if len(targets) == 0 {
		return
	}
	digest := DigestMsg{IDs: append([]pubsub.EventID(nil), ids...)}
	p.net.Send(p.ID, targets[0], digest, DigestWireSize(len(digest.IDs)))
}

// handleDigest answers a digest: request everything we have not seen.
func (p *Peer) handleDigest(from simnet.NodeID, d DigestMsg) {
	var missing []pubsub.EventID
	for _, id := range d.IDs {
		if !p.seen.Contains(id) {
			missing = append(missing, id)
		}
	}
	if len(missing) == 0 {
		return
	}
	p.net.Send(p.ID, from, PullReq{IDs: missing}, DigestWireSize(len(missing)))
}

// handlePullReq serves a pull request from the archive (falling back to
// the forwarding buffer when anti-entropy is off but a request arrives).
func (p *Peer) handlePullReq(from simnet.NodeID, req PullReq) {
	var events []*pubsub.Event
	for _, id := range req.IDs {
		if p.archive != nil {
			if e, ok := p.archive.Get(id); ok {
				events = append(events, e)
				continue
			}
		}
		if e, ok := p.buffer.Get(id); ok {
			events = append(events, e)
		}
	}
	if len(events) == 0 {
		return
	}
	p.net.Send(p.ID, from, Msg{Events: events}, MsgWireSize(events))
}
