// Package gossip implements the basic push gossip-dissemination algorithm
// of Fig. 4 of the paper: periodically, each process picks F communication
// partners at random (SELECTPARTICIPANTS), packs up to N buffered events
// into a gossip message (SELECTEVENTS), and pushes it. Receivers
// deduplicate, re-buffer, and DELIVER events matching ISINTERESTED.
//
// The package provides the event buffer with age-based garbage collection,
// the duplicate-suppression set, the event-selection policies (an ablation
// axis), and a self-contained Peer used by the baseline reliability
// experiments (EXP-F4). The full fairness-aware protocol in internal/core
// composes the same pieces.
package gossip

import (
	"math/rand"

	"fairgossip/internal/pubsub"
)

// Policy selects which buffered events go into a gossip message — the
// paper's SELECTEVENTS(N in events).
type Policy uint8

const (
	// PolicyRandom picks uniformly at random among buffered events.
	PolicyRandom Policy = iota + 1
	// PolicyNewest prefers the events with the lowest age.
	PolicyNewest
	// PolicyLeastSent prefers events this process has forwarded least,
	// spreading forwarding effort across entries (round-robin-ish).
	PolicyLeastSent
)

type bufEntry struct {
	ev   *pubsub.Event
	age  int // rounds since insertion
	sent int // times included in an outgoing gossip message
}

// Buffer is the bounded `events` set of Fig. 4 with lpbcast-style
// age-based eviction: events older than MaxAge rounds are dropped, and
// when capacity overflows the oldest (then most-sent) entries go first.
type Buffer struct {
	cap    int
	maxAge int
	items  map[pubsub.EventID]*bufEntry
	order  []pubsub.EventID // insertion order, oldest first
}

// NewBuffer returns a buffer holding at most capacity events, each for at
// most maxAge rounds. Minimums of 1 apply.
func NewBuffer(capacity, maxAge int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	if maxAge < 1 {
		maxAge = 1
	}
	return &Buffer{
		cap:    capacity,
		maxAge: maxAge,
		items:  make(map[pubsub.EventID]*bufEntry, capacity),
	}
}

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.items) }

// Contains reports whether the event id is buffered.
func (b *Buffer) Contains(id pubsub.EventID) bool {
	_, ok := b.items[id]
	return ok
}

// Get returns the buffered event with the given id, if present. Serving
// an event through Get (anti-entropy pulls) counts as a send for the
// least-sent selection policy.
func (b *Buffer) Get(id pubsub.EventID) (*pubsub.Event, bool) {
	e, ok := b.items[id]
	if !ok {
		return nil, false
	}
	e.sent++
	return e.ev, true
}

// Insert adds an event. It reports false for duplicates. When the buffer
// is full, the oldest entry is evicted to make room.
func (b *Buffer) Insert(ev *pubsub.Event) bool {
	if _, dup := b.items[ev.ID]; dup {
		return false
	}
	if len(b.items) >= b.cap {
		b.evictOldest()
	}
	b.items[ev.ID] = &bufEntry{ev: ev}
	b.order = append(b.order, ev.ID)
	return true
}

func (b *Buffer) evictOldest() {
	for len(b.order) > 0 {
		id := b.order[0]
		b.order = b.order[1:]
		if _, ok := b.items[id]; ok {
			delete(b.items, id)
			return
		}
	}
}

// Tick advances every entry's age by one round and evicts expired
// entries. Call once per gossip round.
func (b *Buffer) Tick() {
	if len(b.items) == 0 {
		return
	}
	live := b.order[:0]
	for _, id := range b.order {
		e, ok := b.items[id]
		if !ok {
			continue
		}
		e.age++
		if e.age >= b.maxAge {
			delete(b.items, id)
			continue
		}
		live = append(live, id)
	}
	b.order = live
}

// Select returns up to n distinct buffered events according to the
// policy, marking them as sent once each.
func (b *Buffer) Select(rng *rand.Rand, n int, policy Policy) []*pubsub.Event {
	if n > len(b.items) {
		n = len(b.items)
	}
	if n <= 0 {
		return nil
	}
	ids := b.liveIDs()
	switch policy {
	case PolicyNewest:
		// order is oldest-first; take from the tail.
		ids = ids[len(ids)-n:]
	case PolicyLeastSent:
		// Partial selection by sent count; stable by age for determinism.
		sortBySent(ids, b.items)
		ids = ids[:n]
	default: // PolicyRandom
		perm := rng.Perm(len(ids))[:n]
		picked := make([]pubsub.EventID, n)
		for i, idx := range perm {
			picked[i] = ids[idx]
		}
		ids = picked
	}
	out := make([]*pubsub.Event, 0, len(ids))
	for _, id := range ids {
		e := b.items[id]
		e.sent++
		out = append(out, e.ev)
	}
	return out
}

// liveIDs compacts b.order, dropping tombstones, and returns it.
func (b *Buffer) liveIDs() []pubsub.EventID {
	live := b.order[:0]
	for _, id := range b.order {
		if _, ok := b.items[id]; ok {
			live = append(live, id)
		}
	}
	b.order = live
	return live
}

// sortBySent is an insertion sort by ascending sent count (buffers are
// small; stability preserves age order among equals).
func sortBySent(ids []pubsub.EventID, items map[pubsub.EventID]*bufEntry) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && items[ids[j]].sent < items[ids[j-1]].sent; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// SeenSet remembers recently observed event IDs for duplicate suppression
// (the `delivered`/`events` union of Fig. 4 outlives the buffer so that
// expired events are not re-delivered). Eviction is FIFO.
type SeenSet struct {
	cap   int
	set   map[pubsub.EventID]struct{}
	order []pubsub.EventID
}

// NewSeenSet returns a set remembering at most capacity ids (minimum 1).
func NewSeenSet(capacity int) *SeenSet {
	if capacity < 1 {
		capacity = 1
	}
	return &SeenSet{cap: capacity, set: make(map[pubsub.EventID]struct{}, capacity)}
}

// Add inserts the id, reporting true if it was new.
func (s *SeenSet) Add(id pubsub.EventID) bool {
	if _, dup := s.set[id]; dup {
		return false
	}
	if len(s.set) >= s.cap {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.set, victim)
	}
	s.set[id] = struct{}{}
	s.order = append(s.order, id)
	return true
}

// Contains reports whether the id is remembered.
func (s *SeenSet) Contains(id pubsub.EventID) bool {
	_, ok := s.set[id]
	return ok
}

// Len returns the number of remembered ids.
func (s *SeenSet) Len() int { return len(s.set) }
