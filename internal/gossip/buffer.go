// Package gossip implements the basic push gossip-dissemination algorithm
// of Fig. 4 of the paper: periodically, each process picks F communication
// partners at random (SELECTPARTICIPANTS), packs up to N buffered events
// into a gossip message (SELECTEVENTS), and pushes it. Receivers
// deduplicate, re-buffer, and DELIVER events matching ISINTERESTED.
//
// The package provides the event buffer with age-based garbage collection,
// the duplicate-suppression set, the event-selection policies (an ablation
// axis), and a self-contained Peer used by the baseline reliability
// experiments (EXP-F4). The full fairness-aware protocol in internal/core
// composes the same pieces.
package gossip

import (
	"math/rand"

	"fairgossip/internal/pubsub"
	"fairgossip/internal/randutil"
)

// Policy selects which buffered events go into a gossip message — the
// paper's SELECTEVENTS(N in events).
type Policy uint8

const (
	// PolicyRandom picks uniformly at random among buffered events.
	PolicyRandom Policy = iota + 1
	// PolicyNewest prefers the events with the lowest age.
	PolicyNewest
	// PolicyLeastSent prefers events this process has forwarded least,
	// spreading forwarding effort across entries (round-robin-ish).
	PolicyLeastSent
)

type bufEntry struct {
	ev   *pubsub.Event
	age  int // rounds since insertion
	sent int // times included in an outgoing gossip message
}

// Buffer is the bounded `events` set of Fig. 4 with lpbcast-style
// age-based eviction: events older than MaxAge rounds are dropped, and
// when capacity overflows the oldest (then most-sent) entries go first.
//
// Entries live in a recycled slab indexed through the id map, so the
// per-message insert/evict churn of a long run allocates nothing once the
// slab has warmed up.
type Buffer struct {
	cap    int
	maxAge int
	slab   []bufEntry // entry storage; indices are stable handles
	freeL  []int32    // recycled slab slots
	items  map[pubsub.EventID]int32
	order  []pubsub.EventID // insertion order, oldest first
	perm   []int            // scratch for PolicyRandom selection
}

// NewBuffer returns a buffer holding at most capacity events, each for at
// most maxAge rounds. Minimums of 1 apply.
func NewBuffer(capacity, maxAge int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	if maxAge < 1 {
		maxAge = 1
	}
	return &Buffer{
		cap:    capacity,
		maxAge: maxAge,
		items:  make(map[pubsub.EventID]int32, capacity),
	}
}

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.items) }

// Contains reports whether the event id is buffered.
func (b *Buffer) Contains(id pubsub.EventID) bool {
	_, ok := b.items[id]
	return ok
}

// Get returns the buffered event with the given id, if present. Serving
// an event through Get (anti-entropy pulls) counts as a send for the
// least-sent selection policy.
func (b *Buffer) Get(id pubsub.EventID) (*pubsub.Event, bool) {
	idx, ok := b.items[id]
	if !ok {
		return nil, false
	}
	e := &b.slab[idx]
	e.sent++
	return e.ev, true
}

// alloc returns a free slab slot.
func (b *Buffer) alloc() int32 {
	if n := len(b.freeL); n > 0 {
		idx := b.freeL[n-1]
		b.freeL = b.freeL[:n-1]
		return idx
	}
	b.slab = append(b.slab, bufEntry{})
	return int32(len(b.slab) - 1)
}

// release recycles a slab slot, dropping the event reference for the GC.
func (b *Buffer) release(idx int32) {
	b.slab[idx] = bufEntry{}
	b.freeL = append(b.freeL, idx)
}

// Insert adds an event. It reports false for duplicates. When the buffer
// is full, the oldest entry is evicted to make room.
func (b *Buffer) Insert(ev *pubsub.Event) bool {
	if _, dup := b.items[ev.ID]; dup {
		return false
	}
	if len(b.items) >= b.cap {
		b.evictOldest()
	}
	idx := b.alloc()
	b.slab[idx] = bufEntry{ev: ev}
	b.items[ev.ID] = idx
	b.order = append(b.order, ev.ID)
	return true
}

func (b *Buffer) evictOldest() {
	for len(b.order) > 0 {
		id := b.order[0]
		b.order = b.order[1:]
		if idx, ok := b.items[id]; ok {
			delete(b.items, id)
			b.release(idx)
			return
		}
	}
}

// Tick advances every entry's age by one round and evicts expired
// entries. Call once per gossip round.
func (b *Buffer) Tick() {
	if len(b.items) == 0 {
		return
	}
	live := b.order[:0]
	for _, id := range b.order {
		idx, ok := b.items[id]
		if !ok {
			continue
		}
		e := &b.slab[idx]
		e.age++
		if e.age >= b.maxAge {
			delete(b.items, id)
			b.release(idx)
			continue
		}
		live = append(live, id)
	}
	b.order = live
}

// Select returns up to n distinct buffered events according to the
// policy, marking them as sent once each. The returned slice is fresh
// (callers hand it to in-flight messages); the permutation scratch behind
// PolicyRandom is reused across calls.
func (b *Buffer) Select(rng *rand.Rand, n int, policy Policy) []*pubsub.Event {
	if n > len(b.items) {
		n = len(b.items)
	}
	if n <= 0 {
		return nil
	}
	scratch := make([]*pubsub.Event, 0, n)
	return b.SelectInto(rng, &scratch, n, policy)
}

// SelectInto is Select with caller-owned storage: the selection appends
// into *scratch (reset to length zero first), growing it only when the
// batch exceeds its capacity, and returns the filled slice. It consumes
// the random stream draw-for-draw identically to Select, so swapping it
// in never changes a fixed-seed run — only its allocation profile. The
// caller must not hand the returned slice to anything that outlives the
// scratch's next reuse; the pooled gossip envelope path copies out of it
// before the next round.
func (b *Buffer) SelectInto(rng *rand.Rand, scratch *[]*pubsub.Event, n int, policy Policy) []*pubsub.Event {
	out := (*scratch)[:0]
	*scratch = out
	if n > len(b.items) {
		n = len(b.items)
	}
	if n <= 0 {
		return out
	}
	ids := b.liveIDs()
	switch policy {
	case PolicyNewest:
		// order is oldest-first; take from the tail.
		ids = ids[len(ids)-n:]
	case PolicyLeastSent:
		// Partial selection by sent count; stable by age for determinism.
		b.sortBySent(ids)
		ids = ids[:n]
	default: // PolicyRandom
		perm := randutil.PermInto(rng, &b.perm, len(ids))
		for _, idx := range perm[:n] {
			e := &b.slab[b.items[ids[idx]]]
			e.sent++
			out = append(out, e.ev)
		}
		*scratch = out
		return out
	}
	for _, id := range ids {
		e := &b.slab[b.items[id]]
		e.sent++
		out = append(out, e.ev)
	}
	*scratch = out
	return out
}

// liveIDs compacts b.order, dropping tombstones, and returns it.
func (b *Buffer) liveIDs() []pubsub.EventID {
	live := b.order[:0]
	for _, id := range b.order {
		if _, ok := b.items[id]; ok {
			live = append(live, id)
		}
	}
	b.order = live
	return live
}

// sortBySent is an insertion sort by ascending sent count (buffers are
// small; stability preserves age order among equals).
func (b *Buffer) sortBySent(ids []pubsub.EventID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && b.slab[b.items[ids[j]]].sent < b.slab[b.items[ids[j-1]]].sent; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
