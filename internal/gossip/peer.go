package gossip

import (
	"math/rand"

	"fairgossip/internal/membership"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
)

// Msg is one push gossip message: a batch of events.
type Msg struct {
	Events []*pubsub.Event
}

// MsgHeaderSize is the fixed wire overhead of a gossip message.
const MsgHeaderSize = 16

// MsgWireSize returns the accounting size of a gossip message carrying
// the given events.
func MsgWireSize(events []*pubsub.Event) int {
	n := MsgHeaderSize
	for _, ev := range events {
		n += ev.WireSize()
	}
	return n
}

// Config parameterises a basic Fig. 4 peer.
type Config struct {
	Fanout int    // F: partners per round
	Batch  int    // N: events per gossip message
	Policy Policy // SELECTEVENTS policy (default PolicyRandom)

	BufferCap    int // events buffer capacity (default 128)
	BufferMaxAge int // rounds an event stays forwardable (default 8)
	SeenCap      int // duplicate-suppression memory (default 4096)
}

func (c Config) withDefaults() Config {
	if c.Fanout < 0 {
		c.Fanout = 0
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.Policy == 0 {
		c.Policy = PolicyRandom
	}
	if c.BufferCap < 1 {
		c.BufferCap = 128
	}
	if c.BufferMaxAge < 1 {
		c.BufferMaxAge = 8
	}
	if c.SeenCap < 1 {
		c.SeenCap = 4096
	}
	return c
}

// Peer is a self-contained Fig. 4 process: it implements simnet.Handler
// and exposes a Round method for the timer loop. It has no fairness
// machinery — it is the *classic* gossip baseline whose unfairness the
// paper criticises, and the reliability yardstick of EXP-F4.
type Peer struct {
	ID      simnet.NodeID
	net     *simnet.Network
	sampler membership.Sampler
	rng     *rand.Rand
	cfg     Config

	buffer *Buffer
	seen   *SeenSet

	// IsInterested is Fig. 4's ISINTERESTED(e); nil means interested in
	// everything (the classic-gossip assumption).
	IsInterested func(*pubsub.Event) bool
	// OnDeliver is Fig. 4's DELIVER(e).
	OnDeliver func(*pubsub.Event)

	delivered uint64
	received  uint64
	rounds    uint64

	// antiEntropyEvery > 0 enables push-pull repair every that many
	// rounds; archive is the long-lived retransmission store digests
	// advertise (see pushpull.go).
	antiEntropyEvery int
	archive          *Buffer
}

// NewPeer builds a peer. rng must be a node-private deterministic stream.
func NewPeer(id simnet.NodeID, net *simnet.Network, sampler membership.Sampler, rng *rand.Rand, cfg Config) *Peer {
	cfg = cfg.withDefaults()
	return &Peer{
		ID:      id,
		net:     net,
		sampler: sampler,
		rng:     rng,
		cfg:     cfg,
		buffer:  NewBuffer(cfg.BufferCap, cfg.BufferMaxAge),
		seen:    NewSeenSet(cfg.SeenCap),
	}
}

// Delivered returns how many events this peer has delivered.
func (p *Peer) Delivered() uint64 { return p.delivered }

// Received returns how many gossip messages this peer has received.
func (p *Peer) Received() uint64 { return p.received }

// BufferLen exposes the buffer occupancy (for backlog measurements).
func (p *Peer) BufferLen() int { return p.buffer.Len() }

// Publish injects a locally originated event (Fig. 4's publish maps to
// inserting into `events`; dissemination happens on the next rounds).
func (p *Peer) Publish(ev *pubsub.Event) {
	if p.seen.Add(ev.ID) {
		p.buffer.Insert(ev)
		if p.archive != nil {
			p.archive.Insert(ev)
		}
		p.deliverIfInterested(ev)
	}
}

// Round executes one timer expiry of Fig. 4: select participants, select
// events, send. It then ages the buffer and, when enabled, runs one
// anti-entropy step.
//
//fair:hotpath
func (p *Peer) Round() {
	p.rounds++
	events := p.buffer.Select(p.rng, p.cfg.Batch, p.cfg.Policy) //fair:ignore hotpath in-flight Msg payloads hold the selection beyond this round, so the slice cannot be reused; BenchmarkDisseminationRound tracks the cost
	if len(events) > 0 {
		size := MsgWireSize(events)
		var payload any = Msg{Events: events} //fair:ignore hotpath one boxed Msg per round, shared by every fanout send; BenchmarkDisseminationRound tracks the per-round cost
		for _, q := range p.sampler.SamplePeers(p.rng, p.cfg.Fanout) {
			p.net.Send(p.ID, q, payload, size)
		}
	}
	p.antiEntropyRound() //fair:ignore hotpath the anti-entropy digest is a deliberate fresh copy (it travels in an in-flight message), paid once every antiEntropyEvery rounds
	p.buffer.Tick()
}

// HandleMessage implements simnet.Handler (Fig. 4's RECEIVE handler,
// extended with the anti-entropy message types).
func (p *Peer) HandleMessage(msg simnet.Message) {
	switch m := msg.Payload.(type) {
	case Msg:
		p.received++
		for _, ev := range m.Events {
			if !p.seen.Add(ev.ID) {
				continue // e ∈ delivered ∪ events
			}
			p.buffer.Insert(ev)
			if p.archive != nil {
				p.archive.Insert(ev)
			}
			p.deliverIfInterested(ev)
		}
	case DigestMsg:
		p.handleDigest(msg.From, m)
	case PullReq:
		p.handlePullReq(msg.From, m)
	}
}

func (p *Peer) deliverIfInterested(ev *pubsub.Event) {
	if p.IsInterested != nil && !p.IsInterested(ev) {
		return
	}
	p.delivered++
	if p.OnDeliver != nil {
		p.OnDeliver(ev)
	}
}

var _ simnet.Handler = (*Peer)(nil)
