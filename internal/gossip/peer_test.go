package gossip

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"fairgossip/internal/eventsim"
	"fairgossip/internal/membership"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
)

// runDissemination builds n classic peers with the given fanout, publishes
// one event at node 0, runs `rounds` gossip rounds, and returns the
// fraction of peers that delivered it.
func runDissemination(seed int64, n, fanout, rounds int, loss float64) float64 {
	sim := eventsim.New(seed)
	net := simnet.New(sim, simnet.Config{
		Latency: simnet.ConstantLatency(time.Millisecond),
		Loss:    loss,
	})
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = NewPeer(
			simnet.NodeID(i), net,
			membership.FullSampler{Self: simnet.NodeID(i), N: n},
			rand.New(rand.NewSource(seed*1000+int64(i))),
			Config{Fanout: fanout, Batch: 4, BufferMaxAge: rounds + 1},
		)
	}
	for _, p := range peers {
		net.AddNode(p)
	}
	const period = 10 * time.Millisecond
	for _, p := range peers {
		p := p
		sim.Every(period, time.Millisecond, p.Round)
	}
	peers[0].Publish(&pubsub.Event{ID: pubsub.EventID{Publisher: 0, Seq: 1}, Topic: "t"})
	sim.RunUntil(time.Duration(rounds) * period)

	covered := 0
	for _, p := range peers {
		if p.Delivered() > 0 {
			covered++
		}
	}
	return float64(covered) / float64(n)
}

func TestDisseminationReachesAllWithLogFanout(t *testing.T) {
	n := 128
	fanout := int(math.Ceil(math.Log(float64(n)))) + 2 // ln(128)≈4.85 → 7
	ratio := runDissemination(1, n, fanout, 15, 0)
	if ratio < 0.99 {
		t.Fatalf("delivery ratio %.3f with fanout %d, want ≈1", ratio, fanout)
	}
}

func TestDisseminationPoorWithTinyFanout(t *testing.T) {
	// Fanout 1 with a short TTL cannot reach everyone.
	ratio := runDissemination(2, 256, 1, 8, 0)
	if ratio > 0.8 {
		t.Fatalf("fanout 1 covered %.3f of the system, expected partial coverage", ratio)
	}
}

func TestDisseminationMonotoneInFanout(t *testing.T) {
	// Average over seeds to smooth randomness.
	avg := func(fanout int) float64 {
		var s float64
		for seed := int64(0); seed < 3; seed++ {
			s += runDissemination(10+seed, 128, fanout, 10, 0)
		}
		return s / 3
	}
	lo, mid, hi := avg(1), avg(3), avg(6)
	if !(lo <= mid+0.05 && mid <= hi+0.02) {
		t.Fatalf("coverage not monotone-ish in fanout: %v %v %v", lo, mid, hi)
	}
	if hi < 0.99 {
		t.Fatalf("fanout 6 should cover ≈everything, got %.3f", hi)
	}
}

func TestDisseminationTolerates20PercentLoss(t *testing.T) {
	n := 128
	fanout := int(math.Ceil(math.Log(float64(n)))) + 3
	ratio := runDissemination(3, n, fanout, 15, 0.20)
	if ratio < 0.97 {
		t.Fatalf("delivery ratio %.3f under 20%% loss, want ≥0.97", ratio)
	}
}

func TestInterestFiltering(t *testing.T) {
	// A peer not interested must still forward (classic gossip) but not
	// deliver — the crux of the paper's unfairness complaint (§4.2).
	sim := eventsim.New(4)
	net := simnet.New(sim, simnet.Config{Latency: simnet.ConstantLatency(time.Millisecond)})
	n := 16
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		p := NewPeer(
			simnet.NodeID(i), net,
			membership.FullSampler{Self: simnet.NodeID(i), N: n},
			rand.New(rand.NewSource(int64(i))),
			Config{Fanout: 4, Batch: 4},
		)
		if i%2 == 1 {
			p.IsInterested = func(*pubsub.Event) bool { return false }
		}
		peers[i] = p
		net.AddNode(p)
	}
	for _, p := range peers {
		p := p
		sim.Every(10*time.Millisecond, time.Millisecond, p.Round)
	}
	peers[0].Publish(&pubsub.Event{ID: pubsub.EventID{Publisher: 0, Seq: 1}, Topic: "t"})
	sim.RunUntil(150 * time.Millisecond)

	for i, p := range peers {
		if i%2 == 1 && i != 0 {
			if p.Delivered() != 0 {
				t.Fatalf("uninterested peer %d delivered", i)
			}
			// They still carried traffic.
			if net.Stats(p.ID).BytesSent == 0 {
				t.Fatalf("uninterested peer %d forwarded nothing — not classic gossip", i)
			}
		}
	}
}

func TestOnDeliverCallbackAndCounts(t *testing.T) {
	sim := eventsim.New(5)
	net := simnet.New(sim, simnet.Config{})
	p := NewPeer(0, net, membership.FullSampler{Self: 0, N: 1}, rand.New(rand.NewSource(1)), Config{Fanout: 2, Batch: 2})
	net.AddNode(p)
	var got []*pubsub.Event
	p.OnDeliver = func(e *pubsub.Event) { got = append(got, e) }
	e := &pubsub.Event{ID: pubsub.EventID{Publisher: 0, Seq: 9}, Topic: "t"}
	p.Publish(e)
	p.Publish(e) // duplicate publish ignored
	if len(got) != 1 || p.Delivered() != 1 {
		t.Fatalf("delivered %d (callbacks %d), want 1", p.Delivered(), len(got))
	}
}

func TestHandleMessageIgnoresForeignPayload(t *testing.T) {
	sim := eventsim.New(6)
	net := simnet.New(sim, simnet.Config{})
	p := NewPeer(0, net, membership.FullSampler{Self: 0, N: 2}, rand.New(rand.NewSource(1)), Config{Fanout: 1})
	net.AddNode(p)
	p.HandleMessage(simnet.Message{From: 1, To: 0, Payload: "garbage", Size: 3})
	if p.Received() != 0 || p.Delivered() != 0 {
		t.Fatal("foreign payload processed")
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	p := NewPeer(0, nil, nil, rand.New(rand.NewSource(1)), Config{Fanout: -3})
	if p.cfg.Fanout != 0 || p.cfg.Batch != 1 || p.cfg.Policy != PolicyRandom {
		t.Fatalf("defaults: %+v", p.cfg)
	}
	if p.cfg.BufferCap != 128 || p.cfg.BufferMaxAge != 8 || p.cfg.SeenCap != 4096 {
		t.Fatalf("defaults: %+v", p.cfg)
	}
}

func BenchmarkDisseminationRound(b *testing.B) {
	sim := eventsim.New(1)
	net := simnet.New(sim, simnet.Config{Latency: simnet.ConstantLatency(time.Microsecond)})
	const n = 64
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = NewPeer(simnet.NodeID(i), net,
			membership.FullSampler{Self: simnet.NodeID(i), N: n},
			rand.New(rand.NewSource(int64(i))),
			Config{Fanout: 5, Batch: 8})
		net.AddNode(peers[i])
	}
	var seq uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seq++
		peers[i%n].Publish(&pubsub.Event{ID: pubsub.EventID{Publisher: uint32(i % n), Seq: seq}, Topic: "t"})
		for _, p := range peers {
			p.Round()
		}
		sim.Run()
	}
}
