package gossip

import "fairgossip/internal/pubsub"

// SeenSet remembers recently observed event IDs for duplicate suppression
// (the `delivered`/`events` union of Fig. 4 outlives the buffer so that
// expired events are not re-delivered). Eviction is FIFO.
//
// The implementation is an open-addressed uint64 hash table (linear
// probing, backward-shift deletion) over packed (publisher, seq) keys,
// paired with a circular FIFO ring. Membership tests are the single
// hottest operation of the whole simulation — every event in every gossip
// message passes through Add — and the flat table roughly halves their
// cost versus a Go map while allocating only on (amortised) growth.
type SeenSet struct {
	cap   int      // max remembered ids
	tab   []uint64 // open-addressed keys; emptySlot marks a free slot
	mask  uint64
	ring  []uint64 // circular FIFO of keys, oldest at head
	head  int
	count int
}

// emptySlot marks a free table slot. The value corresponds to event id
// (publisher 2^32-1, seq 2^32-1); publishers are dense small node ids, so
// the key is unreachable in practice.
const emptySlot = ^uint64(0)

func packID(id pubsub.EventID) uint64 {
	return uint64(id.Publisher)<<32 | uint64(id.Seq)
}

// mix64 is the splitmix64 finaliser — a fast, well-distributed hash for
// packed ids.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewSeenSet returns a set remembering at most capacity ids (minimum 1).
func NewSeenSet(capacity int) *SeenSet {
	if capacity < 1 {
		capacity = 1
	}
	s := &SeenSet{cap: capacity}
	s.grow(16)
	return s
}

// grow rehashes into a table of n slots (a power of two).
func (s *SeenSet) grow(n int) {
	old := s.tab
	s.tab = make([]uint64, n)
	for i := range s.tab {
		s.tab[i] = emptySlot
	}
	s.mask = uint64(n - 1)
	for _, k := range old {
		if k != emptySlot {
			s.insert(k)
		}
	}
}

// insert places a known-absent key.
func (s *SeenSet) insert(k uint64) {
	i := mix64(k) & s.mask
	for s.tab[i] != emptySlot {
		i = (i + 1) & s.mask
	}
	s.tab[i] = k
}

// find returns the slot of k, or -1.
func (s *SeenSet) find(k uint64) int {
	i := mix64(k) & s.mask
	for {
		v := s.tab[i]
		if v == k {
			return int(i)
		}
		if v == emptySlot {
			return -1
		}
		i = (i + 1) & s.mask
	}
}

// remove deletes k using backward-shift deletion, keeping probe chains
// intact without tombstones.
func (s *SeenSet) remove(k uint64) {
	idx := s.find(k)
	if idx < 0 {
		return
	}
	i := uint64(idx)
	j := i
	for {
		j = (j + 1) & s.mask
		v := s.tab[j]
		if v == emptySlot {
			break
		}
		// v may fill the hole at i iff its home slot lies at or before i
		// along the probe path ending at j.
		if home := mix64(v) & s.mask; (j-home)&s.mask >= (j-i)&s.mask {
			s.tab[i] = v
			i = j
		}
	}
	s.tab[i] = emptySlot
}

// Add inserts the id, reporting true if it was new.
func (s *SeenSet) Add(id pubsub.EventID) bool {
	k := packID(id)
	if s.find(k) >= 0 {
		return false
	}
	if s.count == s.cap {
		// Evict the oldest remembered id, FIFO.
		victim := s.ring[s.head]
		s.remove(victim)
		s.ring[s.head] = 0
		s.head++
		if s.head == len(s.ring) {
			s.head = 0
		}
		s.count--
	} else if s.count == len(s.ring) {
		// Ring full but below cap: grow it, linearising head..tail.
		n := 2 * len(s.ring)
		if n < 16 {
			n = 16
		}
		if n > s.cap {
			n = s.cap
		}
		ring := make([]uint64, n)
		for i := 0; i < s.count; i++ {
			ring[i] = s.ring[(s.head+i)%len(s.ring)]
		}
		s.ring = ring
		s.head = 0
	}
	// Keep the probe load factor at or below 1/2.
	if 2*(s.count+1) > len(s.tab) {
		s.grow(2 * len(s.tab))
	}
	s.insert(k)
	tail := s.head + s.count
	if tail >= len(s.ring) {
		tail -= len(s.ring)
	}
	s.ring[tail] = k
	s.count++
	return true
}

// Contains reports whether the id is remembered.
func (s *SeenSet) Contains(id pubsub.EventID) bool {
	return s.find(packID(id)) >= 0
}

// Len returns the number of remembered ids.
func (s *SeenSet) Len() int { return s.count }
