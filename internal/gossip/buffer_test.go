package gossip

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fairgossip/internal/pubsub"
)

func ev(pub, seq uint32) *pubsub.Event {
	return &pubsub.Event{ID: pubsub.EventID{Publisher: pub, Seq: seq}, Topic: "t"}
}

func TestBufferInsertDedup(t *testing.T) {
	b := NewBuffer(4, 8)
	if !b.Insert(ev(1, 1)) {
		t.Fatal("first insert failed")
	}
	if b.Insert(ev(1, 1)) {
		t.Fatal("duplicate insert succeeded")
	}
	if b.Len() != 1 || !b.Contains(pubsub.EventID{Publisher: 1, Seq: 1}) {
		t.Fatal("buffer state wrong")
	}
}

func TestBufferCapacityEviction(t *testing.T) {
	b := NewBuffer(3, 100)
	for i := uint32(1); i <= 4; i++ {
		b.Insert(ev(1, i))
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d, want 3", b.Len())
	}
	if b.Contains(pubsub.EventID{Publisher: 1, Seq: 1}) {
		t.Fatal("oldest entry should have been evicted")
	}
	if !b.Contains(pubsub.EventID{Publisher: 1, Seq: 4}) {
		t.Fatal("newest entry missing")
	}
}

func TestBufferAgeGC(t *testing.T) {
	b := NewBuffer(10, 3)
	b.Insert(ev(1, 1))
	b.Tick()
	b.Insert(ev(1, 2))
	b.Tick()
	b.Tick() // first event reaches age 3 and dies
	if b.Contains(pubsub.EventID{Publisher: 1, Seq: 1}) {
		t.Fatal("expired event still buffered")
	}
	if !b.Contains(pubsub.EventID{Publisher: 1, Seq: 2}) {
		t.Fatal("young event evicted early")
	}
}

func TestSelectPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	// Newest: returns the most recently inserted.
	b := NewBuffer(10, 100)
	for i := uint32(1); i <= 5; i++ {
		b.Insert(ev(1, i))
	}
	got := b.Select(rng, 2, PolicyNewest)
	if len(got) != 2 || got[0].ID.Seq != 4 || got[1].ID.Seq != 5 {
		t.Fatalf("newest picked %v", ids(got))
	}

	// LeastSent: previously sent events deprioritised.
	got = b.Select(rng, 2, PolicyLeastSent)
	for _, e := range got {
		if e.ID.Seq == 4 || e.ID.Seq == 5 {
			t.Fatalf("least-sent picked already-sent event %v", e.ID)
		}
	}

	// Random: correct count, distinct.
	got = b.Select(rng, 3, PolicyRandom)
	if len(got) != 3 {
		t.Fatalf("random picked %d", len(got))
	}
	seen := map[pubsub.EventID]bool{}
	for _, e := range got {
		if seen[e.ID] {
			t.Fatal("random selection repeated an event")
		}
		seen[e.ID] = true
	}

	// Oversized n clamps; zero/negative yields nil.
	if len(b.Select(rng, 99, PolicyRandom)) != 5 {
		t.Fatal("oversized n must clamp")
	}
	if b.Select(rng, 0, PolicyRandom) != nil {
		t.Fatal("n=0 must return nil")
	}
}

func TestSelectEmptyBuffer(t *testing.T) {
	b := NewBuffer(4, 4)
	if got := b.Select(rand.New(rand.NewSource(1)), 3, PolicyRandom); got != nil {
		t.Fatalf("empty buffer selected %v", got)
	}
	b.Tick() // must not panic on empty
}

func TestSeenSetFIFO(t *testing.T) {
	s := NewSeenSet(2)
	idA := pubsub.EventID{Publisher: 1, Seq: 1}
	idB := pubsub.EventID{Publisher: 1, Seq: 2}
	idC := pubsub.EventID{Publisher: 1, Seq: 3}
	if !s.Add(idA) || !s.Add(idB) {
		t.Fatal("adds failed")
	}
	if s.Add(idA) {
		t.Fatal("duplicate add succeeded")
	}
	s.Add(idC) // evicts idA
	if s.Contains(idA) {
		t.Fatal("FIFO eviction failed")
	}
	if !s.Contains(idB) || !s.Contains(idC) {
		t.Fatal("wrong eviction victim")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestMsgWireSize(t *testing.T) {
	events := []*pubsub.Event{ev(1, 1), ev(1, 2)}
	want := MsgHeaderSize + events[0].WireSize() + events[1].WireSize()
	if got := MsgWireSize(events); got != want {
		t.Fatalf("MsgWireSize = %d, want %d", got, want)
	}
	if MsgWireSize(nil) != MsgHeaderSize {
		t.Fatal("empty message size wrong")
	}
}

// Property: buffer never exceeds capacity, never holds duplicates, and
// Select never returns evicted or duplicate events.
func TestQuickBufferInvariants(t *testing.T) {
	f := func(ops []uint16, capRaw, ageRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		maxAge := int(ageRaw%8) + 1
		b := NewBuffer(capacity, maxAge)
		rng := rand.New(rand.NewSource(7))
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				b.Insert(ev(1, uint32(op/4)))
			case 2:
				b.Tick()
			case 3:
				got := b.Select(rng, int(op%5), Policy(1+op%3))
				seen := map[pubsub.EventID]bool{}
				for _, e := range got {
					if seen[e.ID] || !b.Contains(e.ID) {
						return false
					}
					seen[e.ID] = true
				}
			}
			if b.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(8))}); err != nil {
		t.Fatal(err)
	}
}

func ids(evs []*pubsub.Event) []pubsub.EventID {
	out := make([]pubsub.EventID, len(evs))
	for i, e := range evs {
		out[i] = e.ID
	}
	return out
}

func BenchmarkBufferInsertSelect(b *testing.B) {
	buf := NewBuffer(256, 8)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Insert(ev(1, uint32(i)))
		buf.Select(rng, 8, PolicyRandom)
		if i%16 == 0 {
			buf.Tick()
		}
	}
}

// SelectInto must consume the random stream and pick the same events as
// Select, for every policy, while reusing the caller's scratch.
func TestSelectIntoMatchesSelect(t *testing.T) {
	for _, policy := range []Policy{PolicyRandom, PolicyNewest, PolicyLeastSent} {
		a := NewBuffer(64, 8)
		b := NewBuffer(64, 8)
		for i := 0; i < 20; i++ {
			ev := &pubsub.Event{ID: pubsub.EventID{Publisher: 1, Seq: uint32(i + 1)}}
			a.Insert(ev)
			b.Insert(ev)
		}
		r1 := rand.New(rand.NewSource(9))
		r2 := rand.New(rand.NewSource(9))
		var scratch []*pubsub.Event
		for round := 0; round < 6; round++ {
			want := a.Select(r1, 5, policy)
			got := b.SelectInto(r2, &scratch, 5, policy)
			if len(want) != len(got) {
				t.Fatalf("policy %d round %d: len %d vs %d", policy, round, len(got), len(want))
			}
			for i := range want {
				if want[i].ID != got[i].ID {
					t.Fatalf("policy %d round %d pos %d: %v vs %v", policy, round, i, got[i].ID, want[i].ID)
				}
			}
			if r1.Int63() != r2.Int63() {
				t.Fatalf("policy %d: random streams diverged", policy)
			}
			r2.Int63() // re-sync after the probe draw above
			r1.Int63()
		}
	}
}

func TestSelectIntoZeroAllocSteadyState(t *testing.T) {
	b := NewBuffer(64, 1024)
	for i := 0; i < 32; i++ {
		b.Insert(&pubsub.Event{ID: pubsub.EventID{Publisher: 2, Seq: uint32(i + 1)}})
	}
	rng := rand.New(rand.NewSource(3))
	scratch := make([]*pubsub.Event, 0, 8)
	b.SelectInto(rng, &scratch, 8, PolicyRandom) // warm the perm scratch
	allocs := testing.AllocsPerRun(100, func() {
		b.SelectInto(rng, &scratch, 8, PolicyRandom)
	})
	if allocs != 0 {
		t.Fatalf("SelectInto allocates %v per run, want 0", allocs)
	}
}
