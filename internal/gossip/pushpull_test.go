package gossip

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"fairgossip/internal/eventsim"
	"fairgossip/internal/membership"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/simnet"
)

// runWithAntiEntropy is runDissemination with push-pull enabled/disabled
// and a configurable forwarding TTL (short TTLs create the uninfected
// tail that anti-entropy exists to repair).
func runWithAntiEntropy(seed int64, n, fanout, rounds, maxAge int, loss float64, antiEvery int) float64 {
	sim := eventsim.New(seed)
	net := simnet.New(sim, simnet.Config{
		Latency: simnet.ConstantLatency(time.Millisecond),
		Loss:    loss,
	})
	peers := make([]*Peer, n)
	for i := 0; i < n; i++ {
		peers[i] = NewPeer(
			simnet.NodeID(i), net,
			membership.FullSampler{Self: simnet.NodeID(i), N: n},
			rand.New(rand.NewSource(seed*1000+int64(i))),
			Config{Fanout: fanout, Batch: 4, BufferMaxAge: maxAge},
		)
		if antiEvery > 0 {
			peers[i].EnableAntiEntropy(antiEvery, 0)
		}
		net.AddNode(peers[i])
	}
	for _, p := range peers {
		p := p
		sim.Every(10*time.Millisecond, time.Millisecond, p.Round)
	}
	peers[0].Publish(&pubsub.Event{ID: pubsub.EventID{Publisher: 0, Seq: 1}, Topic: "t"})
	sim.RunUntil(time.Duration(rounds) * 10 * time.Millisecond)
	covered := 0
	for _, p := range peers {
		if p.Delivered() > 0 {
			covered++
		}
	}
	return float64(covered) / float64(n)
}

func TestAntiEntropyRepairsLowFanoutTail(t *testing.T) {
	// Fanout 1 with a 2-round TTL leaves a big uninfected tail under pure
	// push; push-pull repairs it to ~full coverage.
	avg := func(antiEvery int) float64 {
		var s float64
		for seed := int64(0); seed < 3; seed++ {
			s += runWithAntiEntropy(40+seed, 192, 1, 25, 2, 0, antiEvery)
		}
		return s / 3
	}
	pushOnly := avg(0)
	pushPull := avg(2)
	if pushOnly > 0.9 {
		t.Fatalf("push-only coverage %.3f — no tail to repair, test setup wrong", pushOnly)
	}
	if pushPull < 0.99 {
		t.Fatalf("push-pull coverage %.3f, want ≈1 (push-only %.3f)", pushPull, pushOnly)
	}
}

func TestAntiEntropyUnderHeavyLoss(t *testing.T) {
	n := 128
	fanout := int(math.Ceil(math.Log(float64(n))))
	got := runWithAntiEntropy(7, n, fanout, 20, 3, 0.30, 2)
	if got < 0.99 {
		t.Fatalf("push-pull under 30%% loss: coverage %.3f", got)
	}
}

func TestDigestWireSize(t *testing.T) {
	if DigestWireSize(0) != digestHeaderSize {
		t.Fatal("empty digest size")
	}
	if DigestWireSize(10) != digestHeaderSize+10*eventIDWireSize {
		t.Fatal("digest size formula")
	}
}

func TestBufferGet(t *testing.T) {
	b := NewBuffer(4, 8)
	e := ev(1, 1)
	b.Insert(e)
	got, ok := b.Get(e.ID)
	if !ok || got != e {
		t.Fatal("Get failed")
	}
	if _, ok := b.Get(pubsub.EventID{Publisher: 9, Seq: 9}); ok {
		t.Fatal("Get returned missing event")
	}
	// Get counts as a send for the least-sent policy.
	b.Insert(ev(1, 2))
	sel := b.Select(rand.New(rand.NewSource(1)), 1, PolicyLeastSent)
	if len(sel) != 1 || sel[0].ID.Seq != 2 {
		t.Fatalf("least-sent should skip pulled event, picked %v", sel[0].ID)
	}
}

func TestDigestRoundRespectsCadence(t *testing.T) {
	sim := eventsim.New(9)
	net := simnet.New(sim, simnet.Config{})
	a := NewPeer(0, net, membership.FullSampler{Self: 0, N: 2}, rand.New(rand.NewSource(1)), Config{Fanout: 0, Batch: 1})
	b := NewPeer(1, net, membership.FullSampler{Self: 1, N: 2}, rand.New(rand.NewSource(2)), Config{Fanout: 0, Batch: 1})
	net.AddNode(a)
	net.AddNode(b)
	a.EnableAntiEntropy(3, 0)
	a.Publish(&pubsub.Event{ID: pubsub.EventID{Publisher: 0, Seq: 1}, Topic: "t"})
	// Fanout 0: only digests can move the event.
	for r := 0; r < 2; r++ {
		a.Round()
		sim.Run()
	}
	if b.Delivered() != 0 {
		t.Fatal("digest fired before cadence")
	}
	a.Round() // round 3: digest goes out
	sim.Run()
	if b.Delivered() != 1 {
		t.Fatalf("pull did not deliver: %d", b.Delivered())
	}
}

func TestPullServesOnlyBufferedEvents(t *testing.T) {
	sim := eventsim.New(10)
	net := simnet.New(sim, simnet.Config{})
	a := NewPeer(0, net, membership.FullSampler{Self: 0, N: 2}, rand.New(rand.NewSource(1)), Config{Fanout: 0})
	rec := &recorder{}
	net.AddNode(a)
	net.AddNode(rec)
	// Request an event the peer does not hold: no reply at all.
	a.HandleMessage(simnet.Message{From: 1, To: 0, Payload: PullReq{
		IDs: []pubsub.EventID{{Publisher: 5, Seq: 5}},
	}})
	sim.Run()
	if len(rec.got) != 0 {
		t.Fatal("pull reply sent for unknown event")
	}
}

// recorder for pushpull tests.
type recorder struct{ got []simnet.Message }

func (r *recorder) HandleMessage(m simnet.Message) { r.got = append(r.got, m) }

func BenchmarkAntiEntropyRound(b *testing.B) {
	sim := eventsim.New(1)
	net := simnet.New(sim, simnet.Config{})
	p := NewPeer(0, net, membership.FullSampler{Self: 0, N: 64}, rand.New(rand.NewSource(1)), Config{Fanout: 3, Batch: 8})
	net.AddNode(p)
	for i := 0; i < 63; i++ {
		net.AddNode(&recorder{})
	}
	p.EnableAntiEntropy(1, 0)
	for i := 0; i < 64; i++ {
		p.Publish(&pubsub.Event{ID: pubsub.EventID{Publisher: 0, Seq: uint32(i)}, Topic: "t"})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Round()
		if i%64 == 0 {
			sim.Run()
		}
	}
}
