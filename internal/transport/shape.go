package transport

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Profile parameterises the shaping middleware: what the network between
// two endpoints does to an envelope beyond delivering it instantly. The
// zero value is an inert profile (no delay, no loss, no cap) — shaping
// it costs one atomic load per Send.
type Profile struct {
	// Seed drives every stochastic decision the shaper makes (loss
	// draws, jitter draws, reorder draws). Shape captures it once at
	// construction; SetProfile does not reseed, so a mid-run profile
	// change never replays the random stream.
	Seed int64
	// Delay is the base one-way delay added to every envelope.
	Delay time.Duration
	// Jitter adds a uniform extra delay in [0, Jitter) per envelope —
	// enough variance and later envelopes overtake earlier ones.
	Jitter time.Duration
	// Reorder is the probability an envelope draws an additional hold of
	// up to 3·(Delay+Jitter), forcing overtaking even when Jitter alone
	// would rarely produce it.
	Reorder float64
	// Loss is the i.i.d. probability an envelope is eaten in transit.
	// The sender is not told — like a real datagram network — but the
	// loss is counted in Drops().
	Loss float64
	// Rate, when > 0, polices each directed link (from, to) to this many
	// bytes per second through a token bucket; an envelope that finds
	// the bucket short is dropped and counted, which is how a policed
	// (not buffered) link behaves.
	Rate int
	// Burst is the token-bucket depth in bytes (default max(Rate/8,
	// 16384)). Envelopes larger than Burst can never pass a capped link.
	Burst int
	// OutageLoss is the drop probability applied to envelopes crossing a
	// regional-outage boundary (see SetOutage). Zero means 1: an outage
	// is a hard cut unless explicitly softened.
	OutageLoss float64
}

// inert reports whether the profile shapes nothing.
func (p Profile) inert() bool {
	return p.Delay == 0 && p.Jitter == 0 && p.Reorder == 0 && p.Loss == 0 && p.Rate == 0
}

// Rebinder is the optional Net capability behind mobile peers: move one
// endpoint to a fresh transport address while the cluster runs. UDPNet
// implements it make-before-break (the old socket keeps draining until
// Net.Close, so no datagram in flight is lost); ShapedNet delegates to
// its substrate. The in-process ChanNet has nothing to rebind — its
// address is the peer id itself.
type Rebinder interface {
	Rebind(id int) (string, error)
}

// Shape wraps any Net in the shaping middleware. Outbound envelopes are
// intercepted at Send time: loss, outage and bandwidth verdicts are
// immediate (and counted in Drops()); delay, jitter and reorder hold
// the envelope in a time-ordered queue and deliver it through the
// substrate later, from a single dispatcher goroutine.
//
// The buffer-ownership contract survives shaping untouched: a held
// envelope is the same immutable byte slice the sender passed in — the
// shaper never copies, mutates, or recycles it, and delivers it to the
// substrate exactly once or counts it dropped. Close flushes every held
// envelope through the substrate before closing it, so conservation
// audits after Close see a settled network: every envelope the shaper
// accepted is either delivered or in Drops().
func Shape(inner Net, p Profile) *ShapedNet {
	s := &ShapedNet{
		inner: inner,
		rng:   rand.New(rand.NewSource(p.Seed)),
		links: make(map[uint64]*linkBucket),
		wake:  make(chan struct{}, 1),
		halt:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	prof := p
	s.prof.Store(&prof)
	return s
}

// ShapedNet is a Net decorated with a shaping Profile. See Shape.
type ShapedNet struct {
	inner Net
	prof  atomic.Pointer[Profile]
	// outage tags each peer id with a region generation; envelopes whose
	// endpoints carry different tags cross an outage boundary. Nil when
	// no outage is in force (the fast path checks exactly that).
	outage    atomic.Pointer[[]int32]
	outageGen int32
	drops     atomic.Uint64

	mu      sync.Mutex             // guards rng, links, queue, seq, closed, running
	rng     *rand.Rand             //fair:guardedby mu
	links   map[uint64]*linkBucket //fair:guardedby mu
	queue   deferredQueue          //fair:guardedby mu
	seq     uint64                 //fair:guardedby mu
	closed  bool                   //fair:guardedby mu
	running bool                   //fair:guardedby mu -- dispatcher goroutine started (lazily, on first hold)

	wake      chan struct{}
	halt      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
}

// deferred is one held envelope: the same slice the sender passed in,
// due for delivery through the sender's substrate endpoint.
type deferred struct {
	due time.Time
	seq uint64 // FIFO tiebreak: equal due times deliver in send order
	ep  Transport
	to  int
	buf []byte
}

type deferredQueue []deferred

func (q deferredQueue) Len() int { return len(q) }
func (q deferredQueue) Less(i, j int) bool {
	if !q[i].due.Equal(q[j].due) {
		return q[i].due.Before(q[j].due)
	}
	return q[i].seq < q[j].seq
}
func (q deferredQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *deferredQueue) Push(x any)   { *q = append(*q, x.(deferred)) }
func (q *deferredQueue) Pop() (x any) { old := *q; n := len(old); x = old[n-1]; *q = old[:n-1]; return }

type linkBucket struct {
	tokens float64
	last   time.Time
}

// Attach implements Net: handlers pass straight through to the
// substrate (shaping is applied on the send side only), and the
// returned endpoint wraps the substrate's.
func (s *ShapedNet) Attach(id int, h Handler) (Transport, error) {
	inner, err := s.inner.Attach(id, h)
	if err != nil {
		return nil, err
	}
	return &shapedEndpoint{s: s, id: id, inner: inner}, nil
}

// SetProfile swaps the shaping profile for all subsequent Sends.
// Envelopes already held keep the delay they drew.
func (s *ShapedNet) SetProfile(p Profile) {
	prof := p
	s.prof.Store(&prof)
}

// SetOutage marks (on) or clears (on=false) a correlated regional
// outage over the given peer ids. While marked, every envelope with
// exactly one endpoint inside the region — and any envelope between two
// distinct marked regions — is dropped with probability OutageLoss
// (default 1, a hard cut); traffic wholly inside one region still
// flows. Calling with on=false and nil members lifts every outage.
func (s *ShapedNet) SetOutage(members []int, on bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !on && members == nil {
		s.outage.Store(nil)
		return
	}
	var cur []int32
	if old := s.outage.Load(); old != nil {
		cur = *old
	}
	n := len(cur)
	for _, id := range members {
		if id+1 > n {
			n = id + 1
		}
	}
	grown := make([]int32, n)
	copy(grown, cur)
	if on {
		s.outageGen++
		for _, id := range members {
			if id >= 0 {
				grown[id] = s.outageGen
			}
		}
	} else {
		for _, id := range members {
			if id >= 0 && id < len(grown) {
				grown[id] = 0
			}
		}
	}
	for _, tag := range grown {
		if tag != 0 {
			s.outage.Store(&grown)
			return
		}
	}
	s.outage.Store(nil)
}

// Drops returns how many envelopes the shaper has eaten (profile loss,
// policed bandwidth, outage boundaries, and deferred deliveries the
// substrate refused). Together with the substrate's own accounting this
// keeps sent == recv + dropped exact under shaping.
func (s *ShapedNet) Drops() uint64 { return s.drops.Load() }

// Held reports how many envelopes are currently deferred (test hook).
func (s *ShapedNet) Held() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// Rebind implements Rebinder by delegation when the substrate can.
func (s *ShapedNet) Rebind(id int) (string, error) {
	if rb, ok := s.inner.(Rebinder); ok {
		return rb.Rebind(id)
	}
	return "", fmt.Errorf("transport: substrate cannot rebind peer %d", id)
}

// Close stops accepting sends, flushes every held envelope through the
// substrate immediately (refusals are counted drops), then closes the
// substrate.
func (s *ShapedNet) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		running := s.running
		s.mu.Unlock()
		if running {
			close(s.halt)
			<-s.done // dispatcher flushed the queue on its way out
		}
	})
	return s.inner.Close()
}

// holdLocked queues one envelope for deferred delivery and makes sure
// the dispatcher is awake. Callers hold s.mu.
func (s *ShapedNet) holdLocked(d deferred) {
	s.seq++
	d.seq = s.seq
	heap.Push(&s.queue, d)
	if !s.running {
		s.running = true
		go s.dispatch()
	}
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// dispatch is the single dispatcher goroutine: it sleeps until the
// earliest held envelope is due, delivers it through the substrate, and
// on Close drains everything left immediately.
func (s *ShapedNet) dispatch() {
	defer close(s.done)
	for {
		s.mu.Lock()
		if s.closed {
			rest := s.queue
			s.queue = nil
			s.mu.Unlock()
			// Flush in due order (heap order is close enough for a
			// teardown path, but due order keeps FIFO per link).
			for rest.Len() > 0 {
				d := heap.Pop(&rest).(deferred)
				s.deliver(d)
			}
			return
		}
		if s.queue.Len() == 0 {
			s.mu.Unlock()
			select {
			case <-s.wake:
			case <-s.halt:
			}
			continue
		}
		now := time.Now()
		next := s.queue[0].due
		if next.After(now) {
			s.mu.Unlock()
			t := time.NewTimer(next.Sub(now))
			select {
			case <-t.C:
			case <-s.wake:
				t.Stop()
			case <-s.halt:
				t.Stop()
			}
			continue
		}
		d := heap.Pop(&s.queue).(deferred)
		s.mu.Unlock()
		s.deliver(d)
	}
}

// deliver completes one deferred envelope. The sender was told nil at
// Send time, so a substrate refusal here must be counted by the shaper
// or the envelope would vanish from the books.
func (s *ShapedNet) deliver(d deferred) {
	if err := d.ep.Send(d.to, d.buf); err != nil {
		s.drops.Add(1)
	}
}

// takeLocked runs the token bucket for one directed link. Callers hold
// s.mu.
func (s *ShapedNet) takeLocked(from, to, size int, p *Profile) bool {
	burst := float64(p.Burst)
	if burst <= 0 {
		burst = float64(p.Rate) / 8
		if burst < 16384 {
			burst = 16384
		}
	}
	key := uint64(uint32(from))<<32 | uint64(uint32(to))
	now := time.Now()
	b := s.links[key]
	if b == nil {
		b = &linkBucket{tokens: burst, last: now}
		s.links[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * float64(p.Rate)
	b.last = now
	if b.tokens > burst {
		b.tokens = burst
	}
	if b.tokens < float64(size) {
		return false
	}
	b.tokens -= float64(size)
	return true
}

type shapedEndpoint struct {
	s     *ShapedNet
	id    int
	inner Transport
}

// Send applies the profile to one envelope. Shaper losses return nil —
// the sender learns nothing, like a real network — and are counted in
// Drops(); hard substrate failures on the synchronous path surface as
// errors exactly as they would unshaped.
func (e *shapedEndpoint) Send(to int, buf []byte) error {
	s := e.s
	p := s.prof.Load()
	tags := s.outage.Load()
	if p.inert() && tags == nil {
		return e.inner.Send(to, buf)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if tags != nil {
		tg := *tags
		var a, b int32
		if e.id >= 0 && e.id < len(tg) {
			a = tg[e.id]
		}
		if to >= 0 && to < len(tg) {
			b = tg[to]
		}
		if a != b {
			ol := p.OutageLoss
			if ol <= 0 {
				ol = 1
			}
			if ol >= 1 || s.rng.Float64() < ol {
				s.drops.Add(1)
				s.mu.Unlock()
				return nil
			}
		}
	}
	if p.Loss > 0 && s.rng.Float64() < p.Loss {
		s.drops.Add(1)
		s.mu.Unlock()
		return nil
	}
	if p.Rate > 0 && !s.takeLocked(e.id, to, len(buf), p) {
		s.drops.Add(1)
		s.mu.Unlock()
		return nil
	}
	d := p.Delay
	if p.Jitter > 0 {
		d += time.Duration(s.rng.Int63n(int64(p.Jitter)))
	}
	if p.Reorder > 0 && s.rng.Float64() < p.Reorder {
		span := 3 * (p.Delay + p.Jitter)
		if span <= 0 {
			span = time.Millisecond
		}
		d += time.Duration(s.rng.Int63n(int64(span)))
	}
	if d <= 0 {
		s.mu.Unlock()
		return e.inner.Send(to, buf)
	}
	s.holdLocked(deferred{due: time.Now().Add(d), ep: e.inner, to: to, buf: buf})
	s.mu.Unlock()
	return nil
}

func (e *shapedEndpoint) LocalAddr() string { return e.inner.LocalAddr() }
func (e *shapedEndpoint) Close() error      { return e.inner.Close() }
