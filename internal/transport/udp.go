package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// MaxDatagram is the largest encoded envelope a UDP endpoint will send:
// the IPv4 maximum UDP payload (65535 - 20 IP - 8 UDP header bytes).
// Send refuses anything larger instead of letting the kernel truncate
// or reject it at an unaccountable layer.
const MaxDatagram = 65507

// udpReadBuffer is the per-socket kernel receive buffer we request
// (best effort): large enough that a storm burst queues in the kernel
// instead of being dropped invisibly before user space can count it.
const udpReadBuffer = 4 << 20

// UDP returns the loopback-socket transport factory: one real datagram
// socket per peer, encode-on-send / decode-on-receive.
func UDP() Factory {
	return func(n int) (Net, error) { return NewUDPNet(n) }
}

// UDPNet binds one loopback UDP socket per peer. Sends go straight to
// the kernel with WriteToUDP; a reader goroutine per attached peer
// hands each datagram (copied, owned by the receiver) to the peer's
// handler.
//
// The socket table lives behind an atomic pointer and grows
// copy-on-write: a joining peer's Attach binds one more socket without
// blocking (or racing) the cluster's in-flight Sends.
type udpTable struct {
	conns    []*net.UDPConn
	addrs    []*net.UDPAddr
	attached []bool
	handlers []Handler // kept so Rebind can start the new socket's reader
}

type UDPNet struct {
	table atomic.Pointer[udpTable]
	mu    sync.Mutex // serialises Attach/Rebind (table growth) against Close

	// retired holds the pre-rebind socket of every moved peer: Rebind is
	// make-before-break, so the old socket keeps draining datagrams that
	// were addressed to it until Close — a rebind loses nothing.
	//fair:guardedby mu
	retired []*net.UDPConn

	readers sync.WaitGroup
	// sentD/recvD count datagrams accepted by and read back from the
	// kernel; Close uses them to quiesce before tearing sockets down.
	sentD, recvD atomic.Uint64

	closed    bool //fair:guardedby mu
	closeOnce sync.Once
}

// bindLoopback binds one loopback socket on an ephemeral port.
func bindLoopback() (*net.UDPConn, error) {
	conn, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	// Best effort: a small default rcvbuf is the one way loopback
	// datagrams get lost invisibly under load.
	_ = conn.SetReadBuffer(udpReadBuffer)
	return conn, nil
}

// NewUDPNet binds n loopback sockets on ephemeral ports. On any bind
// failure the already-bound sockets are released.
func NewUDPNet(n int) (*UDPNet, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: need at least 1 peer, got %d", n)
	}
	u := &UDPNet{}
	tbl := &udpTable{
		conns:    make([]*net.UDPConn, n),
		addrs:    make([]*net.UDPAddr, n),
		attached: make([]bool, n),
		handlers: make([]Handler, n),
	}
	u.table.Store(tbl)
	for i := 0; i < n; i++ {
		conn, err := bindLoopback()
		if err != nil {
			u.Close()
			return nil, fmt.Errorf("transport: bind socket for peer %d: %w", i, err)
		}
		tbl.conns[i] = conn
		tbl.addrs[i] = conn.LocalAddr().(*net.UDPAddr)
	}
	return u, nil
}

// Attach implements Net: it starts peer id's reader goroutine. id ==
// current population grows the net by one freshly bound socket.
func (u *UDPNet) Attach(id int, h Handler) (Transport, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return nil, ErrClosed
	}
	tbl := u.table.Load()
	if id < 0 || id > len(tbl.conns) {
		return nil, fmt.Errorf("transport: peer id %d out of range [0,%d]", id, len(tbl.conns))
	}
	if id < len(tbl.conns) && tbl.attached[id] {
		return nil, fmt.Errorf("transport: peer %d attached twice", id)
	}
	if h == nil {
		return nil, fmt.Errorf("transport: peer %d attached a nil handler", id)
	}
	// Copy-on-write even for pre-sized slots: a concurrent Send must
	// never observe a half-written table.
	grown := tbl.grow(max(len(tbl.conns), id+1))
	if grown.conns[id] == nil {
		conn, err := bindLoopback()
		if err != nil {
			return nil, fmt.Errorf("transport: bind socket for joining peer %d: %w", id, err)
		}
		grown.conns[id] = conn
		grown.addrs[id] = conn.LocalAddr().(*net.UDPAddr)
	}
	grown.attached[id] = true
	grown.handlers[id] = h
	u.table.Store(grown)
	u.readers.Add(1)
	go u.readLoop(grown.conns[id], h)
	return &udpEndpoint{net: u, id: id}, nil
}

// grow returns a copy-on-write copy of the table, sized for n peers. A
// concurrent Send must never observe a half-written table, so every
// mutation goes through a fresh copy.
func (t *udpTable) grow(n int) *udpTable {
	grown := &udpTable{
		conns:    make([]*net.UDPConn, n),
		addrs:    make([]*net.UDPAddr, n),
		attached: make([]bool, n),
		handlers: make([]Handler, n),
	}
	copy(grown.conns, t.conns)
	copy(grown.addrs, t.addrs)
	copy(grown.attached, t.attached)
	copy(grown.handlers, t.handlers)
	return grown
}

// Rebind implements Rebinder: peer id moves to a freshly bound loopback
// socket — the live analogue of a mobile peer changing address. The
// move is make-before-break: the new socket (and its reader) is running
// before the table swap, and the old socket keeps draining until
// Net.Close, so a datagram in flight toward the old address is still
// received and counted. The cost is one lingering socket per rebind for
// the life of the net.
func (u *UDPNet) Rebind(id int) (string, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return "", ErrClosed
	}
	tbl := u.table.Load()
	if id < 0 || id >= len(tbl.conns) || !tbl.attached[id] {
		return "", fmt.Errorf("transport: cannot rebind unattached peer %d", id)
	}
	conn, err := bindLoopback()
	if err != nil {
		return "", fmt.Errorf("transport: rebind peer %d: %w", id, err)
	}
	u.readers.Add(1)
	go u.readLoop(conn, tbl.handlers[id])
	grown := tbl.grow(len(tbl.conns))
	u.retired = append(u.retired, grown.conns[id])
	grown.conns[id] = conn
	grown.addrs[id] = conn.LocalAddr().(*net.UDPAddr)
	u.table.Store(grown)
	return grown.addrs[id].String(), nil
}

func (u *UDPNet) readLoop(conn *net.UDPConn, h Handler) {
	defer u.readers.Done()
	buf := make([]byte, MaxDatagram+1)
	for {
		n, _, err := conn.ReadFromUDP(buf)
		if n > 0 {
			u.recvD.Add(1)
			msg := make([]byte, n)
			copy(msg, buf[:n])
			h(msg)
		}
		if err != nil {
			return // socket closed (or unrecoverable): reader exits
		}
	}
}

// Close implements Net: quiesce, then tear down. The quiesce wait is
// bounded; if the kernel genuinely lost datagrams (receive-buffer
// overrun), sentD never catches up, the wait times out, and the
// caller's sent/recv accounting shows the leak — which is the point.
func (u *UDPNet) Close() error {
	u.closeOnce.Do(func() {
		u.mu.Lock()
		u.closed = true // no further Attach can bind sockets
		u.mu.Unlock()
		deadline := time.Now().Add(time.Second)
		for u.recvD.Load() < u.sentD.Load() && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		for _, c := range u.table.Load().conns {
			if c != nil {
				_ = c.Close()
			}
		}
		for _, c := range u.retired {
			_ = c.Close()
		}
		u.readers.Wait()
	})
	return nil
}

type udpEndpoint struct {
	net    *UDPNet
	id     int
	closed atomic.Bool
}

func (e *udpEndpoint) Send(to int, buf []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	tbl := e.net.table.Load()
	if to < 0 || to >= len(tbl.addrs) || tbl.addrs[to] == nil {
		return fmt.Errorf("transport: no peer %d", to)
	}
	if len(buf) > MaxDatagram {
		return fmt.Errorf("%w: %d > %d bytes", ErrOversize, len(buf), MaxDatagram)
	}
	if _, err := tbl.conns[e.id].WriteToUDP(buf, tbl.addrs[to]); err != nil {
		return err
	}
	e.net.sentD.Add(1)
	return nil
}

func (e *udpEndpoint) LocalAddr() string { return e.net.table.Load().addrs[e.id].String() }

// Close marks the endpoint closed for further Sends. The socket itself
// is shared with the reader and torn down by Net.Close, which owns the
// quiesce ordering.
func (e *udpEndpoint) Close() error {
	e.closed.Store(true)
	return nil
}
