// Package transport is the pluggable message substrate of the live
// runtime: how an encoded wire envelope gets from one peer to another.
//
// A Net wires the N peers of one cluster together; each peer attaches
// once and gets back its Transport — the endpoint it sends through —
// plus inbound delivery through its Handler callback. Two
// implementations ship:
//
//   - ChanNet — in-process delivery: Send hands the byte slice to the
//     destination's handler synchronously on the caller's goroutine.
//     This preserves the pre-transport live-runtime semantics (no
//     sockets, no kernel, deterministic drop accounting) and is the
//     default.
//   - UDPNet — one real loopback datagram socket per peer. Send writes
//     the envelope with WriteToUDP; a per-peer reader goroutine hands
//     each datagram to the handler. Oversized envelopes are refused at
//     the API (datagram-size enforcement), and Close quiesces — waits,
//     bounded, for datagrams the kernel has accepted to reach their
//     reader — so post-shutdown traffic audits see a settled network.
//
// Ownership contract: a buffer passed to Send is immutable from that
// moment on, by everyone — in-process transports hand the same backing
// array to the receiver (and a fanout shares one encoding across all
// destinations), so neither sender nor receiver may write to it again.
// Buffers given to a Handler are owned by the receiving side and are
// never reused by the transport. Handlers must not block: the live
// runtime's handler does a non-blocking inbox push and counts overflow
// as a drop, which is exactly how a saturated socket buffer behaves —
// except the loss is accounted.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Handler consumes one inbound encoded envelope.
type Handler func(buf []byte)

// Transport is a single peer's sending endpoint.
type Transport interface {
	// Send transmits buf to peer `to`. It never blocks on a slow
	// receiver and returns an error only for hard failures (unknown
	// destination, oversized datagram, closed endpoint); silent loss in
	// transit is the receiving side's counted problem, like a real
	// datagram socket.
	Send(to int, buf []byte) error
	// LocalAddr renders the endpoint's address ("chan://3",
	// "127.0.0.1:51324").
	LocalAddr() string
	// Close releases the endpoint; subsequent Sends fail.
	Close() error
}

// Net wires the N endpoints of one cluster together. Attach must be
// called exactly once per peer id before any traffic flows to it (the
// live runtime attaches every peer during cluster construction).
//
// Nets are growable: Attach with id equal to the current population
// extends the net by one endpoint — how a peer joins a running cluster.
// Growth is dense (ids are assigned in order); any other out-of-range
// id is an error. Attach is safe to call concurrently with Sends on
// existing endpoints.
type Net interface {
	Attach(id int, h Handler) (Transport, error)
	// Close tears down every endpoint. Socket transports first quiesce:
	// they wait (bounded) for datagrams already accepted by the kernel
	// to be delivered, so conservation checks after Close see a settled
	// network.
	Close() error
}

// Factory builds the Net for an n-peer cluster — the value of the
// live Config.Transport knob.
type Factory func(n int) (Net, error)

// Transport errors.
var (
	ErrClosed   = errors.New("transport: endpoint closed")
	ErrOversize = errors.New("transport: datagram exceeds size limit")
)

// Chan returns the in-process channel transport factory (the default).
func Chan() Factory {
	return func(n int) (Net, error) { return NewChanNet(n) }
}

// ChanNet delivers envelopes in-process: Send invokes the
// destination's handler synchronously on the sender's goroutine. The
// handler's own inbox push is the only queueing, so drop accounting is
// exact and synchronous — the property the scenario engine's tightened
// drop-conservation invariant leans on.
//
// The handler table lives behind an atomic pointer and grows
// copy-on-write, so a joining peer's Attach never blocks (or races)
// the cluster's in-flight Sends.
type ChanNet struct {
	handlers atomic.Pointer[[]Handler]
	mu       sync.Mutex // serialises Attach
}

// NewChanNet builds an in-process substrate for n peers.
func NewChanNet(n int) (*ChanNet, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: need at least 1 peer, got %d", n)
	}
	c := &ChanNet{}
	hs := make([]Handler, n)
	c.handlers.Store(&hs)
	return c, nil
}

// Attach implements Net; id == current population grows the net by one.
func (c *ChanNet) Attach(id int, h Handler) (Transport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	hs := *c.handlers.Load()
	if id < 0 || id > len(hs) {
		return nil, fmt.Errorf("transport: peer id %d out of range [0,%d]", id, len(hs))
	}
	if h == nil {
		return nil, fmt.Errorf("transport: peer %d attached a nil handler", id)
	}
	if id < len(hs) && hs[id] != nil {
		return nil, fmt.Errorf("transport: peer %d attached twice", id)
	}
	// Copy-on-write even for pre-sized slots: a concurrent Send must
	// never observe a half-written table.
	grown := make([]Handler, max(len(hs), id+1))
	copy(grown, hs)
	grown[id] = h
	c.handlers.Store(&grown)
	return &chanEndpoint{net: c, id: id}, nil
}

// Close implements Net. In-process delivery holds no resources.
func (c *ChanNet) Close() error { return nil }

type chanEndpoint struct {
	net    *ChanNet
	id     int
	closed atomic.Bool // Close may race an in-flight Send
}

func (e *chanEndpoint) Send(to int, buf []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	hs := *e.net.handlers.Load()
	if to < 0 || to >= len(hs) {
		return fmt.Errorf("transport: no peer %d", to)
	}
	h := hs[to]
	if h == nil {
		// An unattached destination would otherwise be an uncounted
		// loss, and every loss must land in some bucket.
		return fmt.Errorf("transport: peer %d not attached", to)
	}
	h(buf)
	return nil
}

func (e *chanEndpoint) LocalAddr() string { return fmt.Sprintf("chan://%d", e.id) }

func (e *chanEndpoint) Close() error {
	e.closed.Store(true)
	return nil
}
