package transport

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// collector is a threadsafe handler recording delivered buffers.
type collector struct {
	mu   sync.Mutex
	got  [][]byte
	cond *sync.Cond
}

func newCollector() *collector {
	c := &collector{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collector) handler(buf []byte) {
	c.mu.Lock()
	c.got = append(c.got, buf)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// wait blocks until n buffers arrived or the timeout fires, and
// returns a snapshot.
func (c *collector) wait(t *testing.T, n int, timeout time.Duration) [][]byte {
	t.Helper()
	done := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer done.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for len(c.got) < n && time.Now().Before(deadline) {
		c.cond.Wait()
	}
	return append([][]byte(nil), c.got...)
}

// netUnderTest exercises a Net implementation through the interface.
func netUnderTest(t *testing.T, build Factory, wantAddr string) {
	t.Helper()
	nw, err := build(3)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	cols := make([]*collector, 3)
	eps := make([]Transport, 3)
	for i := range cols {
		cols[i] = newCollector()
		ep, err := nw.Attach(i, cols[i].handler)
		if err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		eps[i] = ep
	}
	if _, err := nw.Attach(1, cols[1].handler); err == nil {
		t.Fatal("double attach accepted")
	}
	if _, err := nw.Attach(9, cols[0].handler); err == nil {
		t.Fatal("out-of-range attach accepted")
	}
	if !strings.Contains(eps[1].LocalAddr(), wantAddr) {
		t.Fatalf("LocalAddr %q does not look like a %q address", eps[1].LocalAddr(), wantAddr)
	}

	// 0 -> 1, 0 -> 2, 2 -> 1: payloads arrive intact at the right peers.
	if err := eps[0].Send(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(2, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	if err := eps[2].Send(1, []byte("ccc")); err != nil {
		t.Fatal(err)
	}
	if got := cols[1].wait(t, 2, 5*time.Second); len(got) != 2 {
		t.Fatalf("peer 1 got %d messages, want 2", len(got))
	} else {
		sizes := map[int]bool{len(got[0]): true, len(got[1]): true}
		if !sizes[1] || !sizes[3] {
			t.Fatalf("peer 1 payloads mangled: %q", got)
		}
	}
	if got := cols[2].wait(t, 1, 5*time.Second); len(got) != 1 || string(got[0]) != "bb" {
		t.Fatalf("peer 2 got %q", got)
	}
	if err := eps[0].Send(99, []byte("x")); err == nil {
		t.Fatal("send to unknown peer accepted")
	}
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed endpoint: %v, want ErrClosed", err)
	}
}

func TestChanNet(t *testing.T) { netUnderTest(t, Chan(), "chan://1") }
func TestUDPNet(t *testing.T)  { netUnderTest(t, UDP(), "127.0.0.1:") }

// TestUDPOversizeRefused: datagram-size enforcement happens at Send,
// with a typed error the live runtime counts as a transport drop.
func TestUDPOversizeRefused(t *testing.T) {
	nw, err := NewUDPNet(2)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	ep, err := nw.Attach(0, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Attach(1, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(1, make([]byte, MaxDatagram+1)); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversized send: %v, want ErrOversize", err)
	}
	if err := ep.Send(1, make([]byte, 1024)); err != nil {
		t.Fatalf("normal send after refusal: %v", err)
	}
}

// TestUDPCloseQuiesces: datagrams handed to the kernel before Close are
// delivered to the handler, not torn down with the sockets — the
// property post-run conservation checks rely on.
func TestUDPCloseQuiesces(t *testing.T) {
	nw, err := NewUDPNet(2)
	if err != nil {
		t.Fatal(err)
	}
	col := newCollector()
	ep, err := nw.Attach(0, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Attach(1, col.handler); err != nil {
		t.Fatal(err)
	}
	const burst = 200
	for i := 0; i < burst; i++ {
		if err := ep.Send(1, []byte("quiesce-me")); err != nil {
			t.Fatal(err)
		}
	}
	nw.Close() // must wait for the burst to drain
	col.mu.Lock()
	n := len(col.got)
	col.mu.Unlock()
	if n != burst {
		t.Fatalf("close lost datagrams: %d of %d delivered", n, burst)
	}
	nw.Close() // idempotent
}

// TestChanSendToUnattachedPeerErrors: an unattached destination is a
// hard send error, not an uncounted silent loss.
func TestChanSendToUnattachedPeerErrors(t *testing.T) {
	nw, err := NewChanNet(2)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := nw.Attach(0, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(1, []byte("x")); err == nil {
		t.Fatal("send to unattached peer accepted")
	}
}

// TestFactoriesValidatePopulation: n < 1 is a construction error on
// both substrates.
func TestFactoriesValidatePopulation(t *testing.T) {
	for name, f := range map[string]Factory{"chan": Chan(), "udp": UDP()} {
		if _, err := f(0); err == nil {
			t.Fatalf("%s: accepted a 0-peer net", name)
		}
	}
}
