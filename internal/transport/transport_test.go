package transport

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// collector is a threadsafe handler recording delivered buffers.
type collector struct {
	mu   sync.Mutex
	got  [][]byte
	cond *sync.Cond
}

func newCollector() *collector {
	c := &collector{}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *collector) handler(buf []byte) {
	c.mu.Lock()
	c.got = append(c.got, buf)
	c.cond.Broadcast()
	c.mu.Unlock()
}

// wait blocks until n buffers arrived or the timeout fires, and
// returns a snapshot.
func (c *collector) wait(t *testing.T, n int, timeout time.Duration) [][]byte {
	t.Helper()
	done := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer done.Stop()
	c.mu.Lock()
	defer c.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for len(c.got) < n && time.Now().Before(deadline) {
		c.cond.Wait()
	}
	return append([][]byte(nil), c.got...)
}

// netUnderTest exercises a Net implementation through the interface.
func netUnderTest(t *testing.T, build Factory, wantAddr string) {
	t.Helper()
	nw, err := build(3)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	cols := make([]*collector, 3)
	eps := make([]Transport, 3)
	for i := range cols {
		cols[i] = newCollector()
		ep, err := nw.Attach(i, cols[i].handler)
		if err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		eps[i] = ep
	}
	if _, err := nw.Attach(1, cols[1].handler); err == nil {
		t.Fatal("double attach accepted")
	}
	if _, err := nw.Attach(9, cols[0].handler); err == nil {
		t.Fatal("out-of-range attach accepted")
	}
	if !strings.Contains(eps[1].LocalAddr(), wantAddr) {
		t.Fatalf("LocalAddr %q does not look like a %q address", eps[1].LocalAddr(), wantAddr)
	}

	// 0 -> 1, 0 -> 2, 2 -> 1: payloads arrive intact at the right peers.
	if err := eps[0].Send(1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(2, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	if err := eps[2].Send(1, []byte("ccc")); err != nil {
		t.Fatal(err)
	}
	if got := cols[1].wait(t, 2, 5*time.Second); len(got) != 2 {
		t.Fatalf("peer 1 got %d messages, want 2", len(got))
	} else {
		sizes := map[int]bool{len(got[0]): true, len(got[1]): true}
		if !sizes[1] || !sizes[3] {
			t.Fatalf("peer 1 payloads mangled: %q", got)
		}
	}
	if got := cols[2].wait(t, 1, 5*time.Second); len(got) != 1 || string(got[0]) != "bb" {
		t.Fatalf("peer 2 got %q", got)
	}
	if err := eps[0].Send(99, []byte("x")); err == nil {
		t.Fatal("send to unknown peer accepted")
	}
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].Send(1, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send on closed endpoint: %v, want ErrClosed", err)
	}
}

func TestChanNet(t *testing.T) { netUnderTest(t, Chan(), "chan://1") }
func TestUDPNet(t *testing.T)  { netUnderTest(t, UDP(), "127.0.0.1:") }

// TestUDPOversizeRefused: datagram-size enforcement happens at Send,
// with a typed error the live runtime counts as a transport drop.
func TestUDPOversizeRefused(t *testing.T) {
	nw, err := NewUDPNet(2)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	ep, err := nw.Attach(0, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Attach(1, func([]byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(1, make([]byte, MaxDatagram+1)); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversized send: %v, want ErrOversize", err)
	}
	if err := ep.Send(1, make([]byte, 1024)); err != nil {
		t.Fatalf("normal send after refusal: %v", err)
	}
}

// TestUDPCloseQuiesces: datagrams handed to the kernel before Close are
// delivered to the handler, not torn down with the sockets — the
// property post-run conservation checks rely on.
func TestUDPCloseQuiesces(t *testing.T) {
	nw, err := NewUDPNet(2)
	if err != nil {
		t.Fatal(err)
	}
	col := newCollector()
	ep, err := nw.Attach(0, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Attach(1, col.handler); err != nil {
		t.Fatal(err)
	}
	const burst = 200
	for i := 0; i < burst; i++ {
		if err := ep.Send(1, []byte("quiesce-me")); err != nil {
			t.Fatal(err)
		}
	}
	nw.Close() // must wait for the burst to drain
	col.mu.Lock()
	n := len(col.got)
	col.mu.Unlock()
	if n != burst {
		t.Fatalf("close lost datagrams: %d of %d delivered", n, burst)
	}
	nw.Close() // idempotent
}

// TestNetsGrowByOne: Attach with id == population extends a running net
// by one endpoint (how a peer joins a live cluster); sparse ids stay
// rejected, and traffic flows both ways across the new link while old
// endpoints keep working.
func TestNetsGrowByOne(t *testing.T) {
	for name, build := range map[string]Factory{"chan": Chan(), "udp": UDP()} {
		t.Run(name, func(t *testing.T) {
			nw, err := build(2)
			if err != nil {
				t.Fatal(err)
			}
			defer nw.Close()
			cols := []*collector{newCollector(), newCollector()}
			eps := make([]Transport, 2)
			for i := range eps {
				if eps[i], err = nw.Attach(i, cols[i].handler); err != nil {
					t.Fatalf("attach %d: %v", i, err)
				}
			}
			if _, err := nw.Attach(5, cols[0].handler); err == nil {
				t.Fatal("sparse attach accepted")
			}
			if err := eps[0].Send(2, []byte("early")); err == nil {
				t.Fatal("send to not-yet-joined peer accepted")
			}
			joined := newCollector()
			ep2, err := nw.Attach(2, joined.handler)
			if err != nil {
				t.Fatalf("growing attach: %v", err)
			}
			if _, err := nw.Attach(2, joined.handler); err == nil {
				t.Fatal("double attach of joined peer accepted")
			}
			if err := eps[0].Send(2, []byte("hello-joiner")); err != nil {
				t.Fatal(err)
			}
			if err := ep2.Send(1, []byte("hello-back")); err != nil {
				t.Fatal(err)
			}
			if got := joined.wait(t, 1, 5*time.Second); len(got) != 1 || string(got[0]) != "hello-joiner" {
				t.Fatalf("joiner got %q", got)
			}
			if got := cols[1].wait(t, 1, 5*time.Second); len(got) != 1 || string(got[0]) != "hello-back" {
				t.Fatalf("old peer got %q", got)
			}
		})
	}
}

// TestNetGrowthRacesSends: endpoints hammer an existing link while new
// peers attach — the copy-on-write tables must keep every send either
// delivered or cleanly errored (run under -race in CI).
func TestNetGrowthRacesSends(t *testing.T) {
	for name, build := range map[string]Factory{"chan": Chan(), "udp": UDP()} {
		t.Run(name, func(t *testing.T) {
			nw, err := build(2)
			if err != nil {
				t.Fatal(err)
			}
			defer nw.Close()
			sink := newCollector()
			ep0, err := nw.Attach(0, func([]byte) {})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := nw.Attach(1, sink.handler); err != nil {
				t.Fatal(err)
			}
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						_ = ep0.Send(1, []byte("steady"))
					}
				}
			}()
			for id := 2; id < 10; id++ {
				ep, err := nw.Attach(id, func([]byte) {})
				if err != nil {
					t.Fatalf("attach %d during traffic: %v", id, err)
				}
				if err := ep.Send(1, []byte("from-joiner")); err != nil {
					t.Fatalf("joiner %d send: %v", id, err)
				}
			}
			close(stop)
			wg.Wait()
			// Count the joiner payloads specifically: the steady flood
			// lands in the same sink, so a raw message count would pass
			// even if every joiner send were silently lost.
			fromJoiners := func() int {
				sink.mu.Lock()
				defer sink.mu.Unlock()
				n := 0
				for _, buf := range sink.got {
					if string(buf) == "from-joiner" {
						n++
					}
				}
				return n
			}
			deadline := time.Now().Add(5 * time.Second)
			for fromJoiners() < 8 && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if got := fromJoiners(); got != 8 {
				t.Fatalf("sink saw %d joiner messages, want 8", got)
			}
		})
	}
}

// TestChanSendToUnattachedPeerErrors: an unattached destination is a
// hard send error, not an uncounted silent loss.
func TestChanSendToUnattachedPeerErrors(t *testing.T) {
	nw, err := NewChanNet(2)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := nw.Attach(0, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(1, []byte("x")); err == nil {
		t.Fatal("send to unattached peer accepted")
	}
}

// TestFactoriesValidatePopulation: n < 1 is a construction error on
// both substrates.
func TestFactoriesValidatePopulation(t *testing.T) {
	for name, f := range map[string]Factory{"chan": Chan(), "udp": UDP()} {
		if _, err := f(0); err == nil {
			t.Fatalf("%s: accepted a 0-peer net", name)
		}
	}
}
