package transport

import (
	"bytes"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// shapeHarness attaches n counting endpoints through a ShapedNet over a
// ChanNet substrate. Each receiver records the envelopes it got (the
// exact slices — chan delivery shares the backing array, so any shaper
// mutation would be visible here).
type shapeHarness struct {
	s   *ShapedNet
	eps []Transport
	mu  sync.Mutex
	got [][]byte // delivery order per receiver id interleaved; guarded by mu
	per []uint64 // deliveries per receiver
}

func newShapeHarness(t *testing.T, n int, p Profile) *shapeHarness {
	t.Helper()
	inner, err := NewChanNet(n)
	if err != nil {
		t.Fatal(err)
	}
	h := &shapeHarness{s: Shape(inner, p), per: make([]uint64, n)}
	for i := 0; i < n; i++ {
		i := i
		ep, err := h.s.Attach(i, func(buf []byte) {
			h.mu.Lock()
			h.got = append(h.got, buf)
			h.per[i]++
			h.mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		h.eps = append(h.eps, ep)
	}
	return h
}

func (h *shapeHarness) delivered() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.got)
}

// mark encodes (from, seq) into a payload so receivers can verify the
// bytes arrived exactly as sent.
func mark(from, seq, size int) []byte {
	if size < 8 {
		size = 8
	}
	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf, uint32(from))
	binary.LittleEndian.PutUint32(buf[4:], uint32(seq))
	for i := 8; i < size; i++ {
		buf[i] = byte(from*31 + seq + i)
	}
	return buf
}

// TestShapeConservation is the tentpole's books-balance property: under
// delay, jitter, reorder AND loss, every envelope the shaper accepted is
// either delivered or counted in Drops() once the net is closed — and
// every delivered envelope is byte-identical to what its sender passed
// in (the shaper held the same immutable slice, it never copied,
// scribbled, or recycled one).
func TestShapeConservation(t *testing.T) {
	const n, perSender = 6, 200
	h := newShapeHarness(t, n, Profile{
		Seed:    42,
		Delay:   200 * time.Microsecond,
		Jitter:  400 * time.Microsecond,
		Reorder: 0.2,
		Loss:    0.1,
	})
	type sent struct {
		live     []byte // the slice handed to Send (shaper must not touch it)
		pristine []byte // private copy taken before Send
	}
	var mu sync.Mutex
	var all []sent
	var wg sync.WaitGroup
	var sends atomic.Uint64
	for from := 0; from < n; from++ {
		from := from
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := 0; seq < perSender; seq++ {
				buf := mark(from, seq, 16+seq%64)
				pristine := append([]byte(nil), buf...)
				mu.Lock()
				all = append(all, sent{live: buf, pristine: pristine})
				mu.Unlock()
				if err := h.eps[from].Send((from+1+seq)%n, buf); err != nil {
					t.Errorf("send: %v", err)
				}
				sends.Add(1)
			}
		}()
	}
	wg.Wait()
	if err := h.s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if held := h.s.Held(); held != 0 {
		t.Fatalf("%d envelopes still held after Close", held)
	}
	total := sends.Load()
	got := uint64(h.delivered())
	drops := h.s.Drops()
	if got+drops != total {
		t.Fatalf("conservation: sent %d != delivered %d + dropped %d", total, got, drops)
	}
	if drops == 0 {
		t.Fatal("10% loss over 1200 sends dropped nothing; the loss path is dead")
	}
	// Ownership: the slice each sender handed over is untouched.
	for i, s := range all {
		if !bytes.Equal(s.live, s.pristine) {
			t.Fatalf("sent buffer %d was mutated in flight", i)
		}
	}
	// Delivery integrity: every received slice decodes to a marker that
	// regenerates it exactly — contents were neither mutated nor cross-
	// aliased with another envelope.
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, buf := range h.got {
		from := int(binary.LittleEndian.Uint32(buf))
		seq := int(binary.LittleEndian.Uint32(buf[4:]))
		if want := mark(from, seq, len(buf)); !bytes.Equal(buf, want) {
			t.Fatalf("delivered envelope (from=%d seq=%d) corrupted", from, seq)
		}
	}
}

// TestShapeFIFOWithoutJitter: pure delay is a conveyor belt — per-link
// order is preserved exactly (the deferred queue breaks due-time ties by
// send order).
func TestShapeFIFOWithoutJitter(t *testing.T) {
	h := newShapeHarness(t, 2, Profile{Seed: 7, Delay: time.Millisecond})
	const k = 200
	for seq := 0; seq < k; seq++ {
		if err := h.eps[0].Send(1, mark(0, seq, 16)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for h.delivered() < k && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := h.s.Close(); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.got) != k {
		t.Fatalf("delivered %d of %d", len(h.got), k)
	}
	for i, buf := range h.got {
		if seq := int(binary.LittleEndian.Uint32(buf[4:])); seq != i {
			t.Fatalf("position %d got seq %d: FIFO broken without jitter", i, seq)
		}
	}
}

// TestShapeReorderHappens: with jitter and reorder configured, later
// envelopes must sometimes overtake earlier ones — the condition the
// WAN scenarios exist to create.
func TestShapeReorderHappens(t *testing.T) {
	h := newShapeHarness(t, 2, Profile{
		Seed:    11,
		Delay:   100 * time.Microsecond,
		Jitter:  2 * time.Millisecond,
		Reorder: 0.3,
	})
	const k = 300
	for seq := 0; seq < k; seq++ {
		if err := h.eps[0].Send(1, mark(0, seq, 16)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for h.delivered() < k && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := h.s.Close(); err != nil {
		t.Fatal(err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	inversions := 0
	for i := 1; i < len(h.got); i++ {
		a := int(binary.LittleEndian.Uint32(h.got[i-1][4:]))
		b := int(binary.LittleEndian.Uint32(h.got[i][4:]))
		if b < a {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("300 jittered envelopes arrived perfectly ordered; reorder is not happening")
	}
}

// TestShapeOutage: a regional outage cuts boundary-crossing links hard
// (counted drops) while intra-region traffic flows; lifting it restores
// everything.
func TestShapeOutage(t *testing.T) {
	h := newShapeHarness(t, 4, Profile{Seed: 3})
	h.s.SetOutage([]int{2, 3}, true)
	send := func(from, to int) {
		t.Helper()
		if err := h.eps[from].Send(to, mark(from, to, 16)); err != nil {
			t.Fatalf("send %d->%d: %v", from, to, err)
		}
	}
	send(0, 1) // outside: flows
	send(2, 3) // inside the cut region: flows
	send(0, 2) // crosses the boundary: eaten
	send(3, 1) // crosses the boundary: eaten
	if got, drops := h.delivered(), h.s.Drops(); got != 2 || drops != 2 {
		t.Fatalf("during outage: delivered %d (want 2), drops %d (want 2)", got, drops)
	}
	h.s.SetOutage(nil, false)
	send(0, 2)
	if got := h.delivered(); got != 3 {
		t.Fatalf("after heal: delivered %d (want 3)", got)
	}
	if err := h.s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShapeBandwidthPolices: a starved token bucket drops (and counts)
// the overflow instead of queueing it.
func TestShapeBandwidthPolices(t *testing.T) {
	h := newShapeHarness(t, 2, Profile{Seed: 5, Rate: 1024, Burst: 2048})
	const k = 64
	for seq := 0; seq < k; seq++ {
		if err := h.eps[0].Send(1, mark(0, seq, 256)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.s.Close(); err != nil {
		t.Fatal(err)
	}
	got, drops := uint64(h.delivered()), h.s.Drops()
	if got+drops != k {
		t.Fatalf("conservation under policing: %d + %d != %d", got, drops, k)
	}
	// 64×256B = 16KiB burst against a 2KiB bucket: most must be policed.
	if drops == 0 {
		t.Fatal("16KiB burst through a 2KiB bucket dropped nothing")
	}
	if got == 0 {
		t.Fatal("the burst head should fit the initial bucket")
	}
}

// TestShapeInertFastPath: the zero profile delegates synchronously —
// no dispatcher, no holds, delivery completes inside Send.
func TestShapeInertFastPath(t *testing.T) {
	h := newShapeHarness(t, 2, Profile{})
	if err := h.eps[0].Send(1, mark(0, 0, 16)); err != nil {
		t.Fatal(err)
	}
	if got := h.delivered(); got != 1 {
		t.Fatalf("inert profile should deliver synchronously, got %d", got)
	}
	if held := h.s.Held(); held != 0 {
		t.Fatalf("inert profile held %d envelopes", held)
	}
	if drops := h.s.Drops(); drops != 0 {
		t.Fatalf("inert profile dropped %d", drops)
	}
	if err := h.s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShapeCloseFlushesHeld: envelopes still in flight when Close lands
// are delivered (not leaked), keeping the books balanced at teardown.
func TestShapeCloseFlushesHeld(t *testing.T) {
	h := newShapeHarness(t, 2, Profile{Seed: 9, Delay: time.Hour}) // never due on its own
	const k = 50
	for seq := 0; seq < k; seq++ {
		if err := h.eps[0].Send(1, mark(0, seq, 16)); err != nil {
			t.Fatal(err)
		}
	}
	if held := h.s.Held(); held != k {
		t.Fatalf("held %d of %d", held, k)
	}
	if err := h.s.Close(); err != nil {
		t.Fatal(err)
	}
	if got, drops := uint64(h.delivered()), h.s.Drops(); got+drops != k || got == 0 {
		t.Fatalf("flush: delivered %d + dropped %d != sent %d", got, drops, k)
	}
}

// TestShapeRebindDelegation: Shape over a rebindable substrate rebinds;
// over ChanNet it reports the substrate cannot.
func TestShapeRebindDelegation(t *testing.T) {
	inner, err := NewUDPNet(2)
	if err != nil {
		t.Fatal(err)
	}
	s := Shape(inner, Profile{})
	var got atomic.Uint64
	for i := 0; i < 2; i++ {
		if _, err := s.Attach(i, func([]byte) { got.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	before := inner.table.Load().addrs[1].String()
	addr, err := s.Rebind(1)
	if err != nil {
		t.Fatalf("rebind through shaper: %v", err)
	}
	if addr == before {
		t.Fatalf("rebind kept address %s", addr)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	chanInner, _ := NewChanNet(2)
	cs := Shape(chanInner, Profile{})
	if _, err := cs.Rebind(0); err == nil {
		t.Fatal("chan substrate claimed it can rebind")
	}
	_ = cs.Close()
}

// TestUDPRebindKeepsDelivering: the make-before-break move loses nothing
// — datagrams sent before and after the rebind all arrive, and the
// peer's address changes.
func TestUDPRebindKeepsDelivering(t *testing.T) {
	u, err := NewUDPNet(2)
	if err != nil {
		t.Fatal(err)
	}
	var got atomic.Uint64
	ep0, err := u.Attach(0, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	ep1, err := u.Attach(1, func([]byte) { got.Add(1) })
	if err != nil {
		t.Fatal(err)
	}
	before := ep1.LocalAddr()
	const k = 20
	for i := 0; i < k; i++ {
		if err := ep0.Send(1, mark(0, i, 32)); err != nil {
			t.Fatal(err)
		}
	}
	addr, err := u.Rebind(1)
	if err != nil {
		t.Fatalf("rebind: %v", err)
	}
	if addr == before || ep1.LocalAddr() != addr {
		t.Fatalf("rebind address: before=%s after=%s endpoint=%s", before, addr, ep1.LocalAddr())
	}
	for i := 0; i < k; i++ {
		if err := ep0.Send(1, mark(0, k+i, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Close(); err != nil { // quiesces: both sockets drain first
		t.Fatal(err)
	}
	if got.Load() != 2*k {
		t.Fatalf("delivered %d of %d across a rebind", got.Load(), 2*k)
	}
	if _, err := u.Rebind(1); err == nil {
		t.Fatal("rebind after Close succeeded")
	}
}

// TestShapeAttachGrowth: a joiner attaching through the shaper grows the
// substrate exactly as it would unshaped.
func TestShapeAttachGrowth(t *testing.T) {
	h := newShapeHarness(t, 2, Profile{Seed: 1, Delay: 100 * time.Microsecond})
	var got atomic.Uint64
	ep2, err := h.s.Attach(2, func([]byte) { got.Add(1) })
	if err != nil {
		t.Fatalf("grow through shaper: %v", err)
	}
	if err := ep2.Send(0, mark(2, 0, 16)); err != nil {
		t.Fatal(err)
	}
	if err := h.eps[0].Send(2, mark(0, 0, 16)); err != nil {
		t.Fatal(err)
	}
	if err := h.s.Close(); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 1 || h.delivered() != 1 {
		t.Fatalf("joiner traffic: joiner got %d, founders got %d", got.Load(), h.delivered())
	}
}

func BenchmarkShapedSend(b *testing.B) {
	bench := func(b *testing.B, p Profile) {
		inner, _ := NewChanNet(2)
		s := Shape(inner, p)
		defer s.Close()
		_, _ = s.Attach(1, func([]byte) {})
		ep, _ := s.Attach(0, func([]byte) {})
		buf := mark(0, 0, 512)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = ep.Send(1, buf)
		}
	}
	b.Run("inert", func(b *testing.B) { bench(b, Profile{}) })
	b.Run("loss-only", func(b *testing.B) { bench(b, Profile{Seed: 1, Loss: 0.01}) })
	b.Run("deferred", func(b *testing.B) {
		bench(b, Profile{Seed: 1, Delay: 50 * time.Microsecond, Jitter: 50 * time.Microsecond})
	})
	b.Run("unshaped-baseline", func(b *testing.B) {
		inner, _ := NewChanNet(2)
		defer inner.Close()
		_, _ = inner.Attach(1, func([]byte) {})
		ep, _ := inner.Attach(0, func([]byte) {})
		buf := mark(0, 0, 512)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = ep.Send(1, buf)
		}
	})
}
