package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
)

// A Package is one loaded, parsed, type-checked target package.
type Package struct {
	Path    string // import path
	Name    string
	Dir     string
	GoFiles []string // absolute paths, build-constraint filtered, no tests
	Imports []string // imported package paths (for dependency ordering)
	Fset    *token.FileSet
	Syntax  []*ast.File
	Types   *types.Package
	Info    *types.Info

	graph *CallGraph // built lazily by Pass.Graph
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load parses and type-checks the packages matched by patterns,
// resolved relative to dir (the module to analyze; fixture suites pass
// their testdata module). It shells out to `go list -export -deps` so
// the go command answers every build-system question — build
// constraints, file lists, the dependency graph — and compiles export
// data for the dependencies; dependencies are then imported through the
// stdlib gc importer from those export files while the target packages
// themselves are type-checked from source with full syntax and
// position information. Everything runs offline: the only inputs are
// the local toolchain and the local source tree.
//
// Test files are not loaded: the suite audits the shipped code, and
// the runtime test harnesses (AllocsPerRun pins, scribble audits) are
// precisely the code that legitimately touches wall clocks and global
// state.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	out, err := listPackages(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		lp := p
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			targets = append(targets, &lp)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range sortDeps(targets) {
		pkg, err := typeCheck(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// sortDeps orders targets dependencies-first. The facts layer depends
// on this: a fact about a function in package P must be final before
// any importer of P is analyzed, because P's syntax is out of reach by
// then. `go list -deps` already emits a valid postorder, but the target
// filter can disturb it, so the order is re-derived here from the
// Imports lists (restricted to edges between targets; ties and
// non-target imports fall back to the incoming order, which go list
// keeps deterministic).
func sortDeps(targets []*listedPackage) []*listedPackage {
	isTarget := make(map[string]*listedPackage, len(targets))
	for _, t := range targets {
		isTarget[t.ImportPath] = t
	}
	seen := make(map[string]bool, len(targets))
	var order []*listedPackage
	var visit func(t *listedPackage)
	visit = func(t *listedPackage) {
		if seen[t.ImportPath] {
			return
		}
		seen[t.ImportPath] = true
		for _, imp := range t.Imports {
			if dep, ok := isTarget[imp]; ok {
				visit(dep)
			}
		}
		order = append(order, t)
	}
	for _, t := range targets {
		visit(t)
	}
	return order
}

func typeCheck(fset *token.FileSet, imp types.Importer, t *listedPackage) (*Package, error) {
	var files []*ast.File
	var paths []string
	for _, gf := range t.GoFiles {
		path := gf
		if !filepath.IsAbs(path) {
			path = filepath.Join(t.Dir, gf)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		Path:    t.ImportPath,
		Name:    t.Name,
		Dir:     t.Dir,
		GoFiles: paths,
		Fset:    fset,
		Syntax:  files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
