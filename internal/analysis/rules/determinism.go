package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"fairgossip/internal/analysis"
)

// DeterministicPackages is the built-in list of sim-deterministic
// import paths: everything a fixed-seed run flows through, where a
// stray wall-clock read or a draw from the process-global RNG silently
// breaks the byte-identical (seed, population) guarantee that the
// experiment tables, the scenario sim column, and the planned sharded
// kernel's per-(seed, shardCount) merges all lean on. Packages outside
// the list opt in with a //fair:deterministic file comment.
var DeterministicPackages = map[string]bool{
	"fairgossip/internal/eventsim":   true,
	"fairgossip/internal/simnet":     true,
	"fairgossip/internal/core":       true,
	"fairgossip/internal/gossip":     true,
	"fairgossip/internal/membership": true,
	"fairgossip/internal/fairness":   true,
	"fairgossip/internal/randutil":   true,
	"fairgossip/internal/scenario":   true,
}

// wallclockFuncs are the package time entry points that read or wait on
// the machine clock. Virtual time (eventsim.Sim.Now, round counters) is
// the only clock deterministic code may consult; the audited escape
// hatch is a //fair:wallclock <reason> comment.
var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandFuncs are the math/rand (and v2) package-level draws that
// consume the process-global RNG stream — shared, lock-guarded, and
// invisible to the fixed-seed contract. Only a seeded *rand.Rand passed
// by value is legal in deterministic code; rand.New/NewSource/NewZipf
// construct those and stay allowed.
var globalRandFuncs = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
	// math/rand/v2 spellings.
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true, "N": true,
}

// Determinism enforces the fixed-seed contract in sim-deterministic
// packages: no wall clocks, no process-global RNG, no package-level RNG
// streams, no map-iteration order feeding ordering-sensitive logic.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "In sim-deterministic packages (eventsim, simnet, core, gossip, membership, fairness, randutil, scenario, plus //fair:deterministic opt-ins) forbid time.Now/Since/Sleep and friends (//fair:wallclock <reason> to override), the global math/rand top-level draws (pass a seeded *rand.Rand), package-level *rand.Rand/rand.Source variables (a stream shared across shards consumes in goroutine-interleaving order), and map-range loops whose bodies feed ordering-sensitive logic (calls, appends, sends).",
	Run:  runDeterminism,
}

func runDeterminism(pass *analysis.Pass) error {
	inScope := DeterministicPackages[pass.Path]
	if !inScope {
		for _, f := range pass.Files {
			if analysis.FileMarkedDeterministic(f) {
				inScope = true
				break
			}
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		checkSharedRNGVars(pass, f)
		// Track the enclosing function body so the map-range check can
		// recognize the sanctioned collect-then-sort repair downstream
		// of the loop.
		var encl *ast.BlockStmt
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				saved := encl
				encl = n.Body
				if n.Body != nil {
					ast.Inspect(n.Body, walk)
				}
				encl = saved
				return false
			case *ast.CallExpr:
				checkForbiddenCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, encl)
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return nil
}

// checkForbiddenCall flags wall-clock reads and global-RNG draws by
// resolving the callee to its defining package, so a local identifier
// coincidentally named Now is never confused with time.Now.
func checkForbiddenCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return // methods (e.g. time.Time.Sub on stored virtual stamps) are fine
	}
	switch obj.Pkg().Path() {
	case "time":
		if wallclockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "wallclock",
				"time.%s in a sim-deterministic package: use the virtual clock (eventsim.Sim.Now / round counters); //fair:wallclock <reason> is the audited escape hatch", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(), "globalrand",
				"rand.%s draws from the process-global RNG and breaks the fixed-seed contract: pass a seeded *rand.Rand instead", fn.Name())
		}
	}
}

// checkSharedRNGVars flags package-level variables holding an RNG
// stream (*rand.Rand, rand.Source/Source64, rand.Zipf — v1 or v2).
// With the kernel sharded, any stream reachable from more than one
// goroutine is consumed in goroutine-interleaving order, so its draws
// differ run to run even at a fixed seed; and even single-threaded, a
// package-level stream couples otherwise-independent clusters through
// hidden state. Every RNG must hang off a node, shard, or cluster,
// seeded from (seed, shardID) — see randutil.ShardSeed.
func checkSharedRNGVars(pass *analysis.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if rngTypeName(obj.Type()) != "" {
					pass.Reportf(name.Pos(), "sharedrng",
						"package-level %s %s is an RNG stream shared across every caller (and every shard): draws consume it in goroutine-interleaving order, breaking the fixed-seed contract — store the stream on the node/shard/cluster and seed it from (seed, shardID)",
						rngTypeName(obj.Type()), name.Name)
				}
			}
		}
	}
}

// rngTypeName reports the math/rand stream type a variable holds
// (unwrapping pointers, slices, arrays, and map values), or "".
func rngTypeName(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Slice:
			t = u.Elem()
			continue
		case *types.Array:
			t = u.Elem()
			continue
		case *types.Map:
			t = u.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	switch named.Obj().Pkg().Path() {
	case "math/rand", "math/rand/v2":
	default:
		return ""
	}
	switch named.Obj().Name() {
	case "Rand", "Source", "Source64", "Zipf", "PCG", "ChaCha8":
		return "rand." + named.Obj().Name()
	}
	return ""
}

// checkMapRange flags `for ... := range m` over a map when the loop
// body feeds ordering-sensitive logic. Go randomizes map iteration
// order per run, so any order-dependent effect in the body —
// appending, calling out, sending — makes two fixed-seed runs diverge.
// Pure commutative bodies (counting, summing, delete, writes into
// another map) pass.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, encl *ast.BlockStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	why, appendTargets := orderSensitive(pass.TypesInfo, rs.Body)
	if why == "" {
		return
	}
	// The sanctioned repair is collect-then-sort: appending the keys
	// and sorting the slice right after the loop erases the iteration
	// order. When appends are the only sensitivity and every target is
	// sorted downstream in the same function, the loop is clean.
	if appendTargets != nil {
		allSorted := true
		for _, obj := range appendTargets {
			if obj == nil || !sortedAfter(pass.TypesInfo, encl, obj, rs.End()) {
				allSorted = false
				break
			}
		}
		if allSorted {
			return
		}
	}
	pass.Reportf(rs.Pos(), "maprange",
		"map iteration order feeds ordering-sensitive logic (%s): collect and sort the keys, or keep a stable side order", why)
}

// sortedAfter reports whether obj is passed to a sort/slices call after
// pos inside the function body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if exprObj(info, arg) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// exprObj resolves an identifier or field selector to its object.
func exprObj(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	}
	return nil
}

// commutativeBuiltins may appear in an order-insensitive map-range
// body: they do not observe or emit iteration order.
var commutativeBuiltins = map[string]bool{
	"delete": true, "len": true, "cap": true, "min": true, "max": true,
}

// orderSensitive scans a map-range body for effects that observe the
// iteration order. When appending to slices is the only sensitivity it
// also returns the append targets, so the caller can recognize the
// collect-then-sort repair; a nil ignorable set means the body has
// sensitivities no downstream sort can erase.
func orderSensitive(info *types.Info, body *ast.BlockStmt) (string, []types.Object) {
	why := ""
	onlyAppends := true
	var appends []types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if b := builtinName(info, n); b != "" {
				switch {
				case commutativeBuiltins[b]:
				case b == "append":
					if why == "" {
						why = "append in the loop body"
					}
					var target types.Object
					if len(n.Args) > 0 {
						target = exprObj(info, n.Args[0])
					}
					appends = append(appends, target)
				default:
					why, onlyAppends = b+" in the loop body", false
				}
				return true
			}
			if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
				return true // type conversion: produces a value, observes no order
			}
			why, onlyAppends = "a call in the loop body", false
		case *ast.SendStmt:
			why, onlyAppends = "a channel send in the loop body", false
		case *ast.ReturnStmt:
			why, onlyAppends = "a return mid-iteration", false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok {
					if bt := info.TypeOf(ix.X); bt != nil {
						if _, isSlice := bt.Underlying().(*types.Slice); isSlice {
							why, onlyAppends = "a slice element write in the loop body", false
						}
					}
				}
			}
		}
		return true
	})
	if !onlyAppends {
		return why, nil
	}
	return why, appends
}
