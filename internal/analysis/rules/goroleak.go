package rules

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"fairgossip/internal/analysis"
)

// Goroleak is the static twin of the zero-goroutine-leak Stop() tests:
// those catch a leaked goroutine after the fact (a Stop() that hangs,
// a goroutine count that never drops), this rule demands the proof up
// front. Every `go` statement's spawned code must have a provable
// termination path; an unconditional `for {}` whose body can never
// break out, return, or panic pins its goroutine forever, and no
// Stop() can collect it.
//
// The provable paths are syntactic and deliberately simple: a loop
// with a real condition, a `range` loop (channels end at close,
// collections are finite), or an unconditional loop containing a
// return, a break that actually targets it (a `break` inside a
// `select` or `switch` only exits that statement — the classic leak),
// or a panic. Termination flows through the call graph: a spawned
// function that calls (or defers) a never-returning helper — here or
// in an already-analyzed dependency — is reported at the spawn site
// with the chain. Calls through interfaces or function values are
// assumed to return; //fair:ignore goroleak <reason> is the audited
// hatch for loops whose stop path the analysis cannot see.
var Goroleak = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "Every goroutine spawn must have a provable termination path: an unconditional for-loop with no reachable return, loop-targeting break, or panic — in the spawned body or anything it transitively calls — never terminates, so Stop() leaks the goroutine. //fair:ignore goroleak <reason> audits spawns whose stop path is invisible to the analysis.",
	Run:  runGoroleak,
}

// A leakFact is the exported termination summary of one function: the
// "goroleak:<FuncID>" fact downstream packages consume.
type leakFact struct {
	Terminates bool
	Why        string // the non-terminating chain: "unconditional for-loop with no exit at live.go:889" or "calls loop → ..."
}

func runGoroleak(pass *analysis.Pass) error {
	graph := pass.Graph()
	st := &leakState{
		pass:  pass,
		graph: graph,
		memo:  make(map[string]leakFact),
		busy:  make(map[string]bool),
	}
	for _, node := range graph.Funcs {
		fact, _ := st.terminates(node.Fn)
		pass.ExportFact("goroleak:"+node.ID, fact)
	}

	// Every EdgeGo site runs on a fresh goroutine: `go f()` directly,
	// and every call inside a `go func() { ... }()` literal (the call
	// graph attributes those to the spawning function at EdgeGo).
	for _, node := range graph.Funcs {
		for _, site := range node.Calls {
			if site.Kind != analysis.EdgeGo {
				continue
			}
			if site.Lit != nil {
				if why, ok := st.firstUnstoppable(site.Lit.Body); ok {
					st.report(site.Pos, why)
				}
				continue // calls inside the literal are their own EdgeGo sites
			}
			if site.Callee == nil || site.Iface {
				continue // dynamic spawn: the callee set is unknowable
			}
			fact, _ := st.terminates(site.Callee)
			if !fact.Terminates {
				st.report(site.Pos, fmt.Sprintf("calls %s → %s", shortFuncName(site.Callee), fact.Why))
			}
		}
	}
	return nil
}

type leakState struct {
	pass  *analysis.Pass
	graph *analysis.CallGraph
	memo  map[string]leakFact
	busy  map[string]bool
}

func (st *leakState) report(pos token.Pos, why string) {
	st.pass.Reportf(pos, "leak",
		"goroutine spawned here has no provable termination path: %s — select on a stop/done channel, bound the loop, or hatch with //fair:ignore goroleak <reason>", why)
}

// terminates resolves whether fn provably returns. stable is false when
// the answer leaned on an in-progress node of a recursion cycle.
func (st *leakState) terminates(fn *types.Func) (fact leakFact, stable bool) {
	id := analysis.FuncID(fn)
	if f, ok := st.memo[id]; ok {
		return f, true
	}
	node, local := st.graph.ByID[id]
	if !local {
		if f, ok := st.pass.LookupFact("goroleak:" + id); ok {
			if lf, ok := f.(leakFact); ok {
				return lf, true
			}
		}
		return leakFact{Terminates: true}, true // external without a fact: assume it returns
	}
	if st.busy[id] {
		return leakFact{Terminates: true}, false
	}
	st.busy[id] = true
	defer delete(st.busy, id)

	stable = true
	fact = leakFact{Terminates: true}
	if why, ok := st.firstUnstoppable(node.Decl.Body); ok {
		fact = leakFact{Terminates: false, Why: why}
	} else {
		for _, call := range node.Calls {
			// Only calls that the function waits on block its return:
			// ordinary calls and defers. An EdgeGo site inside it is a
			// separate goroutine, checked at its own spawn.
			if call.Kind == analysis.EdgeGo || call.Callee == nil || call.Iface {
				continue
			}
			sub, subStable := st.terminates(call.Callee)
			stable = stable && subStable
			if !sub.Terminates {
				fact = leakFact{Terminates: false, Why: fmt.Sprintf("calls %s → %s", shortFuncName(call.Callee), sub.Why)}
				break
			}
		}
	}
	if stable {
		st.memo[id] = fact
	}
	return fact, stable
}

// firstUnstoppable scans a body (skipping nested function literals —
// each is its own analysis subject) for an unconditional for-loop with
// no escape.
func (st *leakState) firstUnstoppable(body ast.Node) (string, bool) {
	var loop *ast.ForStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if loop != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if unconditional(n) && !stmtsEscape(n.Body.List, 0) {
				loop = n
				return false
			}
		}
		return true
	})
	if loop == nil {
		return "", false
	}
	p := st.pass.Fset.Position(loop.Pos())
	return fmt.Sprintf("unconditional for-loop with no exit at %s:%d", shortFile(p.Filename), p.Line), true
}

func unconditional(loop *ast.ForStmt) bool {
	if loop.Cond == nil {
		return true
	}
	if id, ok := ast.Unparen(loop.Cond).(*ast.Ident); ok && id.Name == "true" {
		return true
	}
	return false
}

// stmtsEscape reports whether any statement can transfer control out of
// the loop under scrutiny. depth counts the breakable statements
// (loops, switches, selects) between the loop and the statement: an
// unlabeled break at depth > 0 exits the inner statement, not the loop
// — which is exactly the `for { select { ...: break } }` leak this
// rule exists to catch.
func stmtsEscape(stmts []ast.Stmt, depth int) bool {
	for _, s := range stmts {
		if stmtEscapes(s, depth) {
			return true
		}
	}
	return false
}

func stmtEscapes(s ast.Stmt, depth int) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		if s.Tok != token.BREAK {
			return false
		}
		// A labeled break is taken as loop-targeting: mislabeling is a
		// compile error for missing labels, and labeled inner loops are
		// rare enough that the conservative direction is acceptance.
		return s.Label != nil || depth == 0
	case *ast.BlockStmt:
		return stmtsEscape(s.List, depth)
	case *ast.IfStmt:
		if stmtEscapes(s.Body, depth) {
			return true
		}
		if s.Else != nil && stmtEscapes(s.Else, depth) {
			return true
		}
		return false
	case *ast.LabeledStmt:
		return stmtEscapes(s.Stmt, depth)
	case *ast.ForStmt:
		return stmtsEscape(s.Body.List, depth+1)
	case *ast.RangeStmt:
		return stmtsEscape(s.Body.List, depth+1)
	case *ast.SwitchStmt:
		return bodyListEscapes(s.Body, depth+1)
	case *ast.TypeSwitchStmt:
		return bodyListEscapes(s.Body, depth+1)
	case *ast.SelectStmt:
		return bodyListEscapes(s.Body, depth+1)
	case *ast.ExprStmt:
		return isPanicCall(s.X)
	}
	return false
}

func bodyListEscapes(body *ast.BlockStmt, depth int) bool {
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			if stmtsEscape(c.Body, depth) {
				return true
			}
		case *ast.CommClause:
			if stmtsEscape(c.Body, depth) {
				return true
			}
		}
	}
	return false
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
