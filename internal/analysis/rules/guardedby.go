package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fairgossip/internal/analysis"
)

// GuardedBy is the static twin of the -race scenario sweeps: the
// sweeps catch a data race the scheduler happens to exhibit, this rule
// demands the lock discipline be visible in the source. A struct field
// annotated `//fair:guardedby <mutex>` names the sibling
// sync.Mutex/RWMutex that protects it; every access must then be
// provably under that lock, where "provably" is one of three visible
// shapes:
//
//   - the access sits in a method whose name ends in "Locked" — the
//     repo's convention for lock-held helpers (holdLocked, takeLocked);
//   - a call to <mutex>.Lock() or .RLock() textually precedes the
//     access inside the same function (the dominant lock-at-entry
//     shape; positional, so a lock released mid-function can fool it —
//     the -race sweeps stay on as the dynamic backstop);
//   - the struct value is a fresh local of the same function (&T{},
//     T{}, new(T)): unescaped values are unshared by construction.
//
// Anything else is a finding, hatched — if truly safe — with
// //fair:ignore guardedby <reason>.
var GuardedBy = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "A struct field annotated //fair:guardedby <mutex> may only be accessed under that sibling lock: in a *Locked method, after a textually preceding <mutex>.Lock()/RLock() in the same function, or on a freshly constructed local. The annotation must name a sync.Mutex/RWMutex field of the same struct. //fair:ignore guardedby <reason> audits accesses whose safety the rule cannot see.",
	Run:  runGuardedBy,
}

// A guardFact records one annotated field: the "guardedby:<pkg>.
// <Struct>.<field>" fact importing packages consult for their own
// accesses.
type guardFact struct {
	Mutex  string // the guarding sibling field's name
	Struct string // the owning struct's name, for messages
}

func runGuardedBy(pass *analysis.Pass) error {
	collectGuards(pass)
	checkGuardedAccesses(pass)
	return nil
}

// collectGuards finds every //fair:guardedby annotation on a struct
// field, validates that it names a sibling mutex, and exports the fact.
func collectGuards(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				arg, found := fieldGuardArg(field)
				if !found {
					continue
				}
				if arg == "" {
					pass.Report(field.Pos(), "badannot",
						"//fair:guardedby needs the guarding field's name: //fair:guardedby mu")
					continue
				}
				if !structHasMutex(st, arg) {
					pass.Reportf(field.Pos(), "badannot",
						"//fair:guardedby names %q, which is not a sync.Mutex/RWMutex field of %s", arg, ts.Name.Name)
					continue
				}
				for _, name := range field.Names {
					key := "guardedby:" + pass.Pkg.Path() + "." + ts.Name.Name + "." + name.Name
					pass.ExportFact(key, guardFact{Mutex: arg, Struct: ts.Name.Name})
				}
			}
			return true
		})
	}
}

// fieldGuardArg reads the //fair:guardedby argument off a field's doc
// or trailing comment.
func fieldGuardArg(field *ast.Field) (string, bool) {
	if arg, ok := analysis.DirectiveArg(field.Doc, analysis.DirGuardedBy); ok {
		return arg, true
	}
	return analysis.DirectiveArg(field.Comment, analysis.DirGuardedBy)
}

// structHasMutex reports whether the struct literally declares a field
// of the given name whose type spells a sync mutex (sync.Mutex,
// sync.RWMutex, or a pointer to one). Syntactic on purpose: the
// annotation and the mutex live in the same declaration, so the source
// text is the contract.
func structHasMutex(st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name == name {
				return isMutexType(field.Type)
			}
		}
	}
	return false
}

func isMutexType(e ast.Expr) bool {
	if star, ok := e.(*ast.StarExpr); ok {
		e = star.X
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "sync" {
		return false
	}
	return sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex"
}

// checkGuardedAccesses walks every function and audits each selector
// that lands on an annotated field — declared here (facts just
// exported) or in an already-analyzed dependency.
func checkGuardedAccesses(pass *analysis.Pass) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			locked := strings.HasSuffix(fn.Name.Name, "Locked")
			var defs map[types.Object]ast.Expr
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fact, ok := guardFor(pass, sel)
				if !ok {
					return true
				}
				if locked {
					return true
				}
				if lockPrecedes(fn.Body, fact.Mutex, sel.Pos()) {
					return true
				}
				if defs == nil {
					defs = collectDefs(info, fn.Body)
				}
				if freshLocal(info, defs, sel.X) {
					return true
				}
				pass.Reportf(sel.Pos(), "unlocked",
					"%s.%s is guarded by %s but no %s.Lock()/RLock() precedes this access in %s (and it is not a *Locked method): lock first, move the access into a Locked helper, or hatch it",
					fact.Struct, sel.Sel.Name, fact.Mutex, fact.Mutex, fn.Name.Name)
				return true
			})
		}
	}
}

// guardFor resolves a selector to its guardedby fact, when the
// selector is a direct field access on a named struct (embedded
// promotions are left to the -race sweeps).
func guardFor(pass *analysis.Pass, sel *ast.SelectorExpr) (guardFact, bool) {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal || len(s.Index()) != 1 {
		return guardFact{}, false
	}
	recv := s.Recv()
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return guardFact{}, false
	}
	key := "guardedby:" + named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Sel.Name
	f, ok := pass.LookupFact(key)
	if !ok {
		return guardFact{}, false
	}
	gf, ok := f.(guardFact)
	return gf, ok
}

// lockPrecedes reports whether a call to <mutex>.Lock() or .RLock()
// appears before pos in the body — the positional approximation of
// "the lock is held here".
func lockPrecedes(body *ast.BlockStmt, mutex string, pos token.Pos) bool {
	held := false
	ast.Inspect(body, func(n ast.Node) bool {
		if held || n == nil || n.Pos() >= pos {
			return !held
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if owner, ok := sel.X.(*ast.SelectorExpr); ok && owner.Sel.Name == mutex {
			held = true
		} else if id, ok := sel.X.(*ast.Ident); ok && id.Name == mutex {
			held = true
		}
		return !held
	})
	return held
}

// freshLocal reports whether the accessed value's root is a local
// freshly constructed in this function (&T{}, T{}, new(T)): nothing
// else can see it yet, so no lock is needed.
func freshLocal(info *types.Info, defs map[types.Object]ast.Expr, e ast.Expr) bool {
	root := e
	for {
		switch r := ast.Unparen(root).(type) {
		case *ast.SelectorExpr:
			root = r.X
		case *ast.StarExpr:
			root = r.X
		case *ast.IndexExpr:
			root = r.X
		default:
			id, ok := r.(*ast.Ident)
			if !ok {
				return false
			}
			obj := info.ObjectOf(id)
			rhs, ok := defs[obj]
			if !ok {
				return false
			}
			return freshExpr(info, rhs)
		}
	}
}

func freshExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := e.X.(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		return builtinName(info, e) == "new"
	}
	return false
}
