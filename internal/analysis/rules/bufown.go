package rules

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"fairgossip/internal/analysis"
)

// BufOwn machine-checks the transport ownership contract: a buffer
// passed to Send is immutable from that moment on — in-process
// transports hand the same backing array to the receiver, a fanout
// shares one encoding across all destinations, and the WAN shaper's
// deferred heap holds the bytes for later delivery. Writing into the
// buffer afterwards is the encode-once aliasing hazard the live
// runtime fixed by convention (receivers decode copies they own); this
// rule keeps the convention from regressing.
var BufOwn = &analysis.Analyzer{
	Name: "bufown",
	Doc:  "Flags writes into a []byte after it has been handed to a transport Send or captured into a held record (the shaper's deferred heap): element stores, copy-into, and append all alias the bytes a receiver may already hold. Rebinding the variable to a fresh buffer ends the restriction.",
	Run:  runBufOwn,
}

// bufEvent is one source-ordered fact about a tracked buffer variable.
type bufEvent struct {
	pos  token.Pos
	kind int // evHandoff, evWrite, evKill
	node ast.Node
	what string
}

const (
	evHandoff = iota
	evWrite
	evKill
)

func runBufOwn(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncBuffers(pass, fn)
		}
	}
	return nil
}

func checkFuncBuffers(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	events := make(map[types.Object][]bufEvent)
	add := func(obj types.Object, ev bufEvent) {
		if obj != nil {
			events[obj] = append(events[obj], ev)
		}
	}
	byteVar := func(e ast.Expr) types.Object {
		obj := ident(info, e)
		if obj == nil || !isByteSlice(obj.Type()) {
			return nil
		}
		return obj
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isTransportSend(info, n) && len(n.Args) == 2 {
				add(byteVar(n.Args[1]), bufEvent{pos: n.Pos(), kind: evHandoff, node: n, what: "Send"})
			}
			switch builtinName(info, n) {
			case "copy":
				if len(n.Args) == 2 {
					add(byteVar(n.Args[0]), bufEvent{pos: n.Pos(), kind: evWrite, node: n, what: "copy into"})
				}
			case "append":
				if len(n.Args) > 0 {
					add(byteVar(n.Args[0]), bufEvent{pos: n.Pos(), kind: evWrite, node: n, what: "append to"})
				}
			}
		case *ast.CompositeLit:
			// Capturing the buffer into a record (the shaper's deferred
			// heap holds envelopes this way) hands ownership off just
			// like Send does.
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				add(byteVar(kv.Value), bufEvent{pos: kv.Pos(), kind: evHandoff, node: n, what: "a held record"})
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				switch l := lhs.(type) {
				case *ast.IndexExpr:
					add(byteVar(l.X), bufEvent{pos: l.Pos(), kind: evWrite, node: l, what: "element write to"})
				case *ast.Ident:
					// Rebinding to a fresh buffer ends the hand-off; order
					// the kill at the statement's end so a same-statement
					// `buf = append(buf, ...)` still reads as a write to
					// the old backing array first.
					add(byteVar(l), bufEvent{pos: n.End(), kind: evKill, node: n})
				}
			}
		}
		return true
	})

	for obj, evs := range events {
		sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
		handed := false
		handedTo := ""
		for _, ev := range evs {
			switch ev.kind {
			case evHandoff:
				handed, handedTo = true, ev.what
			case evKill:
				handed = false
			case evWrite:
				if handed {
					pass.Reportf(ev.pos, "aliased",
						"%s %s after it was handed to %s: the receiver shares the backing array (buffers are immutable once sent — encode a fresh buffer instead)",
						ev.what, obj.Name(), handedTo)
				}
			}
		}
	}
}
