package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"fairgossip/internal/analysis"
)

// CowAtomic guards the copy-on-write publication discipline: every
// lock-free read path in the repo (the transport handler tables, the
// fairness ledger's chunk index, the live peer table) publishes state
// behind an atomic.Pointer and mutates only fresh copies. Writing
// through a Load'ed alias races every concurrent reader — exactly the
// half-written-table bug COW exists to prevent.
var CowAtomic = &analysis.Analyzer{
	Name: "cowatomic",
	Doc:  "Values published via atomic.Pointer must never be mutated through a Load'ed alias: flags field stores, element stores, copy-into, and *p = writes through (direct or aliased) results of atomic.Pointer.Load. Build a new value, then Store it.",
	Run:  runCowAtomic,
}

const (
	taintPtr = iota + 1 // p := x.ptr.Load()     — *T shared with readers
	taintVal            // s := *x.ptr.Load()    — slice/map sharing backing
)

func runCowAtomic(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncCow(pass, fn)
		}
	}
	return nil
}

func checkFuncCow(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	taint := make(map[types.Object]int)

	// classify returns the taint a RHS expression would confer.
	classify := func(e ast.Expr) int {
		switch e := e.(type) {
		case *ast.CallExpr:
			if isAtomicPointerLoad(info, e) {
				return taintPtr
			}
		case *ast.StarExpr:
			if c, ok := e.X.(*ast.CallExpr); ok && isAtomicPointerLoad(info, c) {
				return taintVal
			}
		case *ast.Ident:
			return taint[info.ObjectOf(e)]
		}
		return 0
	}

	// The traversal visits statements in source order, so taints are
	// recorded before the writes that follow them.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil {
							taint[obj] = classify(n.Rhs[i])
						}
					}
				}
			}
			for _, lhs := range n.Lhs {
				checkWrite(pass, info, taint, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, info, taint, n.X)
		case *ast.CallExpr:
			if builtinName(info, n) == "copy" && len(n.Args) == 2 {
				if kind, root := spineTaint(info, taint, n.Args[0]); kind != 0 {
					reportCow(pass, n.Pos(), root)
				}
			}
		}
		return true
	})
}

// checkWrite flags an assignment target whose base spine reaches a
// Load'ed atomic.Pointer value.
func checkWrite(pass *analysis.Pass, info *types.Info, taint map[types.Object]int, lhs ast.Expr) {
	// A plain `x = ...` rebinds the variable; only writes *through* the
	// alias (index, field, deref) mutate the shared value.
	if _, ok := lhs.(*ast.Ident); ok {
		return
	}
	if kind, root := spineTaint(info, taint, lhs); kind != 0 {
		reportCow(pass, lhs.Pos(), root)
	}
}

// spineTaint walks the base spine of an expression (index, selector,
// star, paren, slice) and reports whether it bottoms out in a Load'ed
// alias — a tainted identifier or a direct atomic.Pointer Load call.
func spineTaint(info *types.Info, taint map[types.Object]int, e ast.Expr) (int, string) {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			// A selector may resolve to a package or an unrelated
			// object; keep walking the spine only for field accesses.
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				e = x.X
				continue
			}
			return 0, ""
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.Ident:
			obj := info.ObjectOf(x)
			if k := taint[obj]; k != 0 {
				return k, x.Name
			}
			return 0, ""
		case *ast.CallExpr:
			if isAtomicPointerLoad(info, x) {
				return taintPtr, "the Load result"
			}
			return 0, ""
		default:
			return 0, ""
		}
	}
}

// isAtomicPointerLoad matches calls to (.*sync/atomic.Pointer[T]).Load.
func isAtomicPointerLoad(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pointer" && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func reportCow(pass *analysis.Pass, pos token.Pos, root string) {
	pass.Reportf(pos, "alias",
		"mutation through an atomic.Pointer alias (%s): readers share this value lock-free — build a fresh copy, mutate that, and Store it (copy-on-write)", root)
}
