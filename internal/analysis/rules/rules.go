// Package rules holds fairvet's project-law analyzers: each one turns
// an invariant this repo otherwise enforces at runtime (fixed-seed
// determinism, exact drop conservation, encode-once buffer ownership,
// copy-on-write publication, allocation-free hot paths) into a
// review-time diagnostic. See LINTING.md for the rule catalogue and the
// invariant each rule guards.
package rules

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"fairgossip/internal/analysis"
)

// All returns every fairvet analyzer, in stable order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Determinism,
		DropAcct,
		BufOwn,
		CowAtomic,
		Hotpath,
		Goroleak,
		Wirekind,
		GuardedBy,
	}
}

// Known returns the full rule vocabulary //fair:ignore may name.
func Known() map[string]bool {
	m := make(map[string]bool)
	for _, a := range All() {
		m[a.Name] = true
	}
	return m
}

// ByName resolves a subset for fairvet -rules, returning the names
// that matched nothing so the caller can refuse them: a typoed rule
// name silently vetting nothing is worse than no vet at all.
func ByName(names []string) (active []*analysis.Analyzer, unknown []string) {
	for _, n := range names {
		found := false
		for _, a := range All() {
			if a.Name == n {
				active = append(active, a)
				found = true
			}
		}
		if !found {
			unknown = append(unknown, n)
		}
	}
	return active, unknown
}

// shortFile trims a path to its base name for finding messages.
func shortFile(path string) string {
	return filepath.Base(path)
}

// isTransportSend reports whether call is a transport-style send: a
// function or method named Send with signature (int, []byte) error —
// the shape of transport.Transport.Send, matched structurally so
// fixture stubs and future transports are covered without importing
// the package under test.
func isTransportSend(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Send" {
		return false
	}
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return false
	}
	params, results := sig.Params(), sig.Results()
	if params.Len() != 2 || results.Len() != 1 {
		return false
	}
	if b, ok := params.At(0).Type().Underlying().(*types.Basic); !ok || b.Kind() != types.Int {
		return false
	}
	if !isByteSlice(params.At(1).Type()) {
		return false
	}
	named, ok := results.At(0).Type().(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// builtinName returns the builtin's name when call invokes a Go
// builtin (append, make, copy, delete, ...), else "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// ident returns the object an identifier expression denotes, else nil.
func ident(info *types.Info, e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok {
		return info.ObjectOf(id)
	}
	return nil
}

// mentionsDrop reports whether any identifier or selector in the
// statements names a drop bucket ("Drops", "dropped", ...): the
// structural signal that a lost envelope was counted.
func mentionsDrop(stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			if id, ok := n.(*ast.Ident); ok && containsFold(id.Name, "drop") {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func containsFold(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		ok := true
		for j := 0; j < len(sub); j++ {
			c := s[i+j]
			if 'A' <= c && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != sub[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
