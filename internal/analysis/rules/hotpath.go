package rules

import (
	"go/ast"
	"go/constant"
	"go/types"

	"fairgossip/internal/analysis"
)

// Hotpath complements the AllocsPerRun regression tests with
// source-level diagnostics: the runtime pins catch an allocation after
// it ships, this rule names the allocating construct in review. A
// function opts in with //fair:hotpath in its doc comment; the
// annotated bodies are the per-message and per-round paths the
// million-peer sharded kernel will execute trillions of times.
var Hotpath = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "Functions annotated //fair:hotpath may not contain allocating constructs: closures, go/defer, make/new, &composite and slice/map literals, appends that can grow beyond reused scratch (s[:0] reuse is fine), string concatenation, string<->[]byte conversions, boxing a non-pointer value into an interface, or method values. //fair:ignore hotpath <reason> audits the deliberate exceptions.",
	Run:  runHotpath,
}

func runHotpath(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Every //fair:hotpath directive must sit in some function's doc
		// comment: a floating annotation pins nothing and would rot.
		funcDocs := make(map[*ast.Comment]bool)
		var hot []*ast.FuncDecl
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn.Doc != nil {
				for _, c := range fn.Doc.List {
					funcDocs[c] = true
				}
			}
			if analysis.HasDirective(fn.Doc, analysis.DirHotpath) {
				hot = append(hot, fn)
			}
		}
		for _, d := range analysis.ParseDirectives(f) {
			if d.Kind == analysis.DirHotpath && !funcDocs[d.Comment] {
				pass.Report(d.Comment.Pos(), "misplaced",
					"//fair:hotpath must be part of a function's doc comment; this one annotates nothing")
			}
		}
		for _, fn := range hot {
			if fn.Body != nil {
				checkHotBody(pass, fn)
			}
		}
	}
	return nil
}

func checkHotBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	defs := collectDefs(info, fn.Body)
	results := fnResults(info, fn)

	// Method-value detection needs to know which selectors are callee
	// positions (those are direct calls, not bound closures).
	callees := make(map[ast.Expr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callees[call.Fun] = true
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Report(n.Pos(), "closure",
				"closure literal in a hot path: captures allocate and the call is dynamic — hoist the state or pass it explicitly")
			return false // the closure body is cold code by definition
		case *ast.GoStmt:
			pass.Report(n.Pos(), "go",
				"go statement in a hot path: spawning allocates a stack — hot paths run on their caller's goroutine")
		case *ast.DeferStmt:
			pass.Report(n.Pos(), "defer",
				"defer in a hot path: deferred calls cost setup work per invocation — unwind explicitly")
		case *ast.CallExpr:
			checkHotCall(pass, info, defs, n)
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok {
				pass.Report(n.Pos(), "lit",
					"&composite literal in a hot path escapes to the heap: reuse a pooled or scratch value")
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Report(n.Pos(), "lit",
						"slice/map literal in a hot path allocates: reuse scratch storage")
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t := info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Report(n.Pos(), "concat",
							"string concatenation in a hot path allocates: append into a reused []byte instead")
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					checkIfaceAssign(pass, info, n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				if t := info.TypeOf(n.Type); t != nil && types.IsInterface(t) {
					for _, v := range n.Values {
						checkBoxing(pass, info, t, v)
					}
				}
			}
		case *ast.ReturnStmt:
			for i, r := range n.Results {
				if i < len(results) && types.IsInterface(results[i]) {
					checkBoxing(pass, info, results[i], r)
				}
			}
		case *ast.SelectorExpr:
			if !callees[n] {
				if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
					pass.Report(n.Pos(), "methodvalue",
						"method value in a hot path allocates a bound closure: call the method directly or pass the receiver")
				}
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// checkHotCall audits one call: allocating builtins, growing appends,
// allocating conversions, and implicit boxing at interface parameters.
func checkHotCall(pass *analysis.Pass, info *types.Info, defs map[types.Object]ast.Expr, call *ast.CallExpr) {
	switch builtinName(info, call) {
	case "make":
		pass.Report(call.Pos(), "make", "make in a hot path allocates: hoist the buffer and reuse it")
		return
	case "new":
		pass.Report(call.Pos(), "make", "new in a hot path allocates: reuse a pooled value")
		return
	case "append":
		if len(call.Args) > 0 && !scratchReuse(info, defs, call.Args[0], 0) {
			pass.Report(call.Pos(), "append",
				"append that can grow in a hot path allocates: append into reused scratch (s = s[:0]) so growth amortizes to zero")
		}
		return
	case "":
	default:
		return // other builtins (len, cap, copy, delete, ...) do not allocate
	}

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		target := tv.Type
		if types.IsInterface(target) && len(call.Args) == 1 {
			checkBoxing(pass, info, target, call.Args[0])
			return
		}
		if len(call.Args) == 1 && stringBytesConv(info, target, call.Args[0]) {
			pass.Report(call.Pos(), "conv",
				"string<->[]byte conversion in a hot path copies and allocates: keep one representation end to end")
		}
		return
	}

	// Ordinary call: boxing at interface-typed parameters.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			if i == params.Len()-1 && len(call.Args) == params.Len() && call.Ellipsis.IsValid() {
				continue // s... forwards the existing slice
			}
			if types.IsInterface(pt) {
				// The variadic slice itself is a fresh allocation even
				// before any boxing.
				pass.Reportf(arg.Pos(), "iface",
					"variadic interface argument in a hot path allocates the argument slice (and boxes non-pointer values)")
				continue
			}
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) {
			checkBoxing(pass, info, pt, arg)
		}
	}
}

// checkBoxing flags storing a concrete non-pointer value into an
// interface: the value is copied to the heap to fit behind the
// interface's data word. Pointer-shaped values (pointers, channels,
// maps, funcs, unsafe pointers) ride in the word directly; values
// already of interface type convert for free.
func checkBoxing(pass *analysis.Pass, info *types.Info, target types.Type, arg ast.Expr) {
	at := info.TypeOf(arg)
	if at == nil || types.IsInterface(at) {
		return
	}
	if tv, ok := info.Types[arg]; ok && tv.IsNil() {
		return
	}
	switch u := at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: rides in the interface word, no copy
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return
		}
		// Non-pointer basics (ints, strings, floats) still box.
	}
	pass.Reportf(arg.Pos(), "iface",
		"boxing a non-pointer %s into %s in a hot path allocates: pass a pointer or hoist the conversion out of the loop", at, target)
}

// scratchReuse reports whether the append target provably derives from
// a s[:0]-style reset of reused scratch storage, the sanctioned
// amortized-zero pattern (randutil.PermInto, live samplePeers).
func scratchReuse(info *types.Info, defs map[types.Object]ast.Expr, e ast.Expr, depth int) bool {
	if depth > 8 {
		return false
	}
	switch e := e.(type) {
	case *ast.SliceExpr:
		if e.High == nil {
			return false
		}
		if tv, ok := info.Types[e.High]; ok && tv.Value != nil {
			if v, exact := constant.Int64Val(tv.Value); exact && v == 0 {
				return true
			}
		}
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if rhs, ok := defs[obj]; ok {
			return scratchReuse(info, defs, rhs, depth+1)
		}
	case *ast.CallExpr:
		if builtinName(info, e) == "append" && len(e.Args) > 0 {
			return scratchReuse(info, defs, e.Args[0], depth+1)
		}
	case *ast.ParenExpr:
		return scratchReuse(info, defs, e.X, depth+1)
	}
	return false
}

// checkIfaceAssign flags assignments that box a concrete non-pointer
// value into an interface-typed location.
func checkIfaceAssign(pass *analysis.Pass, info *types.Info, lhs, rhs ast.Expr) {
	lt := info.TypeOf(lhs)
	if lt == nil || !types.IsInterface(lt) {
		return
	}
	checkBoxing(pass, info, lt, rhs)
}

// collectDefs records each local's first defining expression, for the
// scratch-reuse origin trace.
func collectDefs(info *types.Info, body *ast.BlockStmt) map[types.Object]ast.Expr {
	defs := make(map[types.Object]ast.Expr)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						if _, seen := defs[obj]; !seen {
							defs[obj] = n.Rhs[i]
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					if obj := info.ObjectOf(name); obj != nil {
						if _, seen := defs[obj]; !seen {
							defs[obj] = n.Values[i]
						}
					}
				}
			}
		}
		return true
	})
	return defs
}

func fnResults(info *types.Info, fn *ast.FuncDecl) []types.Type {
	obj := info.ObjectOf(fn.Name)
	if obj == nil {
		return nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []types.Type
	for i := 0; i < sig.Results().Len(); i++ {
		out = append(out, sig.Results().At(i).Type())
	}
	return out
}

// stringBytesConv reports a string([]byte) or []byte(string) crossing.
func stringBytesConv(info *types.Info, target types.Type, arg ast.Expr) bool {
	at := info.TypeOf(arg)
	if at == nil {
		return false
	}
	toString := false
	if b, ok := target.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		toString = true
	}
	fromString := false
	if b, ok := at.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		fromString = true
	}
	return (toString && isByteSlice(at)) || (fromString && isByteSlice(target))
}
