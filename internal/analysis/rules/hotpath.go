package rules

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"fairgossip/internal/analysis"
)

// Hotpath complements the AllocsPerRun regression tests with
// source-level diagnostics: the runtime pins catch an allocation after
// it ships, this rule names the allocating construct in review. A
// function opts in with //fair:hotpath in its doc comment; the
// annotated bodies are the per-message and per-round paths the
// million-peer sharded kernel will execute trillions of times.
//
// The rule is interprocedural: allocation-freedom is computed bottom-up
// over the package call graph and exported as a fact per function, so a
// hot body calling an allocating helper — in this package or an
// already-analyzed dependency — is a finding at the call site, with the
// callee chain in the message. The conservative limits are the call
// graph's: calls through interfaces and function values are not
// resolved and are assumed allocation-free (the runtime pins remain the
// backstop for those), and callees outside the analyzed module are
// assumed free except for the known formatters (fmt.*, errors.New).
var Hotpath = &analysis.Analyzer{
	Name: "hotpath",
	Doc:  "Functions annotated //fair:hotpath may not contain allocating constructs: closures, go/defer, make/new, &composite and slice/map literals, appends that can grow beyond reused scratch (s[:0] reuse is fine), string concatenation, string<->[]byte conversions, boxing a non-pointer value into an interface, or method values. Nor may they call a function that allocates, transitively: allocation-freedom facts flow bottom-up over the call graph and a dirty callee is reported at the call site with the chain. //fair:ignore hotpath <reason> audits the deliberate exceptions.",
	Run:  runHotpath,
}

// A hotFact is the exported allocation-freedom summary of one function:
// the "hotpath:<FuncID>" fact downstream packages consume.
type hotFact struct {
	Free bool
	Why  string // first offense, as a chain: "make/new at net.go:42" or "calls grow → make/new at net.go:42"
}

// hotReporter receives one allocating-construct finding; report mode
// plugs in Pass.Report, fact collection records the first offense.
type hotReporter func(pos token.Pos, category, message string)

func runHotpath(pass *analysis.Pass) error {
	graph := pass.Graph()
	st := &allocState{
		pass:    pass,
		graph:   graph,
		hatched: hatchedLines(pass, "hotpath"),
		memo:    make(map[string]hotFact),
		busy:    make(map[string]bool),
	}
	// Export a fact for every declared function, bottom-up, whether or
	// not anything here is annotated: an importing package's hot path
	// may call it, and by then this package's syntax is gone.
	for _, node := range graph.Funcs {
		fact, _ := st.freeness(node.Fn)
		pass.ExportFact("hotpath:"+node.ID, fact)
	}

	for _, f := range pass.Files {
		// Every //fair:hotpath directive must sit in some function's doc
		// comment: a floating annotation pins nothing and would rot.
		funcDocs := make(map[*ast.Comment]bool)
		var hot []*ast.FuncDecl
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn.Doc != nil {
				for _, c := range fn.Doc.List {
					funcDocs[c] = true
				}
			}
			if analysis.HasDirective(fn.Doc, analysis.DirHotpath) {
				hot = append(hot, fn)
			}
		}
		for _, d := range analysis.ParseDirectives(f) {
			if d.Kind == analysis.DirHotpath && !funcDocs[d.Comment] {
				pass.Report(d.Comment.Pos(), "misplaced",
					"//fair:hotpath must be part of a function's doc comment; this one annotates nothing")
			}
		}
		for _, fn := range hot {
			if fn.Body == nil {
				continue
			}
			checkHotBody(pass, fn)
			st.checkHotCalls(fn)
		}
	}
	return nil
}

// allocState computes per-function allocation-freedom bottom-up over
// the package call graph, consulting the fact store for callees in
// already-analyzed packages.
type allocState struct {
	pass    *analysis.Pass
	graph   *analysis.CallGraph
	hatched map[string]map[int]bool
	memo    map[string]hotFact
	busy    map[string]bool
}

// freeness resolves one function's allocation-freedom. stable is false
// when the answer leaned on an in-progress node of a recursion cycle
// (the optimistic assumption); unstable answers are not memoized so a
// later top-level query recomputes them with more of the cycle known.
func (st *allocState) freeness(fn *types.Func) (fact hotFact, stable bool) {
	id := analysis.FuncID(fn)
	if f, ok := st.memo[id]; ok {
		return f, true
	}
	node, local := st.graph.ByID[id]
	if !local {
		return st.externalFreeness(fn), true
	}
	if st.busy[id] {
		// Recursion: the call itself allocates nothing beyond what the
		// cycle's own bodies already show, so assume free here.
		return hotFact{Free: true}, false
	}
	st.busy[id] = true
	defer delete(st.busy, id)

	stable = true
	fact = hotFact{Free: true}
	if site, ok := st.firstAllocSite(node.Decl); ok {
		fact = hotFact{Free: false, Why: site}
	} else {
		for _, call := range node.Calls {
			if call.Kind != analysis.EdgeCall || call.Callee == nil || call.Iface {
				continue
			}
			if st.isHatched(call.Pos) {
				// A hatched call site is already audited where the
				// finding lands; callers of this function should not
				// need a second hatch for the same allocation.
				continue
			}
			sub, subStable := st.freeness(call.Callee)
			stable = stable && subStable
			if !sub.Free {
				fact = hotFact{Free: false, Why: fmt.Sprintf("calls %s → %s", shortFuncName(call.Callee), sub.Why)}
				break
			}
		}
	}
	if stable {
		st.memo[id] = fact
	}
	return fact, stable
}

// externalFreeness answers for callees outside the analyzed packages:
// an exported fact if the callee's package was analyzed earlier in this
// run, else a denylist of the notorious allocators, else assumed free
// (the AllocsPerRun pins backstop the assumption).
func (st *allocState) externalFreeness(fn *types.Func) hotFact {
	id := analysis.FuncID(fn)
	if f, ok := st.pass.LookupFact("hotpath:" + id); ok {
		if hf, ok := f.(hotFact); ok {
			return hf
		}
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "fmt":
			return hotFact{Free: false, Why: fmt.Sprintf("%s.%s formats through interfaces and allocates", pkg.Name(), fn.Name())}
		case "errors":
			if fn.Name() == "New" {
				return hotFact{Free: false, Why: "errors.New allocates the error value"}
			}
		}
	}
	return hotFact{Free: true}
}

// firstAllocSite scans one function body in fact-collection mode and
// returns the first allocating construct as a position-stamped phrase.
// Two deliberate differences from report mode: sites hatched with
// //fair:ignore hotpath are excluded (the hatch on an annotated callee
// already audits the allocation — its callers should not need a second
// hatch), and appends into a parameter-derived slice are free (growth
// is the caller's contract, the wire.Append* codec shape).
func (st *allocState) firstAllocSite(fn *ast.FuncDecl) (string, bool) {
	var why string
	found := false
	record := func(pos token.Pos, category, _ string) {
		if found || st.isHatched(pos) {
			return
		}
		found = true
		why = fmt.Sprintf("%s at %s", hotCategoryNoun(category), st.shortPos(pos))
	}
	scanHotBody(st.pass.TypesInfo, fn, true, record)
	return why, found
}

// checkHotCalls reports the interprocedural findings for one annotated
// hot function: every statically resolved ordinary call whose callee is
// not allocation-free, with the offending chain.
func (st *allocState) checkHotCalls(fn *ast.FuncDecl) {
	obj, ok := st.pass.TypesInfo.Defs[fn.Name].(*types.Func)
	if !ok {
		return
	}
	node, ok := st.graph.ByObj[obj]
	if !ok {
		return
	}
	for _, call := range node.Calls {
		if call.Kind != analysis.EdgeCall || call.Callee == nil || call.Iface {
			continue
		}
		fact, _ := st.freeness(call.Callee)
		if !fact.Free {
			st.pass.Reportf(call.Pos, "call",
				"call to %s in a hot path is not allocation-free: %s — make the callee allocation-free, hoist the call, or hatch this call site",
				shortFuncName(call.Callee), fact.Why)
		}
	}
}

func (st *allocState) isHatched(pos token.Pos) bool {
	p := st.pass.Fset.Position(pos)
	lines := st.hatched[p.Filename]
	return lines[p.Line] || lines[p.Line-1]
}

func (st *allocState) shortPos(pos token.Pos) string {
	p := st.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// hatchedLines indexes the lines carrying a //fair:ignore <rule>
// directive, per file: a diagnostic on the directive's line or the line
// below is suppressed by the driver, so fact collection skips the same
// sites.
func hatchedLines(pass *analysis.Pass, rule string) map[string]map[int]bool {
	m := make(map[string]map[int]bool)
	for _, f := range pass.Files {
		for _, d := range analysis.ParseDirectives(f) {
			if d.Kind != analysis.DirIgnore || d.Rule != rule {
				continue
			}
			p := pass.Fset.Position(d.Comment.Pos())
			if m[p.Filename] == nil {
				m[p.Filename] = make(map[int]bool)
			}
			m[p.Filename][p.Line] = true
		}
	}
	return m
}

func hotCategoryNoun(category string) string {
	switch category {
	case "closure":
		return "closure literal"
	case "go":
		return "go statement"
	case "defer":
		return "defer"
	case "make":
		return "make/new"
	case "append":
		return "growing append"
	case "lit":
		return "composite literal"
	case "concat":
		return "string concatenation"
	case "conv":
		return "string<->[]byte conversion"
	case "iface":
		return "interface boxing"
	case "methodvalue":
		return "method value"
	}
	return category
}

// shortFuncName trims module-path noise off a FullName for messages:
// "(*fairgossip/internal/gossip.Peer).Round" → "(*gossip.Peer).Round".
func shortFuncName(fn *types.Func) string {
	s := fn.FullName()
	s = strings.ReplaceAll(s, "fairgossip/internal/", "")
	s = strings.ReplaceAll(s, "fairgossip/", "")
	s = strings.ReplaceAll(s, "fixtures/", "")
	return s
}

// checkHotBody reports every allocating construct in an annotated hot
// function (report mode: the driver applies //fair:ignore hatches).
func checkHotBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	scanHotBody(pass.TypesInfo, fn, false, pass.Report)
}

// scanHotBody walks one function body and reports each allocating
// construct. paramAppendOK additionally treats appends into
// parameter-derived slices as free — fact-collection mode uses it so
// append-into-caller-buffer helpers (the wire codec) stay
// allocation-free by contract; report mode on annotated bodies keeps
// the stricter scratch-only rule.
func scanHotBody(info *types.Info, fn *ast.FuncDecl, paramAppendOK bool, report hotReporter) {
	defs := collectDefs(info, fn.Body)
	results := fnResults(info, fn)
	var params map[types.Object]bool
	if paramAppendOK {
		params = paramObjs(info, fn)
	}

	// Method-value detection needs to know which selectors are callee
	// positions (those are direct calls, not bound closures).
	callees := make(map[ast.Expr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callees[call.Fun] = true
		}
		return true
	})

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure",
				"closure literal in a hot path: captures allocate and the call is dynamic — hoist the state or pass it explicitly")
			return false // the closure body is cold code by definition
		case *ast.GoStmt:
			report(n.Pos(), "go",
				"go statement in a hot path: spawning allocates a stack — hot paths run on their caller's goroutine")
		case *ast.DeferStmt:
			report(n.Pos(), "defer",
				"defer in a hot path: deferred calls cost setup work per invocation — unwind explicitly")
		case *ast.CallExpr:
			checkHotCall(info, defs, params, n, report)
		case *ast.UnaryExpr:
			if _, ok := n.X.(*ast.CompositeLit); ok {
				report(n.Pos(), "lit",
					"&composite literal in a hot path escapes to the heap: reuse a pooled or scratch value")
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(n.Pos(), "lit",
						"slice/map literal in a hot path allocates: reuse scratch storage")
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if t := info.TypeOf(n); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report(n.Pos(), "concat",
							"string concatenation in a hot path allocates: append into a reused []byte instead")
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					checkIfaceAssign(info, n.Lhs[i], n.Rhs[i], report)
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				if t := info.TypeOf(n.Type); t != nil && types.IsInterface(t) {
					for _, v := range n.Values {
						checkBoxing(info, t, v, report)
					}
				}
			}
		case *ast.ReturnStmt:
			for i, r := range n.Results {
				if i < len(results) && types.IsInterface(results[i]) {
					checkBoxing(info, results[i], r, report)
				}
			}
		case *ast.SelectorExpr:
			if !callees[n] {
				if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
					report(n.Pos(), "methodvalue",
						"method value in a hot path allocates a bound closure: call the method directly or pass the receiver")
				}
			}
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// checkHotCall audits one call: allocating builtins, growing appends,
// allocating conversions, and implicit boxing at interface parameters.
func checkHotCall(info *types.Info, defs map[types.Object]ast.Expr, params map[types.Object]bool, call *ast.CallExpr, report hotReporter) {
	switch builtinName(info, call) {
	case "make":
		report(call.Pos(), "make", "make in a hot path allocates: hoist the buffer and reuse it")
		return
	case "new":
		report(call.Pos(), "make", "new in a hot path allocates: reuse a pooled value")
		return
	case "append":
		if len(call.Args) > 0 && !scratchReuse(info, defs, call.Args[0], 0) {
			if nonGrowingDelete(call) {
				return // append(x[:i], x[j:]...) shrinks in place, never grows
			}
			if params != nil && derivesFromParam(info, defs, params, call.Args[0], 0) {
				return // growth into the caller's buffer (or the receiver's amortized storage) is the owner's contract
			}
			report(call.Pos(), "append",
				"append that can grow in a hot path allocates: append into reused scratch (s = s[:0]) so growth amortizes to zero")
		}
		return
	case "":
	default:
		return // other builtins (len, cap, copy, delete, ...) do not allocate
	}

	// Conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		target := tv.Type
		if types.IsInterface(target) && len(call.Args) == 1 {
			checkBoxing(info, target, call.Args[0], report)
			return
		}
		if len(call.Args) == 1 && stringBytesConv(info, target, call.Args[0]) {
			report(call.Pos(), "conv",
				"string<->[]byte conversion in a hot path copies and allocates: keep one representation end to end")
		}
		return
	}

	// Ordinary call: boxing at interface-typed parameters.
	sig, ok := info.Types[call.Fun].Type.(*types.Signature)
	if !ok {
		return
	}
	params2 := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params2.Len()-1:
			pt = params2.At(params2.Len() - 1).Type().(*types.Slice).Elem()
			if i == params2.Len()-1 && len(call.Args) == params2.Len() && call.Ellipsis.IsValid() {
				continue // s... forwards the existing slice
			}
			if types.IsInterface(pt) {
				// The variadic slice itself is a fresh allocation even
				// before any boxing.
				report(arg.Pos(), "iface",
					"variadic interface argument in a hot path allocates the argument slice (and boxes non-pointer values)")
				continue
			}
		case i < params2.Len():
			pt = params2.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) {
			checkBoxing(info, pt, arg, report)
		}
	}
}

// checkBoxing flags storing a concrete non-pointer value into an
// interface: the value is copied to the heap to fit behind the
// interface's data word. Pointer-shaped values (pointers, channels,
// maps, funcs, unsafe pointers) ride in the word directly; values
// already of interface type convert for free.
func checkBoxing(info *types.Info, target types.Type, arg ast.Expr, report hotReporter) {
	at := info.TypeOf(arg)
	if at == nil || types.IsInterface(at) {
		return
	}
	if tv, ok := info.Types[arg]; ok && tv.IsNil() {
		return
	}
	switch u := at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: rides in the interface word, no copy
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return
		}
		// Non-pointer basics (ints, strings, floats) still box.
	}
	report(arg.Pos(), "iface",
		fmt.Sprintf("boxing a non-pointer %s into %s in a hot path allocates: pass a pointer or hoist the conversion out of the loop", at, target))
}

// scratchReuse reports whether the append target provably derives from
// a s[:0]-style reset of reused scratch storage, the sanctioned
// amortized-zero pattern (randutil.PermInto, live samplePeers).
func scratchReuse(info *types.Info, defs map[types.Object]ast.Expr, e ast.Expr, depth int) bool {
	if depth > 8 {
		return false
	}
	switch e := e.(type) {
	case *ast.SliceExpr:
		if e.High == nil {
			return false
		}
		if tv, ok := info.Types[e.High]; ok && tv.Value != nil {
			if v, exact := constant.Int64Val(tv.Value); exact && v == 0 {
				return true
			}
		}
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if rhs, ok := defs[obj]; ok {
			return scratchReuse(info, defs, rhs, depth+1)
		}
	case *ast.CallExpr:
		if builtinName(info, e) == "append" && len(e.Args) > 0 {
			return scratchReuse(info, defs, e.Args[0], depth+1)
		}
	case *ast.ParenExpr:
		return scratchReuse(info, defs, e.X, depth+1)
	}
	return false
}

// derivesFromParam traces an append target back to a function
// parameter or a receiver-reachable field (possibly through reslices,
// dereferences, and intermediate locals): appending into the caller's
// buffer is the caller's contract, and appending into the receiver's
// own storage (s.heap, b.freeL) amortizes over the owner's lifetime
// exactly like s[:0] scratch — both shapes the AllocsPerRun pins
// confirm at zero in steady state.
func derivesFromParam(info *types.Info, defs map[types.Object]ast.Expr, params map[types.Object]bool, e ast.Expr, depth int) bool {
	if depth > 8 {
		return false
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if params[obj] {
			return true
		}
		if rhs, ok := defs[obj]; ok {
			return derivesFromParam(info, defs, params, rhs, depth+1)
		}
	case *ast.SelectorExpr:
		return derivesFromParam(info, defs, params, e.X, depth+1)
	case *ast.StarExpr:
		return derivesFromParam(info, defs, params, e.X, depth+1)
	case *ast.SliceExpr:
		return derivesFromParam(info, defs, params, e.X, depth+1)
	case *ast.CallExpr:
		if builtinName(info, e) == "append" && len(e.Args) > 0 {
			return derivesFromParam(info, defs, params, e.Args[0], depth+1)
		}
	case *ast.ParenExpr:
		return derivesFromParam(info, defs, params, e.X, depth+1)
	}
	return false
}

// nonGrowingDelete recognizes the in-place deletion idiom
// append(x[:i], x[j:]...): both halves slice the same base, so the
// result is shorter than the original and the append can never grow.
func nonGrowingDelete(call *ast.CallExpr) bool {
	if len(call.Args) != 2 || !call.Ellipsis.IsValid() {
		return false
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || dst.High == nil {
		return false
	}
	src, ok := ast.Unparen(call.Args[1]).(*ast.SliceExpr)
	if !ok {
		return false
	}
	return exprPath(dst.X) != "" && exprPath(dst.X) == exprPath(src.X)
}

// exprPath spells a pure ident/selector chain ("v.entries") for
// same-base comparison; anything with calls or indexing yields "".
func exprPath(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprPath(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// paramObjs collects the function's parameter objects (including the
// receiver) for the parameter-derivation trace.
func paramObjs(info *types.Info, fn *ast.FuncDecl) map[types.Object]bool {
	params := make(map[types.Object]bool)
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := info.ObjectOf(name); obj != nil {
					params[obj] = true
				}
			}
		}
	}
	if fn.Recv != nil {
		addFields(fn.Recv)
	}
	if fn.Type != nil {
		addFields(fn.Type.Params)
	}
	return params
}

// checkIfaceAssign flags assignments that box a concrete non-pointer
// value into an interface-typed location.
func checkIfaceAssign(info *types.Info, lhs, rhs ast.Expr, report hotReporter) {
	lt := info.TypeOf(lhs)
	if lt == nil || !types.IsInterface(lt) {
		return
	}
	checkBoxing(info, lt, rhs, report)
}

// collectDefs records each local's first defining expression, for the
// scratch-reuse origin trace.
func collectDefs(info *types.Info, body *ast.BlockStmt) map[types.Object]ast.Expr {
	defs := make(map[types.Object]ast.Expr)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						if _, seen := defs[obj]; !seen {
							defs[obj] = n.Rhs[i]
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					if obj := info.ObjectOf(name); obj != nil {
						if _, seen := defs[obj]; !seen {
							defs[obj] = n.Values[i]
						}
					}
				}
			}
		}
		return true
	})
	return defs
}

func fnResults(info *types.Info, fn *ast.FuncDecl) []types.Type {
	obj := info.ObjectOf(fn.Name)
	if obj == nil {
		return nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out []types.Type
	for i := 0; i < sig.Results().Len(); i++ {
		out = append(out, sig.Results().At(i).Type())
	}
	return out
}

// stringBytesConv reports a string([]byte) or []byte(string) crossing.
func stringBytesConv(info *types.Info, target types.Type, arg ast.Expr) bool {
	at := info.TypeOf(arg)
	if at == nil {
		return false
	}
	toString := false
	if b, ok := target.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		toString = true
	}
	fromString := false
	if b, ok := at.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		fromString = true
	}
	return (toString && isByteSlice(at)) || (fromString && isByteSlice(target))
}
