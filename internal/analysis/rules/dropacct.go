package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"fairgossip/internal/analysis"
)

// DropAcct guards the conservation law the scenario invariants audit at
// runtime: sent == recv + dropped, exactly. Every envelope a peer
// stops carrying must land in a counted drop bucket; the two ways code
// loses one silently are discarding a transport Send error and bailing
// out of a full queue without counting.
var DropAcct = &analysis.Analyzer{
	Name: "dropacct",
	Doc:  "A failed transport Send (method Send(int, []byte) error) must either count the loss in a drop bucket or propagate the error to a caller that does; flags discarded Send results, error branches that bail without accounting, and queue-rejection select defaults that lose an envelope uncounted.",
	Run:  runDropAcct,
}

func runDropAcct(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if block, ok := n.(*ast.BlockStmt); ok {
				checkBlock(pass, block)
			}
			if sel, ok := n.(*ast.SelectStmt); ok {
				checkQueueReject(pass, sel)
			}
			return true
		})
	}
	return nil
}

// checkBlock classifies every transport Send whose statement lives
// directly in this block.
func checkBlock(pass *analysis.Pass, block *ast.BlockStmt) {
	info := pass.TypesInfo
	for i, stmt := range block.List {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call := asSend(info, s.X); call != nil {
				report(pass, call, "result of transport Send discarded: a refused send is a lost envelope — count it in a drop bucket or propagate the error")
			}
		case *ast.AssignStmt:
			call := singleSendRHS(info, s)
			if call == nil {
				continue
			}
			errObj := assignTarget(info, s)
			if errObj == nil {
				report(pass, call, "transport Send error assigned to the blank identifier: a refused send is a lost envelope — count it in a drop bucket or propagate the error")
				continue
			}
			checkErrUse(pass, call, errObj, block.List[i+1:])
		case *ast.IfStmt:
			init, ok := s.Init.(*ast.AssignStmt)
			if !ok {
				continue
			}
			call := singleSendRHS(info, init)
			if call == nil {
				continue
			}
			errObj := assignTarget(info, init)
			if errObj == nil {
				report(pass, call, "transport Send error assigned to the blank identifier inside an if: check it and count the loss")
				continue
			}
			checkErrBranch(pass, call, errObj, s)
		}
	}
}

// asSend returns the call when expr is a transport Send invocation.
func asSend(info *types.Info, expr ast.Expr) *ast.CallExpr {
	call, ok := expr.(*ast.CallExpr)
	if !ok || !isTransportSend(info, call) {
		return nil
	}
	return call
}

// singleSendRHS matches `err := x.Send(...)` single-value assignments.
func singleSendRHS(info *types.Info, s *ast.AssignStmt) *ast.CallExpr {
	if len(s.Rhs) != 1 || len(s.Lhs) != 1 {
		return nil
	}
	return asSend(info, s.Rhs[0])
}

// assignTarget returns the object bound to the single LHS, or nil for
// the blank identifier.
func assignTarget(info *types.Info, s *ast.AssignStmt) types.Object {
	id, ok := s.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return info.ObjectOf(id)
}

// checkErrUse follows a `err := x.Send(...)` statement: the first use
// of err must be an if-check (analyzed branch-by-branch) or any other
// genuine use (returning it, wrapping it). No use at all means the
// error — and the envelope — evaporated.
func checkErrUse(pass *analysis.Pass, call *ast.CallExpr, errObj types.Object, rest []ast.Stmt) {
	for _, stmt := range rest {
		ifs, ok := stmt.(*ast.IfStmt)
		if ok && usesObj(pass.TypesInfo, ifs.Cond, errObj) {
			checkErrBranch(pass, call, errObj, ifs)
			return
		}
		if usesObj(pass.TypesInfo, stmt, errObj) {
			return // propagated or handled some other explicit way
		}
	}
	report(pass, call, "transport Send error is never checked: a refused send is a lost envelope — count it in a drop bucket or propagate the error")
}

// checkErrBranch audits the branch taken when the Send failed: it must
// count a drop, propagate the error, or panic. `continue`-and-forget
// and empty else-arms are exactly the silent losses the conservation
// audit can only catch after the fact.
func checkErrBranch(pass *analysis.Pass, call *ast.CallExpr, errObj types.Object, ifs *ast.IfStmt) {
	var failBranch []ast.Stmt
	switch cond := ifs.Cond.(type) {
	case *ast.BinaryExpr:
		lhsIsErr := usesObj(pass.TypesInfo, cond.X, errObj) || usesObj(pass.TypesInfo, cond.Y, errObj)
		switch {
		case cond.Op == token.NEQ && lhsIsErr:
			failBranch = ifs.Body.List
		case cond.Op == token.EQL && lhsIsErr:
			if ifs.Else == nil {
				report(pass, call, "transport Send error checked with == nil but the failure path falls through uncounted: add an else that counts the drop or propagates")
				return
			}
			switch e := ifs.Else.(type) {
			case *ast.BlockStmt:
				failBranch = e.List
			default:
				failBranch = []ast.Stmt{ifs.Else}
			}
		default:
			return // unusual condition shape: give the author the benefit of the doubt
		}
	default:
		return
	}
	if branchAccounts(pass.TypesInfo, failBranch, errObj) {
		return
	}
	report(pass, call, "failure path after transport Send neither counts a drop nor propagates the error: the envelope is lost uncounted and sent == recv + dropped breaks")
}

// branchAccounts reports whether the failure branch counts the loss
// (mentions a drop bucket), propagates the error (a return referencing
// it), or panics.
func branchAccounts(info *types.Info, stmts []ast.Stmt, errObj types.Object) bool {
	if mentionsDrop(stmts) {
		return true
	}
	ok := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if ok {
				return false
			}
			switch n := n.(type) {
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if usesObj(info, r, errObj) {
						ok = true
					}
				}
			case *ast.CallExpr:
				if id, isIdent := n.Fun.(*ast.Ident); isIdent && id.Name == "panic" {
					ok = true
				}
			}
			return !ok
		})
		if ok {
			return true
		}
	}
	return false
}

// checkQueueReject audits non-blocking envelope enqueues: a select
// that sends a []byte (or a struct carrying one) and has a default arm
// is the inbox-overflow pattern; the default arm is a counted drop or
// it is a silent loss.
func checkQueueReject(pass *analysis.Pass, sel *ast.SelectStmt) {
	var envelopeSend *ast.SendStmt
	var defaultArm *ast.CommClause
	for _, c := range sel.Body.List {
		cc := c.(*ast.CommClause)
		if cc.Comm == nil {
			defaultArm = cc
			continue
		}
		if send, ok := cc.Comm.(*ast.SendStmt); ok {
			if ch, ok := pass.TypesInfo.TypeOf(send.Chan).Underlying().(*types.Chan); ok && carriesBytes(ch.Elem()) {
				envelopeSend = send
			}
		}
	}
	if envelopeSend == nil || defaultArm == nil {
		return
	}
	if !mentionsDrop(defaultArm.Body) {
		pass.Report(defaultArm.Pos(), "queue",
			"queue rejection discards an envelope without counting: the default arm of a non-blocking enqueue must record the loss in a drop bucket (inbox overflow is a counted drop, like a saturated socket buffer)")
	}
}

// carriesBytes reports whether t is []byte or a struct with a []byte
// field — the shapes an encoded envelope travels in.
func carriesBytes(t types.Type) bool {
	if isByteSlice(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isByteSlice(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

func usesObj(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

func report(pass *analysis.Pass, call *ast.CallExpr, msg string) {
	pass.Report(call.Pos(), "send", msg)
}
