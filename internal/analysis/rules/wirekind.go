package rules

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"fairgossip/internal/analysis"
)

// Wirekind guards the sent == received + dropped conservation law at
// the vocabulary level: when PR 5 added KindLeave, every switch over a
// wire kind either learned the new case or silently black-holed leave
// traffic — and only the conservation audits would have noticed, at
// runtime, statistically. This rule makes the omission a review-time
// finding: a switch over a kind family (the package-scope Kind*/kind*
// constants sharing the switched value's type) must handle every
// declared member, or carry a default that visibly accounts for the
// stranger — counting it into a drop/malformed/corrupt bucket, or
// refusing it with a return or panic. A default that silently falls
// through is exactly the black hole.
var Wirekind = &analysis.Analyzer{
	Name: "wirekind",
	Doc:  "A switch over a wire-kind value (any constant family named Kind*/kind*) must either handle every declared constant of the family or have a default that counts the message into a drop/malformed/corrupt bucket (or rejects it with return/panic). Unhandled kinds silently black-hole traffic and break the sent==received+dropped conservation law.",
	Run:  runWirekind,
}

func runWirekind(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if sw, ok := n.(*ast.SwitchStmt); ok && sw.Tag != nil {
				checkKindSwitch(pass, sw)
			}
			return true
		})
	}
	return nil
}

func checkKindSwitch(pass *analysis.Pass, sw *ast.SwitchStmt) {
	info := pass.TypesInfo

	// The family is seeded by the case labels, not the tag type: wire's
	// kinds are plain byte constants, so the tag type alone (byte) says
	// nothing. Any case naming a Kind*/kind* constant identifies the
	// declaring package and the family type.
	covered := make(map[types.Object]bool)
	var defaultClause *ast.CaseClause
	var seed *types.Const
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			c := constOf(info, e)
			if c == nil {
				continue
			}
			covered[c] = true
			if seed == nil && isKindName(c.Name()) {
				seed = c
			}
		}
	}
	if seed == nil || seed.Pkg() == nil {
		return // not a kind switch
	}

	family := kindFamily(seed)
	if len(family) < 2 {
		return // a lone constant is a sentinel, not a vocabulary
	}
	var missing []string
	for _, c := range family {
		if !covered[c] {
			missing = append(missing, seed.Pkg().Name()+"."+c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	list := strings.Join(missing, ", ")
	if defaultClause == nil {
		pass.Reportf(sw.Switch, "missing",
			"switch over %s kinds does not handle %s and has no default: an unhandled kind must be counted, not silently skipped — add the cases or a default that counts the message as malformed/dropped",
			seed.Pkg().Name(), list)
		return
	}
	if !defaultCounts(defaultClause.Body) {
		pass.Reportf(sw.Switch, "default",
			"switch over %s kinds does not handle %s and its default does not visibly account for the stranger: count it into a drop/malformed/corrupt bucket or reject it with return/panic",
			seed.Pkg().Name(), list)
	}
}

// constOf resolves a case expression to the constant it names, through
// a plain identifier or a pkg.Name selector.
func constOf(info *types.Info, e ast.Expr) *types.Const {
	var obj types.Object
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	}
	c, _ := obj.(*types.Const)
	return c
}

// kindFamily returns every package-scope constant sharing the seed's
// exact type and the Kind*/kind* naming pattern — the declared wire
// vocabulary. maxKind-style bounds fall outside the prefix and so
// outside the family.
func kindFamily(seed *types.Const) []*types.Const {
	scope := seed.Pkg().Scope()
	var family []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !isKindName(name) {
			continue
		}
		if types.Identical(c.Type(), seed.Type()) {
			family = append(family, c)
		}
	}
	return family
}

func isKindName(name string) bool {
	return len(name) > 4 && (strings.HasPrefix(name, "Kind") || strings.HasPrefix(name, "kind"))
}

// defaultCounts reports whether a default clause visibly accounts for
// an unknown kind: it names a drop/malformed/corrupt/fail bucket, or
// refuses to continue (return or panic anywhere in the clause).
func defaultCounts(stmts []ast.Stmt) bool {
	found := false
	for _, s := range stmts {
		ast.Inspect(s, func(n ast.Node) bool {
			if found {
				return false
			}
			switch n := n.(type) {
			case *ast.ReturnStmt:
				found = true
			case *ast.Ident:
				if containsFold(n.Name, "drop") || containsFold(n.Name, "malformed") ||
					containsFold(n.Name, "corrupt") || containsFold(n.Name, "fail") {
					found = true
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
