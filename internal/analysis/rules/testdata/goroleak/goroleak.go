// Package goroleak seeds the spawn shapes the goroleak rule must
// divide: unstoppable loops (direct, in a literal, and through callee
// chains) versus the provable termination paths (stop-channel returns,
// range over a channel, bounded loops, labeled breaks, panic).
package goroleak

// spinsForever is the textbook leak: nothing in the loop can exit it.
func spinsForever() {
	for {
	}
}

// callsSpinner leaks transitively: its own body is loop-free but it
// never returns from the call.
func callsSpinner() {
	spinsForever()
}

// defersSpinner never reaches its return either: the deferred call
// runs at exit and then never finishes.
func defersSpinner() {
	defer spinsForever()
}

func spawnDirect() {
	go spinsForever() // want `goroutine spawned here has no provable termination path: calls goroleak.spinsForever → unconditional for-loop with no exit`
}

func spawnTransitive() {
	go callsSpinner() // want `calls goroleak.callsSpinner → calls goroleak.spinsForever → unconditional for-loop with no exit`
}

func spawnDeferred() {
	go defersSpinner() // want `calls goroleak.defersSpinner → calls goroleak.spinsForever → unconditional for-loop`
}

// spawnSelectBreak is the classic near-miss: the break exits the
// select, not the loop, so the goroutine spins on a closed channel.
func spawnSelectBreak(stop chan struct{}) {
	go func() { // want `no provable termination path`
		for {
			select {
			case <-stop:
				break
			}
		}
	}()
}

// spawnStopChannel is the sanctioned shape: the stop case returns.
func spawnStopChannel(stop chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-stop:
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}

// spawnRange ends when the channel closes: range loops terminate.
func spawnRange(work chan int) {
	go func() {
		for w := range work {
			_ = w
		}
	}()
}

// spawnBounded iterates a real condition.
func spawnBounded() {
	go func() {
		for i := 0; i < 64; i++ {
		}
	}()
}

// spawnLabeledBreak exits through a loop-targeting labeled break.
func spawnLabeledBreak(stop chan struct{}) {
	go func() {
	drain:
		for {
			select {
			case <-stop:
				break drain
			}
		}
	}()
}

// spawnPanics unwinds: a goroutine that dies loudly is not a leak
// (it is a different bug, caught by the crash).
func spawnPanics() {
	go func() {
		for {
			panic("unreachable state")
		}
	}()
}

// terminatingHelper returns; spawning it is fine even through a chain.
func terminatingHelper(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		}
	}
}

func spawnHelperChain(stop chan struct{}) {
	go terminatingHelper(stop)
}

// spawnHatched is the audited exception: the analysis cannot see the
// process-lifetime argument, so the hatch records it.
func spawnHatched() {
	go spinsForever() //fair:ignore goroleak this worker is process-lifetime by design; the harness reaps it at exit
}
