// Package wirekind seeds the switch shapes the wirekind rule must
// divide: exhaustive switches and accounting defaults (fine) versus
// missing kinds with no default or a silently-falling-through default
// (the black hole).
package wirekind

type kind uint8

const (
	kindPing kind = iota
	kindData
	kindBye
	maxKind = kindBye // a bound, not a member: the [Kk]ind prefix excludes it
)

var dropped int

// exhaustive handles every declared kind: no default needed.
func exhaustive(k kind) int {
	switch k {
	case kindPing:
		return 1
	case kindData:
		return 2
	case kindBye:
		return 3
	}
	return 0
}

// grouped covers the family with a multi-value case.
func grouped(k kind) bool {
	switch k {
	case kindPing, kindBye:
		return false
	case kindData:
		return true
	}
	return false
}

// missingNoDefault silently skips kindBye: a peer speaking the newer
// vocabulary is black-holed.
func missingNoDefault(k kind) int {
	n := 0
	switch k { // want `switch over wirekind kinds does not handle wirekind.kindBye and has no default`
	case kindPing:
		n = 1
	case kindData:
		n = 2
	}
	return n
}

// missingSilentDefault is worse: the default swallows the stranger
// without a trace.
func missingSilentDefault(k kind) int {
	n := 0
	switch k { // want `does not handle wirekind.kindBye, wirekind.kindData and its default does not visibly account`
	case kindPing:
		n = 1
	default:
		n = 9
	}
	return n
}

// countingDefault accounts for the stranger: fine.
func countingDefault(k kind) int {
	switch k {
	case kindPing:
		return 1
	default:
		dropped++
		return 0
	}
}

// refusingDefault rejects the stranger with a return: fine.
func refusingDefault(k kind) (int, bool) {
	switch k {
	case kindPing:
	default:
		return 0, false
	}
	return 1, true
}

// panickingDefault refuses loudly: fine.
func panickingDefault(k kind) int {
	switch k {
	case kindPing:
		return 1
	default:
		panic("unknown kind")
	}
}

// notAKindSwitch has no Kind-family case labels: out of scope.
func notAKindSwitch(n int) int {
	switch n {
	case 1:
		return 10
	}
	return 0
}

// hatched records a deliberate subset: upstream decoding already
// rejected every other kind.
func hatched(k kind) int {
	switch k { //fair:ignore wirekind the decoder upstream rejects everything but kindPing before this switch runs
	case kindPing:
		return 1
	}
	return 0
}
