// Package determinism seeds every violation class the determinism rule
// catches, in a package that opts into the sim-deterministic contract
// via the marker below (the fixture path is not on the built-in list).
//
//fair:deterministic
package determinism

import (
	"math/rand"
	"sort"
	"time"
)

var sharedRNG = rand.New(rand.NewSource(1)) // want `package-level rand\.Rand sharedRNG is an RNG stream shared across every caller`

var sharedSource rand.Source // want `package-level rand\.Source sharedSource is an RNG stream`

var rngPerTopic map[string]*rand.Rand // want `package-level rand\.Rand rngPerTopic is an RNG stream`

// Node-scoped streams (fields, locals, parameters) stay legal.
type nodeScoped struct {
	rng *rand.Rand
}

func wallclock() time.Time {
	return time.Now() // want `time\.Now in a sim-deterministic package`
}

func sleepy() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in a sim-deterministic package`
}

func escapeHatch() time.Time {
	return time.Now() //fair:wallclock fixture demonstrates the audited escape hatch
}

func globalDraw() int {
	return rand.Intn(10) // want `rand\.Intn draws from the process-global RNG`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the process-global RNG`
}

func seededDraw(rng *rand.Rand) int {
	return rng.Intn(10) // methods on a seeded source are fine
}

func construct() *rand.Rand {
	return rand.New(rand.NewSource(1)) // constructors stay allowed
}

func orderLeak(m map[int]int, sink func(int)) {
	for k := range m { // want `map iteration order feeds ordering-sensitive logic`
		sink(k)
	}
}

func appendLeak(m map[int]int) []int {
	var keys []int
	for k := range m { // want `map iteration order feeds ordering-sensitive logic \(append in the loop body\)`
		keys = append(keys, k)
	}
	return keys
}

func collectThenSort(m map[int]int) []int {
	var keys []int
	for k := range m { // append-only body sorted below: the sanctioned repair
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func commutative(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func intoAnotherMap(src map[int]int, dst map[int]int) {
	for k, v := range src { // map-to-map transfer observes no order
		dst[k] = v
	}
}
