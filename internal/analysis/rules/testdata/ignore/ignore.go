// Package ignore exercises the driver's suppression audit: the //fair:
// vocabulary is itself verified, so a malformed, unjustified, or stale
// escape hatch is a finding — only a justified hatch that suppresses a
// real diagnostic stays silent.
//
//fair:deterministic
package ignore

import "time"

//fair:typo gibberish // want `unknown //fair: directive "typo"`
var _ = 0

//fair:ignore nosuchrule because reasons // want `//fair:ignore names unknown rule "nosuchrule"`
var _ = 1

//fair:ignore determinism // want `//fair:ignore is missing its justification`
var _ = 2

//fair:ignore determinism justified yet aimed at nothing // want `suppresses nothing`
var _ = 3

func justifiedHatch() time.Time {
	return time.Now() //fair:wallclock a used, justified hatch is silent
}

func unjustifiedHatch() time.Time {
	return time.Now() //fair:wallclock // want `//fair:wallclock is missing its justification` `time\.Now in a sim-deterministic package`
}
