// Package bufown seeds writes into a []byte after its ownership moved
// to a transport Send or a held record — the encode-once aliasing
// hazard the rule exists to catch.
package bufown

type conn struct{}

func (c *conn) Send(to int, buf []byte) error { return nil }

type record struct {
	data []byte
}

func writeAfterSend(c *conn, buf []byte) {
	_ = c.Send(1, buf)
	buf[0] = 0 // want `element write to buf after it was handed to Send`
}

func appendAfterSend(c *conn, buf []byte) []byte {
	_ = c.Send(1, buf)
	return append(buf, 0) // want `append to buf after it was handed to Send`
}

func copyAfterHold(held *record, buf []byte) {
	*held = record{data: buf}
	copy(buf, "xx") // want `copy into buf after it was handed to a held record`
}

func rebindIsFresh(c *conn, buf []byte) {
	_ = c.Send(1, buf)
	buf = make([]byte, 4)
	buf[0] = 1 // rebound to a fresh buffer: the hand-off ended
}

func writeBeforeSend(c *conn, buf []byte) {
	buf[0] = 9 // writes before the hand-off are the encoder's business
	_ = c.Send(1, buf)
}
