// Package cowatomic seeds mutations through Load'ed aliases of
// atomic.Pointer-published values — the half-written-table race the
// copy-on-write discipline exists to prevent.
package cowatomic

import "sync/atomic"

type table struct {
	slots []int
	hits  int
}

type registry struct {
	cur atomic.Pointer[table]
}

func mutateField(r *registry) {
	t := r.cur.Load()
	t.hits++ // want `mutation through an atomic\.Pointer alias \(t\)`
}

func mutateElement(r *registry) {
	t := r.cur.Load()
	t.slots[0] = 1 // want `mutation through an atomic\.Pointer alias \(t\)`
}

func mutateDirect(r *registry) {
	r.cur.Load().hits = 1 // want `mutation through an atomic\.Pointer alias \(the Load result\)`
}

func copyInto(r *registry, src []int) {
	t := r.cur.Load()
	copy(t.slots, src) // want `mutation through an atomic\.Pointer alias \(t\)`
}

func mutateValueCopy(r *registry) {
	t := *r.cur.Load()
	t.slots[0] = 3 // want `mutation through an atomic\.Pointer alias \(t\)`
}

func aliasPropagates(r *registry) {
	t := r.cur.Load()
	u := t
	u.hits++ // want `mutation through an atomic\.Pointer alias \(u\)`
}

func readOnly(r *registry) int {
	t := r.cur.Load()
	return t.hits + t.slots[0] // reads through the alias are the whole point: clean
}

func copyOnWrite(r *registry) {
	old := r.cur.Load()
	fresh := &table{slots: append([]int(nil), old.slots...), hits: old.hits}
	fresh.hits++ // a fresh private copy: clean
	r.cur.Store(fresh)
}
