// Package guardedby seeds the access shapes the guardedby rule must
// divide: Locked-suffix helpers, lock-then-access, and fresh locals
// (fine) versus bare reads and writes (findings), plus the malformed
// annotations the rule must reject.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	n  int //fair:guardedby mu
}

// bumpLocked relies on the repo's convention: *Locked helpers run with
// the lock already held.
func (c *counter) bumpLocked() { c.n++ }

// Bump locks before touching n.
func (c *counter) Bump() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Peek reads n with no lock in sight.
func (c *counter) Peek() int {
	return c.n // want `counter.n is guarded by mu but no mu.Lock\(\)/RLock\(\) precedes this access in Peek`
}

// reset writes before locking: position matters.
func (c *counter) reset() {
	c.n = 0 // want `guarded by mu but no mu.Lock`
	c.mu.Lock()
	c.n = 0
	c.mu.Unlock()
}

// fresh constructs the counter locally: nothing else can see it yet.
func fresh() int {
	c := &counter{}
	c.n = 7
	return c.n
}

func freshValue() counter {
	var c counter
	_ = c
	d := counter{}
	d.n = 3
	return d
}

type gauge struct {
	mu sync.RWMutex
	v  int //fair:guardedby mu
}

// Read holds the read lock: RLock counts.
func (g *gauge) Read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.v
}

// hatched documents an access the rule cannot prove safe.
func (g *gauge) hatched() int {
	return g.v //fair:ignore guardedby the sole caller holds mu across this call; splitting the method would hide the invariant
}

// badMutexName annotates a guard that does not exist as a mutex.
type badMutexName struct {
	lock chan struct{}
	n    int //fair:guardedby lock // want `//fair:guardedby names "lock", which is not a sync.Mutex/RWMutex field of badMutexName`
}

// missingArg forgets the guard name entirely.
type missingArg struct {
	mu sync.Mutex
	n  int //fair:guardedby // want `//fair:guardedby needs the guarding field's name`
}
