// Package dropacct seeds the ways code loses an envelope uncounted,
// against a stub transport with the (int, []byte) error Send shape the
// rule matches structurally.
package dropacct

type conn struct {
	drops int
}

func (c *conn) Send(to int, buf []byte) error { return nil }

var lastErr error

func discard(c *conn, buf []byte) {
	c.Send(1, buf) // want `result of transport Send discarded`
}

func blank(c *conn, buf []byte) {
	_ = c.Send(1, buf) // want `transport Send error assigned to the blank identifier`
}

func stashed(c *conn, buf []byte) {
	lastErr = c.Send(1, buf) // want `transport Send error is never checked`
}

func bailsSilently(c *conn, buf []byte) {
	if err := c.Send(1, buf); err != nil { // want `failure path after transport Send neither counts a drop nor propagates`
		return
	}
}

func eqNilNoElse(c *conn, buf []byte) {
	err := c.Send(1, buf) // want `transport Send error checked with == nil but the failure path falls through uncounted`
	if err == nil {
		return
	}
}

func counted(c *conn, buf []byte) {
	if err := c.Send(1, buf); err != nil {
		c.drops++ // the loss is counted: clean
	}
}

func propagated(c *conn, buf []byte) error {
	if err := c.Send(1, buf); err != nil {
		return err // the caller owns the accounting: clean
	}
	return nil
}

func panics(c *conn, buf []byte) {
	if err := c.Send(1, buf); err != nil {
		panic(err) // crashing cannot lose an envelope silently: clean
	}
}

type envelope struct {
	payload []byte
}

func enqueueSilent(ch chan envelope, e envelope) {
	select {
	case ch <- e:
	default: // want `queue rejection discards an envelope without counting`
	}
}

func enqueueCounted(ch chan envelope, e envelope, dropped *int) {
	select {
	case ch <- e:
	default:
		*dropped++ // inbox overflow is a counted drop: clean
	}
}
