// Interprocedural cases: allocation-freedom flows bottom-up over the
// call graph, so a hot body calling a dirty helper is a finding at the
// call site with the callee chain — while owner-amortized appends,
// caller-buffer appends, the deletion idiom, and hatched callees keep
// their callers clean.
package hotpath

// allocHelper is dirty: its fact carries the make site.
func allocHelper(n int) []byte {
	return make([]byte, n)
}

// deepAlloc is dirty one level removed: the chain threads through it.
func deepAlloc() []byte {
	return allocHelper(8)
}

// cleanHelper allocates nothing.
func cleanHelper(b []byte) int {
	return len(b)
}

type ring struct {
	buf []int
}

// ownerAppend grows the receiver's amortized storage: free by the
// owner's contract, like the buffer slabs.
func (r *ring) ownerAppend(v int) {
	r.buf = append(r.buf, v)
}

// intoCaller appends into the caller's buffer: the wire codec shape,
// free by contract.
func intoCaller(dst []byte, b byte) []byte {
	return append(dst, b)
}

// del is the in-place deletion idiom: both halves slice the same base,
// so the append can never grow.
func del(xs []int, i int) []int {
	return append(xs[:i], xs[i+1:]...)
}

// hatchedInside is itself annotated and has its one allocation audited
// where it happens, so callers need no second hatch.
//
//fair:hotpath
func hatchedInside() *ring {
	return &ring{} //fair:ignore hotpath constructed once per peer at boot, not per message
}

// hotCallsAlloc calls a dirty helper directly.
//
//fair:hotpath
func hotCallsAlloc(n int) []byte {
	return allocHelper(n) // want `call to hotpath.allocHelper in a hot path is not allocation-free: make/new at interproc.go`
}

// hotCallsDeep sees the chain through an intermediate helper; the free
// helper shapes stay silent.
//
//fair:hotpath
func hotCallsDeep(r *ring, xs []int, scratch []byte) int {
	r.ownerAppend(1)
	xs = del(xs, 0)
	scratch = intoCaller(scratch, 7)
	b := deepAlloc() // want `call to hotpath.deepAlloc in a hot path is not allocation-free: calls hotpath.allocHelper → make/new at interproc.go`
	return cleanHelper(b) + len(xs) + len(scratch)
}

// hotHatchedCall audits the dirty call at the site where the finding
// lands.
//
//fair:hotpath
func hotHatchedCall(n int) []byte {
	return allocHelper(n) //fair:ignore hotpath the boot path allocates once; steady state reuses the buffer
}

// hotCallsHatched calls a helper whose allocation is already hatched
// inside: the fact is clean, no finding and no second hatch.
//
//fair:hotpath
func hotCallsHatched() *ring {
	return hatchedInside()
}
