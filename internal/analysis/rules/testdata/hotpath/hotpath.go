// Package hotpath seeds every allocating construct the hotpath rule
// names, inside functions annotated //fair:hotpath, plus the clean
// patterns (scratch reuse, pointer-shaped interface values) that must
// stay silent.
package hotpath

type sink struct{ vals []int }

func (s *sink) push(v int) { s.vals = append(s.vals, v) }

func consume(v any) {}

func spawnee() {}

//fair:hotpath
func hotMake(n int) []byte {
	return make([]byte, n) // want `make in a hot path allocates`
}

//fair:hotpath
func hotNew() *sink {
	return new(sink) // want `new in a hot path allocates`
}

//fair:hotpath
func hotClosure(xs []int) int {
	f := func() int { return len(xs) } // want `closure literal in a hot path`
	return f()
}

//fair:hotpath
func hotSpawn() {
	go spawnee() // want `go statement in a hot path`
}

//fair:hotpath
func hotDefer() {
	defer spawnee() // want `defer in a hot path`
}

//fair:hotpath
func hotAppend(xs []int, v int) []int {
	return append(xs, v) // want `append that can grow in a hot path`
}

//fair:hotpath
func hotScratch(scratch *[]int, n int) []int {
	p := (*scratch)[:0]
	for i := 0; i < n; i++ {
		p = append(p, i) // appends into scratch reset via [:0] amortize to zero: clean
	}
	*scratch = p
	return p
}

//fair:hotpath
func hotLit() []int {
	return []int{1, 2, 3} // want `slice/map literal in a hot path allocates`
}

//fair:hotpath
func hotAddrLit() *sink {
	return &sink{} // want `&composite literal in a hot path escapes`
}

//fair:hotpath
func hotConcat(a, b string) string {
	return a + b // want `string concatenation in a hot path allocates`
}

//fair:hotpath
func hotConv(s string) []byte {
	return []byte(s) // want `string<->\[\]byte conversion in a hot path`
}

//fair:hotpath
func hotBox(n int) {
	consume(n) // want `boxing a non-pointer int into`
}

//fair:hotpath
func hotBoxPtr(p *sink) {
	consume(p) // pointer-shaped values ride the interface word: clean
}

//fair:hotpath
func hotMethodValue(s *sink) func(int) {
	return s.push // want `method value in a hot path allocates a bound closure`
}

//fair:hotpath
func hotJustified(n int) []byte {
	return make([]byte, n) //fair:ignore hotpath fixture shows a justified allocation surviving the audit
}

//fair:hotpath // want `//fair:hotpath must be part of a function's doc comment`
var floating = 0
