package rules_test

import (
	"testing"

	"fairgossip/internal/analysis"
	"fairgossip/internal/analysis/rules"
)

// Each fixture package seeds the violations one analyzer must catch
// (and the clean patterns it must not); the `// want` comments are the
// exact expectations, checked both ways.

func TestDeterminismFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", "determinism", []*analysis.Analyzer{rules.Determinism}, rules.Known())
}

func TestDropAcctFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", "dropacct", []*analysis.Analyzer{rules.DropAcct}, rules.Known())
}

func TestBufOwnFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", "bufown", []*analysis.Analyzer{rules.BufOwn}, rules.Known())
}

func TestCowAtomicFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", "cowatomic", []*analysis.Analyzer{rules.CowAtomic}, rules.Known())
}

func TestHotpathFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", "hotpath", []*analysis.Analyzer{rules.Hotpath}, rules.Known())
}

func TestGoroleakFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", "goroleak", []*analysis.Analyzer{rules.Goroleak}, rules.Known())
}

func TestWirekindFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", "wirekind", []*analysis.Analyzer{rules.Wirekind}, rules.Known())
}

func TestGuardedByFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", "guardedby", []*analysis.Analyzer{rules.GuardedBy}, rules.Known())
}

// TestIgnoreAuditFixture runs the full suite so every suppression audit
// path fires: unknown directives, unknown rules, missing
// justifications, stale ignores, and the one legal justified hatch.
func TestIgnoreAuditFixture(t *testing.T) {
	analysis.RunFixture(t, "testdata", "ignore", rules.All(), rules.Known())
}
