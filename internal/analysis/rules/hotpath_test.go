package rules_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"fairgossip/internal/analysis"
	"fairgossip/internal/analysis/rules"
)

// pinnedHotpaths are the per-round and per-message functions the repo
// has committed to keeping allocation-aware: each must carry the
// //fair:hotpath annotation so the hotpath rule audits its body on
// every fairvet run. Deleting an annotation fails this test — the pin
// is on the contract, not just the analyzer.
var pinnedHotpaths = []struct{ file, fn string }{
	{"../../gossip/peer.go", "Round"},
	{"../../eventsim/sim.go", "ScheduleMsg"},
	{"../../simnet/net.go", "Send"},
	{"../../live/live.go", "round"},
	{"../../live/live.go", "gossip"},
	{"../../randutil/perm.go", "PermInto"},
}

func TestPinnedHotpaths(t *testing.T) {
	fset := token.NewFileSet()
	parsed := make(map[string]*ast.File)
	for _, pin := range pinnedHotpaths {
		f, ok := parsed[pin.file]
		if !ok {
			var err error
			f, err = parser.ParseFile(fset, pin.file, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parsing %s: %v", pin.file, err)
			}
			parsed[pin.file] = f
		}
		found := false
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != pin.fn {
				continue
			}
			if analysis.HasDirective(fn.Doc, analysis.DirHotpath) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: func %s must carry //fair:hotpath in its doc comment (the pinned per-round path lost its annotation)", pin.file, pin.fn)
		}
	}
}

// TestFairvetClean is the same gate `make lint` enforces, as a test:
// the whole tree carries zero unsuppressed findings and every escape
// hatch is justified and live.
func TestFairvetClean(t *testing.T) {
	pkgs, err := analysis.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	findings, err := analysis.Run(pkgs, rules.All(), nil)
	if err != nil {
		t.Fatalf("running fairvet: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
