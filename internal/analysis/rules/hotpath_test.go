package rules_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"testing"

	"fairgossip/internal/analysis"
	"fairgossip/internal/analysis/rules"
)

// pinnedHotpaths are the per-round and per-message functions the repo
// has committed to keeping allocation-aware: each must carry the
// //fair:hotpath annotation so the hotpath rule audits its body on
// every fairvet run. Deleting an annotation fails this test — the pin
// is on the contract, not just the analyzer.
var pinnedHotpaths = []struct{ file, fn string }{
	{"../../gossip/peer.go", "Round"},
	{"../../eventsim/sim.go", "ScheduleMsg"},
	{"../../simnet/net.go", "Send"},
	{"../../live/live.go", "round"},
	{"../../live/live.go", "gossip"},
	{"../../randutil/perm.go", "PermInto"},
}

func TestPinnedHotpaths(t *testing.T) {
	fset := token.NewFileSet()
	parsed := make(map[string]*ast.File)
	for _, pin := range pinnedHotpaths {
		f, ok := parsed[pin.file]
		if !ok {
			var err error
			f, err = parser.ParseFile(fset, pin.file, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				t.Fatalf("parsing %s: %v", pin.file, err)
			}
			parsed[pin.file] = f
		}
		found := false
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Name.Name != pin.fn {
				continue
			}
			if analysis.HasDirective(fn.Doc, analysis.DirHotpath) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: func %s must carry //fair:hotpath in its doc comment (the pinned per-round path lost its annotation)", pin.file, pin.fn)
		}
	}
}

// TestPinnedHotpathClosure pins the interprocedural contract behind
// the annotations. It recomputes the transitive closure of the six
// pinned hot paths — every function they reach through statically
// resolved, unhatched ordinary calls — and asserts (a) the closure
// actually extends beyond the annotated bodies, (b) it crosses the
// package boundary the facts layer exists for (live's gossip round
// into the shared buffer's selection helper), and (c) the hotpath rule
// finds nothing anywhere in the tree, so every closure member is
// allocation-free, not just the six annotated roots.
func TestPinnedHotpathClosure(t *testing.T) {
	pkgs, err := analysis.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}

	type node struct {
		fn    *types.Func
		calls []analysis.CallSite
		fset  *token.FileSet
	}
	byID := make(map[string]*node)
	hatched := make(map[string]map[int]bool) // file → lines with //fair:ignore hotpath
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, d := range analysis.ParseDirectives(f) {
				if d.Kind == analysis.DirIgnore && d.Rule == "hotpath" {
					p := pkg.Fset.Position(d.Comment.Pos())
					if hatched[p.Filename] == nil {
						hatched[p.Filename] = make(map[int]bool)
					}
					hatched[p.Filename][p.Line] = true
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				byID[analysis.FuncID(fn)] = &node{fn: fn, calls: analysis.CalleesIn(pkg.Info, fd.Body), fset: pkg.Fset}
			}
		}
	}

	// Seed the walk with the pinned functions, located by package path
	// (derived from the pin's file) and name.
	var queue []string
	for _, pin := range pinnedHotpaths {
		pkgPath := "fairgossip/internal/" + filepath.Base(filepath.Dir(pin.file))
		found := false
		for id, n := range byID {
			if n.fn.Pkg() != nil && n.fn.Pkg().Path() == pkgPath && n.fn.Name() == pin.fn {
				queue = append(queue, id)
				found = true
			}
		}
		if !found {
			t.Fatalf("pinned hot path %s.%s not found in the loaded tree", pkgPath, pin.fn)
		}
	}
	sort.Strings(queue)
	seeds := len(queue)

	closure := make(map[string]bool)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if closure[id] {
			continue
		}
		closure[id] = true
		n := byID[id]
		for _, call := range n.calls {
			if call.Kind != analysis.EdgeCall || call.Callee == nil || call.Iface {
				continue
			}
			p := n.fset.Position(call.Pos)
			if hatched[p.Filename][p.Line] || hatched[p.Filename][p.Line-1] {
				continue // audited at the site: outside the allocation-free contract
			}
			cid := analysis.FuncID(call.Callee)
			if _, local := byID[cid]; local && !closure[cid] {
				queue = append(queue, cid)
			}
		}
	}

	if len(closure) <= seeds {
		t.Errorf("transitive closure has %d members for %d pins: the pinned paths should reach their helpers", len(closure), seeds)
	}
	const crossPkg = "(*fairgossip/internal/gossip.Buffer).SelectInto"
	if !closure[crossPkg] {
		t.Errorf("closure is missing %s: the live round path no longer reaches the buffer selection helper across packages (closure: %d members)", crossPkg, len(closure))
	}

	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{rules.Hotpath}, rules.Known())
	if err != nil {
		t.Fatalf("running hotpath: %v", err)
	}
	for _, f := range findings {
		t.Errorf("hotpath closure is not allocation-free: %s", f)
	}
}

// TestFairvetClean is the same gate `make lint` enforces, as a test:
// the whole tree carries zero unsuppressed findings and every escape
// hatch is justified and live.
func TestFairvetClean(t *testing.T) {
	pkgs, err := analysis.Load("../../..", "./...")
	if err != nil {
		t.Fatalf("loading tree: %v", err)
	}
	findings, err := analysis.Run(pkgs, rules.All(), nil)
	if err != nil {
		t.Fatalf("running fairvet: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
