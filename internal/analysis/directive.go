package analysis

import (
	"go/ast"
	"strings"
)

// The //fair: comment vocabulary. Directives are ordinary line comments
// beginning with "//fair:" (no space, like //go: directives):
//
//	//fair:ignore <rule> <reason>   suppress rule's finding on this or
//	                                the next line; the reason is
//	                                mandatory and the driver verifies
//	                                the comment actually suppresses
//	                                something — stale or unjustified
//	                                ignores are themselves findings.
//	//fair:wallclock <reason>       the audited escape hatch for the
//	                                determinism rule's wallclock
//	                                category only (time.Now and
//	                                friends); same verification.
//	//fair:hotpath                  marks the following function as an
//	                                allocation-free hot path; the
//	                                hotpath rule checks its body and,
//	                                through exported facts, every
//	                                function it transitively calls.
//	//fair:deterministic            marks the file's package as
//	                                sim-deterministic, extending the
//	                                determinism rule's built-in package
//	                                list (fixtures use this; new sim
//	                                packages should too).
//	//fair:guardedby <field>        on a struct field: every access must
//	                                hold the named sibling mutex (the
//	                                guardedby rule checks accessors).
//
// One comment may carry several directives back to back —
// `//fair:ignore hotpath reason //fair:ignore goroleak reason` — for
// lines where two rules fire at once. Files with CRLF line endings
// parse identically: stray carriage returns are whitespace to the
// field splitter.
const (
	DirIgnore        = "ignore"
	DirWallclock     = "wallclock"
	DirHotpath       = "hotpath"
	DirDeterministic = "deterministic"
	DirGuardedBy     = "guardedby"
)

// A Directive is one parsed //fair: comment (or one segment of a
// multi-directive comment).
type Directive struct {
	Comment *ast.Comment
	Kind    string // one of the Dir* constants, or the raw unknown word
	Known   bool   // Kind is one of the Dir* constants
	Rule    string // DirIgnore only: the rule being suppressed
	Arg     string // DirGuardedBy only: the guarding field name
	Reason  string // DirIgnore, DirWallclock: the justification
}

// ParseDirectives returns every //fair: directive in the file, in
// source order.
func ParseDirectives(f *ast.File) []Directive {
	var ds []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			ds = append(ds, parseComment(c)...)
		}
	}
	return ds
}

// parseComment returns the directives in one comment: nil for ordinary
// comments, one entry per "//fair:" segment otherwise.
func parseComment(c *ast.Comment) []Directive {
	text := c.Text
	if !strings.HasPrefix(text, "//fair:") {
		return nil
	}
	// Fixture files append `// want "..."` expectations to the same
	// comment; they are not part of the directive.
	if i := strings.Index(text, "// want"); i >= 0 {
		text = text[:i]
	}
	// Several directives may share one comment, each introduced by its
	// own marker; the split's leading empty segment is the text before
	// the first marker, i.e. nothing.
	segs := strings.Split(text, "//fair:")
	ds := make([]Directive, 0, len(segs)-1)
	for _, seg := range segs[1:] {
		ds = append(ds, parseSegment(c, seg))
	}
	return ds
}

func parseSegment(c *ast.Comment, seg string) Directive {
	d := Directive{Comment: c}
	// Fields splits on any whitespace, so CRLF files' trailing \r needs
	// no special casing.
	fields := strings.Fields(seg)
	if len(fields) == 0 {
		return d // Kind "", Known false: audited as unknown
	}
	d.Kind = fields[0]
	switch d.Kind {
	case DirIgnore:
		if len(fields) > 1 {
			d.Rule = fields[1]
		}
		d.Reason = strings.Join(fields[2:], " ")
		d.Known = true
	case DirWallclock:
		d.Reason = strings.Join(fields[1:], " ")
		d.Known = true
	case DirGuardedBy:
		if len(fields) > 1 {
			d.Arg = fields[1]
		}
		d.Known = true
	case DirHotpath, DirDeterministic:
		d.Known = true
	}
	return d
}

// HasDirective reports whether the comment group contains a //fair:
// directive of the given kind (used to find //fair:hotpath function
// annotations and //fair:deterministic package markers).
func HasDirective(cg *ast.CommentGroup, kind string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		for _, d := range parseComment(c) {
			if d.Kind == kind {
				return true
			}
		}
	}
	return false
}

// DirectiveArg returns the argument of the first directive of the
// given kind in the comment group ("" if absent). Guardedby checks use
// it to read the guarding field name off a struct field's comment.
func DirectiveArg(cg *ast.CommentGroup, kind string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		for _, d := range parseComment(c) {
			if d.Kind == kind {
				return d.Arg, true
			}
		}
	}
	return "", false
}

// FileMarkedDeterministic reports whether any comment in the file is a
// //fair:deterministic package marker.
func FileMarkedDeterministic(f *ast.File) bool {
	for _, d := range ParseDirectives(f) {
		if d.Kind == DirDeterministic {
			return true
		}
	}
	return false
}
