package analysis

import (
	"go/ast"
	"strings"
)

// The //fair: comment vocabulary. Directives are ordinary line comments
// beginning with "//fair:" (no space, like //go: directives):
//
//	//fair:ignore <rule> <reason>   suppress rule's finding on this or
//	                                the next line; the reason is
//	                                mandatory and the driver verifies
//	                                the comment actually suppresses
//	                                something — stale or unjustified
//	                                ignores are themselves findings.
//	//fair:wallclock <reason>       the audited escape hatch for the
//	                                determinism rule's wallclock
//	                                category only (time.Now and
//	                                friends); same verification.
//	//fair:hotpath                  marks the following function as an
//	                                allocation-free hot path; the
//	                                hotpath rule checks its body.
//	//fair:deterministic            marks the file's package as
//	                                sim-deterministic, extending the
//	                                determinism rule's built-in package
//	                                list (fixtures use this; new sim
//	                                packages should too).
const (
	DirIgnore        = "ignore"
	DirWallclock     = "wallclock"
	DirHotpath       = "hotpath"
	DirDeterministic = "deterministic"
)

// A Directive is one parsed //fair: comment.
type Directive struct {
	Comment *ast.Comment
	Kind    string // one of the Dir* constants, or the raw unknown word
	Known   bool   // Kind is one of the Dir* constants
	Rule    string // DirIgnore only: the rule being suppressed
	Reason  string // DirIgnore, DirWallclock: the justification
}

// ParseDirectives returns every //fair: directive in the file, in
// source order.
func ParseDirectives(f *ast.File) []Directive {
	var ds []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := parseDirective(c); ok {
				ds = append(ds, d)
			}
		}
	}
	return ds
}

func parseDirective(c *ast.Comment) (Directive, bool) {
	text, ok := strings.CutPrefix(c.Text, "//fair:")
	if !ok {
		return Directive{}, false
	}
	// Fixture files append `// want "..."` expectations to the same
	// comment; they are not part of the directive.
	if i := strings.Index(text, "// want"); i >= 0 {
		text = text[:i]
	}
	d := Directive{Comment: c}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		d.Kind = ""
		return d, true
	}
	d.Kind = fields[0]
	switch d.Kind {
	case DirIgnore:
		if len(fields) > 1 {
			d.Rule = fields[1]
		}
		d.Reason = strings.Join(fields[2:], " ")
		d.Known = true
	case DirWallclock:
		d.Reason = strings.Join(fields[1:], " ")
		d.Known = true
	case DirHotpath, DirDeterministic:
		d.Known = true
	}
	return d, true
}

// HasDirective reports whether the comment group contains a //fair:
// directive of the given kind (used to find //fair:hotpath function
// annotations and //fair:deterministic package markers).
func HasDirective(cg *ast.CommentGroup, kind string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if d, ok := parseDirective(c); ok && d.Kind == kind {
			return true
		}
	}
	return false
}

// FileMarkedDeterministic reports whether any comment in the file is a
// //fair:deterministic package marker.
func FileMarkedDeterministic(f *ast.File) bool {
	for _, d := range ParseDirectives(f) {
		if d.Kind == DirDeterministic {
			return true
		}
	}
	return false
}
