package analysis

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// The loader's one expensive step is `go list -export -deps`: it makes
// the go command compile export data for every dependency of every
// target. On a warm build cache that is still a multi-second walk of
// the module graph, and `make lint` pays it on every run. When the
// FAIRVET_CACHE environment variable names a directory, listPackages
// memoizes the raw `go list` output there, keyed by the query (module
// dir, patterns, toolchain version) and validated by a stamp of every
// input that could change the answer: the module files, each target's
// Go sources (size+mtime), and the existence of each referenced export
// file. Any mismatch — an edited file, a pruned build cache, a new
// toolchain — silently falls back to a fresh `go list` and rewrites
// the entry. The cache is opt-in precisely because it trades a
// re-validation race (editing a file twice within one mtime tick) for
// speed; CI and `make lint` opt in, one-off runs don't have to.

func listPackages(dir string, patterns []string) ([]byte, error) {
	cacheDir := os.Getenv("FAIRVET_CACHE")
	if cacheDir == "" {
		return runGoList(dir, patterns)
	}
	key := cacheKey(dir, patterns)
	if out, ok := readListCache(cacheDir, key); ok {
		return out, nil
	}
	out, err := runGoList(dir, patterns)
	if err != nil {
		return nil, err
	}
	writeListCache(cacheDir, key, dir, out)
	return out, nil
}

func runGoList(dir string, patterns []string) ([]byte, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Imports,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	return out, nil
}

func cacheKey(dir string, patterns []string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		abs = dir
	}
	h := sha256.Sum256([]byte(abs + "\x00" + strings.Join(patterns, "\x00") + "\x00" + runtime.Version()))
	return hex.EncodeToString(h[:16])
}

// A stampEntry records one input file's identity at cache-write time.
// Export files get existence-only stamps: their names are content
// hashes inside the go build cache, so a stale name simply vanishes.
type stampEntry struct {
	Path      string
	Size      int64
	MtimeNano int64
	ExistOnly bool
}

func readListCache(cacheDir, key string) ([]byte, bool) {
	stampBytes, err := os.ReadFile(filepath.Join(cacheDir, key+".stamp.json"))
	if err != nil {
		return nil, false
	}
	var stamps []stampEntry
	if json.Unmarshal(stampBytes, &stamps) != nil {
		return nil, false
	}
	for _, s := range stamps {
		fi, err := os.Stat(s.Path)
		if err != nil {
			return nil, false
		}
		if s.ExistOnly {
			continue
		}
		if fi.Size() != s.Size || fi.ModTime().UnixNano() != s.MtimeNano {
			return nil, false
		}
	}
	out, err := os.ReadFile(filepath.Join(cacheDir, key+".list.json"))
	if err != nil {
		return nil, false
	}
	return out, true
}

func writeListCache(cacheDir, key, dir string, out []byte) {
	var stamps []stampEntry
	stampFile := func(path string, existOnly bool) {
		fi, err := os.Stat(path)
		if err != nil {
			return
		}
		stamps = append(stamps, stampEntry{
			Path:      path,
			Size:      fi.Size(),
			MtimeNano: fi.ModTime().UnixNano(),
			ExistOnly: existOnly,
		})
	}
	for _, name := range []string{"go.mod", "go.sum"} {
		if p := filepath.Join(dir, name); fileExists(p) {
			stampFile(p, false)
		}
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return // don't cache output we can't even decode
		}
		if p.Export != "" {
			stampFile(p.Export, true)
		}
		if p.Standard || p.DepOnly {
			continue
		}
		for _, gf := range p.GoFiles {
			path := gf
			if !filepath.IsAbs(path) {
				path = filepath.Join(p.Dir, gf)
			}
			stampFile(path, false)
		}
	}
	stampBytes, err := json.Marshal(stamps)
	if err != nil {
		return
	}
	if os.MkdirAll(cacheDir, 0o755) != nil {
		return
	}
	// Order matters for crash consistency: the stamp validates the list
	// file, so write the list first — a stamp without a list just misses.
	if os.WriteFile(filepath.Join(cacheDir, key+".list.json"), out, 0o644) != nil {
		return
	}
	_ = os.WriteFile(filepath.Join(cacheDir, key+".stamp.json"), stampBytes, 0o644)
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
