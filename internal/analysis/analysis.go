// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The repo's correctness story (fixed-seed determinism, exact drop
// conservation, encode-once buffer ownership, copy-on-write publication,
// allocation-free hot paths) is enforced at runtime by audits and
// AllocsPerRun pins; the analyzers under rules/ move those checks to
// review time. The x/tools module itself is deliberately not a
// dependency — the module has zero third-party requirements and the
// toolchain image is offline — so this package carries the three pieces
// the real framework would provide: the Analyzer/Pass/Diagnostic types
// (this file), a package loader built on `go list -export` plus the
// stdlib gc importer (load.go), and a driver that applies the
// //fair:ignore suppression vocabulary and verifies every suppression
// is justified (run.go). Fixture tests run through fixture.go, which
// mirrors analysistest's `// want "regex"` convention.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named rule: a function run once per package.
type Analyzer struct {
	// Name identifies the rule in output and in //fair:ignore comments.
	Name string
	// Doc is a one-paragraph description of the invariant the rule
	// guards, shown by `fairvet -list`.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass) error
}

// A Pass connects one Analyzer run to one loaded package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Path is the package's import path (fixtures get their fixture
	// module path, e.g. "fixtures/hotpath").
	Path string

	pkg   *Package
	facts *FactStore
	diags *[]Diagnostic
}

// ExportFact records a cross-package fact under key (see facts.go for
// the key conventions). Facts survive for the rest of the Run: packages
// are processed in dependency order, so a fact exported here is visible
// to every later pass, including passes over importing packages.
func (p *Pass) ExportFact(key string, fact any) {
	p.facts.Export(key, fact)
}

// LookupFact returns the fact exported under key by this or any earlier
// pass in the Run.
func (p *Pass) LookupFact(key string) (any, bool) {
	return p.facts.Lookup(key)
}

// Report records a finding at pos. Category subdivides a rule for
// targeted escape hatches (the determinism rule's "wallclock" category
// is matched by //fair:wallclock comments); it may be empty.
func (p *Pass) Report(pos token.Pos, category, message string) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Rule:     p.Analyzer.Name,
		Category: category,
		Message:  message,
	})
}

// Reportf is Report with fmt.Sprintf formatting.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	p.Report(pos, category, fmt.Sprintf(format, args...))
}

// A Diagnostic is one finding before suppression filtering.
type Diagnostic struct {
	Pos      token.Pos
	Rule     string
	Category string
	Message  string
}

// A Finding is one reportable result after suppression filtering, with
// the position resolved for printing.
type Finding struct {
	Position token.Position
	Rule     string
	Category string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Position, f.Rule, f.Message)
}
