package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parsing test source: %v", err)
	}
	return fset, f
}

// TestParseDirectivesCRLF checks that files with Windows line endings
// parse to the same directives: the field splitter treats the stray
// carriage return as whitespace.
func TestParseDirectivesCRLF(t *testing.T) {
	src := strings.Join([]string{
		"package p",
		"",
		"func f() {",
		"\t_ = 1 //fair:ignore hotpath reason words here",
		"}",
		"",
		"type s struct {",
		"\tn int //fair:guardedby mu",
		"}",
		"",
	}, "\r\n")
	_, f := parseSrc(t, src)
	ds := ParseDirectives(f)
	if len(ds) != 2 {
		t.Fatalf("got %d directives, want 2: %+v", len(ds), ds)
	}
	ig := ds[0]
	if ig.Kind != DirIgnore || ig.Rule != "hotpath" || ig.Reason != "reason words here" {
		t.Errorf("CRLF ignore parsed as %+v", ig)
	}
	if strings.ContainsRune(ig.Reason, '\r') {
		t.Errorf("reason leaked a carriage return: %q", ig.Reason)
	}
	gb := ds[1]
	if gb.Kind != DirGuardedBy || gb.Arg != "mu" || strings.ContainsRune(gb.Arg, '\r') {
		t.Errorf("CRLF guardedby parsed as %+v", gb)
	}
}

// TestParseDirectivesMultiPerComment checks the back-to-back form for
// lines where two rules fire at once: one comment, several directives.
func TestParseDirectivesMultiPerComment(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //fair:ignore hotpath reason one //fair:ignore goroleak reason two
}
`
	_, f := parseSrc(t, src)
	ds := ParseDirectives(f)
	if len(ds) != 2 {
		t.Fatalf("got %d directives, want 2: %+v", len(ds), ds)
	}
	if ds[0].Rule != "hotpath" || ds[0].Reason != "reason one" {
		t.Errorf("first segment parsed as %+v", ds[0])
	}
	if ds[1].Rule != "goroleak" || ds[1].Reason != "reason two" {
		t.Errorf("second segment parsed as %+v", ds[1])
	}
}

// TestParseDirectivesWantSuffix checks the fixture convention: a
// trailing `// want "..."` expectation on the directive's own comment
// is not part of the directive — even when the want text itself quotes
// a //fair: marker.
func TestParseDirectivesWantSuffix(t *testing.T) {
	src := "package p\n\nfunc f() {\n\t_ = 1 //fair:ignore hotpath the reason // want `//fair:ignore names unknown rule`\n}\n"
	_, f := parseSrc(t, src)
	ds := ParseDirectives(f)
	if len(ds) != 1 {
		t.Fatalf("got %d directives, want 1: %+v", len(ds), ds)
	}
	if ds[0].Rule != "hotpath" || ds[0].Reason != "the reason" {
		t.Errorf("directive parsed as %+v", ds[0])
	}
}

// TestDirectiveArgTrailingWords checks that //fair:guardedby takes one
// argument and tolerates prose after it.
func TestDirectiveArgTrailingWords(t *testing.T) {
	src := `package p

type s struct {
	n int //fair:guardedby mu -- set once by the dispatcher, read everywhere
}
`
	_, f := parseSrc(t, src)
	ds := ParseDirectives(f)
	if len(ds) != 1 || ds[0].Kind != DirGuardedBy {
		t.Fatalf("got %+v, want one guardedby directive", ds)
	}
	if ds[0].Arg != "mu" {
		t.Errorf("Arg = %q, want %q", ds[0].Arg, "mu")
	}
}

// checkSrc type-checks one dependency-free source file into a Package
// the driver can run over, bypassing the go list loader.
func checkSrc(t *testing.T, src string) *Package {
	t.Helper()
	fset, f := parseSrc(t, src)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking test source: %v", err)
	}
	return &Package{
		Path:   "p",
		Name:   "p",
		Fset:   fset,
		Syntax: []*ast.File{f},
		Types:  tpkg,
		Info:   info,
	}
}

// TestInactiveRuleIgnoreStaysLive pins the -rules subset semantics: an
// ignore naming a known rule that is not in the active set must be
// left alone — neither a stale-hatch finding (it may well suppress
// something when the full suite runs) nor an unknown-rule finding. The
// same hatch under the full vocabulary-but-active run IS stale, and
// under a vocabulary that has never heard of the rule it is unknown.
func TestInactiveRuleIgnoreStaysLive(t *testing.T) {
	const src = `package p

func f() int {
	x := 1 //fair:ignore hotpath disabled-run hatch: must stay quiet, not go stale
	return x
}
`
	noop := func(name string) *Analyzer {
		return &Analyzer{Name: name, Doc: "noop", Run: func(*Pass) error { return nil }}
	}

	run := func(t *testing.T, analyzers []*Analyzer, known map[string]bool) []Finding {
		t.Helper()
		findings, err := Run([]*Package{checkSrc(t, src)}, analyzers, known)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return findings
	}

	// hotpath known but inactive: the hatch is live, zero findings.
	fs := run(t, []*Analyzer{noop("other")}, map[string]bool{"other": true, "hotpath": true})
	for _, f := range fs {
		t.Errorf("known-but-inactive rule hatch reported: %s", f)
	}

	// hotpath active (and reporting nothing here): now the hatch really
	// is stale and the audit must say so.
	fs = run(t, []*Analyzer{noop("hotpath")}, nil)
	if len(fs) != 1 || fs[0].Rule != DirectiveRule || fs[0].Category != "unused" {
		t.Errorf("active-rule stale hatch: got %v, want one %s/unused finding", fs, DirectiveRule)
	}

	// hotpath outside the vocabulary entirely: unknown rule.
	fs = run(t, []*Analyzer{noop("other")}, map[string]bool{"other": true})
	if len(fs) != 1 || fs[0].Category != "unknown-rule" {
		t.Errorf("unknown-rule hatch: got %v, want one %s/unknown-rule finding", fs, DirectiveRule)
	}
}
