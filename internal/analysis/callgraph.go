package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The call graph is the conservative static view interprocedural rules
// walk: every call whose callee the type-checker can name — direct
// function calls, method calls on concrete receivers, the callee inside
// go and defer statements — becomes an edge. What it deliberately does
// NOT resolve: calls through function-typed variables and calls on
// interface receivers (the callee set is unknowable without whole-
// program pointer analysis), which appear as sites with a nil Callee so
// a rule can choose how conservative to be about them.

// EdgeKind classifies how a call site transfers control.
type EdgeKind int

const (
	// EdgeCall is an ordinary call: the callee runs on this goroutine
	// before the next statement.
	EdgeCall EdgeKind = iota
	// EdgeGo spawns the callee on a new goroutine.
	EdgeGo
	// EdgeDefer schedules the callee for function exit.
	EdgeDefer
)

// A CallSite is one call found in a function body (nested function
// literals excluded — their calls only run if the literal itself is
// invoked, and the literal is its own analysis subject).
type CallSite struct {
	Pos  token.Pos
	Kind EdgeKind
	// Callee is the statically resolved target, nil when the call is
	// dynamic (a function-typed variable, a bound method value).
	Callee *types.Func
	// Iface marks a call on an interface receiver: Callee names the
	// interface method, not a body.
	Iface bool
	// Lit is set when the callee is a function literal invoked (or
	// spawned, or deferred) in place; Callee is nil for these.
	Lit *ast.FuncLit
}

// A FuncNode is one function declared in the analyzed package.
type FuncNode struct {
	Fn    *types.Func
	ID    string // FuncID(Fn)
	Decl  *ast.FuncDecl
	Calls []CallSite // sites in Decl.Body, outside nested literals
}

// A CallGraph indexes every declared function of one package.
type CallGraph struct {
	Funcs []*FuncNode // source order
	ByID  map[string]*FuncNode
	ByObj map[*types.Func]*FuncNode
}

// Graph returns the package's call graph, building it on first use.
func (p *Pass) Graph() *CallGraph {
	if p.pkg.graph == nil {
		p.pkg.graph = buildCallGraph(p.Files, p.TypesInfo)
	}
	return p.pkg.graph
}

func buildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{
		ByID:  make(map[string]*FuncNode),
		ByObj: make(map[*types.Func]*FuncNode),
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &FuncNode{
				Fn:    fn,
				ID:    FuncID(fn),
				Decl:  fd,
				Calls: CalleesIn(info, fd.Body),
			}
			g.Funcs = append(g.Funcs, node)
			g.ByID[node.ID] = node
			g.ByObj[fn] = node
		}
	}
	return g
}

// CalleesIn walks body and returns every call site at this function's
// level: nested function literals are not descended into (each literal
// is a separate potential entry point), but a literal invoked, spawned,
// or deferred in place is returned as a site with Lit set.
func CalleesIn(info *types.Info, body ast.Node) []CallSite {
	var sites []CallSite
	var walk func(n ast.Node, kind EdgeKind) bool
	classify := func(call *ast.CallExpr, kind EdgeKind) {
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			sites = append(sites, CallSite{Pos: call.Pos(), Kind: kind, Lit: lit})
			// The literal's body runs with the call: descend at the same
			// edge kind so its own sites are attributed here.
			ast.Inspect(lit.Body, func(n ast.Node) bool { return walk(n, kind) })
			return
		}
		fn, iface := resolveCallee(info, call)
		sites = append(sites, CallSite{Pos: call.Pos(), Kind: kind, Callee: fn, Iface: iface})
	}
	walk = func(n ast.Node, kind EdgeKind) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a value, not a call: its body is cold until invoked
		case *ast.GoStmt:
			classify(n.Call, EdgeGo)
			// Arguments are evaluated on the spawning goroutine; any
			// calls inside them are ordinary edges.
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, func(m ast.Node) bool { return walk(m, EdgeCall) })
			}
			return false
		case *ast.DeferStmt:
			classify(n.Call, EdgeDefer)
			for _, arg := range n.Call.Args {
				ast.Inspect(arg, func(m ast.Node) bool { return walk(m, EdgeCall) })
			}
			return false
		case *ast.CallExpr:
			classify(n, kind)
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool { return walk(n, EdgeCall) })
	return sites
}

// resolveCallee names the called function when the type-checker can:
// package functions, methods (concrete or interface), and imported
// functions. Builtins, conversions, and dynamic calls yield nil.
func resolveCallee(info *types.Info, call *ast.CallExpr) (fn *types.Func, iface bool) {
	var obj types.Object
	switch e := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[e]
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
		if sel, ok := info.Selections[e]; ok && sel.Kind() == types.MethodVal {
			iface = types.IsInterface(sel.Recv())
		}
	case *ast.IndexExpr:
		// Generic instantiation f[T](...): the identifier under the
		// index names the function.
		if id, ok := e.X.(*ast.Ident); ok {
			obj = info.Uses[id]
		}
	default:
		return nil, false
	}
	f, ok := obj.(*types.Func)
	if !ok {
		return nil, false
	}
	return f, iface
}
