package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestListPackagesCache exercises the FAIRVET_CACHE memoization of the
// `go list -export` output: a second identical query is served
// byte-identically from the cache, a drifted input stamp misses, and
// the miss transparently falls back to a fresh go list.
func TestListPackagesCache(t *testing.T) {
	cacheDir := t.TempDir()
	t.Setenv("FAIRVET_CACHE", cacheDir)
	const dir = "rules/testdata"
	patterns := []string{"./wirekind"}

	out1, err := listPackages(dir, patterns)
	if err != nil {
		t.Fatalf("first listPackages: %v", err)
	}
	key := cacheKey(dir, patterns)
	if _, err := os.Stat(filepath.Join(cacheDir, key+".list.json")); err != nil {
		t.Fatalf("cache entry not written: %v", err)
	}

	out2, err := listPackages(dir, patterns)
	if err != nil {
		t.Fatalf("second listPackages: %v", err)
	}
	if !bytes.Equal(out1, out2) {
		t.Errorf("cached output differs from the original")
	}

	// Drift one content-stamped input: the stamp must stop validating.
	stampPath := filepath.Join(cacheDir, key+".stamp.json")
	raw, err := os.ReadFile(stampPath)
	if err != nil {
		t.Fatalf("reading stamp: %v", err)
	}
	var stamps []stampEntry
	if err := json.Unmarshal(raw, &stamps); err != nil {
		t.Fatalf("decoding stamp: %v", err)
	}
	drifted := false
	for i := range stamps {
		if !stamps[i].ExistOnly {
			stamps[i].Size++
			drifted = true
			break
		}
	}
	if !drifted {
		t.Fatal("stamp has no content-stamped entries to drift")
	}
	raw, err = json.Marshal(stamps)
	if err != nil {
		t.Fatalf("re-encoding stamp: %v", err)
	}
	if err := os.WriteFile(stampPath, raw, 0o644); err != nil {
		t.Fatalf("rewriting stamp: %v", err)
	}
	if _, ok := readListCache(cacheDir, key); ok {
		t.Error("drifted stamp still validates; stale go list output would be reused")
	}

	// The miss falls back to go list and rewrites the entry.
	out3, err := listPackages(dir, patterns)
	if err != nil {
		t.Fatalf("listPackages after invalidation: %v", err)
	}
	if len(out3) == 0 {
		t.Fatal("fallback go list returned nothing")
	}
	if _, ok := readListCache(cacheDir, key); !ok {
		t.Error("cache entry not rewritten after the miss")
	}
}
