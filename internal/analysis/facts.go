package analysis

import (
	"go/types"
)

// The facts layer is the cross-function half of the framework: an
// analyzer running on package P can export a fact about one of P's
// functions (or fields, or types), and an analyzer running later — on P
// or on any package that imports P — can look that fact up. It is the
// offline counterpart of x/tools' Facts mechanism, with two deliberate
// simplifications:
//
//   - Facts are keyed by stable strings, not object identity. The
//     loader type-checks each target package from source but imports its
//     dependencies from gc export data, so the *types.Object for
//     gossip.(*Peer).Round seen while analyzing gossip is NOT the same
//     pointer as the one seen while analyzing live. FuncID (the
//     type-checker's FullName, e.g.
//     "(*fairgossip/internal/gossip.Peer).Round") is identical in both
//     views, so it is the key.
//
//   - Facts must be exported fully resolved. Run processes packages in
//     dependency order (Load topologically sorts its targets), so by the
//     time live is analyzed every fact about gossip already exists — but
//     gossip's syntax is no longer in reach. An analyzer therefore
//     resolves transitive properties (allocation-freedom, loop
//     termination) within the package, against its own call graph plus
//     the already-final facts of its dependencies, and exports only the
//     finished answer.
//
// Analyzers namespace their keys ("hotpath:<FuncID>", "guardedby:<pkg>.
// <Struct>.<field>") so two rules never collide on one object.

// A FactStore accumulates exported facts across one Run. It is shared
// by every pass in the run and is safe for the driver's sequential
// package-by-package execution (no internal locking: analyzers run one
// at a time).
type FactStore struct {
	m map[string]any
}

// NewFactStore returns an empty store. Run creates one per invocation;
// tests that drive analyzers directly can too.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[string]any)}
}

// Export records fact under key, replacing any previous value.
func (s *FactStore) Export(key string, fact any) {
	s.m[key] = fact
}

// Lookup returns the fact exported under key, if any.
func (s *FactStore) Lookup(key string) (any, bool) {
	f, ok := s.m[key]
	return f, ok
}

// FuncID returns the stable cross-package identity of a function: the
// type-checker's FullName, which spells the package path and — for
// methods — the receiver type, identically whether the function was
// type-checked from source or imported from export data.
func FuncID(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	return fn.FullName()
}
