package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// DirectiveRule is the pseudo-rule under which the driver reports
// suppression bookkeeping violations: malformed //fair: comments,
// ignores naming unknown rules, missing justifications, and ignores
// that suppress nothing. These findings are not themselves
// suppressible — they are the audit trail of the escape hatches.
const DirectiveRule = "directive"

// suppressor is one //fair:ignore or //fair:wallclock comment being
// tracked through a Run.
type suppressor struct {
	d     Directive
	file  string
	line  int
	valid bool // well-formed: known rule (ignore) and non-empty reason
	used  bool
}

// Run executes the analyzers over every package and returns the
// findings that survive suppression, plus the directive-audit findings.
//
// A diagnostic is suppressed by a well-formed //fair:ignore naming its
// rule, or (for the determinism rule's wallclock category only) a
// //fair:wallclock comment, on the same line or the line above. Every
// suppression must carry a justification and must actually suppress
// something; violations surface as findings under DirectiveRule.
//
// known is the full rule vocabulary for validating //fair:ignore
// comments; pass nil to derive it from analyzers. Keeping it separate
// lets a subset run (fairvet -rules, fixture suites) validate only the
// suppressions aimed at the active rules: an ignore naming an inactive
// but known rule is left alone rather than reported as unused.
func Run(pkgs []*Package, analyzers []*Analyzer, known map[string]bool) ([]Finding, error) {
	if known == nil {
		known = make(map[string]bool, len(analyzers))
		for _, a := range analyzers {
			known[a.Name] = true
		}
	}
	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name] = true
	}

	// One fact store spans the whole run: Load returns packages in
	// dependency order, so facts exported while analyzing a package are
	// final by the time its importers run.
	facts := NewFactStore()

	var findings []Finding
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
				pkg:       pkg,
				facts:     facts,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}

		sups, audit := collectSuppressors(pkg, known, active)
		findings = append(findings, audit...)

		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if s := matchSuppressor(sups, pos, d); s != nil {
				s.used = true
				continue
			}
			findings = append(findings, Finding{
				Position: pos,
				Rule:     d.Rule,
				Category: d.Category,
				Message:  d.Message,
			})
		}

		for _, s := range sups {
			if s.valid && !s.used {
				findings = append(findings, Finding{
					Position: pkg.Fset.Position(s.d.Comment.Pos()),
					Rule:     DirectiveRule,
					Category: "unused",
					Message: fmt.Sprintf("//fair:%s suppresses nothing on this or the next line; delete the stale escape hatch",
						s.d.Kind),
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Rule < b.Rule
	})
	return findings, nil
}

// collectSuppressors indexes the package's suppression comments and
// reports the malformed ones.
func collectSuppressors(pkg *Package, known, active map[string]bool) ([]*suppressor, []Finding) {
	var sups []*suppressor
	var audit []Finding
	for _, f := range pkg.Syntax {
		for _, d := range ParseDirectives(f) {
			pos := pkg.Fset.Position(d.Comment.Pos())
			if !d.Known {
				audit = append(audit, Finding{
					Position: pos, Rule: DirectiveRule, Category: "unknown",
					Message: fmt.Sprintf("unknown //fair: directive %q (want %s)", d.Kind,
						strings.Join([]string{DirIgnore, DirWallclock, DirHotpath, DirDeterministic, DirGuardedBy}, ", ")),
				})
				continue
			}
			if d.Kind != DirIgnore && d.Kind != DirWallclock {
				continue // hotpath/deterministic are markers, not suppressors
			}
			s := &suppressor{d: d, file: pos.Filename, line: pos.Line, valid: true}
			if d.Kind == DirIgnore {
				if !known[d.Rule] {
					audit = append(audit, Finding{
						Position: pos, Rule: DirectiveRule, Category: "unknown-rule",
						Message: fmt.Sprintf("//fair:ignore names unknown rule %q", d.Rule),
					})
					s.valid = false
				}
				// Only audit suppressions aimed at rules in this run.
				if known[d.Rule] && !active[d.Rule] {
					continue
				}
			}
			if d.Kind == DirWallclock && !active["determinism"] {
				continue
			}
			if s.valid && d.Reason == "" {
				audit = append(audit, Finding{
					Position: pos, Rule: DirectiveRule, Category: "unjustified",
					Message: fmt.Sprintf("//fair:%s is missing its justification: every suppression must say why the invariant holds anyway", d.Kind),
				})
				s.valid = false
			}
			sups = append(sups, s)
		}
	}
	return sups, audit
}

// matchSuppressor finds a valid suppressor covering the diagnostic: an
// ignore for its rule, or a wallclock comment for the determinism
// rule's wallclock category, on the same line or the line above.
func matchSuppressor(sups []*suppressor, pos token.Position, d Diagnostic) *suppressor {
	for _, s := range sups {
		if !s.valid || s.file != pos.Filename {
			continue
		}
		if s.line != pos.Line && s.line != pos.Line-1 {
			continue
		}
		switch s.d.Kind {
		case DirIgnore:
			if s.d.Rule == d.Rule {
				return s
			}
		case DirWallclock:
			if d.Rule == "determinism" && d.Category == "wallclock" {
				return s
			}
		}
	}
	return nil
}
