package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRE extracts the expectation list from a fixture comment:
// `// want "regex"` with one or more quoted (or backquoted) regexes,
// mirroring x/tools analysistest. The marker may trail a //fair:
// directive inside the same comment.
var wantRE = regexp.MustCompile(`// want((?:\s+(?:"(?:[^"\\]|\\.)*"|` + "`[^`]*`" + `))+)`)

var wantArgRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// RunFixture loads one fixture package from a testdata module, runs the
// analyzers over it, and asserts the findings match the `// want`
// expectations exactly: every finding needs a matching want on its
// line, and every want must be satisfied by some finding. known lists
// the full rule vocabulary for //fair:ignore validation (nil derives it
// from the active analyzers).
func RunFixture(t testing.TB, moduleDir, pkgPattern string, analyzers []*Analyzer, known map[string]bool) {
	t.Helper()
	pkgs, err := Load(moduleDir, "./"+pkgPattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPattern, err)
	}
	findings, err := Run(pkgs, analyzers, known)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", pkgPattern, err)
	}

	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					ws, err := parseWants(c.Text)
					if err != nil {
						t.Fatalf("%s: %v", pos, err)
					}
					for _, re := range ws {
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}

	for _, f := range findings {
		if w := matchWant(wants, f); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected finding: %s", f)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched `// want %q`", w.file, w.line, w.re)
		}
	}
}

func parseWants(comment string) ([]*regexp.Regexp, error) {
	m := wantRE.FindStringSubmatch(comment)
	if m == nil {
		return nil, nil
	}
	var res []*regexp.Regexp
	for _, q := range wantArgRE.FindAllString(m[1], -1) {
		var pat string
		if q[0] == '`' {
			pat = q[1 : len(q)-1]
		} else {
			var err error
			pat, err = strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("bad want pattern %s: %v", q, err)
			}
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp %q: %v", pat, err)
		}
		res = append(res, re)
	}
	return res, nil
}

func matchWant(wants []*want, f Finding) *want {
	for _, w := range wants {
		if w.matched || w.line != f.Position.Line {
			continue
		}
		if !strings.HasSuffix(f.Position.Filename, w.file) && !strings.HasSuffix(w.file, f.Position.Filename) {
			continue
		}
		if w.re.MatchString(f.Message) {
			return w
		}
	}
	return nil
}
