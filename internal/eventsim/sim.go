// Package eventsim implements a deterministic discrete-event simulation
// kernel: a virtual clock, a time-ordered event queue, and a seeded random
// number generator. All higher-level simulation packages (simnet, the
// protocol experiments) are driven by this kernel, which makes every
// experiment reproducible from a single seed.
//
// Virtual time is expressed as a time.Duration measured from the start of
// the simulation. Two events scheduled for the same instant fire in the
// order they were scheduled (FIFO tie-breaking), which keeps runs
// deterministic.
package eventsim

import (
	"container/heap"
	"math/rand"
	"time"
)

// Sim is a discrete-event simulator. The zero value is not usable; call New.
//
// Sim is not safe for concurrent use: the simulation model is
// single-threaded by design (determinism), and all callbacks run on the
// caller's goroutine inside Run/Step.
type Sim struct {
	now    time.Duration
	seq    uint64
	queue  eventQueue
	rng    *rand.Rand
	steps  uint64
	halted bool
}

// New returns a simulator whose random stream is derived from seed.
// The same seed always yields the same execution.
func New(seed int64) *Sim {
	return &Sim{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time (duration since simulation start).
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source. Protocol code
// must draw all randomness from this stream (or from streams seeded by it)
// to keep runs reproducible.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Steps reports how many events have fired so far.
func (s *Sim) Steps() uint64 { return s.steps }

// Pending reports how many scheduled events are waiting, including timers
// that were stopped but not yet drained from the queue.
func (s *Sim) Pending() int { return s.queue.Len() }

// Timer is a handle to a scheduled event. A Timer can be stopped before it
// fires; stopping a fired or already-stopped timer is a no-op.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing (false if it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.stopped || t.ev.fired {
		return false
	}
	t.ev.stopped = true
	t.ev.fn = nil // release the closure eagerly
	return true
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (at < Now) coerces to Now: the event fires before any later event,
// which mirrors "as soon as possible" semantics.
func (s *Sim) At(at time.Duration, fn func()) *Timer {
	if at < s.now {
		at = s.now
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current virtual time. Negative d
// coerces to zero.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Halt stops Run/RunUntil after the currently firing event returns.
// It is intended to be called from inside an event callback (for example
// when an experiment has reached its stopping condition).
func (s *Sim) Halt() { s.halted = true }

// Step fires the single next event, advancing the clock to its timestamp.
// It reports whether an event fired (false when the queue is empty).
func (s *Sim) Step() bool {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.stopped {
			continue
		}
		s.now = ev.at
		ev.fired = true
		s.steps++
		fn := ev.fn
		ev.fn = nil
		fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or Halt is called.
// It returns the number of events fired during this call.
func (s *Sim) Run() uint64 {
	s.halted = false
	var fired uint64
	for !s.halted && s.Step() {
		fired++
	}
	return fired
}

// RunUntil fires every event scheduled at or before deadline, then advances
// the clock to deadline (even if no event was scheduled exactly there).
// Events scheduled after deadline remain queued. It returns the number of
// events fired during this call.
func (s *Sim) RunUntil(deadline time.Duration) uint64 {
	s.halted = false
	var fired uint64
	for !s.halted {
		ev := s.queue.peekLive()
		if ev == nil || ev.at > deadline {
			break
		}
		s.Step()
		fired++
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
	return fired
}

// RunSteps fires at most n events and returns how many actually fired
// (fewer when the queue drains first).
func (s *Sim) RunSteps(n uint64) uint64 {
	s.halted = false
	var fired uint64
	for fired < n && !s.halted && s.Step() {
		fired++
	}
	return fired
}

// event is a queue entry. stopped entries are skipped lazily on pop.
type event struct {
	at      time.Duration
	seq     uint64
	fn      func()
	stopped bool
	fired   bool
	index   int
}

// eventQueue is a binary heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// peekLive returns the earliest non-stopped event without removing it,
// discarding stopped entries along the way.
func (q *eventQueue) peekLive() *event {
	for q.Len() > 0 {
		ev := (*q)[0]
		if !ev.stopped {
			return ev
		}
		heap.Pop(q)
	}
	return nil
}
