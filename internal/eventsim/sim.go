// Package eventsim implements a deterministic discrete-event simulation
// kernel: a virtual clock, a time-ordered event queue, and a seeded random
// number generator. All higher-level simulation packages (simnet, the
// protocol experiments) are driven by this kernel, which makes every
// experiment reproducible from a single seed.
//
// Virtual time is expressed as a time.Duration measured from the start of
// the simulation. Two events scheduled for the same instant fire in the
// order they were scheduled (FIFO tie-breaking), which keeps runs
// deterministic.
//
// The kernel is built for a zero-allocation steady state: event records
// live in a pooled arena indexed by a manual binary heap, freed slots are
// recycled through a free list, and the typed-message API (ScheduleMsg)
// lets the network layer schedule deliveries without allocating a closure.
// Once the arena and heap have warmed up to the simulation's peak
// outstanding-event count, scheduling and firing events performs no heap
// allocation at all.
package eventsim

import (
	"math/rand"
	"time"
)

// Sim is a discrete-event simulator. The zero value is not usable; call New.
//
// Sim is not safe for concurrent use: the simulation model is
// single-threaded by design (determinism), and all callbacks run on the
// caller's goroutine inside Run/Step.
type Sim struct {
	now    time.Duration
	seq    uint64
	rng    *rand.Rand
	steps  uint64
	halted bool

	arena   []event // pooled event records; an index into arena is a handle
	free    []int32 // recycled arena slots
	heap    []int32 // binary heap of arena indices ordered by (at, seq)
	stopped int     // stopped-but-still-queued entries (lazy-deletion debt)
}

// compactMin is the minimum number of stopped entries before threshold
// compaction kicks in; below it the lazy pop-time discard is cheaper than
// re-heapifying.
const compactMin = 32

// New returns a simulator whose random stream is derived from seed.
// The same seed always yields the same execution.
func New(seed int64) *Sim {
	return &Sim{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time (duration since simulation start).
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulator's deterministic random source. Protocol code
// must draw all randomness from this stream (or from streams seeded by it)
// to keep runs reproducible.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Steps reports how many events have fired so far.
func (s *Sim) Steps() uint64 { return s.steps }

// Pending reports how many live scheduled events are waiting. Stopped
// timers do not count, whether or not their queue slot has been reclaimed
// yet.
func (s *Sim) Pending() int { return len(s.heap) - s.stopped }

// Msg is a typed message event: a payload plus routing metadata stored
// inline in the pooled event record, so scheduling a delivery allocates
// nothing (the classic alternative — a closure capturing the message —
// costs one heap allocation per message).
type Msg struct {
	From, To int32
	Size     int32
	Payload  any
}

// MsgHandler consumes typed message events at their delivery time.
type MsgHandler interface {
	HandleSimMsg(m Msg)
}

// Timer is a handle to a scheduled event. A Timer can be stopped before it
// fires; stopping a fired or already-stopped timer is a no-op. The zero
// Timer is valid and never stops anything.
type Timer struct {
	s   *Sim
	idx int32
	gen uint32
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing (false if it already fired or was already stopped).
//
// Stopping is O(1): the queue entry is marked dead and discarded lazily,
// and the whole queue is compacted eagerly once dead entries outnumber
// live ones (see compact).
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	ev := &t.s.arena[t.idx]
	if ev.gen != t.gen || ev.stopped {
		return false
	}
	ev.stopped = true
	ev.fn = nil // release the closure eagerly
	ev.dst = nil
	ev.msg = Msg{}
	t.s.stopped++
	t.s.maybeCompact()
	return true
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (at < Now) coerces to Now: the event fires before any later event,
// which mirrors "as soon as possible" semantics.
func (s *Sim) At(at time.Duration, fn func()) Timer {
	idx := s.schedule(at, fn, nil, Msg{}, evClosure)
	return Timer{s: s, idx: idx, gen: s.arena[idx].gen}
}

// After schedules fn to run d after the current virtual time. Negative d
// coerces to zero.
func (s *Sim) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// ScheduleMsg schedules m for delivery to h at d after the current virtual
// time (negative d coerces to zero). The record is stored inline in the
// pooled event arena: unlike After with a capturing closure, this path
// performs no per-call allocation, which is what makes the simulated
// network's send hot path allocation-free. Message events cannot be
// stopped; they always fire.
//
//fair:hotpath
func (s *Sim) ScheduleMsg(d time.Duration, h MsgHandler, m Msg) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now+d, nil, h, m, evMsg)
}

// ScheduleMsgAt schedules m for delivery to h at absolute virtual time
// at; scheduling in the past coerces to Now, exactly like At. It is the
// injection point for the sharded kernel's barrier merge: a cross-shard
// message carries the delivery timestamp the source shard computed, and
// the destination shard enqueues it here between windows. Injection
// order assigns the FIFO tie-break sequence, so a fixed merge order
// yields a fixed firing order.
//
//fair:hotpath
func (s *Sim) ScheduleMsgAt(at time.Duration, h MsgHandler, m Msg) {
	s.schedule(at, nil, h, m, evMsg)
}

// Halt stops Run/RunUntil after the currently firing event returns.
// It is intended to be called from inside an event callback (for example
// when an experiment has reached its stopping condition).
func (s *Sim) Halt() { s.halted = true }

// Step fires the single next event, advancing the clock to its timestamp.
// It reports whether an event fired (false when the queue is empty).
func (s *Sim) Step() bool {
	for len(s.heap) > 0 {
		idx := s.popMin()
		ev := &s.arena[idx]
		if ev.stopped {
			s.stopped--
			s.release(idx)
			continue
		}
		s.now = ev.at
		s.steps++
		// Copy the payload out and recycle the slot before firing, so
		// events scheduled inside the callback can reuse it.
		kind, fn, dst, m := ev.kind, ev.fn, ev.dst, ev.msg
		s.release(idx)
		if kind == evMsg {
			dst.HandleSimMsg(m)
		} else {
			fn()
		}
		return true
	}
	return false
}

// Run fires events until the queue is empty or Halt is called.
// It returns the number of events fired during this call.
func (s *Sim) Run() uint64 {
	s.halted = false
	var fired uint64
	for !s.halted && s.Step() {
		fired++
	}
	return fired
}

// RunUntil fires every event scheduled at or before deadline, then advances
// the clock to deadline (even if no event was scheduled exactly there).
// Events scheduled after deadline remain queued. It returns the number of
// events fired during this call.
func (s *Sim) RunUntil(deadline time.Duration) uint64 {
	s.halted = false
	var fired uint64
	for !s.halted {
		at, ok := s.peekLive()
		if !ok || at > deadline {
			break
		}
		s.Step()
		fired++
	}
	if !s.halted && s.now < deadline {
		s.now = deadline
	}
	return fired
}

// RunSteps fires at most n events and returns how many actually fired
// (fewer when the queue drains first).
func (s *Sim) RunSteps(n uint64) uint64 {
	s.halted = false
	var fired uint64
	for fired < n && !s.halted && s.Step() {
		fired++
	}
	return fired
}

// --- pooled event arena ------------------------------------------------------

type evKind uint8

const (
	evClosure evKind = iota + 1 // fn callback
	evMsg                       // typed message delivered to dst
)

// event is a pooled queue entry. gen guards Timer handles against slot
// reuse: every release bumps it, invalidating outstanding handles.
type event struct {
	at      time.Duration
	seq     uint64
	fn      func()
	dst     MsgHandler
	msg     Msg
	gen     uint32
	kind    evKind
	stopped bool
}

// alloc returns a free arena slot, growing the arena when the free list is
// dry.
func (s *Sim) alloc() int32 {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx
	}
	s.arena = append(s.arena, event{})
	return int32(len(s.arena) - 1)
}

// release recycles an arena slot: references are dropped for the GC and
// the generation advances so stale Timer handles go dead.
func (s *Sim) release(idx int32) {
	ev := &s.arena[idx]
	ev.fn = nil
	ev.dst = nil
	ev.msg = Msg{}
	ev.gen++
	s.free = append(s.free, idx)
}

// schedule allocates, fills and enqueues one event record.
func (s *Sim) schedule(at time.Duration, fn func(), dst MsgHandler, m Msg, kind evKind) int32 {
	if at < s.now {
		at = s.now
	}
	idx := s.alloc()
	ev := &s.arena[idx]
	ev.at = at
	ev.seq = s.seq
	ev.fn = fn
	ev.dst = dst
	ev.msg = m
	ev.kind = kind
	ev.stopped = false
	s.seq++
	s.heap = append(s.heap, idx)
	s.siftUp(len(s.heap) - 1)
	return idx
}

// maybeCompact reclaims stopped entries once they exceed half the queue:
// long churn runs would otherwise hold dead records (and their arena
// slots) until they surfaced at the heap top.
func (s *Sim) maybeCompact() {
	if s.stopped < compactMin || s.stopped*2 <= len(s.heap) {
		return
	}
	live := s.heap[:0]
	for _, idx := range s.heap {
		if s.arena[idx].stopped {
			s.release(idx)
		} else {
			live = append(live, idx)
		}
	}
	s.heap = live
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
	s.stopped = 0
}

// peekLive returns the timestamp of the earliest non-stopped event,
// discarding stopped entries from the heap top along the way.
func (s *Sim) peekLive() (time.Duration, bool) {
	for len(s.heap) > 0 {
		idx := s.heap[0]
		ev := &s.arena[idx]
		if !ev.stopped {
			return ev.at, true
		}
		s.popMin()
		s.stopped--
		s.release(idx)
	}
	return 0, false
}

// --- manual index heap -------------------------------------------------------
//
// A hand-rolled binary heap over arena indices avoids both the pointer
// chasing of []*event and the interface boxing of container/heap.

func (s *Sim) less(a, b int32) bool {
	ea, eb := &s.arena[a], &s.arena[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (s *Sim) siftUp(i int) {
	h := s.heap
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (s *Sim) siftDown(i int) {
	h := s.heap
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && s.less(h[r], h[l]) {
			small = r
		}
		if !s.less(h[small], h[i]) {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// popMin removes and returns the root of the heap. The caller owns the
// returned arena slot.
func (s *Sim) popMin() int32 {
	idx := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	if last > 0 {
		s.siftDown(0)
	}
	return idx
}
