package eventsim

import "time"

// Ticker repeatedly invokes a callback at a fixed virtual-time interval,
// optionally with bounded uniform jitter. Gossip rounds are driven by
// tickers; per-node jitter desynchronises rounds the way real clocks do.
type Ticker struct {
	sim      *Sim
	interval time.Duration
	jitter   time.Duration
	fn       func()
	fire     func() // built once; rescheduling allocates no new closure
	timer    Timer
	stopped  bool
	ticks    uint64
}

// Every schedules fn to run every interval, starting one interval from
// now. If jitter > 0 each firing is displaced by a uniform random offset
// in [0, jitter). interval must be positive; a non-positive interval
// returns a stopped ticker that never fires.
func (s *Sim) Every(interval, jitter time.Duration, fn func()) *Ticker {
	t := &Ticker{sim: s, interval: interval, jitter: jitter, fn: fn}
	if interval <= 0 {
		t.stopped = true
		return t
	}
	t.fire = func() {
		if t.stopped {
			return
		}
		t.ticks++
		t.fn()
		if !t.stopped {
			t.schedule()
		}
	}
	t.schedule()
	return t
}

func (t *Ticker) schedule() {
	d := t.interval
	if t.jitter > 0 {
		d += time.Duration(t.sim.rng.Int63n(int64(t.jitter)))
	}
	t.timer = t.sim.After(d, t.fire)
}

// Ticks reports how many times the ticker has fired.
func (t *Ticker) Ticks() uint64 { return t.ticks }

// Stop halts the ticker. It is safe to call from inside the callback and
// is idempotent.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.timer.Stop()
}
