package eventsim

import (
	"testing"
	"time"
)

// sink records typed message deliveries for the ScheduleMsg tests.
type sink struct {
	got []Msg
}

func (k *sink) HandleSimMsg(m Msg) { k.got = append(k.got, m) }

func TestScheduleMsgDelivers(t *testing.T) {
	s := New(1)
	k := &sink{}
	payload := "hello"
	s.ScheduleMsg(5*time.Millisecond, k, Msg{From: 1, To: 2, Size: 64, Payload: payload})
	s.Run()
	if len(k.got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(k.got))
	}
	m := k.got[0]
	if m.From != 1 || m.To != 2 || m.Size != 64 || m.Payload.(string) != "hello" {
		t.Fatalf("message corrupted: %+v", m)
	}
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("delivered at %v, want 5ms", s.Now())
	}
}

func TestScheduleMsgNegativeDelayCoerces(t *testing.T) {
	s := New(1)
	k := &sink{}
	s.ScheduleMsg(-time.Second, k, Msg{})
	s.Run()
	if len(k.got) != 1 || s.Now() != 0 {
		t.Fatalf("negative delay mishandled: %d msgs at %v", len(k.got), s.Now())
	}
}

// Closure events and message events share one queue and one seq counter,
// so same-instant FIFO ordering holds across both kinds.
func TestMsgAndClosureInterleaveFIFO(t *testing.T) {
	s := New(1)
	var order []int
	k := &sink{}
	s.At(time.Millisecond, func() { order = append(order, 0) })
	s.ScheduleMsg(time.Millisecond, recorderFunc(func(Msg) { order = append(order, 1) }), Msg{})
	s.At(time.Millisecond, func() { order = append(order, 2) })
	s.ScheduleMsg(time.Millisecond, k, Msg{From: 3})
	s.At(time.Millisecond, func() { order = append(order, 4) })
	s.Run()
	if len(k.got) != 1 || k.got[0].From != 3 {
		t.Fatalf("sink missed its message: %+v", k.got)
	}
	want := []int{0, 1, 2, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("interleaved FIFO broken: %v", order)
		}
	}
}

type recorderFunc func(Msg)

func (f recorderFunc) HandleSimMsg(m Msg) { f(m) }

// Arena slots are recycled: a long run of schedule/fire cycles must not
// grow the arena past the peak number of outstanding events.
func TestArenaReuse(t *testing.T) {
	s := New(1)
	fn := func() {}
	for i := 0; i < 10000; i++ {
		s.After(time.Microsecond, fn)
		s.Step()
	}
	if len(s.arena) > 4 {
		t.Fatalf("arena grew to %d slots for 1 outstanding event", len(s.arena))
	}
}

// A Timer handle must go stale once its slot is recycled: stopping it
// later must not kill the unrelated event now occupying the slot.
func TestStaleTimerHandleIsInert(t *testing.T) {
	s := New(1)
	fired := 0
	tm := s.After(time.Millisecond, func() {})
	s.Run() // fires; slot returns to the free list
	// The next event reuses the slot.
	s.After(time.Millisecond, func() { fired++ })
	if tm.Stop() {
		t.Fatal("stale handle reported a successful stop")
	}
	s.Run()
	if fired != 1 {
		t.Fatalf("stale Stop killed a live event: fired=%d", fired)
	}
}

func TestZeroTimerStop(t *testing.T) {
	var tm Timer
	if tm.Stop() {
		t.Fatal("zero Timer stopped something")
	}
}

// Pending counts live events only: stopped timers disappear from the
// count immediately, not when their queue slot happens to drain.
func TestPendingExcludesStopped(t *testing.T) {
	s := New(1)
	fn := func() {}
	timers := make([]Timer, 10)
	for i := range timers {
		timers[i] = s.After(time.Duration(i+1)*time.Millisecond, fn)
	}
	for i := 0; i < 5; i++ {
		timers[i].Stop()
	}
	if got := s.Pending(); got != 5 {
		t.Fatalf("Pending = %d after stopping 5 of 10, want 5", got)
	}
	s.Run()
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending = %d after drain, want 0", got)
	}
}

// Stopping more than half the queue triggers eager compaction, physically
// shrinking the heap instead of leaving dead entries to surface lazily.
func TestStopCompactsPastThreshold(t *testing.T) {
	s := New(1)
	fn := func() {}
	const n = 4 * compactMin
	timers := make([]Timer, n)
	for i := range timers {
		timers[i] = s.After(time.Duration(i+1)*time.Millisecond, fn)
	}
	// Stop ~3/4 of the queue; compaction must have fired along the way.
	for i := 0; i < 3*n/4; i++ {
		timers[i].Stop()
	}
	if live := n - 3*n/4; len(s.heap) >= n || s.Pending() != live {
		t.Fatalf("heap len %d (stopped debt %d), want compaction near %d live", len(s.heap), s.stopped, live)
	}
	// The survivors still fire, in order, exactly once.
	fired := s.Run()
	if want := uint64(n - 3*n/4); fired != want {
		t.Fatalf("fired %d, want %d", fired, want)
	}
}

// Compacted runs stay semantically identical: a churn-heavy schedule with
// interleaved stops fires the same events at the same times as the naive
// execution order predicts.
func TestCompactionPreservesOrder(t *testing.T) {
	s := New(1)
	var fired []int
	const n = 8 * compactMin
	timers := make([]Timer, n)
	for i := range timers {
		i := i
		timers[i] = s.After(time.Duration(i)*time.Millisecond, func() { fired = append(fired, i) })
	}
	// Stop every odd timer (half the queue → crosses the threshold).
	for i := 1; i < n; i += 2 {
		timers[i].Stop()
	}
	s.Run()
	if len(fired) != n/2 {
		t.Fatalf("fired %d, want %d", len(fired), n/2)
	}
	for j, id := range fired {
		if id != 2*j {
			t.Fatalf("fired[%d] = %d, want %d (order broken by compaction)", j, id, 2*j)
		}
	}
}

// --- allocation regression ---------------------------------------------------

// The schedule→fire cycle must be allocation-free in steady state; this is
// the property the whole simulation hot path builds on.
func TestAfterStepZeroAlloc(t *testing.T) {
	s := New(1)
	fn := func() {}
	// Warm the arena, heap and free list.
	for i := 0; i < 64; i++ {
		s.After(time.Microsecond, fn)
	}
	s.Run()
	avg := testing.AllocsPerRun(1000, func() {
		s.After(time.Microsecond, fn)
		s.Step()
	})
	if avg != 0 {
		t.Fatalf("After+Step allocates %.2f times per op, want 0", avg)
	}
}

func TestScheduleMsgStepZeroAlloc(t *testing.T) {
	s := New(1)
	k := &sink{got: make([]Msg, 0, 4096)}
	payload := &struct{ x int }{}
	for i := 0; i < 64; i++ {
		s.ScheduleMsg(time.Microsecond, k, Msg{From: 1, To: 2, Size: 8, Payload: payload})
	}
	s.Run()
	k.got = k.got[:0]
	avg := testing.AllocsPerRun(1000, func() {
		s.ScheduleMsg(time.Microsecond, k, Msg{From: 1, To: 2, Size: 8, Payload: payload})
		s.Step()
		k.got = k.got[:0]
	})
	if avg != 0 {
		t.Fatalf("ScheduleMsg+Step allocates %.2f times per op, want 0", avg)
	}
}

func TestTickerSteadyStateZeroAlloc(t *testing.T) {
	s := New(1)
	tk := s.Every(time.Millisecond, 0, func() {})
	s.RunUntil(10 * time.Millisecond) // warm up
	avg := testing.AllocsPerRun(1000, func() {
		s.Step() // each step is one tick rescheduling itself
	})
	tk.Stop()
	if avg != 0 {
		t.Fatalf("ticker tick allocates %.2f times per op, want 0", avg)
	}
}

func BenchmarkScheduleMsgAndStep(b *testing.B) {
	s := New(1)
	k := &sink{}
	payload := &struct{ x int }{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScheduleMsg(time.Microsecond, k, Msg{From: 1, To: 2, Size: 8, Payload: payload})
		s.Step()
		k.got = k.got[:0]
	}
}

func BenchmarkStopHeavyChurn(b *testing.B) {
	s := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm := s.After(time.Duration(i%97)*time.Microsecond, fn)
		if i%2 == 0 {
			tm.Stop()
		}
		if i%1024 == 1023 {
			s.Run()
		}
	}
	s.Run()
}
