package eventsim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestFiresInTimeOrder(t *testing.T) {
	s := New(1)
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 10, 0} {
		d := d
		s.After(d*time.Millisecond, func() {
			got = append(got, s.Now())
		})
	}
	s.Run()
	want := []time.Duration{0, 10 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5*time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of scheduling order: %v", order)
		}
	}
}

func TestPastSchedulingCoercesToNow(t *testing.T) {
	s := New(1)
	var at time.Duration = -1
	s.After(10*time.Millisecond, func() {
		s.At(0, func() { at = s.Now() }) // in the past relative to 10ms
	})
	s.Run()
	if at != 10*time.Millisecond {
		t.Fatalf("past event fired at %v, want %v", at, 10*time.Millisecond)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("first Stop should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := New(1)
	tm := s.After(time.Millisecond, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop after firing should report false")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	s.After(5*time.Millisecond, func() { fired = append(fired, s.Now()) })
	s.After(15*time.Millisecond, func() { fired = append(fired, s.Now()) })

	n := s.RunUntil(10 * time.Millisecond)
	if n != 1 {
		t.Fatalf("RunUntil fired %d events, want 1", n)
	}
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("clock at %v after RunUntil, want 10ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run()
	if len(fired) != 2 || fired[1] != 15*time.Millisecond {
		t.Fatalf("remaining event mishandled: %v", fired)
	}
}

func TestRunUntilExactDeadlineInclusive(t *testing.T) {
	s := New(1)
	fired := false
	s.After(10*time.Millisecond, func() { fired = true })
	s.RunUntil(10 * time.Millisecond)
	if !fired {
		t.Fatal("event at exactly the deadline did not fire")
	}
}

func TestHalt(t *testing.T) {
	s := New(1)
	count := 0
	for i := 0; i < 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	fired := s.Run()
	if fired != 3 || count != 3 {
		t.Fatalf("Run fired %d (count %d), want 3", fired, count)
	}
	// Run can resume after a halt.
	s.Run()
	if count != 10 {
		t.Fatalf("resume after halt: count = %d, want 10", count)
	}
}

func TestRunSteps(t *testing.T) {
	s := New(1)
	count := 0
	for i := 0; i < 5; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	if n := s.RunSteps(3); n != 3 || count != 3 {
		t.Fatalf("RunSteps(3) fired %d (count %d)", n, count)
	}
	if n := s.RunSteps(100); n != 2 || count != 5 {
		t.Fatalf("RunSteps(100) fired %d (count %d), want 2 (5)", n, count)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []int64 {
		s := New(seed)
		var out []int64
		// A self-rescheduling process that consumes randomness.
		var step func()
		step = func() {
			out = append(out, int64(s.Now()), s.Rand().Int63n(1000))
			if len(out) < 40 {
				s.After(time.Duration(1+s.Rand().Intn(5))*time.Millisecond, step)
			}
		}
		s.After(0, step)
		s.Run()
		return out
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := trace(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestEvery(t *testing.T) {
	s := New(1)
	var at []time.Duration
	tk := s.Every(10*time.Millisecond, 0, func() {
		at = append(at, s.Now())
	})
	s.RunUntil(55 * time.Millisecond)
	tk.Stop()
	s.Run()
	want := []time.Duration{10, 20, 30, 40, 50}
	if len(at) != len(want) {
		t.Fatalf("ticker fired %d times (%v), want %d", len(at), at, len(want))
	}
	for i, w := range want {
		if at[i] != w*time.Millisecond {
			t.Fatalf("tick %d at %v, want %v", i, at[i], w*time.Millisecond)
		}
	}
	if tk.Ticks() != 5 {
		t.Fatalf("Ticks() = %d, want 5", tk.Ticks())
	}
}

func TestEveryJitterStaysInBounds(t *testing.T) {
	s := New(7)
	var gaps []time.Duration
	last := time.Duration(0)
	s.Every(10*time.Millisecond, 5*time.Millisecond, func() {
		gaps = append(gaps, s.Now()-last)
		last = s.Now()
	})
	s.RunUntil(2 * time.Second)
	if len(gaps) < 50 {
		t.Fatalf("too few ticks: %d", len(gaps))
	}
	for i, g := range gaps {
		if g < 10*time.Millisecond || g >= 15*time.Millisecond+10*time.Millisecond {
			// Successive gaps can range in [interval, interval+jitter) relative
			// to the previous *fire*; allow the analytic bound.
			t.Fatalf("gap %d = %v outside [10ms,15ms) tolerance", i, g)
		}
	}
}

func TestEveryStopFromCallback(t *testing.T) {
	s := New(1)
	count := 0
	var tk *Ticker
	tk = s.Every(time.Millisecond, 0, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.Run()
	if count != 3 {
		t.Fatalf("ticker fired %d times after in-callback stop, want 3", count)
	}
}

func TestEveryNonPositiveInterval(t *testing.T) {
	s := New(1)
	tk := s.Every(0, 0, func() { t.Fatal("must not fire") })
	s.Run()
	tk.Stop() // must not panic
}

// Property: regardless of insertion order, events fire in non-decreasing
// time order and every non-stopped event fires exactly once.
func TestQuickOrderingInvariant(t *testing.T) {
	f := func(seed int64, raw []uint16) bool {
		s := New(seed)
		if len(raw) > 200 {
			raw = raw[:200]
		}
		fired := make([]time.Duration, 0, len(raw))
		for _, r := range raw {
			d := time.Duration(r) * time.Microsecond
			s.After(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(raw) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// Property: stopping a random subset prevents exactly that subset.
func TestQuickStopSubset(t *testing.T) {
	f := func(seed int64, raw []uint8) bool {
		s := New(seed)
		if len(raw) > 100 {
			raw = raw[:100]
		}
		firedCount := 0
		timers := make([]Timer, len(raw))
		for i, r := range raw {
			timers[i] = s.After(time.Duration(r)*time.Microsecond, func() { firedCount++ })
		}
		stopped := 0
		for i := range timers {
			if i%2 == 0 {
				if timers[i].Stop() {
					stopped++
				}
			}
		}
		s.Run()
		return firedCount == len(raw)-stopped
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1)
		for j := 0; j < 1000; j++ {
			s.After(time.Duration(j%97)*time.Microsecond, func() {})
		}
		s.Run()
	}
}

func TestScheduleMsgAt(t *testing.T) {
	s := New(1)
	h := &recordingHandler{}
	// Out-of-order absolute scheduling must fire in timestamp order,
	// with injection order breaking ties.
	s.ScheduleMsgAt(30*time.Millisecond, h, Msg{From: 3})
	s.ScheduleMsgAt(10*time.Millisecond, h, Msg{From: 1})
	s.ScheduleMsgAt(10*time.Millisecond, h, Msg{From: 2})
	s.RunUntil(20 * time.Millisecond)
	if s.Now() != 20*time.Millisecond {
		t.Fatalf("Now = %v, want 20ms", s.Now())
	}
	// A past timestamp coerces to Now and fires before the 30ms event.
	s.ScheduleMsgAt(5*time.Millisecond, h, Msg{From: 4})
	s.Run()
	want := []int32{1, 2, 4, 3}
	if len(h.froms) != len(want) {
		t.Fatalf("fired %d events, want %d", len(h.froms), len(want))
	}
	for i, f := range want {
		if h.froms[i] != f {
			t.Fatalf("firing order %v, want %v", h.froms, want)
		}
	}
}

type recordingHandler struct{ froms []int32 }

func (r *recordingHandler) HandleSimMsg(m Msg) { r.froms = append(r.froms, m.From) }
