package workload

import (
	"math"
	"math/rand"
	"testing"

	"fairgossip/internal/pubsub"
)

func TestTopicsWeightsNormalised(t *testing.T) {
	tp := NewTopics(64, 1.01)
	var sum float64
	for i := 0; i < tp.Len(); i++ {
		sum += tp.Weight(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
	if tp.Weight(0) <= tp.Weight(63) {
		t.Fatal("Zipf weights must decrease with rank")
	}
	if tp.Names[0] != "topic-000" {
		t.Fatalf("name = %q", tp.Names[0])
	}
}

func TestTopicsSampleFollowsPopularity(t *testing.T) {
	tp := NewTopics(16, 1.2)
	rng := rand.New(rand.NewSource(1))
	counts := make(map[string]int)
	const trials = 50000
	for i := 0; i < trials; i++ {
		counts[tp.Sample(rng)]++
	}
	got0 := float64(counts["topic-000"]) / trials
	if math.Abs(got0-tp.Weight(0)) > 0.02 {
		t.Fatalf("rank-0 frequency %.3f vs weight %.3f", got0, tp.Weight(0))
	}
	if counts["topic-000"] <= counts["topic-015"] {
		t.Fatal("popular topic sampled less than rare one")
	}
}

func TestTopicsUniformWhenSZero(t *testing.T) {
	tp := NewTopics(8, 0)
	for i := 1; i < 8; i++ {
		if math.Abs(tp.Weight(i)-tp.Weight(0)) > 1e-12 {
			t.Fatal("s=0 must be uniform")
		}
	}
}

func TestSampleSetDistinct(t *testing.T) {
	tp := NewTopics(16, 1.0)
	rng := rand.New(rand.NewSource(2))
	set := tp.SampleSet(rng, 8)
	if len(set) != 8 {
		t.Fatalf("len = %d", len(set))
	}
	seen := map[string]bool{}
	for _, s := range set {
		if seen[s] {
			t.Fatal("duplicate topic in set")
		}
		seen[s] = true
	}
	if got := tp.SampleSet(rng, 99); len(got) != 16 {
		t.Fatal("oversized k must clamp")
	}
	if tp.SampleSet(rng, 0) != nil {
		t.Fatal("k=0 must be nil")
	}
}

func TestSubCountBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	histo := make(map[int]int)
	for i := 0; i < 10000; i++ {
		n := SubCount(rng, 1, 16)
		if n < 1 || n > 16 {
			t.Fatalf("SubCount out of range: %d", n)
		}
		histo[n]++
	}
	// Geometric skew: 1 is the mode.
	if histo[1] <= histo[8] {
		t.Fatal("subscription counts not skewed toward small")
	}
	if SubCount(rng, 5, 2) != 5 {
		t.Fatal("inverted bounds must clamp to min")
	}
}

func TestStocksEventsAndSelectivity(t *testing.T) {
	s := NewStocks(10)
	rng := rand.New(rand.NewSource(4))
	for _, sel := range []float64{0.05, 0.25, 0.6} {
		f := s.FilterWithSelectivity(sel)
		matched := 0
		const trials = 20000
		for i := 0; i < trials; i++ {
			ev := &pubsub.Event{Topic: "ticks", Attrs: s.Event(rng)}
			if f.Match(ev) {
				matched++
			}
		}
		got := float64(matched) / trials
		if math.Abs(got-sel) > 0.03 {
			t.Fatalf("selectivity %.2f produced match rate %.3f", sel, got)
		}
	}
	// Degenerate selectivities clamp.
	if s.FilterWithSelectivity(-1) == nil || s.FilterWithSelectivity(2) == nil {
		t.Fatal("clamped filters must build")
	}
}

func TestStocksAttrsComplete(t *testing.T) {
	s := NewStocks(5)
	rng := rand.New(rand.NewSource(5))
	ev := &pubsub.Event{Topic: "ticks", Attrs: s.Event(rng)}
	for _, key := range []string{"symbol", "price", "volume", "region"} {
		if _, ok := ev.Attr(key); !ok {
			t.Fatalf("attribute %q missing", key)
		}
	}
}

func TestChurnStep(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := Churn{PLeave: 0.3, PJoin: 0.8}
	leaves, joins := 0, 0
	for i := 0; i < 10000; i++ {
		if l, j := c.Step(rng, true); l {
			leaves++
			if j {
				t.Fatal("up node cannot join")
			}
		}
		if _, j := c.Step(rng, false); j {
			joins++
		}
	}
	if leaves < 2700 || leaves > 3300 {
		t.Fatalf("leave rate %d/10000, want ≈3000", leaves)
	}
	if joins < 7700 || joins > 8300 {
		t.Fatalf("join rate %d/10000, want ≈8000", joins)
	}
}

func TestRageQuitPatience(t *testing.T) {
	rq := NewRageQuit(2, 3)
	ratios := []float64{10, 1, 1, 1} // node 0 is 10× the median 1
	for round := 1; round <= 2; round++ {
		if q := rq.Check(ratios, 1, nil); len(q) != 0 {
			t.Fatalf("quit before patience exhausted (round %d): %v", round, q)
		}
	}
	q := rq.Check(ratios, 1, nil)
	if len(q) != 1 || q[0] != 0 {
		t.Fatalf("quitters = %v, want [0]", q)
	}
	// Strikes reset after quitting.
	if q := rq.Check(ratios, 1, nil); len(q) != 0 {
		t.Fatal("strike counter did not reset")
	}
}

func TestRageQuitRecoveryResetsStrikes(t *testing.T) {
	rq := NewRageQuit(2, 2)
	hot := []float64{10, 1, 1}
	cool := []float64{1, 1, 1}
	rq.Check(hot, 1, nil)
	rq.Check(cool, 1, nil) // recovers
	if q := rq.Check(hot, 1, nil); len(q) != 0 {
		t.Fatal("strikes must reset after a calm check")
	}
}

func TestRageQuitSkipsInactive(t *testing.T) {
	rq := NewRageQuit(2, 1)
	ratios := []float64{10, 10}
	active := func(id int) bool { return id == 1 }
	q := rq.Check(ratios, 1, active)
	if len(q) != 1 || q[0] != 1 {
		t.Fatalf("quitters = %v, want [1]", q)
	}
}

func TestRageQuitZeroMedian(t *testing.T) {
	rq := NewRageQuit(2, 1)
	if q := rq.Check([]float64{5, 0}, 0, nil); len(q) != 1 {
		t.Fatalf("zero median mishandled: %v", q)
	}
}
