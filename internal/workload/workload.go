// Package workload generates the synthetic workloads the experiments run:
// Zipf-distributed topic popularity, heterogeneous per-node subscription
// counts, content-based filters with controlled selectivity, publication
// schedules, and churn. Everything is driven by caller-supplied seeded
// RNGs, so experiments stay reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"fairgossip/internal/pubsub"
)

// Topics is a set of K topics with Zipf(s) popularity over ranks: topic i
// (0-based rank) has weight 1/(i+1)^s.
type Topics struct {
	Names   []string
	weights []float64
	cum     []float64 // cumulative weights for sampling
}

// NewTopics builds K topics named "topic-000".. with Zipf exponent s
// (s=0 means uniform).
func NewTopics(k int, s float64) *Topics {
	if k < 1 {
		k = 1
	}
	t := &Topics{
		Names:   make([]string, k),
		weights: make([]float64, k),
		cum:     make([]float64, k),
	}
	var total float64
	for i := 0; i < k; i++ {
		t.Names[i] = fmt.Sprintf("topic-%03d", i)
		t.weights[i] = 1 / math.Pow(float64(i+1), s)
		total += t.weights[i]
	}
	var run float64
	for i := 0; i < k; i++ {
		t.weights[i] /= total
		run += t.weights[i]
		t.cum[i] = run
	}
	return t
}

// Len returns the number of topics.
func (t *Topics) Len() int { return len(t.Names) }

// Weight returns topic rank i's popularity (probabilities sum to 1).
func (t *Topics) Weight(i int) float64 { return t.weights[i] }

// Sample draws one topic by popularity.
func (t *Topics) Sample(rng *rand.Rand) string {
	u := rng.Float64()
	// Binary search over the cumulative distribution.
	lo, hi := 0, len(t.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if t.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return t.Names[lo]
}

// SampleSet draws k distinct topics by popularity (k clamped to Len).
func (t *Topics) SampleSet(rng *rand.Rand, k int) []string {
	if k > t.Len() {
		k = t.Len()
	}
	if k <= 0 {
		return nil
	}
	seen := make(map[string]struct{}, k)
	out := make([]string, 0, k)
	for len(out) < k {
		topic := t.Sample(rng)
		if _, dup := seen[topic]; dup {
			continue
		}
		seen[topic] = struct{}{}
		out = append(out, topic)
	}
	return out
}

// SubCount draws a per-node subscription count in [min, max] with a
// geometric-ish skew: most nodes subscribe to few topics, a tail to many
// (the heterogeneous-interest setting of the paper's fairness argument).
func SubCount(rng *rand.Rand, min, max int) int {
	if min < 0 {
		min = 0
	}
	if max < min {
		max = min
	}
	n := min
	for n < max && rng.Float64() < 0.5 {
		n++
	}
	return n
}

// --- Content-based workload ---------------------------------------------

// Stocks generates stock-tick events with typed attributes: symbol
// (Zipf-popular), price uniform in [0, PriceMax), volume, and region.
type Stocks struct {
	Symbols  []string
	symPop   *Topics
	PriceMax float64
	Regions  []string
}

// NewStocks builds a content workload over `symbols` ticker symbols.
func NewStocks(symbols int) *Stocks {
	if symbols < 1 {
		symbols = 1
	}
	s := &Stocks{
		Symbols:  make([]string, symbols),
		symPop:   NewTopics(symbols, 1.0),
		PriceMax: 1000,
		Regions:  []string{"us", "eu", "apac"},
	}
	for i := range s.Symbols {
		s.Symbols[i] = fmt.Sprintf("SYM%02d", i)
	}
	return s
}

// Event generates one tick's attributes.
func (s *Stocks) Event(rng *rand.Rand) []pubsub.Attr {
	rank := 0
	name := s.symPop.Sample(rng)
	fmt.Sscanf(name, "topic-%03d", &rank)
	return []pubsub.Attr{
		{Key: "symbol", Val: pubsub.String(s.Symbols[rank%len(s.Symbols)])},
		{Key: "price", Val: pubsub.Num(math.Floor(rng.Float64() * s.PriceMax))},
		{Key: "volume", Val: pubsub.Num(float64(100 * (1 + rng.Intn(1000))))},
		{Key: "region", Val: pubsub.String(s.Regions[rng.Intn(len(s.Regions))])},
	}
}

// FilterWithSelectivity returns a price-threshold filter matching
// approximately the given fraction of generated events (selectivity
// clamped into (0, 1]).
func (s *Stocks) FilterWithSelectivity(sel float64) pubsub.Filter {
	if sel <= 0 {
		sel = 0.001
	}
	if sel > 1 {
		sel = 1
	}
	threshold := s.PriceMax * (1 - sel)
	return pubsub.MustParse(fmt.Sprintf("price >= %g", threshold))
}

// --- Churn ------------------------------------------------------------------

// Churn is a memoryless on/off process: each round an up node goes down
// with probability PLeave and a down node comes back with probability
// PJoin.
type Churn struct {
	PLeave float64
	PJoin  float64
}

// Step returns the state transition for one node-round: (leave, join)
// where at most one is true given the current state.
func (c Churn) Step(rng *rand.Rand, up bool) (leave, join bool) {
	if up {
		return rng.Float64() < c.PLeave, false
	}
	return false, rng.Float64() < c.PJoin
}

// RageQuit is the unfairness-triggered churn policy of EXP-T5 (§1/§6):
// a node whose contribution/benefit ratio exceeds Threshold times the
// population median for Patience consecutive checks disconnects.
type RageQuit struct {
	Threshold float64 // e.g. 3: leave when 3× the median ratio
	Patience  int     // consecutive over-threshold checks before quitting

	strikes map[int]int
}

// NewRageQuit builds the policy with sane minimums.
func NewRageQuit(threshold float64, patience int) *RageQuit {
	if threshold < 1 {
		threshold = 1
	}
	if patience < 1 {
		patience = 1
	}
	return &RageQuit{Threshold: threshold, Patience: patience, strikes: make(map[int]int)}
}

// Check feeds the current per-node ratios (indexed by node ID, with
// median med) and returns the IDs that quit this round.
func (r *RageQuit) Check(ratios []float64, med float64, active func(int) bool) []int {
	if med <= 0 {
		med = 1
	}
	var quitters []int
	for id, ratio := range ratios {
		if active != nil && !active(id) {
			r.strikes[id] = 0
			continue
		}
		if ratio > r.Threshold*med {
			r.strikes[id]++
			if r.strikes[id] >= r.Patience {
				quitters = append(quitters, id)
				r.strikes[id] = 0
			}
		} else {
			r.strikes[id] = 0
		}
	}
	return quitters
}
