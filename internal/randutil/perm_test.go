package randutil

import (
	"math/rand"
	"testing"
)

// PermInto must consume the random stream and produce permutations
// bit-identically to rand.Perm, for every size, including repeated reuse
// of one scratch buffer.
func TestPermIntoMatchesRandPerm(t *testing.T) {
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	var scratch []int
	for n := 0; n < 50; n++ {
		want := a.Perm(n)
		got := PermInto(b, &scratch, n)
		if len(got) != len(want) {
			t.Fatalf("n=%d: len %d, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: perm diverges at %d: %v vs %v", n, i, got, want)
			}
		}
	}
	// The streams must remain in lockstep after all those draws.
	if a.Int63() != b.Int63() {
		t.Fatal("random streams diverged")
	}
}

func TestPermIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	scratch := make([]int, 0, 64)
	avg := testing.AllocsPerRun(200, func() {
		PermInto(rng, &scratch, 64)
	})
	if avg != 0 {
		t.Fatalf("PermInto allocates %.2f times per op, want 0", avg)
	}
}
