// Package randutil provides allocation-free counterparts of math/rand
// helpers for simulation hot paths.
//
// Determinism contract: every function consumes the random stream
// draw-for-draw identically to the math/rand function it replaces, so
// swapping one in never changes the outcome of a fixed-seed run — only
// its allocation profile.
package randutil

import "math/rand"

// PermInto writes the permutation rand.Perm(n) would produce into
// *scratch, growing it only when n exceeds its capacity, and returns the
// filled slice. It performs the same Intn(i+1) draw for every i in [0,n)
// as rand.Perm (including the redundant i=0 draw that Go 1 compatibility
// pins), so the consumed random stream and the resulting permutation are
// bit-identical.
//
//fair:hotpath
func PermInto(rng *rand.Rand, scratch *[]int, n int) []int {
	p := (*scratch)[:0]
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		p = append(p, 0)
		p[i] = p[j]
		p[j] = i
	}
	*scratch = p
	return p
}
