package randutil

// SplitMix64 advances the splitmix64 generator once from state x and
// returns the mixed output. It is the standard seed-expansion step: a
// single multiply/xor-shift pipeline whose outputs are statistically
// independent for distinct inputs, which makes it the right tool for
// deriving many child seeds from one master seed.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// ShardSeed derives the RNG seed for one shard of a sharded simulation
// from the run's master seed. Shard 0 keeps the master seed itself, so a
// one-shard run consumes exactly the random stream the single-threaded
// kernel always consumed (the shards=1 byte-identity guarantee); every
// other shard gets an independent splitmix64-derived stream, never a
// shared one — two shards drawing from a common *rand.Rand would race
// and destroy the per-(seed, shardCount) determinism contract.
func ShardSeed(seed int64, shard int) int64 {
	if shard == 0 {
		return seed
	}
	return int64(SplitMix64(uint64(seed) ^ (uint64(shard) * 0xd1342543de82ef95)))
}
