package randutil

import "testing"

func TestShardSeedZeroIsIdentity(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 42, 1 << 40} {
		if got := ShardSeed(seed, 0); got != seed {
			t.Fatalf("ShardSeed(%d, 0) = %d, want the seed itself", seed, got)
		}
	}
}

func TestShardSeedDistinctPerShard(t *testing.T) {
	const shards = 64
	seen := make(map[int64]int, shards)
	for s := 0; s < shards; s++ {
		k := ShardSeed(1, s)
		if prev, dup := seen[k]; dup {
			t.Fatalf("shards %d and %d collide on seed %d", prev, s, k)
		}
		seen[k] = s
	}
	// Distinct master seeds must not alias shard streams either.
	if ShardSeed(1, 1) == ShardSeed(2, 1) {
		t.Fatalf("different master seeds produced the same shard-1 seed")
	}
}

func TestShardSeedDeterministic(t *testing.T) {
	for s := 0; s < 8; s++ {
		if ShardSeed(7, s) != ShardSeed(7, s) {
			t.Fatalf("ShardSeed is not a pure function at shard %d", s)
		}
	}
}
