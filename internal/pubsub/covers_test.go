package pubsub

import (
	"math/rand"
	"testing"
)

func TestCoversTable(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		// Trivial bounds.
		{`true`, `price > 5`, true},
		{`price > 5`, `false`, true},
		// Range inclusion.
		{`price > 5`, `price > 7`, true},
		{`price > 7`, `price > 5`, false},
		{`price >= 5`, `price > 5`, true},
		{`price > 5`, `price >= 5`, false},
		{`price >= 5`, `price >= 5`, true},
		{`price < 10`, `price < 3`, true},
		{`price <= 10`, `price < 10`, true},
		{`price < 10`, `price <= 10`, false},
		// Equality against ranges and lists.
		{`price > 5`, `price == 7`, true},
		{`price > 5`, `price == 5`, false},
		{`sym == "A"`, `sym == "A"`, true},
		{`sym == "A"`, `sym == "B"`, false},
		{`sym != "A"`, `sym == "B"`, true},
		{`sym != "A"`, `sym == "A"`, false},
		{`sym in ["A", "B"]`, `sym == "A"`, true},
		{`sym in ["A", "B"]`, `sym == "C"`, false},
		{`sym in ["A", "B", "C"]`, `sym in ["A", "C"]`, true},
		{`sym in ["A"]`, `sym in ["A", "C"]`, false},
		{`price > 5`, `price in [6, 7, 8]`, true},
		{`price > 5`, `price in [6, 2]`, false},
		// Existence.
		{`price exists`, `price > 100`, true},
		{`price exists`, `price in [1]`, true},
		{`price exists`, `volume > 1`, false},
		// Strings.
		{`sym contains "BC"`, `sym == "ABCD"`, true},
		{`sym contains "BC"`, `sym == "AB"`, false},
		{`sym contains "B"`, `sym contains "ABC"`, true},
		{`sym contains "ABC"`, `sym contains "B"`, false},
		{`sym startswith "AB"`, `sym == "ABCD"`, true},
		{`sym startswith "AB"`, `sym startswith "ABC"`, true},
		{`sym startswith "ABC"`, `sym startswith "AB"`, false},
		{`sym contains "BC"`, `sym startswith "ABCD"`, true},
		// Different keys never subsume.
		{`price > 5`, `volume > 7`, false},
		// Boolean composition.
		{`price > 5`, `price > 7 && sym == "A"`, true},
		{`price > 5 && sym == "A"`, `price > 7 && sym == "A"`, true},
		{`price > 5 && sym == "B"`, `price > 7 && sym == "A"`, false},
		{`price > 5 || sym == "A"`, `price > 7`, true},
		{`price > 5`, `price > 7 || price > 9`, true},
		{`price > 5`, `price > 7 || volume > 2`, false},
		// Kind mismatches.
		{`price > 5`, `price == "5"`, false},
		{`flag != true`, `flag == false`, true},
		{`flag != true`, `flag == true`, false},
	}
	for _, c := range cases {
		a, b := MustParse(c.a), MustParse(c.b)
		if got := Covers(a, b); got != c.want {
			t.Errorf("Covers(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCoversTopicSugar(t *testing.T) {
	if !Covers(Topic("sports"), Topic("sports")) {
		t.Error("topic self-coverage")
	}
	if Covers(Topic("sports"), Topic("news")) {
		t.Error("distinct topics")
	}
	if !Covers(TopicPrefix("sports"), Topic("sports.f1")) {
		t.Error("prefix must cover descendant topic")
	}
	if !Covers(TopicPrefix("sports"), Topic("sports")) {
		t.Error("prefix must cover its own root")
	}
	if Covers(TopicPrefix("sports"), Topic("sportsman")) {
		t.Error("prefix boundary violated")
	}
	if !Covers(TopicPrefix("sports"), TopicPrefix("sports.f1")) {
		t.Error("nested prefixes")
	}
	if Covers(Topic("sports"), TopicPrefix("sports")) {
		t.Error("exact topic cannot cover the whole subtree")
	}
}

// Property: whenever Covers(a, b) holds, no random event matched by b is
// rejected by a (soundness of the conservative analysis).
func TestCoversSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	covered := 0
	for trial := 0; trial < 4000; trial++ {
		a := randomFilter(rng, 2)
		b := randomFilter(rng, 2)
		if !Covers(a, b) {
			continue
		}
		covered++
		for j := 0; j < 40; j++ {
			ev := randomEvent(rng)
			if b.Match(ev) && !a.Match(ev) {
				t.Fatalf("unsound: Covers(%q, %q) but event %+v matches b only",
					a.String(), b.String(), ev)
			}
		}
	}
	if covered == 0 {
		t.Fatal("property exercised zero covered pairs — generator too narrow")
	}
}

func BenchmarkCovers(b *testing.B) {
	x := MustParse(`price > 5 && sym in ["A", "B"] || volume exists`)
	y := MustParse(`price > 7 && sym == "A"`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Covers(x, y)
	}
}
