package pubsub

import "fmt"

// Parse compiles subscription-language source text into a Filter.
//
// Grammar:
//
//	expr      := or
//	or        := and ( '||' and )*
//	and       := unary ( '&&' unary )*
//	unary     := '!' unary | primary
//	primary   := '(' expr ')' | 'true' | 'false' | predicate
//	predicate := ident cmpop literal
//	           | ident 'in' '[' literal ( ',' literal )* ']'
//	           | ident 'contains' string
//	           | ident 'startswith' string
//	           | ident 'exists'
//	cmpop     := '==' | '!=' | '<' | '<=' | '>' | '>='
//	literal   := string | number | 'true' | 'false'
//
// Identifiers may be dotted (`stock.symbol`). The pseudo attribute `topic`
// matches the event topic. `&&` binds tighter than `||`.
func Parse(src string) (Filter, error) {
	p := &parser{lx: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	f, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokEOF {
		return nil, fmt.Errorf("filter: unexpected %s at offset %d", p.cur.kind, p.cur.pos)
	}
	return f, nil
}

// MustParse is Parse for compile-time-constant filters in tests and
// examples; it panics on error.
func MustParse(src string) Filter {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

type parser struct {
	lx  lexer
	cur token
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.cur = t
	return nil
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.cur.kind != k {
		return token{}, fmt.Errorf("filter: expected %s, found %s at offset %d", k, p.cur.kind, p.cur.pos)
	}
	t := p.cur
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) parseOr() (Filter, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	kids := []Filter{left}
	for p.cur.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return orFilter{kids: kids}, nil
}

func (p *parser) parseAnd() (Filter, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	kids := []Filter{left}
	for p.cur.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return andFilter{kids: kids}, nil
}

func (p *parser) parseUnary() (Filter, error) {
	if p.cur.kind == tokNot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		kid, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notFilter{kid: kid}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Filter, error) {
	switch p.cur.kind {
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		f, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return f, nil
	case tokBool:
		b := p.cur.b
		if err := p.advance(); err != nil {
			return nil, err
		}
		if b {
			return matchAll{}, nil
		}
		return matchNone{}, nil
	case tokIdent:
		return p.parsePredicate()
	default:
		return nil, fmt.Errorf("filter: expected predicate or '(', found %s at offset %d", p.cur.kind, p.cur.pos)
	}
}

func (p *parser) parsePredicate() (Filter, error) {
	key, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	switch p.cur.kind {
	case tokEq, tokNeq, tokLt, tokLe, tokGt, tokGe:
		op := cmpOpFor(p.cur.kind)
		if err := p.advance(); err != nil {
			return nil, err
		}
		val, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		// `topic == "t"` canonicalises to the topic filter so that
		// TopicOf recognises parsed topic subscriptions.
		if key.text == "topic" && op == opEq && val.Kind() == KindString {
			return topicFilter{topic: val.Str()}, nil
		}
		return cmpFilter{key: key.text, op: op, val: val}, nil
	case tokIn:
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLBracket); err != nil {
			return nil, err
		}
		var vals []Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if p.cur.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		return inFilter{key: key.text, vals: vals}, nil
	case tokContains:
		if err := p.advance(); err != nil {
			return nil, err
		}
		s, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		return containsFilter{key: key.text, sub: s.str}, nil
	case tokStartsWith:
		if err := p.advance(); err != nil {
			return nil, err
		}
		s, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		return startsWithFilter{key: key.text, prefix: s.str}, nil
	case tokExists:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return existsFilter{key: key.text}, nil
	default:
		return nil, fmt.Errorf("filter: expected operator after %q, found %s at offset %d", key.text, p.cur.kind, p.cur.pos)
	}
}

func cmpOpFor(k tokKind) cmpOp {
	switch k {
	case tokEq:
		return opEq
	case tokNeq:
		return opNeq
	case tokLt:
		return opLt
	case tokLe:
		return opLe
	case tokGt:
		return opGt
	case tokGe:
		return opGe
	default:
		return 0
	}
}

func (p *parser) parseLiteral() (Value, error) {
	switch p.cur.kind {
	case tokString:
		v := String(p.cur.str)
		return v, p.advance()
	case tokNumber:
		v := Num(p.cur.num)
		return v, p.advance()
	case tokBool:
		v := Bool(p.cur.b)
		return v, p.advance()
	default:
		return Value{}, fmt.Errorf("filter: expected literal, found %s at offset %d", p.cur.kind, p.cur.pos)
	}
}
