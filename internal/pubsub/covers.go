package pubsub

import "strings"

// Covers reports whether filter a provably subsumes filter b: every event
// matched by b is also matched by a. It is *conservative* — a false
// result means "not provable with these rules", not "not subsumed".
//
// Subsumption is the standard tool for subscription summarisation in
// content-based dissemination: a process whose active filter covers an
// incoming subscription need not install (or forward) the narrower one.
// core's topic mode gets this for free (equal topics); Covers extends the
// idea to the expressive language.
func Covers(a, b Filter) bool {
	// Normalise the topic sugar so the predicate rules below apply.
	a, b = normalise(a), normalise(b)

	switch x := a.(type) {
	case matchAll:
		return true
	case andFilter:
		// a = ⋀ kids: every conjunct must cover b.
		for _, k := range x.kids {
			if !Covers(k, b) {
				return false
			}
		}
		return true
	case orFilter:
		// Sufficient: some alternative covers b on its own.
		for _, k := range x.kids {
			if Covers(k, b) {
				return true
			}
		}
		// Or b is a disjunction handled below.
	}

	switch y := b.(type) {
	case matchNone:
		return true
	case orFilter:
		// b = ⋁ kids: a must cover every alternative.
		for _, k := range y.kids {
			if !Covers(a, k) {
				return false
			}
		}
		return true
	case andFilter:
		// Sufficient: a covers one conjunct (b is narrower than it).
		for _, k := range y.kids {
			if Covers(a, k) {
				return true
			}
		}
		return false
	}

	return predicateCovers(a, b)
}

// normalise rewrites the topic sugar types into plain predicates.
func normalise(f Filter) Filter {
	switch x := f.(type) {
	case topicFilter:
		return cmpFilter{key: "topic", op: opEq, val: String(x.topic)}
	case topicPrefixFilter:
		return orFilter{kids: []Filter{
			cmpFilter{key: "topic", op: opEq, val: String(x.prefix)},
			startsWithFilter{key: "topic", prefix: x.prefix + "."},
		}}
	default:
		return f
	}
}

// predicateCovers handles leaf predicates on the same key.
func predicateCovers(a, b Filter) bool {
	keyA, okA := predicateKey(a)
	keyB, okB := predicateKey(b)
	if !okA || !okB || keyA != keyB {
		return false
	}
	// Existence covers every predicate on the same key: all predicates
	// require the attribute to be present.
	if _, isExists := a.(existsFilter); isExists {
		return true
	}
	switch x := a.(type) {
	case cmpFilter:
		return cmpCovers(x, b)
	case inFilter:
		return inCovers(x, b)
	case containsFilter:
		switch y := b.(type) {
		case cmpFilter:
			return y.op == opEq && y.val.Kind() == KindString &&
				strings.Contains(y.val.Str(), x.sub)
		case containsFilter:
			return strings.Contains(y.sub, x.sub)
		case startsWithFilter:
			// Every string with prefix p contains any substring of p.
			return strings.Contains(y.prefix, x.sub)
		case inFilter:
			return allInList(y, func(v Value) bool {
				return v.Kind() == KindString && strings.Contains(v.Str(), x.sub)
			})
		}
	case startsWithFilter:
		switch y := b.(type) {
		case cmpFilter:
			return y.op == opEq && y.val.Kind() == KindString &&
				strings.HasPrefix(y.val.Str(), x.prefix)
		case startsWithFilter:
			return strings.HasPrefix(y.prefix, x.prefix)
		case inFilter:
			return allInList(y, func(v Value) bool {
				return v.Kind() == KindString && strings.HasPrefix(v.Str(), x.prefix)
			})
		}
	}
	return false
}

// predicateKey extracts the attribute key of a leaf predicate.
func predicateKey(f Filter) (string, bool) {
	switch x := f.(type) {
	case cmpFilter:
		return x.key, true
	case inFilter:
		return x.key, true
	case containsFilter:
		return x.key, true
	case startsWithFilter:
		return x.key, true
	case existsFilter:
		return x.key, true
	default:
		return "", false
	}
}

// cmpCovers: a is `key op val`; which narrower predicates does it cover?
func cmpCovers(a cmpFilter, b Filter) bool {
	matchVal := func(v Value) bool {
		probe := cmpFilter{key: a.key, op: a.op, val: a.val}
		ev := Event{Attrs: []Attr{{Key: a.key, Val: v}}}
		if a.key == "topic" {
			if v.Kind() != KindString {
				return false
			}
			ev = Event{Topic: v.Str()}
		}
		return probe.Match(&ev)
	}
	switch y := b.(type) {
	case cmpFilter:
		if y.op == opEq {
			// b matches exactly the events where key == y.val: a covers b
			// iff a accepts that value.
			return matchVal(y.val)
		}
		if a.val.Kind() != y.val.Kind() {
			return false
		}
		cmp, ok := y.val.Compare(a.val)
		if !ok {
			// Unordered kinds (bool): only identical equality handled above.
			return false
		}
		// Range inclusion on ordered kinds.
		switch a.op {
		case opGt:
			return (y.op == opGt && cmp >= 0) || (y.op == opGe && cmp > 0)
		case opGe:
			return (y.op == opGt || y.op == opGe) && cmp >= 0
		case opLt:
			return (y.op == opLt && cmp <= 0) || (y.op == opLe && cmp < 0)
		case opLe:
			return (y.op == opLt || y.op == opLe) && cmp <= 0
		case opNeq:
			// a: key != v covers any range that excludes v; for cmp
			// predicates, conservative false (range may include v).
			return false
		default:
			return false
		}
	case inFilter:
		return allInList(y, matchVal)
	}
	return false
}

// inCovers: a is `key in [...]`.
func inCovers(a inFilter, b Filter) bool {
	inList := func(v Value) bool {
		for _, cand := range a.vals {
			if v.Equal(cand) {
				return true
			}
		}
		return false
	}
	switch y := b.(type) {
	case cmpFilter:
		return y.op == opEq && inList(y.val)
	case inFilter:
		return allInList(y, inList)
	}
	return false
}

// allInList reports whether every value of b's list satisfies pred
// (empty lists match nothing, so they are trivially covered).
func allInList(b inFilter, pred func(Value) bool) bool {
	for _, v := range b.vals {
		if !pred(v) {
			return false
		}
	}
	return true
}
