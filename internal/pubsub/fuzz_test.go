package pubsub

import "testing"

// FuzzParse checks the parser never panics and that accepted filters
// round-trip through String with stable semantics probes.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`price > 100 && symbol == "ACME"`,
		`a in [1, 2, "x"] || !(b exists)`,
		`topic startswith "s." && q contains "\""`,
		`true`, `false`, `((a == 1))`,
		`x != -1.5e3`, `&&`, `"unterminated`,
	} {
		f.Add(seed)
	}
	ev := &Event{Topic: "s.t", Attrs: []Attr{
		{"a", Num(1)}, {"b", String("x")}, {"price", Num(150)},
	}}
	f.Fuzz(func(t *testing.T, src string) {
		flt, err := Parse(src)
		if err != nil {
			return
		}
		out := flt.String()
		re, err := Parse(out)
		if err != nil {
			t.Fatalf("String() of valid filter failed to re-parse: %q -> %q: %v", src, out, err)
		}
		if flt.Match(ev) != re.Match(ev) {
			t.Fatalf("round-trip changed semantics: %q -> %q", src, out)
		}
	})
}

// FuzzUnmarshal checks the event codec never panics on arbitrary input
// and that successfully decoded events re-encode to the same bytes.
func FuzzUnmarshal(f *testing.F) {
	good, _ := (&Event{
		ID:    EventID{1, 2},
		Topic: "t",
		Attrs: []Attr{{"k", Num(3)}, {"s", String("v")}, {"b", Bool(true)}},
	}).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 2, 0, 1, 'x', 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var ev Event
		if err := ev.UnmarshalBinary(data); err != nil {
			return
		}
		re, err := ev.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded event failed to re-encode: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("decode/encode not canonical:\n in %x\nout %x", data, re)
		}
	})
}
