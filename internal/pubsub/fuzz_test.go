package pubsub

import "testing"

// FuzzParse checks the parser never panics and that accepted filters
// round-trip through String with stable semantics probes.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		`price > 100 && symbol == "ACME"`,
		`a in [1, 2, "x"] || !(b exists)`,
		`topic startswith "s." && q contains "\""`,
		`true`, `false`, `((a == 1))`,
		`x != -1.5e3`, `&&`, `"unterminated`,
	} {
		f.Add(seed)
	}
	ev := &Event{Topic: "s.t", Attrs: []Attr{
		{"a", Num(1)}, {"b", String("x")}, {"price", Num(150)},
	}}
	f.Fuzz(func(t *testing.T, src string) {
		flt, err := Parse(src)
		if err != nil {
			return
		}
		out := flt.String()
		re, err := Parse(out)
		if err != nil {
			t.Fatalf("String() of valid filter failed to re-parse: %q -> %q: %v", src, out, err)
		}
		if flt.Match(ev) != re.Match(ev) {
			t.Fatalf("round-trip changed semantics: %q -> %q", src, out)
		}
	})
}

// filterCorpus seeds FuzzFilterRoundTrip with every filter expression
// the tests and examples actually use (stockwatch's watch list, the
// live-runtime tests, the quick-start docs, workload generators), plus
// edge cases around precedence, escaping and numeric forms.
var filterCorpus = []string{
	// examples/stockwatch
	`price > 900`,
	`symbol in ["SYM00", "SYM01"] && price > 500`,
	`region == "eu" && volume >= 50000`,
	`price <= 100`,
	`symbol startswith "SYM0" && region != "apac"`,
	`volume > 90000 || price > 990`,
	// live/fairgossip tests and package docs
	`price > 100`,
	`price <= 100`,
	`price > 100 && symbol in ["ACME", "GLOBEX"]`,
	// workload.Stocks.FilterWithSelectivity output
	`price >= 999`,
	`price >= 0.5`,
	`price >= 1e+03`,
	// precedence, negation, grouping, escapes
	`a == 1 && b == 2 || c == 3`,
	`a == 1 && (b == 2 || c == 3)`,
	`!(a == 1) && !(b exists)`,
	`s == "quote \" backslash \\ done"`,
	`t startswith "s." || t contains "."`,
	`n in [1, -2.5, 3e4, "mixed", true]`,
}

// FuzzFilterRoundTrip is the parse → String → re-parse target: every
// accepted filter must re-parse, match identically on a panel of probe
// events, and render canonically (String is a fixed point after one
// round trip).
func FuzzFilterRoundTrip(f *testing.F) {
	for _, seed := range filterCorpus {
		f.Add(seed)
	}
	probes := []*Event{
		{Topic: "ticks", Attrs: []Attr{
			{"symbol", String("SYM00")}, {"price", Num(950)},
			{"volume", Num(100000)}, {"region", String("eu")},
		}},
		{Topic: "s.t", Attrs: []Attr{
			{"a", Num(1)}, {"b", Num(2)}, {"c", Num(3)},
			{"t", String("s.t")}, {"n", Num(-2.5)},
		}},
		{Topic: "other", Attrs: []Attr{
			{"s", String(`quote " backslash \ done`)}, {"b", Bool(true)},
		}},
		{Topic: "empty"},
	}
	f.Fuzz(func(t *testing.T, src string) {
		flt, err := Parse(src)
		if err != nil {
			return
		}
		rendered := flt.String()
		re, err := Parse(rendered)
		if err != nil {
			t.Fatalf("String() of valid filter failed to re-parse: %q -> %q: %v", src, rendered, err)
		}
		for i, ev := range probes {
			if flt.Match(ev) != re.Match(ev) {
				t.Fatalf("round-trip changed semantics on probe %d: %q -> %q", i, src, rendered)
			}
		}
		if again := re.String(); again != rendered {
			t.Fatalf("String not canonical after one round trip: %q -> %q -> %q", src, rendered, again)
		}
	})
}

// FuzzUnmarshal checks the event codec never panics on arbitrary input
// and that successfully decoded events re-encode to the same bytes.
func FuzzUnmarshal(f *testing.F) {
	good, _ := (&Event{
		ID:    EventID{1, 2},
		Topic: "t",
		Attrs: []Attr{{"k", Num(3)}, {"s", String("v")}, {"b", Bool(true)}},
	}).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 2, 0, 1, 'x', 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var ev Event
		if err := ev.UnmarshalBinary(data); err != nil {
			return
		}
		re, err := ev.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded event failed to re-encode: %v", err)
		}
		if string(re) != string(data) {
			t.Fatalf("decode/encode not canonical:\n in %x\nout %x", data, re)
		}
	})
}
