package pubsub

import (
	"reflect"
	"testing"
)

func TestInterestSubscribeMatch(t *testing.T) {
	var in Interest
	ev := mkEvent("news.eu", Attr{"lang", String("en")})
	if in.Match(ev) {
		t.Fatal("empty interest matched")
	}
	id := in.Subscribe(Topic("news.eu"))
	if !in.Match(ev) {
		t.Fatal("topic subscription did not match")
	}
	if in.Count() != 1 {
		t.Fatalf("Count = %d", in.Count())
	}
	if !in.Unsubscribe(id) {
		t.Fatal("unsubscribe failed")
	}
	if in.Unsubscribe(id) {
		t.Fatal("double unsubscribe succeeded")
	}
	if in.Match(ev) {
		t.Fatal("matched after unsubscribe")
	}
}

func TestInterestDisjunction(t *testing.T) {
	var in Interest
	in.Subscribe(Topic("a"))
	in.Subscribe(MustParse(`price > 10`))
	if !in.Match(mkEvent("a")) {
		t.Fatal("first filter should match")
	}
	if !in.Match(mkEvent("b", Attr{"price", Num(11)})) {
		t.Fatal("second filter should match")
	}
	if in.Match(mkEvent("b", Attr{"price", Num(5)})) {
		t.Fatal("neither filter should match")
	}
}

func TestInterestTopics(t *testing.T) {
	var in Interest
	in.Subscribe(Topic("zebra"))
	in.Subscribe(Topic("alpha"))
	in.Subscribe(Topic("alpha")) // duplicate topic via second sub
	in.Subscribe(MustParse(`price > 10`))
	got := in.Topics()
	if !reflect.DeepEqual(got, []string{"alpha", "zebra"}) {
		t.Fatalf("Topics = %v", got)
	}
	if !in.HasTopic("alpha") || in.HasTopic("missing") {
		t.Fatal("HasTopic wrong")
	}
}

func TestInterestSubscriptionsCopy(t *testing.T) {
	var in Interest
	in.Subscribe(Topic("a"))
	subs := in.Subscriptions()
	subs[0].Filter = MatchNone()
	if !in.Match(mkEvent("a")) {
		t.Fatal("Subscriptions() must return a copy")
	}
	if subs[0].Source == "" {
		t.Fatal("subscription source not recorded")
	}
}

func TestInterestIDsUnique(t *testing.T) {
	var in Interest
	seen := make(map[SubID]bool)
	for i := 0; i < 100; i++ {
		id := in.Subscribe(MatchAll())
		if seen[id] {
			t.Fatalf("duplicate SubID %d", id)
		}
		seen[id] = true
	}
	// IDs remain unique after churn.
	for id := range seen {
		in.Unsubscribe(id)
	}
	id := in.Subscribe(MatchAll())
	if seen[id] {
		t.Fatal("SubID reused after unsubscribe")
	}
}
