// Package pubsub implements the selective-information model of §2 of the
// paper: events carrying typed attributes, topics, a subscription language
// (filters), and the per-process interest function I(p,e).
//
// Filters support content-based selection (`price > 100 && symbol ==
// "ACME"`) as well as topic-based selection (a topic is "a filter which
// consists of a single attribute without conditions", §2). The pseudo
// attribute "topic" always refers to the event's topic.
package pubsub

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// Value kinds. They start at 1 so that the zero Value is recognisably
// invalid.
const (
	KindString Kind = iota + 1
	KindNum
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindNum:
		return "num"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is a typed attribute value: a string, a float64 number, or a bool.
// The zero Value is invalid and matches nothing.
type Value struct {
	kind Kind
	str  string
	num  float64
	b    bool
}

// String returns a string Value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Num returns a numeric Value.
func Num(f float64) Value { return Value{kind: KindNum, num: f} }

// Bool returns a boolean Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the value's kind (0 for the zero Value).
func (v Value) Kind() Kind { return v.kind }

// Str returns the string payload (meaningful only when Kind is KindString).
func (v Value) Str() string { return v.str }

// NumVal returns the numeric payload (meaningful only when Kind is KindNum).
func (v Value) NumVal() float64 { return v.num }

// BoolVal returns the boolean payload (meaningful only when Kind is KindBool).
func (v Value) BoolVal() bool { return v.b }

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.str == o.str
	case KindNum:
		return v.num == o.num
	case KindBool:
		return v.b == o.b
	default:
		return false
	}
}

// Compare orders two values of the same comparable kind. ok is false when
// the kinds differ or the kind has no order (bool, invalid).
func (v Value) Compare(o Value) (cmp int, ok bool) {
	if v.kind != o.kind {
		return 0, false
	}
	switch v.kind {
	case KindString:
		switch {
		case v.str < o.str:
			return -1, true
		case v.str > o.str:
			return 1, true
		default:
			return 0, true
		}
	case KindNum:
		switch {
		case v.num < o.num:
			return -1, true
		case v.num > o.num:
			return 1, true
		default:
			return 0, true
		}
	default:
		return 0, false
	}
}

// GoString renders the value as it would appear in filter source text.
func (v Value) GoString() string { return v.String() }

// String renders the value in filter-language syntax.
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return QuoteString(v.str)
	case KindNum:
		return strconv.FormatFloat(v.num, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "<invalid>"
	}
}

// QuoteString renders s as a filter-language string literal. The language
// knows only the escapes \" \\ \n \t; every other byte is legal raw
// inside quotes, so no further escaping is needed (unlike Go's %q).
func QuoteString(s string) string {
	var sb strings.Builder
	sb.Grow(len(s) + 2)
	sb.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			sb.WriteString(`\"`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			sb.WriteByte(c)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

// wireSize returns the encoded size of the value in bytes.
func (v Value) wireSize() int {
	switch v.kind {
	case KindString:
		return 1 + 2 + len(v.str)
	case KindNum:
		return 1 + 8
	case KindBool:
		return 1 + 1
	default:
		return 1
	}
}

// Attr is a named, typed attribute of an event.
type Attr struct {
	Key string
	Val Value
}

func (a Attr) String() string { return fmt.Sprintf("%s=%s", a.Key, a.Val) }
