package pubsub

import "sort"

// SubID identifies an active subscription within one process.
type SubID uint32

// Subscription pairs a filter with its identity and original source text.
type Subscription struct {
	ID     SubID
	Filter Filter
	Source string
}

// Interest is a process's interest function I(p, e) (§2): the disjunction
// of its active filters. The zero value is an empty interest that matches
// nothing. Interest is not safe for concurrent use; concurrent runtimes
// guard it externally.
type Interest struct {
	subs   []Subscription
	nextID SubID
}

// Subscribe registers a filter and returns its subscription ID.
func (in *Interest) Subscribe(f Filter) SubID {
	in.nextID++
	id := in.nextID
	in.subs = append(in.subs, Subscription{ID: id, Filter: f, Source: f.String()})
	return id
}

// Unsubscribe removes the subscription with the given ID, reporting
// whether it existed.
func (in *Interest) Unsubscribe(id SubID) bool {
	for i, s := range in.subs {
		if s.ID == id {
			in.subs = append(in.subs[:i], in.subs[i+1:]...)
			return true
		}
	}
	return false
}

// Match evaluates I(p, e): true if any active filter matches.
func (in *Interest) Match(e *Event) bool {
	for _, s := range in.subs {
		if s.Filter.Match(e) {
			return true
		}
	}
	return false
}

// Count returns the number of active subscriptions — the "#filters" term
// of the paper's benefit formula (Fig. 2).
func (in *Interest) Count() int { return len(in.subs) }

// Subscriptions returns a copy of the active subscriptions.
func (in *Interest) Subscriptions() []Subscription {
	out := make([]Subscription, len(in.subs))
	copy(out, in.subs)
	return out
}

// Topics returns the sorted set of topics selected by plain topic
// subscriptions (filters created by Topic or parsed from `topic == "t"`).
// Content-based filters do not contribute topics.
func (in *Interest) Topics() []string {
	seen := make(map[string]struct{}, len(in.subs))
	for _, s := range in.subs {
		if t, ok := TopicOf(s.Filter); ok {
			seen[t] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// HasTopic reports whether the interest includes a plain subscription to
// the given topic.
func (in *Interest) HasTopic(topic string) bool {
	for _, s := range in.subs {
		if t, ok := TopicOf(s.Filter); ok && t == topic {
			return true
		}
	}
	return false
}
