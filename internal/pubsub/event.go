package pubsub

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// EventID uniquely identifies a published event as (publisher, sequence).
// It is comparable and suitable as a map key, which is how dissemination
// layers deduplicate.
type EventID struct {
	Publisher uint32
	Seq       uint32
}

func (id EventID) String() string { return fmt.Sprintf("%d/%d", id.Publisher, id.Seq) }

// Event is a published notification: a topic, optional typed attributes
// for content-based filtering, and an opaque payload.
type Event struct {
	ID      EventID
	Topic   string
	Attrs   []Attr
	Payload []byte
}

// Attr returns the value of the named attribute. The pseudo attribute
// "topic" resolves to the event's topic.
func (e *Event) Attr(key string) (Value, bool) {
	if key == "topic" {
		return String(e.Topic), true
	}
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return Value{}, false
}

// WithAttr returns a copy of the event with the attribute appended. It is
// a convenience for building events fluently in examples and tests.
func (e Event) WithAttr(key string, v Value) Event {
	attrs := make([]Attr, len(e.Attrs), len(e.Attrs)+1)
	copy(attrs, e.Attrs)
	e.Attrs = append(attrs, Attr{Key: key, Val: v})
	return e
}

const eventHeaderSize = 4 + 4 + 2 + 2 + 4 // id + topic len + attr count + payload len

// WireSize returns the exact number of bytes MarshalBinary would produce.
// Fairness accounting is in bytes, so dissemination layers use WireSize to
// charge contribution without actually serialising in simulation runs.
func (e *Event) WireSize() int {
	n := eventHeaderSize + len(e.Topic) + len(e.Payload)
	for _, a := range e.Attrs {
		n += 2 + len(a.Key) + a.Val.wireSize()
	}
	return n
}

// Codec errors.
var (
	ErrShortBuffer = errors.New("pubsub: short buffer")
	ErrCorrupt     = errors.New("pubsub: corrupt event encoding")
)

// MarshalBinary encodes the event with a compact length-prefixed layout.
func (e *Event) MarshalBinary() ([]byte, error) {
	if len(e.Topic) > math.MaxUint16 {
		return nil, fmt.Errorf("pubsub: topic too long (%d bytes)", len(e.Topic))
	}
	if len(e.Attrs) > math.MaxUint16 {
		return nil, fmt.Errorf("pubsub: too many attributes (%d)", len(e.Attrs))
	}
	buf := make([]byte, 0, e.WireSize())
	buf = binary.BigEndian.AppendUint32(buf, e.ID.Publisher)
	buf = binary.BigEndian.AppendUint32(buf, e.ID.Seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Topic)))
	buf = append(buf, e.Topic...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Attrs)))
	for _, a := range e.Attrs {
		if len(a.Key) > math.MaxUint16 {
			return nil, fmt.Errorf("pubsub: attribute key too long (%d bytes)", len(a.Key))
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(a.Key)))
		buf = append(buf, a.Key...)
		buf = append(buf, byte(a.Val.kind))
		switch a.Val.kind {
		case KindString:
			if len(a.Val.str) > math.MaxUint16 {
				return nil, fmt.Errorf("pubsub: attribute value too long (%d bytes)", len(a.Val.str))
			}
			buf = binary.BigEndian.AppendUint16(buf, uint16(len(a.Val.str)))
			buf = append(buf, a.Val.str...)
		case KindNum:
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(a.Val.num))
		case KindBool:
			if a.Val.b {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		default:
			return nil, fmt.Errorf("pubsub: attribute %q has invalid value", a.Key)
		}
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(e.Payload)))
	buf = append(buf, e.Payload...)
	return buf, nil
}

// UnmarshalBinary decodes an event previously produced by MarshalBinary.
func (e *Event) UnmarshalBinary(data []byte) error {
	r := reader{buf: data}
	e.ID.Publisher = r.u32()
	e.ID.Seq = r.u32()
	e.Topic = string(r.bytes(int(r.u16())))
	nattrs := int(r.u16())
	if r.err == nil && nattrs > len(r.buf) { // each attr needs ≥1 byte; cheap corruption guard
		return ErrCorrupt
	}
	e.Attrs = nil
	if nattrs > 0 && r.err == nil {
		e.Attrs = make([]Attr, 0, nattrs)
	}
	for i := 0; i < nattrs && r.err == nil; i++ {
		key := string(r.bytes(int(r.u16())))
		kind := Kind(r.u8())
		var v Value
		switch kind {
		case KindString:
			v = String(string(r.bytes(int(r.u16()))))
		case KindNum:
			v = Num(math.Float64frombits(r.u64()))
		case KindBool:
			switch r.u8() {
			case 0:
				v = Bool(false)
			case 1:
				v = Bool(true)
			default:
				if r.err == nil {
					r.err = ErrCorrupt
				}
			}
		default:
			if r.err == nil {
				r.err = ErrCorrupt
			}
		}
		e.Attrs = append(e.Attrs, Attr{Key: key, Val: v})
	}
	payloadLen := int(r.u32())
	if r.err == nil && payloadLen > len(r.buf)-r.off {
		return ErrShortBuffer
	}
	e.Payload = nil
	if payloadLen > 0 && r.err == nil {
		e.Payload = append([]byte(nil), r.bytes(payloadLen)...)
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(data) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-r.off)
	}
	return nil
}

// reader is a tiny cursor that records the first error and then no-ops.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = ErrShortBuffer
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) bytes(n int) []byte { return r.take(n) }

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}
