package pubsub

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestEventAttrLookup(t *testing.T) {
	ev := mkEvent("news", Attr{"lang", String("en")})
	if v, ok := ev.Attr("lang"); !ok || v.Str() != "en" {
		t.Fatal("attr lookup failed")
	}
	if v, ok := ev.Attr("topic"); !ok || v.Str() != "news" {
		t.Fatal("pseudo attribute topic failed")
	}
	if _, ok := ev.Attr("missing"); ok {
		t.Fatal("missing attr reported present")
	}
}

func TestWithAttrDoesNotAlias(t *testing.T) {
	base := Event{Topic: "t", Attrs: []Attr{{"a", Num(1)}}}
	e1 := base.WithAttr("b", Num(2))
	e2 := base.WithAttr("c", Num(3))
	if _, ok := e1.Attr("c"); ok {
		t.Fatal("WithAttr aliased sibling copies")
	}
	if _, ok := e2.Attr("b"); ok {
		t.Fatal("WithAttr aliased sibling copies")
	}
	if len(base.Attrs) != 1 {
		t.Fatal("WithAttr mutated the receiver")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	ev := Event{
		ID:    EventID{Publisher: 7, Seq: 42},
		Topic: "stocks.nyse",
		Attrs: []Attr{
			{"symbol", String("ACME")},
			{"price", Num(101.5)},
			{"neg", Num(math.Inf(-1))},
			{"halted", Bool(true)},
			{"empty", String("")},
		},
		Payload: []byte{0, 1, 2, 255},
	}
	data, err := ev.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != ev.WireSize() {
		t.Fatalf("WireSize %d != encoded length %d", ev.WireSize(), len(data))
	}
	var got Event
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ev, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", ev, got)
	}
}

func TestMarshalEmptyEvent(t *testing.T) {
	ev := Event{}
	data, err := ev.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Event
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ev, got) {
		t.Fatalf("empty round trip mismatch: %+v", got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	ev := Event{Topic: "t", Attrs: []Attr{{"k", Num(1)}}, Payload: []byte("xyz")}
	data, err := ev.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every length must error, never panic.
	for cut := 0; cut < len(data); cut++ {
		var got Event
		if err := got.UnmarshalBinary(data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded without error", cut)
		}
	}
	// Trailing garbage must be rejected.
	var got Event
	if err := got.UnmarshalBinary(append(append([]byte{}, data...), 0xAA)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// Corrupt attribute kind must be rejected.
	bad := append([]byte{}, data...)
	// Header is 4+4+2+1 ("t")+2; next two bytes are key length, then key,
	// then the kind byte.
	kindOff := 4 + 4 + 2 + 1 + 2 + 2 + 1
	bad[kindOff] = 0xFF
	if err := got.UnmarshalBinary(bad); err == nil {
		t.Fatal("corrupt kind accepted")
	}
}

func TestMarshalOversize(t *testing.T) {
	ev := Event{Topic: string(bytes.Repeat([]byte("x"), 70000))}
	if _, err := ev.MarshalBinary(); err == nil {
		t.Fatal("oversized topic accepted")
	}
	ev = Event{Attrs: []Attr{{string(bytes.Repeat([]byte("k"), 70000)), Num(1)}}}
	if _, err := ev.MarshalBinary(); err == nil {
		t.Fatal("oversized key accepted")
	}
	ev = Event{Attrs: []Attr{{"k", String(string(bytes.Repeat([]byte("v"), 70000)))}}}
	if _, err := ev.MarshalBinary(); err == nil {
		t.Fatal("oversized value accepted")
	}
	ev = Event{Attrs: []Attr{{"k", Value{}}}}
	if _, err := ev.MarshalBinary(); err == nil {
		t.Fatal("invalid value accepted")
	}
}

// Property: marshal/unmarshal round-trips arbitrary generated events, and
// WireSize always equals the encoded length.
func TestQuickCodecRoundTrip(t *testing.T) {
	type rawAttr struct {
		Key  string
		Kind uint8
		S    string
		N    float64
		B    bool
	}
	f := func(pub, seq uint32, topic string, rawAttrs []rawAttr, payload []byte) bool {
		if len(topic) > 1000 {
			topic = topic[:1000]
		}
		ev := Event{ID: EventID{pub, seq}, Topic: topic, Payload: payload}
		for _, ra := range rawAttrs {
			if len(ra.Key) > 100 {
				ra.Key = ra.Key[:100]
			}
			var v Value
			switch ra.Kind % 3 {
			case 0:
				if len(ra.S) > 1000 {
					ra.S = ra.S[:1000]
				}
				v = String(ra.S)
			case 1:
				if math.IsNaN(ra.N) {
					ra.N = 0
				}
				v = Num(ra.N)
			case 2:
				v = Bool(ra.B)
			}
			ev.Attrs = append(ev.Attrs, Attr{ra.Key, v})
		}
		data, err := ev.MarshalBinary()
		if err != nil {
			return false
		}
		if len(data) != ev.WireSize() {
			return false
		}
		var got Event
		if err := got.UnmarshalBinary(data); err != nil {
			return false
		}
		if len(ev.Payload) == 0 {
			ev.Payload = nil
		}
		return reflect.DeepEqual(ev, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(21))}); err != nil {
		t.Fatal(err)
	}
}

// Property: UnmarshalBinary never panics on arbitrary bytes.
func TestQuickUnmarshalArbitraryBytes(t *testing.T) {
	f := func(data []byte) bool {
		var ev Event
		_ = ev.UnmarshalBinary(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(22))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	ev := Event{
		ID:    EventID{1, 2},
		Topic: "stocks.nyse",
		Attrs: []Attr{
			{"symbol", String("ACME")},
			{"price", Num(101.5)},
			{"volume", Num(20000)},
		},
		Payload: bytes.Repeat([]byte("p"), 64),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ev.MarshalBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	ev := Event{
		ID:    EventID{1, 2},
		Topic: "stocks.nyse",
		Attrs: []Attr{
			{"symbol", String("ACME")},
			{"price", Num(101.5)},
		},
		Payload: bytes.Repeat([]byte("p"), 64),
	}
	data, err := ev.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var got Event
		if err := got.UnmarshalBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}
