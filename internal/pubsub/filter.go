package pubsub

import (
	"fmt"
	"strings"
)

// Filter is a compiled subscription-language expression: the paper's
// notion of a filter that "allows to specify several attributes and
// corresponding conditions under which it evaluates to true" (§2).
//
// Filters are immutable and safe for concurrent use.
type Filter interface {
	// Match evaluates the filter against an event. Missing attributes and
	// type mismatches make the enclosing predicate false (never an error):
	// an event "is matched to a filter if it provides all attributes
	// specified by the filter and satisfies the corresponding conditions".
	Match(e *Event) bool
	// String renders the filter in subscription-language syntax; the
	// output re-parses to an equivalent filter.
	String() string
}

// Topic returns a filter matching events published on exactly the given
// topic — the paper's topic-as-degenerate-filter (§2).
func Topic(topic string) Filter { return topicFilter{topic: topic} }

// TopicPrefix returns a filter matching the given topic and all its
// descendants in a dot-separated topic hierarchy ("sports" matches
// "sports" and "sports.football" but not "sportsman").
func TopicPrefix(prefix string) Filter { return topicPrefixFilter{prefix: prefix} }

// MatchAll returns a filter that matches every event (classic gossip's
// implicit "every participant is interested in every message", §4.2).
func MatchAll() Filter { return matchAll{} }

// MatchNone returns a filter that matches no event.
func MatchNone() Filter { return matchNone{} }

// And combines filters conjunctively.
func And(fs ...Filter) Filter {
	switch len(fs) {
	case 0:
		return matchAll{}
	case 1:
		return fs[0]
	}
	return andFilter{kids: fs}
}

// Or combines filters disjunctively.
func Or(fs ...Filter) Filter {
	switch len(fs) {
	case 0:
		return matchNone{}
	case 1:
		return fs[0]
	}
	return orFilter{kids: fs}
}

// Not negates a filter.
func Not(f Filter) Filter { return notFilter{kid: f} }

// TopicOf reports whether f selects exactly one topic, and which. It is
// how topic-group protocols discover group membership from subscriptions.
func TopicOf(f Filter) (string, bool) {
	if tf, ok := f.(topicFilter); ok {
		return tf.topic, true
	}
	return "", false
}

type topicFilter struct{ topic string }

func (f topicFilter) Match(e *Event) bool { return e.Topic == f.topic }
func (f topicFilter) String() string      { return "topic == " + QuoteString(f.topic) }

type topicPrefixFilter struct{ prefix string }

func (f topicPrefixFilter) Match(e *Event) bool {
	return e.Topic == f.prefix || strings.HasPrefix(e.Topic, f.prefix+".")
}

func (f topicPrefixFilter) String() string {
	return "(topic == " + QuoteString(f.prefix) + " || topic startswith " + QuoteString(f.prefix+".") + ")"
}

type matchAll struct{}

func (matchAll) Match(*Event) bool { return true }
func (matchAll) String() string    { return "true" }

type matchNone struct{}

func (matchNone) Match(*Event) bool { return false }
func (matchNone) String() string    { return "false" }

type andFilter struct{ kids []Filter }

func (f andFilter) Match(e *Event) bool {
	for _, k := range f.kids {
		if !k.Match(e) {
			return false
		}
	}
	return true
}

func (f andFilter) String() string {
	parts := make([]string, len(f.kids))
	for i, k := range f.kids {
		parts[i] = maybeParen(k)
	}
	return strings.Join(parts, " && ")
}

type orFilter struct{ kids []Filter }

func (f orFilter) Match(e *Event) bool {
	for _, k := range f.kids {
		if k.Match(e) {
			return true
		}
	}
	return false
}

func (f orFilter) String() string {
	parts := make([]string, len(f.kids))
	for i, k := range f.kids {
		parts[i] = maybeParen(k)
	}
	return strings.Join(parts, " || ")
}

type notFilter struct{ kid Filter }

func (f notFilter) Match(e *Event) bool { return !f.kid.Match(e) }
func (f notFilter) String() string      { return "!(" + f.kid.String() + ")" }

// maybeParen parenthesises composite children so that String output
// re-parses with identical semantics.
func maybeParen(f Filter) string {
	switch f.(type) {
	case andFilter, orFilter:
		return "(" + f.String() + ")"
	default:
		return f.String()
	}
}

// cmpOp is a comparison operator in a predicate.
type cmpOp uint8

const (
	opEq cmpOp = iota + 1
	opNeq
	opLt
	opLe
	opGt
	opGe
)

func (op cmpOp) String() string {
	switch op {
	case opEq:
		return "=="
	case opNeq:
		return "!="
	case opLt:
		return "<"
	case opLe:
		return "<="
	case opGt:
		return ">"
	case opGe:
		return ">="
	default:
		return "?"
	}
}

// cmpFilter is `key op literal`.
type cmpFilter struct {
	key string
	op  cmpOp
	val Value
}

func (f cmpFilter) Match(e *Event) bool {
	v, ok := e.Attr(f.key)
	if !ok {
		return false
	}
	switch f.op {
	case opEq:
		return v.Equal(f.val)
	case opNeq:
		// != still requires the attribute to exist with a comparable kind;
		// an absent attribute does not "satisfy the condition".
		if v.Kind() != f.val.Kind() {
			return false
		}
		return !v.Equal(f.val)
	}
	cmp, ok := v.Compare(f.val)
	if !ok {
		return false
	}
	switch f.op {
	case opLt:
		return cmp < 0
	case opLe:
		return cmp <= 0
	case opGt:
		return cmp > 0
	case opGe:
		return cmp >= 0
	default:
		return false
	}
}

func (f cmpFilter) String() string { return fmt.Sprintf("%s %s %s", f.key, f.op, f.val) }

// inFilter is `key in [v1, v2, ...]`.
type inFilter struct {
	key  string
	vals []Value
}

func (f inFilter) Match(e *Event) bool {
	v, ok := e.Attr(f.key)
	if !ok {
		return false
	}
	for _, cand := range f.vals {
		if v.Equal(cand) {
			return true
		}
	}
	return false
}

func (f inFilter) String() string {
	parts := make([]string, len(f.vals))
	for i, v := range f.vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("%s in [%s]", f.key, strings.Join(parts, ", "))
}

// containsFilter is `key contains "substr"` over string attributes.
type containsFilter struct {
	key string
	sub string
}

func (f containsFilter) Match(e *Event) bool {
	v, ok := e.Attr(f.key)
	if !ok || v.Kind() != KindString {
		return false
	}
	return strings.Contains(v.Str(), f.sub)
}

func (f containsFilter) String() string {
	return fmt.Sprintf("%s contains %s", f.key, QuoteString(f.sub))
}

// startsWithFilter is `key startswith "prefix"` over string attributes.
type startsWithFilter struct {
	key    string
	prefix string
}

func (f startsWithFilter) Match(e *Event) bool {
	v, ok := e.Attr(f.key)
	if !ok || v.Kind() != KindString {
		return false
	}
	return strings.HasPrefix(v.Str(), f.prefix)
}

func (f startsWithFilter) String() string {
	return fmt.Sprintf("%s startswith %s", f.key, QuoteString(f.prefix))
}

// existsFilter is `key exists`.
type existsFilter struct{ key string }

func (f existsFilter) Match(e *Event) bool {
	_, ok := e.Attr(f.key)
	return ok
}

func (f existsFilter) String() string { return fmt.Sprintf("%s exists", f.key) }

// Interface compliance checks.
var (
	_ Filter = topicFilter{}
	_ Filter = topicPrefixFilter{}
	_ Filter = matchAll{}
	_ Filter = matchNone{}
	_ Filter = andFilter{}
	_ Filter = orFilter{}
	_ Filter = notFilter{}
	_ Filter = cmpFilter{}
	_ Filter = inFilter{}
	_ Filter = containsFilter{}
	_ Filter = startsWithFilter{}
	_ Filter = existsFilter{}
)
