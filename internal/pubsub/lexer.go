package pubsub

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token kinds of the subscription language.
type tokKind uint8

const (
	tokEOF tokKind = iota + 1
	tokIdent
	tokString
	tokNumber
	tokBool
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokAnd        // &&
	tokOr         // ||
	tokNot        // !
	tokEq         // ==
	tokNeq        // !=
	tokLt         // <
	tokLe         // <=
	tokGt         // >
	tokGe         // >=
	tokIn         // in
	tokContains   // contains
	tokExists     // exists
	tokStartsWith // startswith
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokBool:
		return "bool"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokAnd:
		return "'&&'"
	case tokOr:
		return "'||'"
	case tokNot:
		return "'!'"
	case tokEq:
		return "'=='"
	case tokNeq:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	case tokIn:
		return "'in'"
	case tokContains:
		return "'contains'"
	case tokExists:
		return "'exists'"
	case tokStartsWith:
		return "'startswith'"
	default:
		return "unknown token"
	}
}

type token struct {
	kind tokKind
	pos  int
	text string  // ident or raw text
	str  string  // decoded string literal
	num  float64 // number literal
	b    bool    // bool literal
}

// lexer tokenises filter source text.
type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("filter: %s at offset %d", fmt.Sprintf(format, args...), pos)
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case '[':
		l.pos++
		return token{kind: tokLBracket, pos: start}, nil
	case ']':
		l.pos++
		return token{kind: tokRBracket, pos: start}, nil
	case ',':
		l.pos++
		return token{kind: tokComma, pos: start}, nil
	case '&':
		if strings.HasPrefix(l.src[l.pos:], "&&") {
			l.pos += 2
			return token{kind: tokAnd, pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected %q (did you mean '&&'?)", "&")
	case '|':
		if strings.HasPrefix(l.src[l.pos:], "||") {
			l.pos += 2
			return token{kind: tokOr, pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected %q (did you mean '||'?)", "|")
	case '!':
		if strings.HasPrefix(l.src[l.pos:], "!=") {
			l.pos += 2
			return token{kind: tokNeq, pos: start}, nil
		}
		l.pos++
		return token{kind: tokNot, pos: start}, nil
	case '=':
		if strings.HasPrefix(l.src[l.pos:], "==") {
			l.pos += 2
			return token{kind: tokEq, pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected %q (did you mean '=='?)", "=")
	case '<':
		if strings.HasPrefix(l.src[l.pos:], "<=") {
			l.pos += 2
			return token{kind: tokLe, pos: start}, nil
		}
		l.pos++
		return token{kind: tokLt, pos: start}, nil
	case '>':
		if strings.HasPrefix(l.src[l.pos:], ">=") {
			l.pos += 2
			return token{kind: tokGe, pos: start}, nil
		}
		l.pos++
		return token{kind: tokGt, pos: start}, nil
	case '"':
		return l.lexString()
	}
	if c == '-' || c == '.' || (c >= '0' && c <= '9') {
		return l.lexNumber()
	}
	if isIdentStart(rune(c)) {
		return l.lexIdent()
	}
	return token{}, l.errf(start, "unexpected character %q", string(c))
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	word := l.src[start:l.pos]
	switch word {
	case "in":
		return token{kind: tokIn, pos: start, text: word}, nil
	case "contains":
		return token{kind: tokContains, pos: start, text: word}, nil
	case "exists":
		return token{kind: tokExists, pos: start, text: word}, nil
	case "startswith":
		return token{kind: tokStartsWith, pos: start, text: word}, nil
	case "true":
		return token{kind: tokBool, pos: start, b: true, text: word}, nil
	case "false":
		return token{kind: tokBool, pos: start, b: false, text: word}, nil
	}
	return token{kind: tokIdent, pos: start, text: word}, nil
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seen := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
			((c == '+' || c == '-') && l.pos > start && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) {
			seen = seen || (c >= '0' && c <= '9')
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	if !seen {
		return token{}, l.errf(start, "malformed number %q", text)
	}
	f, err := strconv.ParseFloat(text, 64)
	if err != nil {
		return token{}, l.errf(start, "malformed number %q", text)
	}
	return token{kind: tokNumber, pos: start, num: f, text: text}, nil
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{kind: tokString, pos: start, str: sb.String()}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf(start, "unterminated string")
			}
			esc := l.src[l.pos+1]
			switch esc {
			case '"', '\\':
				sb.WriteByte(esc)
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			default:
				return token{}, l.errf(l.pos, "unknown escape \\%s", string(esc))
			}
			l.pos += 2
		default:
			sb.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errf(start, "unterminated string")
}
