package pubsub

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkEvent(topic string, attrs ...Attr) *Event {
	return &Event{ID: EventID{Publisher: 1, Seq: 1}, Topic: topic, Attrs: attrs}
}

func TestParseAndMatchTable(t *testing.T) {
	ev := mkEvent("stocks.nyse",
		Attr{"symbol", String("ACME")},
		Attr{"price", Num(101.5)},
		Attr{"volume", Num(20000)},
		Attr{"halted", Bool(false)},
	)
	cases := []struct {
		src  string
		want bool
	}{
		{`price > 100`, true},
		{`price > 101.5`, false},
		{`price >= 101.5`, true},
		{`price < 200`, true},
		{`price <= 101`, false},
		{`price == 101.5`, true},
		{`price != 101.5`, false},
		{`price != 99`, true},
		{`symbol == "ACME"`, true},
		{`symbol == "OTHER"`, false},
		{`symbol != "OTHER"`, true},
		{`symbol < "B"`, true},
		{`halted == false`, true},
		{`halted == true`, false},
		{`halted != true`, true},
		{`topic == "stocks.nyse"`, true},
		{`topic == "stocks"`, false},
		{`topic startswith "stocks."`, true},
		{`topic startswith "bonds"`, false},
		{`symbol in ["FOO", "ACME", "BAR"]`, true},
		{`symbol in ["FOO", "BAR"]`, false},
		{`price in [100, 101.5]`, true},
		{`symbol contains "CM"`, true},
		{`symbol contains "XYZ"`, false},
		{`price exists`, true},
		{`dividend exists`, false},
		{`!(price > 200)`, true},
		{`!price > 100`, false}, // ! binds to the predicate
		{`price > 100 && symbol == "ACME"`, true},
		{`price > 100 && symbol == "OTHER"`, false},
		{`price > 200 || symbol == "ACME"`, true},
		{`price > 200 || symbol == "OTHER"`, false},
		// Precedence: && over ||.
		{`symbol == "OTHER" && price > 100 || volume >= 20000`, true},
		{`symbol == "OTHER" && (price > 100 || volume >= 20000)`, false},
		{`true`, true},
		{`false`, false},
		{`(price > 100)`, true},
		// Missing attribute never satisfies a condition, including !=.
		{`dividend > 0`, false},
		{`dividend != 3`, false},
		// Type mismatches never match.
		{`symbol > 100`, false},
		{`price == "ACME"`, false},
		{`price contains "1"`, false},
		{`halted < true`, false},
	}
	for _, c := range cases {
		f, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := f.Match(ev); got != c.want {
			t.Errorf("Match(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`price >`,
		`price 100`,
		`price & volume`,
		`price | volume`,
		`price = 100`,
		`(price > 100`,
		`price > 100)`,
		`symbol in []`,
		`symbol in ["a"`,
		`symbol in "a"`,
		`symbol contains 5`,
		`symbol startswith 5`,
		`"sym" == 5`,
		`price > "x" extra`,
		`price > --5`,
		`symbol == "unterminated`,
		`symbol == "bad \q escape"`,
		`&& price > 1`,
		`!`,
		`price >= <`,
		`in [1]`,
		`topic ==`,
	}
	for _, src := range bad {
		if f, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded (%v), want error", src, f)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	f := MustParse(`name == "a\"b\\c\nd\te"`)
	ev := mkEvent("t", Attr{"name", String("a\"b\\c\nd\te")})
	if !f.Match(ev) {
		t.Fatal("escaped string literal did not match")
	}
}

func TestParseNumberForms(t *testing.T) {
	ev := mkEvent("t", Attr{"x", Num(-1500)})
	for _, src := range []string{`x == -1500`, `x == -1.5e3`, `x == -15e2`, `x < -1499.5`} {
		if !MustParse(src).Match(ev) {
			t.Errorf("%q should match x=-1500", src)
		}
	}
}

func TestTopicCanonicalisation(t *testing.T) {
	f := MustParse(`topic == "news.eu"`)
	if topic, ok := TopicOf(f); !ok || topic != "news.eu" {
		t.Fatalf("parsed topic filter not recognised by TopicOf: %v %v", topic, ok)
	}
	if _, ok := TopicOf(MustParse(`price > 5`)); ok {
		t.Fatal("content filter misidentified as topic filter")
	}
	// Only string equality on topic canonicalises.
	if _, ok := TopicOf(MustParse(`topic != "x"`)); ok {
		t.Fatal("topic != must not canonicalise")
	}
}

func TestCombinators(t *testing.T) {
	evA := mkEvent("a")
	evB := mkEvent("b")
	f := Or(Topic("a"), Topic("b"))
	if !f.Match(evA) || !f.Match(evB) {
		t.Fatal("Or failed")
	}
	g := And(Topic("a"), MatchAll())
	if !g.Match(evA) || g.Match(evB) {
		t.Fatal("And failed")
	}
	if Not(Topic("a")).Match(evA) {
		t.Fatal("Not failed")
	}
	if !And().Match(evA) {
		t.Fatal("empty And must match everything")
	}
	if Or().Match(evA) {
		t.Fatal("empty Or must match nothing")
	}
	if And(Topic("a")) != Topic("a") {
		t.Fatal("single-child And must collapse")
	}
	if MatchNone().Match(evA) {
		t.Fatal("MatchNone matched")
	}
}

func TestTopicPrefix(t *testing.T) {
	f := TopicPrefix("sports")
	cases := map[string]bool{
		"sports":          true,
		"sports.football": true,
		"sports.f1.race":  true,
		"sportsman":       false,
		"esports":         false,
		"":                false,
	}
	for topic, want := range cases {
		if got := f.Match(mkEvent(topic)); got != want {
			t.Errorf("TopicPrefix(sports).Match(%q) = %v, want %v", topic, got, want)
		}
	}
	// The rendering must re-parse to equivalent semantics.
	re := MustParse(f.String())
	for topic := range cases {
		ev := mkEvent(topic)
		if re.Match(ev) != f.Match(ev) {
			t.Errorf("reparsed TopicPrefix differs on %q", topic)
		}
	}
}

// randomFilter builds a random filter over a small attribute vocabulary.
func randomFilter(rng *rand.Rand, depth int) Filter {
	keys := []string{"a", "b", "c", "topic"}
	if depth > 0 && rng.Intn(2) == 0 {
		switch rng.Intn(3) {
		case 0:
			return And(randomFilter(rng, depth-1), randomFilter(rng, depth-1))
		case 1:
			return Or(randomFilter(rng, depth-1), randomFilter(rng, depth-1))
		default:
			return Not(randomFilter(rng, depth-1))
		}
	}
	key := keys[rng.Intn(len(keys))]
	switch rng.Intn(6) {
	case 0:
		return cmpFilter{key: key, op: cmpOp(1 + rng.Intn(6)), val: Num(float64(rng.Intn(10)))}
	case 1:
		return cmpFilter{key: key, op: opEq, val: String(string(rune('a' + rng.Intn(4))))}
	case 2:
		return inFilter{key: key, vals: []Value{Num(float64(rng.Intn(5))), String("x")}}
	case 3:
		return containsFilter{key: key, sub: string(rune('a' + rng.Intn(4)))}
	case 4:
		return existsFilter{key: key}
	default:
		return startsWithFilter{key: key, prefix: string(rune('a' + rng.Intn(4)))}
	}
}

func randomEvent(rng *rand.Rand) *Event {
	ev := &Event{
		ID:    EventID{Publisher: rng.Uint32(), Seq: rng.Uint32()},
		Topic: []string{"a", "b", "ab", "abc", ""}[rng.Intn(5)],
	}
	for _, key := range []string{"a", "b", "c"} {
		switch rng.Intn(3) {
		case 0: // absent
		case 1:
			ev.Attrs = append(ev.Attrs, Attr{key, Num(float64(rng.Intn(10)))})
		case 2:
			ev.Attrs = append(ev.Attrs, Attr{key, String(string(rune('a' + rng.Intn(4))))})
		}
	}
	return ev
}

// Property: String() output re-parses to a filter with identical matching
// behaviour on random events.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		f := randomFilter(rng, 3)
		src := f.String()
		g, err := Parse(src)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", src, err)
		}
		for j := 0; j < 20; j++ {
			ev := randomEvent(rng)
			if f.Match(ev) != g.Match(ev) {
				t.Fatalf("round-trip mismatch for %q on event %+v", src, ev)
			}
		}
	}
}

// Property: parsing is deterministic and never panics on arbitrary input.
func TestQuickParseNeverPanics(t *testing.T) {
	f := func(src string) bool {
		f1, err1 := Parse(src)
		f2, err2 := Parse(src)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 == nil && f1.String() != f2.String() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterStringStable(t *testing.T) {
	srcs := []string{
		`price > 100 && symbol == "ACME"`,
		`a == 1 || b == 2 && c == 3`,
		`!(a exists)`,
		`sym in ["x", "y", 3]`,
	}
	for _, src := range srcs {
		f := MustParse(src)
		once := f.String()
		twice := MustParse(once).String()
		if once != twice {
			t.Errorf("String not stable: %q -> %q -> %q", src, once, twice)
		}
	}
}

func TestMatchAllNoneStrings(t *testing.T) {
	if MustParse(MatchAll().String()).Match(mkEvent("x")) != true {
		t.Fatal("MatchAll round trip")
	}
	if MustParse(MatchNone().String()).Match(mkEvent("x")) != false {
		t.Fatal("MatchNone round trip")
	}
}

func BenchmarkParse(b *testing.B) {
	src := `price > 100 && symbol in ["ACME", "GLOBEX"] && !(region startswith "eu.") || volume >= 1e6`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatch(b *testing.B) {
	f := MustParse(`price > 100 && symbol in ["ACME", "GLOBEX"] && !(region startswith "eu.")`)
	ev := mkEvent("stocks",
		Attr{"symbol", String("ACME")},
		Attr{"price", Num(101.5)},
		Attr{"region", String("us.ny")},
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !f.Match(ev) {
			b.Fatal("should match")
		}
	}
}
