package live

import (
	"testing"
	"time"
)

// eventually is the test-side wrapper over Eventually: same polling and
// race-scaled deadline, plus the t.Helper() bookkeeping.
func eventually(t testing.TB, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	return Eventually(timeout, 0, cond)
}
