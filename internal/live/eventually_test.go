package live

import (
	"testing"
	"time"
)

// eventually polls cond until it holds or the deadline expires, then
// reports cond's final verdict. The caller's timeout is scaled by
// raceDeadlineScale (4× under -race), so one stated deadline means the
// same thing on a bare run and under the detector's instrumentation —
// this helper replaces the hand-rolled time.Now() busy-wait loops whose
// fixed deadlines flaked on slow, instrumented CI runners.
func eventually(t testing.TB, timeout time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(timeout * raceDeadlineScale)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}
