package live

import (
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairgossip/internal/fairness"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/transport"
)

// TestLiveJoinIntegratesAndDelivers: peers joining a running cluster
// bootstrap through their seed, grow real views via shuffles, and
// start delivering events published after they subscribed — on both
// transports.
func TestLiveJoinIntegratesAndDelivers(t *testing.T) {
	for name, factory := range map[string]transport.Factory{"chan": nil, "udp": transport.UDP()} {
		t.Run(name, func(t *testing.T) {
			c := mustCluster(t, Config{
				N: 12, Fanout: 4,
				RoundPeriod: 3 * time.Millisecond,
				Seed:        31,
				Transport:   factory,
			})
			var delivered atomic.Int64
			for i := 0; i < 12; i++ {
				c.Subscribe(i, pubsub.MatchAll())
				c.OnDeliver(i, func(*pubsub.Event) { delivered.Add(1) })
			}
			c.Start()
			defer c.Stop()

			joiners := make([]int, 0, 4)
			for k := 0; k < 4; k++ {
				id, err := c.Join(k % 12)
				if err != nil {
					t.Fatalf("join %d: %v", k, err)
				}
				if id != 12+k {
					t.Fatalf("joiner got id %d, want %d", id, 12+k)
				}
				if c.Addr(id) == "" {
					t.Fatalf("joiner %d has no transport address", id)
				}
				if _, ok := c.Subscribe(id, pubsub.MatchAll()); !ok {
					t.Fatalf("subscribe on joiner %d failed", id)
				}
				if !c.OnDeliver(id, func(*pubsub.Event) { delivered.Add(1) }) {
					t.Fatalf("OnDeliver on joiner %d failed", id)
				}
				joiners = append(joiners, id)
			}
			if c.N() != 16 {
				t.Fatalf("population %d after joins, want 16", c.N())
			}
			// Let the joiners' addresses spread a little, then publish.
			time.Sleep(30 * time.Millisecond)
			delivered.Store(0)
			if !c.Publish(3, "news", nil, []byte("for-everyone")) {
				t.Fatal("publish failed")
			}
			if !eventually(t, 10*time.Second, func() bool { return delivered.Load() == 16 }) {
				t.Fatalf("delivered %d of 16 (joiners not integrated?)", delivered.Load())
			}
			// A joiner must by now hold a real partial view, not just its seed.
			for _, id := range joiners {
				if v := c.View(id); len(v) < 2 {
					t.Fatalf("joiner %d view %v never grew past its seed", id, v)
				}
			}
		})
	}
}

// TestLiveJoinValidation: bad seeds and stopped clusters are errors;
// joining before Start is legal (the peer launches with the rest).
func TestLiveJoinValidation(t *testing.T) {
	c := mustCluster(t, Config{N: 4, RoundPeriod: 3 * time.Millisecond, Seed: 32})
	if _, err := c.Join(-1); err == nil {
		t.Fatal("negative seed accepted")
	}
	if _, err := c.Join(99); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
	id, err := c.Join(0) // pre-start join
	if err != nil {
		t.Fatalf("pre-start join: %v", err)
	}
	var got atomic.Int64
	c.Subscribe(id, pubsub.MatchAll())
	c.OnDeliver(id, func(*pubsub.Event) { got.Add(1) })
	c.Start()
	c.Publish(1, "t", nil, []byte("x"))
	if !eventually(t, 5*time.Second, func() bool { return got.Load() == 1 }) {
		t.Fatalf("pre-start joiner delivered %d of 1", got.Load())
	}
	c.Stop()
	if _, err := c.Join(0); err == nil {
		t.Fatal("join after Stop accepted")
	}
}

// TestLiveJoinerCrashMidHandshake: joiners are crashed the instant they
// exist (before the handshake can complete), some through an
// already-crashed seed, while publishers keep the cluster under load.
// Everything must settle: zero leaked goroutines after Stop, and
// sent == recv + dropped still holds — a dead joiner is a counted drop
// bucket, not a leak (run under -race in CI).
func TestLiveJoinerCrashMidHandshake(t *testing.T) {
	base := runtime.NumGoroutine()
	c := mustCluster(t, Config{
		N: 12, Fanout: 4,
		RoundPeriod: 2 * time.Millisecond,
		Seed:        33,
	})
	for i := 0; i < 12; i++ {
		c.Subscribe(i, pubsub.MatchAll())
	}
	c.Start()

	var wg sync.WaitGroup
	var stopFlood atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; !stopFlood.Load(); k++ {
			c.Publish(k%12, "t", nil, []byte("load"))
			time.Sleep(time.Millisecond)
		}
	}()

	c.Crash(5) // a dead seed: its joiner's handshake goes nowhere
	for k := 0; k < 6; k++ {
		seed := k % 12
		id, err := c.Join(seed)
		if err != nil {
			t.Fatalf("join via seed %d: %v", seed, err)
		}
		if k%2 == 0 {
			if !c.Crash(id) {
				t.Fatalf("crash of joiner %d failed", id)
			}
		}
	}
	time.Sleep(40 * time.Millisecond)
	stopFlood.Store(true)
	wg.Wait()
	c.Stop()

	waitGoroutinesSettle(t, base, 5*time.Second)
	tr := c.Traffic()
	if tr.Sent == 0 {
		t.Fatal("no traffic flowed")
	}
	if tr.Sent != tr.Recv+tr.Dropped {
		t.Fatalf("traffic leak: sent %d != recv %d + dropped %d", tr.Sent, tr.Recv, tr.Dropped)
	}
}

// TestLiveJoinRacesStop: Join hammering a cluster that stops underneath
// it must either succeed cleanly or return an error — never deadlock,
// leak, or panic (run under -race in CI).
func TestLiveJoinRacesStop(t *testing.T) {
	base := runtime.NumGoroutine()
	c := mustCluster(t, Config{N: 4, RoundPeriod: 2 * time.Millisecond, Seed: 34})
	c.Start()
	var wg sync.WaitGroup
	var stopFlood atomic.Bool
	var joined, refused atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stopFlood.Load() {
			if _, err := c.Join(0); err != nil {
				refused.Add(1)
			} else {
				joined.Add(1)
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	c.Stop()
	stopFlood.Store(true)
	wg.Wait()
	if joined.Load() == 0 {
		t.Fatal("no join succeeded before Stop")
	}
	if refused.Load() == 0 {
		t.Fatal("no join was refused after Stop — the race hit nothing")
	}
	waitGoroutinesSettle(t, base, 5*time.Second)
}

// countingNet wraps a Net and counts the bytes each sender hands to its
// endpoint — an independent observer of what actually crossed the wire.
// With scribble set it additionally retains every envelope with a hash
// taken at observation time, so a later write to a handed-over buffer
// (by a shaper that held it, or anyone else) is detectable.
type countingNet struct {
	inner    transport.Net
	scribble bool
	mu       sync.Mutex
	bytes    map[int]uint64
	seen     []observed
}

type observed struct {
	buf  []byte
	hash uint64
}

func hashOf(buf []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(buf)
	return h.Sum64()
}

func (n *countingNet) Attach(id int, h transport.Handler) (transport.Transport, error) {
	tr, err := n.inner.Attach(id, h)
	if err != nil {
		return nil, err
	}
	return &countingEndpoint{net: n, id: id, inner: tr}, nil
}

func (n *countingNet) Close() error { return n.inner.Close() }

type countingEndpoint struct {
	net   *countingNet
	id    int
	inner transport.Transport
}

func (e *countingEndpoint) Send(to int, buf []byte) error {
	err := e.inner.Send(to, buf)
	if err == nil {
		e.net.mu.Lock()
		e.net.bytes[e.id] += uint64(len(buf))
		if e.net.scribble {
			e.net.seen = append(e.net.seen, observed{buf: buf, hash: hashOf(buf)})
		}
		e.net.mu.Unlock()
	}
	return err
}

func (e *countingEndpoint) LocalAddr() string { return e.inner.LocalAddr() }
func (e *countingEndpoint) Close() error      { return e.inner.Close() }

// TestLiveShuffleBytesChargedByteForByte: on a calm cluster (no faults,
// so every charged send reaches the transport) the ledger's per-peer
// app + infra bytes must equal exactly what the transport observed
// leaving that peer — the EnvelopeSize == MsgWireSize discipline,
// extended to membership traffic. Every peer must also have paid real
// infrastructure bytes: shuffles are charged contribution, not free.
func TestLiveShuffleBytesChargedByteForByte(t *testing.T) {
	counter := &countingNet{bytes: make(map[int]uint64)}
	factory := func(n int) (transport.Net, error) {
		inner, err := transport.NewChanNet(n)
		if err != nil {
			return nil, err
		}
		counter.inner = inner
		return counter, nil
	}
	c := mustCluster(t, Config{
		N: 10, Fanout: 3,
		RoundPeriod: 2 * time.Millisecond,
		Seed:        35,
		Transport:   factory,
	})
	var delivered atomic.Int64
	for i := 0; i < 10; i++ {
		c.Subscribe(i, pubsub.MatchAll())
		c.OnDeliver(i, func(*pubsub.Event) { delivered.Add(1) })
	}
	c.Start()
	joiner, err := c.Join(2) // the joiner's handshake is infra traffic too
	if err != nil {
		t.Fatal(err)
	}
	c.Subscribe(joiner, pubsub.MatchAll())
	for k := 0; k < 4; k++ {
		c.Publish(k, "t", nil, []byte("pay-per-byte"))
	}
	eventually(t, 5*time.Second, func() bool { return delivered.Load() >= 40 })
	time.Sleep(30 * time.Millisecond) // a few more shuffle periods
	c.Stop()

	counter.mu.Lock()
	defer counter.mu.Unlock()
	sawInfra := false
	for id := 0; id <= joiner; id++ {
		a := c.Ledger().Account(id)
		charged := a.BytesSent[fairness.ClassApp] + a.BytesSent[fairness.ClassInfra]
		if charged != counter.bytes[id] {
			t.Fatalf("peer %d charged %d bytes, transport saw %d — ledger and wire drifted",
				id, charged, counter.bytes[id])
		}
		if a.BytesSent[fairness.ClassInfra] > 0 {
			sawInfra = true
		}
	}
	if !sawInfra {
		t.Fatal("no peer paid infrastructure bytes — shuffles are not being charged")
	}
}
