//go:build race

package live

// raceDeadlineScale stretches every Eventually deadline under -race:
// detector instrumentation slows the peer goroutines several-fold, and
// a deadline tuned for a bare run flakes there.
const raceDeadlineScale = 4
