package live

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fairgossip/internal/pubsub"
)

// waitGoroutinesSettle polls until the goroutine count is back at (or
// below) base plus slack, tolerating runtime background goroutines.
func waitGoroutinesSettle(t *testing.T, base int, timeout time.Duration) {
	t.Helper()
	const slack = 4
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		runtime.GC() // nudge finalizers so stragglers exit
		if runtime.NumGoroutine() <= base+slack {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines did not settle: %d now vs %d at start\n%s",
		runtime.NumGoroutine(), base, buf[:n])
}

// TestLiveStopUnderPublishLoad: Stop() while concurrent publishers are
// hammering the cluster must terminate promptly, without goroutine
// leaks and without a send-on-closed-channel panic (run under -race in
// CI). Publishers racing Stop simply start seeing Publish return false.
func TestLiveStopUnderPublishLoad(t *testing.T) {
	base := runtime.NumGoroutine()
	c := mustCluster(t, Config{
		N: 24, Fanout: 5, Batch: 16,
		RoundPeriod: 2 * time.Millisecond,
		TargetRatio: 1000, // keep the controller path hot during shutdown
		Seed:        42,
	})
	for i := 0; i < 24; i++ {
		c.Subscribe(i, pubsub.MatchAll())
	}
	c.Start()

	var wg sync.WaitGroup
	var stopFlood atomic.Bool
	var accepted, rejected atomic.Int64
	for p := 0; p < 8; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; !stopFlood.Load(); k++ {
				if c.Publish(p, "t", nil, []byte("under-load")) {
					accepted.Add(1)
				} else {
					rejected.Add(1)
				}
			}
		}()
	}

	// Let the flood build, then stop the cluster underneath it.
	time.Sleep(30 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		c.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not terminate under publish load")
	}
	stopFlood.Store(true)
	wg.Wait()

	if accepted.Load() == 0 {
		t.Fatal("no publish went through before shutdown — the load never hit the cluster")
	}
	if rejected.Load() == 0 {
		t.Fatal("no publish was rejected after shutdown — Stop raced nothing")
	}
	waitGoroutinesSettle(t, base, 5*time.Second)

	// Post-stop API calls stay safe no-ops.
	if c.Publish(0, "t", nil, nil) {
		t.Fatal("publish succeeded after Stop")
	}
	c.Stop()
}

// TestLiveStopUnderFaultChurn: shutdown races fault injection (crash,
// rejoin, partition, loss churn) without deadlock or leak — the
// scenario engine drives exactly this interleaving.
func TestLiveStopUnderFaultChurn(t *testing.T) {
	base := runtime.NumGoroutine()
	c := mustCluster(t, Config{N: 16, Fanout: 4, RoundPeriod: 2 * time.Millisecond, Seed: 43})
	for i := 0; i < 16; i++ {
		c.Subscribe(i, pubsub.MatchAll())
	}
	c.Start()
	var wg sync.WaitGroup
	var stopFlood atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; !stopFlood.Load(); k++ {
			c.Crash(k % 16)
			c.SetLoss(float64(k%10) / 20)
			c.Partition([]int{0, 1, 2, 3})
			c.Publish((k+4)%16, "t", nil, nil)
			c.Rejoin(k % 16)
			c.Heal()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		c.Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not terminate under fault churn")
	}
	stopFlood.Store(true)
	wg.Wait()
	waitGoroutinesSettle(t, base, 5*time.Second)
}
