package live

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fairgossip/internal/pubsub"
	"fairgossip/internal/transport"
	"fairgossip/internal/wire"
)

// mustEnvelope encodes a one-event envelope claiming the given sender.
func mustEnvelope(t *testing.T, sender uint32, payload []byte) []byte {
	t.Helper()
	buf, err := wire.AppendEnvelope(nil, sender, []*pubsub.Event{
		{ID: pubsub.EventID{Publisher: sender, Seq: 1}, Topic: "t", Payload: payload},
	})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestLiveUDPDisseminationReachesEveryone: the full protocol over real
// loopback datagram sockets — encode on send, decode on receive, one
// socket per peer — delivers to the whole population, end to end.
func TestLiveUDPDisseminationReachesEveryone(t *testing.T) {
	c := mustCluster(t, Config{
		N: 16, Fanout: 4,
		RoundPeriod: 5 * time.Millisecond,
		Seed:        11,
		Transport:   transport.UDP(),
	})
	var delivered atomic.Int64
	for i := 0; i < 16; i++ {
		if _, ok := c.Subscribe(i, pubsub.MatchAll()); !ok {
			t.Fatal("subscribe failed")
		}
		c.OnDeliver(i, func(*pubsub.Event) { delivered.Add(1) })
		if addr := c.Addr(i); !strings.HasPrefix(addr, "127.0.0.1:") {
			t.Fatalf("peer %d addr %q is not a loopback socket", i, addr)
		}
	}
	c.Start()
	defer c.Stop()
	c.Publish(2, "news", []pubsub.Attr{{Key: "k", Val: pubsub.Num(7)}}, []byte("over real sockets"))
	if !eventually(t, 10*time.Second, func() bool { return delivered.Load() == 16 }) {
		t.Fatalf("delivered %d of 16", delivered.Load())
	}
}

// TestLiveUDPTrafficConservation: after Stop (which quiesces the
// sockets), every send attempt is accounted: received or counted in a
// drop bucket. The identity a silent kernel loss would break.
func TestLiveUDPTrafficConservation(t *testing.T) {
	c := mustCluster(t, Config{
		N: 8, Fanout: 3,
		RoundPeriod: 3 * time.Millisecond,
		Seed:        12,
		Transport:   transport.UDP(),
	})
	var delivered atomic.Int64
	for i := 0; i < 8; i++ {
		c.Subscribe(i, pubsub.MatchAll())
		c.OnDeliver(i, func(*pubsub.Event) { delivered.Add(1) })
	}
	c.Start()
	for k := 0; k < 5; k++ {
		c.Publish(k%8, "t", nil, []byte("conserve"))
	}
	eventually(t, 10*time.Second, func() bool { return delivered.Load() == 40 })
	c.Stop()
	tr := c.Traffic()
	if tr.Sent == 0 {
		t.Fatal("no traffic flowed")
	}
	if tr.Sent != tr.Recv+tr.Dropped {
		t.Fatalf("traffic leak: sent %d != recv %d + dropped %d", tr.Sent, tr.Recv, tr.Dropped)
	}
	if tr.Malformed != 0 {
		t.Fatalf("%d malformed envelopes on a healthy cluster", tr.Malformed)
	}
}

// TestLiveInboxOverflowCounted: the bug this PR fixes — peer.send used
// to silently discard envelopes when the destination inbox was full.
// With a depth-1 inbox and nobody draining (the cluster is never
// started, so rounds are driven by hand), overflow must land in
// InboxDrops and the conservation identity must still balance.
func TestLiveInboxOverflowCounted(t *testing.T) {
	c := mustCluster(t, Config{N: 8, Fanout: 3, Batch: 4, InboxDepth: 1, BufferMaxAge: 1 << 20, Seed: 13})
	for k := 0; k < 4; k++ {
		c.Publish(0, "t", nil, []byte("flood"))
	}
	p := c.peerAt(0)
	for r := 0; r < 20; r++ {
		p.round()
	}
	tr := c.Traffic()
	if tr.InboxDrops == 0 {
		t.Fatalf("no inbox drops counted under guaranteed overflow: %+v", tr)
	}
	if tr.Sent != tr.Recv+tr.Dropped {
		t.Fatalf("traffic leak: sent %d != recv %d + dropped %d", tr.Sent, tr.Recv, tr.Dropped)
	}
}

// TestLiveMalformedEnvelopeCounted: garbage handed to a peer is
// rejected by the wire decoder and counted, never processed or
// panicked on.
func TestLiveMalformedEnvelopeCounted(t *testing.T) {
	c := mustCluster(t, Config{N: 4, Seed: 14})
	p := c.peerAt(1)
	p.receive([]byte("definitely not an envelope"))
	if got := c.Traffic().Malformed; got != 1 {
		t.Fatalf("malformed count %d, want 1", got)
	}
	// A well-formed envelope claiming an out-of-range sender is equally
	// rejected (the ledger has no account to audit).
	buf := mustEnvelope(t, 99, []byte("x"))
	p.receive(buf)
	if got := c.Traffic().Malformed; got != 2 {
		t.Fatalf("malformed count %d, want 2", got)
	}
}

// TestLiveFaultDropsCounted: injected loss shows up in FaultDrops and
// conservation still balances (driven by hand for determinism).
func TestLiveFaultDropsCounted(t *testing.T) {
	c := mustCluster(t, Config{N: 6, Fanout: 3, Seed: 15, BufferMaxAge: 1 << 20})
	c.Publish(0, "t", nil, []byte("lossy"))
	c.SetLoss(1) // every link drop is a fault drop
	p := c.peerAt(0)
	for r := 0; r < 5; r++ {
		p.round()
	}
	tr := c.Traffic()
	if tr.FaultDrops != tr.Sent || tr.Sent == 0 {
		t.Fatalf("under total loss every send must fault-drop: %+v", tr)
	}
	if tr.Recv != 0 {
		t.Fatalf("received %d envelopes under total loss", tr.Recv)
	}
}
