package live

import (
	"sync/atomic"
	"testing"
	"time"

	"fairgossip/internal/pubsub"
)

// TestLiveSamplePeersZeroAlloc: SELECTPARTICIPANTS used to build a
// map[int]struct{} plus a fresh slice on every round of every peer; the
// view-sampling port must allocate nothing once its scratch buffers are
// warm.
func TestLiveSamplePeersZeroAlloc(t *testing.T) {
	c := mustCluster(t, Config{N: 32, Fanout: 5, Seed: 21})
	p := c.peerAt(0)
	p.samplePeers(5) // warm the scratch buffers
	if avg := testing.AllocsPerRun(200, func() { p.samplePeers(5) }); avg != 0 {
		t.Fatalf("samplePeers allocates %.2f times per call, want 0", avg)
	}
}

// TestLiveSamplePeersDrawsFromTheView: partner selection reads the
// peer's partial view only — distinct partners, never self, every one
// a current view member, and an oversized k is capped at the view size
// (not the population: nothing on this path may know the population).
func TestLiveSamplePeersDrawsFromTheView(t *testing.T) {
	c := mustCluster(t, Config{N: 40, ViewCap: 8, Seed: 22})
	p := c.peerAt(3)
	inView := func() map[int]bool {
		m := map[int]bool{}
		for _, e := range p.cyclon.View().Entries() {
			m[int(e.ID)] = true
		}
		return m
	}
	for trial := 0; trial < 200; trial++ {
		view := inView()
		got := p.samplePeers(4)
		if want := min(4, len(view)); len(got) != want {
			t.Fatalf("sampled %d peers, want %d", len(got), want)
		}
		seen := map[int]bool{}
		for _, q := range got {
			if q == 3 {
				t.Fatal("sampled self")
			}
			if !view[q] {
				t.Fatalf("peer %d is not in the view %v", q, view)
			}
			if seen[q] {
				t.Fatalf("duplicate peer %d", q)
			}
			seen[q] = true
		}
	}
	if got := p.samplePeers(99); len(got) != p.cyclon.View().Len() {
		t.Fatalf("oversized k: %d peers, want the whole view (%d)", len(got), p.cyclon.View().Len())
	}
	if got := p.samplePeers(0); got != nil {
		t.Fatalf("k=0 sampled %v", got)
	}
}

// TestLiveRoundPathAllocs pins the steady-state allocation budget of
// the full round path (SELECTEVENTS + encode + fanout sends + tick):
// exactly the one by-design allocation — the envelope buffer shared
// across the fanout (the selection runs over SelectInto's reused peer
// scratch). The rounds are driven by hand on an unstarted cluster, so
// the measurement is deterministic.
func TestLiveRoundPathAllocs(t *testing.T) {
	c := mustCluster(t, Config{
		N: 16, Fanout: 4, Batch: 4,
		BufferMaxAge: 1 << 20, // events stay forwardable for the whole test
		InboxDepth:   4,       // inboxes fill, then sends drop (no allocation either way)
		ShuffleEvery: 1 << 20, // membership off-path: shuffles allocate by design (fresh envelope)
		Seed:         23,
	})
	for k := 0; k < 8; k++ {
		c.Publish(0, "topic", []pubsub.Attr{{Key: "k", Val: pubsub.Num(float64(k))}}, []byte("steady"))
	}
	p := c.peerAt(0)
	for r := 0; r < 50; r++ {
		p.round() // warm scratch buffers, fill inboxes, settle the ledger
	}
	avg := testing.AllocsPerRun(200, func() { p.round() })
	if avg > 1 {
		t.Fatalf("live round path allocates %.2f times per round, want <= 1 (the envelope buffer)", avg)
	}
}

// TestLiveReceiversOwnTheirEvents is the envelope-aliasing audit made
// executable. Before the wire codec, buffer.Select's event pointers
// were handed to every receiver goroutine while the sender kept using
// them: safe only as long as nobody ever wrote to a received event.
// Now each receiver decodes a private copy, so a delivery callback may
// scribble all over what it gets — run under -race (make race does)
// this test proves the chan path is as isolated as the socket path.
func TestLiveReceiversOwnTheirEvents(t *testing.T) {
	c := mustCluster(t, Config{N: 12, Fanout: 4, RoundPeriod: 2 * time.Millisecond, Seed: 24})
	var delivered atomic.Int64
	for i := 0; i < 12; i++ {
		if _, ok := c.Subscribe(i, pubsub.MatchAll()); !ok {
			t.Fatal("subscribe failed")
		}
		c.OnDeliver(i, func(ev *pubsub.Event) {
			// Mutate everything reachable from the delivered event. With
			// shared pointers this is a data race against every other
			// peer (and the sender's re-encoding of the same event).
			// Note this is a race probe, not an endorsed pattern: the
			// event is still shared with this peer's own forward buffer
			// (same goroutine, so race-free), and the mutation is what
			// this peer will forward — see the OnDeliver contract.
			for b := range ev.Payload {
				ev.Payload[b] ^= 0xff
			}
			for a := range ev.Attrs {
				ev.Attrs[a] = pubsub.Attr{Key: "rewritten", Val: pubsub.Bool(true)}
			}
			delivered.Add(1)
		})
	}
	c.Start()
	defer c.Stop()
	for k := 0; k < 4; k++ {
		c.Publish(k, "t", []pubsub.Attr{{Key: "n", Val: pubsub.Num(float64(k))}}, []byte("scribble-target"))
	}
	if !eventually(t, 10*time.Second, func() bool { return delivered.Load() == 4*12 }) {
		t.Fatalf("delivered %d of %d", delivered.Load(), 4*12)
	}
}
