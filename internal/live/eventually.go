package live

import "time"

// Eventually polls cond every step until it holds or the timeout
// expires, then reports cond's final verdict. The stated timeout is
// scaled by raceDeadlineScale (4× under -race), so one deadline means
// the same thing on a bare run and under the detector's
// instrumentation. It is the shared replacement for hand-rolled
// time.Now() busy-wait loops — the live package's own tests and the
// scenario engine's live columns both settle through it, so the
// race-scaled deadline logic lives in exactly one place.
//
// A step of zero polls every 5ms, the granularity the live tests use.
func Eventually(timeout, step time.Duration, cond func() bool) bool {
	if step <= 0 {
		step = 5 * time.Millisecond
	}
	deadline := time.Now().Add(timeout * raceDeadlineScale)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(step)
	}
	return cond()
}
