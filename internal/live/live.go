// Package live is the real-concurrency runtime: one goroutine per peer,
// a pluggable transport as the links, and wall-clock tickers for gossip
// rounds. It runs the same content-mode FairGossip protocol as
// internal/core but against Go's scheduler instead of the deterministic
// simulator — the form a deployed system (and the runnable examples)
// would use.
//
// Messages move as encoded bytes: each round a peer packs its selected
// events into one wire envelope (internal/wire) and hands the bytes to
// its transport endpoint (internal/transport); receivers decode into
// events they own outright. The default ChanTransport delivers the
// bytes in-process; Config.Transport swaps in real loopback UDP sockets
// (transport.UDP()) with no protocol change. Because the envelope
// encoding is sized exactly like the accounting formula the ledger has
// always charged (wire.EnvelopeSize == gossip.MsgWireSize), the
// contribution a peer is billed is literally the number of bytes put on
// the wire.
//
// Concurrency model: each peer's protocol state is owned by its single
// goroutine. External calls (Subscribe, Publish) are funneled into the
// peer loop through a command channel and executed there, so no protocol
// state needs locks. The shared fairness.Ledger is internally
// synchronised. A peer whose inbox overflows drops messages, which is
// exactly how a saturated UDP socket behaves — except here every such
// drop is counted (see Traffic), so load can never lose messages
// invisibly.
package live

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"fairgossip/internal/adaptive"
	"fairgossip/internal/fairness"
	"fairgossip/internal/gossip"
	"fairgossip/internal/pubsub"
	"fairgossip/internal/randutil"
	"fairgossip/internal/transport"
	"fairgossip/internal/wire"
)

// Config parameterises a live cluster.
type Config struct {
	// N is the number of peers (minimum 2).
	N int
	// Fanout and Batch are the initial (or static) levers. Defaults 4/8.
	Fanout int
	Batch  int
	// RoundPeriod is the gossip period (default 20ms — examples want to
	// finish quickly; a WAN deployment would use 1s+).
	RoundPeriod time.Duration
	// TargetRatio > 0 enables the AIMD fairness controller with that
	// contribution-per-benefit target; 0 keeps static levers.
	TargetRatio float64
	// ControlWindow is rounds between controller updates (default 5).
	ControlWindow int
	// InboxDepth is the per-peer channel buffer (default 1024).
	InboxDepth int
	// BufferMaxAge is how many rounds an event stays forwardable
	// (default 8; raise it for bursty publication loads).
	BufferMaxAge int
	// Policy is the SELECTEVENTS policy (default random; least-sent
	// guarantees fresh events win send slots under backlog).
	Policy gossip.Policy
	// Seed drives per-peer randomness (peer i uses Seed^i).
	Seed int64
	// Transport selects the message substrate: nil means in-process
	// channel delivery (transport.Chan(), the historical semantics);
	// transport.UDP() runs one real loopback datagram socket per peer.
	// Any custom Factory plugs in the same way.
	Transport transport.Factory
}

func (c Config) withDefaults() Config {
	if c.N < 2 {
		c.N = 2
	}
	if c.Fanout <= 0 {
		c.Fanout = 4
	}
	if c.Batch <= 0 {
		c.Batch = 8
	}
	if c.RoundPeriod <= 0 {
		c.RoundPeriod = 20 * time.Millisecond
	}
	if c.ControlWindow <= 0 {
		c.ControlWindow = 5
	}
	if c.InboxDepth <= 0 {
		c.InboxDepth = 1024
	}
	if c.BufferMaxAge <= 0 {
		c.BufferMaxAge = 8
	}
	if c.Policy == 0 {
		c.Policy = gossip.PolicyRandom
	}
	return c
}

// faults is the cluster's shared fault-injection state. Scenario drivers
// flip it from outside the peer goroutines, so every field is atomic:
// peers consult it on their own goroutines without locks. The zero value
// injects nothing, and the hot path pays one relaxed load per send.
type faults struct {
	down  []atomic.Bool  // crashed peers: no rounds, no receives, links dropped
	free  []atomic.Bool  // free-riders: receive and deliver but never forward
	group []atomic.Int32 // partition group; cross-group links drop while split
	split atomic.Bool
	loss  atomic.Uint64 // i.i.d. link-loss probability, stored as float64 bits
}

func newFaults(n int) *faults {
	return &faults{
		down:  make([]atomic.Bool, n),
		free:  make([]atomic.Bool, n),
		group: make([]atomic.Int32, n),
	}
}

// dropLink reports whether a message from -> to should be lost to an
// injected fault. rng is the sender's own stream (loss draws stay
// per-goroutine).
func (f *faults) dropLink(from, to int, rng *rand.Rand) bool {
	if f.down[to].Load() {
		return true
	}
	if f.split.Load() && f.group[from].Load() != f.group[to].Load() {
		return true
	}
	if p := math.Float64frombits(f.loss.Load()); p > 0 && rng.Float64() < p {
		return true
	}
	return false
}

// traffic is the cluster's envelope-level message accounting, mirroring
// what simnet counts for the simulator. Everything is atomic: senders,
// transport readers and observers touch it concurrently.
type traffic struct {
	sent           atomic.Uint64
	recv           atomic.Uint64
	faultDrops     atomic.Uint64
	inboxDrops     atomic.Uint64
	transportDrops atomic.Uint64
	malformed      atomic.Uint64
}

// Traffic is a snapshot of the cluster's envelope-level counters. The
// conservation identity Sent == Recv + Dropped holds exactly on the
// chan transport at any quiescent point, and on UDP once the transport
// has quiesced (Stop does that) — a shortfall means the network lost
// datagrams the runtime could not see.
type Traffic struct {
	// Sent counts send attempts, one per (envelope, destination). The
	// sender is charged for every attempt.
	Sent uint64
	// Recv counts envelopes accepted into a peer's inbox.
	Recv uint64
	// Dropped is every counted loss: FaultDrops + InboxDrops +
	// TransportDrops.
	Dropped uint64
	// FaultDrops: injected faults ate it (crashed destination,
	// partition, i.i.d. loss).
	FaultDrops uint64
	// InboxDrops: the destination's inbox was full — the bug this
	// counter exists for used to be silent.
	InboxDrops uint64
	// TransportDrops: the transport refused or failed the send
	// (oversized datagram, closed socket).
	TransportDrops uint64
	// Malformed counts received envelopes that failed to decode or
	// carried an invalid sender (a subset of Recv, not of Dropped).
	Malformed uint64
}

// Cluster is a set of live peers. Create with NewCluster, then Start;
// Stop blocks until every peer goroutine has exited.
type Cluster struct {
	cfg     Config
	ledger  *fairness.Ledger
	peers   []*peer
	faults  *faults
	net     transport.Net
	traffic traffic

	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
	stopped bool
	mu      sync.Mutex
}

type peer struct {
	id      int
	c       *Cluster
	rng     *rand.Rand
	tr      transport.Transport
	inbox   chan []byte
	cmds    chan func()
	buffer  *gossip.Buffer
	seen    *gossip.SeenSet
	in      pubsub.Interest
	ctrl    adaptive.Controller
	fanout  int
	batch   int
	rounds  int
	last    fairness.Account
	pubSeq  uint32
	deliver func(*pubsub.Event)

	env    wire.Envelope // decode scratch: Events backing array is reused
	perm   []int         // PermInto scratch for samplePeers
	sample []int         // sampled-partner scratch
}

// NewCluster builds a stopped cluster. The only error source is the
// transport factory (socket transports can fail to bind); the default
// in-process transport never fails.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	factory := cfg.Transport
	if factory == nil {
		factory = transport.Chan()
	}
	nw, err := factory(cfg.N)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:    cfg,
		ledger: fairness.NewLedger(cfg.N, fairness.DefaultWeights()),
		faults: newFaults(cfg.N),
		net:    nw,
		stop:   make(chan struct{}),
	}
	for i := 0; i < cfg.N; i++ {
		var ctrl adaptive.Controller
		if cfg.TargetRatio > 0 {
			ctrl = adaptive.NewAIMD(adaptive.Config{
				TargetRatio: cfg.TargetRatio,
				Limits:      adaptive.DefaultLimits(cfg.N),
			}, adaptive.LeverBoth, cfg.Fanout, cfg.Batch)
		} else {
			ctrl = adaptive.Static{F: cfg.Fanout, N: cfg.Batch}
		}
		p := &peer{
			id:     i,
			c:      c,
			rng:    rand.New(rand.NewSource(cfg.Seed ^ int64(i*2654435761+1))),
			inbox:  make(chan []byte, cfg.InboxDepth),
			cmds:   make(chan func(), 64),
			buffer: gossip.NewBuffer(256, cfg.BufferMaxAge),
			seen:   gossip.NewSeenSet(8192),
			ctrl:   ctrl,
		}
		p.fanout, p.batch = ctrl.Fanout(), ctrl.Batch()
		tr, err := nw.Attach(i, p.ingress)
		if err != nil {
			_ = nw.Close()
			return nil, err
		}
		p.tr = tr
		c.peers = append(c.peers, p)
	}
	return c, nil
}

// Ledger exposes the shared fairness ledger (safe for concurrent reads).
func (c *Cluster) Ledger() *fairness.Ledger { return c.ledger }

// Report returns the cluster-wide fairness report.
func (c *Cluster) Report() fairness.Report { return c.ledger.Report() }

// Traffic returns the cluster's envelope-level traffic counters.
func (c *Cluster) Traffic() Traffic {
	t := Traffic{
		Sent:           c.traffic.sent.Load(),
		Recv:           c.traffic.recv.Load(),
		FaultDrops:     c.traffic.faultDrops.Load(),
		InboxDrops:     c.traffic.inboxDrops.Load(),
		TransportDrops: c.traffic.transportDrops.Load(),
		Malformed:      c.traffic.malformed.Load(),
	}
	t.Dropped = t.FaultDrops + t.InboxDrops + t.TransportDrops
	return t
}

// Addr returns peer id's transport address ("chan://3" in-process, a
// real socket address on UDP), or "" for invalid ids.
func (c *Cluster) Addr(id int) string {
	if id < 0 || id >= len(c.peers) {
		return ""
	}
	return c.peers[id].tr.LocalAddr()
}

// Start launches every peer goroutine. Idempotent.
func (c *Cluster) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started || c.stopped {
		return
	}
	c.started = true
	for _, p := range c.peers {
		p := p
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			p.loop()
		}()
	}
}

// Stop signals every peer to exit, waits for them, then closes the
// transport (for sockets that includes a bounded quiesce, so traffic
// counters are settled when Stop returns). Idempotent.
func (c *Cluster) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	started := c.started
	c.stopped = true
	c.mu.Unlock()
	if started {
		close(c.stop)
		c.wg.Wait()
	}
	_ = c.net.Close()
}

// do runs fn with exclusive access to peer id's state and waits for it to
// complete: inline before Start (setup is single-threaded), through the
// peer's command channel afterwards. It returns false if the cluster is
// stopped or the id is invalid.
func (c *Cluster) do(id int, fn func()) bool {
	if id < 0 || id >= len(c.peers) {
		return false
	}
	c.mu.Lock()
	started, stopped := c.started, c.stopped
	c.mu.Unlock()
	if stopped {
		return false
	}
	if !started {
		fn()
		return true
	}
	done := make(chan struct{})
	select {
	case c.peers[id].cmds <- func() { fn(); close(done) }:
	case <-c.stop:
		return false
	}
	select {
	case <-done:
		return true
	case <-c.stop:
		return false
	}
}

// Subscribe registers a filter on a peer and returns its subscription ID.
func (c *Cluster) Subscribe(id int, f pubsub.Filter) (pubsub.SubID, bool) {
	var sub pubsub.SubID
	ok := c.do(id, func() {
		p := c.peers[id]
		sub = p.in.Subscribe(f)
		c.ledger.SetFilters(id, p.in.Count())
	})
	return sub, ok
}

// Unsubscribe removes a subscription from a peer.
func (c *Cluster) Unsubscribe(id int, sub pubsub.SubID) bool {
	removed := false
	ok := c.do(id, func() {
		p := c.peers[id]
		removed = p.in.Unsubscribe(sub)
		c.ledger.SetFilters(id, p.in.Count())
	})
	return ok && removed
}

// OnDeliver installs a delivery observer on a peer (call before or after
// Start; it runs on the peer's goroutine). The delivered event is never
// shared with another peer's goroutine (each receiver decodes its own
// copy off the wire), but it IS the copy this peer keeps buffered for
// forwarding — treat it as read-only, or the peer forwards the
// mutation.
func (c *Cluster) OnDeliver(id int, fn func(*pubsub.Event)) bool {
	return c.do(id, func() { c.peers[id].deliver = fn })
}

// Levers reports a peer's current fanout and batch levers (synchronised
// through the peer's own goroutine).
func (c *Cluster) Levers(id int) (fanout, batch int, ok bool) {
	ok = c.do(id, func() {
		fanout, batch = c.peers[id].fanout, c.peers[id].batch
	})
	return fanout, batch, ok
}

// --- Fault injection ---------------------------------------------------------
//
// These mirror the simulated network's fault surface (simnet.SetUp,
// Partition, Heal, SetLoss plus core's Leave/Rejoin and free-riding), so
// a scenario schedule can drive both runtimes identically. All are safe
// to call at any time from any goroutine.

// Crash takes a peer offline without notice: it stops gossiping, drops
// everything in its inbox, and other peers' messages to it are lost —
// the live analogue of core.Node.Leave.
func (c *Cluster) Crash(id int) bool {
	if id < 0 || id >= len(c.peers) {
		return false
	}
	c.faults.down[id].Store(true)
	return true
}

// Rejoin brings a crashed peer back. Its buffer and dedup memory survive
// the outage, like a process that was suspended rather than wiped.
func (c *Cluster) Rejoin(id int) bool {
	if id < 0 || id >= len(c.peers) {
		return false
	}
	c.faults.down[id].Store(false)
	return true
}

// Up reports whether the peer is currently up (not crashed).
func (c *Cluster) Up(id int) bool {
	return id >= 0 && id < len(c.peers) && !c.faults.down[id].Load()
}

// SetFreeRider makes a peer stop forwarding while still receiving and
// delivering — the classic gossip defector.
func (c *Cluster) SetFreeRider(id int, on bool) bool {
	if id < 0 || id >= len(c.peers) {
		return false
	}
	c.faults.free[id].Store(on)
	return true
}

// Partition splits the cluster: peers in side keep talking to each other
// but lose connectivity with everyone else until Heal is called.
func (c *Cluster) Partition(side []int) {
	for i := range c.faults.group {
		c.faults.group[i].Store(0)
	}
	for _, id := range side {
		if id >= 0 && id < len(c.peers) {
			c.faults.group[id].Store(1)
		}
	}
	c.faults.split.Store(true)
}

// Heal removes any partition.
func (c *Cluster) Heal() { c.faults.split.Store(false) }

// SetLoss sets the i.i.d. per-message drop probability (clamped to [0,1]).
func (c *Cluster) SetLoss(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	c.faults.loss.Store(math.Float64bits(p))
}

// Publish originates an event at the given peer.
func (c *Cluster) Publish(id int, topic string, attrs []pubsub.Attr, payload []byte) bool {
	return c.do(id, func() {
		p := c.peers[id]
		p.pubSeq++
		ev := &pubsub.Event{
			ID:      pubsub.EventID{Publisher: uint32(id), Seq: p.pubSeq},
			Topic:   topic,
			Attrs:   attrs,
			Payload: payload,
		}
		c.ledger.AddPublish(id, ev.WireSize())
		p.seen.Add(ev.ID)
		p.buffer.Insert(ev)
		p.deliverIfInterested(ev)
	})
}

// --- peer loop ---------------------------------------------------------------

// ingress is the transport delivery callback: a non-blocking inbox push
// with counted overflow. It runs on the sender's goroutine (chan
// transport) or the socket reader's (UDP); either way it must not
// block, and a full inbox is a counted drop — a saturated socket
// buffer whose loss the books still see.
func (p *peer) ingress(buf []byte) {
	select {
	case p.inbox <- buf:
		p.c.traffic.recv.Add(1)
	default:
		p.c.traffic.inboxDrops.Add(1)
	}
}

func (p *peer) loop() {
	// The command channel must be drained before Start too; tickers with
	// jitter desynchronise the rounds.
	jitter := time.Duration(p.rng.Int63n(int64(p.c.cfg.RoundPeriod)))
	timer := time.NewTimer(p.c.cfg.RoundPeriod + jitter)
	defer timer.Stop()
	for {
		select {
		case <-p.c.stop:
			return
		case cmd := <-p.cmds:
			cmd()
		case buf := <-p.inbox:
			p.receive(buf)
		case <-timer.C:
			p.round()
			timer.Reset(p.c.cfg.RoundPeriod)
		}
	}
}

func (p *peer) round() {
	if p.c.faults.down[p.id].Load() {
		return // crashed: no protocol activity at all
	}
	p.rounds++
	// A free-rider receives and delivers but never forwards; its buffer
	// still ages so it does not hoard a backlog to replay on reform.
	if !p.c.faults.free[p.id].Load() {
		p.gossip()
	}
	p.buffer.Tick()
	if p.rounds%p.c.cfg.ControlWindow == 0 {
		acct := p.c.ledger.Account(p.id)
		delta := fairness.Delta(acct, p.last)
		p.last = acct
		w := p.c.ledger.Weights()
		p.fanout, p.batch = p.ctrl.Update(adaptive.Sample{
			Benefit:      fairness.Benefit(delta, w),
			Contribution: fairness.Contribution(delta, w),
		})
	}
}

// gossip runs one round's push: SELECTEVENTS, SELECTPARTICIPANTS,
// encode once, send the shared immutable bytes to every partner.
func (p *peer) gossip() {
	events := p.buffer.Select(p.rng, p.batch, p.c.cfg.Policy)
	if len(events) == 0 {
		return
	}
	targets := p.samplePeers(p.fanout)
	if len(targets) == 0 {
		return
	}
	// The envelope buffer must be fresh each round — receivers hold it
	// asynchronously — so this is one of the round path's two
	// allocations (the other is Select's fresh slice).
	buf, err := wire.AppendEnvelope(make([]byte, 0, wire.EnvelopeSize(events)), uint32(p.id), events)
	if err != nil {
		// Unencodable events (a topic beyond the u16 framing, say)
		// cannot be gossiped; skip the fanout without charging anyone.
		return
	}
	for _, q := range targets {
		p.send(q, buf)
	}
}

// samplePeers draws k distinct partners (excluding self) from the full
// population — SELECTPARTICIPANTS(F) over randutil.PermInto scratch
// buffers, the same pattern core's samplers use, so steady-state rounds
// allocate nothing here.
func (p *peer) samplePeers(k int) []int {
	n := len(p.c.peers)
	if k > n-1 {
		k = n - 1
	}
	if k <= 0 {
		return nil
	}
	perm := randutil.PermInto(p.rng, &p.perm, n)
	out := p.sample[:0]
	for _, q := range perm {
		if q == p.id {
			continue
		}
		out = append(out, q)
		if len(out) == k {
			break
		}
	}
	p.sample = out
	return out
}

func (p *peer) send(to int, buf []byte) {
	// The sender pays for the attempt whether or not the network delivers
	// it — the same accounting simnet applies to lossy links. The charge
	// is the encoded size: ledger bytes and wire bytes are one number.
	p.c.ledger.AddSend(p.id, fairness.ClassApp, len(buf))
	p.c.traffic.sent.Add(1)
	if p.c.faults.dropLink(p.id, to, p.rng) {
		p.c.traffic.faultDrops.Add(1)
		return
	}
	if err := p.tr.Send(to, buf); err != nil {
		p.c.traffic.transportDrops.Add(1)
	}
}

func (p *peer) receive(buf []byte) {
	if p.c.faults.down[p.id].Load() {
		return // crashed: anything already queued in the inbox is lost
	}
	if err := wire.DecodeEnvelope(buf, &p.env); err != nil {
		p.c.traffic.malformed.Add(1)
		return
	}
	from := int(p.env.Sender)
	if from < 0 || from >= len(p.c.peers) {
		p.c.traffic.malformed.Add(1)
		return
	}
	novel, dup := 0, 0
	for _, ev := range p.env.Events {
		if !p.seen.Add(ev.ID) {
			dup += ev.WireSize()
			continue
		}
		novel += ev.WireSize()
		p.buffer.Insert(ev)
		p.deliverIfInterested(ev)
	}
	p.c.ledger.AddAudit(from, novel, dup)
}

func (p *peer) deliverIfInterested(ev *pubsub.Event) {
	if !p.in.Match(ev) {
		return
	}
	p.c.ledger.AddDelivery(p.id)
	if p.deliver != nil {
		p.deliver(ev)
	}
}
